/**
 * @file
 * Dense linear-algebra kernels.
 *
 * The paper's baseline MemNN is built on OpenBLAS; this library
 * provides the equivalent primitives from scratch so the repository is
 * self-contained and so both dataflows (layer-at-a-time vs. fused
 * column chunks) run on the *same* kernels — the measured differences
 * then come from dataflow, not from kernel quality differences.
 *
 * Every primitive has two implementations: a portable scalar reference
 * (namespace blas::scalar, always compiled) and an AVX2+FMA backend
 * selected once at startup by runtime CPU-feature dispatch. Setting
 * the environment variable MNNFAST_NO_SIMD=1 forces the scalar path,
 * which makes debugging runs reproducible across hosts. See DESIGN.md
 * ("Kernel architecture & dispatch") for the dispatch policy and the
 * micro-kernel shapes.
 *
 * Conventions: all matrices are row-major, dimensions are given as
 * (rows, cols), and vectors are contiguous float arrays. Kernels never
 * allocate, with one exception: gemm keeps a thread-local packing
 * buffer for B panels (grows to kc x n floats and is reused across
 * calls).
 */

#ifndef MNNFAST_BLAS_KERNELS_HH
#define MNNFAST_BLAS_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace mnnfast::blas {

/** Dot product of two length-n vectors. */
float dot(const float *x, const float *y, size_t n);

/** y += alpha * x over length-n vectors. */
void axpy(float alpha, const float *x, float *y, size_t n);

/** x *= alpha over a length-n vector. */
void scal(float alpha, float *x, size_t n);

/** Set a length-n vector to zero. */
void zero(float *x, size_t n);

/** Copy a length-n vector. */
void copy(const float *src, float *dst, size_t n);

/** Sum of a length-n vector's elements. */
float sum(const float *x, size_t n);

/** Largest element of a non-empty length-n vector. */
float maxElement(const float *x, size_t n);

/**
 * Batched dot products of one vector against a strip of matrix rows:
 * out[r] = dot(x, rows + r * stride, n) for r in [0, count).
 *
 * This is the column engine's phase-1 kernel: the query vector x is
 * loaded once per register block and reused across four memory rows,
 * which roughly quarters the x-side load traffic compared with `count`
 * independent dot() calls. Requires stride >= n.
 */
void dotBatch(const float *x, const float *rows, size_t count, size_t n,
              size_t stride, float *out);

/**
 * Query-blocked batched dot products: a tile of `nx` query rows
 * against a strip of `count` matrix rows,
 *
 *   out[q * ostride + r] = dot(x + q * xstride, rows + r * stride, n)
 *
 * for q in [0, nx), r in [0, count) — a small packed GEMM shaped for
 * the column engine's phase 1. The AVX2 backend register-tiles 2
 * queries x 4 rows, so each 8-wide row load feeds every query in the
 * tile and the per-query M_IN load traffic drops accordingly; the
 * engine-level strip blocking on top keeps a row strip cache-resident
 * across the whole batch, which is what amortizes the KB stream over
 * concurrent queries.
 *
 * Contract: per (q, r) pair the accumulation order is exactly that of
 * dotBatch, so the result is bit-identical to nx separate dotBatch
 * calls on the same backend (property-tested). Requires stride >= n
 * and xstride >= n; out rows must not alias the inputs.
 */
void dotBatchMulti(const float *x, size_t nx, size_t xstride,
                   const float *rows, size_t count, size_t n,
                   size_t stride, float *out, size_t ostride);

/**
 * Fused zero-skip weighted sum over a strip of rows (the column
 * engine's phase-3 kernel):
 *
 *   for r in [0, count):
 *       running_sum += e[r]
 *       if threshold > 0 and e[r] < threshold * running_sum:
 *           ++skipped                      // row never touched
 *       else:
 *           ++kept; acc += e[r] * rows[r]  // vectorized axpy
 *
 * Fusing the conservative skip test with the accumulation means a
 * skipped row costs one compare — its M_OUT row is never read and acc
 * is never written — which is what makes zero-skipping profitable on
 * a bandwidth-bound machine. Requires stride >= n; acc has n elements.
 * A threshold of 0 keeps every row (plain weighted sum).
 */
void weightedSumSkip(const float *e, const float *rows, size_t count,
                     size_t n, size_t stride, float threshold,
                     double &running_sum, float *acc, uint64_t &kept,
                     uint64_t &skipped);

/**
 * Query-blocked zero-skip weighted sum: one pass over a strip of rows
 * updating `ne` accumulators at once. For each row r (ascending) and
 * each query q (ascending), with e_qr = e[q * estride + r]:
 *
 *   running_sums[q] += e_qr
 *   if threshold > 0 and e_qr < threshold * running_sums[q]:
 *       ++skipped                                  // acc[q] untouched
 *   else:
 *       ++kept; acc[q * accstride] += e_qr * row   // vectorized
 *
 * A kept M_OUT row is loaded once and axpy'd into every keeping
 * query's accumulator while it is register/L1-hot, so per-query M_OUT
 * traffic shrinks by the batch size. The skip test and running sums
 * stay per-(query, row) scalar double arithmetic in both backends, so
 * skip decisions are bit-identical between SIMD and scalar paths, and
 * each query's accumulator is bit-identical to ne separate
 * weightedSumSkip calls on the same backend (property-tested).
 *
 * The backend processes queries in tiles of kWsumQueryTile; the
 * dispatch layer splits larger ne transparently. Requires stride >= n
 * and accstride >= n; e rows and acc rows must not alias.
 */
void weightedSumSkipMulti(const float *e, size_t ne, size_t estride,
                          const float *rows, size_t count, size_t n,
                          size_t stride, float threshold,
                          double *running_sums, float *acc,
                          size_t accstride, uint64_t &kept,
                          uint64_t &skipped);

/**
 * Largest query-tile a single backend weightedSumSkipMulti call
 * handles (the kept-set scatter list is a fixed stack array). The
 * dispatch layer tiles larger batches; exposed so engines can align
 * their own blocking with the kernel's.
 */
inline constexpr size_t kWsumQueryTile = 16;

/**
 * Query-blocked batched dot products over *bfloat16* matrix rows:
 * identical shape contract to dotBatchMulti, but `rows` holds bf16
 * elements (uint16_t) that are widened to fp32 in registers via a
 * 16-bit shift; queries and outputs stay fp32. This is the fused
 * dequantizing phase-1 kernel for BF16 knowledge bases: the row
 * stream is half the bytes of the fp32 kernel at the same arithmetic.
 *
 * Accumulation contract (stricter than the fp32 kernels): each
 * (q, r) dot follows one canonical order — eight fp32 fma lanes over
 * the 8-aligned body, a fixed pairwise lane reduction, then an fma
 * tail — and both backends implement exactly that order, so the
 * scalar and AVX2 bf16 backends are **bit-identical to each other**
 * (property-tested), not merely close. Requires stride >= n and
 * xstride >= n; out rows must not alias the inputs.
 */
void dotBatchMultiBf16(const float *x, size_t nx, size_t xstride,
                       const uint16_t *rows, size_t count, size_t n,
                       size_t stride, float *out, size_t ostride);

/**
 * Query-blocked zero-skip weighted sum over *bfloat16* rows: identical
 * contract to weightedSumSkipMulti — per-(query, row) scalar double
 * skip tests, fp32 accumulators — but each kept row is widened from
 * bf16 in registers as it is accumulated. The e values (exp outputs)
 * remain fp32, so skip decisions are bit-identical to a run of
 * weightedSumSkipMulti over the widened rows. Every accumulator
 * update is a single-rounded fma per element in both backends, so the
 * scalar and AVX2 bf16 backends are bit-identical to each other.
 *
 * The dispatch layer tiles ne by kWsumQueryTile, like the fp32
 * kernel. Requires stride >= n and accstride >= n; e rows and acc
 * rows must not alias.
 */
void weightedSumSkipMultiBf16(const float *e, size_t ne, size_t estride,
                              const uint16_t *rows, size_t count,
                              size_t n, size_t stride, float threshold,
                              double *running_sums, float *acc,
                              size_t accstride, uint64_t &kept,
                              uint64_t &skipped);

/**
 * Query-blocked batched dot products over *int8* matrix rows sharing
 * one affine code (scale, zero): the stored row elements q dequantize
 * as scale*q + zero (see core::KnowledgeBase, DESIGN.md §10), and the
 * kernel computes out[q * ostride + r] = dot(x_q, scale*row_r + zero)
 * in the factored form
 *
 *   out[q][r] = fma(scale, rawdot(x_q, row_r), zero * qsum(x_q))
 *
 * where rawdot is the canonical bf16-style dot (eight fp32 fma lanes
 * over the 8-aligned body of the int8->fp32 widened row, the fixed
 * pairwise lane reduction, fma tail) and qsum is a canonical sum of
 * x_q (same lane walk with adds). The factoring keeps the inner loop
 * at one fma per element — the same arithmetic as the bf16 kernel on
 * a quarter of the f32 bytes — and both backends implement exactly
 * these orders, so scalar and AVX2 are **bit-identical** to each
 * other (property-tested), and results never depend on how a sweep is
 * split into calls. Rows in different quantization chunks need
 * separate calls (the engines split at KnowledgeBase::i8GroupEnd).
 * Requires stride >= n and xstride >= n; out must not alias inputs.
 */
void dotBatchMultiI8(const float *x, size_t nx, size_t xstride,
                     const int8_t *rows, size_t count, size_t n,
                     size_t stride, float scale, float zero, float *out,
                     size_t ostride);

/**
 * Query-blocked zero-skip weighted sum over *int8* rows sharing one
 * affine code (scale, zero): identical contract to
 * weightedSumSkipMulti — per-(query, row) scalar double skip tests on
 * the fp32 e values, fp32 accumulators — but each kept row element is
 * dequantized in registers as fma(scale, float(q), zero) and
 * accumulated with a second single-rounded fma. Skip decisions are
 * bit-identical to the f32/bf16 kernels on the same e values, and the
 * scalar and AVX2 backends are bit-identical to each other.
 *
 * The dispatch layer tiles ne by kWsumQueryTile, like the other
 * variants. Requires stride >= n and accstride >= n; e rows and acc
 * rows must not alias.
 */
void weightedSumSkipMultiI8(const float *e, size_t ne, size_t estride,
                            const int8_t *rows, size_t count, size_t n,
                            size_t stride, float scale, float zero,
                            float threshold, double *running_sums,
                            float *acc, size_t accstride,
                            uint64_t &kept, uint64_t &skipped);

/**
 * Fused max-inner-product bound over chunk-summary envelopes (the
 * routed engine's coarse-selection kernel): for a tile of `nx` query
 * rows and `count` per-dimension [lo, hi] envelope pairs,
 *
 *   out[q * ostride + c] =
 *       sum_d max(x_qd * hi[c * stride + d], x_qd * lo[c * stride + d])
 *
 * Because max(x*hi, x*lo) >= x*m for every m in [lo, hi] (regardless
 * of the sign of x), out[q][c] upper-bounds the inner product of x_q
 * with every row the envelope covers — the max-inner-product bound
 * core::ChunkSummaryIndex builds chunk routing on.
 *
 * Accumulation contract (as the bf16/i8 kernels): each (q, c) bound
 * follows one canonical order — eight fp32 lanes over the 8-aligned
 * body, each lane accumulating (a > b) ? a : b of the two
 * single-rounded products, the fixed pairwise lane reduction, then a
 * scalar tail — and both backends implement exactly that order (the
 * scalar select replicates vmaxps operand semantics), so scalar and
 * AVX2 are **bit-identical** to each other and results never depend
 * on how a sweep is split into calls. Requires stride >= n and
 * xstride >= n; out must not alias the inputs.
 */
void chunkBoundBatch(const float *x, size_t nx, size_t xstride,
                     const float *lo, const float *hi, size_t count,
                     size_t n, size_t stride, float *out,
                     size_t ostride);

/**
 * Matrix-vector product: y = A * x.
 * A is (rows x cols) row-major; x has cols elements; y has rows.
 * Dispatches to dotBatch, so the x vector is reused across rows.
 */
void gemv(const float *a, size_t rows, size_t cols,
          const float *x, float *y);

/**
 * Transposed matrix-vector product: y = A^T * x.
 * A is (rows x cols) row-major; x has rows elements; y has cols.
 * Implemented as accumulating row-scaled adds so A is still walked
 * sequentially (cache friendly for row-major storage).
 */
void gemvT(const float *a, size_t rows, size_t cols,
           const float *x, float *y);

/**
 * General matrix multiply: C = A * B (+ C if accumulate).
 * A is (m x k), B is (k x n), C is (m x n), all row-major.
 * The AVX2 backend packs B into 16-wide column panels and runs a
 * register-tiled 4x16 FMA micro-kernel; the scalar backend uses the
 * original 4-row strip blocking.
 */
void gemm(const float *a, const float *b, float *c,
          size_t m, size_t k, size_t n, bool accumulate = false);

/** Elementwise e^x over a length-n vector, in place. */
void expInplace(float *x, size_t n);

/**
 * Elementwise shifted exponential, in place: x_i <- e^{x_i - shift}.
 * The fused form of the max-subtracted softmax inner loop; the column
 * engine's online-normalize path uses it with the running max.
 */
void expShiftInplace(float *x, size_t n, float shift);

/**
 * Numerically-stable softmax over a length-n vector, in place:
 * x_i <- e^{x_i - max(x)} / sum_j e^{x_j - max(x)}.
 *
 * This is the paper's three-phase formulation (exp, sum, normalize)
 * with the standard max-subtraction guard.
 */
void softmax(float *x, size_t n);

/**
 * "Raw" softmax exactly as in the paper's Fig. 5 dataflow (exp then
 * divide by the plain sum, no max subtraction). Provided so the
 * column-based lazy softmax can be checked for *algebraic* equivalence
 * with the layer-at-a-time pipeline.
 *
 * Overflow guard: e^x overflows float above x ~ 88.7, turning the
 * normalization into inf/inf = NaN. When max(x) exceeds a safe bound
 * the computation is routed through the max-subtracted path, which is
 * algebraically identical (the shift cancels in the quotient); below
 * the bound the historical raw behaviour is bit-preserved.
 */
void softmaxRaw(float *x, size_t n);

/**
 * True when the runtime-dispatched SIMD backend is active (the CPU
 * supports AVX2+FMA and MNNFAST_NO_SIMD is not set).
 */
bool simdActive();

/** Name of the active kernel backend: "avx2" or "scalar". */
const char *kernelBackendName();

/**
 * Portable reference implementations. Always compiled; the public
 * kernels above dispatch to either these or the SIMD backend. Exposed
 * so property tests can compare the two paths directly and so callers
 * can pin the reference path independently of the dispatch decision.
 * zero/copy/gemv/gemvT/softmax have no SIMD-specific variant (they are
 * memset/memcpy or compositions of dispatched primitives) and so have
 * no entry here.
 */
namespace scalar {

float dot(const float *x, const float *y, size_t n);
void axpy(float alpha, const float *x, float *y, size_t n);
void scal(float alpha, float *x, size_t n);
float sum(const float *x, size_t n);
float maxElement(const float *x, size_t n);
void dotBatch(const float *x, const float *rows, size_t count, size_t n,
              size_t stride, float *out);
void dotBatchMulti(const float *x, size_t nx, size_t xstride,
                   const float *rows, size_t count, size_t n,
                   size_t stride, float *out, size_t ostride);
void weightedSumSkip(const float *e, const float *rows, size_t count,
                     size_t n, size_t stride, float threshold,
                     double &running_sum, float *acc, uint64_t &kept,
                     uint64_t &skipped);
void weightedSumSkipMulti(const float *e, size_t ne, size_t estride,
                          const float *rows, size_t count, size_t n,
                          size_t stride, float threshold,
                          double *running_sums, float *acc,
                          size_t accstride, uint64_t &kept,
                          uint64_t &skipped);
void dotBatchMultiBf16(const float *x, size_t nx, size_t xstride,
                       const uint16_t *rows, size_t count, size_t n,
                       size_t stride, float *out, size_t ostride);
void weightedSumSkipMultiBf16(const float *e, size_t ne, size_t estride,
                              const uint16_t *rows, size_t count,
                              size_t n, size_t stride, float threshold,
                              double *running_sums, float *acc,
                              size_t accstride, uint64_t &kept,
                              uint64_t &skipped);
void dotBatchMultiI8(const float *x, size_t nx, size_t xstride,
                     const int8_t *rows, size_t count, size_t n,
                     size_t stride, float scale, float zero, float *out,
                     size_t ostride);
void weightedSumSkipMultiI8(const float *e, size_t ne, size_t estride,
                            const int8_t *rows, size_t count, size_t n,
                            size_t stride, float scale, float zero,
                            float threshold, double *running_sums,
                            float *acc, size_t accstride,
                            uint64_t &kept, uint64_t &skipped);
void chunkBoundBatch(const float *x, size_t nx, size_t xstride,
                     const float *lo, const float *hi, size_t count,
                     size_t n, size_t stride, float *out,
                     size_t ostride);
void gemm(const float *a, const float *b, float *c,
          size_t m, size_t k, size_t n, bool accumulate);
void expInplace(float *x, size_t n);
void expShiftInplace(float *x, size_t n, float shift);

} // namespace scalar

} // namespace mnnfast::blas

#endif // MNNFAST_BLAS_KERNELS_HH
