/**
 * @file
 * Dense linear-algebra kernels.
 *
 * The paper's baseline MemNN is built on OpenBLAS; this library
 * provides the equivalent primitives from scratch so the repository is
 * self-contained and so both dataflows (layer-at-a-time vs. fused
 * column chunks) run on the *same* kernels — the measured differences
 * then come from dataflow, not from kernel quality differences.
 *
 * Conventions: all matrices are row-major, dimensions are given as
 * (rows, cols), and vectors are contiguous float arrays. Kernels never
 * allocate; callers own all buffers.
 */

#ifndef MNNFAST_BLAS_KERNELS_HH
#define MNNFAST_BLAS_KERNELS_HH

#include <cstddef>

namespace mnnfast::blas {

/** Dot product of two length-n vectors. */
float dot(const float *x, const float *y, size_t n);

/** y += alpha * x over length-n vectors. */
void axpy(float alpha, const float *x, float *y, size_t n);

/** x *= alpha over a length-n vector. */
void scal(float alpha, float *x, size_t n);

/** Set a length-n vector to zero. */
void zero(float *x, size_t n);

/** Copy a length-n vector. */
void copy(const float *src, float *dst, size_t n);

/** Sum of a length-n vector's elements. */
float sum(const float *x, size_t n);

/** Largest element of a non-empty length-n vector. */
float maxElement(const float *x, size_t n);

/**
 * Matrix-vector product: y = A * x.
 * A is (rows x cols) row-major; x has cols elements; y has rows.
 */
void gemv(const float *a, size_t rows, size_t cols,
          const float *x, float *y);

/**
 * Transposed matrix-vector product: y = A^T * x.
 * A is (rows x cols) row-major; x has rows elements; y has cols.
 * Implemented as accumulating row-scaled adds so A is still walked
 * sequentially (cache friendly for row-major storage).
 */
void gemvT(const float *a, size_t rows, size_t cols,
           const float *x, float *y);

/**
 * General matrix multiply: C = A * B (+ C if accumulate).
 * A is (m x k), B is (k x n), C is (m x n), all row-major.
 * Uses register blocking and k-panel loops; no allocation.
 */
void gemm(const float *a, const float *b, float *c,
          size_t m, size_t k, size_t n, bool accumulate = false);

/** Elementwise e^x over a length-n vector, in place. */
void expInplace(float *x, size_t n);

/**
 * Numerically-stable softmax over a length-n vector, in place:
 * x_i <- e^{x_i - max(x)} / sum_j e^{x_j - max(x)}.
 *
 * This is the paper's three-phase formulation (exp, sum, normalize)
 * with the standard max-subtraction guard.
 */
void softmax(float *x, size_t n);

/**
 * Unstable "raw" softmax exactly as in the paper's Fig. 5 dataflow
 * (exp then divide by the plain sum, no max subtraction). Provided so
 * the column-based lazy softmax can be checked for *algebraic*
 * equivalence with the layer-at-a-time pipeline.
 */
void softmaxRaw(float *x, size_t n);

} // namespace mnnfast::blas

#endif // MNNFAST_BLAS_KERNELS_HH
