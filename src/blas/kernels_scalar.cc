/**
 * @file
 * Portable scalar reference kernels (namespace blas::scalar).
 *
 * These are the seed implementations, kept verbatim as the dispatch
 * fallback and as the ground truth the SIMD backend is property-tested
 * against. Hand-unrolled four-wide so the compiler can keep multiple
 * dependency chains in flight even without explicit vector code.
 */

#include <algorithm>
#include <cmath>
#include <cstring>

#include "blas/kernels.hh"
#include "util/bf16.hh"
#include "util/logging.hh"

namespace mnnfast::blas::scalar {

float
dot(const float *x, const float *y, size_t n)
{
    // Four independent accumulators let the compiler keep four vector
    // FMA chains in flight instead of serializing on one register.
    float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        acc0 += x[i + 0] * y[i + 0];
        acc1 += x[i + 1] * y[i + 1];
        acc2 += x[i + 2] * y[i + 2];
        acc3 += x[i + 3] * y[i + 3];
    }
    for (; i < n; ++i)
        acc0 += x[i] * y[i];
    return (acc0 + acc1) + (acc2 + acc3);
}

void
axpy(float alpha, const float *x, float *y, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        y[i] += alpha * x[i];
}

void
scal(float alpha, float *x, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        x[i] *= alpha;
}

float
sum(const float *x, size_t n)
{
    float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        acc0 += x[i + 0];
        acc1 += x[i + 1];
        acc2 += x[i + 2];
        acc3 += x[i + 3];
    }
    for (; i < n; ++i)
        acc0 += x[i];
    return (acc0 + acc1) + (acc2 + acc3);
}

float
maxElement(const float *x, size_t n)
{
    float m = x[0];
    for (size_t i = 1; i < n; ++i)
        m = std::max(m, x[i]);
    return m;
}

void
dotBatch(const float *x, const float *rows, size_t count, size_t n,
         size_t stride, float *out)
{
    for (size_t r = 0; r < count; ++r)
        out[r] = dot(x, rows + r * stride, n);
}

void
dotBatchMulti(const float *x, size_t nx, size_t xstride,
              const float *rows, size_t count, size_t n, size_t stride,
              float *out, size_t ostride)
{
    // The reference path is the per-query loop the query-blocked
    // backends must match bit-for-bit.
    for (size_t q = 0; q < nx; ++q)
        dotBatch(x + q * xstride, rows, count, n, stride,
                 out + q * ostride);
}

void
weightedSumSkip(const float *e, const float *rows, size_t count,
                size_t n, size_t stride, float threshold,
                double &running_sum, float *acc, uint64_t &kept,
                uint64_t &skipped)
{
    double s = running_sum;
    for (size_t r = 0; r < count; ++r) {
        const float ev = e[r];
        s += ev;
        if (threshold > 0.f && double(ev) < double(threshold) * s) {
            ++skipped;
            continue;
        }
        ++kept;
        axpy(ev, rows + r * stride, acc, n);
    }
    running_sum = s;
}

void
weightedSumSkipMulti(const float *e, size_t ne, size_t estride,
                     const float *rows, size_t count, size_t n,
                     size_t stride, float threshold,
                     double *running_sums, float *acc, size_t accstride,
                     uint64_t &kept, uint64_t &skipped)
{
    // Queries are independent (separate running sums and
    // accumulators), so the per-query reference loop is the
    // definition the query-blocked backend must reproduce exactly.
    for (size_t q = 0; q < ne; ++q)
        weightedSumSkip(e + q * estride, rows, count, n, stride,
                        threshold, running_sums[q], acc + q * accstride,
                        kept, skipped);
}

namespace {

/**
 * Canonical bf16 dot product (see kernels.hh): eight fp32 fma lanes
 * over the 8-aligned body (lane j holds elements i with i % 8 == j),
 * the fixed pairwise lane reduction of the AVX2 hsum, then an fma
 * tail. std::fma single-rounds exactly like the vector fmadd, so this
 * scalar walk is bit-identical to the AVX2 backend's 8-lane chain.
 */
float
dotBf16One(const float *x, const uint16_t *row, size_t n)
{
    float lane[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        for (size_t j = 0; j < 8; ++j)
            lane[j] = std::fma(x[i + j], bf16ToFloat(row[i + j]),
                               lane[j]);
    }
    // The AVX2 horizontal sum's exact association.
    float r = ((lane[0] + lane[4]) + (lane[2] + lane[6]))
            + ((lane[1] + lane[5]) + (lane[3] + lane[7]));
    for (; i < n; ++i)
        r = std::fma(x[i], bf16ToFloat(row[i]), r);
    return r;
}

} // namespace

void
dotBatchMultiBf16(const float *x, size_t nx, size_t xstride,
                  const uint16_t *rows, size_t count, size_t n,
                  size_t stride, float *out, size_t ostride)
{
    for (size_t q = 0; q < nx; ++q) {
        for (size_t r = 0; r < count; ++r)
            out[q * ostride + r] =
                dotBf16One(x + q * xstride, rows + r * stride, n);
    }
}

void
weightedSumSkipMultiBf16(const float *e, size_t ne, size_t estride,
                         const uint16_t *rows, size_t count, size_t n,
                         size_t stride, float threshold,
                         double *running_sums, float *acc,
                         size_t accstride, uint64_t &kept,
                         uint64_t &skipped)
{
    // Same per-(query, row) scalar-double skip arithmetic as the fp32
    // kernel; each accumulator element takes one single-rounded fma,
    // so the update is bit-identical to the AVX2 backend's fmadd.
    for (size_t r = 0; r < count; ++r) {
        const uint16_t *row = rows + r * stride;
        for (size_t q = 0; q < ne; ++q) {
            const float ev = e[q * estride + r];
            const double s = running_sums[q] + ev;
            running_sums[q] = s;
            if (threshold > 0.f && double(ev) < double(threshold) * s) {
                ++skipped;
                continue;
            }
            ++kept;
            float *dst = acc + q * accstride;
            for (size_t i = 0; i < n; ++i)
                dst[i] = std::fma(ev, bf16ToFloat(row[i]), dst[i]);
        }
    }
}

namespace {

/**
 * Canonical raw int8 dot: the bf16 lane walk over the exactly-widened
 * int8 elements (int8 -> fp32 is lossless, matching the AVX2 cvt
 * pair), so lane j holds fma chains of x[i]*float(row[i]). The affine
 * code is applied by the caller in the factored form of kernels.hh.
 */
float
dotI8RawOne(const float *x, const int8_t *row, size_t n)
{
    float lane[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        for (size_t j = 0; j < 8; ++j)
            lane[j] = std::fma(x[i + j],
                               static_cast<float>(row[i + j]), lane[j]);
    }
    float r = ((lane[0] + lane[4]) + (lane[2] + lane[6]))
            + ((lane[1] + lane[5]) + (lane[3] + lane[7]));
    for (; i < n; ++i)
        r = std::fma(x[i], static_cast<float>(row[i]), r);
    return r;
}

/**
 * Canonical query sum for the i8 factored dot: the same 8-lane walk
 * and pairwise reduction as the dot chains, with plain adds (the AVX2
 * backend's vertical add + hsum8 is exactly this).
 */
float
querySumOne(const float *x, size_t n)
{
    float lane[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        for (size_t j = 0; j < 8; ++j)
            lane[j] += x[i + j];
    }
    float r = ((lane[0] + lane[4]) + (lane[2] + lane[6]))
            + ((lane[1] + lane[5]) + (lane[3] + lane[7]));
    for (; i < n; ++i)
        r += x[i];
    return r;
}

} // namespace

void
dotBatchMultiI8(const float *x, size_t nx, size_t xstride,
                const int8_t *rows, size_t count, size_t n,
                size_t stride, float scale, float zero, float *out,
                size_t ostride)
{
    for (size_t q = 0; q < nx; ++q) {
        const float *xq = x + q * xstride;
        // zero * qsum(x_q) is a per-query constant, so the combine
        // below depends only on (x_q, row, scale, zero) — sweep
        // splits and tile shapes can never change bits.
        const float qs = zero * querySumOne(xq, n);
        for (size_t r = 0; r < count; ++r)
            out[q * ostride + r] =
                std::fma(scale, dotI8RawOne(xq, rows + r * stride, n),
                         qs);
    }
}

void
weightedSumSkipMultiI8(const float *e, size_t ne, size_t estride,
                       const int8_t *rows, size_t count, size_t n,
                       size_t stride, float scale, float zero,
                       float threshold, double *running_sums, float *acc,
                       size_t accstride, uint64_t &kept,
                       uint64_t &skipped)
{
    // Same per-(query, row) scalar-double skip arithmetic as the
    // f32/bf16 kernels; each element takes one dequant fma plus one
    // accumulate fma, both single-rounded like the AVX2 fmadds.
    for (size_t r = 0; r < count; ++r) {
        const int8_t *row = rows + r * stride;
        for (size_t q = 0; q < ne; ++q) {
            const float ev = e[q * estride + r];
            const double s = running_sums[q] + ev;
            running_sums[q] = s;
            if (threshold > 0.f && double(ev) < double(threshold) * s) {
                ++skipped;
                continue;
            }
            ++kept;
            float *dst = acc + q * accstride;
            for (size_t i = 0; i < n; ++i) {
                const float ri =
                    std::fma(scale, static_cast<float>(row[i]), zero);
                dst[i] = std::fma(ev, ri, dst[i]);
            }
        }
    }
}

namespace {

/**
 * Canonical chunk-summary bound (see kernels.hh): the bf16-style
 * 8-lane walk, each lane adding (a > b) ? a : b of the two
 * single-rounded products — exactly vmaxps's select (second operand
 * wins on equality), so the AVX2 backend's mul/mul/max/add chain is
 * replayed bit for bit — then the fixed pairwise reduction and a
 * scalar tail.
 */
float
chunkBoundOne(const float *x, const float *lo, const float *hi, size_t n)
{
    float lane[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        for (size_t j = 0; j < 8; ++j) {
            const float a = x[i + j] * hi[i + j];
            const float b = x[i + j] * lo[i + j];
            lane[j] += (a > b) ? a : b;
        }
    }
    float r = ((lane[0] + lane[4]) + (lane[2] + lane[6]))
            + ((lane[1] + lane[5]) + (lane[3] + lane[7]));
    for (; i < n; ++i) {
        const float a = x[i] * hi[i];
        const float b = x[i] * lo[i];
        r += (a > b) ? a : b;
    }
    return r;
}

} // namespace

void
chunkBoundBatch(const float *x, size_t nx, size_t xstride,
                const float *lo, const float *hi, size_t count, size_t n,
                size_t stride, float *out, size_t ostride)
{
    for (size_t q = 0; q < nx; ++q) {
        const float *xq = x + q * xstride;
        for (size_t c = 0; c < count; ++c)
            out[q * ostride + c] =
                chunkBoundOne(xq, lo + c * stride, hi + c * stride, n);
    }
}

namespace {

// Blocked inner kernel: accumulate a (4 x n) strip of C from a
// (4 x kc) strip of A and a (kc x n) panel of B.
void
gemmStrip4(const float *a, const float *b, float *c,
           size_t kc, size_t n, size_t lda, size_t ldb, size_t ldc)
{
    for (size_t p = 0; p < kc; ++p) {
        const float a0 = a[0 * lda + p];
        const float a1 = a[1 * lda + p];
        const float a2 = a[2 * lda + p];
        const float a3 = a[3 * lda + p];
        const float *brow = b + p * ldb;
        for (size_t j = 0; j < n; ++j) {
            const float bj = brow[j];
            c[0 * ldc + j] += a0 * bj;
            c[1 * ldc + j] += a1 * bj;
            c[2 * ldc + j] += a2 * bj;
            c[3 * ldc + j] += a3 * bj;
        }
    }
}

} // namespace

void
gemm(const float *a, const float *b, float *c,
     size_t m, size_t k, size_t n, bool accumulate)
{
    if (!accumulate) {
        for (size_t r = 0; r < m; ++r)
            std::memset(c + r * n, 0, n * sizeof(float));
    }

    // Panel size along k chosen so a B panel (kc x n) of a typical
    // MemNN layer stays resident in L1/L2 while four C rows accumulate.
    constexpr size_t kc_block = 256;

    size_t r = 0;
    for (; r + 4 <= m; r += 4) {
        for (size_t p0 = 0; p0 < k; p0 += kc_block) {
            const size_t kc = std::min(kc_block, k - p0);
            gemmStrip4(a + r * k + p0, b + p0 * n, c + r * n,
                       kc, n, k, n, n);
        }
    }
    for (; r < m; ++r) {
        for (size_t p = 0; p < k; ++p)
            axpy(a[r * k + p], b + p * n, c + r * n, n);
    }
}

void
expInplace(float *x, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        x[i] = std::exp(x[i]);
}

void
expShiftInplace(float *x, size_t n, float shift)
{
    for (size_t i = 0; i < n; ++i)
        x[i] = std::exp(x[i] - shift);
}

} // namespace mnnfast::blas::scalar
