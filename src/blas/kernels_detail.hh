/**
 * @file
 * Internal kernel-backend table shared between the dispatch layer
 * (kernels.cc) and the SIMD translation units. Not installed; include
 * only from src/blas.
 */

#ifndef MNNFAST_BLAS_KERNELS_DETAIL_HH
#define MNNFAST_BLAS_KERNELS_DETAIL_HH

#include <cstddef>
#include <cstdint>

namespace mnnfast::blas::detail {

/** One full set of kernel entry points (see kernels.hh for contracts). */
struct KernelTable
{
    const char *name;
    float (*dot)(const float *, const float *, size_t);
    void (*axpy)(float, const float *, float *, size_t);
    void (*scal)(float, float *, size_t);
    float (*sum)(const float *, size_t);
    float (*maxElement)(const float *, size_t);
    void (*dotBatch)(const float *, const float *, size_t, size_t,
                     size_t, float *);
    void (*dotBatchMulti)(const float *, size_t, size_t, const float *,
                          size_t, size_t, size_t, float *, size_t);
    void (*weightedSumSkip)(const float *, const float *, size_t, size_t,
                            size_t, float, double &, float *, uint64_t &,
                            uint64_t &);
    /** Query tile bounded by blas::kWsumQueryTile (dispatch splits). */
    void (*weightedSumSkipMulti)(const float *, size_t, size_t,
                                 const float *, size_t, size_t, size_t,
                                 float, double *, float *, size_t,
                                 uint64_t &, uint64_t &);
    void (*dotBatchMultiBf16)(const float *, size_t, size_t,
                              const uint16_t *, size_t, size_t, size_t,
                              float *, size_t);
    /** Query tile bounded by blas::kWsumQueryTile (dispatch splits). */
    void (*weightedSumSkipMultiBf16)(const float *, size_t, size_t,
                                     const uint16_t *, size_t, size_t,
                                     size_t, float, double *, float *,
                                     size_t, uint64_t &, uint64_t &);
    void (*dotBatchMultiI8)(const float *, size_t, size_t,
                            const int8_t *, size_t, size_t, size_t,
                            float, float, float *, size_t);
    /** Query tile bounded by blas::kWsumQueryTile (dispatch splits). */
    void (*weightedSumSkipMultiI8)(const float *, size_t, size_t,
                                   const int8_t *, size_t, size_t,
                                   size_t, float, float, float,
                                   double *, float *, size_t,
                                   uint64_t &, uint64_t &);
    void (*chunkBoundBatch)(const float *, size_t, size_t,
                            const float *, const float *, size_t,
                            size_t, size_t, float *, size_t);
    void (*gemm)(const float *, const float *, float *, size_t, size_t,
                 size_t, bool);
    void (*expInplace)(float *, size_t);
    void (*expShiftInplace)(float *, size_t, float);
};

/**
 * The AVX2+FMA backend, or nullptr when the translation unit was built
 * without AVX2 support or the host CPU lacks the features. Defined in
 * kernels_avx2.cc (which is compiled with -mavx2 -mfma on x86-64 and
 * degrades to a nullptr stub elsewhere).
 */
const KernelTable *avx2Kernels();

} // namespace mnnfast::blas::detail

#endif // MNNFAST_BLAS_KERNELS_DETAIL_HH
