/**
 * @file
 * Position-encoding weights for bag-of-words sentence embeddings.
 *
 * The paper's footnote 1: "Some studies multiply position weights to
 * vectors before the sum of all vectors to preserve the order of
 * words in the sentence." This is the standard PE of Sukhbaatar et
 * al. (2015), eq. (4):
 *
 *   l_kj = (1 - j/J) - (k/d) * (1 - 2j/J)
 *
 * with j the 1-based word position, J the sentence length, k the
 * 1-based embedding coordinate, d the embedding dimension. The
 * sentence state becomes sum_j l_j (elementwise*) A[x_j].
 */

#ifndef MNNFAST_BLAS_POSITION_HH
#define MNNFAST_BLAS_POSITION_HH

#include <cstddef>

namespace mnnfast::blas {

/**
 * Position-encoding weight for embedding coordinate k (0-based) of
 * the word at position j (0-based) in a sentence of length J.
 */
inline float
positionWeight(size_t k, size_t j, size_t J, size_t d)
{
    const float jf = static_cast<float>(j + 1);
    const float kf = static_cast<float>(k + 1);
    const float Jf = static_cast<float>(J);
    const float df = static_cast<float>(d);
    return (1.0f - jf / Jf) - (kf / df) * (1.0f - 2.0f * jf / Jf);
}

/**
 * out += l_j (elementwise*) row, for the word at position j of a
 * J-word sentence.
 */
inline void
axpyPositionEncoded(const float *row, float *out, size_t j, size_t J,
                    size_t d)
{
    for (size_t k = 0; k < d; ++k)
        out[k] += positionWeight(k, j, J, d) * row[k];
}

} // namespace mnnfast::blas

#endif // MNNFAST_BLAS_POSITION_HH
