/**
 * @file
 * Kernel dispatch layer: binds the public blas:: entry points to the
 * scalar reference (kernels_scalar.cc) or the AVX2+FMA backend
 * (kernels_avx2.cc). The backend is chosen exactly once, at first use,
 * from the host CPU features and the MNNFAST_NO_SIMD environment
 * variable; composite kernels (gemv, softmax, ...) are built here on
 * top of the dispatched primitives so both backends share one
 * definition of the algorithm.
 */

#include "blas/kernels.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "blas/kernels_detail.hh"
#include "util/logging.hh"

namespace mnnfast::blas {

namespace {

detail::KernelTable
scalarTable()
{
    return {
        "scalar",        scalar::dot,          scalar::axpy,
        scalar::scal,    scalar::sum,          scalar::maxElement,
        scalar::dotBatch, scalar::dotBatchMulti,
        scalar::weightedSumSkip,               scalar::weightedSumSkipMulti,
        scalar::dotBatchMultiBf16,             scalar::weightedSumSkipMultiBf16,
        scalar::dotBatchMultiI8,               scalar::weightedSumSkipMultiI8,
        scalar::chunkBoundBatch,
        scalar::gemm,    scalar::expInplace,   scalar::expShiftInplace,
    };
}

/**
 * The active backend, resolved once (thread-safe static init).
 * MNNFAST_NO_SIMD set to anything but "0" or "" pins the scalar path.
 */
const detail::KernelTable &
active()
{
    static const detail::KernelTable table = [] {
        if (const char *env = std::getenv("MNNFAST_NO_SIMD");
            env && env[0] != '\0' && std::strcmp(env, "0") != 0)
            return scalarTable();
        if (const detail::KernelTable *avx2 = detail::avx2Kernels())
            return *avx2;
        return scalarTable();
    }();
    return table;
}

} // namespace

bool
simdActive()
{
    return std::strcmp(active().name, "scalar") != 0;
}

const char *
kernelBackendName()
{
    return active().name;
}

float
dot(const float *x, const float *y, size_t n)
{
    return active().dot(x, y, n);
}

void
axpy(float alpha, const float *x, float *y, size_t n)
{
    active().axpy(alpha, x, y, n);
}

void
scal(float alpha, float *x, size_t n)
{
    active().scal(alpha, x, n);
}

void
zero(float *x, size_t n)
{
    // n == 0 may come with a null pointer (e.g. an empty arena span),
    // which memset's nonnull contract forbids even for zero bytes.
    if (n > 0)
        std::memset(x, 0, n * sizeof(float));
}

void
copy(const float *src, float *dst, size_t n)
{
    if (n > 0)
        std::memcpy(dst, src, n * sizeof(float));
}

float
sum(const float *x, size_t n)
{
    return active().sum(x, n);
}

float
maxElement(const float *x, size_t n)
{
    mnn_assert(n > 0, "maxElement of empty vector");
    return active().maxElement(x, n);
}

void
dotBatch(const float *x, const float *rows, size_t count, size_t n,
         size_t stride, float *out)
{
    mnn_assert(stride >= n, "dotBatch stride shorter than row length");
    active().dotBatch(x, rows, count, n, stride, out);
}

void
dotBatchMulti(const float *x, size_t nx, size_t xstride,
              const float *rows, size_t count, size_t n, size_t stride,
              float *out, size_t ostride)
{
    mnn_assert(stride >= n && xstride >= n && ostride >= count,
               "dotBatchMulti stride shorter than row length");
    active().dotBatchMulti(x, nx, xstride, rows, count, n, stride, out,
                           ostride);
}

void
weightedSumSkip(const float *e, const float *rows, size_t count,
                size_t n, size_t stride, float threshold,
                double &running_sum, float *acc, uint64_t &kept,
                uint64_t &skipped)
{
    mnn_assert(stride >= n,
               "weightedSumSkip stride shorter than row length");
    active().weightedSumSkip(e, rows, count, n, stride, threshold,
                             running_sum, acc, kept, skipped);
}

void
weightedSumSkipMulti(const float *e, size_t ne, size_t estride,
                     const float *rows, size_t count, size_t n,
                     size_t stride, float threshold,
                     double *running_sums, float *acc, size_t accstride,
                     uint64_t &kept, uint64_t &skipped)
{
    mnn_assert(stride >= n && accstride >= n && estride >= count,
               "weightedSumSkipMulti stride shorter than row length");
    // The backend's kept-set scatter list is a fixed stack array of
    // kWsumQueryTile entries; split larger batches here so callers
    // can pass any ne. Query tiles are independent, so tiling cannot
    // change results.
    for (size_t q0 = 0; q0 < ne; q0 += kWsumQueryTile) {
        const size_t qb = std::min(kWsumQueryTile, ne - q0);
        active().weightedSumSkipMulti(
            e + q0 * estride, qb, estride, rows, count, n, stride,
            threshold, running_sums + q0, acc + q0 * accstride,
            accstride, kept, skipped);
    }
}

void
dotBatchMultiBf16(const float *x, size_t nx, size_t xstride,
                  const uint16_t *rows, size_t count, size_t n,
                  size_t stride, float *out, size_t ostride)
{
    mnn_assert(stride >= n && xstride >= n && ostride >= count,
               "dotBatchMultiBf16 stride shorter than row length");
    active().dotBatchMultiBf16(x, nx, xstride, rows, count, n, stride,
                               out, ostride);
}

void
weightedSumSkipMultiBf16(const float *e, size_t ne, size_t estride,
                         const uint16_t *rows, size_t count, size_t n,
                         size_t stride, float threshold,
                         double *running_sums, float *acc,
                         size_t accstride, uint64_t &kept,
                         uint64_t &skipped)
{
    mnn_assert(stride >= n && accstride >= n && estride >= count,
               "weightedSumSkipMultiBf16 stride shorter than row length");
    // Same kWsumQueryTile split as the fp32 variant: the backend's
    // kept-set scatter list is a fixed stack array.
    for (size_t q0 = 0; q0 < ne; q0 += kWsumQueryTile) {
        const size_t qb = std::min(kWsumQueryTile, ne - q0);
        active().weightedSumSkipMultiBf16(
            e + q0 * estride, qb, estride, rows, count, n, stride,
            threshold, running_sums + q0, acc + q0 * accstride,
            accstride, kept, skipped);
    }
}

void
dotBatchMultiI8(const float *x, size_t nx, size_t xstride,
                const int8_t *rows, size_t count, size_t n,
                size_t stride, float scale, float zero, float *out,
                size_t ostride)
{
    mnn_assert(stride >= n && xstride >= n && ostride >= count,
               "dotBatchMultiI8 stride shorter than row length");
    active().dotBatchMultiI8(x, nx, xstride, rows, count, n, stride,
                             scale, zero, out, ostride);
}

void
weightedSumSkipMultiI8(const float *e, size_t ne, size_t estride,
                       const int8_t *rows, size_t count, size_t n,
                       size_t stride, float scale, float zero,
                       float threshold, double *running_sums, float *acc,
                       size_t accstride, uint64_t &kept,
                       uint64_t &skipped)
{
    mnn_assert(stride >= n && accstride >= n && estride >= count,
               "weightedSumSkipMultiI8 stride shorter than row length");
    // Same kWsumQueryTile split as the f32/bf16 variants: the
    // backend's kept-set scatter list is a fixed stack array.
    for (size_t q0 = 0; q0 < ne; q0 += kWsumQueryTile) {
        const size_t qb = std::min(kWsumQueryTile, ne - q0);
        active().weightedSumSkipMultiI8(
            e + q0 * estride, qb, estride, rows, count, n, stride,
            scale, zero, threshold, running_sums + q0,
            acc + q0 * accstride, accstride, kept, skipped);
    }
}

void
chunkBoundBatch(const float *x, size_t nx, size_t xstride,
                const float *lo, const float *hi, size_t count, size_t n,
                size_t stride, float *out, size_t ostride)
{
    mnn_assert(stride >= n && xstride >= n && ostride >= count,
               "chunkBoundBatch stride shorter than row length");
    active().chunkBoundBatch(x, nx, xstride, lo, hi, count, n, stride,
                             out, ostride);
}

void
gemv(const float *a, size_t rows, size_t cols, const float *x, float *y)
{
    active().dotBatch(x, a, rows, cols, cols, y);
}

void
gemvT(const float *a, size_t rows, size_t cols, const float *x, float *y)
{
    zero(y, cols);
    for (size_t r = 0; r < rows; ++r)
        active().axpy(x[r], a + r * cols, y, cols);
}

void
gemm(const float *a, const float *b, float *c,
     size_t m, size_t k, size_t n, bool accumulate)
{
    active().gemm(a, b, c, m, k, n, accumulate);
}

void
expInplace(float *x, size_t n)
{
    active().expInplace(x, n);
}

void
expShiftInplace(float *x, size_t n, float shift)
{
    active().expShiftInplace(x, n, shift);
}

void
softmax(float *x, size_t n)
{
    if (n == 0)
        return;
    const float m = maxElement(x, n);
    expShiftInplace(x, n, m);
    const float s = sum(x, n);
    scal(1.0f / s, x, n);
}

void
softmaxRaw(float *x, size_t n)
{
    if (n == 0)
        return;
    // e^x overflows float above ~88.7; past that the raw quotient is
    // inf/inf = NaN. Route large-logit inputs through the shifted
    // path, which is the same quotient algebraically.
    const float m = maxElement(x, n);
    if (m > 80.0f) {
        expShiftInplace(x, n, m);
    } else {
        expInplace(x, n);
    }
    const float s = sum(x, n);
    scal(1.0f / s, x, n);
}

} // namespace mnnfast::blas
