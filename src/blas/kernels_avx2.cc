/**
 * @file
 * AVX2+FMA kernel backend.
 *
 * This translation unit is compiled with -mavx2 -mfma on x86-64 (see
 * src/CMakeLists.txt) and degrades to a nullptr stub elsewhere, so the
 * rest of the library never needs target attributes. Nothing here is
 * reachable unless avx2Kernels() returned a table, which requires the
 * host CPU to report AVX2 and FMA at startup.
 *
 * Kernel shapes (see DESIGN.md "Kernel architecture & dispatch"):
 *  - reductions (dot/sum/max): 4 x 8-lane accumulators, one horizontal
 *    reduce at the end;
 *  - dotBatch: 4 rows share each 8-lane load of x, quartering the
 *    query-side load traffic;
 *  - exp: Cephes-style polynomial (2^n * P(r) after range reduction),
 *    ~2 ulp, with explicit inf/0 resolution outside [-87.34, 88.38]
 *    so overflow behaves like std::exp;
 *  - gemm: B packed into 16-wide column panels, 4x16 register-tiled
 *    FMA micro-kernel (8 accumulator registers), kc = 256.
 */

#include "blas/kernels_detail.hh"

#include "blas/kernels.hh" // kWsumQueryTile
#include "util/bf16.hh"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace mnnfast::blas::detail {
namespace {

inline float
hsum8(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
    return _mm_cvtss_f32(s);
}

inline float
hmax8(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 m = _mm_max_ps(lo, hi);
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 0x55));
    return _mm_cvtss_f32(m);
}

float
dotAvx2(const float *x, const float *y, size_t n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8),
                               _mm256_loadu_ps(y + i + 8), acc1);
        acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 16),
                               _mm256_loadu_ps(y + i + 16), acc2);
        acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 24),
                               _mm256_loadu_ps(y + i + 24), acc3);
    }
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i), acc0);
    }
    acc0 = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                         _mm256_add_ps(acc2, acc3));
    float r = hsum8(acc0);
    for (; i < n; ++i)
        r += x[i] * y[i];
    return r;
}

void
axpyAvx2(float alpha, const float *x, float *y, size_t n)
{
    const __m256 a = _mm256_set1_ps(alpha);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        _mm256_storeu_ps(
            y + i, _mm256_fmadd_ps(a, _mm256_loadu_ps(x + i),
                                   _mm256_loadu_ps(y + i)));
        _mm256_storeu_ps(
            y + i + 8, _mm256_fmadd_ps(a, _mm256_loadu_ps(x + i + 8),
                                       _mm256_loadu_ps(y + i + 8)));
    }
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(
            y + i, _mm256_fmadd_ps(a, _mm256_loadu_ps(x + i),
                                   _mm256_loadu_ps(y + i)));
    }
    for (; i < n; ++i)
        y[i] += alpha * x[i];
}

void
scalAvx2(float alpha, float *x, size_t n)
{
    const __m256 a = _mm256_set1_ps(alpha);
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(x + i,
                         _mm256_mul_ps(a, _mm256_loadu_ps(x + i)));
    for (; i < n; ++i)
        x[i] *= alpha;
}

float
sumAvx2(const float *x, size_t n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(x + i));
        acc1 = _mm256_add_ps(acc1, _mm256_loadu_ps(x + i + 8));
        acc2 = _mm256_add_ps(acc2, _mm256_loadu_ps(x + i + 16));
        acc3 = _mm256_add_ps(acc3, _mm256_loadu_ps(x + i + 24));
    }
    for (; i + 8 <= n; i += 8)
        acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(x + i));
    acc0 = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                         _mm256_add_ps(acc2, acc3));
    float r = hsum8(acc0);
    for (; i < n; ++i)
        r += x[i];
    return r;
}

float
maxElementAvx2(const float *x, size_t n)
{
    if (n < 8) {
        float m = x[0];
        for (size_t i = 1; i < n; ++i)
            m = std::max(m, x[i]);
        return m;
    }
    __m256 acc = _mm256_loadu_ps(x);
    size_t i = 8;
    for (; i + 8 <= n; i += 8)
        acc = _mm256_max_ps(acc, _mm256_loadu_ps(x + i));
    float m = hmax8(acc);
    for (; i < n; ++i)
        m = std::max(m, x[i]);
    return m;
}

void
dotBatchAvx2(const float *x, const float *rows, size_t count, size_t n,
             size_t stride, float *out)
{
    size_t r = 0;
    for (; r + 4 <= count; r += 4) {
        const float *r0 = rows + (r + 0) * stride;
        const float *r1 = rows + (r + 1) * stride;
        const float *r2 = rows + (r + 2) * stride;
        const float *r3 = rows + (r + 3) * stride;
        __m256 a0 = _mm256_setzero_ps();
        __m256 a1 = _mm256_setzero_ps();
        __m256 a2 = _mm256_setzero_ps();
        __m256 a3 = _mm256_setzero_ps();
        size_t i = 0;
        for (; i + 8 <= n; i += 8) {
            // One load of x feeds four row FMAs.
            const __m256 xv = _mm256_loadu_ps(x + i);
            a0 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(r0 + i), a0);
            a1 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(r1 + i), a1);
            a2 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(r2 + i), a2);
            a3 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(r3 + i), a3);
        }
        float s0 = hsum8(a0), s1 = hsum8(a1);
        float s2 = hsum8(a2), s3 = hsum8(a3);
        for (; i < n; ++i) {
            const float xi = x[i];
            s0 += xi * r0[i];
            s1 += xi * r1[i];
            s2 += xi * r2[i];
            s3 += xi * r3[i];
        }
        out[r + 0] = s0;
        out[r + 1] = s1;
        out[r + 2] = s2;
        out[r + 3] = s3;
    }
    for (; r < count; ++r)
        out[r] = dotAvx2(x, rows + r * stride, n);
}

/**
 * Query-blocked batched dots, register tile = 2 queries x 4 rows
 * (8 accumulators + 2 query + 1 row vector in flight). Each 8-wide
 * row load feeds both queries, so per-query row traffic halves and
 * the load/FMA ratio drops below the two-loads-per-cycle port limit
 * that bounds dotBatch. Every (q, r) pair keeps dotBatch's exact
 * accumulation order — one 8-lane chain, hsum, scalar tail — so the
 * output is bit-identical to per-query dotBatch calls.
 */
void
dotBatchMultiAvx2(const float *x, size_t nx, size_t xstride,
                  const float *rows, size_t count, size_t n,
                  size_t stride, float *out, size_t ostride)
{
    size_t q = 0;
    for (; q + 2 <= nx; q += 2) {
        const float *x0 = x + q * xstride;
        const float *x1 = x0 + xstride;
        float *o0 = out + q * ostride;
        float *o1 = o0 + ostride;
        size_t r = 0;
        for (; r + 4 <= count; r += 4) {
            const float *r0 = rows + (r + 0) * stride;
            const float *r1 = rows + (r + 1) * stride;
            const float *r2 = rows + (r + 2) * stride;
            const float *r3 = rows + (r + 3) * stride;
            __m256 a00 = _mm256_setzero_ps();
            __m256 a01 = _mm256_setzero_ps();
            __m256 a02 = _mm256_setzero_ps();
            __m256 a03 = _mm256_setzero_ps();
            __m256 a10 = _mm256_setzero_ps();
            __m256 a11 = _mm256_setzero_ps();
            __m256 a12 = _mm256_setzero_ps();
            __m256 a13 = _mm256_setzero_ps();
            size_t i = 0;
            for (; i + 8 <= n; i += 8) {
                const __m256 xv0 = _mm256_loadu_ps(x0 + i);
                const __m256 xv1 = _mm256_loadu_ps(x1 + i);
                // One load per row feeds both query FMAs.
                __m256 rv = _mm256_loadu_ps(r0 + i);
                a00 = _mm256_fmadd_ps(xv0, rv, a00);
                a10 = _mm256_fmadd_ps(xv1, rv, a10);
                rv = _mm256_loadu_ps(r1 + i);
                a01 = _mm256_fmadd_ps(xv0, rv, a01);
                a11 = _mm256_fmadd_ps(xv1, rv, a11);
                rv = _mm256_loadu_ps(r2 + i);
                a02 = _mm256_fmadd_ps(xv0, rv, a02);
                a12 = _mm256_fmadd_ps(xv1, rv, a12);
                rv = _mm256_loadu_ps(r3 + i);
                a03 = _mm256_fmadd_ps(xv0, rv, a03);
                a13 = _mm256_fmadd_ps(xv1, rv, a13);
            }
            float s00 = hsum8(a00), s01 = hsum8(a01);
            float s02 = hsum8(a02), s03 = hsum8(a03);
            float s10 = hsum8(a10), s11 = hsum8(a11);
            float s12 = hsum8(a12), s13 = hsum8(a13);
            for (; i < n; ++i) {
                const float xi0 = x0[i];
                const float xi1 = x1[i];
                s00 += xi0 * r0[i];
                s01 += xi0 * r1[i];
                s02 += xi0 * r2[i];
                s03 += xi0 * r3[i];
                s10 += xi1 * r0[i];
                s11 += xi1 * r1[i];
                s12 += xi1 * r2[i];
                s13 += xi1 * r3[i];
            }
            o0[r + 0] = s00;
            o0[r + 1] = s01;
            o0[r + 2] = s02;
            o0[r + 3] = s03;
            o1[r + 0] = s10;
            o1[r + 1] = s11;
            o1[r + 2] = s12;
            o1[r + 3] = s13;
        }
        // Row tail (< 4): the same single-row kernel dotBatch uses.
        for (; r < count; ++r) {
            o0[r] = dotAvx2(x0, rows + r * stride, n);
            o1[r] = dotAvx2(x1, rows + r * stride, n);
        }
    }
    if (q < nx)
        dotBatchAvx2(x + q * xstride, rows, count, n, stride,
                     out + q * ostride);
}

void
weightedSumSkipAvx2(const float *e, const float *rows, size_t count,
                    size_t n, size_t stride, float threshold,
                    double &running_sum, float *acc, uint64_t &kept,
                    uint64_t &skipped)
{
    double s = running_sum;
    for (size_t r = 0; r < count; ++r) {
        const float ev = e[r];
        s += ev;
        if (threshold > 0.f && double(ev) < double(threshold) * s) {
            ++skipped;
            continue;
        }
        ++kept;
        axpyAvx2(ev, rows + r * stride, acc, n);
    }
    running_sum = s;
}

/**
 * Query-blocked weighted sum: for every row, the skip test runs per
 * query in scalar double (identical to weightedSumSkip), the kept
 * queries are gathered into a scatter list, and then each 8-wide row
 * load is FMA'd into every kept accumulator while it sits in a
 * register. axpy is elementwise (no cross-element accumulation), so
 * the interleaving leaves each query's accumulator bit-identical to
 * a separate axpyAvx2 call.
 */
void
weightedSumSkipMultiAvx2(const float *e, size_t ne, size_t estride,
                         const float *rows, size_t count, size_t n,
                         size_t stride, float threshold,
                         double *running_sums, float *acc,
                         size_t accstride, uint64_t &kept,
                         uint64_t &skipped)
{
    float alpha[blas::kWsumQueryTile];
    float *dst[blas::kWsumQueryTile];
    for (size_t r = 0; r < count; ++r) {
        const float *row = rows + r * stride;
        size_t nk = 0;
        for (size_t q = 0; q < ne; ++q) {
            const float ev = e[q * estride + r];
            const double s = running_sums[q] + ev;
            running_sums[q] = s;
            if (threshold > 0.f && double(ev) < double(threshold) * s) {
                ++skipped;
                continue;
            }
            ++kept;
            alpha[nk] = ev;
            dst[nk] = acc + q * accstride;
            ++nk;
        }
        if (nk == 0)
            continue;
        size_t i = 0;
        for (; i + 8 <= n; i += 8) {
            const __m256 rv = _mm256_loadu_ps(row + i);
            for (size_t j = 0; j < nk; ++j) {
                _mm256_storeu_ps(
                    dst[j] + i,
                    _mm256_fmadd_ps(_mm256_set1_ps(alpha[j]), rv,
                                    _mm256_loadu_ps(dst[j] + i)));
            }
        }
        for (; i < n; ++i) {
            for (size_t j = 0; j < nk; ++j)
                dst[j][i] += alpha[j] * row[i];
        }
    }
}

// --- bf16 row kernels -----------------------------------------------

/**
 * Widen 8 bf16 elements to fp32 lanes: zero-extend to 32 bits and
 * shift into the high half. Exact (no rounding), so the upconverted
 * lanes equal bf16ToFloat element-for-element.
 */
inline __m256
bf16Load8(const uint16_t *p)
{
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    const __m256i w = _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16);
    return _mm256_castsi256_ps(w);
}

/**
 * Canonical bf16 dot (see kernels.hh): ONE 8-lane fma chain over the
 * body, hsum8's pairwise reduction, std::fma tail. The scalar backend
 * replays exactly this order with scalar fmas, so the two backends
 * are bit-identical; the tiled kernels below keep one such chain per
 * (query, row) pair.
 */
float
dotBf16Avx2(const float *x, const uint16_t *row, size_t n)
{
    __m256 acc = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), bf16Load8(row + i),
                              acc);
    float r = hsum8(acc);
    for (; i < n; ++i)
        r = std::fma(x[i], bf16ToFloat(row[i]), r);
    return r;
}

/**
 * Query-blocked bf16 batched dots: 2 queries x 4 rows in the main
 * tile (one bf16Load8 per row feeds both query fmas, halving the
 * widen work and the per-query row traffic), a 1 x 4 tile for the
 * odd query, and dotBf16Avx2 for row tails. Each pair's accumulator
 * is its own canonical chain, so the tiling never changes bits.
 */
void
dotBatchMultiBf16Avx2(const float *x, size_t nx, size_t xstride,
                      const uint16_t *rows, size_t count, size_t n,
                      size_t stride, float *out, size_t ostride)
{
    size_t q = 0;
    for (; q + 2 <= nx; q += 2) {
        const float *x0 = x + q * xstride;
        const float *x1 = x0 + xstride;
        float *o0 = out + q * ostride;
        float *o1 = o0 + ostride;
        size_t r = 0;
        for (; r + 4 <= count; r += 4) {
            const uint16_t *r0 = rows + (r + 0) * stride;
            const uint16_t *r1 = rows + (r + 1) * stride;
            const uint16_t *r2 = rows + (r + 2) * stride;
            const uint16_t *r3 = rows + (r + 3) * stride;
            __m256 a00 = _mm256_setzero_ps();
            __m256 a01 = _mm256_setzero_ps();
            __m256 a02 = _mm256_setzero_ps();
            __m256 a03 = _mm256_setzero_ps();
            __m256 a10 = _mm256_setzero_ps();
            __m256 a11 = _mm256_setzero_ps();
            __m256 a12 = _mm256_setzero_ps();
            __m256 a13 = _mm256_setzero_ps();
            size_t i = 0;
            for (; i + 8 <= n; i += 8) {
                const __m256 xv0 = _mm256_loadu_ps(x0 + i);
                const __m256 xv1 = _mm256_loadu_ps(x1 + i);
                // One widen per row feeds both query FMAs.
                __m256 rv = bf16Load8(r0 + i);
                a00 = _mm256_fmadd_ps(xv0, rv, a00);
                a10 = _mm256_fmadd_ps(xv1, rv, a10);
                rv = bf16Load8(r1 + i);
                a01 = _mm256_fmadd_ps(xv0, rv, a01);
                a11 = _mm256_fmadd_ps(xv1, rv, a11);
                rv = bf16Load8(r2 + i);
                a02 = _mm256_fmadd_ps(xv0, rv, a02);
                a12 = _mm256_fmadd_ps(xv1, rv, a12);
                rv = bf16Load8(r3 + i);
                a03 = _mm256_fmadd_ps(xv0, rv, a03);
                a13 = _mm256_fmadd_ps(xv1, rv, a13);
            }
            float s00 = hsum8(a00), s01 = hsum8(a01);
            float s02 = hsum8(a02), s03 = hsum8(a03);
            float s10 = hsum8(a10), s11 = hsum8(a11);
            float s12 = hsum8(a12), s13 = hsum8(a13);
            for (; i < n; ++i) {
                const float xi0 = x0[i];
                const float xi1 = x1[i];
                const float e0 = bf16ToFloat(r0[i]);
                const float e1 = bf16ToFloat(r1[i]);
                const float e2 = bf16ToFloat(r2[i]);
                const float e3 = bf16ToFloat(r3[i]);
                s00 = std::fma(xi0, e0, s00);
                s01 = std::fma(xi0, e1, s01);
                s02 = std::fma(xi0, e2, s02);
                s03 = std::fma(xi0, e3, s03);
                s10 = std::fma(xi1, e0, s10);
                s11 = std::fma(xi1, e1, s11);
                s12 = std::fma(xi1, e2, s12);
                s13 = std::fma(xi1, e3, s13);
            }
            o0[r + 0] = s00;
            o0[r + 1] = s01;
            o0[r + 2] = s02;
            o0[r + 3] = s03;
            o1[r + 0] = s10;
            o1[r + 1] = s11;
            o1[r + 2] = s12;
            o1[r + 3] = s13;
        }
        for (; r < count; ++r) {
            o0[r] = dotBf16Avx2(x0, rows + r * stride, n);
            o1[r] = dotBf16Avx2(x1, rows + r * stride, n);
        }
    }
    if (q < nx) {
        // Last odd query: 4-row groups so the x loads amortize and
        // four independent chains cover the fma latency.
        const float *x0 = x + q * xstride;
        float *o0 = out + q * ostride;
        size_t r = 0;
        for (; r + 4 <= count; r += 4) {
            const uint16_t *r0 = rows + (r + 0) * stride;
            const uint16_t *r1 = rows + (r + 1) * stride;
            const uint16_t *r2 = rows + (r + 2) * stride;
            const uint16_t *r3 = rows + (r + 3) * stride;
            __m256 a0 = _mm256_setzero_ps();
            __m256 a1 = _mm256_setzero_ps();
            __m256 a2 = _mm256_setzero_ps();
            __m256 a3 = _mm256_setzero_ps();
            size_t i = 0;
            for (; i + 8 <= n; i += 8) {
                const __m256 xv = _mm256_loadu_ps(x0 + i);
                a0 = _mm256_fmadd_ps(xv, bf16Load8(r0 + i), a0);
                a1 = _mm256_fmadd_ps(xv, bf16Load8(r1 + i), a1);
                a2 = _mm256_fmadd_ps(xv, bf16Load8(r2 + i), a2);
                a3 = _mm256_fmadd_ps(xv, bf16Load8(r3 + i), a3);
            }
            float s0 = hsum8(a0), s1 = hsum8(a1);
            float s2 = hsum8(a2), s3 = hsum8(a3);
            for (; i < n; ++i) {
                const float xi = x0[i];
                s0 = std::fma(xi, bf16ToFloat(r0[i]), s0);
                s1 = std::fma(xi, bf16ToFloat(r1[i]), s1);
                s2 = std::fma(xi, bf16ToFloat(r2[i]), s2);
                s3 = std::fma(xi, bf16ToFloat(r3[i]), s3);
            }
            o0[r + 0] = s0;
            o0[r + 1] = s1;
            o0[r + 2] = s2;
            o0[r + 3] = s3;
        }
        for (; r < count; ++r)
            o0[r] = dotBf16Avx2(x0, rows + r * stride, n);
    }
}

/**
 * Query-blocked bf16 weighted sum: identical structure to the fp32
 * kernel — per-(query, row) scalar-double skip tests, kept-query
 * scatter list — with each kept row widened once per 8-lane block and
 * fma'd into every kept accumulator. Tail elements use std::fma so
 * the update rounding matches the scalar backend exactly.
 */
void
weightedSumSkipMultiBf16Avx2(const float *e, size_t ne, size_t estride,
                             const uint16_t *rows, size_t count,
                             size_t n, size_t stride, float threshold,
                             double *running_sums, float *acc,
                             size_t accstride, uint64_t &kept,
                             uint64_t &skipped)
{
    float alpha[blas::kWsumQueryTile];
    float *dst[blas::kWsumQueryTile];
    for (size_t r = 0; r < count; ++r) {
        const uint16_t *row = rows + r * stride;
        size_t nk = 0;
        for (size_t q = 0; q < ne; ++q) {
            const float ev = e[q * estride + r];
            const double s = running_sums[q] + ev;
            running_sums[q] = s;
            if (threshold > 0.f && double(ev) < double(threshold) * s) {
                ++skipped;
                continue;
            }
            ++kept;
            alpha[nk] = ev;
            dst[nk] = acc + q * accstride;
            ++nk;
        }
        if (nk == 0)
            continue;
        size_t i = 0;
        for (; i + 8 <= n; i += 8) {
            const __m256 rv = bf16Load8(row + i);
            for (size_t j = 0; j < nk; ++j) {
                _mm256_storeu_ps(
                    dst[j] + i,
                    _mm256_fmadd_ps(_mm256_set1_ps(alpha[j]), rv,
                                    _mm256_loadu_ps(dst[j] + i)));
            }
        }
        for (; i < n; ++i) {
            const float ri = bf16ToFloat(row[i]);
            for (size_t j = 0; j < nk; ++j)
                dst[j][i] = std::fma(alpha[j], ri, dst[j][i]);
        }
    }
}

// --- int8 row kernels -----------------------------------------------

/**
 * Widen 8 int8 elements to fp32 lanes: sign-extend to 32 bits, then
 * int->float convert. Exact for the int8 range (no rounding), so the
 * widened lanes equal static_cast<float>(row[i]) element-for-element.
 */
inline __m256
i8Load8(const int8_t *p)
{
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p));
    return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
}

/**
 * Canonical raw i8 dot (see kernels.hh): ONE 8-lane fma chain over
 * the widened body, hsum8's pairwise reduction, std::fma tail —
 * exactly the scalar backend's lane walk. The affine (scale, zero)
 * code is applied by the caller in the factored form.
 */
float
dotI8RawAvx2(const float *x, const int8_t *row, size_t n)
{
    __m256 acc = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), i8Load8(row + i),
                              acc);
    float r = hsum8(acc);
    for (; i < n; ++i)
        r = std::fma(x[i], static_cast<float>(row[i]), r);
    return r;
}

/**
 * Canonical query sum for the factored i8 dot: vertical 8-lane adds,
 * hsum8, scalar tail — the scalar backend replays this order exactly.
 */
float
querySumAvx2(const float *x, size_t n)
{
    __m256 acc = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm256_add_ps(acc, _mm256_loadu_ps(x + i));
    float r = hsum8(acc);
    for (; i < n; ++i)
        r += x[i];
    return r;
}

/**
 * Prefetch one int8 row (n payload bytes at `row`) into L1. The i8
 * sweeps retire 64 elements per cache line, so the out-of-order
 * window alone holds too few line fills in flight to cover the L3
 * latency (unlike f32, which turns over lines 4x faster); an explicit
 * prefetch a few rows ahead keeps the stream saturated. Hint-only:
 * never changes results.
 *
 * Look-ahead indices are deliberately NOT clamped to the call's row
 * count: the engines sweep one contiguous matrix in strip-sized
 * calls, so rows past this call are almost always the next call's
 * rows, and clamping would stall the stream at every strip boundary.
 * At the true end of the matrix the prefetch reaches at most
 * kI8PrefetchRows rows past the allocation — prefetch instructions
 * never fault, so this is harmless.
 */
inline void
prefetchI8Row(const int8_t *row, size_t n)
{
    for (size_t b = 0; b < n; b += 64)
        _mm_prefetch(reinterpret_cast<const char *>(row) + b,
                     _MM_HINT_T0);
}

/** Row distance the i8 sweeps prefetch ahead of the compute. */
constexpr size_t kI8PrefetchRows = 8;

/**
 * Query-blocked i8 batched dots: 2 queries x 4 rows in the main tile
 * (one i8Load8 widen per row feeds both query fmas), a 1 x 8 then
 * 1 x 4 tile for the odd query, dotI8RawAvx2 for row tails. Each
 * (q, r) accumulator is its own canonical chain and the per-query
 * zero*qsum constant is folded in at store time, so tiling never
 * changes bits. All tiles prefetch kI8PrefetchRows ahead (see
 * prefetchI8Row).
 */
void
dotBatchMultiI8Avx2(const float *x, size_t nx, size_t xstride,
                    const int8_t *rows, size_t count, size_t n,
                    size_t stride, float scale, float zero, float *out,
                    size_t ostride)
{
    size_t q = 0;
    for (; q + 2 <= nx; q += 2) {
        const float *x0 = x + q * xstride;
        const float *x1 = x0 + xstride;
        float *o0 = out + q * ostride;
        float *o1 = o0 + ostride;
        const float qs0 = zero * querySumAvx2(x0, n);
        const float qs1 = zero * querySumAvx2(x1, n);
        size_t r = 0;
        for (; r + 4 <= count; r += 4) {
            for (size_t k = 0; k < 4; ++k)
                prefetchI8Row(
                    rows + (r + kI8PrefetchRows + k) * stride, n);
            const int8_t *r0 = rows + (r + 0) * stride;
            const int8_t *r1 = rows + (r + 1) * stride;
            const int8_t *r2 = rows + (r + 2) * stride;
            const int8_t *r3 = rows + (r + 3) * stride;
            __m256 a00 = _mm256_setzero_ps();
            __m256 a01 = _mm256_setzero_ps();
            __m256 a02 = _mm256_setzero_ps();
            __m256 a03 = _mm256_setzero_ps();
            __m256 a10 = _mm256_setzero_ps();
            __m256 a11 = _mm256_setzero_ps();
            __m256 a12 = _mm256_setzero_ps();
            __m256 a13 = _mm256_setzero_ps();
            size_t i = 0;
            for (; i + 8 <= n; i += 8) {
                const __m256 xv0 = _mm256_loadu_ps(x0 + i);
                const __m256 xv1 = _mm256_loadu_ps(x1 + i);
                // One widen per row feeds both query FMAs.
                __m256 rv = i8Load8(r0 + i);
                a00 = _mm256_fmadd_ps(xv0, rv, a00);
                a10 = _mm256_fmadd_ps(xv1, rv, a10);
                rv = i8Load8(r1 + i);
                a01 = _mm256_fmadd_ps(xv0, rv, a01);
                a11 = _mm256_fmadd_ps(xv1, rv, a11);
                rv = i8Load8(r2 + i);
                a02 = _mm256_fmadd_ps(xv0, rv, a02);
                a12 = _mm256_fmadd_ps(xv1, rv, a12);
                rv = i8Load8(r3 + i);
                a03 = _mm256_fmadd_ps(xv0, rv, a03);
                a13 = _mm256_fmadd_ps(xv1, rv, a13);
            }
            float s00 = hsum8(a00), s01 = hsum8(a01);
            float s02 = hsum8(a02), s03 = hsum8(a03);
            float s10 = hsum8(a10), s11 = hsum8(a11);
            float s12 = hsum8(a12), s13 = hsum8(a13);
            for (; i < n; ++i) {
                const float xi0 = x0[i];
                const float xi1 = x1[i];
                const float e0 = static_cast<float>(r0[i]);
                const float e1 = static_cast<float>(r1[i]);
                const float e2 = static_cast<float>(r2[i]);
                const float e3 = static_cast<float>(r3[i]);
                s00 = std::fma(xi0, e0, s00);
                s01 = std::fma(xi0, e1, s01);
                s02 = std::fma(xi0, e2, s02);
                s03 = std::fma(xi0, e3, s03);
                s10 = std::fma(xi1, e0, s10);
                s11 = std::fma(xi1, e1, s11);
                s12 = std::fma(xi1, e2, s12);
                s13 = std::fma(xi1, e3, s13);
            }
            o0[r + 0] = std::fma(scale, s00, qs0);
            o0[r + 1] = std::fma(scale, s01, qs0);
            o0[r + 2] = std::fma(scale, s02, qs0);
            o0[r + 3] = std::fma(scale, s03, qs0);
            o1[r + 0] = std::fma(scale, s10, qs1);
            o1[r + 1] = std::fma(scale, s11, qs1);
            o1[r + 2] = std::fma(scale, s12, qs1);
            o1[r + 3] = std::fma(scale, s13, qs1);
        }
        for (; r < count; ++r) {
            o0[r] = std::fma(scale,
                             dotI8RawAvx2(x0, rows + r * stride, n),
                             qs0);
            o1[r] = std::fma(scale,
                             dotI8RawAvx2(x1, rows + r * stride, n),
                             qs1);
        }
    }
    if (q < nx) {
        // Last odd query: 8-row groups first — eight independent
        // chains cover the fma latency AND keep enough line fills in
        // flight that the single-query sweep streams from L3 at the
        // convert-limited rate — then a 4-row group, then row tails.
        const float *x0 = x + q * xstride;
        float *o0 = out + q * ostride;
        const float qs0 = zero * querySumAvx2(x0, n);
        size_t r = 0;
        for (; r + 8 <= count; r += 8) {
            for (size_t k = 0; k < 8; ++k)
                prefetchI8Row(
                    rows + (r + kI8PrefetchRows + k) * stride, n);
            const int8_t *rb = rows + r * stride;
            __m256 a0 = _mm256_setzero_ps();
            __m256 a1 = _mm256_setzero_ps();
            __m256 a2 = _mm256_setzero_ps();
            __m256 a3 = _mm256_setzero_ps();
            __m256 a4 = _mm256_setzero_ps();
            __m256 a5 = _mm256_setzero_ps();
            __m256 a6 = _mm256_setzero_ps();
            __m256 a7 = _mm256_setzero_ps();
            size_t i = 0;
            for (; i + 8 <= n; i += 8) {
                const __m256 xv = _mm256_loadu_ps(x0 + i);
                a0 = _mm256_fmadd_ps(xv, i8Load8(rb + 0 * stride + i),
                                     a0);
                a1 = _mm256_fmadd_ps(xv, i8Load8(rb + 1 * stride + i),
                                     a1);
                a2 = _mm256_fmadd_ps(xv, i8Load8(rb + 2 * stride + i),
                                     a2);
                a3 = _mm256_fmadd_ps(xv, i8Load8(rb + 3 * stride + i),
                                     a3);
                a4 = _mm256_fmadd_ps(xv, i8Load8(rb + 4 * stride + i),
                                     a4);
                a5 = _mm256_fmadd_ps(xv, i8Load8(rb + 5 * stride + i),
                                     a5);
                a6 = _mm256_fmadd_ps(xv, i8Load8(rb + 6 * stride + i),
                                     a6);
                a7 = _mm256_fmadd_ps(xv, i8Load8(rb + 7 * stride + i),
                                     a7);
            }
            float s0 = hsum8(a0), s1 = hsum8(a1);
            float s2 = hsum8(a2), s3 = hsum8(a3);
            float s4 = hsum8(a4), s5 = hsum8(a5);
            float s6 = hsum8(a6), s7 = hsum8(a7);
            for (; i < n; ++i) {
                const float xi = x0[i];
                s0 = std::fma(xi, float(rb[0 * stride + i]), s0);
                s1 = std::fma(xi, float(rb[1 * stride + i]), s1);
                s2 = std::fma(xi, float(rb[2 * stride + i]), s2);
                s3 = std::fma(xi, float(rb[3 * stride + i]), s3);
                s4 = std::fma(xi, float(rb[4 * stride + i]), s4);
                s5 = std::fma(xi, float(rb[5 * stride + i]), s5);
                s6 = std::fma(xi, float(rb[6 * stride + i]), s6);
                s7 = std::fma(xi, float(rb[7 * stride + i]), s7);
            }
            o0[r + 0] = std::fma(scale, s0, qs0);
            o0[r + 1] = std::fma(scale, s1, qs0);
            o0[r + 2] = std::fma(scale, s2, qs0);
            o0[r + 3] = std::fma(scale, s3, qs0);
            o0[r + 4] = std::fma(scale, s4, qs0);
            o0[r + 5] = std::fma(scale, s5, qs0);
            o0[r + 6] = std::fma(scale, s6, qs0);
            o0[r + 7] = std::fma(scale, s7, qs0);
        }
        for (; r + 4 <= count; r += 4) {
            const int8_t *r0 = rows + (r + 0) * stride;
            const int8_t *r1 = rows + (r + 1) * stride;
            const int8_t *r2 = rows + (r + 2) * stride;
            const int8_t *r3 = rows + (r + 3) * stride;
            __m256 a0 = _mm256_setzero_ps();
            __m256 a1 = _mm256_setzero_ps();
            __m256 a2 = _mm256_setzero_ps();
            __m256 a3 = _mm256_setzero_ps();
            size_t i = 0;
            for (; i + 8 <= n; i += 8) {
                const __m256 xv = _mm256_loadu_ps(x0 + i);
                a0 = _mm256_fmadd_ps(xv, i8Load8(r0 + i), a0);
                a1 = _mm256_fmadd_ps(xv, i8Load8(r1 + i), a1);
                a2 = _mm256_fmadd_ps(xv, i8Load8(r2 + i), a2);
                a3 = _mm256_fmadd_ps(xv, i8Load8(r3 + i), a3);
            }
            float s0 = hsum8(a0), s1 = hsum8(a1);
            float s2 = hsum8(a2), s3 = hsum8(a3);
            for (; i < n; ++i) {
                const float xi = x0[i];
                s0 = std::fma(xi, static_cast<float>(r0[i]), s0);
                s1 = std::fma(xi, static_cast<float>(r1[i]), s1);
                s2 = std::fma(xi, static_cast<float>(r2[i]), s2);
                s3 = std::fma(xi, static_cast<float>(r3[i]), s3);
            }
            o0[r + 0] = std::fma(scale, s0, qs0);
            o0[r + 1] = std::fma(scale, s1, qs0);
            o0[r + 2] = std::fma(scale, s2, qs0);
            o0[r + 3] = std::fma(scale, s3, qs0);
        }
        for (; r < count; ++r)
            o0[r] = std::fma(scale,
                             dotI8RawAvx2(x0, rows + r * stride, n),
                             qs0);
    }
}

/**
 * Query-blocked i8 weighted sum: identical structure to the f32/bf16
 * kernels — per-(query, row) scalar-double skip tests, kept-query
 * scatter list — with each kept row widened and dequantized once per
 * 8-lane block (fmadd(scale, q, zero)) and fma'd into every kept
 * accumulator. Tail elements use the same two std::fma steps as the
 * scalar backend, so the update rounding matches exactly.
 */
void
weightedSumSkipMultiI8Avx2(const float *e, size_t ne, size_t estride,
                           const int8_t *rows, size_t count, size_t n,
                           size_t stride, float scale, float zero,
                           float threshold, double *running_sums,
                           float *acc, size_t accstride, uint64_t &kept,
                           uint64_t &skipped)
{
    float alpha[blas::kWsumQueryTile];
    float *dst[blas::kWsumQueryTile];
    const __m256 sv = _mm256_set1_ps(scale);
    const __m256 zv = _mm256_set1_ps(zero);
    if (ne == 1) {
        // Two-pass fast path for the single-query sweep, where the
        // skip rate is high (the threshold prunes most rows once the
        // running sum has grown): pass A is a branchless scalar scan
        // that advances the running-sum chain with exactly the same
        // serial double adds and skip predicate as the generic loop,
        // compacting the kept rows' indices and weights; pass B then
        // streams ONLY the kept rows, prefetching ahead through the
        // index list. The generic loop instead prefetches every row
        // unconditionally (the decision isn't known yet there), which
        // at a 15% keep rate wastes ~6x the M_OUT bandwidth. Per kept
        // row the arithmetic is the nk==1 case of the generic loop,
        // in the same ascending row order, so outputs are
        // bit-identical to it and to the scalar backend.
        constexpr size_t kBlock = 512;
        constexpr size_t kLookAhead = 8;
        uint32_t idx[kBlock];
        float evk[kBlock];
        for (size_t b0 = 0; b0 < count; b0 += kBlock) {
            const size_t b1 = std::min(b0 + kBlock, count);
            double s = running_sums[0];
            size_t nkept = 0;
            for (size_t r = b0; r < b1; ++r) {
                const float ev = e[r];
                s += ev;
                const bool skip = threshold > 0.f &&
                                  double(ev) < double(threshold) * s;
                idx[nkept] = static_cast<uint32_t>(r);
                evk[nkept] = ev;
                nkept += !skip;
            }
            running_sums[0] = s;
            kept += nkept;
            skipped += (b1 - b0) - nkept;
            for (size_t j = 0; j < std::min(kLookAhead, nkept); ++j)
                prefetchI8Row(rows + idx[j] * stride, n);
            for (size_t j = 0; j < nkept; ++j) {
                if (j + kLookAhead < nkept)
                    prefetchI8Row(rows + idx[j + kLookAhead] * stride,
                                  n);
                const int8_t *row = rows + idx[j] * stride;
                const float ev = evk[j];
                const __m256 av = _mm256_set1_ps(ev);
                size_t i = 0;
                for (; i + 8 <= n; i += 8) {
                    const __m256 rv =
                        _mm256_fmadd_ps(sv, i8Load8(row + i), zv);
                    _mm256_storeu_ps(
                        acc + i,
                        _mm256_fmadd_ps(av, rv,
                                        _mm256_loadu_ps(acc + i)));
                }
                for (; i < n; ++i) {
                    const float ri = std::fma(
                        scale, static_cast<float>(row[i]), zero);
                    acc[i] = std::fma(ev, ri, acc[i]);
                }
            }
        }
        return;
    }
    for (size_t r = 0; r < count; ++r) {
        // Unconditional look-ahead prefetch: rows are visited in
        // order even when most are skipped, and the skip decision for
        // row r+k isn't known yet, so this trades a few spurious line
        // fills for never stalling on a kept row's first touch.
        prefetchI8Row(rows + (r + kI8PrefetchRows) * stride, n);
        const int8_t *row = rows + r * stride;
        size_t nk = 0;
        for (size_t q = 0; q < ne; ++q) {
            const float ev = e[q * estride + r];
            const double s = running_sums[q] + ev;
            running_sums[q] = s;
            if (threshold > 0.f && double(ev) < double(threshold) * s) {
                ++skipped;
                continue;
            }
            ++kept;
            alpha[nk] = ev;
            dst[nk] = acc + q * accstride;
            ++nk;
        }
        if (nk == 0)
            continue;
        size_t i = 0;
        for (; i + 8 <= n; i += 8) {
            const __m256 rv = _mm256_fmadd_ps(sv, i8Load8(row + i), zv);
            for (size_t j = 0; j < nk; ++j) {
                _mm256_storeu_ps(
                    dst[j] + i,
                    _mm256_fmadd_ps(_mm256_set1_ps(alpha[j]), rv,
                                    _mm256_loadu_ps(dst[j] + i)));
            }
        }
        for (; i < n; ++i) {
            const float ri =
                std::fma(scale, static_cast<float>(row[i]), zero);
            for (size_t j = 0; j < nk; ++j)
                dst[j][i] = std::fma(alpha[j], ri, dst[j][i]);
        }
    }
}

/**
 * Vector e^x, Cephes-style: split x = n*ln2 + r with |r| <= ln2/2,
 * evaluate a degree-6 polynomial for e^r, scale by 2^n through the
 * float exponent field. Inputs above 88.376 resolve to +inf and below
 * -87.337 to 0 so the boundary behaviour matches std::exp (the scalar
 * path's denormal outputs flush to zero, a < 1.2e-38 absolute
 * difference).
 */
inline __m256
exp8(__m256 x)
{
    const __m256 hi = _mm256_set1_ps(88.3762626647950f);
    const __m256 lo = _mm256_set1_ps(-87.3365478515625f);
    const __m256 over = _mm256_cmp_ps(x, hi, _CMP_GT_OQ);
    const __m256 under = _mm256_cmp_ps(x, lo, _CMP_LT_OQ);

    __m256 xc = _mm256_min_ps(_mm256_max_ps(x, lo), hi);

    // n = round(x / ln2), computed as floor(x * log2e + 0.5).
    __m256 fx = _mm256_fmadd_ps(xc,
                                _mm256_set1_ps(1.44269504088896341f),
                                _mm256_set1_ps(0.5f));
    fx = _mm256_floor_ps(fx);

    // r = x - n*ln2, with ln2 split for extra precision.
    __m256 r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), xc);
    r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), r);

    __m256 y = _mm256_set1_ps(1.9875691500e-4f);
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.3981999507e-3f));
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(8.3334519073e-3f));
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(4.1665795894e-2f));
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.6666665459e-1f));
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(5.0000001201e-1f));
    y = _mm256_fmadd_ps(y, _mm256_mul_ps(r, r), r);
    y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));

    // y *= 2^n via the exponent field.
    __m256i bits = _mm256_cvttps_epi32(fx);
    bits = _mm256_add_epi32(bits, _mm256_set1_epi32(127));
    bits = _mm256_slli_epi32(bits, 23);
    y = _mm256_mul_ps(y, _mm256_castsi256_ps(bits));

    y = _mm256_blendv_ps(
        y, _mm256_set1_ps(std::numeric_limits<float>::infinity()), over);
    y = _mm256_blendv_ps(y, _mm256_setzero_ps(), under);
    return y;
}

void
expInplaceAvx2(float *x, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(x + i, exp8(_mm256_loadu_ps(x + i)));
    if (i < n) {
        // Tail through the same vector path so results do not depend
        // on where the 8-lane boundary falls.
        float buf[8];
        std::memcpy(buf, x + i, (n - i) * sizeof(float));
        _mm256_storeu_ps(buf, exp8(_mm256_loadu_ps(buf)));
        std::memcpy(x + i, buf, (n - i) * sizeof(float));
    }
}

void
expShiftInplaceAvx2(float *x, size_t n, float shift)
{
    const __m256 sh = _mm256_set1_ps(shift);
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(
            x + i, exp8(_mm256_sub_ps(_mm256_loadu_ps(x + i), sh)));
    if (i < n) {
        float buf[8];
        std::memcpy(buf, x + i, (n - i) * sizeof(float));
        _mm256_storeu_ps(buf,
                         exp8(_mm256_sub_ps(_mm256_loadu_ps(buf), sh)));
        std::memcpy(x + i, buf, (n - i) * sizeof(float));
    }
}

// --- gemm: packed-B 4x16 register-tiled micro-kernel ----------------

constexpr size_t kKc = 256; ///< k-panel depth (B panel rows per pack)
constexpr size_t kNr = 16;  ///< micro-kernel width (two YMM registers)

/**
 * Pack the (kc x nf) panel of B starting at `b` (leading dimension
 * ldb, nf a multiple of 16) into tile-major order: for each 16-wide
 * column tile, kc consecutive rows of 16 contiguous floats. The
 * micro-kernel then streams the panel linearly.
 */
void
packB(const float *b, size_t ldb, size_t kc, size_t nf, float *pack)
{
    for (size_t t = 0; t < nf / kNr; ++t) {
        const float *src = b + t * kNr;
        for (size_t p = 0; p < kc; ++p) {
            _mm256_storeu_ps(pack, _mm256_loadu_ps(src));
            _mm256_storeu_ps(pack + 8, _mm256_loadu_ps(src + 8));
            src += ldb;
            pack += kNr;
        }
    }
}

/** C[4 x 16] += A[4 x kc] (lda-strided) * packed B panel tile. */
inline void
micro4x16(const float *a, size_t lda, const float *pb, size_t kc,
          float *c, size_t ldc)
{
    __m256 c00 = _mm256_loadu_ps(c + 0 * ldc);
    __m256 c01 = _mm256_loadu_ps(c + 0 * ldc + 8);
    __m256 c10 = _mm256_loadu_ps(c + 1 * ldc);
    __m256 c11 = _mm256_loadu_ps(c + 1 * ldc + 8);
    __m256 c20 = _mm256_loadu_ps(c + 2 * ldc);
    __m256 c21 = _mm256_loadu_ps(c + 2 * ldc + 8);
    __m256 c30 = _mm256_loadu_ps(c + 3 * ldc);
    __m256 c31 = _mm256_loadu_ps(c + 3 * ldc + 8);
    for (size_t p = 0; p < kc; ++p) {
        const __m256 b0 = _mm256_loadu_ps(pb);
        const __m256 b1 = _mm256_loadu_ps(pb + 8);
        pb += kNr;
        const __m256 a0 = _mm256_broadcast_ss(a + 0 * lda + p);
        c00 = _mm256_fmadd_ps(a0, b0, c00);
        c01 = _mm256_fmadd_ps(a0, b1, c01);
        const __m256 a1 = _mm256_broadcast_ss(a + 1 * lda + p);
        c10 = _mm256_fmadd_ps(a1, b0, c10);
        c11 = _mm256_fmadd_ps(a1, b1, c11);
        const __m256 a2 = _mm256_broadcast_ss(a + 2 * lda + p);
        c20 = _mm256_fmadd_ps(a2, b0, c20);
        c21 = _mm256_fmadd_ps(a2, b1, c21);
        const __m256 a3 = _mm256_broadcast_ss(a + 3 * lda + p);
        c30 = _mm256_fmadd_ps(a3, b0, c30);
        c31 = _mm256_fmadd_ps(a3, b1, c31);
    }
    _mm256_storeu_ps(c + 0 * ldc, c00);
    _mm256_storeu_ps(c + 0 * ldc + 8, c01);
    _mm256_storeu_ps(c + 1 * ldc, c10);
    _mm256_storeu_ps(c + 1 * ldc + 8, c11);
    _mm256_storeu_ps(c + 2 * ldc, c20);
    _mm256_storeu_ps(c + 2 * ldc + 8, c21);
    _mm256_storeu_ps(c + 3 * ldc, c30);
    _mm256_storeu_ps(c + 3 * ldc + 8, c31);
}

/** C[1 x 16] += A[1 x kc] * packed B panel tile (m-remainder rows). */
inline void
micro1x16(const float *a, const float *pb, size_t kc, float *c)
{
    __m256 c0 = _mm256_loadu_ps(c);
    __m256 c1 = _mm256_loadu_ps(c + 8);
    for (size_t p = 0; p < kc; ++p) {
        const __m256 av = _mm256_broadcast_ss(a + p);
        c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(pb), c0);
        c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(pb + 8), c1);
        pb += kNr;
    }
    _mm256_storeu_ps(c, c0);
    _mm256_storeu_ps(c + 8, c1);
}

void
gemmAvx2(const float *a, const float *b, float *c,
         size_t m, size_t k, size_t n, bool accumulate)
{
    if (!accumulate) {
        for (size_t r = 0; r < m; ++r)
            std::memset(c + r * n, 0, n * sizeof(float));
    }

    const size_t nf = n / kNr * kNr;
    // Reused packing scratch; the only allocation in the BLAS layer
    // (documented in kernels.hh). thread_local keeps gemm reentrant
    // across pool workers.
    thread_local std::vector<float> packbuf;

    for (size_t p0 = 0; p0 < k; p0 += kKc) {
        const size_t kc = std::min(kKc, k - p0);
        if (nf > 0) {
            packbuf.resize(kc * nf);
            packB(b + p0 * n, n, kc, nf, packbuf.data());
            size_t r = 0;
            for (; r + 4 <= m; r += 4) {
                for (size_t t = 0; t < nf / kNr; ++t)
                    micro4x16(a + r * k + p0, k,
                              packbuf.data() + t * kc * kNr, kc,
                              c + r * n + t * kNr, n);
            }
            for (; r < m; ++r) {
                for (size_t t = 0; t < nf / kNr; ++t)
                    micro1x16(a + r * k + p0,
                              packbuf.data() + t * kc * kNr, kc,
                              c + r * n + t * kNr);
            }
        }
        // Column remainder (n % 16) straight out of B.
        if (nf < n) {
            for (size_t r = 0; r < m; ++r) {
                float *crow = c + r * n;
                for (size_t p = p0; p < p0 + kc; ++p) {
                    const float av = a[r * k + p];
                    const float *brow = b + p * n;
                    for (size_t j = nf; j < n; ++j)
                        crow[j] += av * brow[j];
                }
            }
        }
    }
}

/**
 * Canonical chunk-summary bound (see kernels.hh): 8-wide
 * mul/mul/max/add over the body — vmaxps selects the second operand
 * on equality, which the scalar backend's (a > b) ? a : b replays —
 * then hsum8's pairwise reduction and a scalar tail.
 */
float
chunkBoundAvx2(const float *x, const float *lo, const float *hi,
               size_t n)
{
    __m256 acc = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 xv = _mm256_loadu_ps(x + i);
        const __m256 a = _mm256_mul_ps(xv, _mm256_loadu_ps(hi + i));
        const __m256 b = _mm256_mul_ps(xv, _mm256_loadu_ps(lo + i));
        acc = _mm256_add_ps(acc, _mm256_max_ps(a, b));
    }
    float r = hsum8(acc);
    for (; i < n; ++i) {
        const float a = x[i] * hi[i];
        const float b = x[i] * lo[i];
        r += (a > b) ? a : b;
    }
    return r;
}

void
chunkBoundBatchAvx2(const float *x, size_t nx, size_t xstride,
                    const float *lo, const float *hi, size_t count,
                    size_t n, size_t stride, float *out, size_t ostride)
{
    // The summary block is tiny next to the KB sweep it gates (two
    // fp32 rows per *chunk*), so a plain per-(query, summary) loop is
    // enough; the canonical per-pair order keeps results independent
    // of any future tiling.
    for (size_t q = 0; q < nx; ++q) {
        const float *xq = x + q * xstride;
        float *o = out + q * ostride;
        for (size_t c = 0; c < count; ++c)
            o[c] = chunkBoundAvx2(xq, lo + c * stride, hi + c * stride,
                                  n);
    }
}

const KernelTable kAvx2Table = {
    "avx2",         dotAvx2,          axpyAvx2,
    scalAvx2,       sumAvx2,          maxElementAvx2,
    dotBatchAvx2,   dotBatchMultiAvx2,
    weightedSumSkipAvx2,              weightedSumSkipMultiAvx2,
    dotBatchMultiBf16Avx2,            weightedSumSkipMultiBf16Avx2,
    dotBatchMultiI8Avx2,              weightedSumSkipMultiI8Avx2,
    chunkBoundBatchAvx2,
    gemmAvx2,       expInplaceAvx2,   expShiftInplaceAvx2,
};

} // namespace

const KernelTable *
avx2Kernels()
{
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        return &kAvx2Table;
    return nullptr;
}

} // namespace mnnfast::blas::detail

#else // !(__AVX2__ && __FMA__)

namespace mnnfast::blas::detail {

const KernelTable *
avx2Kernels()
{
    return nullptr;
}

} // namespace mnnfast::blas::detail

#endif
