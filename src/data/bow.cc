#include "data/bow.hh"

#include <algorithm>

namespace mnnfast::data {

BagOfWords
toBagOfWords(const Sentence &sentence)
{
    Sentence sorted = sentence;
    std::sort(sorted.begin(), sorted.end());

    BagOfWords bow;
    for (WordId w : sorted) {
        if (!bow.empty() && bow.back().word == w)
            ++bow.back().count;
        else
            bow.push_back({w, 1});
    }
    return bow;
}

size_t
bowTokenCount(const BagOfWords &bow)
{
    size_t n = 0;
    for (const BowTerm &t : bow)
        n += t.count;
    return n;
}

} // namespace mnnfast::data
