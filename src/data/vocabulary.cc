#include "data/vocabulary.hh"

#include "util/logging.hh"

namespace mnnfast::data {

WordId
Vocabulary::add(const std::string &word)
{
    const auto it = ids.find(word);
    if (it != ids.end())
        return it->second;
    const WordId id = static_cast<WordId>(words.size());
    ids.emplace(word, id);
    words.push_back(word);
    return id;
}

WordId
Vocabulary::lookup(const std::string &word) const
{
    const auto it = ids.find(word);
    return it == ids.end() ? kNoWord : it->second;
}

const std::string &
Vocabulary::wordOf(WordId id) const
{
    mnn_assert(id < words.size(), "word id out of range");
    return words[id];
}

bool
Vocabulary::contains(const std::string &word) const
{
    return ids.find(word) != ids.end();
}

} // namespace mnnfast::data
