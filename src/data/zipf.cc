#include "data/zipf.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mnnfast::data {

ZipfGenerator::ZipfGenerator(size_t n, double s, uint64_t seed)
    : rng(seed)
{
    if (n == 0)
        fatal("ZipfGenerator needs at least one item");
    cdf.resize(n);
    double acc = 0.0;
    for (size_t k = 0; k < n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf[k] = acc;
    }
    // Normalize so the last entry is exactly 1.
    for (double &v : cdf)
        v /= acc;
    cdf.back() = 1.0;
}

size_t
ZipfGenerator::sample()
{
    const double u = rng.uniform();
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
    return static_cast<size_t>(it - cdf.begin());
}

double
ZipfGenerator::probability(size_t rank) const
{
    mnn_assert(rank < cdf.size(), "rank out of range");
    return rank == 0 ? cdf[0] : cdf[rank] - cdf[rank - 1];
}

} // namespace mnnfast::data
