/**
 * @file
 * Zipf-distributed integer sampling.
 *
 * The paper evaluates the embedding cache with word frequencies from
 * the Corpus of Contemporary American English (COCA). Natural-language
 * word frequency follows Zipf's law closely, so a rank-frequency Zipf
 * sampler is the faithful stand-in for the unavailable corpus (see
 * DESIGN.md, substitution table).
 */

#ifndef MNNFAST_DATA_ZIPF_HH
#define MNNFAST_DATA_ZIPF_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace mnnfast::data {

/**
 * Samples ranks in [0, n) with P(rank = k) proportional to
 * 1 / (k+1)^s. Uses a precomputed CDF and binary search, so sampling
 * is O(log n) and exact.
 */
class ZipfGenerator
{
  public:
    /**
     * @param n     Number of distinct items (e.g., vocabulary size).
     * @param s     Skew exponent; s ~ 1.0 matches word frequency.
     * @param seed  RNG seed (deterministic stream).
     */
    ZipfGenerator(size_t n, double s, uint64_t seed);

    /** Draw one rank (0 = most frequent item). */
    size_t sample();

    /** Probability mass of a given rank. */
    double probability(size_t rank) const;

    /** Number of items. */
    size_t items() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
    XorShiftRng rng;
};

} // namespace mnnfast::data

#endif // MNNFAST_DATA_ZIPF_HH
