#include "data/babi.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mnnfast::data {

namespace {

const char *const kActors[] = {
    "mary", "john", "sandra", "daniel", "bill", "fred",
};
const char *const kLocations[] = {
    "kitchen", "bathroom", "garden", "office",
    "hallway", "bedroom", "park", "school",
};
const char *const kObjects[] = {
    "apple", "football", "milk", "box", "book", "ball",
};
const char *const kNumbers[] = {"none", "one", "two", "three"};

constexpr size_t kNumActors = std::size(kActors);
constexpr size_t kNumLocations = std::size(kLocations);
constexpr size_t kNumObjects = std::size(kObjects);

constexpr size_t kNowhere = ~size_t{0};
constexpr size_t kNobody = ~size_t{0};

} // namespace

const char *
taskName(TaskType type)
{
    switch (type) {
      case TaskType::SingleSupportingFact: return "single-supporting-fact";
      case TaskType::TwoSupportingFacts: return "two-supporting-facts";
      case TaskType::Counting: return "counting";
      case TaskType::YesNo: return "yes-no";
      case TaskType::ListObjects: return "list-objects";
      case TaskType::Negation: return "negation";
      case TaskType::Conjunction: return "conjunction";
    }
    panic("unknown TaskType %d", static_cast<int>(type));
}

std::vector<TaskType>
allTasks()
{
    return {TaskType::SingleSupportingFact,
            TaskType::TwoSupportingFacts,
            TaskType::Counting,
            TaskType::YesNo,
            TaskType::ListObjects,
            TaskType::Negation,
            TaskType::Conjunction};
}

/**
 * Mutable micro-world state threaded through one story's generation.
 */
struct BabiGenerator::World
{
    /** Actor index -> location index (kNowhere before first move). */
    std::vector<size_t> actorLoc;
    /** Object index -> holding actor (kNobody if on the ground). */
    std::vector<size_t> objectHolder;
    /** Object index -> location if on the ground (kNowhere if held). */
    std::vector<size_t> objectLoc;
    /** Actor index -> story index of their last movement sentence. */
    std::vector<size_t> lastMoveSentence;
    /** Object index -> story index of the last pickup sentence. */
    std::vector<size_t> lastPickupSentence;
    /** Actor index -> objects currently carried (in pickup order). */
    std::vector<std::vector<size_t>> carried;
    /** Number of sentences emitted so far. */
    size_t sentenceCount = 0;

    World(size_t actors, size_t objects)
        : actorLoc(actors, kNowhere),
          objectHolder(objects, kNobody),
          objectLoc(objects, kNowhere),
          lastMoveSentence(actors, kNowhere),
          lastPickupSentence(objects, kNowhere),
          carried(actors)
    {}
};

BabiGenerator::BabiGenerator(TaskType type, Vocabulary &vocab,
                             uint64_t seed)
    : type(type), vocab(vocab), rng(seed)
{
    for (const char *w : kActors)
        actorIds.push_back(vocab.add(w));
    for (const char *w : kLocations)
        locationIds.push_back(vocab.add(w));
    for (const char *w : kObjects)
        objectIds.push_back(vocab.add(w));
    for (const char *w : kNumbers)
        numberIds.push_back(vocab.add(w));
    yesId = vocab.add("yes");
    noId = vocab.add("no");

    wentId = vocab.add("went");
    toId = vocab.add("to");
    theId = vocab.add("the");
    pickedId = vocab.add("picked");
    upId = vocab.add("up");
    droppedId = vocab.add("dropped");
    whereId = vocab.add("where");
    isId = vocab.add("is");
    howId = vocab.add("how");
    manyId = vocab.add("many");
    objectsId = vocab.add("objects");
    carryingId = vocab.add("carrying");
    inId = vocab.add("in");
    whatId = vocab.add("what");
    notId = vocab.add("not");
    andId = vocab.add("and");

    switch (type) {
      case TaskType::SingleSupportingFact:
      case TaskType::TwoSupportingFacts:
      case TaskType::Conjunction:
        candidates = locationIds;
        break;
      case TaskType::Counting:
        candidates = numberIds;
        break;
      case TaskType::YesNo:
      case TaskType::Negation:
        candidates = {yesId, noId};
        break;
      case TaskType::ListObjects:
        candidates = objectIds;
        break;
    }
}

Sentence
BabiGenerator::makeMove(World &w, size_t actor)
{
    size_t loc = rng.below(kNumLocations);
    if (loc == w.actorLoc[actor])
        loc = (loc + 1) % kNumLocations;
    w.actorLoc[actor] = loc;
    w.lastMoveSentence[actor] = w.sentenceCount;
    return {actorIds[actor], wentId, toId, theId, locationIds[loc]};
}

Sentence
BabiGenerator::makePickup(World &w, size_t actor)
{
    // Pick a free object; the caller guarantees one exists.
    std::vector<size_t> free;
    for (size_t o = 0; o < kNumObjects; ++o)
        if (w.objectHolder[o] == kNobody)
            free.push_back(o);
    mnn_assert(!free.empty(), "no free object to pick up");
    const size_t obj = free[rng.below(free.size())];
    w.objectHolder[obj] = actor;
    w.objectLoc[obj] = kNowhere;
    w.lastPickupSentence[obj] = w.sentenceCount;
    w.carried[actor].push_back(obj);
    return {actorIds[actor], pickedId, upId, theId, objectIds[obj]};
}

Sentence
BabiGenerator::makeDrop(World &w, size_t actor)
{
    mnn_assert(!w.carried[actor].empty(), "actor carries nothing");
    const size_t obj = w.carried[actor].back();
    w.carried[actor].pop_back();
    w.objectHolder[obj] = kNobody;
    w.objectLoc[obj] = w.actorLoc[actor];
    return {actorIds[actor], droppedId, theId, objectIds[obj]};
}

Sentence
BabiGenerator::makeEvent(World &w)
{
    const size_t actor = rng.below(kNumActors);
    const double roll = rng.uniform();

    bool any_free = false;
    for (size_t o = 0; o < kNumObjects; ++o)
        any_free = any_free || w.objectHolder[o] == kNobody;

    Sentence s;
    if (roll < 0.6 || (w.carried[actor].empty() && !any_free)) {
        s = makeMove(w, actor);
    } else if (roll < 0.85 && any_free && w.actorLoc[actor] != kNowhere) {
        s = makePickup(w, actor);
    } else if (!w.carried[actor].empty()) {
        s = makeDrop(w, actor);
    } else {
        s = makeMove(w, actor);
    }
    ++w.sentenceCount;
    return s;
}

Example
BabiGenerator::generateNegation(size_t story_len)
{
    // Stories are facts about actors: positive ("mary went to the
    // park") or negative ("mary is not in the park"). The question
    // probes the location named in the queried actor's latest fact,
    // so the answer is decided by that fact's polarity.
    Example ex;
    std::vector<size_t> last_fact(kNumActors, kNowhere);
    std::vector<bool> last_negative(kNumActors, false);
    std::vector<size_t> last_loc(kNumActors, 0);

    for (size_t i = 0; i < story_len; ++i) {
        const size_t actor = rng.below(kNumActors);
        const size_t loc = rng.below(kNumLocations);
        const bool negative = rng.chance(0.4);
        if (negative) {
            ex.story.push_back({actorIds[actor], isId, notId, inId,
                                theId, locationIds[loc]});
        } else {
            ex.story.push_back({actorIds[actor], wentId, toId, theId,
                                locationIds[loc]});
        }
        last_fact[actor] = i;
        last_negative[actor] = negative;
        last_loc[actor] = loc;
    }

    std::vector<size_t> known;
    for (size_t a = 0; a < kNumActors; ++a)
        if (last_fact[a] != kNowhere)
            known.push_back(a);
    // story_len >= 2 guarantees at least one fact exists.
    const size_t actor = known[rng.below(known.size())];
    ex.question = {isId, actorIds[actor], inId, theId,
                   locationIds[last_loc[actor]]};
    ex.answer = last_negative[actor] ? noId : yesId;
    ex.supportingFacts = {last_fact[actor]};
    return ex;
}

Example
BabiGenerator::generateConjunction(size_t story_len)
{
    // Moves with compound subjects: "mary and john went to the
    // park" relocates both actors. Question: "where is <actor>?".
    Example ex;
    std::vector<size_t> actor_loc(kNumActors, kNowhere);
    std::vector<size_t> last_move(kNumActors, kNowhere);

    for (size_t i = 0; i < story_len; ++i) {
        const size_t loc = rng.below(kNumLocations);
        const size_t a = rng.below(kNumActors);
        if (rng.chance(0.4)) {
            size_t b = rng.below(kNumActors);
            if (b == a)
                b = (b + 1) % kNumActors;
            ex.story.push_back({actorIds[a], andId, actorIds[b],
                                wentId, toId, theId, locationIds[loc]});
            actor_loc[b] = loc;
            last_move[b] = i;
        } else {
            ex.story.push_back({actorIds[a], wentId, toId, theId,
                                locationIds[loc]});
        }
        actor_loc[a] = loc;
        last_move[a] = i;
    }

    std::vector<size_t> moved;
    for (size_t a = 0; a < kNumActors; ++a)
        if (actor_loc[a] != kNowhere)
            moved.push_back(a);
    const size_t actor = moved[rng.below(moved.size())];
    ex.question = {whereId, isId, actorIds[actor]};
    ex.answer = locationIds[actor_loc[actor]];
    ex.supportingFacts = {last_move[actor]};
    return ex;
}

Example
BabiGenerator::generate(size_t story_len)
{
    mnn_assert(story_len >= 2, "story needs at least two sentences");

    if (type == TaskType::Negation)
        return generateNegation(story_len);
    if (type == TaskType::Conjunction)
        return generateConjunction(story_len);

    Example ex;
    World w(kNumActors, kNumObjects);

    for (size_t i = 0; i < story_len; ++i)
        ex.story.push_back(makeEvent(w));

    switch (type) {
      case TaskType::SingleSupportingFact: {
        // Ask about an actor who has moved (at least one has: events
        // are mostly moves and story_len >= 2 retries below).
        std::vector<size_t> moved;
        for (size_t a = 0; a < kNumActors; ++a)
            if (w.actorLoc[a] != kNowhere)
                moved.push_back(a);
        if (moved.empty()) {
            // Force a move (overwrite the last sentence).
            w.sentenceCount = story_len - 1;
            ex.story[story_len - 1] = makeMove(w, 0);
            w.sentenceCount = story_len;
            moved.push_back(0);
        }
        const size_t actor = moved[rng.below(moved.size())];
        ex.question = {whereId, isId, actorIds[actor]};
        ex.answer = locationIds[w.actorLoc[actor]];
        ex.supportingFacts = {w.lastMoveSentence[actor]};
        break;
      }

      case TaskType::TwoSupportingFacts: {
        // Ask where an object is; needs a picked-up-and-located object.
        std::vector<size_t> locatable;
        for (size_t o = 0; o < kNumObjects; ++o) {
            const size_t holder = w.objectHolder[o];
            const bool held_located =
                holder != kNobody && w.actorLoc[holder] != kNowhere;
            const bool dropped_located = w.objectLoc[o] != kNowhere;
            if (held_located || dropped_located)
                locatable.push_back(o);
        }
        if (locatable.empty()) {
            // Force: move actor 0 then have them pick something up.
            w.sentenceCount = story_len - 2;
            ex.story[story_len - 2] = makeMove(w, 0);
            ++w.sentenceCount;
            ex.story[story_len - 1] = makePickup(w, 0);
            ++w.sentenceCount;
            locatable.push_back(w.carried[0].back());
        }
        const size_t obj = locatable[rng.below(locatable.size())];
        ex.question = {whereId, isId, theId, objectIds[obj]};
        const size_t holder = w.objectHolder[obj];
        if (holder != kNobody) {
            ex.answer = locationIds[w.actorLoc[holder]];
            ex.supportingFacts = {w.lastPickupSentence[obj],
                                  w.lastMoveSentence[holder]};
        } else {
            ex.answer = locationIds[w.objectLoc[obj]];
            ex.supportingFacts = {w.lastPickupSentence[obj]};
        }
        break;
      }

      case TaskType::Counting: {
        const size_t actor = rng.below(kNumActors);
        ex.question = {howId, manyId, objectsId, isId, actorIds[actor],
                       carryingId};
        const size_t n = std::min(w.carried[actor].size(),
                                  numberIds.size() - 1);
        ex.answer = numberIds[n];
        for (size_t o : w.carried[actor])
            ex.supportingFacts.push_back(w.lastPickupSentence[o]);
        break;
      }

      case TaskType::YesNo: {
        std::vector<size_t> moved;
        for (size_t a = 0; a < kNumActors; ++a)
            if (w.actorLoc[a] != kNowhere)
                moved.push_back(a);
        if (moved.empty()) {
            w.sentenceCount = story_len - 1;
            ex.story[story_len - 1] = makeMove(w, 0);
            w.sentenceCount = story_len;
            moved.push_back(0);
        }
        const size_t actor = moved[rng.below(moved.size())];
        // Half the questions ask about the true location.
        size_t loc = w.actorLoc[actor];
        if (rng.chance(0.5))
            loc = rng.below(kNumLocations);
        ex.question = {isId, actorIds[actor], inId, theId,
                       locationIds[loc]};
        ex.answer = loc == w.actorLoc[actor] ? yesId : noId;
        ex.supportingFacts = {w.lastMoveSentence[actor]};
        break;
      }

      case TaskType::ListObjects: {
        std::vector<size_t> carriers;
        for (size_t a = 0; a < kNumActors; ++a)
            if (!w.carried[a].empty())
                carriers.push_back(a);
        if (carriers.empty()) {
            w.sentenceCount = story_len - 2;
            ex.story[story_len - 2] = makeMove(w, 0);
            ++w.sentenceCount;
            ex.story[story_len - 1] = makePickup(w, 0);
            ++w.sentenceCount;
            carriers.push_back(0);
        }
        const size_t actor = carriers[rng.below(carriers.size())];
        const size_t obj = w.carried[actor].back();
        ex.question = {whatId, isId, actorIds[actor], carryingId};
        ex.answer = objectIds[obj];
        ex.supportingFacts = {w.lastPickupSentence[obj]};
        break;
      }

      case TaskType::Negation:
      case TaskType::Conjunction:
        panic("handled by the dedicated generators above");
    }

    return ex;
}

Dataset
BabiGenerator::generateSet(size_t count, size_t story_len)
{
    Dataset set;
    set.examples.reserve(count);
    for (size_t i = 0; i < count; ++i)
        set.examples.push_back(generate(story_len));
    return set;
}

} // namespace mnnfast::data
