/**
 * @file
 * Word <-> id mapping shared by the dataset generators, the trainer,
 * and the inference engines.
 */

#ifndef MNNFAST_DATA_VOCABULARY_HH
#define MNNFAST_DATA_VOCABULARY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mnnfast::data {

/** Integer word identifier; dense, starting at 0. */
using WordId = uint32_t;

/** Sentinel for "word not present". */
inline constexpr WordId kNoWord = ~WordId{0};

/**
 * A bidirectional word/id dictionary. Ids are assigned densely in
 * insertion order, which makes them directly usable as embedding-
 * matrix row indices.
 */
class Vocabulary
{
  public:
    /** Return the id of `word`, inserting it if new. */
    WordId add(const std::string &word);

    /** Return the id of `word` or kNoWord if absent. */
    WordId lookup(const std::string &word) const;

    /** Return the spelling for a valid id. */
    const std::string &wordOf(WordId id) const;

    /** Number of distinct words. */
    size_t size() const { return words.size(); }

    /** True if `word` is present. */
    bool contains(const std::string &word) const;

  private:
    std::unordered_map<std::string, WordId> ids;
    std::vector<std::string> words;
};

} // namespace mnnfast::data

#endif // MNNFAST_DATA_VOCABULARY_HH
