/**
 * @file
 * Bag-of-words sentence representations.
 *
 * The paper's embedding step uses a BoW model: a sentence is the sum
 * of its words' embedding vectors, so word order is dropped but
 * multiplicity is kept. This module canonicalizes a Sentence into
 * (word, count) pairs, which both the trainer and the inference
 * embedder consume.
 */

#ifndef MNNFAST_DATA_BOW_HH
#define MNNFAST_DATA_BOW_HH

#include <cstdint>
#include <vector>

#include "data/babi.hh"
#include "data/vocabulary.hh"

namespace mnnfast::data {

/** One (word, multiplicity) term of a bag of words. */
struct BowTerm
{
    WordId word;
    uint32_t count;

    bool operator==(const BowTerm &) const = default;
};

/** A sentence reduced to sorted unique (word, count) terms. */
using BagOfWords = std::vector<BowTerm>;

/** Canonicalize a sentence: sort by word id, merge duplicates. */
BagOfWords toBagOfWords(const Sentence &sentence);

/** Total number of word tokens in the bag (sum of counts). */
size_t bowTokenCount(const BagOfWords &bow);

} // namespace mnnfast::data

#endif // MNNFAST_DATA_BOW_HH
