/**
 * @file
 * Synthetic bAbI-style question-answering task generators.
 *
 * The paper measures the zero-skipping tradeoff (Fig. 7) and the
 * probability-vector sparsity (Fig. 6) on Facebook's bAbI tasks. The
 * original dataset is not available offline, so this module generates
 * stories from the same kind of simulated micro-world the bAbI suite
 * was produced from (actors moving between locations, picking up and
 * dropping objects), with per-example supporting-fact annotations.
 * Five task families mirror representative bAbI tasks:
 *
 *  - SingleSupportingFact (bAbI task 1): "where is <actor>?"
 *  - TwoSupportingFacts   (bAbI task 2): "where is the <object>?"
 *  - Counting             (bAbI task 7): "how many objects is X carrying?"
 *  - YesNo                (bAbI task 6): "is <actor> in the <location>?"
 *  - ListObjects          (bAbI task 8, single-answer variant):
 *                          "what is <actor> carrying?"
 *  - Negation             (bAbI task 9): stories mix positive facts
 *                          with "<actor> is not in the <location>";
 *                          the question probes the latest fact.
 *  - Conjunction          (bAbI task 8's compound subjects): some
 *                          moves are joint ("mary and john went to
 *                          the park"); "where is <actor>?"
 */

#ifndef MNNFAST_DATA_BABI_HH
#define MNNFAST_DATA_BABI_HH

#include <cstdint>
#include <string>
#include <vector>

#include "data/vocabulary.hh"
#include "util/rng.hh"

namespace mnnfast::data {

/** A sentence is a sequence of word ids (bag-of-words order ignored). */
using Sentence = std::vector<WordId>;

/** The five synthetic task families. */
enum class TaskType {
    SingleSupportingFact,
    TwoSupportingFacts,
    Counting,
    YesNo,
    ListObjects,
    Negation,
    Conjunction,
};

/** Human-readable task name (for tables and logs). */
const char *taskName(TaskType type);

/** All task families, for sweeps. */
std::vector<TaskType> allTasks();

/** One QA example: a story, a question, its answer and provenance. */
struct Example
{
    std::vector<Sentence> story;
    Sentence question;
    WordId answer;
    /** Indices of the story sentences that determine the answer. */
    std::vector<size_t> supportingFacts;
};

/** A set of examples over a shared vocabulary. */
struct Dataset
{
    std::vector<Example> examples;

    size_t size() const { return examples.size(); }
};

/**
 * Generates examples of one task family from a simulated micro-world.
 * All generators share one Vocabulary instance (supplied by the
 * caller) so a single embedding table can serve every task.
 */
class BabiGenerator
{
  public:
    /**
     * @param type  Task family to generate.
     * @param vocab Shared vocabulary; entity/action words are added.
     * @param seed  Deterministic RNG seed.
     */
    BabiGenerator(TaskType type, Vocabulary &vocab, uint64_t seed);

    /**
     * Generate one example whose story has exactly `story_len`
     * sentences and is guaranteed answerable.
     */
    Example generate(size_t story_len);

    /** Generate `count` examples of `story_len` sentences each. */
    Dataset generateSet(size_t count, size_t story_len);

    /**
     * The closed set of words that can appear as answers for this
     * task; the output layer is scored over this set.
     */
    const std::vector<WordId> &answerCandidates() const
    {
        return candidates;
    }

    /** The shared vocabulary. */
    const Vocabulary &vocabulary() const { return vocab; }

  private:
    struct World;

    Sentence makeMove(World &w, size_t actor);
    Sentence makePickup(World &w, size_t actor);
    Sentence makeDrop(World &w, size_t actor);
    Sentence makeEvent(World &w);
    Example generateNegation(size_t story_len);
    Example generateConjunction(size_t story_len);

    TaskType type;
    Vocabulary &vocab;
    XorShiftRng rng;

    std::vector<WordId> actorIds;
    std::vector<WordId> locationIds;
    std::vector<WordId> objectIds;
    std::vector<WordId> numberIds; // "none", "one", ...
    WordId yesId = kNoWord;
    WordId noId = kNoWord;

    // Action / filler words.
    WordId wentId, toId, theId, pickedId, upId, droppedId;
    WordId whereId, isId, howId, manyId, objectsId, carryingId, inId,
        whatId, notId, andId;

    std::vector<WordId> candidates;
};

} // namespace mnnfast::data

#endif // MNNFAST_DATA_BABI_HH
