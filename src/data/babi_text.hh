/**
 * @file
 * Reader/writer for the Facebook bAbI text format, so the real
 * dataset can be dropped in when available (the synthetic generators
 * are the offline stand-in; DESIGN.md substitution table).
 *
 * Format, one story per numbered block:
 *
 *   1 Mary moved to the bathroom.
 *   2 John went to the hallway.
 *   3 Where is Mary? 	bathroom	1
 *
 * Statement lines are "<n> <words>."; question lines are
 * "<n> <words>?\t<answer>\t<supporting fact numbers>". Line numbers
 * restart at 1 for each new story. A question's story is every
 * statement seen so far in the block.
 */

#ifndef MNNFAST_DATA_BABI_TEXT_HH
#define MNNFAST_DATA_BABI_TEXT_HH

#include <iosfwd>
#include <string>

#include "data/babi.hh"
#include "data/vocabulary.hh"

namespace mnnfast::data {

/**
 * Parse a bAbI-format stream into Examples. Words are lowercased and
 * added to `vocab`. Each question line produces one Example whose
 * story is the statements seen so far in the current block.
 *
 * fatal() on malformed lines (unnumbered, question without answer).
 */
Dataset parseBabi(std::istream &in, Vocabulary &vocab);

/** Convenience: parse a bAbI file from disk; fatal() if unreadable. */
Dataset parseBabiFile(const std::string &path, Vocabulary &vocab);

/**
 * Write examples in bAbI format (one block per example: all story
 * sentences, then the question line with answer and supporting
 * facts). Inverse of parseBabi up to block structure.
 */
void writeBabi(std::ostream &out, const Dataset &set,
               const Vocabulary &vocab);

/** Convenience: write to a file; fatal() if unwritable. */
void writeBabiFile(const std::string &path, const Dataset &set,
                   const Vocabulary &vocab);

} // namespace mnnfast::data

#endif // MNNFAST_DATA_BABI_TEXT_HH
