#include "data/babi_text.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace mnnfast::data {

namespace {

std::string
lowercase(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** Tokenize a clause into lowercase words, dropping punctuation. */
std::vector<std::string>
tokenize(const std::string &text)
{
    std::vector<std::string> words;
    std::string current;
    for (char ch : text) {
        if (std::isalnum(static_cast<unsigned char>(ch))) {
            current += ch;
        } else if (!current.empty()) {
            words.push_back(lowercase(current));
            current.clear();
        }
    }
    if (!current.empty())
        words.push_back(lowercase(current));
    return words;
}

Sentence
toSentence(const std::vector<std::string> &words, Vocabulary &vocab)
{
    Sentence s;
    s.reserve(words.size());
    for (const std::string &w : words)
        s.push_back(vocab.add(w));
    return s;
}

} // namespace

Dataset
parseBabi(std::istream &in, Vocabulary &vocab)
{
    Dataset set;
    std::vector<Sentence> story;
    // bAbI supporting facts cite block *line* numbers, which count
    // question lines too; map them to story indices.
    std::vector<size_t> line_to_story;
    std::string line;
    size_t line_no = 0;

    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;

        std::istringstream ls(line);
        long index = 0;
        if (!(ls >> index) || index <= 0)
            fatal("bAbI parse error at line %zu: missing line number",
                  line_no);
        if (index == 1) {
            story.clear(); // new block
            line_to_story.clear();
        }

        std::string rest;
        std::getline(ls, rest);
        // Trim the leading space after the number.
        if (!rest.empty() && rest.front() == ' ')
            rest.erase(rest.begin());

        const size_t qmark = rest.find('?');
        if (qmark == std::string::npos) {
            // Statement line.
            line_to_story.resize(
                std::max<size_t>(line_to_story.size(),
                                 static_cast<size_t>(index)),
                ~size_t{0});
            line_to_story[static_cast<size_t>(index) - 1] = story.size();
            story.push_back(toSentence(tokenize(rest), vocab));
            continue;
        }

        // Question line: "<question>?\t<answer>\t<supports>".
        const std::string question_text = rest.substr(0, qmark);
        const std::string tail = rest.substr(qmark + 1);

        std::vector<std::string> fields;
        std::string field;
        std::istringstream tail_stream(tail);
        while (std::getline(tail_stream, field, '\t')) {
            const bool blank =
                field.find_first_not_of(" \r\n") == std::string::npos;
            if (!blank)
                fields.push_back(field);
        }
        if (fields.empty()) {
            fatal("bAbI parse error at line %zu: question without "
                  "answer", line_no);
        }

        Example ex;
        ex.story = story;
        ex.question = toSentence(tokenize(question_text), vocab);
        // Multi-word answers ("football,apple") use the first token
        // for the single-answer model.
        const auto answer_words = tokenize(fields[0]);
        if (answer_words.empty()) {
            fatal("bAbI parse error at line %zu: empty answer",
                  line_no);
        }
        ex.answer = vocab.add(answer_words[0]);

        if (fields.size() > 1) {
            std::istringstream sup(fields[1]);
            long fact = 0;
            while (sup >> fact) {
                const size_t li = static_cast<size_t>(fact - 1);
                if (fact >= 1 && li < line_to_story.size()
                    && line_to_story[li] != ~size_t{0}) {
                    ex.supportingFacts.push_back(line_to_story[li]);
                }
            }
        }
        set.examples.push_back(std::move(ex));
    }
    return set;
}

Dataset
parseBabiFile(const std::string &path, Vocabulary &vocab)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open bAbI file '%s'", path.c_str());
    return parseBabi(in, vocab);
}

void
writeBabi(std::ostream &out, const Dataset &set, const Vocabulary &vocab)
{
    for (const Example &ex : set.examples) {
        size_t n = 1;
        for (const Sentence &s : ex.story) {
            out << n++;
            for (WordId w : s)
                out << ' ' << vocab.wordOf(w);
            out << ".\n";
        }
        out << n;
        for (WordId w : ex.question)
            out << ' ' << vocab.wordOf(w);
        out << "?\t" << vocab.wordOf(ex.answer) << '\t';
        for (size_t i = 0; i < ex.supportingFacts.size(); ++i) {
            if (i)
                out << ' ';
            out << ex.supportingFacts[i] + 1;
        }
        out << '\n';
    }
}

void
writeBabiFile(const std::string &path, const Dataset &set,
              const Vocabulary &vocab)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    writeBabi(out, set, vocab);
}

} // namespace mnnfast::data
