/**
 * @file
 * Cache-line-aligned float buffers.
 *
 * The compute kernels assume 64-byte alignment so the compiler can emit
 * aligned vector loads; std::vector<float> gives only 16-byte alignment
 * on most platforms.
 */

#ifndef MNNFAST_UTIL_ALIGNED_BUFFER_HH
#define MNNFAST_UTIL_ALIGNED_BUFFER_HH

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

#include "util/logging.hh"

namespace mnnfast {

/** Cache line size assumed throughout the library (bytes). */
inline constexpr size_t kCacheLineBytes = 64;

/**
 * A fixed-capacity, 64-byte-aligned array of trivially-copyable
 * elements. Movable but not copyable (copies of multi-GB matrices
 * should always be explicit).
 */
template <typename T>
class AlignedBuffer
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "AlignedBuffer only supports trivially copyable types");

  public:
    AlignedBuffer() = default;

    /** Allocate n elements, zero-initialized. */
    explicit AlignedBuffer(size_t n) { allocate(n); }

    AlignedBuffer(const AlignedBuffer &) = delete;
    AlignedBuffer &operator=(const AlignedBuffer &) = delete;

    AlignedBuffer(AlignedBuffer &&other) noexcept
        : ptr(std::exchange(other.ptr, nullptr)),
          count(std::exchange(other.count, 0))
    {}

    AlignedBuffer &
    operator=(AlignedBuffer &&other) noexcept
    {
        if (this != &other) {
            release();
            ptr = std::exchange(other.ptr, nullptr);
            count = std::exchange(other.count, 0);
        }
        return *this;
    }

    ~AlignedBuffer() { release(); }

    /** Reallocate to n zero-initialized elements (old contents lost). */
    void
    allocate(size_t n)
    {
        release();
        if (n == 0)
            return;
        const size_t bytes =
            (n * sizeof(T) + kCacheLineBytes - 1)
            / kCacheLineBytes * kCacheLineBytes;
        void *raw = std::aligned_alloc(kCacheLineBytes, bytes);
        if (!raw)
            throw std::bad_alloc();
        ptr = static_cast<T *>(raw);
        count = n;
        zero();
    }

    /** Set every element to T{}. */
    void
    zero()
    {
        std::fill(ptr, ptr + count, T{});
    }

    T *data() { return ptr; }
    const T *data() const { return ptr; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }

    T &
    operator[](size_t i)
    {
        mnn_assert(i < count, "AlignedBuffer index out of range");
        return ptr[i];
    }

    const T &
    operator[](size_t i) const
    {
        mnn_assert(i < count, "AlignedBuffer index out of range");
        return ptr[i];
    }

    T *begin() { return ptr; }
    T *end() { return ptr + count; }
    const T *begin() const { return ptr; }
    const T *end() const { return ptr + count; }

  private:
    void
    release()
    {
        std::free(ptr);
        ptr = nullptr;
        count = 0;
    }

    T *ptr = nullptr;
    size_t count = 0;
};

} // namespace mnnfast

#endif // MNNFAST_UTIL_ALIGNED_BUFFER_HH
