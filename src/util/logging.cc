#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mnnfast {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Normal};

// Serializes multi-part writes so lines from different threads do not
// interleave mid-line.
std::mutex g_io_mutex;

void
emit(const char *prefix, const char *fmt, va_list args)
{
    std::lock_guard<std::mutex> lock(g_io_mutex);
    std::fputs(prefix, stderr);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info: ", fmt, args);
    va_end(args);
}

void
verbose(const char *fmt, ...)
{
    if (logLevel() != LogLevel::Verbose)
        return;
    va_list args;
    va_start(args, fmt);
    emit("debug: ", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("warn: ", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic: ", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace mnnfast
