/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (dataset generators, weight
 * initialization, traffic generators) draw from XorShiftRng so runs are
 * reproducible from a single seed. std::mt19937 is avoided because its
 * large state makes per-object generators expensive and its stream is
 * not guaranteed identical across standard library implementations for
 * the distribution adaptors.
 */

#ifndef MNNFAST_UTIL_RNG_HH
#define MNNFAST_UTIL_RNG_HH

#include <cmath>
#include <cstdint>

#include "util/logging.hh"

namespace mnnfast {

/**
 * xorshift64* generator: tiny state, passes BigCrush on the high bits,
 * and fully deterministic across platforms.
 */
class XorShiftRng
{
  public:
    /** Construct from a seed; seed 0 is remapped to a fixed constant. */
    explicit XorShiftRng(uint64_t seed = 0x9E3779B97F4A7C15ull)
        : state(seed ? seed : 0x9E3779B97F4A7C15ull)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545F4914F6CDD1Dull;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // Use the high 53 bits for a dyadic rational in [0,1).
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    float
    uniformRange(float lo, float hi)
    {
        return lo + static_cast<float>(uniform()) * (hi - lo);
    }

    /** Uniform integer in [0, n). n must be > 0. */
    uint64_t
    below(uint64_t n)
    {
        mnn_assert(n > 0, "below(0) is undefined");
        // Modulo bias is negligible for n << 2^64 (all our uses).
        return next() % n;
    }

    /** Standard normal via Box-Muller (cached second value). */
    double
    gaussian()
    {
        if (hasSpare) {
            hasSpare = false;
            return spare;
        }
        double u1 = 0.0;
        while (u1 == 0.0)
            u1 = uniform();
        const double u2 = uniform();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        const double two_pi = 6.283185307179586;
        spare = mag * std::sin(two_pi * u2);
        hasSpare = true;
        return mag * std::cos(two_pi * u2);
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Split off an independent generator (for per-thread streams). */
    XorShiftRng
    split()
    {
        // Decorrelate by hashing the child seed with an odd constant.
        return XorShiftRng(next() * 0xBF58476D1CE4E5B9ull + 1);
    }

  private:
    uint64_t state;
    double spare = 0.0;
    bool hasSpare = false;
};

} // namespace mnnfast

#endif // MNNFAST_UTIL_RNG_HH
