#include "util/timer.hh"

namespace mnnfast {

void
Timer::reset()
{
    start = std::chrono::steady_clock::now();
}

double
Timer::seconds() const
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start).count();
}

} // namespace mnnfast
