/**
 * @file
 * bfloat16 storage conversions.
 *
 * bfloat16 is the top half of an IEEE-754 float: 1 sign bit, the full
 * 8-bit exponent, and 7 explicit mantissa bits. Keeping the fp32
 * exponent means conversion is a pure 16-bit shift (plus rounding on
 * the way down), which is what lets the bf16 kernels upconvert with
 * one integer shift per lane and stay bit-identical across backends.
 *
 * Encoding uses round-to-nearest-even, so the round-trip
 * fp32 -> bf16 -> fp32 error is bounded by 2^-8 relative for normal
 * inputs (half of the 2^-7 mantissa ulp; property-tested). Decoding is
 * exact: every bf16 value is a representable float.
 */

#ifndef MNNFAST_UTIL_BF16_HH
#define MNNFAST_UTIL_BF16_HH

#include <cstdint>
#include <cstring>

namespace mnnfast {

/** Nearest-even rounding of a float to bfloat16 bits. */
inline uint16_t
bf16FromFloat(float f)
{
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    // NaN: rounding could carry the mantissa into the exponent and
    // turn it into inf; return a quiet NaN with the sign preserved.
    if ((bits & 0x7FFFFFFFu) > 0x7F800000u)
        return static_cast<uint16_t>((bits >> 16) | 0x0040u);
    // Round to nearest, ties to even: add 0x7FFF plus the lowest kept
    // bit, then truncate.
    bits += 0x7FFFu + ((bits >> 16) & 1u);
    return static_cast<uint16_t>(bits >> 16);
}

/** Exact widening of bfloat16 bits to float (a 16-bit shift). */
inline float
bf16ToFloat(uint16_t h)
{
    const uint32_t bits = static_cast<uint32_t>(h) << 16;
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

} // namespace mnnfast

#endif // MNNFAST_UTIL_BF16_HH
