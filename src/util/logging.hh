/**
 * @file
 * Logging and error-reporting primitives, modelled after gem5's
 * logging.hh conventions.
 *
 * Severity levels:
 *  - inform(): normal operating messages, no connotation of error.
 *  - warn():   something may be wrong but execution can continue.
 *  - fatal():  the run cannot continue because of a *user* error
 *              (bad configuration, invalid arguments); exits with code 1.
 *  - panic():  an internal invariant was violated (a library bug);
 *              calls std::abort() so a core dump / debugger is usable.
 */

#ifndef MNNFAST_UTIL_LOGGING_HH
#define MNNFAST_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace mnnfast {

/** Global verbosity control for inform(); warn and above always print. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Set the global log level. Thread-safe (relaxed atomic store). */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

/** Print an informational message (printf-style) when level >= Normal. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a verbose debug message when level >= Verbose. */
void verbose(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message. Always printed. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a fatal *user* error and exit(1).
 * Use for invalid configurations or arguments.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort().
 * Use for conditions that should be impossible regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert an internal invariant with a formatted message; panics on
 * failure. Unlike NDEBUG-controlled assert(), this is always active:
 * simulator invariants should hold in release builds too.
 */
#define mnn_assert(cond, msg)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::mnnfast::panic("assertion '%s' failed at %s:%d: %s",        \
                             #cond, __FILE__, __LINE__, (msg));           \
        }                                                                 \
    } while (0)

} // namespace mnnfast

#endif // MNNFAST_UTIL_LOGGING_HH
