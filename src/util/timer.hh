/**
 * @file
 * Wall-clock timing helper for benchmarks and examples.
 */

#ifndef MNNFAST_UTIL_TIMER_HH
#define MNNFAST_UTIL_TIMER_HH

#include <chrono>
#include <cstdint>

namespace mnnfast {

/** A restartable wall-clock stopwatch with nanosecond resolution. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset();

    /** Elapsed time since construction or last reset(), in seconds. */
    double seconds() const;

    /** Elapsed time in milliseconds. */
    double millis() const { return seconds() * 1e3; }

    /** Elapsed time in microseconds. */
    double micros() const { return seconds() * 1e6; }

  private:
    std::chrono::steady_clock::time_point start;
};

/**
 * Accumulates time across multiple start/stop intervals; used by the
 * engine instrumentation to attribute latency to individual operators
 * (inner product, softmax, weighted sum, ...).
 */
class PhaseTimer
{
  public:
    /** Begin an interval. */
    void start() { timer.reset(); running = true; }

    /** End the current interval and add it to the total. */
    void
    stop()
    {
        if (running) {
            total += timer.seconds();
            running = false;
        }
    }

    /** Total accumulated seconds across all intervals. */
    double seconds() const { return total; }

    /** Clear the accumulated total. */
    void clear() { total = 0.0; running = false; }

  private:
    Timer timer;
    double total = 0.0;
    bool running = false;
};

} // namespace mnnfast

#endif // MNNFAST_UTIL_TIMER_HH
