#include "sim/contention.hh"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "data/zipf.hh"
#include "util/logging.hh"

namespace mnnfast::sim {

namespace {

constexpr uint64_t kInferenceBase = 1ull << 36;
constexpr uint64_t kEmbeddingBase = 2ull << 40;

// Cost model for an inference thread: every touched line comes with
// a fixed amount of useful compute (the dot products / weighted sums
// on that line's data), and a miss adds the exposed DRAM penalty on
// top. Compute partially amortizes misses, bounding the worst-case
// slowdown at (compute + penalty) / compute — the 1.0-2.5x range the
// paper's Fig. 4 reports.
constexpr double kComputeCyclesPerLine = 40.0;
constexpr double kMissPenaltyCycles = 60.0;

/**
 * One pass of inference + embedding traffic through the shared LLC.
 *
 * The inference stream walks its working set cyclically (the chunk
 * temporaries are re-touched every chunk iteration); after every
 * inference line each embedding thread issues lookups according to
 * its rate.
 */
struct InterleavedRun
{
    uint64_t inf_hits = 0;
    uint64_t inf_misses = 0;
    uint64_t emb_hits = 0;
    uint64_t emb_misses = 0;
};

InterleavedRun
runRounds(const ContentionParams &p, CacheModel &llc,
          size_t rounds, bool measured)
{
    InterleavedRun r;
    const uint64_t line = llc.lineBytes();
    const uint64_t inf_lines = p.inferenceWorkingSet / line;
    const size_t table_rows =
        std::max<size_t>(1, p.embeddingTableBytes / p.embeddingRowBytes);

    data::ZipfGenerator zipf(table_rows, p.zipfS, p.seed);
    // Accumulates fractional lookups so non-integer rates work.
    std::vector<double> credit(p.embeddingThreads, 0.0);

    for (size_t round = 0; round < rounds; ++round) {
        for (uint64_t l = 0; l < inf_lines; ++l) {
            const bool hit = llc.access(kInferenceBase + l * line);
            if (measured) {
                if (hit)
                    ++r.inf_hits;
                else
                    ++r.inf_misses;
            }

            for (size_t t = 0; t < p.embeddingThreads; ++t) {
                credit[t] += p.embeddingRate;
                while (credit[t] >= 1.0) {
                    credit[t] -= 1.0;
                    const uint64_t row = zipf.sample();
                    const uint64_t base =
                        kEmbeddingBase + row * p.embeddingRowBytes;
                    for (uint64_t b = 0; b < p.embeddingRowBytes;
                         b += line) {
                        bool ehit = false;
                        switch (p.policy) {
                          case EmbeddingPolicy::Shared:
                            ehit = llc.access(base + b);
                            break;
                          case EmbeddingPolicy::Bypass:
                            ehit = llc.accessNoAllocate(base + b);
                            break;
                          case EmbeddingPolicy::Dedicated:
                            // Never touches the shared LLC; hit rate
                            // is reported by the embedding cache
                            // model itself (src/fpga).
                            ehit = true;
                            break;
                        }
                        if (measured) {
                            if (ehit)
                                ++r.emb_hits;
                            else
                                ++r.emb_misses;
                        }
                    }
                }
            }
        }
    }
    return r;
}

double
cyclesOf(uint64_t hits, uint64_t misses)
{
    return kComputeCyclesPerLine * static_cast<double>(hits + misses)
         + kMissPenaltyCycles * static_cast<double>(misses);
}

} // namespace

ContentionResult
simulateContention(const ContentionParams &params)
{
    if (params.inferenceWorkingSet < params.llc.lineBytes)
        fatal("inference working set smaller than one cache line");

    // Solo run: inference alone on an identical LLC.
    ContentionParams solo = params;
    solo.embeddingThreads = 0;
    double solo_cycles;
    {
        CacheModel llc(solo.llc);
        runRounds(solo, llc, 2, false); // warmup
        const auto run = runRounds(solo, llc, solo.rounds, true);
        solo_cycles = cyclesOf(run.inf_hits, run.inf_misses)
                    / static_cast<double>(solo.rounds);
    }

    // Contended run.
    ContentionResult result;
    {
        CacheModel llc(params.llc);
        runRounds(params, llc, 2, false); // warmup
        const auto run = runRounds(params, llc, params.rounds, true);
        const uint64_t inf_total = run.inf_hits + run.inf_misses;
        const uint64_t emb_total = run.emb_hits + run.emb_misses;
        result.inferenceHitRate =
            inf_total ? double(run.inf_hits) / double(inf_total) : 0.0;
        result.embeddingHitRate =
            emb_total ? double(run.emb_hits) / double(emb_total) : 0.0;
        result.inferenceCyclesPerRound =
            cyclesOf(run.inf_hits, run.inf_misses)
            / static_cast<double>(params.rounds);
    }

    result.slowdown = result.inferenceCyclesPerRound / solo_cycles;
    return result;
}

} // namespace mnnfast::sim
