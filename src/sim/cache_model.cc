#include "sim/cache_model.hh"

#include "util/logging.hh"

namespace mnnfast::sim {

namespace {

bool
isPowerOfTwo(size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

CacheModel::CacheModel(const CacheConfig &cfg)
    : cfg(cfg)
{
    if (cfg.lineBytes == 0 || !isPowerOfTwo(cfg.lineBytes))
        fatal("cache line size must be a power of two");
    if (cfg.associativity == 0)
        fatal("cache associativity must be nonzero");
    const size_t lines = cfg.sizeBytes / cfg.lineBytes;
    if (lines == 0 || lines % cfg.associativity != 0)
        fatal("cache size %zu not divisible into %zu-way sets",
              cfg.sizeBytes, cfg.associativity);
    n_sets = lines / cfg.associativity;
    ways.resize(n_sets * cfg.associativity);
}

CacheModel::Way *
CacheModel::findWay(size_t set, uint64_t tag)
{
    Way *base = ways.data() + set * cfg.associativity;
    for (size_t w = 0; w < cfg.associativity; ++w)
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    return nullptr;
}

const CacheModel::Way *
CacheModel::findWay(size_t set, uint64_t tag) const
{
    const Way *base = ways.data() + set * cfg.associativity;
    for (size_t w = 0; w < cfg.associativity; ++w)
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    return nullptr;
}

bool
CacheModel::access(uint64_t addr, bool is_write)
{
    const uint64_t line = addr / cfg.lineBytes;
    const size_t set = static_cast<size_t>(line % n_sets);
    const uint64_t tag = line / n_sets;
    ++use_clock;

    if (Way *way = findWay(set, tag)) {
        way->lastUse = use_clock;
        way->dirty = way->dirty || is_write;
        stats_["hits"].add();
        return true;
    }

    stats_["misses"].add();

    // Fill: choose an invalid way or the LRU victim.
    Way *base = ways.data() + set * cfg.associativity;
    Way *victim = &base[0];
    for (size_t w = 0; w < cfg.associativity; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (victim->valid) {
        stats_["evictions"].add();
        if (victim->dirty)
            stats_["writebacks"].add();
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lastUse = use_clock;
    return false;
}

bool
CacheModel::accessNoAllocate(uint64_t addr, bool is_write)
{
    const uint64_t line = addr / cfg.lineBytes;
    const size_t set = static_cast<size_t>(line % n_sets);
    const uint64_t tag = line / n_sets;
    ++use_clock;

    if (Way *way = findWay(set, tag)) {
        way->lastUse = use_clock;
        way->dirty = way->dirty || is_write;
        stats_["hits"].add();
        return true;
    }
    stats_["misses"].add();
    return false;
}

bool
CacheModel::probe(uint64_t addr) const
{
    const uint64_t line = addr / cfg.lineBytes;
    const size_t set = static_cast<size_t>(line % n_sets);
    const uint64_t tag = line / n_sets;
    return findWay(set, tag) != nullptr;
}

void
CacheModel::flush()
{
    for (Way &w : ways)
        w = Way{};
    use_clock = 0;
}

} // namespace mnnfast::sim
