/**
 * @file
 * Bank/row-buffer level DRAM timing model.
 *
 * The analytic CPU model (sim/cpu_system.hh) charges demand misses
 * only a fraction of peak bandwidth (`demandBandwidthEff`) while
 * streamed prefetches run at peak. This model derives that asymmetry
 * from first principles: sequential streams hit open row buffers and
 * pipeline across banks, while pointer-chasing/random accesses pay
 * activate/precharge penalties and bank conflicts. The
 * `ablation_dram_detail` bench replays both patterns and reports the
 * achieved bandwidth ratio.
 *
 * Timing per access (line granularity):
 *   ready  = max(channel bus free, target bank free)
 *   bus    : ready .. ready + lineBytes / bytesPerCycle
 *   bank   : ready .. ready + {tRowHit | tRowMiss | tRowConflict}
 * where the row state of the bank decides the case: the open row
 * matches (hit), the bank is closed (miss = activate), or another
 * row is open (conflict = precharge + activate).
 */

#ifndef MNNFAST_SIM_DRAM_BANK_MODEL_HH
#define MNNFAST_SIM_DRAM_BANK_MODEL_HH

#include <cstdint>
#include <vector>

#include "sim/dram_model.hh"

namespace mnnfast::sim {

/** Bank-level timing parameters (core-clock cycles). */
struct DramBankConfig
{
    size_t banksPerChannel = 16;
    /** DRAM row (page) size in bytes. */
    uint64_t rowBytes = 8192;
    /** Closed bank: activate + access. */
    double tRowMiss = 40.0;
    /** Wrong row open: precharge + activate + access. */
    double tRowConflict = 65.0;
};

/** Result of replaying one access stream. */
struct DramStreamStats
{
    uint64_t lines = 0;
    uint64_t rowHits = 0;
    uint64_t rowMisses = 0;
    uint64_t rowConflicts = 0;
    /** Total cycles until the last access completes. */
    double cycles = 0.0;
    /** Achieved bandwidth in bytes/cycle. */
    double bytesPerCycle = 0.0;
    /** Achieved fraction of the configured peak bandwidth. */
    double efficiency = 0.0;
};

/** See file header. */
class DramBankModel
{
  public:
    DramBankModel(const DramConfig &dram, const DramBankConfig &banks);

    /**
     * Replay an ordered stream of byte addresses (one line fetch
     * each) through the banked timing model and return the achieved
     * bandwidth statistics. Resets state first, so calls are
     * independent.
     */
    DramStreamStats replay(const std::vector<uint64_t> &addrs);

    const DramConfig &dramConfig() const { return dram; }
    const DramBankConfig &bankConfig() const { return banks; }

  private:
    struct BankState
    {
        uint64_t openRow = ~uint64_t{0};
        bool anyOpen = false;
        double freeAt = 0.0;
    };

    DramConfig dram;
    DramBankConfig banks;
};

} // namespace mnnfast::sim

#endif // MNNFAST_SIM_DRAM_BANK_MODEL_HH
