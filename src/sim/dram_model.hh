/**
 * @file
 * Multi-channel DRAM bandwidth/latency model.
 *
 * Address-interleaved channels, each with a fixed peak bandwidth.
 * Supports both functional counting (which channel served which line,
 * for Fig. 11-style accounting) and analytic service-time queries used
 * by the CPU timing model (Figs. 3, 10).
 */

#ifndef MNNFAST_SIM_DRAM_MODEL_HH
#define MNNFAST_SIM_DRAM_MODEL_HH

#include <cstdint>
#include <vector>

#include "stats/counter.hh"

namespace mnnfast::sim {

/** DRAM geometry and speeds (defaults model DDR4-2400). */
struct DramConfig
{
    size_t channels = 4;
    /** Peak bandwidth per channel, bytes per core-clock cycle. */
    double bytesPerCyclePerChannel = 8.0;
    /** Idle (unloaded) access latency in core cycles. */
    uint64_t latencyCycles = 200;
    size_t lineBytes = 64;
};

/** See file header. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &cfg);

    /** Record one line fetch; returns the serving channel. */
    size_t recordAccess(uint64_t addr);

    /** Total lines fetched so far. */
    uint64_t totalLines() const;

    /** Lines fetched on one channel. */
    uint64_t channelLines(size_t ch) const;

    /**
     * Cycles to transfer `lines` cache lines at peak aggregate
     * bandwidth (perfect interleaving across channels).
     */
    double transferCycles(uint64_t lines) const;

    /** Aggregate peak bandwidth in bytes/cycle. */
    double
    aggregateBandwidth() const
    {
        return cfg.bytesPerCyclePerChannel
             * static_cast<double>(cfg.channels);
    }

    const DramConfig &config() const { return cfg; }

    /** Reset access counters. */
    void resetStats();

  private:
    DramConfig cfg;
    std::vector<stats::Counter> per_channel;
};

} // namespace mnnfast::sim

#endif // MNNFAST_SIM_DRAM_MODEL_HH
