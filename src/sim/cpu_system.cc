#include "sim/cpu_system.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mnnfast::sim {

CpuSystemModel::CpuSystemModel(const CpuSystemConfig &cfg)
    : cfg(cfg)
{
    if (cfg.flopsPerCycle <= 0 || cfg.mlp <= 0)
        fatal("CPU model parameters must be positive");
    if (cfg.demandBandwidthEff <= 0 || cfg.demandBandwidthEff > 1.0)
        fatal("demand bandwidth efficiency must be in (0, 1]");
}

double
CpuSystemModel::phaseCycles(const PhaseTraffic &phase,
                            size_t threads) const
{
    mnn_assert(threads > 0, "need at least one thread");
    const double T = static_cast<double>(threads);
    const double line = static_cast<double>(cfg.dram.lineBytes);
    const double agg_bw = cfg.dram.bytesPerCyclePerChannel
                        * static_cast<double>(cfg.dram.channels);

    const double compute = phase.flops / (cfg.flopsPerCycle * T);
    const double stall = static_cast<double>(phase.demandMisses)
                       * cfg.memLatencyCycles / cfg.mlp / T;
    const double bw =
        static_cast<double>(phase.demandMisses) * line
            / (agg_bw * cfg.demandBandwidthEff)
        + static_cast<double>(phase.prefetchedLines) * line / agg_bw;

    if (phase.overlappable)
        return std::max(compute, bw);
    return std::max(compute + stall, bw);
}

double
CpuSystemModel::executionCycles(const TrafficResult &traffic,
                                size_t threads) const
{
    double total = 0.0;
    for (const PhaseTraffic &p : traffic.phases)
        total += phaseCycles(p, threads);
    return total;
}

double
CpuSystemModel::speedup(const TrafficResult &traffic,
                        size_t threads) const
{
    return executionCycles(traffic, 1) / executionCycles(traffic, threads);
}

CpuSystemModel::ScaleOutResult
CpuSystemModel::scaleOut(Dataflow df, const WorkloadParams &wp,
                         const CacheConfig &llc, size_t nodes,
                         size_t threads) const
{
    mnn_assert(nodes > 0, "need at least one node");
    if (df == Dataflow::Baseline) {
        fatal("the baseline dataflow cannot scale out: its layers "
              "synchronize on O(ns) intermediates (see paper "
              "Section 3.1)");
    }

    // The slowest node holds ceil(ns / nodes) sentences.
    WorkloadParams part = wp;
    part.ns = (wp.ns + nodes - 1) / nodes;
    const TrafficResult traffic = simulateDataflow(df, part, llc);

    ScaleOutResult result;
    // Merge: every node ships its partial output matrix (nq x ed) and
    // per-question partial sums (nq) to the root.
    result.mergeBytes = static_cast<double>(nodes)
                      * static_cast<double>(wp.nq)
                      * static_cast<double>(wp.ed + 1) * sizeof(float);
    result.mergeCycles =
        nodes > 1 ? cfg.interconnectLatencyCycles
                        + result.mergeBytes
                              / cfg.interconnectBytesPerCycle
                  : 0.0;
    result.cycles =
        executionCycles(traffic, threads) + result.mergeCycles;
    return result;
}

} // namespace mnnfast::sim
