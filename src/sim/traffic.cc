#include "sim/traffic.hh"

#include <algorithm>

#include "runtime/parallel_for.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace mnnfast::sim {

namespace {

// Disjoint virtual address regions (64 GiB apart, far beyond any
// simulated footprint).
constexpr uint64_t kMinBase = 1ull << 36;
constexpr uint64_t kMoutBase = 2ull << 36;
constexpr uint64_t kTinBase = 3ull << 36;
constexpr uint64_t kPexpBase = 4ull << 36;
constexpr uint64_t kPBase = 5ull << 36;
constexpr uint64_t kUBase = 6ull << 36;
constexpr uint64_t kOutBase = 7ull << 36;
constexpr uint64_t kScratchBase = 8ull << 36;
constexpr uint64_t kIndexBase = 9ull << 36;  ///< chunk-summary lo/hi
constexpr uint64_t kScoreBase = 10ull << 36; ///< per-question bounds

/** Approximate flop cost of one exponential evaluation. */
constexpr double kExpFlops = 20.0;

/**
 * Drives a phase's accesses into the cache and tallies the traffic.
 */
class PhaseRecorder
{
  public:
    PhaseRecorder(CacheModel &cache, PhaseTraffic &phase)
        : cache(cache), phase(phase)
    {}

    /** Demand access to one address; true when a line was fetched. */
    bool
    touch(uint64_t addr, bool write = false)
    {
        ++phase.accesses;
        if (cache.access(addr, write)) {
            ++phase.hits;
            return false;
        }
        ++phase.demandMisses;
        return true;
    }

    /**
     * Streamed (prefetched) access: fills the cache like a demand
     * access, but a miss is counted as a prefetched line (bandwidth
     * consumed, no stall). Returns true when a line was fetched.
     */
    bool
    touchStreamed(uint64_t addr, bool write = false)
    {
        ++phase.accesses;
        if (cache.access(addr, write)) {
            ++phase.hits;
            return false;
        }
        ++phase.prefetchedLines;
        return true;
    }

    /**
     * Touch a [addr, addr+bytes) range at line granularity; returns
     * the number of lines fetched from DRAM (demand or prefetched).
     */
    uint64_t
    touchRange(uint64_t addr, uint64_t bytes, bool write, bool streamed)
    {
        const uint64_t line = cache.lineBytes();
        const uint64_t first = addr / line * line;
        uint64_t fetched = 0;
        for (uint64_t a = first; a < addr + bytes; a += line) {
            if (streamed)
                fetched += touchStreamed(a, write) ? 1 : 0;
            else
                fetched += touch(a, write) ? 1 : 0;
        }
        return fetched;
    }

  private:
    CacheModel &cache;
    PhaseTraffic &phase;
};

/**
 * Chunk-aligned sentence-row partition, mirroring
 * core::ShardedKnowledgeBase: splitRange over the chunk count, scaled
 * back to rows, last shard absorbing the trailing partial chunk.
 */
std::vector<runtime::Range>
shardRowRanges(const WorkloadParams &wp)
{
    const size_t chunk = std::min<size_t>(wp.chunkSize, wp.ns);
    const size_t n_chunks = (wp.ns + chunk - 1) / chunk;
    const size_t want = std::max<size_t>(1, wp.shards);
    const auto groups =
        runtime::splitRange(n_chunks, std::min(n_chunks, want));
    std::vector<runtime::Range> rows;
    rows.reserve(groups.size());
    for (const runtime::Range &g : groups)
        rows.push_back({g.begin * chunk,
                        std::min<size_t>(wp.ns, g.end * chunk)});
    return rows;
}

/** Shard owning sentence row `i` (ranges are contiguous, in order). */
size_t
shardOfRow(const std::vector<runtime::Range> &ranges, uint64_t row)
{
    size_t s = 0;
    while (s + 1 < ranges.size() && row >= ranges[s].end)
        ++s;
    return s;
}

/**
 * Baseline dataflow (paper Fig. 5a): three layer-at-a-time passes
 * with fully materialized T_IN / P_exp / P buffers of nq x ns floats.
 */
void
runBaseline(const WorkloadParams &wp, CacheModel &cache,
            TrafficResult &result)
{
    // KB rows scale with the storage precision; every per-question
    // vector (u, o, T_IN, P_exp, P) stays fp32.
    const uint64_t kb_row_bytes = wp.ed * wp.kbElemBytes;
    const uint64_t row_bytes = wp.ed * sizeof(float);
    const uint64_t vec_elems = uint64_t(wp.nq) * wp.ns;
    const auto shard_rows = shardRowRanges(wp);
    result.shardKbLines.assign(shard_rows.size(), 0);

    // ---- Phase 1: inner product  T_IN[q][i] = u_q . M_IN[i] ----
    result.phases.push_back({"inner_product", 0, 0, 0, 0, 0, false});
    {
        PhaseRecorder rec(cache, result.phases.back());
        for (uint64_t i = 0; i < wp.ns; ++i) {
            result.shardKbLines[shardOfRow(shard_rows, i)] +=
                rec.touchRange(kMinBase + i * kb_row_bytes,
                               kb_row_bytes, false, false);
            for (uint64_t q = 0; q < wp.nq; ++q) {
                // u_q is tiny and stays resident.
                rec.touch(kUBase + q * row_bytes);
                rec.touch(kTinBase + (q * wp.ns + i) * sizeof(float),
                          true);
            }
        }
        result.phases.back().flops = 2.0 * double(vec_elems) * wp.ed;
    }

    // ---- Phase 2: softmax (exp pass, sum pass, normalize pass) ----
    result.phases.push_back({"softmax", 0, 0, 0, 0, 0, false});
    {
        PhaseRecorder rec(cache, result.phases.back());
        for (uint64_t q = 0; q < wp.nq; ++q) {
            const uint64_t off = q * wp.ns * sizeof(float);
            // 2-1: P_exp = exp(T_IN)
            for (uint64_t i = 0; i < wp.ns; ++i) {
                rec.touch(kTinBase + off + i * sizeof(float));
                rec.touch(kPexpBase + off + i * sizeof(float), true);
            }
            // 2-2a: reduce sum(P_exp)
            for (uint64_t i = 0; i < wp.ns; ++i)
                rec.touch(kPexpBase + off + i * sizeof(float));
            // 2-2b: P = P_exp / sum  (ns divisions per question)
            for (uint64_t i = 0; i < wp.ns; ++i) {
                rec.touch(kPexpBase + off + i * sizeof(float));
                rec.touch(kPBase + off + i * sizeof(float), true);
            }
        }
        result.phases.back().flops =
            double(vec_elems) * (kExpFlops + 2.0);
    }

    // ---- Phase 3: weighted sum  o_q += P[q][i] * M_OUT[i] ----
    result.phases.push_back({"weighted_sum", 0, 0, 0, 0, 0, false});
    {
        PhaseRecorder rec(cache, result.phases.back());
        for (uint64_t i = 0; i < wp.ns; ++i) {
            result.shardKbLines[shardOfRow(shard_rows, i)] +=
                rec.touchRange(kMoutBase + i * kb_row_bytes,
                               kb_row_bytes, false, false);
            for (uint64_t q = 0; q < wp.nq; ++q) {
                rec.touch(kPBase + (q * wp.ns + i) * sizeof(float));
                // o accumulators are tiny and resident.
                rec.touch(kOutBase + q * row_bytes, true);
            }
        }
        result.phases.back().flops = 2.0 * double(vec_elems) * wp.ed;
    }
}

/**
 * Column dataflow (paper Fig. 5b): per chunk, the inner products,
 * partial softmax and weighted sum run back to back over a reused
 * O(chunk) scratch buffer; M_IN/M_OUT rows are touched exactly once.
 * Streamed variants prefetch the chunk rows; MnnFast additionally
 * skips (1 - keep) of the weighted-sum rows.
 */
void
runColumn(const WorkloadParams &wp, CacheModel &cache,
          TrafficResult &result, bool streamed, bool zskip)
{
    const uint64_t kb_row_bytes = wp.ed * wp.kbElemBytes;
    const uint64_t row_bytes = wp.ed * sizeof(float);
    const uint64_t vec_elems = uint64_t(wp.nq) * wp.ns;
    const auto shard_rows = shardRowRanges(wp);
    result.shardKbLines.assign(shard_rows.size(), 0);

    // The optional route_score phase is appended after the loop;
    // reserving up front keeps the inner/softmax/wsum references
    // below valid across that push_back.
    result.phases.reserve(4);
    result.phases.push_back(
        {"inner_product", 0, 0, 0, 0, 0, streamed});
    result.phases.push_back({"softmax", 0, 0, 0, 0, 0, streamed});
    result.phases.push_back(
        {"weighted_sum", 0, 0, 0, 0, 0, streamed});
    PhaseTraffic &inner = result.phases[0];
    PhaseTraffic &softmax = result.phases[1];
    PhaseTraffic &wsum = result.phases[2];

    // Deterministic choice of kept rows under zero-skipping.
    XorShiftRng keep_rng(0xC0FFEE);

    // Coarse routing (routeChunkFraction < 1): each (question, chunk)
    // pair is streamed independently with the configured probability.
    // The selection draws come from their own generator so the
    // keep_rng draw sequence — and with it the fraction == 1 stream —
    // is byte-for-byte identical to the unrouted replay.
    const bool routed = wp.routeChunkFraction < 1.0;
    XorShiftRng route_rng(0xBEEF5EED);
    std::vector<uint8_t> rsel(wp.nq, 1);
    uint64_t routed_pairs = 0;

    for (uint64_t c0 = 0; c0 < wp.ns; c0 += wp.chunkSize) {
        const uint64_t c1 = std::min<uint64_t>(c0 + wp.chunkSize, wp.ns);
        // Shards are chunk-aligned, so one lookup covers the chunk.
        const size_t shard = shardOfRow(shard_rows, c0);

        uint64_t nsel = wp.nq;
        if (routed) {
            nsel = 0;
            for (uint64_t q = 0; q < wp.nq; ++q) {
                rsel[q] =
                    route_rng.chance(wp.routeChunkFraction) ? 1 : 0;
                nsel += rsel[q];
            }
            routed_pairs += nsel * (c1 - c0);
            // Bypassed chunk: no question selected it, so its rows
            // are never touched — the routed savings.
            if (nsel == 0)
                continue;
        }

        // Phase 1: inner products over the chunk. The M_IN rows
        // stream once per chunk as long as any question selected it
        // (nsel >= 1 here); per-question traffic is selection-gated.
        {
            PhaseRecorder rec(cache, inner);
            for (uint64_t i = c0; i < c1; ++i) {
                result.shardKbLines[shard] +=
                    rec.touchRange(kMinBase + i * kb_row_bytes,
                                   kb_row_bytes, false, streamed);
                for (uint64_t q = 0; q < wp.nq; ++q) {
                    if (routed && !rsel[q])
                        continue;
                    rec.touch(kUBase + q * row_bytes);
                    // Chunk scratch is reused across chunks: same
                    // addresses every iteration -> stays resident.
                    rec.touch(kScratchBase
                                  + (q * wp.chunkSize + (i - c0))
                                        * sizeof(float),
                              true);
                }
            }
        }

        // Phase 2: partial softmax (exp in place + running sum).
        {
            PhaseRecorder rec(cache, softmax);
            for (uint64_t q = 0; q < wp.nq; ++q) {
                if (routed && !rsel[q])
                    continue;
                for (uint64_t i = c0; i < c1; ++i) {
                    const uint64_t a =
                        kScratchBase
                        + (q * wp.chunkSize + (i - c0)) * sizeof(float);
                    rec.touch(a);
                    rec.touch(a, true);
                }
            }
        }

        // Phase 3: weighted sum accumulation (with zero-skipping).
        {
            PhaseRecorder rec(cache, wsum);
            for (uint64_t i = c0; i < c1; ++i) {
                bool row_needed = !zskip;
                if (zskip) {
                    // A row is read if any (selected) question keeps
                    // it. Unrouted replays draw for every question,
                    // exactly as before routing existed.
                    for (uint64_t q = 0; q < wp.nq && !row_needed;
                         ++q) {
                        if (routed && !rsel[q])
                            continue;
                        row_needed =
                            keep_rng.chance(wp.zskipKeepFraction);
                    }
                }
                if (row_needed) {
                    result.shardKbLines[shard] +=
                        rec.touchRange(kMoutBase + i * kb_row_bytes,
                                       kb_row_bytes, false, streamed);
                }
                for (uint64_t q = 0; q < wp.nq; ++q) {
                    if (routed && !rsel[q])
                        continue;
                    rec.touch(kScratchBase
                              + (q * wp.chunkSize + (i - c0))
                                    * sizeof(float));
                    if (row_needed)
                        rec.touch(kOutBase + q * row_bytes, true);
                }
            }
        }
    }

    const double keep = zskip ? wp.zskipKeepFraction : 1.0;
    if (routed) {
        // Compute shrinks to the pairs actually streamed.
        const double pairs = double(routed_pairs);
        inner.flops = 2.0 * pairs * wp.ed;
        softmax.flops = pairs * (kExpFlops + 1.0);
        wsum.flops = 2.0 * pairs * wp.ed * keep;

        // The coarse scoring pass the savings paid for: every
        // question reads each chunk's lo+hi fp32 summary rows and
        // writes one score per chunk (~4 flops per scored dimension:
        // two muls, a max, an add). Appended after the sweep phases
        // so unrouted replays keep their phase indices.
        const uint64_t n_chunks =
            (wp.ns + wp.chunkSize - 1) / wp.chunkSize;
        result.phases.push_back(
            {"route_score", 0, 0, 0, 0, 0, false});
        PhaseRecorder rec(cache, result.phases.back());
        rec.touchRange(kIndexBase, n_chunks * 2 * row_bytes, false,
                       false);
        rec.touchRange(kScoreBase,
                       uint64_t(wp.nq) * n_chunks * sizeof(float),
                       true, false);
        result.phases.back().flops =
            4.0 * double(wp.nq) * double(n_chunks) * wp.ed;
    } else {
        inner.flops = 2.0 * double(vec_elems) * wp.ed;
        softmax.flops = double(vec_elems) * (kExpFlops + 1.0);
        wsum.flops = 2.0 * double(vec_elems) * wp.ed * keep;
    }
}

} // namespace

const char *
dataflowName(Dataflow df)
{
    switch (df) {
      case Dataflow::Baseline: return "baseline";
      case Dataflow::Column: return "column";
      case Dataflow::ColumnStreaming: return "column+streaming";
      case Dataflow::MnnFast: return "mnnfast";
    }
    panic("unknown Dataflow %d", static_cast<int>(df));
}

uint64_t
TrafficResult::demandMisses() const
{
    uint64_t n = 0;
    for (const auto &p : phases)
        n += p.demandMisses;
    return n;
}

uint64_t
TrafficResult::prefetchedLines() const
{
    uint64_t n = 0;
    for (const auto &p : phases)
        n += p.prefetchedLines;
    return n;
}

uint64_t
TrafficResult::dramLines() const
{
    return demandMisses() + prefetchedLines();
}

uint64_t
TrafficResult::kbDramLines() const
{
    uint64_t n = 0;
    for (uint64_t lines : shardKbLines)
        n += lines;
    return n;
}

uint64_t
TrafficResult::accesses() const
{
    uint64_t n = 0;
    for (const auto &p : phases)
        n += p.accesses;
    return n;
}

double
TrafficResult::flops() const
{
    double f = 0.0;
    for (const auto &p : phases)
        f += p.flops;
    return f;
}

TrafficResult
simulateDataflow(Dataflow df, const WorkloadParams &params,
                 const CacheConfig &llc)
{
    if (params.ns == 0 || params.ed == 0 || params.nq == 0)
        fatal("traffic workload dimensions must be nonzero");
    if (params.chunkSize == 0)
        fatal("traffic chunk size must be nonzero");
    if (params.kbElemBytes == 0)
        fatal("traffic KB element size must be nonzero");
    if (!(params.routeChunkFraction > 0.0
          && params.routeChunkFraction <= 1.0))
        fatal("traffic routeChunkFraction must be in (0, 1]");

    CacheModel cache(llc);
    TrafficResult result;
    result.dataflow = df;
    result.params = params;

    switch (df) {
      case Dataflow::Baseline:
        runBaseline(params, cache, result);
        break;
      case Dataflow::Column:
        runColumn(params, cache, result, false, false);
        break;
      case Dataflow::ColumnStreaming:
        runColumn(params, cache, result, true, false);
        break;
      case Dataflow::MnnFast:
        runColumn(params, cache, result, true, true);
        break;
    }
    return result;
}

} // namespace mnnfast::sim
