/**
 * @file
 * MemNN dataflow traffic generation.
 *
 * Replays the memory access stream of each inference dataflow
 * (baseline layer-at-a-time, column-based, column+streaming, and
 * zero-skipping MnnFast) through the shared-LLC CacheModel, producing
 * per-phase access/miss/byte counts. These feed:
 *  - Fig. 11 (off-chip accesses per dataflow, normalized to baseline),
 *  - Figs. 3 and 10 via CpuSystemModel (thread-scaling under a given
 *    DRAM channel count).
 *
 * Streaming semantics: sequential M_IN/M_OUT reads are issued as
 * software-prefetched lines. Prefetched lines still consume DRAM
 * bandwidth but do not stall the pipeline, so they are counted in
 * `prefetchedLines` rather than `demandMisses` — this matches the
 * paper's accounting where streaming "eliminates off-chip accesses"
 * from the demand path (Fig. 11).
 */

#ifndef MNNFAST_SIM_TRAFFIC_HH
#define MNNFAST_SIM_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cache_model.hh"

namespace mnnfast::sim {

/** Which dataflow's access stream to generate. */
enum class Dataflow {
    Baseline,
    Column,
    ColumnStreaming,
    /** Column + streaming + zero-skipping. */
    MnnFast,
};

/** Display name. */
const char *dataflowName(Dataflow df);

/** Workload dimensions for traffic generation. */
struct WorkloadParams
{
    size_t ns = 1 << 17;     ///< story sentences
    size_t ed = 48;          ///< embedding dimension
    size_t nq = 32;          ///< questions per batch
    size_t chunkSize = 1000; ///< column-dataflow chunk
    /**
     * Fraction of weighted-sum rows kept under zero-skipping
     * (MnnFast dataflow only). The paper measures ~3-19% kept.
     */
    double zskipKeepFraction = 0.1;
    /**
     * Bytes per stored knowledge-base element (M_IN / M_OUT rows
     * only; questions, scratch and accumulators stay fp32). Set this
     * to core::precisionBytes(p) of the modeled storage precision —
     * 4 for f32, 2 for bf16, 1 for the int8 knowledge base — rather
     * than special-casing any one precision; KB sweep traffic scales
     * linearly with it (per-chunk i8 scale metadata is modeled as
     * free: 16 bytes per thousand-row chunk is below line
     * granularity).
     */
    size_t kbElemBytes = sizeof(float);
    /**
     * Knowledge-base shards for scatter/gather serving. 0 or 1 models
     * an unsharded KB; >= 2 partitions the sentence rows into
     * chunk-aligned contiguous shards using the same splitRange
     * decomposition as core::ShardedKnowledgeBase, and
     * TrafficResult::shardKbLines attributes every M_IN/M_OUT DRAM
     * line to the shard its row belongs to. Sharding only changes the
     * attribution, never the access stream — the column dataflow
     * already sweeps shard by shard because shards are chunk-aligned.
     */
    size_t shards = 0;
    /**
     * Fraction of (question, chunk) pairs the coarse-then-fine router
     * streams (column dataflows only; see core::RoutePolicy and
     * DESIGN.md §11). 1 (the default) models exact attention and
     * replays byte-for-byte the unrouted stream. Values in (0, 1)
     * drop each (question, chunk) pair independently with probability
     * 1 - fraction: a chunk no question selected is bypassed (its
     * M_IN/M_OUT rows are never touched), a partially selected chunk
     * streams its rows once but only the selected questions' scratch
     * and accumulator traffic, and a "route_score" phase is appended
     * after the sweep phases accounting the coarse index reads
     * (lo+hi fp32 summary rows per chunk) and per-question score
     * writes. Values outside (0, 1] are fatal.
     */
    double routeChunkFraction = 1.0;
};

/** Per-phase traffic and compute volume. */
struct PhaseTraffic
{
    std::string name;
    double flops = 0.0;
    uint64_t accesses = 0;       ///< LLC lookups
    uint64_t hits = 0;           ///< LLC hits
    uint64_t demandMisses = 0;   ///< stalling off-chip line fetches
    uint64_t prefetchedLines = 0;///< streamed (non-stalling) fetches
    bool overlappable = false;   ///< memory overlaps compute
};

/** Aggregated result of one dataflow replay. */
struct TrafficResult
{
    Dataflow dataflow = Dataflow::Baseline;
    WorkloadParams params;
    std::vector<PhaseTraffic> phases;
    /**
     * DRAM lines (demand misses + prefetched) fetched from the
     * M_IN/M_OUT regions, attributed to the shard owning the touched
     * row. Always has max(1, effective shards) entries — one entry
     * holding the whole KB traffic when unsharded — and its sum is
     * exactly the KB's share of dramLines(), so per-shard bandwidth
     * budgeting (one serving worker streams one shard) reads straight
     * off this vector.
     */
    std::vector<uint64_t> shardKbLines;

    uint64_t demandMisses() const;
    uint64_t prefetchedLines() const;
    uint64_t dramLines() const; ///< demand + prefetched
    uint64_t kbDramLines() const; ///< sum of shardKbLines
    uint64_t accesses() const;
    double flops() const;
};

/**
 * Replay `df`'s access stream through a fresh cache of geometry
 * `llc` and return the per-phase traffic.
 */
TrafficResult simulateDataflow(Dataflow df, const WorkloadParams &params,
                               const CacheConfig &llc);

} // namespace mnnfast::sim

#endif // MNNFAST_SIM_TRAFFIC_HH
