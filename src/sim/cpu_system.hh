/**
 * @file
 * Analytic multicore timing model.
 *
 * Converts a dataflow's per-phase traffic (from sim/traffic.hh) into
 * execution time for a given thread count and DRAM channel count.
 * This is the model behind the paper's thread-scalability studies
 * (Figs. 3, 9b, 10): per phase,
 *
 *   compute(T)   = flops / (flopsPerCycle * T)
 *   stall(T)     = demandMisses * latency / mlp / T
 *   bw           = demandBytes / (aggBW * demandEff)
 *                + prefetchBytes / aggBW
 *   time(T)      = max(compute(T) + stall(T), bw)        (blocking)
 *   time(T)      = max(compute(T), bw)                   (streamed)
 *
 * The bandwidth term is a floor shared by all threads: adding threads
 * divides compute and stall but not bandwidth, which is exactly the
 * saturation behaviour the paper demonstrates. Demand misses achieve
 * only `demandBandwidthEff` of peak bandwidth (latency-limited random
 * access), while streamed prefetches run at peak — the mechanism by
 * which streaming "reaches the ideal speedup" (Fig. 10b/c).
 */

#ifndef MNNFAST_SIM_CPU_SYSTEM_HH
#define MNNFAST_SIM_CPU_SYSTEM_HH

#include "sim/dram_model.hh"
#include "sim/traffic.hh"

namespace mnnfast::sim {

/** Core and memory-system parameters (defaults: Xeon E5-2650 v4). */
struct CpuSystemConfig
{
    /** Peak single-core FP32 throughput (AVX2 FMA), flops/cycle. */
    double flopsPerCycle = 32.0;
    /** Unloaded DRAM access latency in core cycles. */
    double memLatencyCycles = 220.0;
    /** Sustainable outstanding misses per core (incl. HW prefetch). */
    double mlp = 16.0;
    /** Fraction of peak DRAM bandwidth achieved by demand misses. */
    double demandBandwidthEff = 0.5;
    /** DRAM geometry (channels are the experiment variable). */
    DramConfig dram;
    /**
     * Scale-out interconnect (paper Section 3.1: the column algorithm
     * merges per-node partial results of O(ed), so multi-node scaling
     * is near-linear). Bytes per core-cycle (~10 GbE at 2.4 GHz) and
     * a fixed per-merge latency.
     */
    double interconnectBytesPerCycle = 0.5;
    double interconnectLatencyCycles = 5000.0;
};

/** See file header. */
class CpuSystemModel
{
  public:
    explicit CpuSystemModel(const CpuSystemConfig &cfg);

    /** Cycles one phase takes with `threads` worker threads. */
    double phaseCycles(const PhaseTraffic &phase, size_t threads) const;

    /** Cycles for all phases of a dataflow replay, in order. */
    double executionCycles(const TrafficResult &traffic,
                           size_t threads) const;

    /**
     * Speedup of `threads` threads over one thread for the same
     * traffic (the y-axis of Figs. 3 and 10).
     */
    double speedup(const TrafficResult &traffic, size_t threads) const;

    /** Result of a multi-node scale-out projection. */
    struct ScaleOutResult
    {
        double cycles = 0.0;      ///< makespan incl. the final merge
        double mergeCycles = 0.0; ///< interconnect part of the above
        double mergeBytes = 0.0;  ///< partial (o, psum) traffic
    };

    /**
     * Scale-out projection for the column dataflow (paper Section
     * 3.1): the knowledge base is partitioned over `nodes`, each node
     * runs `threads` threads on its own memory system (this model's
     * DRAM config), and the per-node partial output vectors and
     * partial sums (O(nq x ed) each) are merged over the
     * interconnect. The baseline dataflow cannot be split this way
     * (its layers synchronize on O(ns) intermediates), which is
     * exactly the paper's argument.
     *
     * @param df     Column-family dataflow (fatal on Baseline).
     * @param wp     Whole-problem workload; ns is divided by nodes.
     * @param llc    Per-node LLC geometry.
     */
    ScaleOutResult scaleOut(Dataflow df, const WorkloadParams &wp,
                            const CacheConfig &llc, size_t nodes,
                            size_t threads) const;

    const CpuSystemConfig &config() const { return cfg; }

  private:
    CpuSystemConfig cfg;
};

} // namespace mnnfast::sim

#endif // MNNFAST_SIM_CPU_SYSTEM_HH
