#include "sim/dram_model.hh"

#include "util/logging.hh"

namespace mnnfast::sim {

DramModel::DramModel(const DramConfig &cfg)
    : cfg(cfg), per_channel(cfg.channels)
{
    if (cfg.channels == 0)
        fatal("DRAM model needs at least one channel");
    if (cfg.lineBytes == 0)
        fatal("DRAM line size must be nonzero");
}

size_t
DramModel::recordAccess(uint64_t addr)
{
    const uint64_t line = addr / cfg.lineBytes;
    const size_t ch = static_cast<size_t>(line % cfg.channels);
    per_channel[ch].add();
    return ch;
}

uint64_t
DramModel::totalLines() const
{
    uint64_t total = 0;
    for (const auto &c : per_channel)
        total += c.value();
    return total;
}

uint64_t
DramModel::channelLines(size_t ch) const
{
    mnn_assert(ch < per_channel.size(), "channel index out of range");
    return per_channel[ch].value();
}

double
DramModel::transferCycles(uint64_t lines) const
{
    const double bytes =
        static_cast<double>(lines) * static_cast<double>(cfg.lineBytes);
    return bytes / aggregateBandwidth();
}

void
DramModel::resetStats()
{
    for (auto &c : per_channel)
        c.reset();
}

} // namespace mnnfast::sim
