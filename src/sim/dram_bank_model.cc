#include "sim/dram_bank_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mnnfast::sim {

DramBankModel::DramBankModel(const DramConfig &dram,
                             const DramBankConfig &banks)
    : dram(dram), banks(banks)
{
    if (banks.banksPerChannel == 0)
        fatal("need at least one bank per channel");
    if (banks.rowBytes < dram.lineBytes)
        fatal("row size must be at least one line");
}

DramStreamStats
DramBankModel::replay(const std::vector<uint64_t> &addrs)
{
    const size_t n_channels = dram.channels;
    const size_t n_banks = banks.banksPerChannel;
    const double bus_cycles =
        static_cast<double>(dram.lineBytes)
        / dram.bytesPerCyclePerChannel;

    std::vector<double> channel_bus_free(n_channels, 0.0);
    std::vector<BankState> bank_state(n_channels * n_banks);

    DramStreamStats stats;
    double last_done = 0.0;

    // Address mapping: [row | bank | column | channel] — lines
    // interleave across channels, a row's columns stay together in
    // one bank, and consecutive rows rotate across banks so long
    // streams pipeline activations.
    const uint64_t lines_per_row =
        std::max<uint64_t>(1, banks.rowBytes / dram.lineBytes);

    for (uint64_t addr : addrs) {
        const uint64_t line = addr / dram.lineBytes;
        const size_t ch = static_cast<size_t>(line % n_channels);
        const uint64_t ch_line = line / n_channels;
        const uint64_t row = ch_line / lines_per_row;
        // Permutation-based bank interleaving (real controllers hash
        // row bits into the bank index) so power-of-two strides and
        // lockstep streams do not alias onto one bank. Murmur-style
        // finalizer: fully mixes all row bits.
        uint64_t h = row;
        h ^= h >> 33;
        h *= 0xFF51AFD7ED558CCDull;
        h ^= h >> 33;
        const size_t bank = static_cast<size_t>(h % n_banks);

        BankState &b = bank_state[ch * n_banks + bank];
        // Bank occupancy: a row hit streams at burst rate (the CAS
        // latency pipelines away); misses/conflicts occupy the bank
        // for the activate(/precharge) window.
        double access_cycles;
        if (b.anyOpen && b.openRow == row) {
            access_cycles = bus_cycles;
            ++stats.rowHits;
        } else if (!b.anyOpen) {
            access_cycles = banks.tRowMiss;
            ++stats.rowMisses;
        } else {
            access_cycles = banks.tRowConflict;
            ++stats.rowConflicts;
        }

        const double ready =
            std::max(channel_bus_free[ch], b.freeAt);
        const double bus_done = ready + bus_cycles;
        const double bank_done = ready + access_cycles;
        const double done = std::max(bus_done, bank_done);

        channel_bus_free[ch] = bus_done;
        b.freeAt = bank_done;
        b.openRow = row;
        b.anyOpen = true;

        last_done = std::max(last_done, done);
        ++stats.lines;
    }

    stats.cycles = last_done;
    if (last_done > 0.0) {
        stats.bytesPerCycle =
            static_cast<double>(stats.lines)
            * static_cast<double>(dram.lineBytes) / last_done;
        const double peak = dram.bytesPerCyclePerChannel
                          * static_cast<double>(n_channels);
        stats.efficiency = stats.bytesPerCycle / peak;
    }
    return stats;
}

} // namespace mnnfast::sim
