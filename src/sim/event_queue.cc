#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace mnnfast::sim {

void
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    mnn_assert(fn != nullptr, "null event scheduled");
    mnn_assert(when >= current, "event scheduled in the past");
    events.push({when, next_seq++, std::move(fn)});
}

void
EventQueue::scheduleIn(Tick delta, std::function<void()> fn)
{
    schedule(current + delta, std::move(fn));
}

Tick
EventQueue::run()
{
    while (!events.empty()) {
        // Copy out before pop: the callback may schedule new events.
        Entry e = events.top();
        events.pop();
        current = e.when;
        e.fn();
    }
    return current;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!events.empty() && events.top().when <= limit) {
        Entry e = events.top();
        events.pop();
        current = e.when;
        e.fn();
    }
    return current;
}

} // namespace mnnfast::sim
