/**
 * @file
 * Shared-cache contention study (paper Section 2.2.3, Fig. 4).
 *
 * Models the multi-tenant setting where compute-intensive inference
 * threads (whose chunk temporaries must stay cache-resident) co-run
 * with memory-intensive embedding threads (whose Zipf-distributed
 * lookups walk a table far larger than the LLC and pollute it).
 * The simulator interleaves both access streams into one shared
 * CacheModel and reports the inference threads' hit rate and the
 * resulting slowdown versus running alone.
 *
 * It also models the two isolation remedies the paper discusses:
 *  - cache bypassing: embedding accesses use non-allocating loads
 *    (no pollution, but every embedding access pays DRAM latency);
 *  - embedding cache: embedding accesses are served by a dedicated
 *    cache (src/fpga/embedding_cache.hh) and never touch the LLC.
 */

#ifndef MNNFAST_SIM_CONTENTION_HH
#define MNNFAST_SIM_CONTENTION_HH

#include <cstdint>

#include "sim/cache_model.hh"

namespace mnnfast::sim {

/** How embedding traffic interacts with the shared LLC. */
enum class EmbeddingPolicy {
    /** Embedding lookups allocate in the shared LLC (the problem). */
    Shared,
    /** Non-temporal loads: no allocation on miss (cache bypassing). */
    Bypass,
    /** A dedicated embedding cache absorbs the traffic. */
    Dedicated,
};

/** Parameters of one contention experiment. */
struct ContentionParams
{
    /** Inference working set (chunk temporaries etc.), bytes. */
    size_t inferenceWorkingSet = 6ull << 20;
    /** Embedding matrix footprint, bytes (must dwarf the LLC). */
    size_t embeddingTableBytes = 512ull << 20;
    /** Bytes per embedding-row lookup (ed * 4). */
    size_t embeddingRowBytes = 48 * 4;
    /** Zipf exponent of the word-usage distribution. */
    double zipfS = 1.0;
    /** Number of co-running embedding threads. */
    size_t embeddingThreads = 1;
    /**
     * Embedding lookups issued per inference working-set line, per
     * embedding thread (relative issue rate).
     */
    double embeddingRate = 0.05;
    /** Shared LLC geometry. */
    CacheConfig llc;
    /** Rounds of interleaved execution measured (after warmup). */
    size_t rounds = 24;
    EmbeddingPolicy policy = EmbeddingPolicy::Shared;
    uint64_t seed = 42;
};

/** Outcome of one contention experiment. */
struct ContentionResult
{
    double inferenceHitRate = 0.0;
    double embeddingHitRate = 0.0;
    /**
     * Inference cycles per round: fixed compute per touched line plus
     * an exposed miss penalty (see contention.cc for the constants).
     */
    double inferenceCyclesPerRound = 0.0;
    /**
     * Slowdown relative to the same inference stream running alone
     * on the same LLC (>= 1.0).
     */
    double slowdown = 0.0;
};

/** Run the interleaved contention simulation. */
ContentionResult simulateContention(const ContentionParams &params);

} // namespace mnnfast::sim

#endif // MNNFAST_SIM_CONTENTION_HH
