/**
 * @file
 * A minimal discrete-event simulation kernel (gem5-style tick/event
 * model): the substrate under the GPU stream simulator and available
 * to any component that needs ordered time-based callbacks.
 */

#ifndef MNNFAST_SIM_EVENT_QUEUE_HH
#define MNNFAST_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mnnfast::sim {

/** Simulation time in abstract ticks. */
using Tick = uint64_t;

/**
 * Priority queue of (tick, callback) events. Events at the same tick
 * fire in scheduling order (FIFO), which makes simulations
 * deterministic.
 */
class EventQueue
{
  public:
    /** Schedule `fn` to run at absolute tick `when` (>= now()). */
    void schedule(Tick when, std::function<void()> fn);

    /** Schedule `fn` to run `delta` ticks after now(). */
    void scheduleIn(Tick delta, std::function<void()> fn);

    /** Current simulation time. */
    Tick now() const { return current; }

    /** True if no events remain. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    size_t pending() const { return events.size(); }

    /** Run until the queue drains; returns the final tick. */
    Tick run();

    /**
     * Run events with tick <= limit; returns the tick of the last
     * event executed (or now() if none ran). Pending later events
     * remain queued.
     */
    Tick runUntil(Tick limit);

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> events;
    Tick current = 0;
    uint64_t next_seq = 0;
};

} // namespace mnnfast::sim

#endif // MNNFAST_SIM_EVENT_QUEUE_HH
