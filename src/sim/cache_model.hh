/**
 * @file
 * A functional set-associative cache model with LRU replacement.
 *
 * Used as the shared last-level cache in the CPU memory-system studies
 * (paper Figs. 3, 4, 10, 11): the traffic generators replay each
 * dataflow's access stream through this model and the resulting miss
 * counts feed the bandwidth/timing model.
 */

#ifndef MNNFAST_SIM_CACHE_MODEL_HH
#define MNNFAST_SIM_CACHE_MODEL_HH

#include <cstdint>
#include <vector>

#include "stats/counter.hh"

namespace mnnfast::sim {

/** Geometry of a CacheModel. */
struct CacheConfig
{
    size_t sizeBytes = 8ull << 20;
    size_t associativity = 16;
    size_t lineBytes = 64;
};

/** Set-associative, write-allocate, LRU cache. */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig &cfg);

    /**
     * Access one byte address (the whole line is affected).
     *
     * @param addr     Byte address.
     * @param is_write Marks the line dirty on hit/fill.
     * @return true on hit, false on miss (the line is filled).
     */
    bool access(uint64_t addr, bool is_write = false);

    /**
     * Access without allocating on miss (non-temporal / cache
     * bypassing, as with the paper's cache-bypass alternative to the
     * embedding cache). Hits still refresh LRU.
     */
    bool accessNoAllocate(uint64_t addr, bool is_write = false);

    /** True if the line holding `addr` is resident (no LRU update). */
    bool probe(uint64_t addr) const;

    /** Invalidate everything. */
    void flush();

    /** Counters: "hits", "misses", "evictions", "writebacks". */
    const stats::CounterGroup &counters() const { return stats_; }
    stats::CounterGroup &counters() { return stats_; }

    uint64_t hits() const { return stats_.value("hits"); }
    uint64_t misses() const { return stats_.value("misses"); }

    size_t sets() const { return n_sets; }
    size_t lineBytes() const { return cfg.lineBytes; }

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    /** Find the way holding `tag` in `set`, or nullptr. */
    Way *findWay(size_t set, uint64_t tag);
    const Way *findWay(size_t set, uint64_t tag) const;

    CacheConfig cfg;
    size_t n_sets;
    std::vector<Way> ways; ///< n_sets x associativity, row-major
    uint64_t use_clock = 0;
    stats::CounterGroup stats_;
};

} // namespace mnnfast::sim

#endif // MNNFAST_SIM_CACHE_MODEL_HH
