/**
 * @file
 * The top-level MnnFast system facade: the public API a downstream
 * question-answering service uses.
 *
 * A MnnFastSystem owns the embedding tables, the per-hop knowledge
 * bases, the output projection, and the configured inference engines.
 * The typical lifecycle is:
 *
 *   auto system = MnnFastSystem::fromTrained(model, cfg);   // weights
 *   system.addStorySentence(sentence);                      // x ns
 *   data::WordId answer = system.ask(question);             // x nq
 *
 * fromTrained() imports the weights of a train::MemNnModel, so the
 * facade's predictions are bit-for-bit comparable with the trainer's
 * forward pass (tests/integration_test.cc asserts agreement).
 */

#ifndef MNNFAST_CORE_MNNFAST_HH
#define MNNFAST_CORE_MNNFAST_HH

#include <memory>
#include <vector>

#include "core/baseline_engine.hh"
#include "core/column_engine.hh"
#include "core/config.hh"
#include "core/embedder.hh"
#include "core/embedding_table.hh"
#include "core/engine.hh"
#include "core/knowledge_base.hh"
#include "data/babi.hh"

namespace mnnfast::train { class MemNnModel; }

namespace mnnfast::core {

/** Construction parameters for a MnnFastSystem. */
struct SystemConfig
{
    size_t vocabSize = 0;
    size_t embeddingDim = 32;
    size_t hops = 1;
    /** Which dataflow answers questions. */
    EngineKind engine = EngineKind::MnnFast;
    EngineConfig engineConfig;
    /**
     * Storage precision of every hop's knowledge base. BF16 halves
     * memory footprint and bandwidth; engines pick the fused
     * dequantizing kernels automatically. F32 remains the bit-exact
     * reference.
     */
    Precision kbPrecision = Precision::F32;
    /**
     * Temporal embeddings imported from the trained model are added
     * to memory rows at story position i (capped at maxStory-1).
     */
    size_t maxStory = 64;
    /**
     * Position-encoded BoW embedding (must match the trained model's
     * ModelConfig::positionEncoding; fromTrained copies it).
     */
    bool positionEncoding = false;
};

/** See file header. */
class MnnFastSystem
{
  public:
    /** Build with randomly initialized weights (demo / bench use). */
    MnnFastSystem(const SystemConfig &cfg, uint64_t seed);

    /** Build from a trained model's weights (hops and dims copied). */
    static MnnFastSystem fromTrained(const train::MemNnModel &model,
                                     EngineKind engine,
                                     const EngineConfig &engine_cfg);

    /** Embed and append one story sentence to every hop's memory. */
    void addStorySentence(const data::Sentence &sentence);

    /** Discard the current story (knowledge bases emptied). */
    void clearStory();

    /** Number of stored story sentences. */
    size_t storySize() const;

    /**
     * Answer a question over the current story: embeds the question,
     * runs all hops through the configured engine, projects through W,
     * and returns the arg-max vocabulary word.
     */
    data::WordId ask(const data::Sentence &question);

    /**
     * Batch variant: answers[i] corresponds to questions[i]. All
     * questions share the current story; hops run engine batches.
     */
    std::vector<data::WordId>
    askBatch(const std::vector<data::Sentence> &questions);

    /** One attended story sentence with its probability. */
    struct Attribution
    {
        size_t sentence;  ///< story index
        float probability;
    };

    /**
     * Explain a would-be answer: the top-k story sentences by hop-0
     * attention probability, descending. For a trained model these
     * are the supporting facts the network reasons from (the
     * sparsity of this distribution is what zero-skipping exploits,
     * paper Fig. 6).
     */
    std::vector<Attribution> explain(const data::Sentence &question,
                                     size_t top_k = 3);

    /**
     * The response computation only (u -> o for hop 0), exposed for
     * benchmarking engines on raw state vectors.
     */
    InferenceEngine &engine(size_t hop = 0);

    /** Aggregate per-operator latency across hops. */
    OpBreakdown totalBreakdown() const;

    const SystemConfig &config() const { return cfg; }
    const EmbeddingTable &questionTable() const { return bTable; }

  private:
    /** Create engines for all hops (called once KBs exist). */
    void buildEngines();

    SystemConfig cfg;

    EmbeddingTable bTable;                 ///< question embedding (B)
    std::vector<EmbeddingTable> aTables;   ///< per-hop A
    std::vector<EmbeddingTable> cTables;   ///< per-hop C
    std::vector<float> wMatrix;            ///< (V x ed) output projection
    /** Per-hop temporal embeddings (maxStory x ed), possibly zero. */
    std::vector<std::vector<float>> taRows;
    std::vector<std::vector<float>> tcRows;

    std::vector<KnowledgeBase> kbs;        ///< one per hop
    std::vector<std::unique_ptr<InferenceEngine>> engines;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_MNNFAST_HH
