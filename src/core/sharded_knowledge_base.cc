#include "core/sharded_knowledge_base.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mnnfast::core {

ShardedKnowledgeBase::ShardedKnowledgeBase(const KnowledgeBase &kb,
                                           size_t chunk_size,
                                           size_t shards)
    : kb(kb), chunk(chunk_size)
{
    if (chunk == 0)
        fatal("sharded knowledge base needs a nonzero chunk size");
    if (shards == 0)
        fatal("sharded knowledge base needs at least one shard");
    if (kb.size() == 0)
        fatal("cannot shard an empty knowledge base");

    const size_t ns = kb.size();
    chunk = std::min(chunk, ns);
    const size_t n_chunks = (ns + chunk - 1) / chunk;

    // The same decomposition ColumnEngine::chunkGroups uses for
    // scheduleGroups = shards: contiguous, near-equal in chunks,
    // never empty. Scaling group boundaries by the chunk size keeps
    // every shard boundary chunk-aligned (the last shard absorbs the
    // trailing partial chunk).
    const auto groups =
        runtime::splitRange(n_chunks, std::min(shards, n_chunks));
    rowRanges.reserve(groups.size());
    views.reserve(groups.size());
    for (const runtime::Range &g : groups) {
        const runtime::Range r{g.begin * chunk,
                               std::min(ns, g.end * chunk)};
        rowRanges.push_back(r);
        views.push_back(kb.view(r.begin, r.end));
    }
}

const KnowledgeBase &
ShardedKnowledgeBase::shard(size_t s) const
{
    mnn_assert(s < views.size(), "shard index out of range");
    return views[s];
}

runtime::Range
ShardedKnowledgeBase::rows(size_t s) const
{
    mnn_assert(s < rowRanges.size(), "shard index out of range");
    return rowRanges[s];
}

} // namespace mnnfast::core
