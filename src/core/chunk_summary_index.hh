/**
 * @file
 * Coarse chunk summaries for routed (sublinear) KB attention: one
 * per-dimension [lo, hi] envelope plus a centroid per engine chunk of
 * M_IN. The envelope yields a cheap max-inner-product upper bound —
 * for any query x and any row m in the chunk,
 *
 *     x . m  <=  sum_d max(x_d*hi_d, x_d*lo_d)
 *
 * (each term picks the larger endpoint contribution, and m_d lies in
 * [lo_d, hi_d]) — which blas::chunkBoundBatch evaluates for a batch
 * of queries against all chunk summaries. The column engine scores
 * chunks with this bound and streams only the selected candidates
 * (EngineConfig::routePolicy). See DESIGN.md §11.
 */

#ifndef MNNFAST_CORE_CHUNK_SUMMARY_INDEX_HH
#define MNNFAST_CORE_CHUNK_SUMMARY_INDEX_HH

#include <cstddef>
#include <vector>

#include "core/knowledge_base.hh"

namespace mnnfast::core {

/**
 * Immutable summary of a KnowledgeBase's M_IN rows at a fixed chunk
 * grid: for each chunk of `chunk_rows` consecutive rows (the last
 * chunk may be short), the per-dimension min (`lo`), max (`hi`) and
 * mean (`centroid`) of the rows as the fused kernels would stream
 * them:
 *
 *  - F32 rows are read exactly.
 *  - BF16 rows are decoded bf16 -> fp32 first (the envelope bounds
 *    the decoded values the bf16 kernels actually dot against).
 *  - I8 rows never touch fp32 row decode: per quantization group
 *    (KnowledgeBase::i8GroupEnd) the int8 extremes/sum per dimension
 *    are found first and mapped through the group's affine code
 *    (scale >= 0 always, so the int8 order is the dequantized order).
 *    One group costs an int8 scan plus ed affine maps — the
 *    scale/zero shortcut makes the I8 build the cheapest of the
 *    three.
 *
 * The index is a snapshot: it records the KB size it was built from
 * (`rows()`), and callers rebuild when the KB has grown. Views are
 * supported — an index over KnowledgeBase::view() summarizes exactly
 * the windowed rows, so a shard's index at the same chunk grid equals
 * the matching slice of the parent's index (routing composes with
 * sharding bit-identically; see DESIGN.md §11).
 *
 * The bound is exact in real arithmetic; in float it is canonical
 * (blas::chunkBoundBatch's fixed accumulation order) but the streamed
 * dot uses a different summation order, so validity tests allow
 * rounding-level slack. Selection only gates which chunks stream —
 * it never alters the value computed for a streamed chunk — so
 * routing with k = all chunks is bit-identical to the unrouted
 * engine regardless of bound rounding.
 */
class ChunkSummaryIndex
{
  public:
    /**
     * Summarize `kb`'s M_IN rows on a `chunk_rows` grid (must be
     * nonzero; `kb` must be non-empty). O(ns * ed) build, single
     * pass over the stored rows.
     */
    ChunkSummaryIndex(const KnowledgeBase &kb, size_t chunk_rows);

    /** Number of summarized chunks: ceil(rows() / chunkRows()). */
    size_t chunks() const { return nChunks; }

    /** Rows per chunk of the summary grid (last chunk may be short). */
    size_t chunkRows() const { return chunk; }

    /** KB rows the index was built from (staleness check). */
    size_t rows() const { return nRows; }

    /** Embedding dimension. */
    size_t dim() const { return ed; }

    /** Per-dimension minima, chunk c (ed floats). */
    const float *lo(size_t c) const { return loV.data() + c * ed; }

    /** Per-dimension maxima, chunk c (ed floats). */
    const float *hi(size_t c) const { return hiV.data() + c * ed; }

    /** Per-dimension means, chunk c (ed floats). */
    const float *centroid(size_t c) const
    {
        return centroidV.data() + c * ed;
    }

    /** All minima, row-major (chunks() x ed) — kernel input. */
    const float *loData() const { return loV.data(); }

    /** All maxima, row-major (chunks() x ed) — kernel input. */
    const float *hiData() const { return hiV.data(); }

    /** Footprint of the three summary matrices, in bytes. */
    size_t bytes() const
    {
        return 3 * nChunks * ed * sizeof(float);
    }

  private:
    size_t ed;
    size_t chunk;
    size_t nChunks;
    size_t nRows;
    std::vector<float> loV;       ///< (nChunks x ed) per-dim minima
    std::vector<float> hiV;       ///< (nChunks x ed) per-dim maxima
    std::vector<float> centroidV; ///< (nChunks x ed) per-dim means
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_CHUNK_SUMMARY_INDEX_HH
