/**
 * @file
 * The embedding operation: convert a sentence into its internal state
 * vector by BoW lookup-and-sum over an EmbeddingTable.
 */

#ifndef MNNFAST_CORE_EMBEDDER_HH
#define MNNFAST_CORE_EMBEDDER_HH

#include <functional>

#include "core/embedding_table.hh"
#include "data/babi.hh"
#include "stats/counter.hh"

namespace mnnfast::core {

/**
 * Embeds sentences with a given table. Counts lookups so benches can
 * report embedding traffic, and optionally reports every looked-up
 * word id to an observer — the hook the simulators (shared-cache
 * contention, embedding cache) use to see the real access stream.
 */
class Embedder
{
  public:
    /** Observer invoked with each looked-up word id. */
    using LookupObserver = std::function<void(data::WordId)>;

    /**
     * @param table             Embedding matrix to look rows up in.
     * @param position_encoding Weight each word's row by its position
     *                          (Sukhbaatar eq. 4; paper footnote 1)
     *                          instead of plain BoW summation.
     */
    explicit Embedder(const EmbeddingTable &table,
                      bool position_encoding = false)
        : table(table), positionEncoding(position_encoding)
    {}

    /**
     * Embed `sentence` into out[ed] as the sum of its words' rows.
     * Duplicated words contribute once per occurrence (BoW keeps
     * multiplicity).
     */
    void embed(const data::Sentence &sentence, float *out);

    /** Set (or clear, with nullptr) the lookup observer. */
    void setObserver(LookupObserver obs) { observer = std::move(obs); }

    /** Number of embedding-row lookups performed so far. */
    uint64_t lookups() const { return lookupCount.value(); }

    const EmbeddingTable &embeddingTable() const { return table; }

  private:
    const EmbeddingTable &table;
    bool positionEncoding;
    LookupObserver observer;
    stats::Counter lookupCount;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_EMBEDDER_HH
