#include "core/mnnfast.hh"

#include <algorithm>

#include "blas/kernels.hh"
#include "train/model.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace mnnfast::core {

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Baseline: return "baseline";
      case EngineKind::Column: return "column";
      case EngineKind::ColumnStreaming: return "column+streaming";
      case EngineKind::MnnFast: return "mnnfast";
    }
    panic("unknown EngineKind %d", static_cast<int>(kind));
}

const char *
routePolicyName(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::None: return "none";
      case RoutePolicy::TopK: return "topk";
      case RoutePolicy::BoundThreshold: return "bound-threshold";
    }
    panic("unknown RoutePolicy %d", static_cast<int>(policy));
}

namespace {

std::unique_ptr<InferenceEngine>
makeEngine(EngineKind kind, const KnowledgeBase &kb,
           EngineConfig cfg)
{
    switch (kind) {
      case EngineKind::Baseline:
        return std::make_unique<BaselineEngine>(kb, cfg);
      case EngineKind::Column:
        cfg.streaming = false;
        cfg.skipThreshold = 0.f;
        return std::make_unique<ColumnEngine>(kb, cfg);
      case EngineKind::ColumnStreaming:
        cfg.streaming = true;
        cfg.skipThreshold = 0.f;
        return std::make_unique<ColumnEngine>(kb, cfg);
      case EngineKind::MnnFast:
        cfg.streaming = true;
        if (cfg.skipThreshold <= 0.f)
            cfg.skipThreshold = 0.1f;
        return std::make_unique<ColumnEngine>(kb, cfg);
    }
    panic("unknown EngineKind %d", static_cast<int>(kind));
}

} // namespace

MnnFastSystem::MnnFastSystem(const SystemConfig &cfg, uint64_t seed)
    : cfg(cfg), bTable(cfg.vocabSize, cfg.embeddingDim),
      wMatrix(cfg.vocabSize * cfg.embeddingDim, 0.f)
{
    if (cfg.hops == 0)
        fatal("MnnFastSystem needs at least one hop");

    bTable.randomInit(seed);
    XorShiftRng rng(seed + 1);
    for (float &x : wMatrix)
        x = rng.uniformRange(-0.1f, 0.1f);

    for (size_t h = 0; h < cfg.hops; ++h) {
        aTables.emplace_back(cfg.vocabSize, cfg.embeddingDim);
        cTables.emplace_back(cfg.vocabSize, cfg.embeddingDim);
        aTables.back().randomInit(seed + 2 + 2 * h);
        cTables.back().randomInit(seed + 3 + 2 * h);
        taRows.emplace_back(cfg.maxStory * cfg.embeddingDim, 0.f);
        tcRows.emplace_back(cfg.maxStory * cfg.embeddingDim, 0.f);
        kbs.emplace_back(cfg.embeddingDim, cfg.kbPrecision);
    }
    buildEngines();
}

MnnFastSystem
MnnFastSystem::fromTrained(const train::MemNnModel &model,
                           EngineKind engine,
                           const EngineConfig &engine_cfg)
{
    const auto &mc = model.config();
    SystemConfig cfg;
    cfg.vocabSize = mc.vocabSize;
    cfg.embeddingDim = mc.embeddingDim;
    cfg.hops = mc.hops;
    cfg.maxStory = mc.maxStory;
    cfg.positionEncoding = mc.positionEncoding;
    cfg.engine = engine;
    cfg.engineConfig = engine_cfg;

    MnnFastSystem system(cfg, /*seed=*/1);
    const train::ParamSet &p = model.parameters();
    system.bTable.loadFrom(p.b);
    system.wMatrix = p.w;
    for (size_t h = 0; h < cfg.hops; ++h) {
        system.aTables[h].loadFrom(p.a[h]);
        system.cTables[h].loadFrom(p.c[h]);
        system.taRows[h] = p.ta[h];
        system.tcRows[h] = p.tc[h];
    }
    return system;
}

void
MnnFastSystem::buildEngines()
{
    engines.clear();
    for (size_t h = 0; h < cfg.hops; ++h)
        engines.push_back(makeEngine(cfg.engine, kbs[h],
                                     cfg.engineConfig));
}

void
MnnFastSystem::addStorySentence(const data::Sentence &sentence)
{
    const size_t ed = cfg.embeddingDim;
    std::vector<float> min_row(ed), mout_row(ed);

    for (size_t h = 0; h < cfg.hops; ++h) {
        Embedder a_embed(aTables[h], cfg.positionEncoding);
        Embedder c_embed(cTables[h], cfg.positionEncoding);
        a_embed.embed(sentence, min_row.data());
        c_embed.embed(sentence, mout_row.data());

        // Temporal position: the index this sentence will occupy.
        const size_t pos = std::min(kbs[h].size(), cfg.maxStory - 1);
        blas::axpy(1.0f, taRows[h].data() + pos * ed, min_row.data(),
                   ed);
        blas::axpy(1.0f, tcRows[h].data() + pos * ed, mout_row.data(),
                   ed);

        kbs[h].addSentence(min_row.data(), mout_row.data());
    }
}

void
MnnFastSystem::clearStory()
{
    for (auto &kb : kbs)
        kb.clear();
}

size_t
MnnFastSystem::storySize() const
{
    return kbs.empty() ? 0 : kbs[0].size();
}

data::WordId
MnnFastSystem::ask(const data::Sentence &question)
{
    return askBatch({question})[0];
}

std::vector<data::WordId>
MnnFastSystem::askBatch(const std::vector<data::Sentence> &questions)
{
    const size_t ed = cfg.embeddingDim;
    const size_t nq = questions.size();
    mnn_assert(storySize() > 0, "ask() before any story was added");

    // Embed all questions into the batch state matrix U. The embedder
    // is constructed per call because the table member may relocate
    // when the system object itself is moved.
    Embedder question_embedder(bTable, cfg.positionEncoding);
    std::vector<float> u(nq * ed);
    for (size_t q = 0; q < nq; ++q)
        question_embedder.embed(questions[q], u.data() + q * ed);

    // Hops: u <- u + engine_h(u).
    std::vector<float> o(nq * ed);
    for (size_t h = 0; h < cfg.hops; ++h) {
        engines[h]->inferBatch(u.data(), nq, o.data());
        blas::axpy(1.0f, o.data(), u.data(), nq * ed);
    }

    // Output calculation: logits = W u, arg-max per question.
    std::vector<data::WordId> answers(nq);
    std::vector<float> logits(cfg.vocabSize);
    for (size_t q = 0; q < nq; ++q) {
        blas::gemv(wMatrix.data(), cfg.vocabSize, ed, u.data() + q * ed,
                   logits.data());
        size_t best = 0;
        for (size_t v = 1; v < cfg.vocabSize; ++v)
            if (logits[v] > logits[best])
                best = v;
        answers[q] = static_cast<data::WordId>(best);
    }
    return answers;
}

std::vector<MnnFastSystem::Attribution>
MnnFastSystem::explain(const data::Sentence &question, size_t top_k)
{
    const size_t ed = cfg.embeddingDim;
    const size_t ns = storySize();
    mnn_assert(ns > 0, "explain() before any story was added");

    Embedder question_embedder(bTable, cfg.positionEncoding);
    std::vector<float> u(ed);
    question_embedder.embed(question, u.data());

    // Exact hop-0 attention (stable softmax).
    std::vector<float> p(ns);
    switch (kbs[0].precision()) {
      case Precision::F32:
        blas::gemv(kbs[0].minData(), ns, ed, u.data(), p.data());
        break;
      case Precision::BF16:
        blas::dotBatchMultiBf16(u.data(), 1, ed, kbs[0].minData16(), ns,
                                ed, ed, p.data(), ns);
        break;
      case Precision::I8:
        // One call per quantization group, as in the engines.
        for (size_t g0 = 0; g0 < ns;) {
            const size_t g1 = kbs[0].i8GroupEnd(g0);
            blas::dotBatchMultiI8(u.data(), 1, ed,
                                  kbs[0].minData8() + g0 * ed, g1 - g0,
                                  ed, ed, kbs[0].minScale(g0),
                                  kbs[0].minZero(g0), p.data() + g0, ns);
            g0 = g1;
        }
        break;
    }
    blas::softmax(p.data(), ns);

    std::vector<Attribution> all(ns);
    for (size_t i = 0; i < ns; ++i)
        all[i] = {i, p[i]};
    const size_t k = std::min(top_k, ns);
    std::partial_sort(all.begin(), all.begin() + k, all.end(),
                      [](const Attribution &a, const Attribution &b) {
                          return a.probability > b.probability;
                      });
    all.resize(k);
    return all;
}

InferenceEngine &
MnnFastSystem::engine(size_t hop)
{
    mnn_assert(hop < engines.size(), "hop index out of range");
    return *engines[hop];
}

OpBreakdown
MnnFastSystem::totalBreakdown() const
{
    OpBreakdown sum;
    for (const auto &e : engines) {
        sum.innerProduct += e->breakdown().innerProduct;
        sum.softmax += e->breakdown().softmax;
        sum.weightedSum += e->breakdown().weightedSum;
        sum.other += e->breakdown().other;
    }
    return sum;
}

} // namespace mnnfast::core
