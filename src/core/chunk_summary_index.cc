#include "core/chunk_summary_index.hh"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/logging.hh"

namespace mnnfast::core {

namespace {

float
bf16ToFloat(uint16_t b)
{
    const uint32_t u = uint32_t(b) << 16;
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // namespace

ChunkSummaryIndex::ChunkSummaryIndex(const KnowledgeBase &kb,
                                     size_t chunk_rows)
    : ed(kb.dim()),
      chunk(chunk_rows),
      nChunks(0),
      nRows(kb.size())
{
    if (chunk_rows == 0)
        fatal("ChunkSummaryIndex: chunk_rows must be nonzero");
    if (nRows == 0)
        fatal("ChunkSummaryIndex: empty knowledge base");
    nChunks = (nRows + chunk - 1) / chunk;
    loV.resize(nChunks * ed);
    hiV.resize(nChunks * ed);
    centroidV.resize(nChunks * ed);

    for (size_t c = 0; c < nChunks; ++c) {
        const size_t c0 = c * chunk;
        const size_t c1 = std::min(c0 + chunk, nRows);
        float *lo = loV.data() + c * ed;
        float *hi = hiV.data() + c * ed;
        float *mean = centroidV.data() + c * ed;
        std::fill(lo, lo + ed, std::numeric_limits<float>::infinity());
        std::fill(hi, hi + ed,
                  -std::numeric_limits<float>::infinity());
        std::fill(mean, mean + ed, 0.f);

        switch (kb.precision()) {
        case Precision::F32:
            for (size_t r = c0; r < c1; ++r) {
                const float *row = kb.minRow(r);
                for (size_t d = 0; d < ed; ++d) {
                    lo[d] = std::min(lo[d], row[d]);
                    hi[d] = std::max(hi[d], row[d]);
                    mean[d] += row[d];
                }
            }
            break;
        case Precision::BF16:
            for (size_t r = c0; r < c1; ++r) {
                const uint16_t *row = kb.minRow16(r);
                for (size_t d = 0; d < ed; ++d) {
                    const float v = bf16ToFloat(row[d]);
                    lo[d] = std::min(lo[d], v);
                    hi[d] = std::max(hi[d], v);
                    mean[d] += v;
                }
            }
            break;
        case Precision::I8:
            // Per quantization group: int8 extremes and sums first,
            // then one affine map per dimension. scale >= 0 by
            // construction ((hi-lo)/255), so the int8 order is the
            // dequantized order and the extremes commute with the
            // map.
            for (size_t g0 = c0; g0 < c1;) {
                const size_t g1 = std::min(kb.i8GroupEnd(g0), c1);
                const float scale = kb.minScale(g0);
                const float zero = kb.minZero(g0);
                std::vector<int8_t> qlo(ed, int8_t(127));
                std::vector<int8_t> qhi(ed, int8_t(-128));
                std::vector<int32_t> qsum(ed, 0);
                for (size_t r = g0; r < g1; ++r) {
                    const int8_t *row = kb.minRow8(r);
                    for (size_t d = 0; d < ed; ++d) {
                        qlo[d] = std::min(qlo[d], row[d]);
                        qhi[d] = std::max(qhi[d], row[d]);
                        qsum[d] += row[d];
                    }
                }
                const float gn = float(g1 - g0);
                for (size_t d = 0; d < ed; ++d) {
                    lo[d] = std::min(lo[d],
                                     scale * float(qlo[d]) + zero);
                    hi[d] = std::max(hi[d],
                                     scale * float(qhi[d]) + zero);
                    mean[d] += scale * float(qsum[d]) + zero * gn;
                }
                g0 = g1;
            }
            break;
        }

        const float inv = 1.0f / float(c1 - c0);
        for (size_t d = 0; d < ed; ++d)
            mean[d] *= inv;
    }
}

} // namespace mnnfast::core
