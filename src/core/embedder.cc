#include "core/embedder.hh"

#include "blas/kernels.hh"
#include "blas/position.hh"

namespace mnnfast::core {

void
Embedder::embed(const data::Sentence &sentence, float *out)
{
    const size_t ed = table.dim();
    blas::zero(out, ed);
    for (size_t j = 0; j < sentence.size(); ++j) {
        const data::WordId w = sentence[j];
        lookupCount.add();
        if (observer)
            observer(w);
        if (positionEncoding) {
            blas::axpyPositionEncoded(table.row(w), out, j,
                                      sentence.size(), ed);
        } else {
            blas::axpy(1.0f, table.row(w), out, ed);
        }
    }
}

} // namespace mnnfast::core
