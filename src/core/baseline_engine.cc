#include "core/baseline_engine.hh"

#include <algorithm>
#include <cmath>

#include "blas/kernels.hh"
#include "runtime/kernel_tuner.hh"
#include "runtime/parallel_for.hh"
#include "util/logging.hh"

namespace mnnfast::core {

namespace {

/**
 * Rows per dynamically-claimed block in step 1. Small enough that the
 * cursor balances work, large enough that the batched dot kernel and
 * the atomic claim amortize.
 */
constexpr size_t kStep1Grain = 64;

} // namespace

BaselineEngine::BaselineEngine(const KnowledgeBase &kb,
                               const EngineConfig &cfg)
    : kb(kb), cfg(cfg), pool(cfg.threads)
{
    // Warm the process-wide tuning table like the column engine does:
    // the baseline consumes only the strip-rows pick (as its step-1
    // claim grain), but warming here keeps "construct any engine →
    // table is populated" uniform for serving workers and tests.
    if (kb.size() > 0 && this->cfg.stripRows == 0) {
        auto &tuner = runtime::KernelTuner::instance();
        const char *prec = precisionName(kb.precision());
        for (size_t nq : {size_t{1}, size_t{4}, size_t{16}})
            tuner.plan(prec, kb.dim(), nq);
    }
}

void
BaselineEngine::inferBatch(const float *u, size_t nq, float *o)
{
    const size_t ns = kb.size();
    const size_t ed = kb.dim();
    mnn_assert(ns > 0, "inference over an empty knowledge base");

    tin.resize(nq * ns);
    pexp.resize(nq * ns);
    p.resize(nq * ns);
    counterGroup["intermediate_bytes"].reset();
    counterGroup["intermediate_bytes"].add(3 * nq * ns * sizeof(float));

    PhaseTimer timer;

    // Step 1: inner product across M_IN rows. Each claimed row block
    // is one query-blocked dotBatchMulti call: the register tile
    // reuses every M_IN load across the question batch, writing the
    // block's T_IN column strip for all questions at once. Rows are
    // claimed dynamically: every element is computed independently,
    // so scheduling cannot change the result.
    // The tuned strip pick doubles as the dynamic claim grain when it
    // is larger than the fixed default (row blocks are independent,
    // so the grain never affects results). Config overrides win.
    const runtime::KernelPlan plan =
        cfg.stripRows > 0
            ? runtime::KernelPlan{std::max<size_t>(4,
                                                   cfg.stripRows / 4 * 4),
                                  0}
            : runtime::KernelTuner::instance().plan(
                  precisionName(kb.precision()), ed, nq);
    const size_t grain = std::max(kStep1Grain, plan.stripRows);

    timer.start();
    switch (kb.precision()) {
      case Precision::F32: {
        const float *min = kb.minData();
        runtime::parallelForDynamic(
            pool, ns, grain, [&](size_t, runtime::Range r) {
                blas::dotBatchMulti(u, nq, ed, min + r.begin * ed,
                                    r.size(), ed, ed,
                                    tin.data() + r.begin, ns);
            });
        break;
      }
      case Precision::BF16: {
        const uint16_t *min = kb.minData16();
        runtime::parallelForDynamic(
            pool, ns, grain, [&](size_t, runtime::Range r) {
                blas::dotBatchMultiBf16(u, nq, ed, min + r.begin * ed,
                                        r.size(), ed, ed,
                                        tin.data() + r.begin, ns);
            });
        break;
      }
      case Precision::I8: {
        // One kernel call per quantization group inside each claimed
        // block, so every call carries a single (scale, zero) pair.
        const int8_t *min = kb.minData8();
        runtime::parallelForDynamic(
            pool, ns, grain, [&](size_t, runtime::Range r) {
                for (size_t g0 = r.begin; g0 < r.end;) {
                    const size_t g1 = std::min(r.end, kb.i8GroupEnd(g0));
                    blas::dotBatchMultiI8(u, nq, ed, min + g0 * ed,
                                          g1 - g0, ed, ed,
                                          kb.minScale(g0), kb.minZero(g0),
                                          tin.data() + g0, ns);
                    g0 = g1;
                }
            });
        break;
      }
    }
    timer.stop();
    times.innerProduct += timer.seconds();
    counterGroup["flops_inner"].add(2ull * nq * ns * ed);

    // Step 2: softmax in the paper's three lock-step phases, each a
    // full pass over an nq x ns buffer.
    timer.clear();
    timer.start();
    for (size_t q = 0; q < nq; ++q) {
        float *t_row = tin.data() + q * ns;
        float *e_row = pexp.data() + q * ns;
        float *p_row = p.data() + q * ns;

        // Phase 2-1: elementwise exponential into P_exp (vectorized;
        // elementwise, so dynamic scheduling is result-neutral).
        runtime::parallelFor(pool, ns, [&](runtime::Range r) {
            std::copy(t_row + r.begin, t_row + r.end,
                      e_row + r.begin);
            blas::expInplace(e_row + r.begin, r.size());
        });
        // Phase 2-2a: reduce.
        const float s = blas::sum(e_row, ns);
        // Phase 2-2b: normalize into P (ns divisions per question —
        // the cost the lazy softmax moves to O(ed)).
        const float inv = 1.0f / s;
        runtime::parallelFor(pool, ns, [&](runtime::Range r) {
            std::copy(e_row + r.begin, e_row + r.end,
                      p_row + r.begin);
            blas::scal(inv, p_row + r.begin, r.size());
        });
        counterGroup["div_ops"].add(ns);
    }
    timer.stop();
    times.softmax += timer.seconds();

    // Step 3: weighted sum o_q = sum_i p_qi * mout_i, parallelized
    // across row ranges with per-range partial outputs.
    timer.clear();
    timer.start();
    {
        const size_t parts =
            std::max<size_t>(1, pool.threadCount() ? pool.threadCount()
                                                   : 1);
        // Per-part accumulators from the persistent arena: at a
        // steady batch size the claims replay the same layout over
        // the retained block, so no allocation hits the hot path.
        scratch.reset();
        float *partial = scratch.floats(parts * nq * ed);
        blas::zero(partial, parts * nq * ed);
        switch (kb.precision()) {
          case Precision::F32: {
            const float *mout = kb.moutData();
            runtime::parallelForParts(
                pool, ns, parts, [&](size_t part, runtime::Range r) {
                    float *acc = partial + part * nq * ed;
                    for (size_t i = r.begin; i < r.end; ++i) {
                        const float *row = mout + i * ed;
                        for (size_t q = 0; q < nq; ++q)
                            blas::axpy(p[q * ns + i], row, acc + q * ed,
                                       ed);
                    }
                });
            break;
          }
          case Precision::BF16: {
            // The fused bf16 kernel with threshold 0 is exactly the
            // dense weighted sum (nothing skips); its running sums are
            // write-only here, claimed per part so parts stay
            // independent.
            const uint16_t *mout = kb.moutData16();
            double *sums = scratch.doubles(parts * nq);
            std::fill(sums, sums + parts * nq, 0.0);
            runtime::parallelForParts(
                pool, ns, parts, [&](size_t part, runtime::Range r) {
                    uint64_t kept = 0, skipped = 0;
                    blas::weightedSumSkipMultiBf16(
                        p.data() + r.begin, nq, ns, mout + r.begin * ed,
                        r.size(), ed, ed, 0.f, sums + part * nq,
                        partial + part * nq * ed, ed, kept, skipped);
                });
            break;
          }
          case Precision::I8: {
            // Same fused-with-threshold-0 trick as bf16, split at
            // quantization-group boundaries like step 1.
            const int8_t *mout = kb.moutData8();
            double *sums = scratch.doubles(parts * nq);
            std::fill(sums, sums + parts * nq, 0.0);
            runtime::parallelForParts(
                pool, ns, parts, [&](size_t part, runtime::Range r) {
                    uint64_t kept = 0, skipped = 0;
                    for (size_t g0 = r.begin; g0 < r.end;) {
                        const size_t g1 =
                            std::min(r.end, kb.i8GroupEnd(g0));
                        blas::weightedSumSkipMultiI8(
                            p.data() + g0, nq, ns, mout + g0 * ed,
                            g1 - g0, ed, ed, kb.moutScale(g0),
                            kb.moutZero(g0), 0.f, sums + part * nq,
                            partial + part * nq * ed, ed, kept,
                            skipped);
                        g0 = g1;
                    }
                });
            break;
          }
        }
        blas::zero(o, nq * ed);
        for (size_t part = 0; part < parts; ++part)
            blas::axpy(1.0f, partial + part * nq * ed, o, nq * ed);
    }
    timer.stop();
    times.weightedSum += timer.seconds();
    // Account the step-3 accumulators alongside the spilled buffers.
    counterGroup["intermediate_bytes"].add(scratch.capacityBytes());
    counterGroup["flops_wsum"].add(2ull * nq * ns * ed);
    counterGroup["rows_kept"].add(nq * ns);
}

} // namespace mnnfast::core
