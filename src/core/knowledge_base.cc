#include "core/knowledge_base.hh"

#include <algorithm>
#include <cstring>

#include "util/bf16.hh"
#include "util/logging.hh"

namespace mnnfast::core {

const char *
precisionName(Precision p)
{
    switch (p) {
      case Precision::F32: return "f32";
      case Precision::BF16: return "bf16";
    }
    panic("unknown Precision %d", static_cast<int>(p));
}

size_t
precisionBytes(Precision p)
{
    switch (p) {
      case Precision::F32: return sizeof(float);
      case Precision::BF16: return sizeof(uint16_t);
    }
    panic("unknown Precision %d", static_cast<int>(p));
}

KnowledgeBase::KnowledgeBase(size_t embedding_dim, Precision precision)
    : ed(embedding_dim), prec(precision)
{
    if (ed == 0)
        fatal("KnowledgeBase embedding dimension must be nonzero");
}

void
KnowledgeBase::reserve(size_t ns)
{
    if (viewed)
        fatal("reserve() on a knowledge-base view");
    if (ns > capacity)
        grow(ns);
}

void
KnowledgeBase::clear()
{
    if (viewed)
        fatal("clear() on a knowledge-base view");
    count = 0;
}

KnowledgeBase
KnowledgeBase::view(size_t row_begin, size_t row_end) const
{
    if (row_begin >= row_end || row_end > count)
        fatal("knowledge-base view [%zu, %zu) outside [0, %zu)",
              row_begin, row_end, count);
    KnowledgeBase v(ed, prec);
    v.viewed = true;
    v.count = row_end - row_begin;
    if (prec == Precision::F32) {
        v.vmin = minData() + row_begin * ed;
        v.vmout = moutData() + row_begin * ed;
    } else {
        v.vmin16 = minData16() + row_begin * ed;
        v.vmout16 = moutData16() + row_begin * ed;
    }
    return v;
}

void
KnowledgeBase::grow(size_t min_capacity)
{
    const size_t new_cap = std::max(min_capacity,
                                    std::max<size_t>(16, capacity * 2));
    if (prec == Precision::F32) {
        AlignedBuffer<float> new_min(new_cap * ed);
        AlignedBuffer<float> new_mout(new_cap * ed);
        if (count > 0) {
            std::memcpy(new_min.data(), min.data(),
                        count * ed * sizeof(float));
            std::memcpy(new_mout.data(), mout.data(),
                        count * ed * sizeof(float));
        }
        min = std::move(new_min);
        mout = std::move(new_mout);
    } else {
        AlignedBuffer<uint16_t> new_min(new_cap * ed);
        AlignedBuffer<uint16_t> new_mout(new_cap * ed);
        if (count > 0) {
            std::memcpy(new_min.data(), min16.data(),
                        count * ed * sizeof(uint16_t));
            std::memcpy(new_mout.data(), mout16.data(),
                        count * ed * sizeof(uint16_t));
        }
        min16 = std::move(new_min);
        mout16 = std::move(new_mout);
    }
    capacity = new_cap;
}

void
KnowledgeBase::addSentence(const float *min_row, const float *mout_row)
{
    if (viewed)
        fatal("addSentence() on a knowledge-base view");
    if (count == capacity)
        grow(count + 1);
    if (prec == Precision::F32) {
        std::memcpy(min.data() + count * ed, min_row,
                    ed * sizeof(float));
        std::memcpy(mout.data() + count * ed, mout_row,
                    ed * sizeof(float));
    } else {
        uint16_t *mi = min16.data() + count * ed;
        uint16_t *mo = mout16.data() + count * ed;
        for (size_t e = 0; e < ed; ++e) {
            mi[e] = bf16FromFloat(min_row[e]);
            mo[e] = bf16FromFloat(mout_row[e]);
        }
    }
    ++count;
}

const float *
KnowledgeBase::minData() const
{
    mnn_assert(prec == Precision::F32,
               "minData() on a non-F32 knowledge base");
    return viewed ? vmin : min.data();
}

const float *
KnowledgeBase::moutData() const
{
    mnn_assert(prec == Precision::F32,
               "moutData() on a non-F32 knowledge base");
    return viewed ? vmout : mout.data();
}

const uint16_t *
KnowledgeBase::minData16() const
{
    mnn_assert(prec == Precision::BF16,
               "minData16() on a non-BF16 knowledge base");
    return viewed ? vmin16 : min16.data();
}

const uint16_t *
KnowledgeBase::moutData16() const
{
    mnn_assert(prec == Precision::BF16,
               "moutData16() on a non-BF16 knowledge base");
    return viewed ? vmout16 : mout16.data();
}

const float *
KnowledgeBase::minRow(size_t i) const
{
    mnn_assert(i < count, "M_IN row out of range");
    return minData() + i * ed;
}

const float *
KnowledgeBase::moutRow(size_t i) const
{
    mnn_assert(i < count, "M_OUT row out of range");
    return moutData() + i * ed;
}

const uint16_t *
KnowledgeBase::minRow16(size_t i) const
{
    mnn_assert(i < count, "M_IN row out of range");
    return minData16() + i * ed;
}

const uint16_t *
KnowledgeBase::moutRow16(size_t i) const
{
    mnn_assert(i < count, "M_OUT row out of range");
    return moutData16() + i * ed;
}

} // namespace mnnfast::core
