#include "core/knowledge_base.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/bf16.hh"
#include "util/logging.hh"

namespace mnnfast::core {
namespace {

/**
 * Quantize n floats under the affine code x_hat = scale*q + zero.
 * Deterministic (round-to-nearest via lrintf under the default FP
 * environment, then clamped to the int8 range), and used for both the
 * single-row and the requantize-the-tail-chunk paths so their results
 * agree by construction.
 */
void
quantizeRow(const float *src, int8_t *dst, size_t n, float scale,
            float zero)
{
    if (scale == 0.f) { // constant chunk: every element equals zero
        std::memset(dst, 0, n);
        return;
    }
    const float inv = 1.f / scale;
    for (size_t e = 0; e < n; ++e) {
        const long q = std::lrintf((src[e] - zero) * inv);
        dst[e] = static_cast<int8_t>(std::clamp<long>(q, -128, 127));
    }
}

} // namespace

const char *
precisionName(Precision p)
{
    switch (p) {
      case Precision::F32: return "f32";
      case Precision::BF16: return "bf16";
      case Precision::I8: return "i8";
    }
    panic("unknown Precision %d", static_cast<int>(p));
}

size_t
precisionBytes(Precision p)
{
    switch (p) {
      case Precision::F32: return sizeof(float);
      case Precision::BF16: return sizeof(uint16_t);
      case Precision::I8: return sizeof(int8_t);
    }
    panic("unknown Precision %d", static_cast<int>(p));
}

KnowledgeBase::KnowledgeBase(size_t embedding_dim, Precision precision,
                             size_t i8_chunk_rows)
    : ed(embedding_dim), prec(precision), qchunk(i8_chunk_rows)
{
    if (ed == 0)
        fatal("KnowledgeBase embedding dimension must be nonzero");
    if (prec == Precision::I8 && qchunk == 0)
        fatal("KnowledgeBase I8 chunk rows must be nonzero");
}

void
KnowledgeBase::reserve(size_t ns)
{
    if (viewed)
        fatal("reserve() on a knowledge-base view");
    if (ns > capacity)
        grow(ns);
}

void
KnowledgeBase::clear()
{
    if (viewed)
        fatal("clear() on a knowledge-base view");
    count = 0;
    minScaleV.clear();
    minZeroV.clear();
    moutScaleV.clear();
    moutZeroV.clear();
}

KnowledgeBase
KnowledgeBase::view(size_t row_begin, size_t row_end) const
{
    if (row_begin >= row_end || row_end > count)
        fatal("knowledge-base view [%zu, %zu) outside [0, %zu)",
              row_begin, row_end, count);
    KnowledgeBase v(ed, prec, qchunk);
    v.viewed = true;
    v.count = row_end - row_begin;
    switch (prec) {
      case Precision::F32:
        v.vmin = minData() + row_begin * ed;
        v.vmout = moutData() + row_begin * ed;
        break;
      case Precision::BF16:
        v.vmin16 = minData16() + row_begin * ed;
        v.vmout16 = moutData16() + row_begin * ed;
        break;
      case Precision::I8:
        v.vmin8 = minData8() + row_begin * ed;
        v.vmout8 = moutData8() + row_begin * ed;
        v.vminScale = minScalesPtr();
        v.vminZero = minZerosPtr();
        v.vmoutScale = moutScalesPtr();
        v.vmoutZero = moutZerosPtr();
        v.vrowOff = vrowOff + row_begin;
        break;
    }
    return v;
}

void
KnowledgeBase::grow(size_t min_capacity)
{
    const size_t new_cap = std::max(min_capacity,
                                    std::max<size_t>(16, capacity * 2));
    switch (prec) {
      case Precision::F32: {
        AlignedBuffer<float> new_min(new_cap * ed);
        AlignedBuffer<float> new_mout(new_cap * ed);
        if (count > 0) {
            std::memcpy(new_min.data(), min.data(),
                        count * ed * sizeof(float));
            std::memcpy(new_mout.data(), mout.data(),
                        count * ed * sizeof(float));
        }
        min = std::move(new_min);
        mout = std::move(new_mout);
        break;
      }
      case Precision::BF16: {
        AlignedBuffer<uint16_t> new_min(new_cap * ed);
        AlignedBuffer<uint16_t> new_mout(new_cap * ed);
        if (count > 0) {
            std::memcpy(new_min.data(), min16.data(),
                        count * ed * sizeof(uint16_t));
            std::memcpy(new_mout.data(), mout16.data(),
                        count * ed * sizeof(uint16_t));
        }
        min16 = std::move(new_min);
        mout16 = std::move(new_mout);
        break;
      }
      case Precision::I8: {
        AlignedBuffer<int8_t> new_min(new_cap * ed);
        AlignedBuffer<int8_t> new_mout(new_cap * ed);
        if (count > 0) {
            std::memcpy(new_min.data(), min8.data(), count * ed);
            std::memcpy(new_mout.data(), mout8.data(), count * ed);
        }
        min8 = std::move(new_min);
        mout8 = std::move(new_mout);
        break;
      }
    }
    capacity = new_cap;
}

void
KnowledgeBase::addSentence(const float *min_row, const float *mout_row)
{
    if (viewed)
        fatal("addSentence() on a knowledge-base view");
    if (count == capacity)
        grow(count + 1);
    switch (prec) {
      case Precision::F32:
        std::memcpy(min.data() + count * ed, min_row,
                    ed * sizeof(float));
        std::memcpy(mout.data() + count * ed, mout_row,
                    ed * sizeof(float));
        break;
      case Precision::BF16: {
        uint16_t *mi = min16.data() + count * ed;
        uint16_t *mo = mout16.data() + count * ed;
        for (size_t e = 0; e < ed; ++e) {
            mi[e] = bf16FromFloat(min_row[e]);
            mo[e] = bf16FromFloat(mout_row[e]);
        }
        break;
      }
      case Precision::I8: {
        if (tailMin.empty()) {
            tailMin.resize(qchunk * ed);
            tailMout.resize(qchunk * ed);
        }
        const size_t k = count % qchunk; // row within the tail chunk
        if (k == 0) { // starting a fresh quantization chunk
            minScaleV.push_back(0.f);
            minZeroV.push_back(0.f);
            moutScaleV.push_back(0.f);
            moutZeroV.push_back(0.f);
        }
        const size_t c = count / qchunk;
        // Ingest one matrix: stage the fp32 row, and either quantize
        // just this row under the chunk's frozen-so-far code, or —
        // when the row extends the chunk's element range — recompute
        // the code and requantize the whole staged tail chunk so the
        // stored bytes match a from-scratch quantization.
        auto ingest = [&](const float *row, std::vector<float> &staged,
                          AlignedBuffer<int8_t> &store,
                          std::vector<float> &scales,
                          std::vector<float> &zeros, float &lo,
                          float &hi) {
            float *slot = staged.data() + k * ed;
            std::memcpy(slot, row, ed * sizeof(float));
            const auto [plo, phi] =
                std::minmax_element(row, row + ed);
            if (!std::isfinite(*plo) || !std::isfinite(*phi))
                fatal("I8 knowledge bases require finite embeddings");
            int8_t *base = store.data() + (count - k) * ed;
            if (k == 0 || *plo < lo || *phi > hi) {
                lo = (k == 0) ? *plo : std::min(lo, *plo);
                hi = (k == 0) ? *phi : std::max(hi, *phi);
                const float scale =
                    (hi > lo) ? (hi - lo) / 255.f : 0.f;
                const float zero = lo + 128.f * scale;
                scales[c] = scale;
                zeros[c] = zero;
                for (size_t r = 0; r <= k; ++r)
                    quantizeRow(staged.data() + r * ed, base + r * ed,
                                ed, scale, zero);
            } else {
                quantizeRow(slot, base + k * ed, ed, scales[c],
                            zeros[c]);
            }
        };
        ingest(min_row, tailMin, min8, minScaleV, minZeroV, minLo,
               minHi);
        ingest(mout_row, tailMout, mout8, moutScaleV, moutZeroV,
               moutLo, moutHi);
        break;
      }
    }
    ++count;
}

const float *
KnowledgeBase::minData() const
{
    mnn_assert(prec == Precision::F32,
               "minData() on a non-F32 knowledge base");
    return viewed ? vmin : min.data();
}

const float *
KnowledgeBase::moutData() const
{
    mnn_assert(prec == Precision::F32,
               "moutData() on a non-F32 knowledge base");
    return viewed ? vmout : mout.data();
}

const uint16_t *
KnowledgeBase::minData16() const
{
    mnn_assert(prec == Precision::BF16,
               "minData16() on a non-BF16 knowledge base");
    return viewed ? vmin16 : min16.data();
}

const uint16_t *
KnowledgeBase::moutData16() const
{
    mnn_assert(prec == Precision::BF16,
               "moutData16() on a non-BF16 knowledge base");
    return viewed ? vmout16 : mout16.data();
}

const float *
KnowledgeBase::minRow(size_t i) const
{
    mnn_assert(i < count, "M_IN row out of range");
    return minData() + i * ed;
}

const float *
KnowledgeBase::moutRow(size_t i) const
{
    mnn_assert(i < count, "M_OUT row out of range");
    return moutData() + i * ed;
}

const uint16_t *
KnowledgeBase::minRow16(size_t i) const
{
    mnn_assert(i < count, "M_IN row out of range");
    return minData16() + i * ed;
}

const uint16_t *
KnowledgeBase::moutRow16(size_t i) const
{
    mnn_assert(i < count, "M_OUT row out of range");
    return moutData16() + i * ed;
}

const int8_t *
KnowledgeBase::minData8() const
{
    mnn_assert(prec == Precision::I8,
               "minData8() on a non-I8 knowledge base");
    return viewed ? vmin8 : min8.data();
}

const int8_t *
KnowledgeBase::moutData8() const
{
    mnn_assert(prec == Precision::I8,
               "moutData8() on a non-I8 knowledge base");
    return viewed ? vmout8 : mout8.data();
}

const int8_t *
KnowledgeBase::minRow8(size_t i) const
{
    mnn_assert(i < count, "M_IN row out of range");
    return minData8() + i * ed;
}

const int8_t *
KnowledgeBase::moutRow8(size_t i) const
{
    mnn_assert(i < count, "M_OUT row out of range");
    return moutData8() + i * ed;
}

size_t
KnowledgeBase::i8ChunkRows() const
{
    mnn_assert(prec == Precision::I8,
               "i8ChunkRows() on a non-I8 knowledge base");
    return qchunk;
}

const float *
KnowledgeBase::minScalesPtr() const
{
    mnn_assert(prec == Precision::I8,
               "minScale() on a non-I8 knowledge base");
    return viewed ? vminScale : minScaleV.data();
}

const float *
KnowledgeBase::minZerosPtr() const
{
    mnn_assert(prec == Precision::I8,
               "minZero() on a non-I8 knowledge base");
    return viewed ? vminZero : minZeroV.data();
}

const float *
KnowledgeBase::moutScalesPtr() const
{
    mnn_assert(prec == Precision::I8,
               "moutScale() on a non-I8 knowledge base");
    return viewed ? vmoutScale : moutScaleV.data();
}

const float *
KnowledgeBase::moutZerosPtr() const
{
    mnn_assert(prec == Precision::I8,
               "moutZero() on a non-I8 knowledge base");
    return viewed ? vmoutZero : moutZeroV.data();
}

float
KnowledgeBase::minScale(size_t i) const
{
    mnn_assert(i < count, "M_IN row out of range");
    return minScalesPtr()[(vrowOff + i) / qchunk];
}

float
KnowledgeBase::minZero(size_t i) const
{
    mnn_assert(i < count, "M_IN row out of range");
    return minZerosPtr()[(vrowOff + i) / qchunk];
}

float
KnowledgeBase::moutScale(size_t i) const
{
    mnn_assert(i < count, "M_OUT row out of range");
    return moutScalesPtr()[(vrowOff + i) / qchunk];
}

float
KnowledgeBase::moutZero(size_t i) const
{
    mnn_assert(i < count, "M_OUT row out of range");
    return moutZerosPtr()[(vrowOff + i) / qchunk];
}

size_t
KnowledgeBase::i8GroupEnd(size_t i) const
{
    mnn_assert(prec == Precision::I8,
               "i8GroupEnd() on a non-I8 knowledge base");
    mnn_assert(i < count, "i8GroupEnd row out of range");
    const size_t next = ((vrowOff + i) / qchunk + 1) * qchunk;
    return std::min(next - vrowOff, count);
}

} // namespace mnnfast::core
