#include "core/knowledge_base.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace mnnfast::core {

KnowledgeBase::KnowledgeBase(size_t embedding_dim)
    : ed(embedding_dim)
{
    if (ed == 0)
        fatal("KnowledgeBase embedding dimension must be nonzero");
}

void
KnowledgeBase::reserve(size_t ns)
{
    if (ns > capacity)
        grow(ns);
}

void
KnowledgeBase::grow(size_t min_capacity)
{
    const size_t new_cap = std::max(min_capacity,
                                    std::max<size_t>(16, capacity * 2));
    AlignedBuffer<float> new_min(new_cap * ed);
    AlignedBuffer<float> new_mout(new_cap * ed);
    if (count > 0) {
        std::memcpy(new_min.data(), min.data(),
                    count * ed * sizeof(float));
        std::memcpy(new_mout.data(), mout.data(),
                    count * ed * sizeof(float));
    }
    min = std::move(new_min);
    mout = std::move(new_mout);
    capacity = new_cap;
}

void
KnowledgeBase::addSentence(const float *min_row, const float *mout_row)
{
    if (count == capacity)
        grow(count + 1);
    std::memcpy(min.data() + count * ed, min_row, ed * sizeof(float));
    std::memcpy(mout.data() + count * ed, mout_row, ed * sizeof(float));
    ++count;
}

const float *
KnowledgeBase::minRow(size_t i) const
{
    mnn_assert(i < count, "M_IN row out of range");
    return min.data() + i * ed;
}

const float *
KnowledgeBase::moutRow(size_t i) const
{
    mnn_assert(i < count, "M_OUT row out of range");
    return mout.data() + i * ed;
}

} // namespace mnnfast::core
