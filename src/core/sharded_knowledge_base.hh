/**
 * @file
 * A chunk-aligned partition of one knowledge base into S contiguous
 * shards, the storage side of scatter/gather inference (paper §6,
 * Fig. 12): the column-based algorithm's per-chunk online-softmax
 * partials merge exactly, so the memory can be split across engines
 * (or, in the near-memory designs this models, across ranks/banks)
 * and each partition streamed by a different worker.
 *
 * Shard boundaries are always multiples of the chunk size, computed
 * with the same runtime::splitRange decomposition the column engine
 * uses for its chunk groups. That alignment is what makes sharded
 * inference *bit-identical* to a single engine: shard s covers
 * exactly chunk group s of a ColumnEngine configured with
 * scheduleGroups = shardCount(), so every kernel call, every chunk
 * sweep, and the canonical merge order coincide (see
 * sharded_engine.hh).
 *
 * Shards are zero-copy KnowledgeBase::view windows — the parent KB
 * must outlive the sharding and stay un-mutated while it is in use.
 */

#ifndef MNNFAST_CORE_SHARDED_KNOWLEDGE_BASE_HH
#define MNNFAST_CORE_SHARDED_KNOWLEDGE_BASE_HH

#include <vector>

#include "core/knowledge_base.hh"
#include "runtime/parallel_for.hh"

namespace mnnfast::core {

/** Chunk-aligned shard partition over one KnowledgeBase. */
class ShardedKnowledgeBase
{
  public:
    /**
     * Partition `kb` into at most `shards` contiguous shards whose
     * boundaries are multiples of `chunk_size` (clamped to the KB
     * size, exactly as ColumnEngine clamps its chunk size). Fewer
     * shards are produced when the KB has fewer chunks than requested
     * — shardCount() reports the effective number. The KB must be
     * non-empty and must outlive this object un-mutated.
     */
    ShardedKnowledgeBase(const KnowledgeBase &kb, size_t chunk_size,
                         size_t shards);

    /** Effective shard count (<= the requested count). */
    size_t shardCount() const { return views.size(); }

    /** Shard s as a zero-copy KB view (row 0 = sentence rows(s).begin). */
    const KnowledgeBase &shard(size_t s) const;

    /** Sentence range [begin, end) of shard s in the parent KB. */
    runtime::Range rows(size_t s) const;

    /** The chunk size the partition was aligned to (after clamping). */
    size_t chunkSize() const { return chunk; }

    /** The partitioned knowledge base. */
    const KnowledgeBase &parent() const { return kb; }

  private:
    const KnowledgeBase &kb;
    size_t chunk;
    std::vector<runtime::Range> rowRanges;
    std::vector<KnowledgeBase> views;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_SHARDED_KNOWLEDGE_BASE_HH
