#include "core/column_engine.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>

#include "blas/kernels.hh"
#include "runtime/parallel_for.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace mnnfast::core {

namespace {

/**
 * Issue software prefetches covering [ptr, ptr + bytes). Touching
 * every other line is enough: the hardware prefetcher follows the
 * sequential stream once started, and halving the instruction count
 * keeps the overhead negligible on memory systems where the data is
 * already close.
 */
inline void
prefetchBytes(const float *ptr, size_t bytes)
{
    const char *p = reinterpret_cast<const char *>(ptr);
    for (size_t off = 0; off < bytes; off += 2 * kCacheLineBytes)
        __builtin_prefetch(p + off, 0 /* read */, 3 /* high locality */);
}

} // namespace

ColumnEngine::ColumnEngine(const KnowledgeBase &kb, const EngineConfig &cfg)
    : kb(kb), cfg(cfg), pool(cfg.threads)
{
    if (this->cfg.chunkSize == 0)
        fatal("column engine chunk size must be nonzero");
}

const char *
ColumnEngine::name() const
{
    if (cfg.skipThreshold > 0.f && cfg.streaming)
        return "mnnfast";
    if (cfg.streaming)
        return "column+streaming";
    if (cfg.skipThreshold > 0.f)
        return "column+zskip";
    return "column";
}

void
ColumnEngine::processChunks(const float *u, size_t nq, size_t row_begin,
                            size_t row_end, Partial &out, uint64_t &kept,
                            uint64_t &skipped) const
{
    const size_t ed = kb.dim();
    const size_t chunk = cfg.chunkSize;
    const float *min = kb.minData();
    const float *mout = kb.moutData();
    const bool online = cfg.onlineNormalize;
    const float th = cfg.skipThreshold;

    // Chunk-local scratch: the only per-question temporary, O(chunk).
    std::vector<float> t(nq * chunk);
    Timer phase_timer;

    for (size_t c0 = row_begin; c0 < row_end; c0 += chunk) {
        const size_t c1 = std::min(c0 + chunk, row_end);
        const size_t len = c1 - c0;

        // Streaming: the next chunk's rows are prefetched row-by-row
        // while this chunk computes, so the prefetch latency hides
        // under the dot products instead of serializing in a burst.
        const size_t next_len =
            cfg.streaming && c1 < row_end
                ? std::min(chunk, row_end - c1)
                : 0;

        // Phase 1: inner products for this chunk (all questions).
        phase_timer.reset();
        for (size_t q = 0; q < nq; ++q) {
            const float *uq = u + q * ed;
            float *tq = t.data() + q * chunk;
            for (size_t i = 0; i < len; ++i) {
                if (q == 0 && i < next_len) {
                    prefetchBytes(min + (c1 + i) * ed,
                                  ed * sizeof(float));
                }
                tq[i] = blas::dot(uq, min + (c0 + i) * ed, ed);
            }
        }

        out.tInner += phase_timer.seconds();

        // Phase 2 (partial softmax): exponential + running sum. In
        // online mode the accumulators are rescaled whenever a new
        // running max appears, keeping exp arguments bounded.
        phase_timer.reset();
        for (size_t q = 0; q < nq; ++q) {
            float *tq = t.data() + q * chunk;
            if (online) {
                float m = out.runmax[q];
                for (size_t i = 0; i < len; ++i)
                    m = std::max(m, tq[i]);
                if (m > out.runmax[q]) {
                    const float rescale =
                        std::exp(out.runmax[q] - m);
                    out.psum[q] *= rescale;
                    blas::scal(rescale, out.o.data() + q * ed, ed);
                    out.runmax[q] = m;
                }
                for (size_t i = 0; i < len; ++i)
                    tq[i] = std::exp(tq[i] - m);
            } else {
                for (size_t i = 0; i < len; ++i)
                    tq[i] = std::exp(tq[i]);
            }
        }

        out.tSoftmax += phase_timer.seconds();

        // Phase 3: weighted sum with optional zero-skipping. The sum
        // is accumulated first so the skip test e < th * S_running is
        // conservative (see header).
        phase_timer.reset();
        for (size_t q = 0; q < nq; ++q) {
            float *tq = t.data() + q * chunk;
            float *oq = out.o.data() + q * ed;
            double s = out.psum[q];
            for (size_t i = 0; i < len; ++i) {
                if (q == 0 && i < next_len) {
                    prefetchBytes(mout + (c1 + i) * ed,
                                  ed * sizeof(float));
                }
                const float e = tq[i];
                s += e;
                if (th > 0.f && double(e) < double(th) * s) {
                    ++skipped;
                    continue;
                }
                ++kept;
                blas::axpy(e, mout + (c0 + i) * ed, oq, ed);
            }
            out.psum[q] = s;
        }
        out.tWsum += phase_timer.seconds();
    }
}

void
ColumnEngine::inferBatch(const float *u, size_t nq, float *o)
{
    const size_t ns = kb.size();
    const size_t ed = kb.dim();
    mnn_assert(ns > 0, "inference over an empty knowledge base");

    counterGroup["intermediate_bytes"].reset();
    counterGroup["intermediate_bytes"].add(
        nq * std::min(cfg.chunkSize, ns) * sizeof(float));

    // One partial-result slot per worker span; inline mode uses one.
    const size_t parts = std::max<size_t>(1, pool.threadCount());
    std::vector<Partial> partials(parts);
    for (Partial &p : partials) {
        p.o.assign(nq * ed, 0.f);
        p.psum.assign(nq, 0.0);
        p.runmax.assign(nq, -std::numeric_limits<float>::infinity());
    }

    Timer timer;
    uint64_t kept_total = 0, skipped_total = 0;
    std::mutex merge_mutex;

    // Align worker spans to chunk boundaries so each chunk is owned by
    // exactly one worker.
    const size_t n_chunks = (ns + cfg.chunkSize - 1) / cfg.chunkSize;
    const auto chunk_ranges = runtime::splitRange(n_chunks, parts);

    for (size_t part = 0; part < chunk_ranges.size(); ++part) {
        const auto cr = chunk_ranges[part];
        Partial *slot = &partials[part];
        pool.submit([&, cr, slot] {
            uint64_t kept = 0, skipped = 0;
            processChunks(u, nq, cr.begin * cfg.chunkSize,
                          std::min(ns, cr.end * cfg.chunkSize), *slot,
                          kept, skipped);
            std::lock_guard<std::mutex> lock(merge_mutex);
            kept_total += kept;
            skipped_total += skipped;
        });
    }
    pool.waitIdle();

    // Merge partials and apply the lazy softmax division: O(ed)
    // divisions per question instead of O(ns).
    if (cfg.onlineNormalize) {
        for (size_t q = 0; q < nq; ++q) {
            float gmax = -std::numeric_limits<float>::infinity();
            for (const Partial &p : partials)
                gmax = std::max(gmax, p.runmax[q]);
            double s = 0.0;
            blas::zero(o + q * ed, ed);
            for (const Partial &p : partials) {
                if (p.psum[q] == 0.0)
                    continue;
                const float scale = std::exp(p.runmax[q] - gmax);
                s += p.psum[q] * scale;
                blas::axpy(scale, p.o.data() + q * ed, o + q * ed, ed);
            }
            blas::scal(static_cast<float>(1.0 / s), o + q * ed, ed);
        }
    } else {
        for (size_t q = 0; q < nq; ++q) {
            double s = 0.0;
            blas::zero(o + q * ed, ed);
            for (const Partial &p : partials) {
                s += p.psum[q];
                blas::axpy(1.0f, p.o.data() + q * ed, o + q * ed, ed);
            }
            blas::scal(static_cast<float>(1.0 / s), o + q * ed, ed);
        }
    }

    // Attribute phase times. With workers, per-thread phase seconds
    // overlap in wall-clock; dividing by the worker count gives the
    // effective contribution (exact in the inline/1-thread case used
    // for the Fig. 9a breakdown).
    double t_inner = 0.0, t_soft = 0.0, t_wsum = 0.0;
    for (const Partial &p : partials) {
        t_inner += p.tInner;
        t_soft += p.tSoftmax;
        t_wsum += p.tWsum;
    }
    const double denom = static_cast<double>(parts);
    times.innerProduct += t_inner / denom;
    times.softmax += t_soft / denom;
    times.weightedSum += t_wsum / denom;
    times.other += std::max(0.0, timer.seconds()
                                 - (t_inner + t_soft + t_wsum) / denom);

    counterGroup["div_ops"].add(nq * ed);
    counterGroup["chunks_processed"].add(n_chunks);
    counterGroup["rows_kept"].add(kept_total);
    counterGroup["rows_skipped"].add(skipped_total);
    counterGroup["flops_inner"].add(2ull * nq * ns * ed);
    counterGroup["flops_wsum"].add(2ull * kept_total * ed);
}

} // namespace mnnfast::core
