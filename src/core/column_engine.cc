#include "core/column_engine.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "blas/kernels.hh"
#include "runtime/parallel_for.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace mnnfast::core {

namespace {

/**
 * Issue software prefetches covering [ptr, ptr + bytes), one every
 * `stride` cache lines (0 = none). Sparse pacing is enough: the
 * hardware prefetcher follows the sequential stream once started, and
 * thinning the instruction count keeps the overhead negligible on
 * memory systems where the data is already close. The stride comes
 * from the engine's resolved runtime::KernelPlan.
 */
inline void
prefetchBytes(const void *ptr, size_t bytes, size_t stride)
{
    if (stride == 0)
        return;
    const char *p = reinterpret_cast<const char *>(ptr);
    for (size_t off = 0; off < bytes; off += stride * kCacheLineBytes)
        __builtin_prefetch(p + off, 0 /* read */, 3 /* high locality */);
}

/**
 * The strip is the reuse unit of the query-blocked sweep: its
 * M_IN/M_OUT rows stay cache-resident while every question in the
 * batch consumes them, so DRAM traffic per chunk is paid once per
 * batch. The strip row count is tuned (runtime::KernelPlan; default
 * 16 rows — 1 KiB rows at ed=256 fit comfortably in L1 next to the
 * question tile) and always a multiple of the kernels' 4-row register
 * group, so strip boundaries never change the accumulation grouping
 * relative to one whole-chunk kernel call (bit-identity). Prefetch of
 * the next chunk is paced across these strips, as in the paper's data
 * streaming.
 */

/** Oversubscription factor for the automatic group count. */
constexpr size_t kAutoGroupsPerWorker = 4;

} // namespace

ColumnEngine::ColumnEngine(const KnowledgeBase &kb, const EngineConfig &cfg)
    : kb(kb), cfg(cfg), pool(cfg.threads)
{
    if (this->cfg.chunkSize == 0)
        fatal("column engine chunk size must be nonzero");
    // Fail fast on pins the sweep could not honor: a stripRows not on
    // the kernels' 4-row register grid would otherwise be silently
    // rounded (the caller benchmarks one strip size and runs another),
    // and a prefetchStride outside the tuner's candidate set makes
    // pinned and tuned configurations incomparable.
    if (this->cfg.stripRows > 0 && this->cfg.stripRows % 4 != 0)
        fatal("EngineConfig::stripRows = %zu is not a multiple of 4",
              this->cfg.stripRows);
    if (this->cfg.prefetchStride > 0) {
        bool in_grid = false;
        for (size_t c : runtime::kPrefetchStrideCandidates)
            in_grid = in_grid
                   || static_cast<size_t>(this->cfg.prefetchStride) == c;
        if (!in_grid)
            fatal("EngineConfig::prefetchStride = %d is outside the "
                  "tuner candidate set",
                  this->cfg.prefetchStride);
    }
    switch (this->cfg.routePolicy) {
      case RoutePolicy::None:
        break;
      case RoutePolicy::TopK:
        if (this->cfg.routeTopK == 0)
            fatal("RoutePolicy::TopK requires routeTopK > 0");
        break;
      case RoutePolicy::BoundThreshold:
        if (!(this->cfg.routeBoundThreshold >= 0.f
              && this->cfg.routeBoundThreshold <= 1.f))
            fatal("RoutePolicy::BoundThreshold requires "
                  "routeBoundThreshold in [0, 1], got %g",
                  static_cast<double>(this->cfg.routeBoundThreshold));
        break;
    }
    // A chunk can never be larger than the KB, so clamp up front: the
    // scratch tiles, the reported chunk geometry, and chunkSize() all
    // reflect what actually runs. An empty KB is left alone so that
    // construction stays legal (inferBatch over it still panics).
    if (kb.size() > 0)
        this->cfg.chunkSize = std::min(this->cfg.chunkSize, kb.size());
    workerArenas.resize(std::max<size_t>(1, pool.threadCount()));

    // Warm the process-wide tuning table for this KB's precision and
    // dimension now, so the first inference call (and every sibling
    // engine over the same geometry — e.g. one per serving worker)
    // finds a measured plan with a plain lookup. Skipped when the
    // config pins both knobs; a no-op under MNNFAST_NO_TUNER.
    if (kb.size() > 0
        && (this->cfg.stripRows == 0 || this->cfg.prefetchStride < 0)) {
        auto &tuner = runtime::KernelTuner::instance();
        const char *prec = precisionName(kb.precision());
        for (size_t nq : {size_t{1}, size_t{4}, size_t{16}})
            tuner.plan(prec, kb.dim(), nq);
    }
    // The coarse bound sweep has its own tuned shape ("bound": lo+hi
    // fp32 row pairs); warm it too when routing is configured.
    if (kb.size() > 0 && routingActive()) {
        auto &tuner = runtime::KernelTuner::instance();
        for (size_t nq : {size_t{1}, size_t{4}, size_t{16}})
            tuner.plan("bound", kb.dim(), nq);
    }
}

runtime::KernelPlan
ColumnEngine::resolvePlan(size_t nq) const
{
    runtime::KernelPlan plan;
    if (cfg.stripRows == 0 || cfg.prefetchStride < 0)
        plan = runtime::KernelTuner::instance().plan(
            precisionName(kb.precision()), kb.dim(), nq);
    if (cfg.stripRows > 0)
        plan.stripRows = cfg.stripRows; // validated at construction
    if (cfg.prefetchStride >= 0)
        plan.prefetchStride = static_cast<size_t>(cfg.prefetchStride);
    return plan;
}

const char *
ColumnEngine::name() const
{
    const bool routed = routingActive();
    if (cfg.skipThreshold > 0.f && cfg.streaming)
        return routed ? "mnnfast+routed" : "mnnfast";
    if (cfg.streaming)
        return routed ? "column+streaming+routed" : "column+streaming";
    if (cfg.skipThreshold > 0.f)
        return routed ? "column+zskip+routed" : "column+zskip";
    return routed ? "column+routed" : "column";
}

const std::vector<runtime::Range> &
ColumnEngine::chunkGroups(size_t n_chunks)
{
    // A pure function of the chunk count and configuration, shared by
    // both scheduling policies, so the schedule can never change the
    // merged result (see header). Cached: the KB size is fixed for
    // the engine's lifetime in the serving loop, so this recomputes
    // only if the KB grows between calls.
    if (groupCache.empty() || groupCacheChunks != n_chunks) {
        const size_t workers = std::max<size_t>(1, pool.threadCount());
        const size_t want_groups =
            cfg.scheduleGroups > 0
                ? cfg.scheduleGroups
                : (workers > 1 ? workers * kAutoGroupsPerWorker : 1);
        groupCache =
            runtime::splitRange(n_chunks, std::min(n_chunks, want_groups));
        groupCacheChunks = n_chunks;
    }
    return groupCache;
}

void
ColumnEngine::processChunks(const float *u, size_t nq, size_t row_begin,
                            size_t row_end,
                            const runtime::KernelPlan &plan, Partial &out,
                            size_t worker, uint64_t &kept,
                            uint64_t &skipped,
                            runtime::ScratchArena &scratch,
                            const uint8_t *sel, size_t sel_stride,
                            uint64_t &routed_rows,
                            uint64_t &bypassed) const
{
    const size_t ed = kb.dim();
    const size_t chunk = cfg.chunkSize;
    // Storage precision decides which fused kernels sweep the chunk;
    // everything else (strips, prefetch pacing, scratch, merge) is
    // precision-agnostic. Row prefetch distance shrinks with the
    // element size, so bf16 halves and i8 quarters both the streamed
    // and the prefetched bytes per row. The i8 sweeps additionally
    // split kernel calls at quantization-group boundaries
    // (kb.i8GroupEnd) so each call carries one (scale, zero) pair;
    // the split points cannot change results (see kernels.hh).
    const Precision prec = kb.precision();
    const float *min = nullptr, *mout = nullptr;
    const uint16_t *min16 = nullptr, *mout16 = nullptr;
    const int8_t *min8 = nullptr, *mout8 = nullptr;
    switch (prec) {
      case Precision::F32:
        min = kb.minData();
        mout = kb.moutData();
        break;
      case Precision::BF16:
        min16 = kb.minData16();
        mout16 = kb.moutData16();
        break;
      case Precision::I8:
        min8 = kb.minData8();
        mout8 = kb.moutData8();
        break;
    }
    // Prefetch addressing is precision-agnostic given the byte view.
    const char *min_bytes = reinterpret_cast<const char *>(
        min ? static_cast<const void *>(min)
            : min16 ? static_cast<const void *>(min16)
                    : static_cast<const void *>(min8));
    const char *mout_bytes = reinterpret_cast<const char *>(
        mout ? static_cast<const void *>(mout)
             : mout16 ? static_cast<const void *>(mout16)
                      : static_cast<const void *>(mout8));
    const size_t row_bytes = ed * kb.elemBytes();
    const size_t pf = plan.prefetchStride;
    // The strip has two jobs: pacing the next-chunk prefetch (pf > 0)
    // and keeping a row block L1-resident while it is reused across
    // the question batch (nq > 1). With one question and prefetch
    // disabled — e.g. the tuned int8 single-query plan, whose kernel
    // prefetches internally — neither applies, so collapse the strip
    // to the chunk and amortize per-call setup (dispatch, query sums)
    // over 8x more rows. Call granularity never changes results: the
    // per-(question, row) accumulation order is call-split invariant.
    const size_t strip =
        (nq == 1 && pf == 0) ? chunk : plan.stripRows;
    const bool online = cfg.onlineNormalize;
    const float th = cfg.skipThreshold;

    // Chunk-local e-value tile, the only per-question temporary:
    // t[q * chunk + i] is the (exponentiated) score of chunk row i for
    // question q. Claimed from this worker's persistent arena (the
    // caller reset it before this group's claims) — steady state is a
    // pure bump-pointer rewind. Under routing, row q of the tile
    // belongs to the q-th *selected* question of the current chunk.
    float *t = scratch.floats(nq * chunk);
    // Compacted sub-batch buffers for partially selected chunks:
    // gathered question vectors and accumulator state for the
    // selected questions only, scattered back after the chunk.
    float *u_sub = nullptr, *acc_sub = nullptr, *runmax_sub = nullptr;
    double *psum_sub = nullptr;
    uint32_t *qsel = nullptr;
    if (sel) {
        u_sub = scratch.floats(nq * ed);
        acc_sub = scratch.floats(nq * ed);
        runmax_sub = scratch.floats(nq);
        psum_sub = scratch.doubles(nq);
        qsel = reinterpret_cast<uint32_t *>(
            scratch.bytes(nq * sizeof(uint32_t)));
    }
    const size_t first_chunk = row_begin / chunk;
    Timer phase_timer;

    for (size_t c0 = row_begin; c0 < row_end; c0 += chunk) {
        const size_t c1 = std::min(c0 + chunk, row_end);
        const size_t len = c1 - c0;

        // Routing: gather this chunk's selected questions. A chunk no
        // question selected is bypassed outright — its rows are never
        // streamed, prefetched or observed.
        size_t nb = nq;
        if (sel) {
            const size_t ci = c0 / chunk - first_chunk;
            nb = 0;
            for (size_t q = 0; q < nq; ++q)
                if (sel[q * sel_stride + ci])
                    qsel[nb++] = static_cast<uint32_t>(q);
            if (nb == 0) {
                ++bypassed;
                continue;
            }
            routed_rows += len * nb;
        }

        // Streaming: the next chunk's rows are prefetched strip-by-
        // strip while this chunk computes, so the prefetch latency
        // hides under the arithmetic instead of serializing in a
        // burst. Issued once per chunk regardless of the batch size —
        // the strip sweep below already covers every question. Under
        // routing, a next chunk no question selected is not prefetched
        // (its bytes will never be read).
        // next_len <= len always (a shorter chunk is the last).
        size_t next_len =
            cfg.streaming && c1 < row_end
                ? std::min(chunk, row_end - c1)
                : 0;
        if (sel && next_len > 0) {
            const size_t nci = c1 / chunk - first_chunk;
            bool any = false;
            for (size_t q = 0; q < nq && !any; ++q)
                any = sel[q * sel_stride + nci] != 0;
            if (!any)
                next_len = 0;
        }

        // Partial selection runs the identical three phases over a
        // compacted question sub-batch: gather the selected questions'
        // query vectors and accumulator state, run the kernels at the
        // sub-batch size, scatter back. Exact per question — the
        // kernels' per-(question, row) accumulation order does not
        // depend on which other questions share the call.
        const float *uu = u;
        float *acc = out.o;
        double *psum = out.psum;
        float *runmax = out.runmax;
        const bool compact = sel && nb < nq;
        if (compact) {
            for (size_t j = 0; j < nb; ++j) {
                const size_t q = qsel[j];
                blas::copy(u + q * ed, u_sub + j * ed, ed);
                blas::copy(out.o + q * ed, acc_sub + j * ed, ed);
                psum_sub[j] = out.psum[q];
                runmax_sub[j] = out.runmax[q];
            }
            uu = u_sub;
            acc = acc_sub;
            psum = psum_sub;
            runmax = runmax_sub;
        }

        // Phase 1: inner products, query-blocked. Each strip of M_IN
        // rows is loaded once and swept through the whole question
        // batch by the register-tiled kernel (a small packed GEMM);
        // the strip stays L1-resident across the batch, so the chunk
        // streams from memory once per batch, not once per question.
        phase_timer.reset();
        for (size_t s0 = 0; s0 < len; s0 += strip) {
            const size_t s1 = std::min(s0 + strip, len);
            for (size_t i = s0; i < std::min(s1, next_len); ++i)
                prefetchBytes(min_bytes + (c1 + i) * row_bytes,
                              row_bytes, pf);
            switch (prec) {
              case Precision::F32:
                blas::dotBatchMulti(uu, nb, ed, min + (c0 + s0) * ed,
                                    s1 - s0, ed, ed, t + s0, chunk);
                break;
              case Precision::BF16:
                blas::dotBatchMultiBf16(uu, nb, ed,
                                        min16 + (c0 + s0) * ed,
                                        s1 - s0, ed, ed, t + s0, chunk);
                break;
              case Precision::I8:
                for (size_t g0 = s0; g0 < s1;) {
                    const size_t g1 =
                        std::min(s1, kb.i8GroupEnd(c0 + g0) - c0);
                    blas::dotBatchMultiI8(
                        uu, nb, ed, min8 + (c0 + g0) * ed, g1 - g0, ed,
                        ed, kb.minScale(c0 + g0), kb.minZero(c0 + g0),
                        t + g0, chunk);
                    g0 = g1;
                }
                break;
            }
        }
        out.tInner += phase_timer.seconds();

        // Phase 2 (partial softmax): exponential + running sum. In
        // online mode the accumulators are rescaled whenever a new
        // running max appears, keeping exp arguments bounded.
        phase_timer.reset();
        for (size_t q = 0; q < nb; ++q) {
            float *tq = t + q * chunk;
            if (online) {
                const float m =
                    std::max(runmax[q], blas::maxElement(tq, len));
                if (m > runmax[q]) {
                    const float rescale = std::exp(runmax[q] - m);
                    psum[q] *= rescale;
                    blas::scal(rescale, acc + q * ed, ed);
                    runmax[q] = m;
                }
                blas::expShiftInplace(tq, len, m);
            } else {
                blas::expInplace(tq, len);
            }
        }
        out.tSoftmax += phase_timer.seconds();

        // Phase 3: fused weighted sum with optional zero-skipping,
        // query-blocked like phase 1 — a kept M_OUT row is loaded once
        // and accumulated into every question that keeps it. The skip
        // test stays per-(question,row): the kernel folds e into each
        // question's running sum before testing e < th * S_running, so
        // the test is conservative (see header) and decisions are
        // identical to the per-question sweep; skipped rows never
        // touch M_OUT or the accumulator for that question.
        phase_timer.reset();
        for (size_t s0 = 0; s0 < len; s0 += strip) {
            const size_t s1 = std::min(s0 + strip, len);
            for (size_t i = s0; i < std::min(s1, next_len); ++i)
                prefetchBytes(mout_bytes + (c1 + i) * row_bytes,
                              row_bytes, pf);
            switch (prec) {
              case Precision::F32:
                blas::weightedSumSkipMulti(t + s0, nb, chunk,
                                           mout + (c0 + s0) * ed,
                                           s1 - s0, ed, ed, th, psum,
                                           acc, ed, kept, skipped);
                break;
              case Precision::BF16:
                blas::weightedSumSkipMultiBf16(
                    t + s0, nb, chunk, mout16 + (c0 + s0) * ed, s1 - s0,
                    ed, ed, th, psum, acc, ed, kept, skipped);
                break;
              case Precision::I8:
                for (size_t g0 = s0; g0 < s1;) {
                    const size_t g1 =
                        std::min(s1, kb.i8GroupEnd(c0 + g0) - c0);
                    blas::weightedSumSkipMultiI8(
                        t + g0, nb, chunk, mout8 + (c0 + g0) * ed,
                        g1 - g0, ed, ed, kb.moutScale(c0 + g0),
                        kb.moutZero(c0 + g0), th, psum, acc, ed,
                        kept, skipped);
                    g0 = g1;
                }
                break;
            }
        }
        out.tWsum += phase_timer.seconds();

        if (compact) {
            for (size_t j = 0; j < nb; ++j) {
                const size_t q = qsel[j];
                blas::copy(acc_sub + j * ed, out.o + q * ed, ed);
                out.psum[q] = psum_sub[j];
                out.runmax[q] = runmax_sub[j];
            }
        }

        if (cfg.chunkObserver)
            cfg.chunkObserver(worker, c0 / chunk);
    }
}

const uint8_t *
ColumnEngine::selectGroup(const float *u, size_t nq,
                          runtime::Range chunks,
                          const runtime::KernelPlan &plan,
                          runtime::ScratchArena &scratch) const
{
    const size_t ed = kb.dim();
    const size_t n_g = chunks.end - chunks.begin;
    float *scores = scratch.floats(nq * n_g);
    uint8_t *sel = scratch.bytes(nq * n_g);

    // Coarse scoring: the fused bound kernel over this group's chunk
    // summaries, strip-swept with the tuned "bound" plan. Strip
    // boundaries cannot change scores (per-(question, chunk) pairs
    // are independent).
    const float *lo = routeIndex->loData() + chunks.begin * ed;
    const float *hi = routeIndex->hiData() + chunks.begin * ed;
    for (size_t s0 = 0; s0 < n_g; s0 += plan.stripRows) {
        const size_t s1 = std::min(s0 + plan.stripRows, n_g);
        blas::chunkBoundBatch(u, nq, ed, lo + s0 * ed, hi + s0 * ed,
                              s1 - s0, ed, ed, scores + s0, n_g);
    }

    if (cfg.routePolicy == RoutePolicy::TopK) {
        const size_t k = std::min(cfg.routeTopK, n_g);
        if (k >= n_g) {
            std::fill(sel, sel + nq * n_g, uint8_t(1));
            return sel;
        }
        // Exact top-k per question under the total order (score desc,
        // chunk index asc) — the tie-break makes the selected *set* a
        // pure function of the scores, independent of how
        // nth_element permutes within partitions.
        uint32_t *idx = reinterpret_cast<uint32_t *>(
            scratch.bytes(n_g * sizeof(uint32_t)));
        for (size_t q = 0; q < nq; ++q) {
            const float *s = scores + q * n_g;
            uint8_t *m = sel + q * n_g;
            std::fill(m, m + n_g, uint8_t(0));
            for (size_t c = 0; c < n_g; ++c)
                idx[c] = static_cast<uint32_t>(c);
            std::nth_element(idx, idx + k, idx + n_g,
                             [s](uint32_t a, uint32_t b) {
                                 return s[a] != s[b] ? s[a] > s[b]
                                                     : a < b;
                             });
            for (size_t c = 0; c < k; ++c)
                m[idx[c]] = 1;
        }
    } else {
        // BoundThreshold: keep chunks whose bound is within ln(th) of
        // the group's best bound. th = 0 gives cut = -inf and keeps
        // every chunk (exact attention).
        const float lnth = std::log(cfg.routeBoundThreshold);
        for (size_t q = 0; q < nq; ++q) {
            const float *s = scores + q * n_g;
            uint8_t *m = sel + q * n_g;
            float gmax = s[0];
            for (size_t c = 1; c < n_g; ++c)
                gmax = std::max(gmax, s[c]);
            const float cut = gmax + lnth;
            for (size_t c = 0; c < n_g; ++c)
                m[c] = s[c] >= cut ? uint8_t(1) : uint8_t(0);
        }
    }
    return sel;
}

ColumnEngine::RunTotals
ColumnEngine::runGroups(const float *u, size_t nq)
{
    const size_t ns = kb.size();
    const size_t ed = kb.dim();
    mnn_assert(ns > 0, "inference over an empty knowledge base");

    const size_t workers = std::max<size_t>(1, pool.threadCount());
    const size_t n_chunks = (ns + cfg.chunkSize - 1) / cfg.chunkSize;
    const auto &groups = chunkGroups(n_chunks);
    // One tuner lookup per pass, outside the worker loops (the table
    // was warmed at construction, so this is a locked map hit).
    const runtime::KernelPlan plan = resolvePlan(nq);

    // Routing: make sure the chunk-summary index snapshot covers the
    // current KB (lazy build; rebuilt only when the KB grew). Resolved
    // on the caller thread, before workers start.
    const bool routed = routingActive();
    runtime::KernelPlan bound_plan;
    if (routed) {
        if (!routeIndex || routeIndexRows != ns) {
            routeIndex =
                std::make_unique<ChunkSummaryIndex>(kb, cfg.chunkSize);
            routeIndexRows = ns;
        }
        bound_plan = runtime::KernelTuner::instance().plan(
            "bound", kb.dim(), nq);
    }

    // Group partials live in the persistent arena: the previous
    // call's spans are dead, so rewind and claim fresh ones. At a
    // steady batch size the claims replay the same layout over the
    // same retained block — no allocation.
    partialArena.reset();
    partials.resize(groups.size());
    for (Partial &p : partials) {
        p.o = partialArena.floats(nq * ed);
        p.psum = partialArena.doubles(nq);
        p.runmax = partialArena.floats(nq);
        blas::zero(p.o, nq * ed);
        std::fill(p.psum, p.psum + nq, 0.0);
        std::fill(p.runmax, p.runmax + nq,
                  -std::numeric_limits<float>::infinity());
        p.tInner = p.tSoftmax = p.tWsum = 0.0;
    }

    // Per-worker slots, indexed by the unique worker/part id, so the
    // hot path needs no merge lock.
    keptPerWorker.assign(workers, 0);
    skippedPerWorker.assign(workers, 0);
    routedPerWorker.assign(workers, 0);
    bypassedPerWorker.assign(workers, 0);

    auto runGroup = [&](size_t worker, size_t g) {
        const runtime::Range cr = groups[g];
        runtime::ScratchArena &scratch = workerArenas[worker];
        // Any span a previous group claimed on this worker is dead by
        // now; steady state is a pure bump-pointer rewind.
        scratch.reset();
        // Selection is per chunk group: shard s of a ShardedEngine
        // sees exactly group s's rows, so group-local selection is
        // what makes routing compose with sharding bit-identically.
        const uint8_t *sel =
            routed ? selectGroup(u, nq, cr, bound_plan, scratch)
                   : nullptr;
        processChunks(u, nq, cr.begin * cfg.chunkSize,
                      std::min(ns, cr.end * cfg.chunkSize), plan,
                      partials[g], worker, keptPerWorker[worker],
                      skippedPerWorker[worker], scratch, sel,
                      cr.end - cr.begin, routedPerWorker[worker],
                      bypassedPerWorker[worker]);
    };

    if (cfg.schedule == Schedule::Dynamic) {
        runtime::parallelForDynamic(
            pool, groups.size(), 1,
            [&](size_t worker, runtime::Range r) {
                for (size_t g = r.begin; g < r.end; ++g)
                    runGroup(worker, g);
            });
    } else {
        runtime::parallelForParts(
            pool, groups.size(), workers,
            [&](size_t part, runtime::Range r) {
                for (size_t g = r.begin; g < r.end; ++g)
                    runGroup(part, g);
            });
    }

    RunTotals totals;
    totals.nChunks = n_chunks;
    for (size_t w = 0; w < workers; ++w) {
        totals.kept += keptPerWorker[w];
        totals.skipped += skippedPerWorker[w];
        totals.routedRows += routedPerWorker[w];
        totals.bypassed += bypassedPerWorker[w];
    }
    return totals;
}

void
ColumnEngine::inferBatch(const float *u, size_t nq, float *o)
{
    const size_t ed = kb.dim();
    Timer timer;
    const RunTotals totals = runGroups(u, nq);

    // Merge partials in group order (deterministic; see header) and
    // apply the lazy softmax division: O(ed) divisions per question
    // instead of O(ns).
    if (cfg.onlineNormalize) {
        for (size_t q = 0; q < nq; ++q) {
            float gmax = -std::numeric_limits<float>::infinity();
            for (const Partial &p : partials)
                gmax = std::max(gmax, p.runmax[q]);
            double s = 0.0;
            blas::zero(o + q * ed, ed);
            for (const Partial &p : partials) {
                if (p.psum[q] == 0.0)
                    continue;
                const float scale = std::exp(p.runmax[q] - gmax);
                s += p.psum[q] * scale;
                blas::axpy(scale, p.o + q * ed, o + q * ed, ed);
            }
            blas::scal(static_cast<float>(1.0 / s), o + q * ed, ed);
        }
    } else {
        for (size_t q = 0; q < nq; ++q) {
            double s = 0.0;
            blas::zero(o + q * ed, ed);
            for (const Partial &p : partials) {
                s += p.psum[q];
                blas::axpy(1.0f, p.o + q * ed, o + q * ed, ed);
            }
            blas::scal(static_cast<float>(1.0 / s), o + q * ed, ed);
        }
    }

    // The lazy-softmax division happened above; the partial entry
    // point defers it to the gathering merge.
    counterGroup["div_ops"].add(nq * ed);
    recordRunStats(totals, nq, timer.seconds());
}

void
ColumnEngine::inferPartial(const float *u, size_t nq, StreamPartial &out)
{
    const size_t ed = kb.dim();
    Timer timer;
    const RunTotals totals = runGroups(u, nq);

    out.nq = nq;
    out.o.resize(nq * ed);
    out.expSum.resize(nq);
    out.runMax.resize(nq);

    // Merge the group partials in group order with exactly the same
    // operation sequence as inferBatch — minus the division, which
    // the gather side applies after the cross-shard merge. With a
    // single group this is a bit-exact copy of its accumulators
    // (0 + x and 1.0 * x are exact), the property the sharded
    // bit-identity guarantee rests on.
    if (cfg.onlineNormalize) {
        for (size_t q = 0; q < nq; ++q) {
            float gmax = -std::numeric_limits<float>::infinity();
            for (const Partial &p : partials)
                gmax = std::max(gmax, p.runmax[q]);
            double s = 0.0;
            blas::zero(out.o.data() + q * ed, ed);
            for (const Partial &p : partials) {
                if (p.psum[q] == 0.0)
                    continue;
                const float scale = std::exp(p.runmax[q] - gmax);
                s += p.psum[q] * scale;
                blas::axpy(scale, p.o + q * ed, out.o.data() + q * ed,
                           ed);
            }
            out.expSum[q] = s;
            out.runMax[q] = gmax;
        }
    } else {
        for (size_t q = 0; q < nq; ++q) {
            double s = 0.0;
            blas::zero(out.o.data() + q * ed, ed);
            for (const Partial &p : partials) {
                s += p.psum[q];
                blas::axpy(1.0f, p.o + q * ed, out.o.data() + q * ed,
                           ed);
            }
            out.expSum[q] = s;
            out.runMax[q] = -std::numeric_limits<float>::infinity();
        }
    }

    recordRunStats(totals, nq, timer.seconds());
}

void
ColumnEngine::recordRunStats(const RunTotals &totals, size_t nq,
                             double wall_seconds)
{
    // Attribute phase times. With workers, per-group phase seconds
    // overlap in wall-clock; dividing by the worker count gives the
    // effective contribution (exact in the inline/1-thread case used
    // for the Fig. 9a breakdown).
    const size_t workers = std::max<size_t>(1, pool.threadCount());
    double t_inner = 0.0, t_soft = 0.0, t_wsum = 0.0;
    for (const Partial &p : partials) {
        t_inner += p.tInner;
        t_soft += p.tSoftmax;
        t_wsum += p.tWsum;
    }
    const double denom = static_cast<double>(workers);
    times.innerProduct += t_inner / denom;
    times.softmax += t_soft / denom;
    times.weightedSum += t_wsum / denom;
    times.other += std::max(0.0, wall_seconds
                                 - (t_inner + t_soft + t_wsum) / denom);

    // The honest scratch footprint: every arena's retained capacity —
    // chunk tiles on each worker plus all groups' partials.
    size_t scratch_bytes = partialArena.capacityBytes();
    for (const runtime::ScratchArena &a : workerArenas)
        scratch_bytes += a.capacityBytes();
    counterGroup["intermediate_bytes"].reset();
    counterGroup["intermediate_bytes"].add(scratch_bytes);

    counterGroup["chunks_processed"].add(totals.nChunks);
    counterGroup["rows_kept"].add(totals.kept);
    counterGroup["rows_skipped"].add(totals.skipped);
    if (routingActive()) {
        // Inner-product flops reflect the pairs actually streamed;
        // the coarse sweep's own cost (~4 flops per dimension per
        // scored (question, chunk) pair: two muls, a max, an add) is
        // reported separately so savings stay honest.
        counterGroup["flops_inner"].add(2ull * totals.routedRows
                                        * kb.dim());
        counterGroup["rows_routed"].add(totals.routedRows);
        counterGroup["chunks_bypassed"].add(totals.bypassed);
        counterGroup["flops_route"].add(4ull * nq * totals.nChunks
                                        * kb.dim());
    } else {
        counterGroup["flops_inner"].add(2ull * nq * kb.size()
                                        * kb.dim());
    }
    counterGroup["flops_wsum"].add(2ull * totals.kept * kb.dim());
}

} // namespace mnnfast::core
