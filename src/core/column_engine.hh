/**
 * @file
 * The column-based MnnFast inference dataflow (paper Fig. 5b),
 * query-blocked across the batch.
 *
 * The knowledge base is processed in chunks of `chunkSize` sentences.
 * For each chunk the engine computes the inner products, applies the
 * exponential, and immediately accumulates the weighted sum — the
 * softmax division is deferred to a single final pass over the ed-
 * sized output ("lazy softmax"), so per-question temporaries shrink
 * from O(ns) to O(chunkSize) and every chunk's M_IN/M_OUT rows are
 * touched exactly once while hot.
 *
 * The dataflow is *query-blocked*: each chunk is swept in small row
 * strips, and every strip is driven through the whole question batch
 * before the sweep advances — phase 1 is one dotBatchMulti call per
 * strip (a packed GEMM whose register tile reuses each M_IN load
 * across queries) and phase 3 is one weightedSumSkipMulti call per
 * strip (a kept M_OUT row is loaded once and axpy'd into every
 * question's accumulator). A strip therefore streams from DRAM once
 * per *batch* rather than once per question, which is the serving
 * model's t(n) = base + n*per assumption made real. Streaming
 * prefetch of the next chunk is issued strip-by-strip during the
 * phase-1 sweep — exactly once per chunk, independent of the batch
 * size.
 *
 * Skip decisions in phase 3 remain per-(question, row) scalar double
 * arithmetic inside the kernels, so the SIMD and scalar backends make
 * identical decisions and the query-blocked sweep is bit-identical to
 * the per-question path (see kernels.hh).
 *
 * All engine scratch lives in persistent runtime::ScratchArena
 * instances — one per worker slot for the chunk-local e-value tiles,
 * one for the per-group partial accumulators — so repeated
 * inferBatch calls at a steady batch size perform no heap allocation
 * (arena spans are recycled by reset(), never freed).
 *
 * Parallel execution decomposes the chunks into a fixed sequence of
 * contiguous chunk *groups* (cfg.scheduleGroups; default 4x workers).
 * Each group accumulates into its own partial slot and the slots are
 * merged in group order, so results are bit-identical whichever worker
 * ran a group and whenever it ran — the Static/Dynamic scheduling
 * policy (cfg.schedule) affects wall-clock only. Dynamic scheduling
 * pulls groups off a shared cursor, which keeps all workers busy when
 * zero-skipping makes per-chunk cost data-dependent.
 *
 * Options on top of the plain column dataflow:
 *  - streaming:     software-prefetch the next chunk while computing
 *                   the current one (the paper's data streaming).
 *  - skipThreshold: zero-skipping — drop weighted-sum rows whose
 *                   probability is provably below the threshold. The
 *                   single-pass test `e_i < th * S_running` is
 *                   conservative: S_running <= S_final, so every
 *                   skipped row satisfies p_i < th exactly; some rows
 *                   below threshold are kept (never the reverse), so
 *                   accuracy can only be better than the paper's
 *                   post-hoc skip at equal threshold.
 *  - onlineNormalize: numerically-safe running-max rescaling (see
 *                   EngineConfig).
 *  - routePolicy:   coarse-then-fine candidate selection (DESIGN.md
 *                   §11). A lazily built ChunkSummaryIndex gives every
 *                   chunk a per-dimension [lo, hi] envelope; before a
 *                   chunk group streams, the fused chunkBoundBatch
 *                   kernel scores each chunk's max-inner-product upper
 *                   bound for every question, and the policy (top-k or
 *                   bound-threshold, per group — see RoutePolicy)
 *                   picks the candidate set. Chunks no question
 *                   selected are bypassed entirely (no stream, no
 *                   prefetch, no observer); chunks a strict subset
 *                   selected run the same three phases over a
 *                   *compacted* question sub-batch (gather the
 *                   selected questions' state, run the kernels at the
 *                   sub-batch size, scatter back) — exact per
 *                   question, because the kernels fix a per-
 *                   (question, row) accumulation order that is
 *                   independent of which other questions share the
 *                   call. Selection only decides which chunks stream;
 *                   it never changes the value a streamed chunk
 *                   contributes, so a selection that keeps every
 *                   chunk (k >= group chunks, or threshold 0) is
 *                   bit-identical to RoutePolicy::None.
 */

#ifndef MNNFAST_CORE_COLUMN_ENGINE_HH
#define MNNFAST_CORE_COLUMN_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/chunk_summary_index.hh"
#include "core/config.hh"
#include "core/engine.hh"
#include "runtime/kernel_tuner.hh"
#include "runtime/parallel_for.hh"
#include "runtime/scratch_arena.hh"
#include "runtime/thread_pool.hh"

namespace mnnfast::core {

/**
 * The merged online-softmax state of one engine pass over (a shard
 * of) the knowledge base, *before* the lazy-softmax division: per
 * question a (rescaled) weighted-sum accumulator, a (rescaled)
 * running exp-sum, and the running maximum the rescaling is relative
 * to (-inf when onlineNormalize is off — the plain paper form never
 * shifts). Partials from disjoint sentence ranges merge exactly:
 *
 *   m  = max(m_a, m_b)
 *   S  = S_a * e^(m_a - m) + S_b * e^(m_b - m)
 *   o  = o_a * e^(m_a - m) + o_b * e^(m_b - m)
 *
 * which is the same algebra ColumnEngine already applies to its
 * per-group partials. Produced by ColumnEngine::inferPartial and
 * consumed by ShardedEngine's canonical shard-order merge.
 */
struct StreamPartial
{
    std::vector<float> o;       ///< nq x ed weighted-sum accumulators
    std::vector<double> expSum; ///< nq running exp sums
    std::vector<float> runMax;  ///< nq running maxima
    size_t nq = 0;              ///< questions this partial covers
};

/** Column-based (chunked, lazy-softmax) engine. See file header. */
class ColumnEngine : public InferenceEngine
{
  public:
    /**
     * @param kb  Knowledge base; must outlive the engine.
     * @param cfg Engine tunables (chunk size, streaming, skipping,
     *            threads, scheduling, online normalization). The
     *            chunk size is clamped to the KB size at construction
     *            (when the KB is non-empty) and must be nonzero.
     */
    ColumnEngine(const KnowledgeBase &kb, const EngineConfig &cfg);

    void inferBatch(const float *u, size_t nq, float *o) override;

    /**
     * Run the same chunked pass as inferBatch but stop before the
     * lazy-softmax division, leaving the merged online-softmax state
     * in `out` (buffers resized as needed; reused capacity makes the
     * steady state allocation-free). This is the scatter half of
     * sharded inference: partials from engines over disjoint shards
     * merge exactly (see StreamPartial), and the gather side applies
     * the single deferred division.
     *
     * When this engine's group decomposition has exactly one group
     * (scheduleGroups = 1), `out` *is* that group's accumulator state
     * bit-for-bit — the property ShardedEngine builds its
     * bit-identity guarantee on.
     */
    void inferPartial(const float *u, size_t nq, StreamPartial &out);

    const char *name() const override;

    /** The effective chunk size after clamping to the KB size. */
    size_t chunkSize() const { return cfg.chunkSize; }

  private:
    /**
     * Per-group accumulation state for a span of chunks. The buffers
     * are arena spans claimed at the start of each inferBatch (valid
     * for that call only); the struct itself is reused across calls.
     */
    struct Partial
    {
        float *o = nullptr;       ///< nq x ed weighted-sum accumulator
        double *psum = nullptr;   ///< nq running sums of exp values
        float *runmax = nullptr;  ///< nq running maxima (online mode)
        double tInner = 0.0;      ///< seconds in inner products
        double tSoftmax = 0.0;    ///< seconds in exp/rescale
        double tWsum = 0.0;       ///< seconds in weighted sum
    };

    /**
     * Stream the chunks of rows [row_begin, row_end) into `out`.
     * `sel`, when non-null, is this group's routing mask —
     * sel[q * sel_stride + ci] for group-local chunk ci — and
     * `routed_rows` / `bypassed` accumulate the (question, row) pairs
     * actually streamed and the chunks skipped outright. The caller
     * resets `scratch` before any claims tied to this group.
     */
    void processChunks(const float *u, size_t nq, size_t row_begin,
                       size_t row_end, const runtime::KernelPlan &plan,
                       Partial &out, size_t worker, uint64_t &kept,
                       uint64_t &skipped, runtime::ScratchArena &scratch,
                       const uint8_t *sel, size_t sel_stride,
                       uint64_t &routed_rows, uint64_t &bypassed) const;

    /** True when a coarse selection policy is configured. */
    bool routingActive() const
    {
        return cfg.routePolicy != RoutePolicy::None;
    }

    /**
     * Score one chunk group's summaries for the batch and apply the
     * selection policy; returns the nq x (group chunk count) mask,
     * claimed from `scratch` (valid until its next reset).
     */
    const uint8_t *selectGroup(const float *u, size_t nq,
                               runtime::Range chunks,
                               const runtime::KernelPlan &plan,
                               runtime::ScratchArena &scratch) const;

    /**
     * The (strip rows, prefetch stride) plan for a batch of nq
     * questions: config overrides where set, the process-wide tuned
     * plan otherwise. Resolved once per runGroups call, outside the
     * worker loops, so the tuner lock is never taken on the hot path.
     */
    runtime::KernelPlan resolvePlan(size_t nq) const;

    /** Group decomposition for the current KB size (cached). */
    const std::vector<runtime::Range> &chunkGroups(size_t n_chunks);

    /** Zero-skip and routing totals of one pass over the groups. */
    struct RunTotals
    {
        uint64_t kept = 0;
        uint64_t skipped = 0;
        size_t nChunks = 0;
        /** (question, row) pairs streamed in phase 1 (routing only). */
        uint64_t routedRows = 0;
        /** Chunks bypassed because no question selected them. */
        uint64_t bypassed = 0;
    };

    /**
     * The shared pass: schedule every chunk group across the pool,
     * leaving per-group accumulators in `partials`. inferBatch merges
     * them with the final division; inferPartial merges them into a
     * StreamPartial without it.
     */
    RunTotals runGroups(const float *u, size_t nq);

    /** Phase-time/counter accounting shared by both entry points. */
    void recordRunStats(const RunTotals &totals, size_t nq,
                        double wall_seconds);

    const KnowledgeBase &kb;
    EngineConfig cfg;
    runtime::ThreadPool pool;

    // Persistent serving-loop state: sized once (or on KB growth),
    // recycled every call — see "scratch arena" in the file header.
    std::vector<runtime::ScratchArena> workerArenas; ///< chunk tiles
    runtime::ScratchArena partialArena;              ///< group partials
    std::vector<Partial> partials;
    std::vector<uint64_t> keptPerWorker;
    std::vector<uint64_t> skippedPerWorker;
    std::vector<uint64_t> routedPerWorker;
    std::vector<uint64_t> bypassedPerWorker;
    std::vector<runtime::Range> groupCache;
    size_t groupCacheChunks = 0; ///< n_chunks groupCache was built for

    // Coarse routing state: the chunk-summary index, built lazily on
    // the first routed pass and rebuilt when the KB grows (the index
    // is a snapshot of routeIndexRows rows).
    std::unique_ptr<ChunkSummaryIndex> routeIndex;
    size_t routeIndexRows = 0;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_COLUMN_ENGINE_HH
