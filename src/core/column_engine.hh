/**
 * @file
 * The column-based MnnFast inference dataflow (paper Fig. 5b).
 *
 * The knowledge base is processed in chunks of `chunkSize` sentences.
 * For each chunk the engine computes the inner products, applies the
 * exponential, and immediately accumulates the weighted sum — the
 * softmax division is deferred to a single final pass over the ed-
 * sized output ("lazy softmax"), so per-question temporaries shrink
 * from O(ns) to O(chunkSize) and every chunk's M_IN/M_OUT rows are
 * touched exactly once while hot.
 *
 * Options on top of the plain column dataflow:
 *  - streaming:     software-prefetch the next chunk while computing
 *                   the current one (the paper's data streaming).
 *  - skipThreshold: zero-skipping — drop weighted-sum rows whose
 *                   probability is provably below the threshold. The
 *                   single-pass test `e_i < th * S_running` is
 *                   conservative: S_running <= S_final, so every
 *                   skipped row satisfies p_i < th exactly; some rows
 *                   below threshold are kept (never the reverse), so
 *                   accuracy can only be better than the paper's
 *                   post-hoc skip at equal threshold.
 *  - onlineNormalize: numerically-safe running-max rescaling (see
 *                   EngineConfig).
 */

#ifndef MNNFAST_CORE_COLUMN_ENGINE_HH
#define MNNFAST_CORE_COLUMN_ENGINE_HH

#include <vector>

#include "core/config.hh"
#include "core/engine.hh"
#include "runtime/thread_pool.hh"

namespace mnnfast::core {

/** Column-based (chunked, lazy-softmax) engine. See file header. */
class ColumnEngine : public InferenceEngine
{
  public:
    /**
     * @param kb  Knowledge base; must outlive the engine.
     * @param cfg Engine tunables (chunk size, streaming, skipping,
     *            threads, online normalization).
     */
    ColumnEngine(const KnowledgeBase &kb, const EngineConfig &cfg);

    void inferBatch(const float *u, size_t nq, float *o) override;

    const char *name() const override;

    /** The effective chunk size after clamping to the KB size. */
    size_t chunkSize() const { return cfg.chunkSize; }

  private:
    /** Per-worker accumulation state for a span of chunks. */
    struct Partial
    {
        std::vector<float> o;      ///< nq x ed weighted-sum accumulator
        std::vector<double> psum;  ///< nq running sums of exp values
        std::vector<float> runmax; ///< nq running maxima (online mode)
        double tInner = 0.0;       ///< seconds in inner products
        double tSoftmax = 0.0;     ///< seconds in exp/rescale
        double tWsum = 0.0;        ///< seconds in weighted sum
    };

    void processChunks(const float *u, size_t nq, size_t row_begin,
                       size_t row_end, Partial &out, uint64_t &kept,
                       uint64_t &skipped) const;

    const KnowledgeBase &kb;
    EngineConfig cfg;
    runtime::ThreadPool pool;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_COLUMN_ENGINE_HH
