/**
 * @file
 * The column-based MnnFast inference dataflow (paper Fig. 5b).
 *
 * The knowledge base is processed in chunks of `chunkSize` sentences.
 * For each chunk the engine computes the inner products, applies the
 * exponential, and immediately accumulates the weighted sum — the
 * softmax division is deferred to a single final pass over the ed-
 * sized output ("lazy softmax"), so per-question temporaries shrink
 * from O(ns) to O(chunkSize) and every chunk's M_IN/M_OUT rows are
 * touched exactly once while hot.
 *
 * The three phases run on the fused BLAS kernels: dotBatch (one query
 * row against a strip of M_IN rows, amortizing the query load),
 * expInplace/expShiftInplace (vectorized exponential), and
 * weightedSumSkip (skip test + axpy fused, so a skipped row never
 * touches M_OUT).
 *
 * Parallel execution decomposes the chunks into a fixed sequence of
 * contiguous chunk *groups* (cfg.scheduleGroups; default 4x workers).
 * Each group accumulates into its own partial slot and the slots are
 * merged in group order, so results are bit-identical whichever worker
 * ran a group and whenever it ran — the Static/Dynamic scheduling
 * policy (cfg.schedule) affects wall-clock only. Dynamic scheduling
 * pulls groups off a shared cursor, which keeps all workers busy when
 * zero-skipping makes per-chunk cost data-dependent.
 *
 * Options on top of the plain column dataflow:
 *  - streaming:     software-prefetch the next chunk while computing
 *                   the current one (the paper's data streaming).
 *  - skipThreshold: zero-skipping — drop weighted-sum rows whose
 *                   probability is provably below the threshold. The
 *                   single-pass test `e_i < th * S_running` is
 *                   conservative: S_running <= S_final, so every
 *                   skipped row satisfies p_i < th exactly; some rows
 *                   below threshold are kept (never the reverse), so
 *                   accuracy can only be better than the paper's
 *                   post-hoc skip at equal threshold.
 *  - onlineNormalize: numerically-safe running-max rescaling (see
 *                   EngineConfig).
 */

#ifndef MNNFAST_CORE_COLUMN_ENGINE_HH
#define MNNFAST_CORE_COLUMN_ENGINE_HH

#include <vector>

#include "core/config.hh"
#include "core/engine.hh"
#include "runtime/thread_pool.hh"

namespace mnnfast::core {

/** Column-based (chunked, lazy-softmax) engine. See file header. */
class ColumnEngine : public InferenceEngine
{
  public:
    /**
     * @param kb  Knowledge base; must outlive the engine.
     * @param cfg Engine tunables (chunk size, streaming, skipping,
     *            threads, scheduling, online normalization).
     */
    ColumnEngine(const KnowledgeBase &kb, const EngineConfig &cfg);

    void inferBatch(const float *u, size_t nq, float *o) override;

    const char *name() const override;

    /** The effective chunk size after clamping to the KB size. */
    size_t chunkSize() const { return cfg.chunkSize; }

  private:
    /** Per-group accumulation state for a span of chunks. */
    struct Partial
    {
        std::vector<float> o;      ///< nq x ed weighted-sum accumulator
        std::vector<double> psum;  ///< nq running sums of exp values
        std::vector<float> runmax; ///< nq running maxima (online mode)
        double tInner = 0.0;       ///< seconds in inner products
        double tSoftmax = 0.0;     ///< seconds in exp/rescale
        double tWsum = 0.0;        ///< seconds in weighted sum
    };

    void processChunks(const float *u, size_t nq, size_t row_begin,
                       size_t row_end, Partial &out, size_t worker,
                       uint64_t &kept, uint64_t &skipped) const;

    const KnowledgeBase &kb;
    EngineConfig cfg;
    runtime::ThreadPool pool;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_COLUMN_ENGINE_HH
