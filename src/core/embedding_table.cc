#include "core/embedding_table.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace mnnfast::core {

EmbeddingTable::EmbeddingTable(size_t vocab_size, size_t embedding_dim)
    : vocab(vocab_size), ed(embedding_dim), table(vocab_size * embedding_dim)
{
    if (vocab == 0 || ed == 0)
        fatal("EmbeddingTable dimensions must be nonzero");
}

void
EmbeddingTable::randomInit(uint64_t seed, float scale)
{
    XorShiftRng rng(seed);
    for (float &x : table)
        x = rng.uniformRange(-scale, scale);
}

void
EmbeddingTable::loadFrom(const std::vector<float> &flat)
{
    if (flat.size() != vocab * ed) {
        fatal("EmbeddingTable::loadFrom shape mismatch: %zu vs %zu",
              flat.size(), vocab * ed);
    }
    for (size_t i = 0; i < flat.size(); ++i)
        table[i] = flat[i];
}

const float *
EmbeddingTable::row(data::WordId id) const
{
    mnn_assert(id < vocab, "word id out of embedding-table range");
    return table.data() + static_cast<size_t>(id) * ed;
}

float *
EmbeddingTable::row(data::WordId id)
{
    mnn_assert(id < vocab, "word id out of embedding-table range");
    return table.data() + static_cast<size_t>(id) * ed;
}

} // namespace mnnfast::core
