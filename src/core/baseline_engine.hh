/**
 * @file
 * The baseline MemNN inference dataflow (paper Fig. 5a).
 *
 * Layer-at-a-time execution with fully materialized intermediate
 * vectors, mirroring the paper's OpenBLAS-based baseline:
 *
 *   step 1   T_IN  = u x M_IN          (inner product, spilled)
 *   step 2-1 P_exp = exp(T_IN)         (spilled)
 *   step 2-2 P     = P_exp / sum(P_exp) (spilled; ns divisions)
 *   step 3   o     = P x M_OUT          (weighted sum)
 *
 * The three temporaries are deliberately kept as separate buffers —
 * their footprint (nq x ns floats each) is exactly the data-spill
 * behaviour the column-based algorithm removes.
 */

#ifndef MNNFAST_CORE_BASELINE_ENGINE_HH
#define MNNFAST_CORE_BASELINE_ENGINE_HH

#include <vector>

#include "core/config.hh"
#include "core/engine.hh"
#include "runtime/scratch_arena.hh"
#include "runtime/thread_pool.hh"

namespace mnnfast::core {

/** Layer-at-a-time reference engine. See file header. */
class BaselineEngine : public InferenceEngine
{
  public:
    /**
     * @param kb  Knowledge base; must outlive the engine.
     * @param cfg Engine tunables. chunkSize/streaming/skipThreshold
     *            are ignored: the baseline has no chunking, no
     *            streaming, and (per the paper) no zero-skipping.
     */
    BaselineEngine(const KnowledgeBase &kb, const EngineConfig &cfg);

    void inferBatch(const float *u, size_t nq, float *o) override;

    const char *name() const override { return "baseline"; }

  private:
    const KnowledgeBase &kb;
    EngineConfig cfg;
    runtime::ThreadPool pool;

    // Materialized intermediates (nq x ns each), as in Fig. 5a.
    std::vector<float> tin;
    std::vector<float> pexp;
    std::vector<float> p;

    // Step-3 per-part accumulators, recycled across calls.
    runtime::ScratchArena scratch;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_BASELINE_ENGINE_HH
