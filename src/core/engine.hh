/**
 * @file
 * The inference-engine interface: one "input memory representation +
 * output memory representation" stage (paper Fig. 2), i.e. the
 * computation o = softmax(u x M_IN) * M_OUT, for a batch of questions.
 */

#ifndef MNNFAST_CORE_ENGINE_HH
#define MNNFAST_CORE_ENGINE_HH

#include <cstddef>

#include "core/knowledge_base.hh"
#include "stats/counter.hh"
#include "util/timer.hh"

namespace mnnfast::core {

/**
 * Wall-clock attribution of one engine's work to the paper's operator
 * categories (Fig. 9a uses exactly these).
 */
struct OpBreakdown
{
    double innerProduct = 0.0; ///< u x M_IN dot products
    double softmax = 0.0;      ///< exp / sum / normalize work
    double weightedSum = 0.0;  ///< p-weighted M_OUT accumulation
    double other = 0.0;        ///< merge / final division / misc

    double
    total() const
    {
        return innerProduct + softmax + weightedSum + other;
    }

    void
    clear()
    {
        innerProduct = softmax = weightedSum = other = 0.0;
    }
};

/**
 * Abstract inference engine over one knowledge base.
 *
 * Engines never own the KnowledgeBase; the caller guarantees it
 * outlives the engine. Engines are not thread-safe for concurrent
 * infer() calls on the same instance (they own scratch buffers), but
 * internally parallelize according to their EngineConfig.
 */
class InferenceEngine
{
  public:
    virtual ~InferenceEngine() = default;

    /**
     * Compute response vectors for a batch of question states.
     *
     * @param u   nq x ed row-major question state vectors.
     * @param nq  Number of questions in the batch.
     * @param o   nq x ed row-major output; overwritten.
     */
    virtual void inferBatch(const float *u, size_t nq, float *o) = 0;

    /** Single-question convenience wrapper. */
    void infer(const float *u, float *o) { inferBatch(u, 1, o); }

    /** Engine display name. */
    virtual const char *name() const = 0;

    /** Per-operator latency attribution for the most recent calls. */
    const OpBreakdown &breakdown() const { return times; }

    /** Reset latency attribution. */
    void clearBreakdown() { times.clear(); }

    /**
     * Event counters. Column engines expose at least:
     * "rows_kept", "rows_skipped", "chunks_processed",
     * "intermediate_bytes" (peak per-question temporary footprint).
     */
    stats::CounterGroup &counters() { return counterGroup; }
    const stats::CounterGroup &counters() const { return counterGroup; }

  protected:
    OpBreakdown times;
    stats::CounterGroup counterGroup;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_ENGINE_HH
