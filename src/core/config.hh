/**
 * @file
 * Configuration types shared by the inference engines.
 */

#ifndef MNNFAST_CORE_CONFIG_HH
#define MNNFAST_CORE_CONFIG_HH

#include <cstddef>
#include <functional>

namespace mnnfast::core {

/** Which inference dataflow to run. */
enum class EngineKind {
    /** Layer-at-a-time with full intermediate vectors (paper Fig 5a). */
    Baseline,
    /** Column-based lazy-softmax chunking (paper Fig 5b). */
    Column,
    /** Column-based plus chunk streaming (prefetch). */
    ColumnStreaming,
    /** Column + streaming + zero-skipping: full MnnFast. */
    MnnFast,
};

/** Human-readable engine name. */
const char *engineKindName(EngineKind kind);

/**
 * How chunk groups are handed to pool workers.
 *
 * The column engine always decomposes its chunks into the *same* fixed
 * sequence of contiguous groups (a pure function of the chunk count,
 * worker count, and scheduleGroups) and merges group results in group
 * order — so the schedule decides only *which worker runs which group
 * when*, never the floating-point result. Static and Dynamic produce
 * bit-identical outputs.
 */
enum class Schedule {
    /** Pre-assign contiguous spans of groups, one span per worker. */
    Static,
    /**
     * Workers claim the next group from a shared atomic cursor.
     * Self-balancing when zero-skipping makes per-chunk cost
     * data-dependent; the default.
     */
    Dynamic,
};

/**
 * Coarse-then-fine candidate selection over KB chunks (DESIGN.md §11).
 *
 * When enabled, the column engine builds a core::ChunkSummaryIndex
 * over M_IN (lazily, rebuilt when the KB grows) and scores every chunk
 * per question with the envelope's max-inner-product upper bound
 * before streaming; only selected (question, chunk) pairs run the
 * fused phase-1..3 kernels. Selection is *per chunk group* (the same
 * fixed group decomposition the scheduler uses), which is what makes
 * routing compose bit-identically with ShardedEngine: shard s sees
 * exactly group s's rows and therefore makes exactly group s's
 * selection. With threads = 0 and scheduleGroups defaulted, one group
 * spans the whole KB and selection is global.
 */
enum class RoutePolicy {
    /** Stream every chunk (exact attention; the default). */
    None,
    /**
     * Per question, stream the routeTopK highest-bound chunks of each
     * chunk group (ties broken toward the lower chunk index). k >=
     * group chunk count streams everything — bit-identical to None.
     */
    TopK,
    /**
     * Per question, stream chunks whose bound is within
     * ln(routeBoundThreshold) of the group's best bound — i.e. chunks
     * that could still hold a row with softmax weight at least
     * routeBoundThreshold times the (bound-estimated) max. Threshold
     * 0 keeps every chunk — bit-identical to None.
     */
    BoundThreshold,
};

/** Human-readable routing-policy name. */
const char *routePolicyName(RoutePolicy policy);

/** Tunables of a single inference engine instance. */
struct EngineConfig
{
    /** Sentences per chunk (column-based engines). Paper: 1000. */
    size_t chunkSize = 1000;
    /**
     * Zero-skipping threshold on the normalized probability; 0
     * disables skipping. Paper: 0.1.
     */
    float skipThreshold = 0.0f;
    /** Enable software prefetch of the next chunk (streaming). */
    bool streaming = false;
    /**
     * Number of worker threads (0 = run inline on the caller).
     * Column engines parallelize across chunks; the baseline engine
     * parallelizes each layer step across rows, as in the paper's
     * PThread implementation.
     */
    size_t threads = 0;
    /**
     * Online max-rescaling inside the lazy softmax. The paper's
     * single-pass formulation divides by sum(e^{x_i}) without a max
     * guard; enabling this keeps the single-pass/streaming property
     * but rescales accumulators when a new running max appears, which
     * is algebraically equivalent and numerically safe for large
     * logits. Off by default for paper fidelity.
     */
    bool onlineNormalize = false;
    /** Chunk-group scheduling policy (column engine). */
    Schedule schedule = Schedule::Dynamic;
    /**
     * Rows per kernel call in the column engine's strip sweeps. 0
     * (the default) defers to the autotuned plan from
     * runtime::KernelTuner. A nonzero override must be a positive
     * multiple of 4 — the kernels' register-group width — and is
     * validated at engine construction (fatal otherwise): a silently
     * rounded pin would run a different strip size than the caller
     * benchmarked. Any valid override yields output bit-identical to
     * every other strip choice.
     */
    size_t stripRows = 0;
    /**
     * Streaming-prefetch pacing: one prefetch instruction every this
     * many cache lines of the next chunk's rows. -1 (the default)
     * defers to the autotuned plan; 0 issues no prefetches. Positive
     * pins must come from the tuner's candidate set
     * (runtime::kPrefetchStrideCandidates), validated at engine
     * construction (fatal otherwise) so pinned configurations stay
     * comparable with tuned ones. Pacing never affects results, only
     * wall-clock.
     */
    int prefetchStride = -1;
    /**
     * Number of chunk groups the column engine decomposes the KB into
     * (clamped to the chunk count). 0 = auto: 4x the worker count, so
     * dynamic scheduling has slack to rebalance while per-group merge
     * state stays small. Must be equal between two runs for their
     * outputs to be bit-identical.
     */
    size_t scheduleGroups = 0;
    /**
     * Optional instrumentation hook, invoked from worker threads once
     * per processed chunk with the executing worker slot (unique among
     * concurrent workers) and the global chunk index. Used by tests to
     * observe scheduling behaviour and by callers that want progress
     * reporting; must be thread-safe. Leave empty to disable.
     */
    std::function<void(size_t worker, size_t chunk)> chunkObserver;
    /**
     * Coarse-then-fine candidate selection policy (see RoutePolicy).
     * None streams the full KB; TopK/BoundThreshold score chunks with
     * the summary-index bound and stream only candidates. Routing
     * composes with every other knob (precision, zskip, streaming,
     * threads, schedule, sharding).
     */
    RoutePolicy routePolicy = RoutePolicy::None;
    /**
     * Chunks streamed per question *per chunk group* under
     * RoutePolicy::TopK. 0 under TopK is a configuration error
     * (fatal at construction); values >= the group's chunk count
     * stream everything.
     */
    size_t routeTopK = 0;
    /**
     * Relative bound threshold in [0, 1] under
     * RoutePolicy::BoundThreshold: a chunk streams iff its bound
     * score >= group best bound + ln(threshold). 1 keeps only chunks
     * tied with the best bound; 0 keeps everything (ln 0 = -inf —
     * exact attention); values outside [0, 1] are fatal at
     * construction.
     */
    float routeBoundThreshold = 0.0f;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_CONFIG_HH
