/**
 * @file
 * Configuration types shared by the inference engines.
 */

#ifndef MNNFAST_CORE_CONFIG_HH
#define MNNFAST_CORE_CONFIG_HH

#include <cstddef>

namespace mnnfast::core {

/** Which inference dataflow to run. */
enum class EngineKind {
    /** Layer-at-a-time with full intermediate vectors (paper Fig 5a). */
    Baseline,
    /** Column-based lazy-softmax chunking (paper Fig 5b). */
    Column,
    /** Column-based plus chunk streaming (prefetch). */
    ColumnStreaming,
    /** Column + streaming + zero-skipping: full MnnFast. */
    MnnFast,
};

/** Human-readable engine name. */
const char *engineKindName(EngineKind kind);

/** Tunables of a single inference engine instance. */
struct EngineConfig
{
    /** Sentences per chunk (column-based engines). Paper: 1000. */
    size_t chunkSize = 1000;
    /**
     * Zero-skipping threshold on the normalized probability; 0
     * disables skipping. Paper: 0.1.
     */
    float skipThreshold = 0.0f;
    /** Enable software prefetch of the next chunk (streaming). */
    bool streaming = false;
    /**
     * Number of worker threads (0 = run inline on the caller).
     * Column engines parallelize across chunks; the baseline engine
     * parallelizes each layer step across rows, lock-step, as in the
     * paper's PThread implementation.
     */
    size_t threads = 0;
    /**
     * Online max-rescaling inside the lazy softmax. The paper's
     * single-pass formulation divides by sum(e^{x_i}) without a max
     * guard; enabling this keeps the single-pass/streaming property
     * but rescales accumulators when a new running max appears, which
     * is algebraically equivalent and numerically safe for large
     * logits. Off by default for paper fidelity.
     */
    bool onlineNormalize = false;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_CONFIG_HH
