/**
 * @file
 * Configuration types shared by the inference engines.
 */

#ifndef MNNFAST_CORE_CONFIG_HH
#define MNNFAST_CORE_CONFIG_HH

#include <cstddef>
#include <functional>

namespace mnnfast::core {

/** Which inference dataflow to run. */
enum class EngineKind {
    /** Layer-at-a-time with full intermediate vectors (paper Fig 5a). */
    Baseline,
    /** Column-based lazy-softmax chunking (paper Fig 5b). */
    Column,
    /** Column-based plus chunk streaming (prefetch). */
    ColumnStreaming,
    /** Column + streaming + zero-skipping: full MnnFast. */
    MnnFast,
};

/** Human-readable engine name. */
const char *engineKindName(EngineKind kind);

/**
 * How chunk groups are handed to pool workers.
 *
 * The column engine always decomposes its chunks into the *same* fixed
 * sequence of contiguous groups (a pure function of the chunk count,
 * worker count, and scheduleGroups) and merges group results in group
 * order — so the schedule decides only *which worker runs which group
 * when*, never the floating-point result. Static and Dynamic produce
 * bit-identical outputs.
 */
enum class Schedule {
    /** Pre-assign contiguous spans of groups, one span per worker. */
    Static,
    /**
     * Workers claim the next group from a shared atomic cursor.
     * Self-balancing when zero-skipping makes per-chunk cost
     * data-dependent; the default.
     */
    Dynamic,
};

/** Tunables of a single inference engine instance. */
struct EngineConfig
{
    /** Sentences per chunk (column-based engines). Paper: 1000. */
    size_t chunkSize = 1000;
    /**
     * Zero-skipping threshold on the normalized probability; 0
     * disables skipping. Paper: 0.1.
     */
    float skipThreshold = 0.0f;
    /** Enable software prefetch of the next chunk (streaming). */
    bool streaming = false;
    /**
     * Number of worker threads (0 = run inline on the caller).
     * Column engines parallelize across chunks; the baseline engine
     * parallelizes each layer step across rows, as in the paper's
     * PThread implementation.
     */
    size_t threads = 0;
    /**
     * Online max-rescaling inside the lazy softmax. The paper's
     * single-pass formulation divides by sum(e^{x_i}) without a max
     * guard; enabling this keeps the single-pass/streaming property
     * but rescales accumulators when a new running max appears, which
     * is algebraically equivalent and numerically safe for large
     * logits. Off by default for paper fidelity.
     */
    bool onlineNormalize = false;
    /** Chunk-group scheduling policy (column engine). */
    Schedule schedule = Schedule::Dynamic;
    /**
     * Rows per kernel call in the column engine's strip sweeps. 0
     * (the default) defers to the autotuned plan from
     * runtime::KernelTuner. Nonzero overrides are rounded down to a
     * multiple of 4 — the kernels' register-group width — with a
     * floor of 4, so any override still yields output bit-identical
     * to every other strip choice.
     */
    size_t stripRows = 0;
    /**
     * Streaming-prefetch pacing: one prefetch instruction every this
     * many cache lines of the next chunk's rows. -1 (the default)
     * defers to the autotuned plan; 0 issues no prefetches. Pacing
     * never affects results, only wall-clock.
     */
    int prefetchStride = -1;
    /**
     * Number of chunk groups the column engine decomposes the KB into
     * (clamped to the chunk count). 0 = auto: 4x the worker count, so
     * dynamic scheduling has slack to rebalance while per-group merge
     * state stays small. Must be equal between two runs for their
     * outputs to be bit-identical.
     */
    size_t scheduleGroups = 0;
    /**
     * Optional instrumentation hook, invoked from worker threads once
     * per processed chunk with the executing worker slot (unique among
     * concurrent workers) and the global chunk index. Used by tests to
     * observe scheduling behaviour and by callers that want progress
     * reporting; must be thread-safe. Leave empty to disable.
     */
    std::function<void(size_t worker, size_t chunk)> chunkObserver;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_CONFIG_HH
