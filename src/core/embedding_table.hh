/**
 * @file
 * The embedding matrix (dictionary) used by the embedding operation.
 *
 * Stored row-major (vocab x ed) so a word lookup is a single O(1)
 * contiguous row access, exactly as the paper's CPU implementation
 * ("we implement the embedding matrix as an array to access embedding
 * vectors in O(1)").
 */

#ifndef MNNFAST_CORE_EMBEDDING_TABLE_HH
#define MNNFAST_CORE_EMBEDDING_TABLE_HH

#include <cstdint>
#include <vector>

#include "data/vocabulary.hh"
#include "util/aligned_buffer.hh"

namespace mnnfast::core {

/** Row-major (vocab x ed) embedding matrix with O(1) row lookup. */
class EmbeddingTable
{
  public:
    /** Allocate a zeroed (vocab x ed) table. */
    EmbeddingTable(size_t vocab_size, size_t embedding_dim);

    /** Fill with uniform random values in [-scale, scale]. */
    void randomInit(uint64_t seed, float scale = 0.1f);

    /** Copy rows from a flat row-major matrix of identical shape. */
    void loadFrom(const std::vector<float> &flat);

    /** Pointer to word `id`'s embedding row (ed floats). */
    const float *row(data::WordId id) const;

    /** Mutable row access. */
    float *row(data::WordId id);

    size_t vocabSize() const { return vocab; }
    size_t dim() const { return ed; }

    /** Total size in bytes (for cache-footprint reporting). */
    size_t bytes() const { return vocab * ed * sizeof(float); }

  private:
    size_t vocab;
    size_t ed;
    AlignedBuffer<float> table;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_EMBEDDING_TABLE_HH
