/**
 * @file
 * The input/output memory (M_IN / M_OUT) of a memory network: the
 * embedded story sentences the inference operation reasons over.
 */

#ifndef MNNFAST_CORE_KNOWLEDGE_BASE_HH
#define MNNFAST_CORE_KNOWLEDGE_BASE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned_buffer.hh"

namespace mnnfast::core {

/**
 * Storage precision of the knowledge-base matrices. The KB stream is
 * the dominant memory traffic of MemNN inference, so halving the
 * element size halves the bytes every chunk pulls from DRAM; BF16
 * stores rows as bfloat16 (top 16 bits of the fp32 pattern,
 * nearest-even rounded at ingest) and the fused bf16 kernels
 * upconvert on the fly. I8 halves the stream again: rows are stored
 * as int8 under a per-chunk affine code (x ~ scale*q + zero, q in
 * [-128, 127]) and the fused i8 kernels dequantize on the fly. F32 is
 * the default and the accuracy reference. See DESIGN.md §7 and §10.
 */
enum class Precision {
    F32,  ///< fp32 rows (reference; exact)
    BF16, ///< bfloat16 rows (half the bytes, ~2^-8 relative rounding)
    I8,   ///< int8 rows (quarter the bytes, per-chunk affine code)
};

/** Display name: "f32", "bf16" or "i8". */
const char *precisionName(Precision p);

/** Bytes per stored element: 4 (F32), 2 (BF16) or 1 (I8). */
size_t precisionBytes(Precision p);

/**
 * Default rows per int8 quantization chunk. Matches the default
 * EngineConfig::chunkSize so one engine chunk reads one scale/zero
 * pair, but any value works: the engines split their row sweeps at
 * quantization-chunk boundaries (KnowledgeBase::i8GroupEnd).
 */
inline constexpr size_t kI8ChunkRowsDefault = 1000;

/**
 * Paired row-major (ns x ed) matrices M_IN and M_OUT, growable by
 * appending embedded sentences. Rows are appended in story order so
 * row index == sentence index (the temporal position used by the
 * trained model's temporal embeddings).
 *
 * Rows are always *ingested* as fp32 (the embedders produce floats);
 * in BF16 mode they are rounded to bfloat16 on append and stay bf16
 * in memory. In I8 mode rows are affine-quantized to int8 at append
 * time under one (scale, zero) pair per quantization chunk of
 * i8ChunkRows() consecutive rows, per matrix: the chunk's running
 * [lo, hi] element range maps onto q in [-128, 127] via
 * x_hat = scale*q + zero with scale = (hi-lo)/255 and
 * zero = lo + 128*scale. The fp32 rows of the current (tail) chunk
 * are staged so a range-extending append requantizes the whole tail
 * chunk from the exact inputs — the stored bytes therefore depend
 * only on the row contents and chunk boundaries, exactly as if the
 * full chunk had been quantized at once. The typed accessors are
 * precision-checked: minData()/minRow() are valid only in F32 mode,
 * minData16()/minRow16() only in BF16 mode, minData8()/minRow8()
 * (plus the per-row minScale()/minZero() code lookups) only in I8
 * mode, so a caller can never silently reinterpret one layout as
 * another.
 *
 * view() produces a non-owning window over a contiguous row range —
 * the storage behind knowledge-base sharding (sharded_knowledge_base
 * .hh). A view aliases the parent's rows (zero copy), reports the
 * window's size()/bytes(), and refuses mutation (addSentence/reserve/
 * clear are fatal); the parent must outlive every view.
 */
class KnowledgeBase
{
  public:
    /**
     * Create an empty knowledge base with embedding dimension ed.
     * `i8_chunk_rows` sets the I8 quantization-chunk size (rows per
     * scale/zero pair; ignored in F32/BF16 modes, must be nonzero).
     */
    explicit KnowledgeBase(size_t embedding_dim,
                           Precision precision = Precision::F32,
                           size_t i8_chunk_rows = kI8ChunkRowsDefault);

    /** Pre-allocate capacity for `ns` sentences. */
    void reserve(size_t ns);

    /**
     * Append one embedded sentence: min_row goes to M_IN, mout_row to
     * M_OUT; both are ed floats (rounded to bf16 in BF16 mode).
     */
    void addSentence(const float *min_row, const float *mout_row);

    /** Remove all sentences (capacity retained). Fatal on a view. */
    void clear();

    /**
     * Non-owning window over rows [row_begin, row_end) of this
     * knowledge base (same embedding dimension and precision; the
     * range must be non-empty and in bounds). The view aliases this
     * KB's storage — no rows are copied — so it is valid only while
     * this KB is alive and un-mutated. Views are read-only: mutating
     * calls on them are fatal. Taking a view of a view is allowed and
     * windows the underlying rows.
     */
    KnowledgeBase view(size_t row_begin, size_t row_end) const;

    /** True for non-owning views produced by view(). */
    bool isView() const { return viewed; }

    /** Number of stored sentences (ns). */
    size_t size() const { return count; }

    /** Embedding dimension (ed). */
    size_t dim() const { return ed; }

    /** Storage precision of the M_IN/M_OUT rows. */
    Precision precision() const { return prec; }

    /** Bytes per stored element (4 for F32, 2 for BF16, 1 for I8). */
    size_t elemBytes() const { return precisionBytes(prec); }

    /** Row-major (ns x ed) input memory (F32 mode only). */
    const float *minData() const;

    /** Row-major (ns x ed) output memory (F32 mode only). */
    const float *moutData() const;

    /** Row-major (ns x ed) bf16 input memory (BF16 mode only). */
    const uint16_t *minData16() const;

    /** Row-major (ns x ed) bf16 output memory (BF16 mode only). */
    const uint16_t *moutData16() const;

    /** Row i of M_IN (F32 mode only). */
    const float *minRow(size_t i) const;

    /** Row i of M_OUT (F32 mode only). */
    const float *moutRow(size_t i) const;

    /** Row i of M_IN as bf16 (BF16 mode only). */
    const uint16_t *minRow16(size_t i) const;

    /** Row i of M_OUT as bf16 (BF16 mode only). */
    const uint16_t *moutRow16(size_t i) const;

    /** Row-major (ns x ed) int8 input memory (I8 mode only). */
    const int8_t *minData8() const;

    /** Row-major (ns x ed) int8 output memory (I8 mode only). */
    const int8_t *moutData8() const;

    /** Row i of M_IN as int8 (I8 mode only). */
    const int8_t *minRow8(size_t i) const;

    /** Row i of M_OUT as int8 (I8 mode only). */
    const int8_t *moutRow8(size_t i) const;

    /** Rows per int8 quantization chunk (I8 mode only). */
    size_t i8ChunkRows() const;

    /** Dequantization scale of row i's M_IN chunk (I8 mode only). */
    float minScale(size_t i) const;

    /** Dequantization zero of row i's M_IN chunk (I8 mode only). */
    float minZero(size_t i) const;

    /** Dequantization scale of row i's M_OUT chunk (I8 mode only). */
    float moutScale(size_t i) const;

    /** Dequantization zero of row i's M_OUT chunk (I8 mode only). */
    float moutZero(size_t i) const;

    /**
     * First row index after `i` where the (scale, zero) pair may
     * change, clamped to size() — i.e. rows [i, i8GroupEnd(i)) share
     * row i's quantization code, so a sweep that processes
     * [i, i8GroupEnd(i)) per kernel call passes one scale/zero pair
     * per call. Views may start mid-chunk (sharding cuts at engine
     * chunk boundaries, which need not be quantization boundaries),
     * so the first group of a view can be shorter than i8ChunkRows().
     * I8 mode only.
     */
    size_t i8GroupEnd(size_t i) const;

    /**
     * Total bytes held by M_IN + M_OUT (for footprint and traffic
     * reporting): element size honest, not hard-coded fp32. The I8
     * per-chunk scale/zero metadata (16 bytes per i8ChunkRows() rows)
     * is excluded — it is noise next to the row payload.
     */
    size_t bytes() const { return 2 * count * ed * elemBytes(); }

  private:
    void grow(size_t min_capacity);
    const float *minScalesPtr() const;
    const float *minZerosPtr() const;
    const float *moutScalesPtr() const;
    const float *moutZerosPtr() const;

    size_t ed;
    Precision prec;
    size_t qchunk; ///< I8 quantization-chunk rows
    size_t count = 0;
    size_t capacity = 0;
    AlignedBuffer<float> min;      ///< F32 mode storage
    AlignedBuffer<float> mout;
    AlignedBuffer<uint16_t> min16; ///< BF16 mode storage
    AlignedBuffer<uint16_t> mout16;
    AlignedBuffer<int8_t> min8;    ///< I8 mode storage
    AlignedBuffer<int8_t> mout8;

    // I8 quantization state (owners only): one scale/zero pair per
    // started chunk and matrix, the fp32 staging copy of the current
    // tail chunk (allocated lazily on first append), and the tail
    // chunk's running element ranges.
    std::vector<float> minScaleV, minZeroV;
    std::vector<float> moutScaleV, moutZeroV;
    std::vector<float> tailMin, tailMout;
    float minLo = 0.f, minHi = 0.f;
    float moutLo = 0.f, moutHi = 0.f;

    // View state: when `viewed`, the v* pointers alias a window of
    // the parent's rows (and, in I8 mode, the parent's scale/zero
    // arrays, with vrowOff locating the window inside the parent's
    // quantization chunks) and the buffers above stay empty.
    bool viewed = false;
    const float *vmin = nullptr;
    const float *vmout = nullptr;
    const uint16_t *vmin16 = nullptr;
    const uint16_t *vmout16 = nullptr;
    const int8_t *vmin8 = nullptr;
    const int8_t *vmout8 = nullptr;
    const float *vminScale = nullptr;
    const float *vminZero = nullptr;
    const float *vmoutScale = nullptr;
    const float *vmoutZero = nullptr;
    size_t vrowOff = 0;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_KNOWLEDGE_BASE_HH
