/**
 * @file
 * The input/output memory (M_IN / M_OUT) of a memory network: the
 * embedded story sentences the inference operation reasons over.
 */

#ifndef MNNFAST_CORE_KNOWLEDGE_BASE_HH
#define MNNFAST_CORE_KNOWLEDGE_BASE_HH

#include <cstddef>
#include <cstdint>

#include "util/aligned_buffer.hh"

namespace mnnfast::core {

/**
 * Storage precision of the knowledge-base matrices. The KB stream is
 * the dominant memory traffic of MemNN inference, so halving the
 * element size halves the bytes every chunk pulls from DRAM; BF16
 * stores rows as bfloat16 (top 16 bits of the fp32 pattern,
 * nearest-even rounded at ingest) and the fused bf16 kernels
 * upconvert on the fly. F32 is the default and the accuracy
 * reference. See DESIGN.md §7.
 */
enum class Precision {
    F32,  ///< fp32 rows (reference; exact)
    BF16, ///< bfloat16 rows (half the bytes, ~2^-8 relative rounding)
};

/** Display name: "f32" or "bf16". */
const char *precisionName(Precision p);

/** Bytes per stored element: 4 (F32) or 2 (BF16). */
size_t precisionBytes(Precision p);

/**
 * Paired row-major (ns x ed) matrices M_IN and M_OUT, growable by
 * appending embedded sentences. Rows are appended in story order so
 * row index == sentence index (the temporal position used by the
 * trained model's temporal embeddings).
 *
 * Rows are always *ingested* as fp32 (the embedders produce floats);
 * in BF16 mode they are rounded to bfloat16 on append and stay bf16
 * in memory. The typed accessors are precision-checked: minData()/
 * minRow() are valid only in F32 mode, minData16()/minRow16() only in
 * BF16 mode, so a caller can never silently reinterpret one layout as
 * the other.
 *
 * view() produces a non-owning window over a contiguous row range —
 * the storage behind knowledge-base sharding (sharded_knowledge_base
 * .hh). A view aliases the parent's rows (zero copy), reports the
 * window's size()/bytes(), and refuses mutation (addSentence/reserve/
 * clear are fatal); the parent must outlive every view.
 */
class KnowledgeBase
{
  public:
    /** Create an empty knowledge base with embedding dimension ed. */
    explicit KnowledgeBase(size_t embedding_dim,
                           Precision precision = Precision::F32);

    /** Pre-allocate capacity for `ns` sentences. */
    void reserve(size_t ns);

    /**
     * Append one embedded sentence: min_row goes to M_IN, mout_row to
     * M_OUT; both are ed floats (rounded to bf16 in BF16 mode).
     */
    void addSentence(const float *min_row, const float *mout_row);

    /** Remove all sentences (capacity retained). Fatal on a view. */
    void clear();

    /**
     * Non-owning window over rows [row_begin, row_end) of this
     * knowledge base (same embedding dimension and precision; the
     * range must be non-empty and in bounds). The view aliases this
     * KB's storage — no rows are copied — so it is valid only while
     * this KB is alive and un-mutated. Views are read-only: mutating
     * calls on them are fatal. Taking a view of a view is allowed and
     * windows the underlying rows.
     */
    KnowledgeBase view(size_t row_begin, size_t row_end) const;

    /** True for non-owning views produced by view(). */
    bool isView() const { return viewed; }

    /** Number of stored sentences (ns). */
    size_t size() const { return count; }

    /** Embedding dimension (ed). */
    size_t dim() const { return ed; }

    /** Storage precision of the M_IN/M_OUT rows. */
    Precision precision() const { return prec; }

    /** Bytes per stored element (4 for F32, 2 for BF16). */
    size_t elemBytes() const { return precisionBytes(prec); }

    /** Row-major (ns x ed) input memory (F32 mode only). */
    const float *minData() const;

    /** Row-major (ns x ed) output memory (F32 mode only). */
    const float *moutData() const;

    /** Row-major (ns x ed) bf16 input memory (BF16 mode only). */
    const uint16_t *minData16() const;

    /** Row-major (ns x ed) bf16 output memory (BF16 mode only). */
    const uint16_t *moutData16() const;

    /** Row i of M_IN (F32 mode only). */
    const float *minRow(size_t i) const;

    /** Row i of M_OUT (F32 mode only). */
    const float *moutRow(size_t i) const;

    /** Row i of M_IN as bf16 (BF16 mode only). */
    const uint16_t *minRow16(size_t i) const;

    /** Row i of M_OUT as bf16 (BF16 mode only). */
    const uint16_t *moutRow16(size_t i) const;

    /**
     * Total bytes held by M_IN + M_OUT (for footprint and traffic
     * reporting): element size honest, not hard-coded fp32.
     */
    size_t bytes() const { return 2 * count * ed * elemBytes(); }

  private:
    void grow(size_t min_capacity);

    size_t ed;
    Precision prec;
    size_t count = 0;
    size_t capacity = 0;
    AlignedBuffer<float> min;      ///< F32 mode storage
    AlignedBuffer<float> mout;
    AlignedBuffer<uint16_t> min16; ///< BF16 mode storage
    AlignedBuffer<uint16_t> mout16;

    // View state: when `viewed`, the v* pointers alias a window of
    // the parent's rows and the AlignedBuffers above stay empty.
    bool viewed = false;
    const float *vmin = nullptr;
    const float *vmout = nullptr;
    const uint16_t *vmin16 = nullptr;
    const uint16_t *vmout16 = nullptr;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_KNOWLEDGE_BASE_HH
