/**
 * @file
 * The input/output memory (M_IN / M_OUT) of a memory network: the
 * embedded story sentences the inference operation reasons over.
 */

#ifndef MNNFAST_CORE_KNOWLEDGE_BASE_HH
#define MNNFAST_CORE_KNOWLEDGE_BASE_HH

#include <cstddef>

#include "util/aligned_buffer.hh"

namespace mnnfast::core {

/**
 * Paired row-major (ns x ed) matrices M_IN and M_OUT, growable by
 * appending embedded sentences. Rows are appended in story order so
 * row index == sentence index (the temporal position used by the
 * trained model's temporal embeddings).
 */
class KnowledgeBase
{
  public:
    /** Create an empty knowledge base with embedding dimension ed. */
    explicit KnowledgeBase(size_t embedding_dim);

    /** Pre-allocate capacity for `ns` sentences. */
    void reserve(size_t ns);

    /**
     * Append one embedded sentence: min_row goes to M_IN, mout_row to
     * M_OUT; both are ed floats.
     */
    void addSentence(const float *min_row, const float *mout_row);

    /** Remove all sentences (capacity retained). */
    void clear() { count = 0; }

    /** Number of stored sentences (ns). */
    size_t size() const { return count; }

    /** Embedding dimension (ed). */
    size_t dim() const { return ed; }

    /** Row-major (ns x ed) input memory. */
    const float *minData() const { return min.data(); }

    /** Row-major (ns x ed) output memory. */
    const float *moutData() const { return mout.data(); }

    /** Row i of M_IN. */
    const float *minRow(size_t i) const;

    /** Row i of M_OUT. */
    const float *moutRow(size_t i) const;

    /** Total bytes held by M_IN + M_OUT (for footprint reporting). */
    size_t bytes() const { return 2 * count * ed * sizeof(float); }

  private:
    void grow(size_t min_capacity);

    size_t ed;
    size_t count = 0;
    size_t capacity = 0;
    AlignedBuffer<float> min;
    AlignedBuffer<float> mout;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_KNOWLEDGE_BASE_HH
