#include "core/sharded_engine.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "blas/kernels.hh"
#include "runtime/parallel_for.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace mnnfast::core {

ShardedEngine::ShardedEngine(const ShardedKnowledgeBase &skb,
                             const EngineConfig &cfg)
    : skb(skb), cfg(cfg), pool(cfg.threads)
{
    if (cfg.chunkSize == 0)
        fatal("sharded engine chunk size must be nonzero");
    const size_t effective =
        std::min(cfg.chunkSize, skb.parent().size());
    if (effective != skb.chunkSize())
        fatal("sharded engine chunk size %zu does not match the "
              "partition's %zu — shard boundaries would not be "
              "chunk-aligned",
              effective, skb.chunkSize());

    engines.reserve(skb.shardCount());
    for (size_t s = 0; s < skb.shardCount(); ++s) {
        EngineConfig scfg = cfg;
        scfg.threads = 0;        // the scatter pool is the parallelism
        scfg.scheduleGroups = 1; // one group -> exact shard partial
        if (cfg.chunkObserver) {
            // Translate shard-local chunk indices back to global ones
            // so observers see the same chunk numbering as a single
            // engine; the shard index doubles as the worker slot
            // (unique among concurrently running shards).
            const size_t chunk0 = skb.rows(s).begin / skb.chunkSize();
            auto inner = cfg.chunkObserver;
            scfg.chunkObserver = [inner, s, chunk0](size_t,
                                                    size_t chunk) {
                inner(s, chunk0 + chunk);
            };
        }
        engines.push_back(
            std::make_unique<ColumnEngine>(skb.shard(s), scfg));
    }
    parts.resize(engines.size());
    partPtrs.resize(parts.size());
    for (size_t s = 0; s < parts.size(); ++s)
        partPtrs[s] = &parts[s];

    displayName = "sharded[" + std::to_string(engines.size()) + "]+" +
                  engines.front()->name();
}

const char *
ShardedEngine::name() const
{
    return displayName.c_str();
}

const ColumnEngine &
ShardedEngine::shardEngine(size_t s) const
{
    mnn_assert(s < engines.size(), "shard index out of range");
    return *engines[s];
}

void
ShardedEngine::inferBatch(const float *u, size_t nq, float *o)
{
    Timer timer;

    // Scatter: each shard's engine streams its partition into its own
    // partial slot. Shards are independent and slot-isolated, so the
    // schedule decides wall-clock only, never the result.
    auto runShard = [&](size_t s) {
        engines[s]->inferPartial(u, nq, parts[s]);
    };
    if (cfg.schedule == Schedule::Dynamic) {
        runtime::parallelForDynamic(
            pool, engines.size(), 1,
            [&](size_t, runtime::Range r) {
                for (size_t s = r.begin; s < r.end; ++s)
                    runShard(s);
            });
    } else {
        runtime::parallelForParts(
            pool, engines.size(),
            std::max<size_t>(1, pool.threadCount()),
            [&](size_t, runtime::Range r) {
                for (size_t s = r.begin; s < r.end; ++s)
                    runShard(s);
            });
    }

    gather(nq, o);

    // Aggregate accounting: drain the shard engines' phase times and
    // counters into this engine's, so callers see whole-KB totals.
    // Shard phase seconds overlap in wall-clock across pool workers;
    // dividing by the worker count gives the effective contribution
    // (exact when the scatter runs inline).
    const double denom =
        static_cast<double>(std::max<size_t>(1, pool.threadCount()));
    double attributed = 0.0;
    for (auto &e : engines) {
        const OpBreakdown &b = e->breakdown();
        times.innerProduct += b.innerProduct / denom;
        times.softmax += b.softmax / denom;
        times.weightedSum += b.weightedSum / denom;
        attributed += b.total() / denom;
        e->clearBreakdown();
    }
    times.other += std::max(0.0, timer.seconds() - attributed);

    uint64_t scratch_bytes = 0;
    for (auto &e : engines) {
        for (const auto &kv : e->counters().all()) {
            if (kv.first == "intermediate_bytes")
                scratch_bytes += kv.second.value();
            else
                counterGroup[kv.first].add(kv.second.value());
        }
        e->counters().resetAll();
    }
    counterGroup["intermediate_bytes"].reset();
    counterGroup["intermediate_bytes"].add(scratch_bytes);
    // The deferred division happens once, in the gather.
    counterGroup["div_ops"].add(nq * skb.parent().dim());
}

void
mergeStreamPartials(const StreamPartial *const *parts, size_t nParts,
                    size_t nq, size_t ed, bool onlineNormalize,
                    float *o)
{
    // The same operation sequence as ColumnEngine::inferBatch's group
    // merge — caller-given (canonical) order, psum == 0 skip, one
    // division — so a gather over partials replays the reference
    // merge exactly (see the file header).
    if (onlineNormalize) {
        for (size_t q = 0; q < nq; ++q) {
            float gmax = -std::numeric_limits<float>::infinity();
            for (size_t i = 0; i < nParts; ++i)
                gmax = std::max(gmax, parts[i]->runMax[q]);
            double s = 0.0;
            blas::zero(o + q * ed, ed);
            for (size_t i = 0; i < nParts; ++i) {
                const StreamPartial &p = *parts[i];
                if (p.expSum[q] == 0.0)
                    continue;
                const float scale = std::exp(p.runMax[q] - gmax);
                s += p.expSum[q] * scale;
                blas::axpy(scale, p.o.data() + q * ed, o + q * ed, ed);
            }
            blas::scal(static_cast<float>(1.0 / s), o + q * ed, ed);
        }
    } else {
        for (size_t q = 0; q < nq; ++q) {
            double s = 0.0;
            blas::zero(o + q * ed, ed);
            for (size_t i = 0; i < nParts; ++i) {
                const StreamPartial &p = *parts[i];
                s += p.expSum[q];
                blas::axpy(1.0f, p.o.data() + q * ed, o + q * ed, ed);
            }
            blas::scal(static_cast<float>(1.0 / s), o + q * ed, ed);
        }
    }
}

void
ShardedEngine::gather(size_t nq, float *o)
{
    mergeStreamPartials(partPtrs.data(), partPtrs.size(), nq,
                        skb.parent().dim(), cfg.onlineNormalize, o);
}

} // namespace mnnfast::core
