/**
 * @file
 * Scatter/gather inference over a sharded knowledge base (paper §6):
 * one ColumnEngine per shard streams its partition and produces a
 * StreamPartial (running max, rescaled exp-sum, rescaled weighted
 * sum); the gather side merges the partials in canonical shard order
 * with the online-softmax algebra and applies the single deferred
 * lazy-softmax division.
 *
 * Bit-identity guarantee: a ShardedEngine over S shards produces
 * *bit-identical* outputs to a single ColumnEngine over the whole KB
 * configured with scheduleGroups = S (any thread count, either
 * schedule). The argument has three legs:
 *
 *  1. ShardedKnowledgeBase uses the same splitRange decomposition as
 *     ColumnEngine::chunkGroups, so shard s covers exactly chunk
 *     group s — the same rows, swept with the same chunk size and the
 *     same kStreamStrip strips, so every kernel call sees identical
 *     operands. Zero-skip decisions depend only on the group-local
 *     running sum, which starts at zero per group in both layouts.
 *  2. Each per-shard engine runs with scheduleGroups = 1, so its
 *     StreamPartial is that single group's accumulator state
 *     bit-for-bit (see ColumnEngine::inferPartial).
 *  3. The gather merge below is the same operation sequence as
 *     ColumnEngine::inferBatch's group merge (same order, same
 *     psum == 0 skip, same division), just spelled over shards.
 *
 * Which worker streams which shard, and when, therefore never changes
 * the result — exactly the property that lets a serving layer scatter
 * one batch across its worker pool.
 *
 * Coarse routing (cfg.routePolicy, DESIGN.md §11) composes with this
 * guarantee because selection is *per chunk group*: shard s's engine
 * builds its ChunkSummaryIndex over exactly chunk group s's rows and
 * scores/selects over that group alone — precisely the selection the
 * single engine with scheduleGroups = S makes for group s. Leg 1
 * above then extends row-for-row to the routed sweep: both layouts
 * bypass the same chunks and compact the same question sub-batches.
 *
 * Per-shard engines keep their own counters (read through
 * shardEngine(s) for per-shard attribution, e.g. rows skipped per
 * partition); this engine drains them into its aggregate CounterGroup
 * after every batch, so counters() reports whole-KB totals exactly
 * like a single engine.
 */

#ifndef MNNFAST_CORE_SHARDED_ENGINE_HH
#define MNNFAST_CORE_SHARDED_ENGINE_HH

#include <memory>
#include <string>
#include <vector>

#include "core/column_engine.hh"
#include "core/sharded_knowledge_base.hh"
#include "runtime/thread_pool.hh"

namespace mnnfast::core {

/**
 * Merge shard StreamPartials — in the order given, which must be the
 * canonical shard order for bit-identity — with the online-softmax
 * algebra, and apply the single deferred lazy-softmax division. This
 * is the one gather implementation: ShardedEngine uses it for its
 * in-process pool and net::ClusterFrontEnd for partials that crossed
 * the wire, so the two agree bit-for-bit by construction.
 *
 * Every partial must cover `nq` questions of dimension `ed`.
 * `onlineNormalize` must match the engine config the partials were
 * produced under (it decides whether runMax rescaling applies).
 */
void mergeStreamPartials(const StreamPartial *const *parts,
                         size_t nParts, size_t nq, size_t ed,
                         bool onlineNormalize, float *o);

/** Scatter/gather engine over a ShardedKnowledgeBase. See header. */
class ShardedEngine : public InferenceEngine
{
  public:
    /**
     * @param skb Shard partition; must outlive the engine (as must
     *            its parent KB). The partition's chunk size should
     *            match cfg.chunkSize for the bit-identity guarantee —
     *            mismatches are fatal.
     * @param cfg Engine tunables. cfg.threads sizes this engine's
     *            scatter pool (0 = shards run inline, sequentially);
     *            per-shard engines always run single-threaded with
     *            scheduleGroups = 1. cfg.schedule picks how shards
     *            are handed to pool workers (wall-clock only).
     */
    ShardedEngine(const ShardedKnowledgeBase &skb,
                  const EngineConfig &cfg);

    void inferBatch(const float *u, size_t nq, float *o) override;

    const char *name() const override;

    /** Effective shard count (== skb.shardCount()). */
    size_t shardCount() const { return engines.size(); }

    /** The per-shard engine (for per-shard counter attribution). */
    const ColumnEngine &shardEngine(size_t s) const;

    /** The shard partition this engine scatters over. */
    const ShardedKnowledgeBase &sharding() const { return skb; }

  private:
    /** Merge shard partials in shard order and divide; see header. */
    void gather(size_t nq, float *o);

    const ShardedKnowledgeBase &skb;
    EngineConfig cfg;
    runtime::ThreadPool pool;
    std::vector<std::unique_ptr<ColumnEngine>> engines;
    std::vector<StreamPartial> parts; ///< slot s = shard s (reused)
    std::vector<const StreamPartial *> partPtrs; ///< parts, for merge
    std::string displayName;
};

} // namespace mnnfast::core

#endif // MNNFAST_CORE_SHARDED_ENGINE_HH
