#include "fpga/ddr3_model.hh"

#include <cmath>

namespace mnnfast::fpga {

uint64_t
Ddr3Model::burstCycles(uint64_t bytes)
{
    stats_["bytes"].add(bytes);
    stats_["bursts"].add();
    const double transfer =
        static_cast<double>(bytes) / cfg.bytesPerCycle;
    return cfg.latencyCycles
         + static_cast<uint64_t>(std::ceil(transfer));
}

double
Ddr3Model::streamCycles(uint64_t bytes) const
{
    return static_cast<double>(bytes) / cfg.bytesPerCycle;
}

} // namespace mnnfast::fpga
