/**
 * @file
 * Energy model for the CPU-vs-FPGA efficiency comparison (paper
 * Section 5.5).
 *
 * The paper measures CPU energy with turbostat and FPGA energy from
 * Vivado's post-bitstream power report; neither is available here, so
 * energy = time x platform power with literature-typical constants:
 * a dual-socket Xeon E5-2650 v4 running a 20-thread AVX workload
 * draws ~120 W above idle plus ~50 W of uncore/DRAM; a Zynq-7020
 * design at 100 MHz reports ~2-3 W total. The *ratio* (what the paper
 * reports: up to 6.54x) is the reproduced quantity; the constants are
 * recorded in EXPERIMENTS.md.
 */

#ifndef MNNFAST_FPGA_ENERGY_MODEL_HH
#define MNNFAST_FPGA_ENERGY_MODEL_HH

namespace mnnfast::fpga {

/** Platform power constants (watts). */
struct EnergyConfig
{
    /** FPGA: PL dynamic + PS + static at full activity. */
    double fpgaWatts = 2.6;
    /** CPU package+DRAM power under the 20-thread MnnFast load. */
    double cpuWatts = 170.0;
};

/** Energy for a run of the given duration on each platform. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyConfig &cfg) : cfg(cfg) {}

    double fpgaJoules(double seconds) const
    {
        return seconds * cfg.fpgaWatts;
    }

    double cpuJoules(double seconds) const
    {
        return seconds * cfg.cpuWatts;
    }

    /**
     * Energy-efficiency ratio (CPU joules / FPGA joules) for the same
     * amount of work done in the given times.
     */
    double
    efficiencyGain(double cpu_seconds, double fpga_seconds) const
    {
        return cpuJoules(cpu_seconds) / fpgaJoules(fpga_seconds);
    }

    const EnergyConfig &config() const { return cfg; }

  private:
    EnergyConfig cfg;
};

} // namespace mnnfast::fpga

#endif // MNNFAST_FPGA_ENERGY_MODEL_HH
