// Header-only logic lives in energy_model.hh; this translation unit
// anchors the component in the mnn_fpga library.
#include "fpga/energy_model.hh"
