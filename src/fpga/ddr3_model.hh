/**
 * @file
 * DDR3 memory model for the FPGA accelerator (ZedBoard: 32-bit DDR3
 * at 533 MHz, accessed from 100 MHz programmable logic).
 */

#ifndef MNNFAST_FPGA_DDR3_MODEL_HH
#define MNNFAST_FPGA_DDR3_MODEL_HH

#include <cstdint>

#include "stats/counter.hh"

namespace mnnfast::fpga {

/**
 * DDR3 parameters expressed in PL (programmable logic) clock cycles.
 * Peak: 533 MHz x 2 (DDR) x 4 B = 4.26 GB/s = ~42.6 B per 10 ns PL
 * cycle; a 0.6 efficiency factor covers refresh, read/write
 * turnaround, and the Zynq HP-port arbitration.
 */
struct Ddr3Config
{
    double bytesPerCycle = 42.6 * 0.6;
    /** First-word latency of a burst, PL cycles. */
    uint64_t latencyCycles = 15;
};

/** Burst-transfer cost model with byte accounting. */
class Ddr3Model
{
  public:
    explicit Ddr3Model(const Ddr3Config &cfg) : cfg(cfg) {}

    /** PL cycles to move `bytes` as one burst (latency + transfer). */
    uint64_t burstCycles(uint64_t bytes);

    /** Cycles for a pure streaming transfer (latency amortized away). */
    double streamCycles(uint64_t bytes) const;

    /** Total bytes transferred so far. */
    uint64_t totalBytes() const { return stats_.value("bytes"); }

    /** Number of bursts issued. */
    uint64_t bursts() const { return stats_.value("bursts"); }

    const Ddr3Config &config() const { return cfg; }
    const stats::CounterGroup &counters() const { return stats_; }

  private:
    Ddr3Config cfg;
    stats::CounterGroup stats_;
};

} // namespace mnnfast::fpga

#endif // MNNFAST_FPGA_DDR3_MODEL_HH
