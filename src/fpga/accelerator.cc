#include "fpga/accelerator.hh"

#include <algorithm>
#include <cmath>

#include "blas/kernels.hh"
#include "util/logging.hh"

namespace mnnfast::fpga {

FpgaAccelerator::FpgaAccelerator(const FpgaConfig &cfg)
    : cfg(cfg)
{
    if (cfg.embeddingDim == 0 || cfg.chunkSize == 0 || cfg.macLanes == 0)
        fatal("FPGA configuration dimensions must be nonzero");
}

namespace {

/** Cycles for n MACs on `lanes` parallel lanes. */
uint64_t
macCycles(uint64_t n, size_t lanes)
{
    return (n + lanes - 1) / lanes;
}

} // namespace

FpgaRunStats
FpgaAccelerator::runInference(const float *u, size_t nq,
                              const core::KnowledgeBase &kb, float *o)
{
    mnn_assert(kb.dim() == cfg.embeddingDim,
               "knowledge base dim mismatch with FPGA config");
    return cfg.columnMode ? runColumn(u, nq, kb, o)
                          : runBaseline(u, nq, kb, o);
}

FpgaRunStats
FpgaAccelerator::runBaseline(const float *u, size_t nq,
                             const core::KnowledgeBase &kb, float *o)
{
    const size_t ns = kb.size();
    const size_t ed = cfg.embeddingDim;
    Ddr3Model ddr(cfg.ddr);
    FpgaRunStats stats;

    std::vector<float> tin(ns);

    for (size_t q = 0; q < nq; ++q) {
        const float *uq = u + q * ed;
        float *oq = o + q * ed;

        // ---- Inner product: stream M_IN from DDR, then MACs.
        // The baseline design is blocking: load, then compute.
        uint64_t mem = ddr.burstCycles(ns * ed * sizeof(float));
        uint64_t comp = macCycles(uint64_t(ns) * ed, cfg.macLanes);
        for (size_t i = 0; i < ns; ++i)
            tin[i] = blas::dot(uq, kb.minRow(i), ed);
        // Spill T_IN to DDR (BRAM cannot hold an ns-sized vector at
        // the paper's large-scale sizes; the baseline always spills).
        mem += ddr.burstCycles(ns * sizeof(float));

        // ---- Softmax: read T_IN, exp, write P_exp; read P_exp,
        // reduce; read P_exp, divide, write P.
        mem += ddr.burstCycles(ns * sizeof(float));  // read T_IN
        comp += uint64_t(ns) * cfg.expCycles;        // exp
        mem += ddr.burstCycles(ns * sizeof(float));  // write P_exp
        mem += ddr.burstCycles(ns * sizeof(float));  // read (reduce)
        comp += ns;                                  // adder tree walk
        mem += ddr.burstCycles(ns * sizeof(float));  // read (divide)
        comp += uint64_t(ns) * cfg.divCycles;        // ns divisions
        mem += ddr.burstCycles(ns * sizeof(float));  // write P

        blas::expInplace(tin.data(), ns);
        const float s = blas::sum(tin.data(), ns);
        blas::scal(1.0f / s, tin.data(), ns);

        // ---- Weighted sum: read P and M_OUT, MACs.
        mem += ddr.burstCycles(ns * sizeof(float));
        mem += ddr.burstCycles(ns * ed * sizeof(float));
        comp += macCycles(uint64_t(ns) * ed, cfg.macLanes);
        blas::zero(oq, ed);
        for (size_t i = 0; i < ns; ++i)
            blas::axpy(tin[i], kb.moutRow(i), oq, ed);
        stats.wsumRowsKept += ns;

        stats.memoryCycles += mem;
        stats.computeCycles += comp;
        stats.totalCycles += mem + comp; // fully serialized
    }
    stats.ddrBytes = ddr.totalBytes();
    return stats;
}

FpgaRunStats
FpgaAccelerator::runColumn(const float *u, size_t nq,
                           const core::KnowledgeBase &kb, float *o)
{
    if (cfg.batchQuestions)
        return runColumnBatch(u, nq, kb, o);

    const size_t ns = kb.size();
    const size_t ed = cfg.embeddingDim;
    const size_t chunk = cfg.chunkSize;
    Ddr3Model ddr(cfg.ddr);
    FpgaRunStats stats;

    std::vector<float> t(chunk);

    for (size_t q = 0; q < nq; ++q) {
        const float *uq = u + q * ed;
        float *oq = o + q * ed;
        blas::zero(oq, ed);
        double psum = 0.0;

        uint64_t mem = 0, comp = 0, total = 0;

        for (size_t c0 = 0; c0 < ns; c0 += chunk) {
            const size_t c1 = std::min(c0 + chunk, ns);
            const size_t len = c1 - c0;

            // Chunk loads: M_IN + M_OUT rows for this chunk. T_IN
            // lives in BRAM (it is only `chunk` floats).
            const uint64_t load =
                ddr.burstCycles(2 * len * ed * sizeof(float));

            // Compute: inner product + exp + weighted sum (skipped
            // rows contribute only their exp/accumulate).
            uint64_t kept_macs = 0;
            for (size_t i = 0; i < len; ++i)
                t[i] = blas::dot(uq, kb.minRow(c0 + i), ed);
            uint64_t c_comp =
                macCycles(uint64_t(len) * ed, cfg.macLanes);
            c_comp += uint64_t(len) * cfg.expCycles;

            for (size_t i = 0; i < len; ++i) {
                const float e = std::exp(t[i]);
                psum += e;
                if (cfg.skipThreshold > 0.f && e < cfg.skipThreshold) {
                    ++stats.wsumRowsSkipped;
                    continue;
                }
                ++stats.wsumRowsKept;
                kept_macs += ed;
                blas::axpy(e, kb.moutRow(c0 + i), oq, ed);
            }
            c_comp += macCycles(kept_macs, cfg.macLanes);

            if (cfg.streaming) {
                // Double buffering: the next chunk loads while this
                // one computes. Only streamOverlapEff of the shorter
                // leg is actually hidden (DDR-port / BRAM-bank
                // contention between the prefetch engine and the
                // compute units).
                const uint64_t hidden = static_cast<uint64_t>(
                    cfg.streamOverlapEff
                    * static_cast<double>(std::min(load, c_comp)));
                total += load + c_comp - hidden;
                mem += load > hidden ? load - hidden : 0;
            } else {
                total += load + c_comp;
                mem += load;
            }
            comp += c_comp;
        }

        // Lazy softmax: ed divisions at the very end.
        blas::scal(static_cast<float>(1.0 / psum), oq, ed);
        const uint64_t div = uint64_t(ed) * cfg.divCycles;
        comp += div;
        total += div;

        stats.memoryCycles += mem;
        stats.computeCycles += comp;
        stats.totalCycles += total;
    }
    stats.ddrBytes = ddr.totalBytes();
    return stats;
}

FpgaRunStats
FpgaAccelerator::runColumnBatch(const float *u, size_t nq,
                                const core::KnowledgeBase &kb, float *o)
{
    const size_t ns = kb.size();
    const size_t ed = cfg.embeddingDim;
    const size_t chunk = cfg.chunkSize;
    Ddr3Model ddr(cfg.ddr);
    FpgaRunStats stats;

    std::vector<float> t(chunk);
    std::vector<double> psum(nq, 0.0);
    for (size_t q = 0; q < nq; ++q)
        blas::zero(o + q * ed, ed);

    uint64_t mem = 0, comp = 0, total = 0;

    for (size_t c0 = 0; c0 < ns; c0 += chunk) {
        const size_t c1 = std::min(c0 + chunk, ns);
        const size_t len = c1 - c0;

        // One chunk load serves every question in the batch.
        const uint64_t load =
            ddr.burstCycles(2 * len * ed * sizeof(float));

        uint64_t c_comp = 0;
        for (size_t q = 0; q < nq; ++q) {
            const float *uq = u + q * ed;
            float *oq = o + q * ed;

            uint64_t kept_macs = 0;
            for (size_t i = 0; i < len; ++i)
                t[i] = blas::dot(uq, kb.minRow(c0 + i), ed);
            c_comp += macCycles(uint64_t(len) * ed, cfg.macLanes);
            c_comp += uint64_t(len) * cfg.expCycles;

            for (size_t i = 0; i < len; ++i) {
                const float e = std::exp(t[i]);
                psum[q] += e;
                if (cfg.skipThreshold > 0.f
                    && e < cfg.skipThreshold) {
                    ++stats.wsumRowsSkipped;
                    continue;
                }
                ++stats.wsumRowsKept;
                kept_macs += ed;
                blas::axpy(e, kb.moutRow(c0 + i), oq, ed);
            }
            c_comp += macCycles(kept_macs, cfg.macLanes);
        }

        if (cfg.streaming) {
            const uint64_t hidden = static_cast<uint64_t>(
                cfg.streamOverlapEff
                * static_cast<double>(std::min(load, c_comp)));
            total += load + c_comp - hidden;
            mem += load > hidden ? load - hidden : 0;
        } else {
            total += load + c_comp;
            mem += load;
        }
        comp += c_comp;
    }

    for (size_t q = 0; q < nq; ++q)
        blas::scal(static_cast<float>(1.0 / psum[q]), o + q * ed, ed);
    const uint64_t div = uint64_t(nq) * ed * cfg.divCycles;
    comp += div;
    total += div;

    stats.memoryCycles = mem;
    stats.computeCycles = comp;
    stats.totalCycles = total;
    stats.ddrBytes = ddr.totalBytes();
    return stats;
}

EmbedStats
FpgaAccelerator::runEmbedding(
    const std::vector<data::Sentence> &sentences, EmbeddingCache *cache)
{
    const size_t ed = cfg.embeddingDim;
    Ddr3Model ddr(cfg.ddr);
    EmbedStats stats;

    const uint64_t row_bytes = ed * sizeof(float);
    const uint64_t hit_cycles = static_cast<uint64_t>(std::ceil(
        static_cast<double>(row_bytes) / cfg.bramBytesPerCycle));

    for (const data::Sentence &s : sentences) {
        for (data::WordId w : s) {
            ++stats.words;
            if (cache) {
                if (cache->lookup(w)) {
                    ++stats.cacheHits;
                    stats.cycles += hit_cycles;
                } else {
                    ++stats.cacheMisses;
                    stats.cycles += ddr.burstCycles(row_bytes);
                }
            } else {
                stats.cycles += ddr.burstCycles(row_bytes);
            }
        }
        // Vector accumulation into the sentence state overlaps the
        // next lookup; one drain cycle per sentence.
        stats.cycles += 1;
    }
    return stats;
}

} // namespace mnnfast::fpga
