/**
 * @file
 * Cycle-approximate model of the FPGA-based MnnFast accelerator
 * (paper Section 4.2, Fig. 8), functional and timed.
 *
 * The model executes the real computation (so its outputs can be
 * checked against the CPU engines bit-for-bit up to FP reassociation)
 * while accounting PL cycles for each pipeline unit:
 *
 *   - inner-product unit:  macLanes MACs/cycle over M_IN rows
 *   - partial softmax:     pipelined exp (1/cycle) + accumulator
 *   - weighted-sum unit:   macLanes MACs/cycle over M_OUT rows,
 *                          with exp-domain zero-skipping
 *   - lazy softmax:        divPipeline divisions at the very end
 *   - DDR3 interface:      burst transfers (see Ddr3Model); in
 *                          streaming mode chunk loads double-buffer
 *                          against compute
 *   - embedding unit:      word stream through the EmbeddingCache
 *
 * The baseline mode reproduces the paper's straightforward FPGA
 * implementation: whole-layer passes with T_IN / P_exp / P spilled to
 * DDR3 (BRAM cannot hold ns-sized vectors).
 */

#ifndef MNNFAST_FPGA_ACCELERATOR_HH
#define MNNFAST_FPGA_ACCELERATOR_HH

#include <cstdint>
#include <vector>

#include "core/knowledge_base.hh"
#include "data/babi.hh"
#include "fpga/ddr3_model.hh"
#include "fpga/embedding_cache.hh"

namespace mnnfast::fpga {

/** Accelerator configuration (defaults: paper Table 1, FPGA column). */
struct FpgaConfig
{
    size_t embeddingDim = 25;
    size_t chunkSize = 25;
    /**
     * MAC lanes shared by inner-product and weighted-sum units. The
     * ZedBoard's modest DSP budget supports few parallel lanes, which
     * makes the pipeline compute-bound — the regime where
     * zero-skipping pays off (paper Fig. 13).
     */
    size_t macLanes = 4;
    /** Cycles per scalar division (non-pipelined divider). */
    uint64_t divCycles = 4;
    /** Cycles per exponential evaluation (pipelined, II=1). */
    uint64_t expCycles = 1;
    /** Column-based dataflow (false = baseline whole-layer). */
    bool columnMode = true;
    /** Double-buffer chunk loads against compute. */
    bool streaming = false;
    /**
     * Fraction of the shorter of {load, compute} actually hidden by
     * double buffering. Less than 1.0 because the prefetch engine and
     * the compute units contend for the single DDR3 port and BRAM
     * banks; 0.6 calibrates the streaming step to the paper's
     * measured -38.2% (Fig. 13).
     */
    double streamOverlapEff = 0.6;
    /**
     * Exp-domain zero-skip threshold (paper Section 4.2: the raw
     * exponential result is compared against th_skip). 0 disables.
     */
    float skipThreshold = 0.0f;
    /**
     * Batch-question mode (paper Fig. 8 shows a question matrix Q):
     * each chunk is loaded from DDR once and all questions in the
     * batch compute against it while resident, amortizing the memory
     * traffic. When false, questions are processed one at a time and
     * each one re-streams the knowledge base (the latency-oriented
     * single-question configuration of Fig. 13).
     */
    bool batchQuestions = false;
    /** PL clock, Hz (ZedBoard design runs at 100 MHz). */
    double clockHz = 100.0e6;
    /** BRAM read width for embedding-cache hits, bytes/cycle. */
    double bramBytesPerCycle = 128.0;
    Ddr3Config ddr;
};

/** Cycle/work accounting of one inference run. */
struct FpgaRunStats
{
    uint64_t totalCycles = 0;
    uint64_t computeCycles = 0; ///< MAC/exp/div work
    uint64_t memoryCycles = 0;  ///< exposed (non-overlapped) DDR time
    uint64_t ddrBytes = 0;
    uint64_t wsumRowsKept = 0;
    uint64_t wsumRowsSkipped = 0;

    double
    seconds(double clock_hz) const
    {
        return static_cast<double>(totalCycles) / clock_hz;
    }
};

/** Cycle accounting of the embedding phase. */
struct EmbedStats
{
    uint64_t cycles = 0;
    uint64_t words = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
};

/** See file header. */
class FpgaAccelerator
{
  public:
    explicit FpgaAccelerator(const FpgaConfig &cfg);

    /**
     * Run inference for `nq` questions (u: nq x ed) over `kb`,
     * writing response vectors to o (nq x ed) and returning the cycle
     * accounting. Questions are processed sequentially, as on the
     * real single-pipeline design.
     */
    FpgaRunStats runInference(const float *u, size_t nq,
                              const core::KnowledgeBase &kb, float *o);

    /**
     * Run the embedding phase over a word stream. If `cache` is
     * non-null, lookups go through the embedding cache (hits served
     * from BRAM); otherwise every word costs a DDR3 row fetch.
     */
    EmbedStats runEmbedding(const std::vector<data::Sentence> &sentences,
                            EmbeddingCache *cache);

    const FpgaConfig &config() const { return cfg; }

  private:
    FpgaRunStats runBaseline(const float *u, size_t nq,
                             const core::KnowledgeBase &kb, float *o);
    FpgaRunStats runColumn(const float *u, size_t nq,
                           const core::KnowledgeBase &kb, float *o);
    FpgaRunStats runColumnBatch(const float *u, size_t nq,
                                const core::KnowledgeBase &kb,
                                float *o);

    FpgaConfig cfg;
};

} // namespace mnnfast::fpga

#endif // MNNFAST_FPGA_ACCELERATOR_HH
