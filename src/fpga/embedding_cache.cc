#include "fpga/embedding_cache.hh"

#include "util/logging.hh"

namespace mnnfast::fpga {

EmbeddingCache::EmbeddingCache(const EmbeddingCacheConfig &cfg)
    : cfg(cfg)
{
    const size_t entry_bytes = cfg.embeddingDim * sizeof(float);
    if (entry_bytes == 0)
        fatal("embedding cache entry size must be nonzero");
    const size_t n = cfg.sizeBytes / entry_bytes;
    if (n == 0) {
        fatal("embedding cache of %zu bytes cannot hold one %zu-byte "
              "entry", cfg.sizeBytes, entry_bytes);
    }
    slots.resize(n);
}

bool
EmbeddingCache::lookup(data::WordId word)
{
    Slot &slot = slots[word % slots.size()];
    if (slot.valid && slot.word == word) {
        stats_["hits"].add();
        return true;
    }
    stats_["misses"].add();
    slot.valid = true;
    slot.word = word;
    return false;
}

bool
EmbeddingCache::probe(data::WordId word) const
{
    const Slot &slot = slots[word % slots.size()];
    return slot.valid && slot.word == word;
}

void
EmbeddingCache::flush()
{
    for (Slot &s : slots)
        s = Slot{};
}

} // namespace mnnfast::fpga
