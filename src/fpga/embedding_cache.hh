/**
 * @file
 * The embedding cache (paper Section 3.3 / 4.2): a direct-mapped,
 * word-granular cache dedicated to embedding-matrix rows.
 *
 * Each entry holds {valid bit, word ID tag, ed x fp32 state vector};
 * the "word size" of the cache is the embedding dimension, so one hit
 * delivers a whole internal state vector. Because embedding lookups
 * never touch the shared cache hierarchy, inference and embedding
 * traffic are perfectly isolated.
 */

#ifndef MNNFAST_FPGA_EMBEDDING_CACHE_HH
#define MNNFAST_FPGA_EMBEDDING_CACHE_HH

#include <cstdint>
#include <vector>

#include "data/vocabulary.hh"
#include "stats/counter.hh"

namespace mnnfast::fpga {

/** Geometry of an EmbeddingCache. */
struct EmbeddingCacheConfig
{
    /** Total data capacity in bytes (32KB-256KB in the paper). */
    size_t sizeBytes = 64 << 10;
    /** Embedding dimension; entry payload is ed * 4 bytes. */
    size_t embeddingDim = 256;
};

/** See file header. */
class EmbeddingCache
{
  public:
    explicit EmbeddingCache(const EmbeddingCacheConfig &cfg);

    /**
     * Look up a word; on miss the entry is filled (the caller models
     * the DRAM fetch cost).
     *
     * @return true on hit.
     */
    bool lookup(data::WordId word);

    /** True if the word is resident (no state change). */
    bool probe(data::WordId word) const;

    /** Invalidate all entries. */
    void flush();

    /** Number of entries (capacity / entry payload). */
    size_t entries() const { return slots.size(); }

    uint64_t hits() const { return stats_.value("hits"); }
    uint64_t misses() const { return stats_.value("misses"); }

    double
    hitRate() const
    {
        const uint64_t total = hits() + misses();
        return total ? double(hits()) / double(total) : 0.0;
    }

    const stats::CounterGroup &counters() const { return stats_; }

  private:
    struct Slot
    {
        data::WordId word = data::kNoWord;
        bool valid = false;
    };

    EmbeddingCacheConfig cfg;
    std::vector<Slot> slots;
    stats::CounterGroup stats_;
};

} // namespace mnnfast::fpga

#endif // MNNFAST_FPGA_EMBEDDING_CACHE_HH
