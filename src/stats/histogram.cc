#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace mnnfast::stats {

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo(lo), hi(hi), counts(bins, 0)
{
    if (bins == 0)
        fatal("Histogram needs at least one bin");
    if (!(lo < hi))
        fatal("Histogram range is empty: [%g, %g)", lo, hi);
}

void
Histogram::add(double sample)
{
    // A NaN would fall through both range tests below and reach the
    // bin computation, where casting NaN * bins to size_t is undefined
    // behavior; infinities would poison `sum`. Quarantine every
    // non-finite sample in its own counter instead.
    if (!std::isfinite(sample)) {
        ++nonfinite;
        return;
    }
    ++samples;
    sum += sample;
    if (sample < lo) {
        ++under;
    } else if (sample >= hi) {
        ++over;
    } else {
        const double frac = (sample - lo) / (hi - lo);
        size_t idx = static_cast<size_t>(frac * counts.size());
        idx = std::min(idx, counts.size() - 1);
        ++counts[idx];
    }
}

uint64_t
Histogram::binCount(size_t i) const
{
    mnn_assert(i < counts.size(), "bin index out of range");
    return counts[i];
}

double
Histogram::binLow(size_t i) const
{
    mnn_assert(i < counts.size(), "bin index out of range");
    return lo + (hi - lo) * static_cast<double>(i)
               / static_cast<double>(counts.size());
}

double
Histogram::mean() const
{
    return samples ? sum / static_cast<double>(samples) : 0.0;
}

double
Histogram::fractionBelow(double x) const
{
    if (samples == 0)
        return 0.0;
    uint64_t below = under;
    for (size_t i = 0; i < counts.size(); ++i) {
        const double upper_edge =
            lo + (hi - lo) * static_cast<double>(i + 1)
               / static_cast<double>(counts.size());
        if (upper_edge <= x)
            below += counts[i];
    }
    return static_cast<double>(below) / static_cast<double>(samples);
}

double
Histogram::quantile(double p) const
{
    if (!(p >= 0.0 && p <= 1.0))
        fatal("quantile probability %g outside [0, 1]", p);
    if (samples == 0)
        return 0.0;

    // Rank of the requested quantile among all recorded samples
    // (under/overflow included, so a heavy tail outside the range
    // still pulls the quantile toward the boundary it escaped past).
    const double rank = p * static_cast<double>(samples);
    if (rank <= static_cast<double>(under))
        return lo;

    double cum = static_cast<double>(under);
    const double width =
        (hi - lo) / static_cast<double>(counts.size());
    for (size_t i = 0; i < counts.size(); ++i) {
        const double c = static_cast<double>(counts[i]);
        if (cum + c >= rank && c > 0.0) {
            const double frac = (rank - cum) / c;
            return binLow(i) + frac * width;
        }
        cum += c;
    }
    // The rank lands in the overflow mass.
    return hi;
}

void
Histogram::merge(const Histogram &other)
{
    if (lo != other.lo || hi != other.hi
        || counts.size() != other.counts.size()) {
        fatal("merging histograms of different geometry: "
              "[%g, %g) x %zu vs [%g, %g) x %zu",
              lo, hi, counts.size(), other.lo, other.hi,
              other.counts.size());
    }
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    under += other.under;
    over += other.over;
    samples += other.samples;
    nonfinite += other.nonfinite;
    sum += other.sum;
}

std::string
Histogram::toString(size_t bar_width) const
{
    // Under/overflow scale the bars too: an overloaded latency
    // histogram whose mass escaped past `hi` must show that, not
    // render a flat (and misleading) in-range picture.
    uint64_t peak = 1;
    for (uint64_t c : counts)
        peak = std::max(peak, c);
    peak = std::max(peak, std::max(under, over));

    std::string out;
    char line[160];
    const auto bar = [&](uint64_t c) {
        return static_cast<size_t>(static_cast<double>(c)
                                   / static_cast<double>(peak)
                                   * static_cast<double>(bar_width));
    };
    if (under > 0) {
        std::snprintf(line, sizeof(line), "[%8s<%.3g) %10llu |", "",
                      lo, static_cast<unsigned long long>(under));
        out += line;
        out.append(bar(under), '#');
        out += '\n';
    }
    for (size_t i = 0; i < counts.size(); ++i) {
        std::snprintf(line, sizeof(line), "[%10.4g) %10llu |", binLow(i),
                      static_cast<unsigned long long>(counts[i]));
        out += line;
        out.append(bar(counts[i]), '#');
        out += '\n';
    }
    if (over > 0) {
        std::snprintf(line, sizeof(line), "[%7s>=%.3g) %10llu |", "",
                      hi, static_cast<unsigned long long>(over));
        out += line;
        out.append(bar(over), '#');
        out += '\n';
    }
    if (nonfinite > 0) {
        std::snprintf(line, sizeof(line), "non-finite: %llu\n",
                      static_cast<unsigned long long>(nonfinite));
        out += line;
    }
    return out;
}

void
Histogram::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    under = over = samples = nonfinite = 0;
    sum = 0.0;
}

} // namespace mnnfast::stats
