/**
 * @file
 * Named statistic counters, in the spirit of gem5's stats package but
 * deliberately small: the simulators in src/sim and src/fpga expose
 * their observable behaviour (hits, misses, DRAM lines, skipped MACs)
 * exclusively through these counters, which keeps the benches and
 * tests honest — they read the same numbers.
 */

#ifndef MNNFAST_STATS_COUNTER_HH
#define MNNFAST_STATS_COUNTER_HH

#include <cstdint>
#include <map>
#include <string>

namespace mnnfast::stats {

/** A simple monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Add n events (default one). */
    void add(uint64_t n = 1) { total += n; }

    /** Current count. */
    uint64_t value() const { return total; }

    /** Reset to zero. */
    void reset() { total = 0; }

    Counter &operator+=(uint64_t n) { total += n; return *this; }
    Counter &operator++() { ++total; return *this; }

  private:
    uint64_t total = 0;
};

/**
 * A group of named counters. Components own a CounterGroup and register
 * references into it so all statistics can be dumped uniformly.
 */
class CounterGroup
{
  public:
    /** Access (creating on first use) the counter with this name. */
    Counter &operator[](const std::string &name) { return counters[name]; }

    /** Read-only lookup; returns 0 for unknown names. */
    uint64_t
    value(const std::string &name) const
    {
        const auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second.value();
    }

    /** Reset every counter in the group. */
    void
    resetAll()
    {
        for (auto &kv : counters)
            kv.second.reset();
    }

    /** Iterate (name, counter) pairs in name order. */
    const std::map<std::string, Counter> &all() const { return counters; }

  private:
    std::map<std::string, Counter> counters;
};

} // namespace mnnfast::stats

#endif // MNNFAST_STATS_COUNTER_HH
