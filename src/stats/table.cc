#include "stats/table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "util/logging.hh"

namespace mnnfast::stats {

Table::Table(std::vector<std::string> headers)
    : header(std::move(headers))
{
    if (header.empty())
        fatal("Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header.size()) {
        fatal("Table row has %zu cells, expected %zu",
              cells.size(), header.size());
    }
    body.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::num(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
Table::toString() const
{
    std::vector<size_t> widths(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : body)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line.append(widths[c] - row[c].size() + 2, ' ');
        }
        line += '\n';
        return line;
    };

    std::string out = render_row(header);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto &row : body)
        out += render_row(row);
    return out;
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
}

} // namespace mnnfast::stats
