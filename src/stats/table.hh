/**
 * @file
 * Aligned-column text tables. Every bench harness prints its
 * figure/table rows through this class so outputs have a uniform,
 * easily diffable format.
 */

#ifndef MNNFAST_STATS_TABLE_HH
#define MNNFAST_STATS_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mnnfast::stats {

/** A text table with a header row and uniformly padded columns. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Convenience: format an integer. */
    static std::string num(uint64_t v);

    /** Render with padding, a header separator, and trailing newline. */
    std::string toString() const;

    /** Print to stdout. */
    void print() const;

    /** Number of data rows. */
    size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

} // namespace mnnfast::stats

#endif // MNNFAST_STATS_TABLE_HH
