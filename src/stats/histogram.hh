/**
 * @file
 * Fixed-bin histogram used by the probability-distribution experiment
 * (paper Fig. 6) and the simulators' latency distributions.
 */

#ifndef MNNFAST_STATS_HISTOGRAM_HH
#define MNNFAST_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mnnfast::stats {

/**
 * A histogram over [lo, hi) with equal-width bins plus underflow and
 * overflow buckets.
 */
class Histogram
{
  public:
    /**
     * @param lo    Lower bound of the tracked range (inclusive).
     * @param hi    Upper bound of the tracked range (exclusive).
     * @param bins  Number of equal-width bins; must be >= 1.
     */
    Histogram(double lo, double hi, size_t bins);

    /**
     * Record one sample. Non-finite samples (NaN, +-inf) are counted
     * in a dedicated bucket — see nonFinite() — and excluded from the
     * bins, the under/overflow buckets, count(), and the mean: a NaN
     * must never reach the bin computation (casting NaN * bins to an
     * integer is undefined behavior) and an infinity would poison the
     * running sum.
     */
    void add(double sample);

    /** Finite samples recorded so far (including under/overflow). */
    uint64_t count() const { return samples; }

    /** Count in bin i (0 <= i < bins()). */
    uint64_t binCount(size_t i) const;

    /** Number of regular bins. */
    size_t bins() const { return counts.size(); }

    /** Lower edge of bin i. */
    double binLow(size_t i) const;

    /** Samples below lo / at-or-above hi. */
    uint64_t underflow() const { return under; }
    uint64_t overflow() const { return over; }

    /** Non-finite samples quarantined by add(). */
    uint64_t nonFinite() const { return nonfinite; }

    /** Mean of all recorded finite samples. */
    double mean() const;

    /** Fraction of samples falling at or below x (approximate, by bin). */
    double fractionBelow(double x) const;

    /**
     * The p-quantile (0 <= p <= 1) of the recorded samples,
     * interpolated linearly within the containing bin. Underflow mass
     * is attributed to `lo` and overflow mass to `hi` (the histogram
     * cannot resolve positions outside its range, so the returned
     * value is clamped to [lo, hi]).
     *
     * Pinned edge cases (tested in stats_test.cc):
     *  - Empty histogram: returns 0 — including one that only ever
     *    saw non-finite samples, which add() quarantines outside the
     *    quantile mass (the quantile of nothing has no meaningful
     *    value; 0 is a safe sentinel for latency reporting).
     *  - Single-bin histogram: the quantile is the linear position of
     *    the rank within [lo, hi] — the histogram cannot resolve
     *    sample positions inside a bin.
     *  - p outside [0, 1] is fatal.
     */
    double quantile(double p) const;

    /**
     * Fold another histogram's samples into this one. Both histograms
     * must have identical geometry (lo, hi, bin count); merging
     * mismatched geometries is a fatal error. Used to aggregate
     * per-worker latency histograms into one service-wide snapshot.
     */
    void merge(const Histogram &other);

    /**
     * Render a compact multi-line ASCII bar chart. Underflow and
     * overflow mass get their own leading/trailing rows (rendered
     * only when nonzero, and included in the bar scaling), so a
     * histogram whose samples escaped the tracked range is visibly
     * different from one that captured everything.
     */
    std::string toString(size_t bar_width = 40) const;

    /** Drop all samples. */
    void reset();

  private:
    double lo;
    double hi;
    std::vector<uint64_t> counts;
    uint64_t under = 0;
    uint64_t over = 0;
    uint64_t samples = 0;
    uint64_t nonfinite = 0;
    double sum = 0.0;
};

} // namespace mnnfast::stats

#endif // MNNFAST_STATS_HISTOGRAM_HH
