#include "stats/csv.hh"

#include "util/logging.hh"

namespace mnnfast::stats {

namespace {

std::string
escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

} // namespace

CsvWriter::CsvWriter(const std::string &path)
    : out(path, std::ios::trunc)
{
    if (!out)
        fatal("cannot open CSV output file '%s'", path.c_str());
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (size_t i = 0; i < cells.size(); ++i) {
        out << escape(cells[i]);
        if (i + 1 < cells.size())
            out << ',';
    }
    out << '\n';
}

void
CsvWriter::close()
{
    if (out.is_open())
        out.close();
}

CsvWriter::~CsvWriter()
{
    close();
}

} // namespace mnnfast::stats
