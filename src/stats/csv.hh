/**
 * @file
 * Minimal CSV writer so bench harnesses can optionally dump their data
 * series for external plotting, alongside the human-readable table.
 */

#ifndef MNNFAST_STATS_CSV_HH
#define MNNFAST_STATS_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace mnnfast::stats {

/** Writes rows of string cells to a file in RFC-4180-compatible CSV. */
class CsvWriter
{
  public:
    /** Open (truncate) the target file; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write one row. Cells containing commas/quotes are quoted. */
    void writeRow(const std::vector<std::string> &cells);

    /** Flush and close; also done by the destructor. */
    void close();

    ~CsvWriter();

  private:
    std::ofstream out;
};

} // namespace mnnfast::stats

#endif // MNNFAST_STATS_CSV_HH
