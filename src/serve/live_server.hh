/**
 * @file
 * The live QA serving runtime: a real, multi-threaded counterpart of
 * the discrete-event simulator in qa_server.hh.
 *
 *   clients --submit()--> RequestQueue --popBatch()--> engine workers
 *                         (bounded,      (size cap +    (replicated or
 *                          rejects        oldest-Q       sharded KB,
 *                          when full)     timeout)       see below)
 *
 * Admission. submit() copies the question vector, stamps it, and
 * offers it to a bounded queue. A full (or closing) queue rejects the
 * request immediately — backpressure by refusal, never by blocking
 * the client — and the rejection is counted, split by cause
 * (queue-full vs. shutdown) so overload metrics are not polluted by
 * clean shutdowns. An accepted request returns a std::future<Answer>
 * that is guaranteed to become ready: shutdown drains the queue
 * before the workers exit, so every accepted request is answered
 * exactly once (tested).
 *
 * Batching. Workers pull batches with RequestQueue::popBatch, whose
 * dispatch rule — release at `maxBatch` pending or when the oldest
 * pending request has waited `batchTimeout` — is the same policy the
 * simulator implements in simulated time. This is deliberate: the
 * serving claim inherited from the paper is that a batch shares one
 * streaming pass over the knowledge base (t(n) = base + n * slope),
 * and keeping the policies identical lets bench/serving_live replay
 * one workload through both and compare the model against wall-clock
 * reality.
 *
 * Execution has three modes — two in-process (selected by
 * LiveServerConfig::shards) and one remote (selected by constructing
 * over a BatchBackend):
 *
 *  - Replicated (shards <= 1): each of the `workers` dispatch loops
 *    owns a private ColumnEngine over the whole (read-only) KB, so
 *    concurrent batches proceed independently — but N workers stream
 *    the KB N times, paying redundant bandwidth (the paper's §6
 *    scalability critique).
 *  - Sharded (shards >= 2): the KB is partitioned once into
 *    chunk-aligned shards (core::ShardedKnowledgeBase) and a single
 *    dispatch loop scatters each batch across a core::ShardedEngine
 *    whose `workers`-thread pool streams one shard per worker; the
 *    dispatching loop gathers the online-softmax partials in
 *    canonical shard order. One batch at a time, every worker on the
 *    same batch, each KB byte streamed once per batch — and the
 *    answers are bit-identical to the replicated mode's (see
 *    sharded_engine.hh).
 *  - Cluster (the BatchBackend constructor): the same bounded queue
 *    and dynamic batcher feed a remote scatter/gather backend —
 *    canonically a net::ClusterFrontEnd over shard node processes —
 *    through two loops: a *dispatch* loop that pops batches,
 *    flattens them, and submits into the backend's in-flight window
 *    (blocking only when the window is full — that is the
 *    backpressure that keeps the bounded queue absorbing and
 *    eventually refusing arrivals), and a *retire* loop that waits
 *    tickets in submission order and fulfills the promises. With a
 *    window W >= 2, batch k+1 scatters while batch k gathers. The
 *    backend's lossless path is bit-identical to the in-process
 *    sharded mode over the same partition; a batch the backend fails
 *    closed still fulfills its futures — with Answer::failed set and
 *    an empty output — so accepted-request conservation holds under
 *    every fault. Per-shard RPC counters, partial-answer and
 *    failed-batch totals are threaded into snapshot() via
 *    BatchBackend::countersInto.
 *
 * Engines hold scratch state and are not thread-safe, but the KB is
 * immutable while serving, so workers scale without locking. Worker
 * threads come from a runtime::ThreadPool; per-worker ScratchArenas
 * inside the engines reach steady state after the first batch, so the
 * serving loop is allocation-quiet.
 *
 * Observability. Each dispatch loop updates a private LatencyRecorder
 * (queue-wait / service / end-to-end histograms + batch counters)
 * under a per-slot mutex that snapshot() also takes, so a live
 * snapshot is always consistent; admission counters (arrived,
 * rejectedFull, rejectedShutdown) are atomics on the submit path.
 * snapshot() latches the admission counters *before* merging the
 * completion histograms — see LiveServer::snapshot for the ordering
 * guarantee that buys.
 */

#ifndef MNNFAST_SERVE_LIVE_SERVER_HH
#define MNNFAST_SERVE_LIVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include <deque>

#include "core/column_engine.hh"
#include "core/knowledge_base.hh"
#include "core/sharded_engine.hh"
#include "core/sharded_knowledge_base.hh"
#include "runtime/thread_pool.hh"
#include "serve/batch_backend.hh"
#include "serve/latency_recorder.hh"
#include "serve/request_queue.hh"

namespace mnnfast::serve {

/** Outcome of one submit() call. */
enum class SubmitStatus {
    Accepted,     ///< queued; the ticket's future will become ready
    Rejected,     ///< bounded queue full — backpressure, try later
    ShuttingDown, ///< server is draining; no new admissions
};

/** A completed request: the response vector plus its timings. */
struct Answer
{
    std::vector<float> o;          ///< ed-dimensional response
    size_t batchSize = 0;          ///< size of the batch it rode in
    double queueWaitSeconds = 0.0; ///< enqueue -> batch dispatch
    double serviceSeconds = 0.0;   ///< the engine call (batch-shared)
    /** Cluster mode only: the batch failed closed (no shard subset
     *  merged) and `o` is empty. In-process modes never fail. */
    bool failed = false;
    /** Cluster mode only: bit s set = shard s contributed to `o`.
     *  Zero for in-process modes and failed batches. */
    uint32_t shardMask = 0;
};

/** submit() result: a status and, when accepted, the answer future. */
struct Ticket
{
    SubmitStatus status = SubmitStatus::Rejected;
    std::future<Answer> answer; ///< valid only when accepted()

    bool accepted() const { return status == SubmitStatus::Accepted; }
};

/** Live-runtime tunables; the batching fields mirror ServerConfig. */
struct LiveServerConfig
{
    /** Maximum questions per dispatched batch. */
    size_t maxBatch = 32;
    /** Dispatch a partial batch once its oldest question waited this
     *  long (seconds). Zero means dispatch immediately when nonempty. */
    double batchTimeout = 2.0e-3;
    /** Engine workers. Replicated mode: independent dispatch loops,
     *  each owning a private full-KB ColumnEngine. Sharded mode: the
     *  scatter width of the single ShardedEngine. */
    size_t workers = 1;
    /** Knowledge-base shards for scatter/gather dispatch. 0 or 1
     *  keeps the replicated mode; >= 2 partitions the KB (boundaries
     *  aligned to engine.chunkSize) and scatters every batch across
     *  the worker pool, one shard per worker. See the file header. */
    size_t shards = 0;
    /** Bounded-queue capacity; submissions beyond it are rejected. */
    size_t queueCapacity = 1024;
    /** Per-worker engine tunables (threads=0 keeps engines inline —
     *  parallelism comes from serving concurrent batches or, in
     *  sharded mode, from the scatter pool; nested pools would
     *  oversubscribe the cores). Coarse routing flows through here
     *  too: set engine.routePolicy / routeTopK / routeBoundThreshold
     *  and every dispatch slot routes — replicated workers select
     *  globally, sharded scatter selects per shard, with bit-identical
     *  answers between the modes (see sharded_engine.hh). */
    core::EngineConfig engine;
    /** Latency histogram range; samples above land in overflow (and
     *  clamp quantiles to the range — the exact max is still kept). */
    double histogramMaxSeconds = 0.5;
    /** Latency histogram resolution. The default (~7.6 us bins over
     *  0.5 s) resolves microsecond-scale engine latencies while still
     *  covering deep-overload queueing; 3 histograms x 8 B bins is
     *  ~1.5 MiB per worker. */
    size_t histogramBins = 65536;
};

/** The live serving runtime. See file header. */
class LiveServer
{
  public:
    /**
     * Start the workers. The knowledge base must be non-empty, must
     * not be mutated while the server runs, and must outlive it.
     */
    LiveServer(const core::KnowledgeBase &kb,
               const LiveServerConfig &cfg);

    /**
     * Cluster mode: dispatch batches through `backend` (canonically a
     * net::ClusterFrontEnd) instead of in-process engines. The
     * backend must outlive the server and be used by nothing else
     * while serving (the server owns its submit/wait threads).
     * `embedding_dim` is the question width submit() expects;
     * cfg.workers/shards/engine are ignored (execution lives behind
     * the backend).
     */
    LiveServer(BatchBackend &backend, size_t embedding_dim,
               const LiveServerConfig &cfg);

    LiveServer(const LiveServer &) = delete;
    LiveServer &operator=(const LiveServer &) = delete;

    /** Drains and stops (equivalent to shutdown()). */
    ~LiveServer();

    /**
     * Submit one question (ed floats, copied). Never blocks: returns
     * Rejected when the bounded queue is full and ShuttingDown once
     * shutdown began.
     */
    Ticket submit(const float *u);

    /**
     * Stop admissions, serve every already-accepted request, and join
     * the workers. Idempotent; after it returns, every accepted
     * future is ready and the counters are final.
     */
    void shutdown();

    /**
     * Consistent service-wide statistics (callable while serving).
     *
     * Ordering guarantee: the admission counters (arrived, then the
     * rejection split) are latched *before* the completion histograms
     * are merged. Every admitted request lives in the bounded queue
     * or a dispatched batch until its completion is recorded, so the
     * apparent backlog `arrived - rejected - completed` never exceeds
     * queueCapacity + engineSlots * maxBatch — a snapshot can show a
     * just-completed request as completed-but-not-yet-arrived
     * (transiently *under*-counting the backlog) but never reports
     * phantom in-flight requests (the artifact of the reverse order).
     * After shutdown(), arrived == rejected + completed exactly.
     */
    LatencySnapshot snapshot() const;

    /** Embedding dimension submit() expects. */
    size_t embeddingDim() const { return ed; }

    /** False once shutdown has begun. */
    bool accepting() const { return !stopping.load(); }

    /** True when batches are scattered across a sharded KB. */
    bool sharded() const { return cfg.shards >= 2; }

    /** True when batches dispatch through a remote BatchBackend. */
    bool remote() const { return backend != nullptr; }

    /** Dispatch loops: cfg.workers replicated slots, or 1 sharded /
     *  cluster recording slot. */
    size_t engineSlots() const { return workerSlots.size(); }

    const LiveServerConfig &config() const { return cfg; }

  private:
    struct Request
    {
        std::vector<float> u;
        std::promise<Answer> promise;
    };

    /** One dispatch slot: engine + its privately-written recorder. */
    struct Worker
    {
        Worker(std::unique_ptr<core::InferenceEngine> engine,
               const LiveServerConfig &cfg)
            : engine(std::move(engine)),
              recorder(cfg.histogramMaxSeconds, cfg.histogramBins)
        {}

        std::unique_ptr<core::InferenceEngine> engine;
        LatencyRecorder recorder;
        std::mutex recorderMutex; ///< worker writes vs snapshot reads
    };

    /** One dispatched-but-unretired cluster batch: the flattened
     *  question/answer buffers must stay stable from submitBatch to
     *  waitBatch, so each batch owns heap storage. */
    struct PendingBatch
    {
        std::vector<RequestQueue<Request>::Entry> entries;
        std::vector<float> uflat;
        std::vector<float> oflat;
        uint64_t ticket = 0;
        std::chrono::steady_clock::time_point dispatched;
    };

    void workerLoop(size_t slot);
    void dispatchLoop(); ///< cluster: queue -> backend window
    void retireLoop();   ///< cluster: backend -> promises, in order

    const core::KnowledgeBase *kb; ///< null in cluster mode
    BatchBackend *backend;         ///< null in in-process modes
    size_t ed;                     ///< question width
    LiveServerConfig cfg;
    std::chrono::nanoseconds timeoutNs;

    RequestQueue<Request> queue;
    /** The shard partition (sharded mode only; engines point at it). */
    std::unique_ptr<core::ShardedKnowledgeBase> sharding;
    std::vector<std::unique_ptr<Worker>> workerSlots;

    /** Cluster mode: submitted batches awaiting retirement, oldest
     *  first — the dispatch loop pushes, the retire loop pops. */
    std::deque<std::unique_ptr<PendingBatch>> retireQueue;
    std::mutex retireMutex;
    std::condition_variable retireCv;
    bool dispatchDone = false; ///< guarded by retireMutex

    std::atomic<uint64_t> arrived{0};
    std::atomic<uint64_t> rejectedFull{0};
    std::atomic<uint64_t> rejectedShutdown{0};
    std::atomic<bool> stopping{false};
    std::once_flag shutdownOnce;

    // Declared last so the pool (and its worker loops, which touch
    // every member above) is torn down first.
    runtime::ThreadPool pool;
};

} // namespace mnnfast::serve

#endif // MNNFAST_SERVE_LIVE_SERVER_HH
