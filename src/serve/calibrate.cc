#include "serve/calibrate.hh"

#include <algorithm>
#include <random>
#include <vector>

#include "util/logging.hh"
#include "util/timer.hh"

namespace mnnfast::serve {

namespace {

/** Median service time of `repeats` inferBatch calls at batch `nq`. */
double
medianSeconds(core::InferenceEngine &engine, const float *u, size_t nq,
              float *o, size_t repeats)
{
    // One untimed call: faults in the KB pages for this sweep pattern
    // and lets the engine's scratch arenas grow to steady state, so
    // the timed repetitions measure the serving loop, not first-touch.
    engine.inferBatch(u, nq, o);

    std::vector<double> samples(repeats);
    Timer timer;
    for (double &s : samples) {
        timer.reset();
        engine.inferBatch(u, nq, o);
        s = timer.seconds();
    }
    std::nth_element(samples.begin(),
                     samples.begin() + samples.size() / 2, samples.end());
    return samples[samples.size() / 2];
}

} // namespace

ServiceTimeFit
calibrateServiceTimes(core::InferenceEngine &engine, size_t ed,
                      size_t smallBatch, size_t largeBatch,
                      size_t repeats, uint64_t seed)
{
    mnn_assert(smallBatch >= 1 && largeBatch > smallBatch,
               "calibration needs two distinct batch sizes");
    mnn_assert(repeats >= 1, "calibration needs at least one repeat");

    std::vector<float> u(largeBatch * ed);
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<float> dist(-1.f, 1.f);
    for (float &v : u)
        v = dist(rng);
    std::vector<float> o(largeBatch * ed);

    ServiceTimeFit fit;
    fit.smallBatch = smallBatch;
    fit.largeBatch = largeBatch;
    fit.smallSeconds =
        medianSeconds(engine, u.data(), smallBatch, o.data(), repeats);
    fit.largeSeconds =
        medianSeconds(engine, u.data(), largeBatch, o.data(), repeats);

    // Two-point affine fit. Timing noise can make the line slope down
    // (strong amortization + jitter) or cross zero; clamp both
    // coefficients so the simulator always sees a valid service model.
    const double slope = (fit.largeSeconds - fit.smallSeconds)
                         / double(largeBatch - smallBatch);
    fit.perQuestionSeconds = std::max(0.0, slope);
    fit.batchBaseSeconds =
        std::max(0.0, fit.smallSeconds
                          - double(smallBatch) * fit.perQuestionSeconds);
    return fit;
}

} // namespace mnnfast::serve
