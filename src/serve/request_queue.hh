/**
 * @file
 * Bounded MPMC queue with backpressure and a batch-aware consumer,
 * the admission stage of the live serving runtime.
 *
 * Producers (client threads calling LiveServer::submit) offer items
 * with tryPush(), which stamps the enqueue time and *fails* — rather
 * than blocks — when the queue is at capacity or closed. Rejecting at
 * admission is the backpressure policy a latency-bound service wants:
 * a request that would have queued past its deadline is cheaper to
 * refuse immediately than to serve late.
 *
 * Consumers (engine workers) call popBatch(), which implements the
 * *same* dynamic-batching policy as the discrete-event simulator in
 * qa_server.cc: a batch is released only when `maxBatch` items are
 * pending or the oldest pending item has waited `timeout` — so the
 * live runtime and the simulator dispatch under identical rules and
 * their behaviour can be compared point for point. close() wakes all
 * waiters; remaining items drain as immediate partial batches (no
 * timeout wait), after which popBatch returns false forever — the
 * shutdown handshake that guarantees no accepted item is lost.
 */

#ifndef MNNFAST_SERVE_REQUEST_QUEUE_HH
#define MNNFAST_SERVE_REQUEST_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace mnnfast::serve {

/** Bounded MPMC queue with enqueue timestamps. See file header. */
template <typename T>
class RequestQueue
{
  public:
    using Clock = std::chrono::steady_clock;

    /** An item together with the moment tryPush accepted it. */
    struct Entry
    {
        T item;
        Clock::time_point enqueued;
    };

    /** @param capacity Maximum pending items; must be >= 1. */
    explicit RequestQueue(size_t capacity) : capacity(capacity)
    {
        if (capacity == 0)
            fatal("request queue needs a nonzero capacity");
    }

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /**
     * Offer one item. Returns false — without blocking — when the
     * queue is full or closed; the item is untouched in that case.
     */
    bool
    tryPush(T &&item)
    {
        bool wake;
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (closed || entries.size() >= capacity)
                return false;
            entries.push_back(Entry{std::move(item), Clock::now()});
            // Notify only when a consumer is actually parked: under
            // overload every consumer is busy computing, and an
            // unconditional notify_one per push is a syscall on the
            // producer's (latency-sensitive) admission path. The
            // waiter count is mutated under this mutex, and a
            // consumer re-checks the queue under the same mutex
            // before parking, so a push can never be missed.
            wake = waiters > 0;
        }
        // A single new item can complete a full batch or be a new
        // head; either way at most one waiting consumer can make
        // progress from it.
        if (wake)
            cv_consumer.notify_one();
        return true;
    }

    /**
     * Wait for a batch and move it into `out` (cleared first).
     *
     * Dispatch condition (identical to the simulator's): at least
     * `maxBatch` items are pending, or the oldest pending item has
     * waited `timeout`. After close(), pending items are released
     * immediately as (partial) batches; once the queue is both closed
     * and empty this returns false and `out` stays empty.
     */
    bool
    popBatch(size_t maxBatch, std::chrono::nanoseconds timeout,
             std::vector<Entry> &out)
    {
        mnn_assert(maxBatch >= 1, "popBatch needs a nonzero batch cap");
        out.clear();
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            if (entries.empty()) {
                if (closed)
                    return false;
                ++waiters;
                cv_consumer.wait(lock);
                --waiters;
                continue;
            }
            const auto deadline = entries.front().enqueued + timeout;
            if (closed || entries.size() >= maxBatch
                || Clock::now() >= deadline)
                break;
            ++waiters;
            cv_consumer.wait_until(lock, deadline);
            --waiters;
        }
        const size_t n = std::min(entries.size(), maxBatch);
        out.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            out.push_back(std::move(entries.front()));
            entries.pop_front();
        }
        // If items remain (queue was over the cap, or a close is
        // draining), another consumer may be able to run right away.
        const bool wake = !entries.empty() && waiters > 0;
        lock.unlock();
        if (wake)
            cv_consumer.notify_one();
        return true;
    }

    /**
     * Stop admissions and wake every consumer. Pending items remain
     * poppable (as immediate batches); new tryPush calls fail.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            closed = true;
        }
        cv_consumer.notify_all();
    }

    /** Pending item count (racy outside the producer/consumer). */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return entries.size();
    }

    /** True once close() has been called. */
    bool
    isClosed() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return closed;
    }

  private:
    const size_t capacity;
    mutable std::mutex mutex;
    std::condition_variable cv_consumer;
    std::deque<Entry> entries;
    size_t waiters = 0; ///< consumers parked on cv (guarded by mutex)
    bool closed = false;
};

} // namespace mnnfast::serve

#endif // MNNFAST_SERVE_REQUEST_QUEUE_HH
