/**
 * @file
 * Calibration bridge from a measured engine to the serving simulator.
 *
 * The qa_server simulation is parameterized by the affine service-time
 * model t(n) = batchBaseSeconds + n * perQuestionSeconds. With the
 * query-blocked dataflow this model is structural, not a hand-wave:
 * the knowledge-base stream is paid once per batch (the base) and each
 * extra question adds only cache-resident arithmetic (the slope). This
 * helper measures a real engine at two batch sizes and fits the two
 * coefficients, so simulator studies (batching policy, worker count,
 * arrival rate) run against the machine actually being modelled.
 */

#ifndef MNNFAST_SERVE_CALIBRATE_HH
#define MNNFAST_SERVE_CALIBRATE_HH

#include <cstddef>
#include <cstdint>

#include "core/engine.hh"
#include "serve/qa_server.hh"

namespace mnnfast::serve {

/** A fitted affine service-time model plus the measurements behind it. */
struct ServiceTimeFit
{
    double batchBaseSeconds = 0.0;   ///< fitted t(0), clamped >= 0
    double perQuestionSeconds = 0.0; ///< fitted slope, clamped >= 0
    size_t smallBatch = 0;           ///< first measured batch size
    size_t largeBatch = 0;           ///< second measured batch size
    double smallSeconds = 0.0;       ///< median t(smallBatch)
    double largeSeconds = 0.0;       ///< median t(largeBatch)

    /** Install the fitted coefficients into a simulator config. */
    void
    apply(ServerConfig &cfg) const
    {
        cfg.batchBaseSeconds = batchBaseSeconds;
        cfg.perQuestionSeconds = perQuestionSeconds;
    }
};

/**
 * Measure `engine` at two batch sizes and fit the affine model.
 *
 * Question vectors are synthesized deterministically from `seed`; each
 * batch size is timed `repeats` times (after one untimed warm-up call
 * that also lets the engine's scratch arenas reach steady state) and
 * the median is used, so one scheduling hiccup cannot skew the fit.
 * The slope is clamped to >= 0, and the base to >= 0 — on a machine
 * where amortization is so strong that t(large) < t(small) the fit
 * degrades gracefully instead of going negative.
 *
 * @param engine     Engine to measure (its KB defines the stream cost).
 * @param ed         Embedding dimension of the engine's KB.
 * @param smallBatch First batch size (>= 1).
 * @param largeBatch Second batch size (> smallBatch).
 * @param repeats    Timed repetitions per batch size (>= 1).
 * @param seed       Question-vector synthesis seed.
 */
ServiceTimeFit calibrateServiceTimes(core::InferenceEngine &engine,
                                     size_t ed, size_t smallBatch = 1,
                                     size_t largeBatch = 16,
                                     size_t repeats = 5,
                                     uint64_t seed = 1);

} // namespace mnnfast::serve

#endif // MNNFAST_SERVE_CALIBRATE_HH
