/**
 * @file
 * Serving-side observability: per-worker latency histograms and
 * monotonic counters, merged into a service-wide snapshot.
 *
 * Each engine worker owns one LatencyRecorder and updates it without
 * synchronization (a worker is the only writer of its recorder while
 * the server runs). Three latency axes are tracked per completed
 * request — queue wait (enqueue -> batch dispatch), service (the
 * engine call, shared by the batch), and end-to-end (enqueue ->
 * completion) — in identical-geometry stats::Histograms so snapshots
 * can merge them across workers with Histogram::merge and read
 * p50/p95/p99 off Histogram::quantile. Counters follow the
 * stats::Counter idiom: arrived / completed / rejected at admission,
 * batches and batched-question totals per worker.
 *
 * LatencySnapshot is plain data plus a toJson() serializer, so benches
 * and examples export the same numbers the tests assert on.
 */

#ifndef MNNFAST_SERVE_LATENCY_RECORDER_HH
#define MNNFAST_SERVE_LATENCY_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/histogram.hh"

namespace mnnfast::serve {

/**
 * Per-shard RPC accounting for cluster serving (net::ClusterFrontEnd
 * writes these; zero and absent for in-process serving). Counters
 * follow the stats::Counter idiom: monotone, merged by addition.
 */
struct RpcShardCounters
{
    uint64_t rpcs = 0;           ///< scatter sends (incl. retries/hedges)
    uint64_t hedgesFired = 0;    ///< backup requests launched
    uint64_t hedgeWins = 0;      ///< responses won by the backup
    uint64_t failovers = 0;      ///< replica switches (timeout/disconnect)
    uint64_t deadlineMisses = 0; ///< batches this shard never answered

    void
    addFrom(const RpcShardCounters &o)
    {
        rpcs += o.rpcs;
        hedgesFired += o.hedgesFired;
        hedgeWins += o.hedgeWins;
        failovers += o.failovers;
        deadlineMisses += o.deadlineMisses;
    }
};

/** Merged quantile view of one latency axis. */
struct LatencyQuantiles
{
    uint64_t count = 0;
    double mean = 0.0; ///< seconds
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0; ///< largest recorded sample (exact, not binned)
};

/** Service-wide view at one instant; see LiveServer::snapshot(). */
struct LatencySnapshot
{
    uint64_t arrived = 0;  ///< submit() calls, accepted or not
    /**
     * Total refusals (== rejectedFull + rejectedShutdown). Kept so
     * existing consumers see one number; the split below is what
     * overload analysis should read — a clean shutdown refusing
     * late submissions is not backpressure.
     */
    uint64_t rejected = 0;
    uint64_t rejectedFull = 0;     ///< bounded queue at capacity
    uint64_t rejectedShutdown = 0; ///< server was draining
    uint64_t completed = 0;        ///< futures fulfilled
    uint64_t batches = 0;   ///< engine dispatches
    double meanBatchSize = 0.0;

    LatencyQuantiles queueWait;
    LatencyQuantiles service;
    LatencyQuantiles endToEnd;

    /**
     * Cluster RPC accounting: slot s = shard s. Empty for in-process
     * serving (the JSON export then omits the "rpc" block entirely,
     * keeping existing consumers unchanged).
     */
    std::vector<RpcShardCounters> rpcShards;
    /** Questions answered from a strict subset of the shards. */
    uint64_t partialAnswers = 0;
    /**
     * Batches that failed closed (no shard subset merged, output
     * untouched). Their timings are deliberately *absent* from the
     * latency histograms above: a deadline-capped failure recorded as
     * a "completion" would pin the success quantiles at the deadline
     * exactly when the tail matters most.
     */
    uint64_t failedBatches = 0;

    /** Sum of rpcShards (all shards). */
    RpcShardCounters rpcTotals() const;

    /** Serialize every field as one pretty-printed JSON object. */
    std::string toJson(int indent = 0) const;
};

/**
 * One worker's latency record. Not thread-safe: a recorder has exactly
 * one writer (its worker); aggregation happens after the workers have
 * quiesced or via mergeInto on a caller-synchronized copy.
 */
class LatencyRecorder
{
  public:
    /**
     * @param maxSeconds Histogram range upper bound; samples at or
     *                   above it land in the overflow bucket (and clamp
     *                   quantiles to maxSeconds).
     * @param bins       Histogram resolution.
     */
    explicit LatencyRecorder(double maxSeconds = 1.0, size_t bins = 4096);

    /** Record one completed request's three latency axes (seconds). */
    void recordRequest(double queue_wait, double service,
                       double end_to_end);

    /** Record one dispatched batch of n requests. */
    void recordBatch(size_t n);

    /**
     * Mutable RPC counters of shard `s` (the vector grows on demand).
     * Single-writer like the histograms: the owning dispatch loop
     * updates, aggregation happens via mergeInto.
     */
    RpcShardCounters &rpcShard(size_t s);

    /** Record `n` questions answered without every shard. */
    void recordPartialAnswers(uint64_t n) { partialAnswerCount += n; }

    /** Record one batch that failed closed (kept out of the latency
     *  histograms — see LatencySnapshot::failedBatches). */
    void recordFailedBatch() { ++failedBatchCount; }

    /** Fold this recorder into an accumulating snapshot builder.
     *  Histogram geometries must match (Histogram::merge checks). */
    void mergeInto(LatencyRecorder &acc) const;

    /**
     * Fold only the monotone counters — per-shard RPC counters,
     * partial answers, failed batches — into `acc`, leaving its
     * histograms and batch totals untouched. This is how a serving
     * layer composes a snapshot from a backend whose recorder has a
     * different histogram geometry (see BatchBackend::countersInto).
     */
    void mergeCountersInto(LatencyRecorder &acc) const;

    /** Render the merged quantile views. */
    LatencySnapshot snapshot() const;

    uint64_t batches() const { return batchCount; }
    uint64_t batchedQuestions() const { return questionCount; }

  private:
    static LatencyQuantiles quantilesOf(const stats::Histogram &h,
                                        double max_sample);

    stats::Histogram queueWaitHist;
    stats::Histogram serviceHist;
    stats::Histogram endToEndHist;
    double queueWaitMax = 0.0;
    double serviceMax = 0.0;
    double endToEndMax = 0.0;
    uint64_t batchCount = 0;
    uint64_t questionCount = 0;
    std::vector<RpcShardCounters> rpcShardCounters;
    uint64_t partialAnswerCount = 0;
    uint64_t failedBatchCount = 0;
};

} // namespace mnnfast::serve

#endif // MNNFAST_SERVE_LATENCY_RECORDER_HH
