/**
 * @file
 * Discrete-event simulation of a question-answering service built on
 * the column-based engine — the multi-tenant serving setting the
 * paper's contention study (Fig. 4) presumes.
 *
 * The serving-side consequence of the column algorithm is that a
 * batch of questions shares one streaming pass over the knowledge
 * base (M_IN/M_OUT are read once per *batch*, not per question), so
 * the service time of a batch is
 *
 *     t(n) = batchBaseSeconds + n * perQuestionSeconds
 *
 * with a large amortizable base. The simulator runs Poisson question
 * arrivals against a batching dispatcher (size cap + oldest-question
 * timeout) over a pool of executor workers, and reports throughput,
 * latency percentiles, mean batch size and utilization — the numbers
 * a capacity planner needs to choose the batching policy.
 */

#ifndef MNNFAST_SERVE_QA_SERVER_HH
#define MNNFAST_SERVE_QA_SERVER_HH

#include <cstddef>
#include <cstdint>

namespace mnnfast::serve {

/** Service and workload parameters. */
struct ServerConfig
{
    /** Mean Poisson arrival rate, questions per second. */
    double arrivalRate = 2000.0;
    /** Maximum questions per dispatched batch. */
    size_t maxBatch = 32;
    /**
     * Dispatch a partial batch once its oldest question has waited
     * this long (seconds).
     */
    double batchTimeout = 2.0e-3;
    /** Per-batch service time: the shared knowledge-base stream. */
    double batchBaseSeconds = 1.0e-3;
    /** Marginal service time per question in the batch. */
    double perQuestionSeconds = 4.0e-5;
    /** Parallel executors (e.g., sockets or accelerator instances). */
    size_t workers = 1;
    /** Length of the arrival window simulated (seconds). */
    double simSeconds = 5.0;
    uint64_t seed = 1;
};

/** Simulation outcome. */
struct ServerStats
{
    uint64_t arrived = 0;
    uint64_t completed = 0;
    /** Completed questions / (arrival window + drain time). */
    double throughputQps = 0.0;
    double meanLatency = 0.0; ///< seconds, arrival -> completion
    double p50Latency = 0.0;
    double p95Latency = 0.0;
    double p99Latency = 0.0;
    double meanBatchSize = 0.0;
    /** Fraction of the makespan the executors were busy. */
    double utilization = 0.0;
    /** Total wall time simulated (arrival window + drain). */
    double makespan = 0.0;
};

/** Run the simulation; deterministic for a given config. */
ServerStats simulateServer(const ServerConfig &cfg);

} // namespace mnnfast::serve

#endif // MNNFAST_SERVE_QA_SERVER_HH
