#include "serve/live_server.hh"

#include <cstring>
#include <utility>

#include "util/logging.hh"

namespace mnnfast::serve {

namespace {

double
secondsBetween(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

LiveServer::LiveServer(const core::KnowledgeBase &kb,
                       const LiveServerConfig &cfg)
    : kb(&kb), backend(nullptr), ed(kb.dim()), cfg(cfg),
      timeoutNs(std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::duration<double>(cfg.batchTimeout))),
      queue(cfg.queueCapacity),
      pool(cfg.shards >= 2 ? 1 : cfg.workers)
{
    if (cfg.maxBatch == 0 || cfg.workers == 0)
        fatal("live server needs a nonzero batch cap and worker count");
    if (cfg.batchTimeout < 0.0)
        fatal("batch timeout must be non-negative");
    if (kb.size() == 0)
        fatal("live server needs a non-empty knowledge base");

    if (sharded()) {
        // One dispatch loop scattering each batch across the worker
        // pool, one shard per worker (see file header). The dispatch
        // loop blocks inside the scatter, so the active thread count
        // matches the replicated mode's.
        sharding = std::make_unique<core::ShardedKnowledgeBase>(
            kb, cfg.engine.chunkSize, cfg.shards);
        core::EngineConfig ecfg = cfg.engine;
        ecfg.threads = cfg.workers;
        workerSlots.push_back(std::make_unique<Worker>(
            std::make_unique<core::ShardedEngine>(*sharding, ecfg),
            cfg));
    } else {
        workerSlots.reserve(cfg.workers);
        for (size_t i = 0; i < cfg.workers; ++i)
            workerSlots.push_back(std::make_unique<Worker>(
                std::make_unique<core::ColumnEngine>(kb, cfg.engine),
                cfg));
    }
    for (size_t i = 0; i < workerSlots.size(); ++i)
        pool.submit([this, i] { workerLoop(i); });
}

LiveServer::LiveServer(BatchBackend &backend_, size_t embedding_dim,
                       const LiveServerConfig &cfg)
    : kb(nullptr), backend(&backend_), ed(embedding_dim), cfg(cfg),
      timeoutNs(std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::duration<double>(cfg.batchTimeout))),
      queue(cfg.queueCapacity),
      pool(2) // dispatch + retire
{
    if (cfg.maxBatch == 0)
        fatal("live server needs a nonzero batch cap");
    if (cfg.batchTimeout < 0.0)
        fatal("batch timeout must be non-negative");
    if (ed == 0)
        fatal("cluster live server needs a nonzero embedding dim");

    // One engine-less slot holds the retire loop's recorder so
    // snapshot() composes identically across modes.
    workerSlots.push_back(std::make_unique<Worker>(nullptr, cfg));
    pool.submit([this] { dispatchLoop(); });
    pool.submit([this] { retireLoop(); });
}

LiveServer::~LiveServer()
{
    shutdown();
}

Ticket
LiveServer::submit(const float *u)
{
    Ticket ticket;
    arrived.fetch_add(1, std::memory_order_relaxed);
    if (stopping.load(std::memory_order_acquire)) {
        rejectedShutdown.fetch_add(1, std::memory_order_relaxed);
        ticket.status = SubmitStatus::ShuttingDown;
        return ticket;
    }

    Request req;
    req.u.assign(u, u + ed);
    std::future<Answer> answer = req.promise.get_future();
    if (!queue.tryPush(std::move(req))) {
        // Full queue or a close that raced with the stopping check;
        // either way the request was not admitted and the (unused)
        // promise dies with `req`. Attribute the refusal to its cause
        // so backpressure metrics stay clean of shutdown noise.
        if (queue.isClosed()) {
            rejectedShutdown.fetch_add(1, std::memory_order_relaxed);
            ticket.status = SubmitStatus::ShuttingDown;
        } else {
            rejectedFull.fetch_add(1, std::memory_order_relaxed);
            ticket.status = SubmitStatus::Rejected;
        }
        return ticket;
    }
    ticket.status = SubmitStatus::Accepted;
    ticket.answer = std::move(answer);
    return ticket;
}

void
LiveServer::workerLoop(size_t slot)
{
    Worker &w = *workerSlots[slot];
    core::InferenceEngine &engine = *w.engine;
    std::vector<RequestQueue<Request>::Entry> batch;
    std::vector<float> uflat;
    std::vector<float> oflat;
    std::vector<double> waits;

    // The dispatch critical path — everything between popBatch and
    // the last set_value — is kept lean: single-request batches (the
    // serial policy, and any low-load partial dispatch) infer straight
    // from the request's question buffer into the answer's, skipping
    // the flatten/unflatten copies; queue waits are computed once into
    // a reused buffer; and the recorder update runs only after every
    // waiting client has been released, off the critical path.
    while (queue.popBatch(cfg.maxBatch, timeoutNs, batch)) {
        const auto dispatched = std::chrono::steady_clock::now();
        const size_t n = batch.size();
        waits.resize(n);
        for (size_t i = 0; i < n; ++i)
            waits[i] = secondsBetween(batch[i].enqueued, dispatched);

        double service;
        if (n == 1) {
            Answer a;
            a.o.resize(ed);
            engine.inferBatch(batch[0].item.u.data(), 1, a.o.data());
            service = secondsBetween(dispatched,
                                     std::chrono::steady_clock::now());
            a.batchSize = 1;
            a.queueWaitSeconds = waits[0];
            a.serviceSeconds = service;
            batch[0].item.promise.set_value(std::move(a));
        } else {
            uflat.resize(n * ed);
            oflat.resize(n * ed);
            for (size_t i = 0; i < n; ++i)
                std::memcpy(uflat.data() + i * ed,
                            batch[i].item.u.data(), ed * sizeof(float));
            engine.inferBatch(uflat.data(), n, oflat.data());
            service = secondsBetween(dispatched,
                                     std::chrono::steady_clock::now());
            for (size_t i = 0; i < n; ++i) {
                Answer a;
                a.o.assign(oflat.data() + i * ed,
                           oflat.data() + (i + 1) * ed);
                a.batchSize = n;
                a.queueWaitSeconds = waits[i];
                a.serviceSeconds = service;
                batch[i].item.promise.set_value(std::move(a));
            }
        }

        {
            std::lock_guard<std::mutex> lock(w.recorderMutex);
            w.recorder.recordBatch(n);
            for (size_t i = 0; i < n; ++i)
                w.recorder.recordRequest(waits[i], service,
                                         waits[i] + service);
        }
    }
}

void
LiveServer::dispatchLoop()
{
    std::vector<RequestQueue<Request>::Entry> batch;
    while (queue.popBatch(cfg.maxBatch, timeoutNs, batch)) {
        auto pb = std::make_unique<PendingBatch>();
        pb->dispatched = std::chrono::steady_clock::now();
        pb->entries = std::move(batch);
        const size_t n = pb->entries.size();
        pb->uflat.resize(n * ed);
        pb->oflat.resize(n * ed);
        for (size_t i = 0; i < n; ++i)
            std::memcpy(pb->uflat.data() + i * ed,
                        pb->entries[i].item.u.data(),
                        ed * sizeof(float));
        // Blocks while the backend's in-flight window is full — the
        // backpressure that lets the bounded queue fill and refuse.
        pb->ticket =
            backend->submitBatch(pb->uflat.data(), n, ed,
                                 pb->oflat.data());
        {
            std::lock_guard<std::mutex> lock(retireMutex);
            retireQueue.push_back(std::move(pb));
        }
        retireCv.notify_one();
    }
    {
        std::lock_guard<std::mutex> lock(retireMutex);
        dispatchDone = true;
    }
    retireCv.notify_all();
}

void
LiveServer::retireLoop()
{
    Worker &w = *workerSlots[0];
    std::vector<double> waits;
    for (;;) {
        std::unique_ptr<PendingBatch> pb;
        {
            std::unique_lock<std::mutex> lock(retireMutex);
            retireCv.wait(lock, [this] {
                return dispatchDone || !retireQueue.empty();
            });
            if (retireQueue.empty())
                break; // dispatchDone and nothing left to retire
            pb = std::move(retireQueue.front());
            retireQueue.pop_front();
        }

        // Submission-order wait: the retire queue is FIFO over the
        // dispatch loop's submit order, which is exactly the ticket
        // order the backend requires.
        const BatchResult r = backend->waitBatch(pb->ticket);
        const double service =
            secondsBetween(pb->dispatched,
                           std::chrono::steady_clock::now());
        const size_t n = pb->entries.size();
        waits.resize(n);
        for (size_t i = 0; i < n; ++i)
            waits[i] = secondsBetween(pb->entries[i].enqueued,
                                      pb->dispatched);

        const bool failed = r.shardsAnswered == 0;
        for (size_t i = 0; i < n; ++i) {
            Answer a;
            if (!failed)
                a.o.assign(pb->oflat.data() + i * ed,
                           pb->oflat.data() + (i + 1) * ed);
            a.batchSize = n;
            a.queueWaitSeconds = waits[i];
            a.serviceSeconds = service;
            a.failed = failed;
            a.shardMask = r.shardMask;
            pb->entries[i].item.promise.set_value(std::move(a));
        }

        // Every fulfilled future is a completion — failed batches
        // included, so `completed + rejected == arrived` holds exactly
        // after shutdown (the Answer::failed flag carries the quality
        // signal; the backend's own recorder is where fail-closed
        // timings stay out of the success histograms).
        {
            std::lock_guard<std::mutex> lock(w.recorderMutex);
            w.recorder.recordBatch(n);
            for (size_t i = 0; i < n; ++i)
                w.recorder.recordRequest(waits[i], service,
                                         waits[i] + service);
        }
    }
}

void
LiveServer::shutdown()
{
    std::call_once(shutdownOnce, [this] {
        // Order matters: refuse new admissions, then wake the workers
        // so they drain the queue as immediate partial batches, then
        // wait for the last batch to complete. popBatch returns false
        // only once the queue is closed *and* empty, so no accepted
        // request can be left behind.
        stopping.store(true, std::memory_order_release);
        queue.close();
        pool.waitIdle();
    });
}

LatencySnapshot
LiveServer::snapshot() const
{
    // Latch the admission counters *before* merging the completion
    // histograms — arrived first, then the rejection split (each
    // rejection was preceded by its arrival increment, each completion
    // by its admission). See the header for the backlog guarantee
    // this ordering buys.
    const uint64_t a = arrived.load(std::memory_order_relaxed);
    const uint64_t rf = rejectedFull.load(std::memory_order_relaxed);
    const uint64_t rs =
        rejectedShutdown.load(std::memory_order_relaxed);

    LatencyRecorder merged(cfg.histogramMaxSeconds, cfg.histogramBins);
    for (const auto &w : workerSlots) {
        std::lock_guard<std::mutex> lock(w->recorderMutex);
        w->recorder.mergeInto(merged);
    }
    if (backend)
        backend->countersInto(merged);
    LatencySnapshot s = merged.snapshot();
    s.arrived = a;
    s.rejectedFull = rf;
    s.rejectedShutdown = rs;
    s.rejected = rf + rs;
    return s;
}

} // namespace mnnfast::serve
