#include "serve/live_server.hh"

#include <cstring>
#include <utility>

#include "util/logging.hh"
#include "util/timer.hh"

namespace mnnfast::serve {

namespace {

double
secondsBetween(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

LiveServer::LiveServer(const core::KnowledgeBase &kb,
                       const LiveServerConfig &cfg)
    : kb(kb), cfg(cfg),
      timeoutNs(std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::duration<double>(cfg.batchTimeout))),
      queue(cfg.queueCapacity), pool(cfg.workers)
{
    if (cfg.maxBatch == 0 || cfg.workers == 0)
        fatal("live server needs a nonzero batch cap and worker count");
    if (cfg.batchTimeout < 0.0)
        fatal("batch timeout must be non-negative");
    if (kb.size() == 0)
        fatal("live server needs a non-empty knowledge base");

    workerSlots.reserve(cfg.workers);
    for (size_t i = 0; i < cfg.workers; ++i)
        workerSlots.push_back(std::make_unique<Worker>(kb, cfg));
    for (size_t i = 0; i < cfg.workers; ++i)
        pool.submit([this, i] { workerLoop(i); });
}

LiveServer::~LiveServer()
{
    shutdown();
}

Ticket
LiveServer::submit(const float *u)
{
    Ticket ticket;
    arrived.fetch_add(1, std::memory_order_relaxed);
    if (stopping.load(std::memory_order_acquire)) {
        rejected.fetch_add(1, std::memory_order_relaxed);
        ticket.status = SubmitStatus::ShuttingDown;
        return ticket;
    }

    Request req;
    req.u.assign(u, u + kb.dim());
    std::future<Answer> answer = req.promise.get_future();
    if (!queue.tryPush(std::move(req))) {
        // Full queue or a close that raced with the stopping check;
        // either way the request was not admitted and the (unused)
        // promise dies with `req`.
        rejected.fetch_add(1, std::memory_order_relaxed);
        ticket.status = queue.isClosed() ? SubmitStatus::ShuttingDown
                                         : SubmitStatus::Rejected;
        return ticket;
    }
    ticket.status = SubmitStatus::Accepted;
    ticket.answer = std::move(answer);
    return ticket;
}

void
LiveServer::workerLoop(size_t slot)
{
    Worker &w = *workerSlots[slot];
    const size_t ed = kb.dim();
    std::vector<RequestQueue<Request>::Entry> batch;
    std::vector<float> uflat;
    std::vector<float> oflat;

    while (queue.popBatch(cfg.maxBatch, timeoutNs, batch)) {
        const auto dispatched = std::chrono::steady_clock::now();
        const size_t n = batch.size();
        uflat.resize(n * ed);
        oflat.resize(n * ed);
        for (size_t i = 0; i < n; ++i)
            std::memcpy(uflat.data() + i * ed, batch[i].item.u.data(),
                        ed * sizeof(float));

        Timer timer;
        w.engine.inferBatch(uflat.data(), n, oflat.data());
        const double service = timer.seconds();
        const auto done = std::chrono::steady_clock::now();

        {
            std::lock_guard<std::mutex> lock(w.recorderMutex);
            w.recorder.recordBatch(n);
            for (size_t i = 0; i < n; ++i) {
                w.recorder.recordRequest(
                    secondsBetween(batch[i].enqueued, dispatched),
                    service,
                    secondsBetween(batch[i].enqueued, done));
            }
        }

        for (size_t i = 0; i < n; ++i) {
            Answer a;
            a.o.assign(oflat.data() + i * ed,
                       oflat.data() + (i + 1) * ed);
            a.batchSize = n;
            a.queueWaitSeconds =
                secondsBetween(batch[i].enqueued, dispatched);
            a.serviceSeconds = service;
            batch[i].item.promise.set_value(std::move(a));
        }
    }
}

void
LiveServer::shutdown()
{
    std::call_once(shutdownOnce, [this] {
        // Order matters: refuse new admissions, then wake the workers
        // so they drain the queue as immediate partial batches, then
        // wait for the last batch to complete. popBatch returns false
        // only once the queue is closed *and* empty, so no accepted
        // request can be left behind.
        stopping.store(true, std::memory_order_release);
        queue.close();
        pool.waitIdle();
    });
}

LatencySnapshot
LiveServer::snapshot() const
{
    LatencyRecorder merged(cfg.histogramMaxSeconds, cfg.histogramBins);
    for (const auto &w : workerSlots) {
        std::lock_guard<std::mutex> lock(w->recorderMutex);
        w->recorder.mergeInto(merged);
    }
    LatencySnapshot s = merged.snapshot();
    s.arrived = arrived.load(std::memory_order_relaxed);
    s.rejected = rejected.load(std::memory_order_relaxed);
    return s;
}

} // namespace mnnfast::serve
