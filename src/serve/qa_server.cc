#include "serve/qa_server.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "sim/event_queue.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace mnnfast::serve {

namespace {

/** Simulation time unit: nanoseconds. */
constexpr double kTicksPerSecond = 1e9;

sim::Tick
toTicks(double seconds)
{
    return static_cast<sim::Tick>(seconds * kTicksPerSecond);
}

double
toSeconds(sim::Tick ticks)
{
    return static_cast<double>(ticks) / kTicksPerSecond;
}

/** Event-driven server state. */
class Server
{
  public:
    explicit Server(const ServerConfig &cfg)
        : cfg(cfg), rng(cfg.seed), free_workers(cfg.workers)
    {
        if (cfg.maxBatch == 0 || cfg.workers == 0)
            fatal("server needs a nonzero batch cap and worker count");
        if (cfg.arrivalRate <= 0.0)
            fatal("arrival rate must be positive");
    }

    ServerStats
    run()
    {
        scheduleArrival();
        queue_events.run();

        ServerStats stats;
        stats.arrived = arrived;
        stats.completed = latencies.size();
        stats.makespan = toSeconds(last_completion);
        if (stats.makespan > 0.0) {
            stats.throughputQps =
                static_cast<double>(stats.completed) / stats.makespan;
            stats.utilization =
                busy_ticks
                / (static_cast<double>(last_completion)
                   * static_cast<double>(cfg.workers));
        }
        if (!latencies.empty()) {
            std::sort(latencies.begin(), latencies.end());
            double sum = 0.0;
            for (double l : latencies)
                sum += l;
            stats.meanLatency = sum / double(latencies.size());
            stats.p50Latency = percentile(0.50);
            stats.p95Latency = percentile(0.95);
            stats.p99Latency = percentile(0.99);
        }
        if (batches > 0) {
            stats.meanBatchSize =
                static_cast<double>(stats.completed)
                / static_cast<double>(batches);
        }
        return stats;
    }

  private:
    double
    percentile(double q) const
    {
        const size_t idx = std::min(
            latencies.size() - 1,
            static_cast<size_t>(q * double(latencies.size())));
        return latencies[idx];
    }

    void
    scheduleArrival()
    {
        // Exponential inter-arrival times; arrivals stop at the end
        // of the configured window (the queue then drains).
        double u = 0.0;
        while (u == 0.0)
            u = rng.uniform();
        const double gap = -std::log(u) / cfg.arrivalRate;
        const sim::Tick when = queue_events.now() + toTicks(gap);
        if (when > toTicks(cfg.simSeconds))
            return;
        queue_events.schedule(when, [this] {
            ++arrived;
            pending.push_back(queue_events.now());
            if (pending.size() == 1)
                scheduleTimeoutCheck(queue_events.now());
            dispatchIfReady();
            scheduleArrival();
        });
    }

    void
    scheduleTimeoutCheck(sim::Tick head_arrival)
    {
        queue_events.schedule(
            head_arrival + toTicks(cfg.batchTimeout), [this] {
                dispatchIfReady();
            });
    }

    /** True if the queue head has waited past the batch timeout. */
    bool
    headTimedOut() const
    {
        return !pending.empty()
            && queue_events.now()
                   >= pending.front() + toTicks(cfg.batchTimeout);
    }

    void
    dispatchIfReady()
    {
        while (free_workers > 0
               && (pending.size() >= cfg.maxBatch || headTimedOut())) {
            const size_t n = std::min(pending.size(), cfg.maxBatch);
            mnn_assert(n > 0, "dispatch of an empty batch");

            const sim::Tick service = toTicks(
                cfg.batchBaseSeconds
                + double(n) * cfg.perQuestionSeconds);
            const sim::Tick done = queue_events.now() + service;

            std::vector<sim::Tick> batch_arrivals(
                pending.begin(),
                pending.begin() + static_cast<long>(n));
            pending.erase(pending.begin(),
                          pending.begin() + static_cast<long>(n));

            --free_workers;
            ++batches;
            busy_ticks += static_cast<double>(service);

            queue_events.schedule(done, [this, batch_arrivals] {
                const sim::Tick now = queue_events.now();
                for (sim::Tick a : batch_arrivals)
                    latencies.push_back(toSeconds(now - a));
                last_completion = std::max(last_completion, now);
                ++free_workers;
                dispatchIfReady();
            });

            // The remaining head (if any) gets its own timeout check;
            // an already-expired head is handled by this loop or by
            // the next completion, so only future checks are queued.
            if (!pending.empty() && !headTimedOut())
                scheduleTimeoutCheck(pending.front());
        }
    }

    ServerConfig cfg;
    XorShiftRng rng;
    sim::EventQueue queue_events;

    std::deque<sim::Tick> pending; ///< arrival times, FIFO
    size_t free_workers;
    uint64_t arrived = 0;
    uint64_t batches = 0;
    double busy_ticks = 0.0;
    sim::Tick last_completion = 0;
    std::vector<double> latencies;
};

} // namespace

ServerStats
simulateServer(const ServerConfig &cfg)
{
    Server server(cfg);
    return server.run();
}

} // namespace mnnfast::serve
