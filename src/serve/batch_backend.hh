/**
 * @file
 * The serving-side contract for a pipelined batch execution backend —
 * the seam that lets serve::LiveServer dispatch through a remote
 * cluster front end without the serve library depending on net/.
 *
 * A BatchBackend executes question batches asynchronously with a
 * bounded in-flight window:
 *
 *   submitBatch() hands over a batch and returns a ticket, blocking
 *   only while the backend's window is full — that block is the
 *   serving-side backpressure that keeps the bounded admission queue
 *   upstream absorbing (and eventually refusing) arrivals.
 *
 *   waitBatch() blocks until the ticket's batch has settled and
 *   reports what happened; tickets MUST be waited in submission
 *   order (the window is a FIFO: completion order is delivery order,
 *   whatever order the shards answered in).
 *
 * The canonical implementation is net::ClusterFrontEnd, whose
 * lossless path is bit-identical to an in-process ShardedEngine over
 * the same partition; LiveServer's dispatch/retire loops are written
 * against this interface only.
 *
 * Threading contract: one thread submits, one thread waits — the two
 * may be (and in LiveServer are) different threads, overlapping the
 * scatter of batch k+1 with the gather of batch k.
 */

#ifndef MNNFAST_SERVE_BATCH_BACKEND_HH
#define MNNFAST_SERVE_BATCH_BACKEND_HH

#include <cstddef>
#include <cstdint>

#include "serve/latency_recorder.hh"

namespace mnnfast::serve {

/** Outcome of one batch. */
struct BatchResult
{
    /** Every shard contributed (bit-identity holds iff true). */
    bool complete = false;
    /** Shards merged into the answer; 0 means the batch failed and
     *  the output buffer was not written. */
    uint32_t shardsAnswered = 0;
    /** Bit s set = shard s contributed to the merged answer. */
    uint32_t shardMask = 0;
};

/** Asynchronous batch executor with a bounded window. See header. */
class BatchBackend
{
  public:
    virtual ~BatchBackend() = default;

    /**
     * Submit one batch: `u` (nq x ed questions, row-major) to be
     * answered into `o` (nq x ed). Both buffers must stay valid until
     * the returned ticket is waited. Blocks while the in-flight
     * window is full.
     */
    virtual uint64_t submitBatch(const float *u, size_t nq, size_t ed,
                                 float *o) = 0;

    /**
     * Block until `ticket`'s batch settled; `o` is written iff
     * shardsAnswered > 0. Tickets must be waited in submission order.
     */
    virtual BatchResult waitBatch(uint64_t ticket) = 0;

    /** The in-flight window size W (>= 1). */
    virtual size_t pipelineDepth() const = 0;

    /**
     * Fold the backend's *counters* — per-shard RPC counters, partial
     * answers, failed batches — into `acc` without touching its
     * histograms, so a serving layer can compose a snapshot from a
     * recorder of different histogram geometry. Thread-safe.
     */
    virtual void countersInto(LatencyRecorder &acc) const = 0;
};

} // namespace mnnfast::serve

#endif // MNNFAST_SERVE_BATCH_BACKEND_HH
