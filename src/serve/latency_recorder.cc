#include "serve/latency_recorder.hh"

#include <algorithm>
#include <cstdio>

namespace mnnfast::serve {

LatencyRecorder::LatencyRecorder(double maxSeconds, size_t bins)
    : queueWaitHist(0.0, maxSeconds, bins),
      serviceHist(0.0, maxSeconds, bins),
      endToEndHist(0.0, maxSeconds, bins)
{
}

void
LatencyRecorder::recordRequest(double queue_wait, double service,
                               double end_to_end)
{
    queueWaitHist.add(queue_wait);
    serviceHist.add(service);
    endToEndHist.add(end_to_end);
    queueWaitMax = std::max(queueWaitMax, queue_wait);
    serviceMax = std::max(serviceMax, service);
    endToEndMax = std::max(endToEndMax, end_to_end);
}

void
LatencyRecorder::recordBatch(size_t n)
{
    ++batchCount;
    questionCount += n;
}

RpcShardCounters &
LatencyRecorder::rpcShard(size_t s)
{
    if (s >= rpcShardCounters.size())
        rpcShardCounters.resize(s + 1);
    return rpcShardCounters[s];
}

void
LatencyRecorder::mergeInto(LatencyRecorder &acc) const
{
    acc.queueWaitHist.merge(queueWaitHist);
    acc.serviceHist.merge(serviceHist);
    acc.endToEndHist.merge(endToEndHist);
    acc.queueWaitMax = std::max(acc.queueWaitMax, queueWaitMax);
    acc.serviceMax = std::max(acc.serviceMax, serviceMax);
    acc.endToEndMax = std::max(acc.endToEndMax, endToEndMax);
    acc.batchCount += batchCount;
    acc.questionCount += questionCount;
    mergeCountersInto(acc);
}

void
LatencyRecorder::mergeCountersInto(LatencyRecorder &acc) const
{
    if (acc.rpcShardCounters.size() < rpcShardCounters.size())
        acc.rpcShardCounters.resize(rpcShardCounters.size());
    for (size_t s = 0; s < rpcShardCounters.size(); ++s)
        acc.rpcShardCounters[s].addFrom(rpcShardCounters[s]);
    acc.partialAnswerCount += partialAnswerCount;
    acc.failedBatchCount += failedBatchCount;
}

LatencyQuantiles
LatencyRecorder::quantilesOf(const stats::Histogram &h, double max_sample)
{
    LatencyQuantiles q;
    q.count = h.count();
    q.mean = h.mean();
    q.p50 = h.quantile(0.50);
    q.p95 = h.quantile(0.95);
    q.p99 = h.quantile(0.99);
    q.max = max_sample;
    return q;
}

LatencySnapshot
LatencyRecorder::snapshot() const
{
    LatencySnapshot s;
    s.completed = endToEndHist.count();
    s.batches = batchCount;
    if (batchCount > 0)
        s.meanBatchSize = static_cast<double>(questionCount)
                          / static_cast<double>(batchCount);
    s.queueWait = quantilesOf(queueWaitHist, queueWaitMax);
    s.service = quantilesOf(serviceHist, serviceMax);
    s.endToEnd = quantilesOf(endToEndHist, endToEndMax);
    s.rpcShards = rpcShardCounters;
    s.partialAnswers = partialAnswerCount;
    s.failedBatches = failedBatchCount;
    return s;
}

RpcShardCounters
LatencySnapshot::rpcTotals() const
{
    RpcShardCounters t;
    for (const RpcShardCounters &c : rpcShards)
        t.addFrom(c);
    return t;
}

namespace {

std::string
quantilesJson(const char *name, const LatencyQuantiles &q,
              const std::string &pad)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\": {\"count\": %llu, \"mean\": %.9f, "
                  "\"p50\": %.9f, \"p95\": %.9f, \"p99\": %.9f, "
                  "\"max\": %.9f}",
                  pad.c_str(), name,
                  static_cast<unsigned long long>(q.count), q.mean,
                  q.p50, q.p95, q.p99, q.max);
    return buf;
}

std::string
rpcCountersJson(const RpcShardCounters &c)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"rpcs\": %llu, \"hedges_fired\": %llu, "
                  "\"hedge_wins\": %llu, \"failovers\": %llu, "
                  "\"deadline_misses\": %llu}",
                  static_cast<unsigned long long>(c.rpcs),
                  static_cast<unsigned long long>(c.hedgesFired),
                  static_cast<unsigned long long>(c.hedgeWins),
                  static_cast<unsigned long long>(c.failovers),
                  static_cast<unsigned long long>(c.deadlineMisses));
    return buf;
}

} // namespace

std::string
LatencySnapshot::toJson(int indent) const
{
    const std::string pad(static_cast<size_t>(indent), ' ');
    const std::string in = pad + "  ";
    char head[768];
    std::snprintf(head, sizeof(head),
                  "{\n%s\"arrived\": %llu,\n%s\"rejected\": %llu,\n"
                  "%s\"rejected_full\": %llu,\n"
                  "%s\"rejected_shutdown\": %llu,\n"
                  "%s\"completed\": %llu,\n%s\"batches\": %llu,\n"
                  "%s\"mean_batch_size\": %.4f,\n",
                  in.c_str(), static_cast<unsigned long long>(arrived),
                  in.c_str(), static_cast<unsigned long long>(rejected),
                  in.c_str(),
                  static_cast<unsigned long long>(rejectedFull),
                  in.c_str(),
                  static_cast<unsigned long long>(rejectedShutdown),
                  in.c_str(), static_cast<unsigned long long>(completed),
                  in.c_str(), static_cast<unsigned long long>(batches),
                  in.c_str(), meanBatchSize);
    std::string out = head;
    out += quantilesJson("queue_wait_seconds", queueWait, in) + ",\n";
    out += quantilesJson("service_seconds", service, in) + ",\n";
    out += quantilesJson("end_to_end_seconds", endToEnd, in);
    // The rpc block only exists for cluster serving; in-process
    // snapshots keep their exact pre-cluster shape.
    if (!rpcShards.empty()) {
        out += ",\n" + in + "\"rpc\": {\n";
        const std::string in2 = in + "  ";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(partialAnswers));
        out += in2 + "\"partial_answers\": " + buf + ",\n";
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(failedBatches));
        out += in2 + "\"failed_batches\": " + buf + ",\n";
        out += in2 + "\"totals\": " + rpcCountersJson(rpcTotals()) + ",\n";
        out += in2 + "\"per_shard\": [";
        for (size_t s = 0; s < rpcShards.size(); ++s) {
            if (s)
                out += ", ";
            out += rpcCountersJson(rpcShards[s]);
        }
        out += "]\n" + in + "}";
    }
    out += "\n" + pad + "}";
    return out;
}

} // namespace mnnfast::serve
