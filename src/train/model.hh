/**
 * @file
 * Trainable end-to-end memory network (Sukhbaatar et al., 2015),
 * the network the paper accelerates.
 *
 * Architecture (BoW variant, as in the paper's Section 2.1):
 *   u^0        = sum_{w in question} B[w]
 *   m_i^h      = sum_{w in sentence_i} A_h[w] + TA_h[i]
 *   c_i^h      = sum_{w in sentence_i} C_h[w] + TC_h[i]
 *   p^h        = softmax(u^h . m_i^h)
 *   o^h        = sum_i p_i^h c_i^h
 *   u^{h+1}    = u^h + o^h
 *   logits_v   = W[v] . u^H
 *
 * TA/TC are the standard temporal (memory-slot) embeddings; without
 * them a BoW model cannot represent "the *last* move wins", which the
 * bAbI-style tasks require. Training is plain SGD on softmax
 * cross-entropy with exact analytic gradients (verified against finite
 * differences in tests/train_gradcheck_test.cc).
 *
 * The trained weights are exported into core::EmbeddingTable /
 * core::KnowledgeBase so the inference engines (the paper's subject)
 * run on *learned* attention distributions — the sparsity that makes
 * zero-skipping work (paper Figs. 6-7) then emerges from training
 * rather than being assumed.
 */

#ifndef MNNFAST_TRAIN_MODEL_HH
#define MNNFAST_TRAIN_MODEL_HH

#include <cstdint>
#include <vector>

#include "data/babi.hh"
#include "data/vocabulary.hh"
#include "util/rng.hh"

namespace mnnfast::train {

/** Static hyperparameters of a MemNnModel. */
struct ModelConfig
{
    size_t vocabSize = 0;
    size_t embeddingDim = 32;
    size_t hops = 2;
    /** Maximum story length (sizes the temporal embeddings). */
    size_t maxStory = 64;
    /** Scale of the uniform weight initialization. */
    float initScale = 0.1f;
    /** Enable temporal embeddings TA/TC. */
    bool temporal = true;
    /**
     * Position encoding (paper footnote 1 / Sukhbaatar et al. eq. 4):
     * each word's embedding row is weighted by its in-sentence
     * position before the BoW sum, so word order inside a sentence is
     * preserved. Off by default (the paper's main configuration is
     * plain BoW).
     */
    bool positionEncoding = false;
};

/** Per-example activations retained for the backward pass. */
struct ForwardState
{
    /** Number of story sentences. */
    size_t ns = 0;
    /** u vectors at each hop boundary; u[0] is the question state. */
    std::vector<std::vector<float>> u;
    /** Per hop: ns x ed input-memory rows (flattened). */
    std::vector<std::vector<float>> m;
    /** Per hop: ns x ed output-memory rows (flattened). */
    std::vector<std::vector<float>> c;
    /** Per hop: ns attention probabilities. */
    std::vector<std::vector<float>> p;
    /** Per hop: ed response vector. */
    std::vector<std::vector<float>> o;
    /** Vocabulary logits (pre-softmax). */
    std::vector<float> logits;
};

/** Flat parameter (or gradient) storage for the model. */
struct ParamSet
{
    std::vector<float> b;               ///< V x ed question embedding
    std::vector<std::vector<float>> a;  ///< hops x (V x ed)
    std::vector<std::vector<float>> c;  ///< hops x (V x ed)
    std::vector<std::vector<float>> ta; ///< hops x (maxStory x ed)
    std::vector<std::vector<float>> tc; ///< hops x (maxStory x ed)
    std::vector<float> w;               ///< V x ed output projection

    /** Allocate all tensors (zero-filled) for `cfg`. */
    void allocate(const ModelConfig &cfg);

    /** Set every element to zero. */
    void zero();

    /** Sum of squares of every parameter (for clipping / tests). */
    double squaredNorm() const;

    /** this += scale * other (elementwise, matching shapes). */
    void addScaled(const ParamSet &other, float scale);
};

/**
 * The trainable end-to-end MemNN. See file header for the equations.
 */
class MemNnModel
{
  public:
    /** Construct with random (uniform) initialization. */
    MemNnModel(const ModelConfig &cfg, uint64_t seed);

    /** Run the forward pass, retaining activations in `state`. */
    void forward(const data::Example &ex, ForwardState &state) const;

    /**
     * Forward pass with zero-skipping applied to every hop's weighted
     * sum: contributions with p_i < threshold are dropped (without
     * renormalization, matching the paper's Algorithm 1).
     *
     * @param kept_rows  Incremented by the number of weighted-sum rows
     *                   actually computed.
     * @param total_rows Incremented by the number of rows a full
     *                   computation would use.
     */
    void forwardSkip(const data::Example &ex, float threshold,
                     ForwardState &state, uint64_t &kept_rows,
                     uint64_t &total_rows) const;

    /**
     * Forward pass with coarse-then-fine candidate selection applied
     * to every hop's attention (the training-side mirror of the
     * serving engines' RoutePolicy::TopK; DESIGN.md §11): the hop's
     * memory rows are grouped into chunks of `chunk_rows` sentences,
     * each chunk gets a per-dimension [lo, hi] envelope, and the
     * blas::chunkBoundBatch max-inner-product upper bound picks the
     * `topk_chunks` highest-bound chunks (ties toward the lower chunk
     * index). The softmax runs over the selected rows only (p = 0
     * elsewhere, without renormalizing against the dropped mass —
     * matching the serving engines, which never see bypassed chunks'
     * exp sums) and the weighted sum touches only selected rows.
     *
     * All inner products are still computed exactly (the coarse score
     * gates which rows join the softmax, never their values), so
     * topk_chunks >= ceil(ns / chunk_rows) is bit-identical to
     * forward(). chunk_rows and topk_chunks must be nonzero (fatal).
     *
     * @param kept_rows  Incremented by the rows in selected chunks.
     * @param total_rows Incremented by ns per hop.
     */
    void forwardTopK(const data::Example &ex, size_t chunk_rows,
                     size_t topk_chunks, ForwardState &state,
                     uint64_t &kept_rows, uint64_t &total_rows) const;

    /** Cross-entropy loss of a completed forward pass. */
    double loss(const ForwardState &state, data::WordId answer) const;

    /** Arg-max prediction of a completed forward pass. */
    data::WordId predict(const ForwardState &state) const;

    /**
     * Accumulate exact gradients of loss(ex) into `grads`
     * (grads must be allocated for the same config; it is NOT zeroed).
     */
    void backward(const data::Example &ex, const ForwardState &state,
                  data::WordId answer, ParamSet &grads) const;

    /** params += -lr * grads, with global-norm gradient clipping. */
    void sgdStep(const ParamSet &grads, float lr, float clip_norm);

    const ModelConfig &config() const { return cfg; }
    const ParamSet &parameters() const { return params; }
    ParamSet &mutableParameters() { return params; }

    /** Embed a sentence with embedding matrix `emb` into out[ed]. */
    void embedInto(const data::Sentence &s, const std::vector<float> &emb,
                   float *out) const;

  private:
    void forwardImpl(const data::Example &ex, ForwardState &state,
                     float skip_threshold, uint64_t *kept_rows,
                     uint64_t *total_rows) const;

    ModelConfig cfg;
    ParamSet params;
};

} // namespace mnnfast::train

#endif // MNNFAST_TRAIN_MODEL_HH
