/**
 * @file
 * SGD training loop and evaluation utilities for MemNnModel.
 */

#ifndef MNNFAST_TRAIN_TRAINER_HH
#define MNNFAST_TRAIN_TRAINER_HH

#include <cstdint>

#include "data/babi.hh"
#include "runtime/thread_pool.hh"
#include "train/model.hh"

namespace mnnfast::train {

/** Training hyperparameters. */
struct TrainConfig
{
    size_t epochs = 30;
    float learningRate = 0.02f;
    /** Global-norm gradient clip; <= 0 disables. */
    float clipNorm = 10.0f;
    /** Halve the learning rate every `decayEvery` epochs (0 = never). */
    size_t decayEvery = 10;
    /** Log per-epoch progress through inform(). */
    bool verbose = false;
};

/** Outcome of a training run. */
struct TrainResult
{
    double finalLoss = 0.0;
    double trainAccuracy = 0.0;
    size_t epochsRun = 0;
};

/**
 * Plain per-example SGD over the dataset; epochs iterate the set in
 * order (the generator already randomizes examples).
 */
TrainResult trainModel(MemNnModel &model, const data::Dataset &train_set,
                       const TrainConfig &cfg);

/** Fraction of examples whose arg-max prediction equals the answer. */
double evaluateAccuracy(const MemNnModel &model,
                        const data::Dataset &test_set);

/**
 * Parallel evaluateAccuracy: examples are claimed dynamically off a
 * shared cursor (stories vary widely in sentence count, so static
 * spans leave workers idle at the join). Each worker runs its own
 * ForwardState; forward() is const so the model is shared read-only.
 * Returns exactly the same value as the sequential overload.
 */
double evaluateAccuracy(const MemNnModel &model,
                        const data::Dataset &test_set,
                        runtime::ThreadPool &pool);

/**
 * Accuracy with zero-skipping at `threshold`; also accumulates the
 * kept/total weighted-sum row counts so callers can report the
 * computation-reduction ratio (paper Fig. 7).
 */
double evaluateAccuracySkip(const MemNnModel &model,
                            const data::Dataset &test_set,
                            float threshold, uint64_t &kept_rows,
                            uint64_t &total_rows);

/**
 * Accuracy with coarse-then-fine top-k chunk routing at every hop
 * (MemNnModel::forwardTopK); accumulates kept/total weighted-sum row
 * counts so callers can chart accuracy against the streamed fraction
 * (the routed analogue of the paper's Fig. 7 threshold sweep).
 * topk_chunks >= every story's chunk count reproduces
 * evaluateAccuracy exactly.
 */
double evaluateAccuracyRouted(const MemNnModel &model,
                              const data::Dataset &test_set,
                              size_t chunk_rows, size_t topk_chunks,
                              uint64_t &kept_rows, uint64_t &total_rows);

} // namespace mnnfast::train

#endif // MNNFAST_TRAIN_TRAINER_HH
