#include "train/model.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "blas/kernels.hh"
#include "blas/position.hh"
#include "util/logging.hh"

namespace mnnfast::train {

using data::Example;
using data::Sentence;
using data::WordId;

void
ParamSet::allocate(const ModelConfig &cfg)
{
    const size_t ve = cfg.vocabSize * cfg.embeddingDim;
    const size_t te = cfg.maxStory * cfg.embeddingDim;
    b.assign(ve, 0.f);
    w.assign(ve, 0.f);
    a.assign(cfg.hops, std::vector<float>(ve, 0.f));
    c.assign(cfg.hops, std::vector<float>(ve, 0.f));
    ta.assign(cfg.hops, std::vector<float>(te, 0.f));
    tc.assign(cfg.hops, std::vector<float>(te, 0.f));
}

void
ParamSet::zero()
{
    auto clear = [](std::vector<float> &v) {
        std::fill(v.begin(), v.end(), 0.f);
    };
    clear(b);
    clear(w);
    for (auto &m : a) clear(m);
    for (auto &m : c) clear(m);
    for (auto &m : ta) clear(m);
    for (auto &m : tc) clear(m);
}

namespace {

double
sumSquares(const std::vector<float> &v)
{
    double s = 0.0;
    for (float x : v)
        s += static_cast<double>(x) * x;
    return s;
}

void
addScaledVec(std::vector<float> &dst, const std::vector<float> &src,
             float scale)
{
    mnn_assert(dst.size() == src.size(), "ParamSet shape mismatch");
    for (size_t i = 0; i < dst.size(); ++i)
        dst[i] += scale * src[i];
}

} // namespace

double
ParamSet::squaredNorm() const
{
    double s = sumSquares(b) + sumSquares(w);
    for (const auto &m : a) s += sumSquares(m);
    for (const auto &m : c) s += sumSquares(m);
    for (const auto &m : ta) s += sumSquares(m);
    for (const auto &m : tc) s += sumSquares(m);
    return s;
}

void
ParamSet::addScaled(const ParamSet &other, float scale)
{
    addScaledVec(b, other.b, scale);
    addScaledVec(w, other.w, scale);
    for (size_t h = 0; h < a.size(); ++h) {
        addScaledVec(a[h], other.a[h], scale);
        addScaledVec(c[h], other.c[h], scale);
        addScaledVec(ta[h], other.ta[h], scale);
        addScaledVec(tc[h], other.tc[h], scale);
    }
}

MemNnModel::MemNnModel(const ModelConfig &cfg, uint64_t seed)
    : cfg(cfg)
{
    if (cfg.vocabSize == 0 || cfg.embeddingDim == 0)
        fatal("MemNnModel needs a nonzero vocabulary and embedding dim");
    if (cfg.hops == 0)
        fatal("MemNnModel needs at least one hop");

    params.allocate(cfg);
    XorShiftRng rng(seed);
    auto init = [&](std::vector<float> &v) {
        for (float &x : v)
            x = rng.uniformRange(-cfg.initScale, cfg.initScale);
    };
    init(params.b);
    init(params.w);
    for (size_t h = 0; h < cfg.hops; ++h) {
        init(params.a[h]);
        init(params.c[h]);
        if (cfg.temporal) {
            init(params.ta[h]);
            init(params.tc[h]);
        }
    }
}

void
MemNnModel::embedInto(const Sentence &s, const std::vector<float> &emb,
                      float *out) const
{
    const size_t ed = cfg.embeddingDim;
    blas::zero(out, ed);
    for (size_t j = 0; j < s.size(); ++j) {
        const WordId w = s[j];
        mnn_assert(w < cfg.vocabSize, "word id exceeds vocabulary");
        const float *row = emb.data() + static_cast<size_t>(w) * ed;
        if (cfg.positionEncoding)
            blas::axpyPositionEncoded(row, out, j, s.size(), ed);
        else
            blas::axpy(1.0f, row, out, ed);
    }
}

void
MemNnModel::forwardImpl(const Example &ex, ForwardState &state,
                        float skip_threshold, uint64_t *kept_rows,
                        uint64_t *total_rows) const
{
    const size_t ed = cfg.embeddingDim;
    const size_t ns = ex.story.size();
    mnn_assert(ns <= cfg.maxStory, "story exceeds configured maxStory");

    state.ns = ns;
    state.u.assign(cfg.hops + 1, std::vector<float>(ed, 0.f));
    state.m.assign(cfg.hops, std::vector<float>(ns * ed, 0.f));
    state.c.assign(cfg.hops, std::vector<float>(ns * ed, 0.f));
    state.p.assign(cfg.hops, std::vector<float>(ns, 0.f));
    state.o.assign(cfg.hops, std::vector<float>(ed, 0.f));
    state.logits.assign(cfg.vocabSize, 0.f);

    embedInto(ex.question, params.b, state.u[0].data());

    for (size_t h = 0; h < cfg.hops; ++h) {
        float *m = state.m[h].data();
        float *c = state.c[h].data();
        for (size_t i = 0; i < ns; ++i) {
            embedInto(ex.story[i], params.a[h], m + i * ed);
            embedInto(ex.story[i], params.c[h], c + i * ed);
            if (cfg.temporal) {
                blas::axpy(1.0f, params.ta[h].data() + i * ed, m + i * ed,
                           ed);
                blas::axpy(1.0f, params.tc[h].data() + i * ed, c + i * ed,
                           ed);
            }
        }

        float *p = state.p[h].data();
        blas::gemv(m, ns, ed, state.u[h].data(), p);
        blas::softmax(p, ns);

        float *o = state.o[h].data();
        blas::zero(o, ed);
        for (size_t i = 0; i < ns; ++i) {
            if (total_rows)
                ++*total_rows;
            if (skip_threshold > 0.f && p[i] < skip_threshold)
                continue;
            if (kept_rows)
                ++*kept_rows;
            blas::axpy(p[i], c + i * ed, o, ed);
        }

        blas::copy(state.u[h].data(), state.u[h + 1].data(), ed);
        blas::axpy(1.0f, o, state.u[h + 1].data(), ed);
    }

    blas::gemv(params.w.data(), cfg.vocabSize, ed,
               state.u[cfg.hops].data(), state.logits.data());
}

void
MemNnModel::forward(const Example &ex, ForwardState &state) const
{
    forwardImpl(ex, state, 0.f, nullptr, nullptr);
}

void
MemNnModel::forwardSkip(const Example &ex, float threshold,
                        ForwardState &state, uint64_t &kept_rows,
                        uint64_t &total_rows) const
{
    forwardImpl(ex, state, threshold, &kept_rows, &total_rows);
}

void
MemNnModel::forwardTopK(const Example &ex, size_t chunk_rows,
                        size_t topk_chunks, ForwardState &state,
                        uint64_t &kept_rows, uint64_t &total_rows) const
{
    if (chunk_rows == 0)
        fatal("forwardTopK needs a nonzero chunk_rows");
    if (topk_chunks == 0)
        fatal("forwardTopK needs a nonzero topk_chunks");

    const size_t ed = cfg.embeddingDim;
    const size_t ns = ex.story.size();
    mnn_assert(ns <= cfg.maxStory, "story exceeds configured maxStory");

    state.ns = ns;
    state.u.assign(cfg.hops + 1, std::vector<float>(ed, 0.f));
    state.m.assign(cfg.hops, std::vector<float>(ns * ed, 0.f));
    state.c.assign(cfg.hops, std::vector<float>(ns * ed, 0.f));
    state.p.assign(cfg.hops, std::vector<float>(ns, 0.f));
    state.o.assign(cfg.hops, std::vector<float>(ed, 0.f));
    state.logits.assign(cfg.vocabSize, 0.f);

    embedInto(ex.question, params.b, state.u[0].data());

    const size_t n_chunks = (ns + chunk_rows - 1) / chunk_rows;
    const size_t k = std::min(topk_chunks, n_chunks);
    const float inf = std::numeric_limits<float>::infinity();
    std::vector<float> lo(n_chunks * ed), hi(n_chunks * ed);
    std::vector<float> scores(n_chunks);
    std::vector<size_t> order(n_chunks);
    std::vector<uint8_t> keep(n_chunks);
    std::vector<float> logits(ns), packed(ns);

    for (size_t h = 0; h < cfg.hops; ++h) {
        float *m = state.m[h].data();
        float *c = state.c[h].data();
        for (size_t i = 0; i < ns; ++i) {
            embedInto(ex.story[i], params.a[h], m + i * ed);
            embedInto(ex.story[i], params.c[h], c + i * ed);
            if (cfg.temporal) {
                blas::axpy(1.0f, params.ta[h].data() + i * ed, m + i * ed,
                           ed);
                blas::axpy(1.0f, params.tc[h].data() + i * ed, c + i * ed,
                           ed);
            }
        }

        // Exact logits for every row: the coarse score only gates
        // which rows join the softmax, never their values, so
        // k = n_chunks reproduces forward() bit for bit.
        blas::gemv(m, ns, ed, state.u[h].data(), logits.data());

        // Per-chunk [lo, hi] envelope of this hop's m rows, scored
        // with the same fused bound kernel the serving engines use.
        for (size_t ci = 0; ci < n_chunks; ++ci) {
            float *l = lo.data() + ci * ed;
            float *g = hi.data() + ci * ed;
            std::fill(l, l + ed, inf);
            std::fill(g, g + ed, -inf);
            const size_t r1 = std::min(ns, (ci + 1) * chunk_rows);
            for (size_t i = ci * chunk_rows; i < r1; ++i) {
                const float *row = m + i * ed;
                for (size_t e = 0; e < ed; ++e) {
                    l[e] = std::min(l[e], row[e]);
                    g[e] = std::max(g[e], row[e]);
                }
            }
        }
        blas::chunkBoundBatch(state.u[h].data(), 1, ed, lo.data(),
                              hi.data(), n_chunks, ed, ed, scores.data(),
                              n_chunks);

        // Top-k chunks: score descending, ties toward the lower index
        // (the serving engines' tie-break, so both sides select the
        // same set on equal scores).
        std::fill(keep.begin(), keep.end(), uint8_t{0});
        if (k >= n_chunks) {
            std::fill(keep.begin(), keep.end(), uint8_t{1});
        } else {
            for (size_t ci = 0; ci < n_chunks; ++ci)
                order[ci] = ci;
            const float *s = scores.data();
            std::nth_element(order.begin(), order.begin() + k,
                             order.end(), [s](size_t a, size_t b) {
                                 return s[a] != s[b] ? s[a] > s[b]
                                                     : a < b;
                             });
            for (size_t j = 0; j < k; ++j)
                keep[order[j]] = 1;
        }

        // Softmax restricted to selected rows: gather their logits in
        // index order (the identity permutation when every chunk is
        // kept), normalize, scatter back with p = 0 elsewhere.
        float *p = state.p[h].data();
        std::fill(p, p + ns, 0.f);
        size_t nsel = 0;
        for (size_t ci = 0; ci < n_chunks; ++ci) {
            if (!keep[ci])
                continue;
            const size_t r1 = std::min(ns, (ci + 1) * chunk_rows);
            for (size_t i = ci * chunk_rows; i < r1; ++i)
                packed[nsel++] = logits[i];
        }
        blas::softmax(packed.data(), nsel);
        size_t at = 0;
        for (size_t ci = 0; ci < n_chunks; ++ci) {
            if (!keep[ci])
                continue;
            const size_t r1 = std::min(ns, (ci + 1) * chunk_rows);
            for (size_t i = ci * chunk_rows; i < r1; ++i)
                p[i] = packed[at++];
        }

        // Weighted sum over selected rows only, in row order.
        float *o = state.o[h].data();
        blas::zero(o, ed);
        total_rows += ns;
        kept_rows += nsel;
        for (size_t ci = 0; ci < n_chunks; ++ci) {
            if (!keep[ci])
                continue;
            const size_t r1 = std::min(ns, (ci + 1) * chunk_rows);
            for (size_t i = ci * chunk_rows; i < r1; ++i)
                blas::axpy(p[i], c + i * ed, o, ed);
        }

        blas::copy(state.u[h].data(), state.u[h + 1].data(), ed);
        blas::axpy(1.0f, o, state.u[h + 1].data(), ed);
    }

    blas::gemv(params.w.data(), cfg.vocabSize, ed,
               state.u[cfg.hops].data(), state.logits.data());
}

double
MemNnModel::loss(const ForwardState &state, WordId answer) const
{
    mnn_assert(answer < cfg.vocabSize, "answer id exceeds vocabulary");
    std::vector<float> probs = state.logits;
    blas::softmax(probs.data(), probs.size());
    const double p = std::max(1e-12, double(probs[answer]));
    return -std::log(p);
}

WordId
MemNnModel::predict(const ForwardState &state) const
{
    size_t best = 0;
    for (size_t v = 1; v < state.logits.size(); ++v)
        if (state.logits[v] > state.logits[best])
            best = v;
    return static_cast<WordId>(best);
}

namespace {

/**
 * Accumulate the gradient flowing into a sentence state back into the
 * embedding rows of its tokens, mirroring embedInto's (optionally
 * position-encoded) forward weighting.
 */
void
accumulateEmbeddingGrad(const Sentence &s, const float *dvec,
                        std::vector<float> &grad, bool position_encoding,
                        size_t ed)
{
    for (size_t j = 0; j < s.size(); ++j) {
        float *row = grad.data() + static_cast<size_t>(s[j]) * ed;
        if (position_encoding) {
            for (size_t k = 0; k < ed; ++k)
                row[k] += blas::positionWeight(k, j, s.size(), ed)
                          * dvec[k];
        } else {
            blas::axpy(1.0f, dvec, row, ed);
        }
    }
}

} // namespace

void
MemNnModel::backward(const Example &ex, const ForwardState &state,
                     WordId answer, ParamSet &grads) const
{
    const size_t ed = cfg.embeddingDim;
    const size_t ns = state.ns;
    const size_t V = cfg.vocabSize;

    // dL/dlogits = softmax(logits) - onehot(answer)
    std::vector<float> dlogits = state.logits;
    blas::softmax(dlogits.data(), V);
    dlogits[answer] -= 1.0f;

    // W gradient and du at the top.
    std::vector<float> du(ed, 0.f);
    const float *u_top = state.u[cfg.hops].data();
    for (size_t v = 0; v < V; ++v) {
        const float g = dlogits[v];
        if (g == 0.f)
            continue;
        blas::axpy(g, u_top, grads.w.data() + v * ed, ed);
        blas::axpy(g, params.w.data() + v * ed, du.data(), ed);
    }

    std::vector<float> dm_row(ed, 0.f);
    std::vector<float> dc_row(ed, 0.f);
    std::vector<float> da(cfg.maxStory, 0.f);
    std::vector<float> dp(cfg.maxStory, 0.f);

    for (size_t h = cfg.hops; h-- > 0;) {
        const float *m = state.m[h].data();
        const float *c = state.c[h].data();
        const float *p = state.p[h].data();
        const float *u_h = state.u[h].data();

        // u^{h+1} = u^h + o^h, so do = du and du_h starts equal to du.
        // dp_i = c_i . do ; softmax backward ; then accumulate into
        // du_h via the inner-product term.
        double p_dot_dp = 0.0;
        for (size_t i = 0; i < ns; ++i) {
            dp[i] = blas::dot(c + i * ed, du.data(), ed);
            p_dot_dp += double(p[i]) * dp[i];
        }
        for (size_t i = 0; i < ns; ++i)
            da[i] = p[i] * (dp[i] - static_cast<float>(p_dot_dp));

        // Gradients into embeddings and the next du (du_h).
        std::vector<float> du_h(du); // residual path
        for (size_t i = 0; i < ns; ++i) {
            // dc_i = p_i * do (do == du at this hop's top)
            for (size_t e = 0; e < ed; ++e)
                dc_row[e] = p[i] * du[e];
            // dm_i = da_i * u^h
            for (size_t e = 0; e < ed; ++e)
                dm_row[e] = da[i] * u_h[e];
            // du_h += da_i * m_i
            blas::axpy(da[i], m + i * ed, du_h.data(), ed);

            accumulateEmbeddingGrad(ex.story[i], dm_row.data(),
                                    grads.a[h], cfg.positionEncoding,
                                    ed);
            accumulateEmbeddingGrad(ex.story[i], dc_row.data(),
                                    grads.c[h], cfg.positionEncoding,
                                    ed);
            if (cfg.temporal) {
                blas::axpy(1.0f, dm_row.data(),
                           grads.ta[h].data() + i * ed, ed);
                blas::axpy(1.0f, dc_row.data(),
                           grads.tc[h].data() + i * ed, ed);
            }
        }
        du = std::move(du_h);
    }

    // Question embedding gradient.
    accumulateEmbeddingGrad(ex.question, du.data(), grads.b,
                            cfg.positionEncoding, ed);
}

void
MemNnModel::sgdStep(const ParamSet &grads, float lr, float clip_norm)
{
    float scale = -lr;
    if (clip_norm > 0.f) {
        const double norm = std::sqrt(grads.squaredNorm());
        if (norm > clip_norm)
            scale *= clip_norm / static_cast<float>(norm);
    }
    params.addScaled(grads, scale);
}

} // namespace mnnfast::train
