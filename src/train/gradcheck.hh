/**
 * @file
 * Finite-difference gradient verification for MemNnModel. Lives in the
 * library (not only in tests) so examples and future training code can
 * self-check new configurations.
 */

#ifndef MNNFAST_TRAIN_GRADCHECK_HH
#define MNNFAST_TRAIN_GRADCHECK_HH

#include "data/babi.hh"
#include "train/model.hh"

namespace mnnfast::train {

/** Result of a gradient check. */
struct GradCheckResult
{
    /** Largest relative error across all probed coordinates. */
    double maxRelativeError = 0.0;
    /** Number of coordinates probed. */
    size_t probes = 0;
};

/**
 * Compare analytic gradients with central finite differences on a
 * random subset of coordinates of every tensor.
 *
 * @param model    The model (parameters are perturbed and restored).
 * @param ex       Example to compute the loss on.
 * @param probes_per_tensor  Coordinates probed per parameter tensor.
 * @param epsilon  Finite-difference step.
 */
GradCheckResult checkGradients(MemNnModel &model, const data::Example &ex,
                               size_t probes_per_tensor = 8,
                               double epsilon = 1e-3,
                               uint64_t seed = 1234);

} // namespace mnnfast::train

#endif // MNNFAST_TRAIN_GRADCHECK_HH
