#include "train/gradcheck.hh"

#include <cmath>
#include <vector>

#include "util/logging.hh"
#include "util/rng.hh"

namespace mnnfast::train {

namespace {

/**
 * Probe a few coordinates of one tensor: compare the analytic gradient
 * against (L(x+eps) - L(x-eps)) / (2 eps).
 */
void
probeTensor(MemNnModel &model, const data::Example &ex,
            std::vector<float> &tensor, const std::vector<float> &grad,
            size_t probes, double eps, XorShiftRng &rng,
            GradCheckResult &result)
{
    if (tensor.empty())
        return;
    ForwardState state;
    for (size_t k = 0; k < probes; ++k) {
        const size_t idx = rng.below(tensor.size());
        const float saved = tensor[idx];

        tensor[idx] = saved + static_cast<float>(eps);
        model.forward(ex, state);
        const double loss_plus = model.loss(state, ex.answer);

        tensor[idx] = saved - static_cast<float>(eps);
        model.forward(ex, state);
        const double loss_minus = model.loss(state, ex.answer);

        tensor[idx] = saved;

        const double numeric = (loss_plus - loss_minus) / (2.0 * eps);
        const double analytic = grad[idx];
        // Forward passes run in fp32: a gradient of ~1e-5 produces a
        // loss delta below float resolution, so the finite difference
        // reads 0. The absolute floor in the denominator keeps such
        // below-noise coordinates from dominating while still
        // catching sign/scale errors on any meaningful gradient.
        const double denom =
            std::max(1e-2, std::abs(numeric) + std::abs(analytic));
        const double rel = std::abs(numeric - analytic) / denom;
        result.maxRelativeError = std::max(result.maxRelativeError, rel);
        ++result.probes;
    }
}

} // namespace

GradCheckResult
checkGradients(MemNnModel &model, const data::Example &ex,
               size_t probes_per_tensor, double epsilon, uint64_t seed)
{
    ParamSet grads;
    grads.allocate(model.config());

    ForwardState state;
    model.forward(ex, state);
    model.backward(ex, state, ex.answer, grads);

    GradCheckResult result;
    XorShiftRng rng(seed);
    ParamSet &p = model.mutableParameters();

    probeTensor(model, ex, p.b, grads.b, probes_per_tensor, epsilon, rng,
                result);
    probeTensor(model, ex, p.w, grads.w, probes_per_tensor, epsilon, rng,
                result);
    for (size_t h = 0; h < model.config().hops; ++h) {
        probeTensor(model, ex, p.a[h], grads.a[h], probes_per_tensor,
                    epsilon, rng, result);
        probeTensor(model, ex, p.c[h], grads.c[h], probes_per_tensor,
                    epsilon, rng, result);
        if (model.config().temporal) {
            probeTensor(model, ex, p.ta[h], grads.ta[h],
                        probes_per_tensor, epsilon, rng, result);
            probeTensor(model, ex, p.tc[h], grads.tc[h],
                        probes_per_tensor, epsilon, rng, result);
        }
    }
    return result;
}

} // namespace mnnfast::train
