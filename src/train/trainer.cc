#include "train/trainer.hh"

#include <atomic>

#include "runtime/parallel_for.hh"
#include "util/logging.hh"

namespace mnnfast::train {

namespace {

/**
 * Examples per dynamically-claimed block during parallel evaluation:
 * a handful, so slow stories don't serialize the tail, while the
 * atomic claim stays off the per-example path.
 */
constexpr size_t kEvalGrain = 4;

} // namespace

TrainResult
trainModel(MemNnModel &model, const data::Dataset &train_set,
           const TrainConfig &cfg)
{
    if (train_set.size() == 0)
        fatal("cannot train on an empty dataset");

    ParamSet grads;
    grads.allocate(model.config());

    TrainResult result;
    float lr = cfg.learningRate;
    ForwardState state;

    for (size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        double epoch_loss = 0.0;
        for (const data::Example &ex : train_set.examples) {
            model.forward(ex, state);
            epoch_loss += model.loss(state, ex.answer);
            grads.zero();
            model.backward(ex, state, ex.answer, grads);
            model.sgdStep(grads, lr, cfg.clipNorm);
        }
        epoch_loss /= static_cast<double>(train_set.size());
        result.finalLoss = epoch_loss;
        ++result.epochsRun;

        if (cfg.decayEvery > 0 && (epoch + 1) % cfg.decayEvery == 0)
            lr *= 0.5f;
        if (cfg.verbose) {
            inform("epoch %zu: loss %.4f (lr %.4f)", epoch + 1,
                   epoch_loss, double(lr));
        }
    }

    result.trainAccuracy = evaluateAccuracy(model, train_set);
    return result;
}

double
evaluateAccuracy(const MemNnModel &model, const data::Dataset &test_set)
{
    if (test_set.size() == 0)
        return 0.0;
    ForwardState state;
    size_t correct = 0;
    for (const data::Example &ex : test_set.examples) {
        model.forward(ex, state);
        if (model.predict(state) == ex.answer)
            ++correct;
    }
    return static_cast<double>(correct)
         / static_cast<double>(test_set.size());
}

double
evaluateAccuracy(const MemNnModel &model, const data::Dataset &test_set,
                 runtime::ThreadPool &pool)
{
    if (test_set.size() == 0)
        return 0.0;
    // A correct-count is order-independent, so dynamic scheduling
    // cannot change the result; the per-range ForwardState amortizes
    // its allocations over the claimed examples.
    std::atomic<size_t> correct{0};
    runtime::parallelForDynamic(
        pool, test_set.size(), kEvalGrain,
        [&](size_t, runtime::Range r) {
            ForwardState state;
            size_t hits = 0;
            for (size_t i = r.begin; i < r.end; ++i) {
                const data::Example &ex = test_set.examples[i];
                model.forward(ex, state);
                if (model.predict(state) == ex.answer)
                    ++hits;
            }
            correct.fetch_add(hits, std::memory_order_relaxed);
        });
    return static_cast<double>(correct.load())
         / static_cast<double>(test_set.size());
}

double
evaluateAccuracySkip(const MemNnModel &model,
                     const data::Dataset &test_set, float threshold,
                     uint64_t &kept_rows, uint64_t &total_rows)
{
    if (test_set.size() == 0)
        return 0.0;
    ForwardState state;
    size_t correct = 0;
    for (const data::Example &ex : test_set.examples) {
        model.forwardSkip(ex, threshold, state, kept_rows, total_rows);
        if (model.predict(state) == ex.answer)
            ++correct;
    }
    return static_cast<double>(correct)
         / static_cast<double>(test_set.size());
}

double
evaluateAccuracyRouted(const MemNnModel &model,
                       const data::Dataset &test_set, size_t chunk_rows,
                       size_t topk_chunks, uint64_t &kept_rows,
                       uint64_t &total_rows)
{
    if (test_set.size() == 0)
        return 0.0;
    ForwardState state;
    size_t correct = 0;
    for (const data::Example &ex : test_set.examples) {
        model.forwardTopK(ex, chunk_rows, topk_chunks, state, kept_rows,
                          total_rows);
        if (model.predict(state) == ex.answer)
            ++correct;
    }
    return static_cast<double>(correct)
         / static_cast<double>(test_set.size());
}

} // namespace mnnfast::train
