/**
 * @file
 * Model checkpointing: save/load a trained MemNnModel to a compact
 * binary file so a QA service can deploy weights without retraining.
 *
 * Format (little-endian, fixed-width):
 *   magic "MNNF", u32 version,
 *   ModelConfig fields (u64 x 4: vocab, ed, hops, maxStory;
 *                       f32 initScale; u8 temporal; u8 positionEnc),
 *   then each tensor as u64 length + raw f32 data, in the fixed
 *   order: B, W, A[0..hops), C[0..hops), TA[0..hops), TC[0..hops).
 */

#ifndef MNNFAST_TRAIN_SERIALIZE_HH
#define MNNFAST_TRAIN_SERIALIZE_HH

#include <string>

#include "train/model.hh"

namespace mnnfast::train {

/**
 * Write the model's configuration and parameters to `path`.
 * fatal() if the file cannot be written.
 */
void saveModel(const MemNnModel &model, const std::string &path);

/**
 * Load a model previously written by saveModel().
 * fatal() on missing file, bad magic, version mismatch, or truncated
 * tensors.
 */
MemNnModel loadModel(const std::string &path);

} // namespace mnnfast::train

#endif // MNNFAST_TRAIN_SERIALIZE_HH
