#include "train/serialize.hh"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "util/logging.hh"

namespace mnnfast::train {

namespace {

constexpr char kMagic[4] = {'M', 'N', 'N', 'F'};
constexpr uint32_t kVersion = 1;

void
writeU32(std::ofstream &out, uint32_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU64(std::ofstream &out, uint64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeF32(std::ofstream &out, float v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeTensor(std::ofstream &out, const std::vector<float> &t)
{
    writeU64(out, t.size());
    out.write(reinterpret_cast<const char *>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
}

uint32_t
readU32(std::ifstream &in, const std::string &path)
{
    uint32_t v = 0;
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!in)
        fatal("truncated model file '%s'", path.c_str());
    return v;
}

uint64_t
readU64(std::ifstream &in, const std::string &path)
{
    uint64_t v = 0;
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!in)
        fatal("truncated model file '%s'", path.c_str());
    return v;
}

float
readF32(std::ifstream &in, const std::string &path)
{
    float v = 0;
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!in)
        fatal("truncated model file '%s'", path.c_str());
    return v;
}

void
readTensor(std::ifstream &in, std::vector<float> &t,
           const std::string &path)
{
    const uint64_t n = readU64(in, path);
    if (n != t.size()) {
        fatal("model file '%s': tensor of %llu elements where %zu "
              "expected", path.c_str(),
              static_cast<unsigned long long>(n), t.size());
    }
    in.read(reinterpret_cast<char *>(t.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!in)
        fatal("truncated model file '%s'", path.c_str());
}

} // namespace

void
saveModel(const MemNnModel &model, const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());

    const ModelConfig &cfg = model.config();
    out.write(kMagic, sizeof(kMagic));
    writeU32(out, kVersion);
    writeU64(out, cfg.vocabSize);
    writeU64(out, cfg.embeddingDim);
    writeU64(out, cfg.hops);
    writeU64(out, cfg.maxStory);
    writeF32(out, cfg.initScale);
    const uint8_t temporal = cfg.temporal ? 1 : 0;
    const uint8_t pe = cfg.positionEncoding ? 1 : 0;
    out.write(reinterpret_cast<const char *>(&temporal), 1);
    out.write(reinterpret_cast<const char *>(&pe), 1);

    const ParamSet &p = model.parameters();
    writeTensor(out, p.b);
    writeTensor(out, p.w);
    for (size_t h = 0; h < cfg.hops; ++h)
        writeTensor(out, p.a[h]);
    for (size_t h = 0; h < cfg.hops; ++h)
        writeTensor(out, p.c[h]);
    for (size_t h = 0; h < cfg.hops; ++h)
        writeTensor(out, p.ta[h]);
    for (size_t h = 0; h < cfg.hops; ++h)
        writeTensor(out, p.tc[h]);

    if (!out)
        fatal("write failed for '%s'", path.c_str());
}

MemNnModel
loadModel(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open model file '%s'", path.c_str());

    char magic[4] = {};
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("'%s' is not a MnnFast model file", path.c_str());
    const uint32_t version = readU32(in, path);
    if (version != kVersion) {
        fatal("model file '%s' has version %u, expected %u",
              path.c_str(), version, kVersion);
    }

    ModelConfig cfg;
    cfg.vocabSize = readU64(in, path);
    cfg.embeddingDim = readU64(in, path);
    cfg.hops = readU64(in, path);
    cfg.maxStory = readU64(in, path);
    cfg.initScale = readF32(in, path);
    uint8_t temporal = 0, pe = 0;
    in.read(reinterpret_cast<char *>(&temporal), 1);
    in.read(reinterpret_cast<char *>(&pe), 1);
    if (!in)
        fatal("truncated model file '%s'", path.c_str());
    cfg.temporal = temporal != 0;
    cfg.positionEncoding = pe != 0;

    MemNnModel model(cfg, /*seed=*/1);
    ParamSet &p = model.mutableParameters();
    readTensor(in, p.b, path);
    readTensor(in, p.w, path);
    for (size_t h = 0; h < cfg.hops; ++h)
        readTensor(in, p.a[h], path);
    for (size_t h = 0; h < cfg.hops; ++h)
        readTensor(in, p.c[h], path);
    for (size_t h = 0; h < cfg.hops; ++h)
        readTensor(in, p.ta[h], path);
    for (size_t h = 0; h < cfg.hops; ++h)
        readTensor(in, p.tc[h], path);
    return model;
}

} // namespace mnnfast::train
