#include "gpu/zskip_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace mnnfast::gpu {

namespace {

/** Weighted-sum kernel descriptor over the whole knowledge base. */
KernelDesc
wsumKernel(const GpuWorkload &wl, double row_fraction)
{
    KernelDesc k;
    const double rows = double(wl.ns) * row_fraction;
    k.flops = 2.0 * double(wl.nq) * rows * double(wl.ed);
    k.deviceBytes =
        rows * double(wl.ed) * 4.0 + double(wl.nq) * rows * 4.0;
    return k;
}

} // namespace

double
GpuZskipModel::denseWsumSeconds(const GpuWorkload &wl) const
{
    return device.kernelSeconds(wsumKernel(wl, 1.0));
}

ZskipOutcome
GpuZskipModel::warpSkip(const GpuWorkload &wl, double keep) const
{
    mnn_assert(keep >= 0.0 && keep <= 1.0, "keep fraction out of range");
    // A warp is saved only when all of its lanes' rows are skipped.
    const double p_warp_skipped =
        std::pow(1.0 - keep, double(params.warpSize));
    const double executed_fraction = 1.0 - p_warp_skipped;

    ZskipOutcome out;
    out.seconds =
        device.kernelSeconds(wsumKernel(wl, executed_fraction));
    out.relativeToDense = out.seconds / denseWsumSeconds(wl);
    return out;
}

GpuZskipModel::CompactionOutcome
GpuZskipModel::compaction(const GpuWorkload &wl, double keep) const
{
    mnn_assert(keep >= 0.0 && keep <= 1.0, "keep fraction out of range");

    // Transformation: stream the probability matrix a few times
    // (predicate evaluation, prefix scan, scatter of row indices and
    // kept rows). Bandwidth-bound.
    KernelDesc transform;
    transform.flops = double(wl.nq) * double(wl.ns) * 4.0;
    transform.deviceBytes =
        params.transformPasses
        * (double(wl.nq) * double(wl.ns) * 4.0
           + keep * double(wl.ns) * double(wl.ed) * 4.0);

    // Compacted weighted sum: only kept rows, but every M_OUT access
    // is a gather through the index array.
    KernelDesc compacted = wsumKernel(wl, keep);
    compacted.deviceBytes *= params.indirectionPenalty;

    CompactionOutcome out;
    out.transformSeconds = device.kernelSeconds(transform);
    out.wsumSeconds = device.kernelSeconds(compacted);
    out.totalSeconds = out.transformSeconds + out.wsumSeconds;
    out.relativeToDense = out.totalSeconds / denseWsumSeconds(wl);
    return out;
}

} // namespace mnnfast::gpu
