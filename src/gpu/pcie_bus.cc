#include "gpu/pcie_bus.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mnnfast::gpu {

double
PcieBus::transfer(double ready, double bytes)
{
    mnn_assert(bytes >= 0.0, "negative transfer size");
    const double start = std::max(ready, busy_until);
    const double done =
        start + cfg.setupLatency + bytes / cfg.bandwidth;
    busy_until = done;
    total_bytes += bytes;
    ++n_transfers;
    return done;
}

} // namespace mnnfast::gpu
