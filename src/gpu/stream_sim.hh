/**
 * @file
 * CUDA-stream / multi-GPU execution simulator for the column-based
 * algorithm (paper Section 5.3, Fig. 12).
 *
 * Overlap rules, as measured in the paper:
 *  - kernel/kernel and kernel/memcpy can overlap;
 *  - memcpy/memcpy cannot (each H2D copy uses the full PCIe link);
 *  - multiple GPUs overlap copies only if they have private links.
 */

#ifndef MNNFAST_GPU_STREAM_SIM_HH
#define MNNFAST_GPU_STREAM_SIM_HH

#include <cstddef>
#include <vector>

#include "gpu/device_model.hh"
#include "gpu/pcie_bus.hh"

namespace mnnfast::gpu {

/** Workload dimensions for the GPU study (paper Table 1 GPU column). */
struct GpuWorkload
{
    size_t ns = 100'000'000; ///< story sentences
    size_t ed = 64;          ///< embedding dimension
    size_t nq = 32;          ///< questions per batch
    /** Sentences moved and processed per stream step. */
    size_t chunkSize = 1'000'000;

    /** H2D bytes per chunk (M_IN + M_OUT rows). */
    double chunkBytes() const;

    /** Kernel descriptors for one chunk (inner, softmax, wsum). */
    std::vector<KernelDesc> chunkKernels() const;
};

/** Latency summary of one device's execution. */
struct GpuLatency
{
    double h2dSeconds = 0.0;    ///< wall time from first copy request
                                ///< to last copy completion
    double kernelSeconds = 0.0; ///< sum of kernel execution times
    double doneAt = 0.0;        ///< completion time of the last kernel
};

/** Result of a stream-simulation run. */
struct StreamSimResult
{
    /** Per-device latencies (one entry for the single-GPU case). */
    std::vector<GpuLatency> perGpu;
    /** Time at which every device has finished. */
    double makespan = 0.0;
};

/** See file header. */
class CudaStreamSim
{
  public:
    CudaStreamSim(const GpuConfig &gpu, const PcieConfig &pcie)
        : device(gpu), pcie(pcie)
    {}

    /**
     * One GPU, `n_streams` CUDA streams. Chunks are assigned to
     * streams round-robin; within a stream operations are ordered;
     * copies serialize on the link; kernels serialize on the device's
     * compute engine but overlap with copies.
     */
    StreamSimResult runSingleGpu(const GpuWorkload &wl,
                                 size_t n_streams) const;

    /**
     * `n_gpus` devices with the workload partitioned evenly; each
     * device internally uses `streams_per_gpu` streams. If
     * `shared_bus`, all devices contend for one PCIe link (the
     * paper's measured case); otherwise each has a private link (the
     * paper's ideal case B).
     */
    StreamSimResult runMultiGpu(const GpuWorkload &wl, size_t n_gpus,
                                size_t streams_per_gpu,
                                bool shared_bus) const;

  private:
    /**
     * Simulate one device processing `chunks` chunk-steps over `bus`,
     * starting at time 0. Returns its latency summary.
     */
    GpuLatency simulateDevice(const GpuWorkload &wl, size_t chunks,
                              size_t n_streams, PcieBus &bus) const;

    GpuDeviceModel device;
    PcieConfig pcie;
};

} // namespace mnnfast::gpu

#endif // MNNFAST_GPU_STREAM_SIM_HH
