#include "gpu/stream_sim.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mnnfast::gpu {

namespace {

/** Approximate flop cost of one exponential on the GPU. */
constexpr double kExpFlops = 20.0;

} // namespace

double
GpuWorkload::chunkBytes() const
{
    // M_IN and M_OUT rows for the chunk, fp32.
    return 2.0 * double(chunkSize) * double(ed) * sizeof(float);
}

std::vector<KernelDesc>
GpuWorkload::chunkKernels() const
{
    const double c = double(chunkSize);
    const double q = double(nq);
    const double e = double(ed);

    KernelDesc inner;
    inner.flops = 2.0 * q * c * e;
    inner.deviceBytes = c * e * 4.0 + q * c * 4.0;

    KernelDesc softmax;
    softmax.flops = q * c * kExpFlops;
    softmax.deviceBytes = 2.0 * q * c * 4.0;

    KernelDesc wsum;
    wsum.flops = 2.0 * q * c * e;
    wsum.deviceBytes = c * e * 4.0 + q * c * 4.0;

    return {inner, softmax, wsum};
}

GpuLatency
CudaStreamSim::simulateDevice(const GpuWorkload &wl, size_t chunks,
                              size_t n_streams, PcieBus &bus) const
{
    mnn_assert(n_streams > 0, "need at least one CUDA stream");

    const double copy_bytes = wl.chunkBytes();
    const auto kernels = wl.chunkKernels();
    double kernel_per_chunk = 0.0;
    for (const KernelDesc &k : kernels)
        kernel_per_chunk += device.kernelSeconds(k);

    std::vector<double> stream_ready(n_streams, 0.0);
    double gpu_free = 0.0;
    double last_copy_done = 0.0;
    double last_kernel_done = 0.0;
    double kernel_total = 0.0;

    for (size_t c = 0; c < chunks; ++c) {
        const size_t s = c % n_streams;
        // Within a stream, the next copy waits for the stream's
        // previous kernel (program order); across streams, copies
        // queue FIFO on the link.
        const double copy_done =
            bus.transfer(stream_ready[s], copy_bytes);
        last_copy_done = std::max(last_copy_done, copy_done);

        // Kernels overlap with copies but serialize on the compute
        // engine.
        const double start = std::max(copy_done, gpu_free);
        const double done = start + kernel_per_chunk;
        gpu_free = done;
        stream_ready[s] = done;
        kernel_total += kernel_per_chunk;
        last_kernel_done = std::max(last_kernel_done, done);
    }

    GpuLatency lat;
    lat.h2dSeconds = last_copy_done;
    lat.kernelSeconds = kernel_total;
    lat.doneAt = last_kernel_done;
    return lat;
}

StreamSimResult
CudaStreamSim::runSingleGpu(const GpuWorkload &wl,
                            size_t n_streams) const
{
    const size_t chunks =
        (wl.ns + wl.chunkSize - 1) / wl.chunkSize;
    PcieBus bus(pcie);
    StreamSimResult result;
    result.perGpu.push_back(simulateDevice(wl, chunks, n_streams, bus));
    result.makespan = result.perGpu[0].doneAt;
    return result;
}

StreamSimResult
CudaStreamSim::runMultiGpu(const GpuWorkload &wl, size_t n_gpus,
                           size_t streams_per_gpu,
                           bool shared_bus) const
{
    mnn_assert(n_gpus > 0, "need at least one GPU");

    // Each device gets its own link; under host-side contention the
    // sustained per-link bandwidth drops to aggregate / n_gpus.
    PcieConfig link = pcie;
    if (shared_bus) {
        link.bandwidth =
            std::min(pcie.bandwidth,
                     pcie.hostAggregateBandwidth
                         / static_cast<double>(n_gpus));
    }

    StreamSimResult result;
    for (size_t g = 0; g < n_gpus; ++g) {
        // Partition sentences evenly; earlier GPUs take the remainder.
        const size_t base = wl.ns / n_gpus;
        const size_t extra = g < wl.ns % n_gpus ? 1 : 0;
        GpuWorkload part = wl;
        part.ns = base + extra;

        const size_t chunks =
            (part.ns + part.chunkSize - 1) / part.chunkSize;
        PcieBus bus(link);
        result.perGpu.push_back(
            simulateDevice(part, chunks, streams_per_gpu, bus));
        result.makespan =
            std::max(result.makespan, result.perGpu.back().doneAt);
    }
    return result;
}

} // namespace mnnfast::gpu
