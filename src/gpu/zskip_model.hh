/**
 * @file
 * Why zero-skipping is omitted on GPUs (paper Section 4.1.2).
 *
 * The paper evaluates and rejects two GPU skipping schemes:
 *  - naive divergence-based skipping: a warp only completes early if
 *    ALL of its lanes are skipped, which is vanishingly unlikely;
 *  - matrix compaction (DeftNN-style): the transformation kernel's
 *    latency is comparable to the weighted sum itself, and the
 *    compacted multiply pays indirect-access penalties.
 *
 * This model quantifies both so the claim is reproducible
 * (bench/ablation_gpu_zskip).
 */

#ifndef MNNFAST_GPU_ZSKIP_MODEL_HH
#define MNNFAST_GPU_ZSKIP_MODEL_HH

#include "gpu/device_model.hh"
#include "gpu/stream_sim.hh"

namespace mnnfast::gpu {

/** Parameters of the GPU zero-skipping analysis. */
struct ZskipParams
{
    /** Lanes per warp; a warp retires early only if all skip. */
    size_t warpSize = 32;
    /**
     * Slowdown factor of gather (indirect) accesses relative to
     * coalesced streaming in the compacted weighted sum.
     */
    double indirectionPenalty = 1.6;
    /**
     * Compaction transformation traffic multiplier: the scan +
     * scatter passes read the probability matrix and move the kept
     * rows, i.e. a few extra passes over the data.
     */
    double transformPasses = 3.0;
};

/** Outcome of one weighted-sum strategy. */
struct ZskipOutcome
{
    double seconds = 0.0;
    /** Fraction of the dense weighted-sum time (>1 means harmful). */
    double relativeToDense = 0.0;
};

/** See file header. */
class GpuZskipModel
{
  public:
    GpuZskipModel(const GpuConfig &gpu, const ZskipParams &params)
        : device(gpu), params(params)
    {}

    /** Dense (no skipping) weighted-sum kernel time. */
    double denseWsumSeconds(const GpuWorkload &wl) const;

    /**
     * Naive warp-divergence skipping: each lane handles one row; a
     * warp's work is saved only when all warpSize rows are below the
     * threshold (probability (1-keep)^warpSize).
     *
     * @param keep Fraction of rows above the skip threshold.
     */
    ZskipOutcome warpSkip(const GpuWorkload &wl, double keep) const;

    /**
     * Compaction: a transformation kernel (scan + scatter over the
     * probability matrix and kept rows) followed by a compacted,
     * gather-based weighted sum.
     */
    struct CompactionOutcome
    {
        double transformSeconds = 0.0;
        double wsumSeconds = 0.0;
        double totalSeconds = 0.0;
        double relativeToDense = 0.0;
    };
    CompactionOutcome compaction(const GpuWorkload &wl,
                                 double keep) const;

  private:
    GpuDeviceModel device;
    ZskipParams params;
};

} // namespace mnnfast::gpu

#endif // MNNFAST_GPU_ZSKIP_MODEL_HH
