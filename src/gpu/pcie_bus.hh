/**
 * @file
 * PCIe bus timeline: transfers serialize (each memcpy uses the full
 * link bandwidth), which is the property the paper identifies as the
 * critical path of the GPU implementation.
 */

#ifndef MNNFAST_GPU_PCIE_BUS_HH
#define MNNFAST_GPU_PCIE_BUS_HH

#include <cstdint>

#include "stats/counter.hh"

namespace mnnfast::gpu {

/** PCIe link parameters (defaults: PCIe 3.0 x16 effective). */
struct PcieConfig
{
    /** Effective per-link bandwidth, bytes/second. */
    double bandwidth = 12.0e9;
    /** Per-transfer setup latency, seconds. */
    double setupLatency = 10.0e-6;
    /**
     * Aggregate host-side bandwidth shared by all links (the server's
     * root-complex / interconnect ceiling). With G active GPUs each
     * link sustains min(bandwidth, hostAggregateBandwidth / G) — the
     * contention the paper measures in Fig. 12(b).
     */
    double hostAggregateBandwidth = 36.0e9;
};

/**
 * A single shared link. transfer() reserves the bus FIFO: a transfer
 * requested at `ready` begins at max(ready, busFree) and completes
 * after setup + bytes/bandwidth.
 */
class PcieBus
{
  public:
    explicit PcieBus(const PcieConfig &cfg) : cfg(cfg) {}

    /**
     * Request a transfer of `bytes` that is ready to start at time
     * `ready` (seconds). Returns the completion time; the bus is busy
     * until then.
     */
    double transfer(double ready, double bytes);

    /** Time at which the bus next becomes free. */
    double busyUntil() const { return busy_until; }

    /** Total bytes moved. */
    double totalBytes() const { return total_bytes; }

    /** Number of transfers serviced. */
    uint64_t transfers() const { return n_transfers; }

    void
    reset()
    {
        busy_until = 0.0;
        total_bytes = 0.0;
        n_transfers = 0;
    }

  private:
    PcieConfig cfg;
    double busy_until = 0.0;
    double total_bytes = 0.0;
    uint64_t n_transfers = 0;
};

} // namespace mnnfast::gpu

#endif // MNNFAST_GPU_PCIE_BUS_HH
