/**
 * @file
 * Analytic GPU device model.
 *
 * The paper's GPU study (Fig. 12) is about *overlap and contention*:
 * CUDA streams overlap kernels with copies but copies serialize on
 * the PCIe bus, and multiple GPUs contend for shared host links. A
 * roofline kernel-time model plus an explicit bus timeline captures
 * exactly those effects (DESIGN.md, substitution table). Default
 * parameters approximate an NVIDIA TITAN Xp.
 */

#ifndef MNNFAST_GPU_DEVICE_MODEL_HH
#define MNNFAST_GPU_DEVICE_MODEL_HH

#include <cstddef>

namespace mnnfast::gpu {

/** Device compute/memory parameters. */
struct GpuConfig
{
    /** Peak FP32 throughput, flops/second. */
    double peakFlops = 12.0e12;
    /** Achieved fraction of peak for these BLAS-like kernels. */
    double computeEfficiency = 0.25;
    /** Device memory bandwidth, bytes/second. */
    double memBandwidth = 547.0e9;
    /** Achieved fraction of peak device bandwidth. */
    double memEfficiency = 0.75;
    /** Fixed kernel launch overhead, seconds. */
    double launchOverhead = 5.0e-6;
};

/** A kernel described by its compute and device-memory volumes. */
struct KernelDesc
{
    double flops = 0.0;
    double deviceBytes = 0.0;
};

/** Roofline execution-time model for one device. */
class GpuDeviceModel
{
  public:
    explicit GpuDeviceModel(const GpuConfig &cfg) : cfg(cfg) {}

    /**
     * Kernel execution time: max of the compute and device-memory
     * rooflines, plus launch overhead.
     */
    double kernelSeconds(const KernelDesc &k) const;

    const GpuConfig &config() const { return cfg; }

  private:
    GpuConfig cfg;
};

} // namespace mnnfast::gpu

#endif // MNNFAST_GPU_DEVICE_MODEL_HH
