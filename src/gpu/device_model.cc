#include "gpu/device_model.hh"

#include <algorithm>

namespace mnnfast::gpu {

double
GpuDeviceModel::kernelSeconds(const KernelDesc &k) const
{
    const double compute =
        k.flops / (cfg.peakFlops * cfg.computeEfficiency);
    const double memory =
        k.deviceBytes / (cfg.memBandwidth * cfg.memEfficiency);
    return std::max(compute, memory) + cfg.launchOverhead;
}

} // namespace mnnfast::gpu
