#include "runtime/parallel_for.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mnnfast::runtime {

std::vector<Range>
splitRange(size_t n, size_t parts)
{
    mnn_assert(parts > 0, "splitRange needs at least one part");
    std::vector<Range> ranges;
    if (n == 0)
        return ranges;
    parts = std::min(parts, n);
    const size_t base = n / parts;
    const size_t extra = n % parts;
    size_t begin = 0;
    for (size_t i = 0; i < parts; ++i) {
        const size_t len = base + (i < extra ? 1 : 0);
        ranges.push_back({begin, begin + len});
        begin += len;
    }
    return ranges;
}

void
parallelFor(ThreadPool &pool, size_t n,
            const std::function<void(Range)> &body)
{
    const size_t parts = std::max<size_t>(1, pool.threadCount());
    for (const Range &r : splitRange(n, parts))
        pool.submit([&body, r] { body(r); });
    pool.waitIdle();
}

void
parallelForParts(ThreadPool &pool, size_t n, size_t parts,
                 const std::function<void(size_t, Range)> &body)
{
    const auto ranges = splitRange(n, parts);
    for (size_t i = 0; i < ranges.size(); ++i) {
        const Range r = ranges[i];
        pool.submit([&body, i, r] { body(i, r); });
    }
    pool.waitIdle();
}

} // namespace mnnfast::runtime
