#include "runtime/parallel_for.hh"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/logging.hh"

namespace mnnfast::runtime {

std::vector<Range>
splitRange(size_t n, size_t parts)
{
    mnn_assert(parts > 0, "splitRange needs at least one part");
    std::vector<Range> ranges;
    if (n == 0)
        return ranges;
    parts = std::min(parts, n);
    const size_t base = n / parts;
    const size_t extra = n % parts;
    size_t begin = 0;
    for (size_t i = 0; i < parts; ++i) {
        const size_t len = base + (i < extra ? 1 : 0);
        ranges.push_back({begin, begin + len});
        begin += len;
    }
    return ranges;
}

void
parallelFor(ThreadPool &pool, size_t n, std::function<void(Range)> body)
{
    const size_t parts = std::max<size_t>(1, pool.threadCount());
    // Tasks share one owned copy of the body: safe if the caller's
    // callable was a temporary, without a per-task std::function copy.
    auto fn = std::make_shared<const std::function<void(Range)>>(
        std::move(body));
    for (const Range &r : splitRange(n, parts))
        pool.submit([fn, r] { (*fn)(r); });
    pool.waitIdle();
}

void
parallelForParts(ThreadPool &pool, size_t n, size_t parts,
                 std::function<void(size_t, Range)> body)
{
    auto fn = std::make_shared<const std::function<void(size_t, Range)>>(
        std::move(body));
    const auto ranges = splitRange(n, parts);
    for (size_t i = 0; i < ranges.size(); ++i) {
        const Range r = ranges[i];
        pool.submit([fn, i, r] { (*fn)(i, r); });
    }
    pool.waitIdle();
}

void
parallelForDynamic(ThreadPool &pool, size_t n, size_t grain,
                   std::function<void(size_t, Range)> body)
{
    if (n == 0)
        return;
    grain = std::max<size_t>(1, grain);
    const size_t workers = std::max<size_t>(1, pool.threadCount());
    auto fn = std::make_shared<const std::function<void(size_t, Range)>>(
        std::move(body));
    auto cursor = std::make_shared<std::atomic<size_t>>(0);
    for (size_t w = 0; w < workers; ++w) {
        pool.submit([fn, cursor, n, grain, w] {
            for (;;) {
                const size_t begin = cursor->fetch_add(
                    grain, std::memory_order_relaxed);
                if (begin >= n)
                    return;
                (*fn)(w, Range{begin, std::min(n, begin + grain)});
            }
        });
    }
    pool.waitIdle();
}

} // namespace mnnfast::runtime
