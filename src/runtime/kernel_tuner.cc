#include "runtime/kernel_tuner.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <mutex>
#include <sstream>
#include <tuple>

#include "blas/kernels.hh"
#include "util/aligned_buffer.hh"
#include "util/bf16.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/timer.hh"

namespace mnnfast::runtime {

namespace {

/** Cache-line size assumed by the prefetch pacing (as the engines). */
constexpr size_t kLineBytes = 64;

/**
 * Byte target for each half of the double-buffered measurement block.
 * Large enough to overflow any per-core L2 (typically 0.5–4 MiB), so
 * candidates are timed against the last-level-cache / DRAM stream the
 * engines actually sweep at serving scale — a tiny L2-resident block
 * would systematically pick plans that underperform out of cache
 * (e.g. prefetch off, because prefetch only pays when the rows are
 * far away).
 */
constexpr size_t kTuneHalfBytes = 4u << 20;

/** Row-count bounds for the synthetic measurement block. */
constexpr size_t kTuneRowsMin = 256;
constexpr size_t kTuneRowsMax = 32768;

/**
 * Validate an imported (strip_rows, prefetch_stride) pair before it
 * can reach an engine: strips must be positive multiples of 4 (the
 * kernels' register-group width — and strip 0 would wedge the
 * engines' `s0 += strip` sweeps) and both values must sit inside the
 * candidate grid the tuner itself sweeps, so a hand-edited or
 * corrupted cache file can never smuggle in a plan the tuner could
 * not have produced.
 */
bool
importedPlanValid(double strip, double pf)
{
    const auto inGrid = [](double v, const size_t *set, size_t n) {
        for (size_t i = 0; i < n; ++i)
            if (v == double(set[i]))
                return true;
        return false;
    };
    return inGrid(strip, kStripRowsCandidates,
                  std::size(kStripRowsCandidates))
        && inGrid(pf, kPrefetchStrideCandidates,
                  std::size(kPrefetchStrideCandidates));
}

/** Timed passes per candidate; the best is kept. */
constexpr int kReps = 3;

struct Key
{
    std::string precision;
    size_t ed;
    size_t nq;
    bool operator<(const Key &o) const
    {
        return std::tie(precision, ed, nq)
             < std::tie(o.precision, o.ed, o.nq);
    }
};

struct Stored
{
    KernelPlan plan;
    double seconds = 0.0;
    PlanOrigin origin = PlanOrigin::Default;
};

struct Table
{
    std::mutex mu;
    std::map<Key, Stored> entries;
    size_t measured = 0;
    bool importedFromEnv = false;
};

Table &
table()
{
    static Table t;
    return t;
}

bool
envFlag(const char *name)
{
    const char *env = std::getenv(name);
    return env && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

size_t
edBucket(size_t ed)
{
    if (ed <= 64)
        return 64;
    if (ed <= 128)
        return 128;
    if (ed <= 256)
        return 256;
    return 512;
}

size_t
nqBucket(size_t nq)
{
    if (nq <= 1)
        return 1;
    if (nq <= 8)
        return 4;
    return 16;
}

/** Issue a prefetch every `stride` lines over [p, p + bytes). */
inline void
prefetchPaced(const void *p, size_t bytes, size_t stride)
{
    if (stride == 0)
        return;
    const char *c = reinterpret_cast<const char *>(p);
    for (size_t off = 0; off < bytes; off += stride * kLineBytes)
        __builtin_prefetch(c + off, 0, 3);
}

/**
 * Synthetic measurement state for one (precision, ed, nq) bucket:
 * deterministic pseudo-random queries and a row block in the target
 * precision, double-buffered so the "next chunk" prefetch target
 * exists like in the engine sweep.
 */
struct Workbench
{
    size_t ed, nq;
    size_t rows; // rows per half-block, L2-overflowing (kTuneHalfBytes)
    std::vector<float> queries;
    std::vector<float> out;
    AlignedBuffer<float> rows32;
    AlignedBuffer<float> rows32b; ///< "bound" hi rows (rows32 = lo)
    AlignedBuffer<uint16_t> rows16;
    AlignedBuffer<int8_t> rows8;

    static size_t
    rowBytes(const std::string &precision, size_t ed)
    {
        // "bound" streams a lo+hi fp32 pair per summarized chunk.
        return ed
             * (precision == "bound" ? 8
                : precision == "f32" ? 4
                : precision == "bf16" ? 2
                                      : 1);
    }

    Workbench(const std::string &precision, size_t ed_, size_t nq_)
        : ed(ed_), nq(nq_)
    {
        const size_t row_bytes = rowBytes(precision, ed);
        rows = std::clamp(kTuneHalfBytes / row_bytes, kTuneRowsMin,
                          kTuneRowsMax);
        rows = rows / 4 * 4;
        XorShiftRng rng(12345);
        queries.resize(nq * ed);
        for (float &v : queries)
            v = rng.uniformRange(-1.f, 1.f);
        out.resize(nq * rows);
        const size_t elems = 2 * rows * ed;
        if (precision == "f32" || precision == "bound") {
            rows32.allocate(elems);
            for (size_t i = 0; i < elems; ++i)
                rows32.data()[i] = rng.uniformRange(-1.f, 1.f);
            if (precision == "bound") {
                rows32b.allocate(elems);
                for (size_t i = 0; i < elems; ++i)
                    rows32b.data()[i] = rng.uniformRange(-1.f, 1.f);
            }
        } else if (precision == "bf16") {
            rows16.allocate(elems);
            for (size_t i = 0; i < elems; ++i)
                rows16.data()[i] =
                    bf16FromFloat(rng.uniformRange(-1.f, 1.f));
        } else {
            rows8.allocate(elems);
            for (size_t i = 0; i < elems; ++i)
                rows8.data()[i] = static_cast<int8_t>(
                    static_cast<int>(rng.below(255)) - 127);
        }
    }

    /**
     * One phase-1-shaped pass: strip sweep over half the block with
     * the other half prefetched strip-by-strip, exactly the engine's
     * loop structure. Returns wall seconds.
     */
    double
    pass(const std::string &precision, const KernelPlan &plan)
    {
        const size_t row_bytes = rowBytes(precision, ed);
        Timer timer;
        for (size_t half = 0; half < 2; ++half) {
            const size_t base = half * rows;
            const size_t next = (1 - half) * rows;
            for (size_t s0 = 0; s0 < rows; s0 += plan.stripRows) {
                const size_t s1 = std::min(s0 + plan.stripRows, rows);
                float *o = out.data() + s0;
                if (precision == "bound") {
                    for (size_t i = s0; i < s1; ++i) {
                        prefetchPaced(rows32.data() + (next + i) * ed,
                                      row_bytes / 2,
                                      plan.prefetchStride);
                        prefetchPaced(rows32b.data() + (next + i) * ed,
                                      row_bytes / 2,
                                      plan.prefetchStride);
                    }
                    blas::chunkBoundBatch(
                        queries.data(), nq, ed,
                        rows32.data() + (base + s0) * ed,
                        rows32b.data() + (base + s0) * ed, s1 - s0, ed,
                        ed, o, rows);
                } else if (precision == "f32") {
                    for (size_t i = s0; i < s1; ++i)
                        prefetchPaced(rows32.data() + (next + i) * ed,
                                      row_bytes, plan.prefetchStride);
                    blas::dotBatchMulti(queries.data(), nq, ed,
                                        rows32.data() + (base + s0) * ed,
                                        s1 - s0, ed, ed, o, rows);
                } else if (precision == "bf16") {
                    for (size_t i = s0; i < s1; ++i)
                        prefetchPaced(rows16.data() + (next + i) * ed,
                                      row_bytes, plan.prefetchStride);
                    blas::dotBatchMultiBf16(
                        queries.data(), nq, ed,
                        rows16.data() + (base + s0) * ed, s1 - s0, ed,
                        ed, o, rows);
                } else {
                    for (size_t i = s0; i < s1; ++i)
                        prefetchPaced(rows8.data() + (next + i) * ed,
                                      row_bytes, plan.prefetchStride);
                    blas::dotBatchMultiI8(
                        queries.data(), nq, ed,
                        rows8.data() + (base + s0) * ed, s1 - s0, ed,
                        ed, 0.01f, 0.5f, o, rows);
                }
            }
        }
        return timer.seconds();
    }
};

/** Sweep the candidate grid and return the winner. */
Stored
measure(const Key &key)
{
    Workbench wb(key.precision, key.ed, key.nq);
    Stored best;
    best.origin = PlanOrigin::Measured;
    best.seconds = -1.0;
    // One untimed pass warms the block into cache-steady state.
    wb.pass(key.precision, KernelPlan{});
    for (size_t strip : kStripRowsCandidates) {
        for (size_t pf : kPrefetchStrideCandidates) {
            const KernelPlan plan{strip, pf};
            double t = wb.pass(key.precision, plan);
            for (int rep = 1; rep < kReps; ++rep)
                t = std::min(t, wb.pass(key.precision, plan));
            if (best.seconds < 0.0 || t < best.seconds) {
                best.plan = plan;
                best.seconds = t;
            }
        }
    }
    return best;
}

// --- minimal JSON scanning for the exportJson schema ----------------

/** Find `"key":` after `from` in `s`; npos when absent. */
size_t
findKey(const std::string &s, const char *key, size_t from)
{
    const std::string pat = std::string("\"") + key + "\"";
    size_t at = s.find(pat, from);
    if (at == std::string::npos)
        return at;
    at = s.find(':', at + pat.size());
    return at == std::string::npos ? at : at + 1;
}

bool
scanString(const std::string &s, const char *key, size_t from,
           size_t until, std::string &out)
{
    size_t at = findKey(s, key, from);
    if (at == std::string::npos || at >= until)
        return false;
    const size_t open = s.find('"', at);
    if (open == std::string::npos || open >= until)
        return false;
    const size_t close = s.find('"', open + 1);
    if (close == std::string::npos || close >= until)
        return false;
    out = s.substr(open + 1, close - open - 1);
    return true;
}

bool
scanNumber(const std::string &s, const char *key, size_t from,
           size_t until, double &out)
{
    const size_t at = findKey(s, key, from);
    if (at == std::string::npos || at >= until)
        return false;
    try {
        out = std::stod(s.substr(at, until - at));
    } catch (...) {
        return false;
    }
    return true;
}

} // namespace

const char *
planOriginName(PlanOrigin o)
{
    switch (o) {
      case PlanOrigin::Default: return "default";
      case PlanOrigin::Measured: return "measured";
      case PlanOrigin::Imported: return "imported";
    }
    panic("unknown PlanOrigin %d", static_cast<int>(o));
}

KernelTuner &
KernelTuner::instance()
{
    static KernelTuner tuner;
    return tuner;
}

KernelPlan
KernelTuner::plan(const char *precision, size_t ed, size_t nq)
{
    if (envFlag("MNNFAST_NO_TUNER"))
        return KernelPlan{};
    Key key{precision, edBucket(ed), nqBucket(nq)};
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    if (!t.importedFromEnv) {
        // Seed once per process from MNNFAST_TUNER_CACHE if set; a
        // missing or malformed file just means we measure.
        t.importedFromEnv = true;
        if (const char *path = std::getenv("MNNFAST_TUNER_CACHE");
            path && path[0] != '\0') {
            std::ifstream in(path);
            if (in) {
                std::ostringstream buf;
                buf << in.rdbuf();
                const std::string text = buf.str();
                // Inline merge (importJson would re-lock).
                size_t from = 0;
                std::string prec;
                double edv, nqv, strip, pf, secs;
                while (true) {
                    const size_t open = text.find('{', from);
                    if (open == std::string::npos)
                        break;
                    const size_t close = text.find('}', open);
                    if (close == std::string::npos)
                        break;
                    from = close + 1;
                    if (!scanString(text, "precision", open, close,
                                    prec)
                        || !scanNumber(text, "ed", open, close, edv)
                        || !scanNumber(text, "nq", open, close, nqv)
                        || !scanNumber(text, "strip_rows", open, close,
                                       strip)
                        || !scanNumber(text, "prefetch_stride", open,
                                       close, pf)
                        || !importedPlanValid(strip, pf))
                        continue;
                    Stored st;
                    st.plan.stripRows = static_cast<size_t>(strip);
                    st.plan.prefetchStride = static_cast<size_t>(pf);
                    if (scanNumber(text, "seconds", open, close, secs))
                        st.seconds = secs;
                    st.origin = PlanOrigin::Imported;
                    t.entries.emplace(
                        Key{prec, static_cast<size_t>(edv),
                            static_cast<size_t>(nqv)},
                        st);
                }
            }
        }
    }
    auto it = t.entries.find(key);
    if (it == t.entries.end()) {
        it = t.entries.emplace(key, measure(key)).first;
        ++t.measured;
    }
    return it->second.plan;
}

std::vector<KernelTuner::Entry>
KernelTuner::entries() const
{
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    std::vector<Entry> out;
    out.reserve(t.entries.size());
    for (const auto &[key, stored] : t.entries) {
        Entry e;
        e.precision = key.precision;
        e.ed = key.ed;
        e.nq = key.nq;
        e.plan = stored.plan;
        e.seconds = stored.seconds;
        e.origin = stored.origin;
        out.push_back(std::move(e));
    }
    return out;
}

size_t
KernelTuner::measuredCount() const
{
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    return t.measured;
}

std::string
KernelTuner::exportJson() const
{
    const std::vector<Entry> all = entries();
    std::ostringstream os;
    os << "{\"backend\": \"" << blas::kernelBackendName()
       << "\", \"entries\": [";
    for (size_t i = 0; i < all.size(); ++i) {
        const Entry &e = all[i];
        if (i > 0)
            os << ",";
        os << "\n  {\"precision\": \"" << e.precision
           << "\", \"ed\": " << e.ed << ", \"nq\": " << e.nq
           << ", \"strip_rows\": " << e.plan.stripRows
           << ", \"prefetch_stride\": " << e.plan.prefetchStride
           << ", \"seconds\": " << e.seconds << ", \"origin\": \""
           << planOriginName(e.origin) << "\"}";
    }
    os << "\n]}";
    return os.str();
}

bool
KernelTuner::exportJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("kernel tuner: cannot write %s", path.c_str());
        return false;
    }
    out << exportJson() << "\n";
    return bool(out);
}

int
KernelTuner::importJson(const std::string &text)
{
    const size_t list = text.find("\"entries\"");
    if (list == std::string::npos)
        return -1;
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    int merged = 0;
    size_t from = list;
    while (true) {
        const size_t open = text.find('{', from);
        if (open == std::string::npos)
            break;
        const size_t close = text.find('}', open);
        if (close == std::string::npos)
            break;
        from = close + 1;
        std::string prec;
        double edv, nqv, strip, pf, secs;
        if (!scanString(text, "precision", open, close, prec)
            || !scanNumber(text, "ed", open, close, edv)
            || !scanNumber(text, "nq", open, close, nqv)
            || !scanNumber(text, "strip_rows", open, close, strip)
            || !scanNumber(text, "prefetch_stride", open, close, pf)
            || !importedPlanValid(strip, pf))
            continue;
        const Key key{prec, static_cast<size_t>(edv),
                      static_cast<size_t>(nqv)};
        if (t.entries.count(key))
            continue; // existing plans win (measured locally)
        Stored st;
        st.plan.stripRows = static_cast<size_t>(strip);
        st.plan.prefetchStride = static_cast<size_t>(pf);
        if (scanNumber(text, "seconds", open, close, secs))
            st.seconds = secs;
        st.origin = PlanOrigin::Imported;
        t.entries.emplace(key, st);
        ++merged;
    }
    return merged;
}

int
KernelTuner::importJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return -1;
    std::ostringstream buf;
    buf << in.rdbuf();
    return importJson(buf.str());
}

void
KernelTuner::clear()
{
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    t.entries.clear();
    t.measured = 0;
    // Re-arm the one-shot MNNFAST_TUNER_CACHE seeding (see header).
    t.importedFromEnv = false;
}

} // namespace mnnfast::runtime
