/**
 * @file
 * A fixed-size worker thread pool.
 *
 * The paper parallelizes each MemNN operation "in a lock-step manner"
 * with PThreads; ThreadPool plus runtime::parallelFor reproduce that
 * execution model: a pool of workers, a fork-join region per operator.
 */

#ifndef MNNFAST_RUNTIME_THREAD_POOL_HH
#define MNNFAST_RUNTIME_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mnnfast::runtime {

/**
 * Fixed set of worker threads consuming a FIFO task queue.
 *
 * Tasks are arbitrary callables. waitIdle() provides the join half of
 * fork-join parallel regions.
 */
class ThreadPool
{
  public:
    /**
     * Start `threads` workers. Zero is allowed and means "inline
     * execution" — submit() runs the task on the calling thread, which
     * keeps single-thread benchmarks free of pool overhead.
     */
    explicit ThreadPool(size_t threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Stops and joins all workers (after draining queued tasks). */
    ~ThreadPool();

    /** Enqueue a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and all workers are idle. */
    void waitIdle();

    /** Number of worker threads (0 = inline mode). */
    size_t threadCount() const { return workers.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
    std::condition_variable cv_task;
    std::condition_variable cv_idle;
    size_t active = 0;
    size_t idleWaiters = 0; ///< workers parked in cv_task (under mutex)
    bool stopping = false;
};

} // namespace mnnfast::runtime

#endif // MNNFAST_RUNTIME_THREAD_POOL_HH
