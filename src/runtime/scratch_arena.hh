/**
 * @file
 * A bump-pointer scratch arena for per-worker engine temporaries.
 *
 * The column engine's serving hot path needs the same scratch shapes
 * on every inferBatch call (chunk-sized e-value tiles, per-group
 * partial accumulators). Allocating them per call puts malloc/free on
 * the critical path of every batch; the arena instead hands out spans
 * from retained blocks, so a steady-state serving loop performs zero
 * heap allocation after the first call at each batch size.
 *
 * Usage discipline:
 *  - claim spans with floats()/doubles(); contents are uninitialized;
 *  - every span stays valid until the next reset() — growth mid-cycle
 *    appends a new block, it never moves live spans;
 *  - reset() invalidates all spans and recycles the capacity. When the
 *    previous cycle overflowed into multiple blocks, reset() coalesces
 *    them into one, so the next cycle of equal total size is a single
 *    bump-pointer walk (and blockCount() settles at 1).
 *
 * Instances are single-threaded; engines keep one arena per worker
 * slot. All spans are kCacheLineBytes-aligned, so kernels can assume
 * the same alignment as AlignedBuffer and spans claimed by different
 * workers never share a cache line.
 */

#ifndef MNNFAST_RUNTIME_SCRATCH_ARENA_HH
#define MNNFAST_RUNTIME_SCRATCH_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mnnfast::runtime {

/** Reusable bump allocator. See file header for the span lifetime. */
class ScratchArena
{
  public:
    ScratchArena() = default;

    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;
    ScratchArena(ScratchArena &&other) noexcept;
    ScratchArena &operator=(ScratchArena &&other) noexcept;

    ~ScratchArena();

    /** Claim n floats (64-byte aligned, uninitialized). */
    float *floats(size_t n)
    {
        return static_cast<float *>(claim(n * sizeof(float)));
    }

    /** Claim n doubles (64-byte aligned, uninitialized). */
    double *doubles(size_t n)
    {
        return static_cast<double *>(claim(n * sizeof(double)));
    }

    /** Claim n raw bytes (64-byte aligned, uninitialized). */
    uint8_t *bytes(size_t n)
    {
        return static_cast<uint8_t *>(claim(n));
    }

    /**
     * Invalidate every outstanding span and rewind. Capacity is
     * retained; fragmented capacity is coalesced into one block.
     */
    void reset();

    /** Total bytes of retained capacity (the peak claimed footprint). */
    size_t capacityBytes() const { return capacity; }

    /** Retained block count; 1 after any post-growth reset(). */
    size_t blockCount() const { return blocks.size(); }

  private:
    struct Block
    {
        void *ptr;
        size_t size;
    };

    /** Claim `bytes` (rounded up to the alignment quantum). */
    void *claim(size_t bytes);

    void releaseAll();

    std::vector<Block> blocks;
    size_t cursor = 0;   ///< bump offset within blocks.back()
    size_t capacity = 0; ///< sum of block sizes
};

} // namespace mnnfast::runtime

#endif // MNNFAST_RUNTIME_SCRATCH_ARENA_HH
