#include "runtime/scratch_arena.hh"

#include <algorithm>
#include <cstdlib>
#include <new>
#include <utility>

#include "util/aligned_buffer.hh"

namespace mnnfast::runtime {

namespace {

/** Round up to the cache-line quantum every span is aligned to. */
inline size_t
roundUp(size_t bytes)
{
    return (bytes + kCacheLineBytes - 1) / kCacheLineBytes
           * kCacheLineBytes;
}

void *
alignedBlock(size_t bytes)
{
    void *raw = std::aligned_alloc(kCacheLineBytes, bytes);
    if (!raw)
        throw std::bad_alloc();
    return raw;
}

} // namespace

ScratchArena::ScratchArena(ScratchArena &&other) noexcept
    : blocks(std::move(other.blocks)),
      cursor(std::exchange(other.cursor, 0)),
      capacity(std::exchange(other.capacity, 0))
{
    other.blocks.clear();
}

ScratchArena &
ScratchArena::operator=(ScratchArena &&other) noexcept
{
    if (this != &other) {
        releaseAll();
        blocks = std::move(other.blocks);
        cursor = std::exchange(other.cursor, 0);
        capacity = std::exchange(other.capacity, 0);
        other.blocks.clear();
    }
    return *this;
}

ScratchArena::~ScratchArena()
{
    releaseAll();
}

void *
ScratchArena::claim(size_t bytes)
{
    bytes = roundUp(bytes);
    if (bytes == 0)
        return nullptr;
    if (blocks.empty() || cursor + bytes > blocks.back().size) {
        // Grow geometrically: the new block is at least as large as
        // everything already retained, so a cycle that outgrows its
        // capacity settles after O(log) growth steps.
        const size_t size = std::max(bytes, capacity);
        blocks.push_back({alignedBlock(size), size});
        capacity += size;
        cursor = 0;
    }
    void *span = static_cast<char *>(blocks.back().ptr) + cursor;
    cursor += bytes;
    return span;
}

void
ScratchArena::reset()
{
    if (blocks.size() > 1) {
        // Coalesce fragmented capacity so the next same-sized cycle
        // fits one block (live spans are gone — reset invalidates).
        const size_t total = capacity;
        releaseAll();
        blocks.push_back({alignedBlock(total), total});
        capacity = total;
    }
    cursor = 0;
}

void
ScratchArena::releaseAll()
{
    for (Block &b : blocks)
        std::free(b.ptr);
    blocks.clear();
    capacity = 0;
    cursor = 0;
}

} // namespace mnnfast::runtime
