/**
 * @file
 * Fork-join data-parallel loops over index ranges, built on ThreadPool.
 */

#ifndef MNNFAST_RUNTIME_PARALLEL_FOR_HH
#define MNNFAST_RUNTIME_PARALLEL_FOR_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/thread_pool.hh"

namespace mnnfast::runtime {

/** A contiguous half-open index range [begin, end). */
struct Range
{
    size_t begin;
    size_t end;

    size_t size() const { return end - begin; }
};

/**
 * Split [0, n) into at most `parts` near-equal contiguous ranges.
 * Earlier ranges get the remainder, so sizes differ by at most one.
 * Empty ranges are never produced (fewer parts are returned when
 * n < parts).
 */
std::vector<Range> splitRange(size_t n, size_t parts);

/**
 * Run body(range) over a partition of [0, n) on the pool and wait for
 * completion. The partition has one range per worker (or a single
 * range in inline mode).
 */
void parallelFor(ThreadPool &pool, size_t n,
                 const std::function<void(Range)> &body);

/**
 * Run body(part_index, range) over exactly `parts` partitions of
 * [0, n), regardless of the pool size. Used when the algorithm needs a
 * fixed chunk decomposition (e.g., one partial result slot per chunk).
 */
void parallelForParts(ThreadPool &pool, size_t n, size_t parts,
                      const std::function<void(size_t, Range)> &body);

} // namespace mnnfast::runtime

#endif // MNNFAST_RUNTIME_PARALLEL_FOR_HH
