/**
 * @file
 * Fork-join data-parallel loops over index ranges, built on ThreadPool.
 *
 * Two scheduling disciplines are provided:
 *
 *  - static (parallelFor / parallelForParts): the range is partitioned
 *    up front and each partition is one task. Lowest overhead; right
 *    when per-item cost is uniform.
 *  - dynamic (parallelForDynamic): one task per worker, all pulling
 *    grain-sized blocks off a shared atomic cursor. Right when
 *    per-item cost is data-dependent (e.g. zero-skipping makes chunk
 *    cost unpredictable) — a worker that lands on cheap items simply
 *    claims more of them instead of idling at the join point.
 *
 * All loops copy the body into the submitted tasks (shared, not
 * per-task, via shared_ptr), so passing a temporary callable is safe
 * even though the tasks outlive the caller's full-expression.
 */

#ifndef MNNFAST_RUNTIME_PARALLEL_FOR_HH
#define MNNFAST_RUNTIME_PARALLEL_FOR_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/thread_pool.hh"

namespace mnnfast::runtime {

/** A contiguous half-open index range [begin, end). */
struct Range
{
    size_t begin;
    size_t end;

    size_t size() const { return end - begin; }
};

/**
 * Split [0, n) into at most `parts` near-equal contiguous ranges.
 * Earlier ranges get the remainder, so sizes differ by at most one.
 * Empty ranges are never produced (fewer parts are returned when
 * n < parts).
 */
std::vector<Range> splitRange(size_t n, size_t parts);

/**
 * Run body(range) over a partition of [0, n) on the pool and wait for
 * completion. The partition has one range per worker (or a single
 * range in inline mode).
 */
void parallelFor(ThreadPool &pool, size_t n,
                 std::function<void(Range)> body);

/**
 * Run body(part_index, range) over exactly `parts` partitions of
 * [0, n), regardless of the pool size. Used when the algorithm needs a
 * fixed chunk decomposition (e.g., one partial result slot per chunk).
 */
void parallelForParts(ThreadPool &pool, size_t n, size_t parts,
                      std::function<void(size_t, Range)> body);

/**
 * Dynamically self-scheduled loop: spawns one task per pool worker
 * (a single inline task in 0-thread mode); each task repeatedly claims
 * the next `grain`-sized block of [0, n) from a shared atomic cursor
 * and calls body(worker, block) until the range is exhausted.
 *
 * `worker` is the task's index in [0, workerCount) — unique per
 * concurrent executor, so it can index per-worker accumulator slots
 * without locking. Blocks are claimed in ascending order but may be
 * *executed* in any interleaving; bodies that reduce must either use
 * per-worker slots or handle their own synchronization.
 *
 * A grain of 0 is treated as 1. Returns after all blocks completed.
 */
void parallelForDynamic(ThreadPool &pool, size_t n, size_t grain,
                        std::function<void(size_t, Range)> body);

} // namespace mnnfast::runtime

#endif // MNNFAST_RUNTIME_PARALLEL_FOR_HH
