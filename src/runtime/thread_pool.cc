#include "runtime/thread_pool.hh"

#include "util/logging.hh"

namespace mnnfast::runtime {

ThreadPool::ThreadPool(size_t threads)
{
    workers.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        stopping = true;
    }
    cv_task.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    mnn_assert(task != nullptr, "null task submitted");
    if (workers.empty()) {
        // Inline mode: run on the caller. Keeps 1-thread measurements
        // free of queueing noise.
        task();
        return;
    }
    bool wake;
    {
        std::unique_lock<std::mutex> lock(mutex);
        queue.push_back(std::move(task));
        // Only signal when someone is actually parked in cv_task.
        // Busy workers re-check the queue under the lock after each
        // task, so skipping the notify cannot strand work, and the
        // common fork-join burst (every worker busy) submits without
        // any futex syscall.
        wake = idleWaiters > 0;
    }
    if (wake)
        cv_task.notify_one();
}

void
ThreadPool::waitIdle()
{
    if (workers.empty())
        return;
    std::unique_lock<std::mutex> lock(mutex);
    cv_idle.wait(lock, [this] { return queue.empty() && active == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            ++idleWaiters;
            cv_task.wait(lock,
                         [this] { return stopping || !queue.empty(); });
            --idleWaiters;
            if (queue.empty()) {
                // stopping && empty: exit.
                return;
            }
            task = std::move(queue.front());
            queue.pop_front();
            ++active;
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex);
            --active;
            if (queue.empty() && active == 0)
                cv_idle.notify_all();
        }
    }
}

} // namespace mnnfast::runtime
