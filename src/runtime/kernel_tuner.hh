/**
 * @file
 * Startup kernel autotuner for the fused knowledge-base sweeps.
 *
 * The column/baseline engines sweep M_IN/M_OUT in strips, pacing
 * software prefetch across the strip loop. The best (strip rows,
 * prefetch stride) pair depends on the storage precision (bytes per
 * row), the embedding dimension, and the batch size — a measured
 * artifact, not a hard-coded guess. KernelTuner sweeps a small
 * candidate grid over a synthetic row block at first use of each
 * (precision, ed, nq) bucket, caches the winner in a process-wide
 * table, and hands engines the tuned plan; later engine constructions
 * (e.g. one engine per serving worker) hit the cache and never
 * re-measure. The table round-trips through JSON (exportJson /
 * importJson) so benchmark artifacts can embed it and a process can
 * be seeded from a file via MNNFAST_TUNER_CACHE.
 *
 * Correctness is independent of the tuner: every candidate plan
 * yields bit-identical engine output, because a plan only changes how
 * a row sweep is split into kernel calls (at multiples of the
 * kernels' 4-row register group) and how far apart prefetch
 * instructions land — never the per-(query, row) accumulation order
 * the kernels pin down. MNNFAST_NO_TUNER=1 skips measurement and
 * returns the default plan everywhere (the pre-tuner behaviour).
 */

#ifndef MNNFAST_RUNTIME_KERNEL_TUNER_HH
#define MNNFAST_RUNTIME_KERNEL_TUNER_HH

#include <cstddef>
#include <string>
#include <vector>

namespace mnnfast::runtime {

/**
 * One tuned pick for the fused KB sweeps. stripRows is the number of
 * rows per kernel call in the phase-1/phase-3 strip loops (always a
 * multiple of 4, the kernels' register-group width, so strip
 * boundaries never change accumulation grouping); prefetchStride is
 * the pacing of software prefetch in cache lines (a prefetch
 * instruction every `prefetchStride` lines, 0 = no prefetch). The
 * defaults reproduce the pre-tuner engine constants.
 */
struct KernelPlan
{
    size_t stripRows = 16;
    size_t prefetchStride = 2;
};

/**
 * The candidate grid the tuner sweeps — every plan it can ever hand
 * out draws stripRows from kStripRowsCandidates and prefetchStride
 * from kPrefetchStrideCandidates. Exposed so engines can validate
 * pinned EngineConfig overrides against the same set (a pin outside
 * the grid would make pinned and tuned runs incomparable) and so
 * import paths can reject out-of-range table entries.
 */
inline constexpr size_t kStripRowsCandidates[] = {8,  16,  32,
                                                  64, 128, 256};
inline constexpr size_t kPrefetchStrideCandidates[] = {0, 2, 4};

/** Where a table entry came from (JSON `origin` field). */
enum class PlanOrigin {
    Default,  ///< MNNFAST_NO_TUNER or measurement unavailable
    Measured, ///< swept in this process
    Imported, ///< loaded from JSON
};

/** Name of a PlanOrigin: "default", "measured" or "imported". */
const char *planOriginName(PlanOrigin o);

/**
 * Process-wide tuning table (singleton: one table per process, shared
 * by every engine). Thread-safe; a miss measures under the table lock
 * so concurrent constructions of identical engines measure once.
 */
class KernelTuner
{
  public:
    /** The process-wide instance. */
    static KernelTuner &instance();

    /**
     * Tuned plan for a fused sweep over rows of `precision` ("f32",
     * "bf16", "i8", or "bound" — the chunk-summary bound sweep, whose
     * row payload is a lo+hi fp32 pair per summarized chunk),
     * embedding dimension `ed`, and `nq` concurrent queries. ed and
     * nq are bucketed (ed to {64, 128, 256, 512}, nq to {1, 4, 16})
     * so the table stays small and unit tests with many geometries
     * re-measure rarely. First call per bucket measures the candidate
     * grid (~tens of ms); later calls are a locked map lookup. With
     * MNNFAST_NO_TUNER=1 returns the default plan without measuring
     * or caching.
     */
    KernelPlan plan(const char *precision, size_t ed, size_t nq);

    /** One table entry, as reported by entries(). */
    struct Entry
    {
        std::string precision;
        size_t ed = 0;
        size_t nq = 0;
        KernelPlan plan;
        double seconds = 0.0; ///< best candidate's measured seconds
        PlanOrigin origin = PlanOrigin::Default;
    };

    /** Snapshot of the table, sorted by (precision, ed, nq). */
    std::vector<Entry> entries() const;

    /** Number of entries measured in this process (cache-hit tests). */
    size_t measuredCount() const;

    /**
     * The table as a JSON object:
     * {"backend": "...", "entries": [{"precision": "i8", "ed": 128,
     *  "nq": 16, "strip_rows": 32, "prefetch_stride": 2,
     *  "seconds": 1.2e-3, "origin": "measured"}, ...]}.
     * Schema documented in DESIGN.md §10.
     */
    std::string exportJson() const;

    /** Write exportJson() to a file; false (with a warning) on error. */
    bool exportJsonFile(const std::string &path) const;

    /**
     * Merge entries parsed from an exportJson()-shaped string into
     * the table (existing keys keep their current plan; imported
     * entries satisfy later plan() calls without measuring). Returns
     * the number of entries merged, or -1 on a parse error.
     */
    int importJson(const std::string &text);

    /** importJson over a file's contents; -1 if unreadable. */
    int importJsonFile(const std::string &path);

    /**
     * Test hook: drop every entry (later plan() calls re-measure) and
     * re-arm the one-shot MNNFAST_TUNER_CACHE seeding, so tests can
     * point the env var at a fresh file and exercise the import path
     * again in the same process.
     */
    void clear();

  private:
    KernelTuner() = default;
    // All state is process-wide and lives behind a lock in the
    // translation unit (the class is a stateless handle).
};

} // namespace mnnfast::runtime

#endif // MNNFAST_RUNTIME_KERNEL_TUNER_HH
