/**
 * @file
 * The cluster transport contract: connection-oriented, message-
 * framed, deadline-aware point-to-point channels (DESIGN.md §12).
 *
 * Two implementations exist: a real TCP socket transport
 * (tcp_transport.hh) for cross-process nodes, and an in-process
 * loopback transport (loopback_transport.hh) with seeded,
 * deterministic fault injection for tests and benches. Cluster code
 * (ShardNode, ClusterFrontEnd) is written against this interface
 * only, so every failover/hedging/partial-answer path is exercised
 * against the loopback faults in unit tests and then runs unchanged
 * over sockets.
 *
 * Contract notes:
 *  - Channels carry whole wire-format Frames (net/wire.hh); the
 *    transport performs the byte encode/decode, so a frame that
 *    arrives has already passed magic/version/length/CRC validation.
 *    A frame that fails validation surfaces as RecvStatus::Corrupt —
 *    the caller decides whether to drop the connection.
 *  - recv takes an absolute steady-clock deadline and returns Timeout
 *    without consuming anything when it passes. A timed-out recv
 *    leaves the channel usable: a frame mid-reassembly stays buffered
 *    and later recv calls resume it (no desync).
 *  - send either queues/writes the whole frame (true) or reports the
 *    channel broken (false). Sends never reorder within a channel;
 *    delivery order across *channels* is unspecified.
 *  - close() is idempotent; after it, send fails and recv returns
 *    Closed once buffered input is exhausted (transports may discard
 *    buffered input on close — callers must not rely on post-close
 *    drains).
 *  - Channels are *not* thread-safe: one thread sends and receives on
 *    a channel at a time (the cluster code gives each shard fetch its
 *    own channels). Listener::accept and Transport::connect are
 *    thread-safe.
 */

#ifndef MNNFAST_NET_TRANSPORT_HH
#define MNNFAST_NET_TRANSPORT_HH

#include <chrono>
#include <memory>
#include <string>

#include "net/wire.hh"

namespace mnnfast::net {

using NetClock = std::chrono::steady_clock;

/** Outcome of one Channel::recv call. */
enum class RecvStatus {
    Ok,      ///< a validated frame was delivered
    Timeout, ///< deadline passed; channel still usable
    Closed,  ///< peer disconnected (or close() was called)
    Corrupt, ///< bytes arrived but failed wire validation
};

/** One bidirectional, message-framed connection. See file header. */
class Channel
{
  public:
    virtual ~Channel() = default;

    /** Send one frame; false when the channel is broken/closed. */
    virtual bool send(const Frame &frame) = 0;

    /** Receive the next frame, waiting until `deadline` at most. */
    virtual RecvStatus recv(Frame &out, NetClock::time_point deadline) = 0;

    /** Break the connection (idempotent). */
    virtual void close() = 0;
};

/** Accept side of an endpoint. */
class Listener
{
  public:
    virtual ~Listener() = default;

    /**
     * Wait for one inbound connection until `deadline`; null on
     * timeout or once the listener is closed.
     */
    virtual std::unique_ptr<Channel>
    accept(NetClock::time_point deadline) = 0;

    /** Stop accepting; pending and future accepts return null. */
    virtual void close() = 0;
};

/** Factory for channels and listeners on one address family. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Connect to `endpoint` ("host:port" for TCP, a registered name
     * for loopback); null when the endpoint is unreachable or the
     * deadline passes first.
     */
    virtual std::unique_ptr<Channel>
    connect(const std::string &endpoint, NetClock::time_point deadline) = 0;

    /**
     * Open `endpoint` for inbound connections; null when the endpoint
     * is unavailable (e.g. port in use, name taken).
     */
    virtual std::unique_ptr<Listener>
    listen(const std::string &endpoint) = 0;
};

/** Absolute deadline `seconds` from now (clamped non-negative). */
inline NetClock::time_point
deadlineIn(double seconds)
{
    if (seconds < 0.0)
        seconds = 0.0;
    return NetClock::now()
           + std::chrono::duration_cast<NetClock::duration>(
               std::chrono::duration<double>(seconds));
}

} // namespace mnnfast::net

#endif // MNNFAST_NET_TRANSPORT_HH
