#include "net/cluster_frontend.hh"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/logging.hh"
#include "util/timer.hh"

namespace mnnfast::net {

namespace detail {

/**
 * Per-shard fetch state, owned by one fetch thread (single writer;
 * the front end reads only between batches). Holds the connection,
 * replica cursor, hedge latency model, RPC counters, and the batch's
 * result slot.
 */
struct ShardFetcher
{
    size_t shard = 0;
    std::vector<std::string> replicas;
    size_t current = 0; ///< replica cursor (advanced by failover)

    std::unique_ptr<Channel> channel;      ///< current replica
    std::unique_ptr<Channel> hedgeChannel; ///< outstanding backup
    size_t hedgeReplica = 0;

    /** Observed RPC latencies; drives the hedge delay quantile. */
    stats::Histogram rpcLatency;
    static constexpr uint64_t kMinSamplesForQuantile = 16;

    /** Per-shard counters + anything else the recorder tracks. */
    serve::LatencyRecorder recorder;

    // Result slot for the in-flight batch.
    core::StreamPartial partial;
    bool answered = false;

    explicit ShardFetcher(double timeout_seconds)
        : rpcLatency(0.0, std::max(timeout_seconds, 1e-3), 512)
    {
    }
};

} // namespace detail

namespace {

/** Recv slice while racing a primary against a hedge connection. */
constexpr double kHedgeRaceSliceSeconds = 1e-3;

} // namespace

ClusterFrontEnd::ClusterFrontEnd(Transport &transport_,
                                 const ClusterConfig &cfg_)
    : transport(transport_), cfg(cfg_)
{
    if (cfg.replicas.empty())
        fatal("cluster front end needs at least one shard");
    if (cfg.replicas.size() > 32)
        fatal("cluster front end supports at most 32 shards (got %zu)",
              cfg.replicas.size());
    for (size_t s = 0; s < cfg.replicas.size(); ++s)
        if (cfg.replicas[s].empty())
            fatal("shard %zu has no replica endpoints", s);

    fetchers.reserve(cfg.replicas.size());
    for (size_t s = 0; s < cfg.replicas.size(); ++s) {
        auto f = std::make_unique<detail::ShardFetcher>(
            cfg.requestTimeoutSeconds);
        f->shard = s;
        f->replicas = cfg.replicas[s];
        fetchers.push_back(std::move(f));
    }
    threads.reserve(fetchers.size());
    for (size_t s = 0; s < fetchers.size(); ++s)
        threads.emplace_back([this, s] { fetchLoop(s); });
}

ClusterFrontEnd::~ClusterFrontEnd()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    workCv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

size_t
ClusterFrontEnd::shardCount() const
{
    return fetchers.size();
}

/**
 * Run one shard's fetch state machine for the published job:
 * connect/failover, send, hedge at the latency quantile, dedup by
 * requestId, until a valid response or the batch deadline. Static
 * free-function shape keeps the locking story obvious: everything
 * here touches only the fetcher (single-owner) and the transport
 * (thread-safe connect).
 */
namespace {

struct FetchContext
{
    Transport &transport;
    const ClusterConfig &cfg;
    const float *u;
    size_t nq;
    size_t ed;
    uint64_t requestId;
    NetClock::time_point deadline;
};

ScatterRequest
buildRequest(const FetchContext &ctx, uint32_t shard)
{
    ScatterRequest req;
    req.requestId = ctx.requestId;
    req.shard = shard;
    req.nq = static_cast<uint32_t>(ctx.nq);
    req.ed = static_cast<uint32_t>(ctx.ed);
    req.u.assign(ctx.u, ctx.u + ctx.nq * ctx.ed);
    return req;
}

/** Connect to replica `r` within the connect budget and deadline. */
std::unique_ptr<Channel>
connectReplica(const FetchContext &ctx, detail::ShardFetcher &f,
               size_t r)
{
    const NetClock::time_point connectDeadline = std::min(
        ctx.deadline, deadlineIn(ctx.cfg.connectTimeoutSeconds));
    return ctx.transport.connect(f.replicas[r % f.replicas.size()],
                                 connectDeadline);
}

/** The hedge delay: a quantile of observed latencies, floored. */
double
hedgeDelaySeconds(const ClusterConfig &cfg,
                  const detail::ShardFetcher &f)
{
    if (f.rpcLatency.count()
        < detail::ShardFetcher::kMinSamplesForQuantile)
        return cfg.hedgeMinSeconds;
    return std::max(cfg.hedgeMinSeconds,
                    f.rpcLatency.quantile(cfg.hedgeQuantile));
}

/**
 * Try to pull a valid response for `ctx.requestId` off `ch` before
 * `until`. Returns Ok only for the matching id (stale ids are
 * discarded and the wait continues); Timeout/Closed/Corrupt pass
 * through for the caller's failover logic.
 */
RecvStatus
recvResponse(const FetchContext &ctx, detail::ShardFetcher &f,
             Channel &ch, NetClock::time_point until,
             core::StreamPartial &out)
{
    Frame frame;
    for (;;) {
        const RecvStatus st = ch.recv(frame, until);
        if (st != RecvStatus::Ok)
            return st;
        if (frame.type != FrameType::PartialResponse)
            return RecvStatus::Corrupt; // protocol violation
        PartialResponse resp;
        if (decodePartialResponse(frame, resp) != WireStatus::Ok)
            return RecvStatus::Corrupt;
        if (resp.requestId != ctx.requestId)
            continue; // stale (earlier batch / settled hedge): discard
        if (resp.shard != f.shard || resp.nq != ctx.nq
            || resp.ed != ctx.ed)
            return RecvStatus::Corrupt; // wrong shard or shape
        out = std::move(resp.partial);
        return RecvStatus::Ok;
    }
}

/** One shard's fetch for one batch; true when a partial landed. */
bool
fetchShard(const FetchContext &ctx, detail::ShardFetcher &f)
{
    serve::RpcShardCounters &c = f.recorder.rpcShard(f.shard);
    const Frame reqFrame =
        encodeScatterRequest(buildRequest(ctx, f.shard));
    Timer rpcTimer;

    // Outer loop: one iteration per (re)send on the current primary.
    bool sentOnce = false;
    while (NetClock::now() < ctx.deadline) {
        // Ensure a primary connection, failing over on dead replicas.
        // The short sleep keeps an all-replicas-down shard from
        // spinning through its deadline (loopback connects to a
        // missing endpoint fail instantly).
        if (!f.channel) {
            f.channel = connectReplica(ctx, f, f.current);
            if (!f.channel) {
                f.current = (f.current + 1) % f.replicas.size();
                ++c.failovers;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                continue;
            }
        }
        if (!f.channel->send(reqFrame)) {
            f.channel.reset();
            f.current = (f.current + 1) % f.replicas.size();
            ++c.failovers;
            continue;
        }
        ++c.rpcs;
        if (!sentOnce) {
            sentOnce = true;
            rpcTimer.reset();
        }

        // Phase 1: wait on the primary alone until the hedge point.
        const bool canHedge =
            ctx.cfg.hedging && f.replicas.size() > 1 && !f.hedgeChannel;
        NetClock::time_point hedgeAt = ctx.deadline;
        if (canHedge)
            hedgeAt = std::min(
                ctx.deadline, deadlineIn(hedgeDelaySeconds(ctx.cfg, f)));

        const RecvStatus first = recvResponse(
            ctx, f, *f.channel,
            f.hedgeChannel ? NetClock::now() : hedgeAt, f.partial);
        if (first == RecvStatus::Ok) {
            f.rpcLatency.add(rpcTimer.seconds());
            if (f.hedgeChannel) {
                f.hedgeChannel->close();
                f.hedgeChannel.reset();
            }
            return true;
        }
        if (first == RecvStatus::Closed || first == RecvStatus::Corrupt) {
            f.channel.reset();
            f.current = (f.current + 1) % f.replicas.size();
            ++c.failovers;
            continue;
        }

        // Phase 2: fire the hedge and race both connections with
        // short alternating recv slices until the deadline.
        if (canHedge && NetClock::now() >= hedgeAt) {
            f.hedgeReplica = (f.current + 1) % f.replicas.size();
            f.hedgeChannel = connectReplica(ctx, f, f.hedgeReplica);
            if (f.hedgeChannel) {
                if (f.hedgeChannel->send(reqFrame)) {
                    ++c.hedgesFired;
                    ++c.rpcs;
                } else {
                    f.hedgeChannel.reset();
                }
            }
        }
        while (NetClock::now() < ctx.deadline) {
            const RecvStatus pst = recvResponse(
                ctx, f, *f.channel,
                std::min(ctx.deadline,
                         deadlineIn(kHedgeRaceSliceSeconds)),
                f.partial);
            if (pst == RecvStatus::Ok) {
                f.rpcLatency.add(rpcTimer.seconds());
                if (f.hedgeChannel) {
                    f.hedgeChannel->close();
                    f.hedgeChannel.reset();
                }
                return true;
            }
            if (pst == RecvStatus::Closed || pst == RecvStatus::Corrupt) {
                f.channel.reset();
                break; // fail over below (hedge may still win first)
            }
            if (!f.hedgeChannel)
                continue;
            const RecvStatus hst = recvResponse(
                ctx, f, *f.hedgeChannel,
                std::min(ctx.deadline,
                         deadlineIn(kHedgeRaceSliceSeconds)),
                f.partial);
            if (hst == RecvStatus::Ok) {
                // Hedge win: promote the backup replica to primary.
                f.rpcLatency.add(rpcTimer.seconds());
                ++c.hedgeWins;
                if (f.channel)
                    f.channel->close();
                f.channel = std::move(f.hedgeChannel);
                f.current = f.hedgeReplica;
                return true;
            }
            if (hst == RecvStatus::Closed || hst == RecvStatus::Corrupt)
                f.hedgeChannel.reset();
            if (!f.channel && !f.hedgeChannel)
                break; // both paths dead: reconnect and resend
        }
        if (!f.channel) {
            f.current = (f.current + 1) % f.replicas.size();
            ++c.failovers;
        }
        if (f.channel && NetClock::now() < ctx.deadline) {
            // Primary alive but silent and the hedge settled nothing:
            // keep waiting on it (no resend — the request is still
            // outstanding and a resend would only duplicate work).
            continue;
        }
    }

    ++c.deadlineMisses;
    if (f.hedgeChannel) {
        f.hedgeChannel->close();
        f.hedgeChannel.reset();
    }
    return false;
}

} // namespace

void
ClusterFrontEnd::fetchLoop(size_t s)
{
    detail::ShardFetcher &f = *fetchers[s];
    uint64_t seen = 0;
    for (;;) {
        BatchJob local;
        {
            std::unique_lock<std::mutex> lock(mutex);
            workCv.wait(lock, [&] {
                return stopping || generation != seen;
            });
            if (stopping)
                break;
            seen = generation;
            local = job;
        }

        FetchContext ctx{transport, cfg,          local.u,
                         local.nq,  local.ed,     local.requestId,
                         local.deadline};
        f.answered = fetchShard(ctx, f);

        {
            std::lock_guard<std::mutex> lock(mutex);
            --pendingShards;
        }
        doneCv.notify_one();
    }
    if (f.channel)
        f.channel->close();
    if (f.hedgeChannel)
        f.hedgeChannel->close();
}

BatchResult
ClusterFrontEnd::inferBatch(const float *u, size_t nq, size_t ed,
                            float *o)
{
    mnn_assert(nq > 0 && ed > 0, "empty cluster batch");
    Timer timer;

    {
        std::lock_guard<std::mutex> lock(mutex);
        job.u = u;
        job.nq = nq;
        job.ed = ed;
        job.requestId = nextRequestId++;
        job.deadline = deadlineIn(cfg.requestTimeoutSeconds);
        ++generation;
        pendingShards = fetchers.size();
    }
    workCv.notify_all();
    {
        std::unique_lock<std::mutex> lock(mutex);
        doneCv.wait(lock, [&] { return pendingShards == 0; });
    }

    BatchResult result;
    std::vector<const core::StreamPartial *> parts;
    parts.reserve(fetchers.size());
    for (size_t s = 0; s < fetchers.size(); ++s) {
        if (!fetchers[s]->answered)
            continue;
        parts.push_back(&fetchers[s]->partial);
        result.shardMask |= uint32_t{1} << s;
        ++result.shardsAnswered;
    }
    result.complete = result.shardsAnswered == fetchers.size();

    const bool merge =
        result.complete
        || (cfg.allowPartial && result.shardsAnswered > 0);
    if (merge)
        core::mergeStreamPartials(parts.data(), parts.size(), nq, ed,
                                  cfg.onlineNormalize, o);
    else
        result.shardsAnswered = 0; // failed closed; o untouched

    const double seconds = timer.seconds();
    recorder.recordBatch(nq);
    recorder.recordRequest(0.0, seconds, seconds);
    if (merge && !result.complete)
        recorder.recordPartialAnswers(nq);
    return result;
}

serve::LatencySnapshot
ClusterFrontEnd::snapshot() const
{
    serve::LatencyRecorder acc(1.0, 4096);
    recorder.mergeInto(acc);
    for (const auto &f : fetchers)
        f->recorder.mergeInto(acc);
    // Every shard gets a slot even before its first RPC.
    acc.rpcShard(fetchers.size() - 1);
    return acc.snapshot();
}

void
ClusterFrontEnd::shutdownNodes(double timeoutSeconds)
{
    const Frame bye{FrameType::Shutdown, {}};
    for (const auto &f : fetchers) {
        for (const std::string &ep : f->replicas) {
            std::unique_ptr<Channel> ch = transport.connect(
                ep, deadlineIn(timeoutSeconds));
            if (ch)
                ch->send(bye);
        }
    }
}

} // namespace mnnfast::net
