#include "net/cluster_frontend.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "util/logging.hh"

namespace mnnfast::net {

namespace detail {

/**
 * Per-shard fetch state, owned by one fetch thread (single writer).
 * Holds the connection, replica cursor, hedge latency model, and the
 * shard's job queue (guarded by the front end's mutex).
 */
struct ShardFetcher
{
    size_t shard = 0;
    std::vector<std::string> replicas;
    size_t current = 0; ///< replica cursor (advanced by failover)

    std::unique_ptr<Channel> channel;      ///< current replica
    std::unique_ptr<Channel> hedgeChannel; ///< outstanding backup
    size_t hedgeReplica = 0;

    /** Observed RPC latencies; drives the hedge delay quantile. */
    stats::Histogram rpcLatency;
    static constexpr uint64_t kMinSamplesForQuantile = 16;

    /** Pending batches for this shard, oldest first (front-end mutex
     *  guards it; the fetch thread drains it serially). */
    std::deque<void *> jobs;

    /**
     * Send-ahead bookkeeping (fetch-thread private). Queued jobs are
     * pushed onto the current channel as soon as it is idle —
     * `sentAhead` maps their requestId to the send instant — so the
     * node computes batch k+1 while the gather of batch k is still in
     * flight; that overlap is what keeps the round trip off the
     * pipeline's critical path. The node answers a channel's requests
     * in FIFO order, so a response that arrives while an earlier job
     * is draining belongs to a send-ahead: it is stashed in `early`
     * (keyed by requestId, latency sampled at arrival) until its job
     * becomes active. Both maps die with the connection (`sentAhead`
     * — the requests were lost with it) or once their id retires
     * (`early`).
     */
    std::map<uint64_t, NetClock::time_point> sentAhead;
    std::map<uint64_t, core::StreamPartial> early;

    explicit ShardFetcher(double timeout_seconds)
        : rpcLatency(0.0, std::max(timeout_seconds, 1e-3), 512)
    {
    }
};

} // namespace detail

namespace {

/** Recv slice while racing a primary against a hedge connection. */
constexpr double kHedgeRaceSliceSeconds = 1e-3;

/** Batch-latency histogram resolution. */
constexpr size_t kRecorderBins = 4096;

/**
 * Batch-latency histogram range: a batch's submit-to-retire time is
 * bounded by its own fetch deadline plus up to (window - 1) deadlines
 * of the batches queued ahead of it on the slowest shard, so the
 * range scales with both — a fixed 1 s ceiling would saturate the
 * top bin (and clamp every quantile) exactly when latency matters.
 */
double
derivedHistogramMax(const ClusterConfig &cfg)
{
    const double depth =
        static_cast<double>(std::max<size_t>(cfg.pipelineDepth, 1));
    return std::max(1e-3, cfg.requestTimeoutSeconds * (depth + 1.0));
}

} // namespace

ClusterFrontEnd::ClusterFrontEnd(Transport &transport_,
                                 const ClusterConfig &cfg_)
    : transport(transport_), cfg(cfg_),
      histogramMaxSeconds(derivedHistogramMax(cfg_)),
      recorder(histogramMaxSeconds, kRecorderBins)
{
    if (cfg.replicas.empty())
        fatal("cluster front end needs at least one shard");
    if (cfg.replicas.size() > 32)
        fatal("cluster front end supports at most 32 shards (got %zu)",
              cfg.replicas.size());
    for (size_t s = 0; s < cfg.replicas.size(); ++s)
        if (cfg.replicas[s].empty())
            fatal("shard %zu has no replica endpoints", s);
    if (cfg.pipelineDepth == 0)
        cfg.pipelineDepth = 1; // serial

    fetchers.reserve(cfg.replicas.size());
    for (size_t s = 0; s < cfg.replicas.size(); ++s) {
        auto f = std::make_unique<detail::ShardFetcher>(
            cfg.requestTimeoutSeconds);
        f->shard = s;
        f->replicas = cfg.replicas[s];
        fetchers.push_back(std::move(f));
    }
    threads.reserve(fetchers.size());
    for (size_t s = 0; s < fetchers.size(); ++s)
        threads.emplace_back([this, s] { fetchLoop(s); });
}

ClusterFrontEnd::~ClusterFrontEnd()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        mnn_assert(window.empty(),
                   "cluster front end destroyed with unretired "
                   "batches: wait every submitted ticket first");
        stopping = true;
    }
    workCv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

size_t
ClusterFrontEnd::shardCount() const
{
    return fetchers.size();
}

size_t
ClusterFrontEnd::pipelineDepth() const
{
    return cfg.pipelineDepth;
}

/**
 * Run one shard's fetch state machine for one job: connect/failover,
 * send once per connection, hedge at the latency quantile, dedup by
 * requestId, until a valid response or the job deadline. Static
 * free-function shape keeps the locking story obvious: everything
 * here touches only the fetcher (single-owner), the local counters,
 * and the transport (thread-safe connect).
 */
namespace {

struct FetchContext
{
    Transport &transport;
    const ClusterConfig &cfg;
    const float *u;
    size_t nq;
    size_t ed;
    uint64_t requestId;
    NetClock::time_point deadline;
};

ScatterRequest
buildRequest(const FetchContext &ctx, uint32_t shard)
{
    ScatterRequest req;
    req.requestId = ctx.requestId;
    req.shard = shard;
    req.nq = static_cast<uint32_t>(ctx.nq);
    req.ed = static_cast<uint32_t>(ctx.ed);
    req.u.assign(ctx.u, ctx.u + ctx.nq * ctx.ed);
    return req;
}

/** Connect to replica `r` within the connect budget and deadline. */
std::unique_ptr<Channel>
connectReplica(const FetchContext &ctx, detail::ShardFetcher &f,
               size_t r)
{
    const NetClock::time_point connectDeadline = std::min(
        ctx.deadline, deadlineIn(ctx.cfg.connectTimeoutSeconds));
    return ctx.transport.connect(f.replicas[r % f.replicas.size()],
                                 connectDeadline);
}

/** The hedge delay: a quantile of observed latencies, floored. */
double
hedgeDelaySeconds(const ClusterConfig &cfg,
                  const detail::ShardFetcher &f)
{
    if (f.rpcLatency.count()
        < detail::ShardFetcher::kMinSamplesForQuantile)
        return cfg.hedgeMinSeconds;
    return std::max(cfg.hedgeMinSeconds,
                    f.rpcLatency.quantile(cfg.hedgeQuantile));
}

double
secondsSince(NetClock::time_point start)
{
    return std::chrono::duration<double>(NetClock::now() - start)
        .count();
}

/**
 * Try to pull a valid response for `ctx.requestId` off `ch` before
 * `until`. Returns Ok only for the matching id. A response for a
 * *send-ahead* request (a later job already on the wire) is stashed
 * in f.early — with its latency sampled at arrival — for its own job
 * to consume; anything else with a foreign id (earlier batches still
 * draining, settled hedges) is stale and discarded, and the wait
 * continues. Timeout/Closed/Corrupt pass through for the caller's
 * failover logic.
 */
RecvStatus
recvResponse(const FetchContext &ctx, detail::ShardFetcher &f,
             Channel &ch, NetClock::time_point until,
             core::StreamPartial &out)
{
    Frame frame;
    for (;;) {
        const RecvStatus st = ch.recv(frame, until);
        if (st != RecvStatus::Ok)
            return st;
        if (frame.type != FrameType::PartialResponse)
            return RecvStatus::Corrupt; // protocol violation
        PartialResponse resp;
        if (decodePartialResponse(frame, resp) != WireStatus::Ok)
            return RecvStatus::Corrupt;
        if (resp.requestId != ctx.requestId) {
            const auto sa = f.sentAhead.find(resp.requestId);
            if (sa != f.sentAhead.end() && resp.shard == f.shard) {
                f.rpcLatency.add(secondsSince(sa->second));
                f.early[resp.requestId] = std::move(resp.partial);
            }
            continue; // send-ahead stashed, or stale: keep waiting
        }
        if (resp.shard != f.shard || resp.nq != ctx.nq
            || resp.ed != ctx.ed)
            return RecvStatus::Corrupt; // wrong shard or shape
        out = std::move(resp.partial);
        return RecvStatus::Ok;
    }
}

/**
 * One shard's fetch for one job; true when a partial landed in `out`.
 * Counters accumulate into `c` (a thread-local scratch the caller
 * publishes under the front-end mutex afterwards).
 *
 * Send policy: the request goes out exactly once per connection —
 * tracked by sentOnPrimary/sentOnHedge, cleared only when that
 * connection is replaced. When the primary dies while a hedge is
 * outstanding, the hedge is *promoted* to primary (connection, replica
 * cursor, outstanding-request state, and attempt timer move over)
 * instead of reconnecting and resending: the request is still live on
 * the hedge, so a third copy would only duplicate shard work and
 * inflate the rpc count.
 *
 * Timing policy: every attempt gets its own stopwatch, reset at its
 * own send. A sample therefore never includes a previous attempt's
 * connect or wait time — which used to inflate the hedge-delay
 * quantile after any failover and suppress hedges right after an
 * incident.
 */
bool
fetchShard(const FetchContext &ctx, detail::ShardFetcher &f,
           serve::RpcShardCounters &c, core::StreamPartial &out)
{
    // A send-ahead response may already be in hand (it arrived while
    // an earlier job was draining this channel).
    {
        const auto it = f.early.find(ctx.requestId);
        if (it != f.early.end()) {
            if (it->second.nq == ctx.nq
                && it->second.o.size() == ctx.nq * ctx.ed) {
                out = std::move(it->second);
                f.early.erase(it);
                return true;
            }
            f.early.erase(it); // defensive: wrong shape, refetch
        }
    }

    const Frame reqFrame =
        encodeScatterRequest(buildRequest(ctx, f.shard));
    NetClock::time_point primarySentAt{};
    NetClock::time_point hedgeSentAt{};
    bool sentOnPrimary = false;
    bool sentOnHedge = false;
    // The active job may itself have been sent ahead on the current
    // connection: the request is outstanding, so re-arm the attempt
    // clock from its actual send instead of sending again.
    {
        const auto it = f.sentAhead.find(ctx.requestId);
        if (it != f.sentAhead.end()) {
            sentOnPrimary = true;
            primarySentAt = it->second;
        }
    }

    // Abandon an outstanding hedge (response won by the primary, or
    // job over): close so the node's late answer has nowhere to go.
    const auto settleHedge = [&] {
        if (f.hedgeChannel) {
            f.hedgeChannel->close();
            f.hedgeChannel.reset();
        }
        sentOnHedge = false;
    };
    // The primary connection died: promote an outstanding hedge if
    // there is one, otherwise advance the replica cursor for a fresh
    // connect+send at the top of the outer loop. Either way every
    // unanswered send-ahead died with the connection.
    const auto failPrimary = [&] {
        f.channel.reset();
        f.sentAhead.clear();
        sentOnPrimary = false;
        ++c.failovers;
        if (sentOnHedge) {
            f.channel = std::move(f.hedgeChannel);
            f.current = f.hedgeReplica;
            sentOnPrimary = true;
            sentOnHedge = false;
            primarySentAt = hedgeSentAt; // the attempt keeps its clock
        } else {
            f.current = (f.current + 1) % f.replicas.size();
        }
    };

    // Outer loop: one iteration per primary connection state.
    while (NetClock::now() < ctx.deadline) {
        // Ensure a primary connection, failing over on dead replicas.
        // The short sleep keeps an all-replicas-down shard from
        // spinning through its deadline (loopback connects to a
        // missing endpoint fail instantly).
        if (!f.channel) {
            f.channel = connectReplica(ctx, f, f.current);
            sentOnPrimary = false;
            if (!f.channel) {
                f.current = (f.current + 1) % f.replicas.size();
                ++c.failovers;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                continue;
            }
        }
        // Send exactly once per connection. A kept-alive connection
        // from an earlier job re-arms here (new requestId); a
        // promoted hedge does not (its request is outstanding).
        if (!sentOnPrimary) {
            if (!f.channel->send(reqFrame)) {
                failPrimary();
                continue;
            }
            sentOnPrimary = true;
            ++c.rpcs;
            primarySentAt = NetClock::now();
        }

        // Phase 1: wait on the primary alone until the hedge point
        // (skipped when a hedge is already outstanding).
        const bool canHedge =
            ctx.cfg.hedging && f.replicas.size() > 1 && !sentOnHedge;
        NetClock::time_point hedgeAt = ctx.deadline;
        if (canHedge)
            hedgeAt = std::min(
                ctx.deadline, deadlineIn(hedgeDelaySeconds(ctx.cfg, f)));

        const RecvStatus first = recvResponse(
            ctx, f, *f.channel,
            sentOnHedge ? NetClock::now() : hedgeAt, out);
        if (first == RecvStatus::Ok) {
            f.rpcLatency.add(secondsSince(primarySentAt));
            settleHedge();
            return true;
        }
        if (first == RecvStatus::Closed || first == RecvStatus::Corrupt) {
            failPrimary();
            continue;
        }

        // Phase 2: fire the hedge and race both connections with
        // short alternating recv slices until the deadline.
        if (canHedge && NetClock::now() >= hedgeAt) {
            f.hedgeReplica = (f.current + 1) % f.replicas.size();
            f.hedgeChannel = connectReplica(ctx, f, f.hedgeReplica);
            if (f.hedgeChannel) {
                if (f.hedgeChannel->send(reqFrame)) {
                    sentOnHedge = true;
                    ++c.hedgesFired;
                    ++c.rpcs;
                    hedgeSentAt = NetClock::now();
                } else {
                    f.hedgeChannel.reset();
                }
            }
        }
        while (NetClock::now() < ctx.deadline) {
            const RecvStatus pst = recvResponse(
                ctx, f, *f.channel,
                std::min(ctx.deadline,
                         deadlineIn(kHedgeRaceSliceSeconds)),
                out);
            if (pst == RecvStatus::Ok) {
                f.rpcLatency.add(secondsSince(primarySentAt));
                settleHedge();
                return true;
            }
            if (pst == RecvStatus::Closed || pst == RecvStatus::Corrupt) {
                // Promote the hedge or advance the cursor; the outer
                // loop then waits on the promoted connection or
                // reconnects and re-arms the send.
                failPrimary();
                break;
            }
            if (!sentOnHedge)
                continue;
            const RecvStatus hst = recvResponse(
                ctx, f, *f.hedgeChannel,
                std::min(ctx.deadline,
                         deadlineIn(kHedgeRaceSliceSeconds)),
                out);
            if (hst == RecvStatus::Ok) {
                // Hedge win: promote the backup replica to primary.
                // The primary connection is dropped, and any
                // send-aheads on it with it.
                f.rpcLatency.add(secondsSince(hedgeSentAt));
                ++c.hedgeWins;
                if (f.channel)
                    f.channel->close();
                f.sentAhead.clear();
                f.channel = std::move(f.hedgeChannel);
                f.current = f.hedgeReplica;
                return true;
            }
            if (hst == RecvStatus::Closed || hst == RecvStatus::Corrupt) {
                f.hedgeChannel.reset();
                sentOnHedge = false;
            }
        }
    }

    ++c.deadlineMisses;
    settleHedge();
    return false;
}

} // namespace

void
ClusterFrontEnd::fetchLoop(size_t s)
{
    detail::ShardFetcher &f = *fetchers[s];
    std::vector<InFlight *> lookahead;
    for (;;) {
        InFlight *fl = nullptr;
        lookahead.clear();
        {
            std::unique_lock<std::mutex> lock(mutex);
            workCv.wait(lock,
                        [&] { return stopping || !f.jobs.empty(); });
            if (stopping)
                break;
            fl = static_cast<InFlight *>(f.jobs.front());
            f.jobs.pop_front();
            // Snapshot the jobs queued behind the active one (the
            // window bounds how many there can be) for send-ahead.
            for (void *p : f.jobs)
                lookahead.push_back(static_cast<InFlight *>(p));
        }

        serve::RpcShardCounters counters;

        // Send-ahead: put the active job and every queued successor
        // on the wire now, oldest first, so the node computes batch
        // k+1 while batch k's gather is still in flight — the overlap
        // that keeps the round trip from serializing the pipeline.
        // Safe because the node answers a channel FIFO and responses
        // are matched (and stashed) by requestId; a send failure here
        // just leaves the broken channel to the active fetch's
        // failover path. Only an established connection is used —
        // the first job of a connection goes through the full
        // connect/failover state machine in fetchShard.
        if (f.channel) {
            const auto sendAhead = [&](const InFlight *job) {
                if (f.sentAhead.count(job->requestId) != 0
                    || f.early.count(job->requestId) != 0)
                    return true;
                ScatterRequest req;
                req.requestId = job->requestId;
                req.shard = static_cast<uint32_t>(s);
                req.nq = static_cast<uint32_t>(job->nq);
                req.ed = static_cast<uint32_t>(job->ed);
                req.u.assign(job->u, job->u + job->nq * job->ed);
                if (!f.channel->send(encodeScatterRequest(req)))
                    return false;
                f.sentAhead.emplace(job->requestId, NetClock::now());
                ++counters.rpcs;
                return true;
            };
            if (sendAhead(fl))
                for (InFlight *job : lookahead)
                    if (!sendAhead(job))
                        break;
        }

        // The job deadline is stamped when the fetch *starts*, not at
        // submit: with a window of W, a batch may sit queued behind
        // W-1 predecessors on this shard, and charging it for that
        // wait would cascade one slow batch into a whole window of
        // deadline misses.
        FetchContext ctx{transport,     cfg,
                         fl->u,         fl->nq,
                         fl->ed,        fl->requestId,
                         deadlineIn(cfg.requestTimeoutSeconds)};
        const bool ok = fetchShard(ctx, f, counters, fl->parts[s]);

        // Retire the id: its send-ahead entry (if the connection
        // survived) and any stale early stash at or below it.
        f.sentAhead.erase(f.sentAhead.begin(),
                          f.sentAhead.upper_bound(fl->requestId));
        f.early.erase(f.early.begin(),
                      f.early.upper_bound(fl->requestId));

        {
            std::lock_guard<std::mutex> lock(mutex);
            recorder.rpcShard(s).addFrom(counters);
            if (ok)
                fl->answeredMask |= uint32_t{1} << s;
            --fl->remainingShards;
        }
        doneCv.notify_all();
    }
    if (f.channel)
        f.channel->close();
    if (f.hedgeChannel)
        f.hedgeChannel->close();
}

uint64_t
ClusterFrontEnd::submitBatch(const float *u, size_t nq, size_t ed,
                             float *o)
{
    mnn_assert(nq > 0 && ed > 0, "empty cluster batch");
    auto fl = std::make_unique<InFlight>();
    fl->u = u;
    fl->nq = nq;
    fl->ed = ed;
    fl->o = o;
    fl->parts.resize(fetchers.size());
    fl->remainingShards = fetchers.size();

    uint64_t ticket = 0;
    {
        std::unique_lock<std::mutex> lock(mutex);
        windowCv.wait(lock, [&] {
            return window.size() < cfg.pipelineDepth;
        });
        ticket = fl->requestId = nextRequestId++;
        fl->submitted = NetClock::now();
        InFlight *raw = fl.get();
        window.push_back(std::move(fl));
        for (auto &f : fetchers)
            f->jobs.push_back(raw);
    }
    workCv.notify_all();
    return ticket;
}

BatchResult
ClusterFrontEnd::waitBatch(uint64_t ticket)
{
    std::unique_ptr<InFlight> fl;
    {
        std::unique_lock<std::mutex> lock(mutex);
        mnn_assert(!window.empty()
                       && window.front()->requestId == ticket,
                   "cluster tickets must be waited in submission "
                   "order");
        doneCv.wait(lock, [&] {
            return window.front()->remainingShards == 0;
        });
        fl = std::move(window.front());
        window.pop_front();
    }
    windowCv.notify_one();

    // Merge outside the lock: no fetch thread references this slot
    // once its remainingShards hit zero (ordered by the mutex).
    BatchResult result;
    std::vector<const core::StreamPartial *> parts;
    parts.reserve(fetchers.size());
    for (size_t s = 0; s < fetchers.size(); ++s) {
        if (!(fl->answeredMask & (uint32_t{1} << s)))
            continue;
        parts.push_back(&fl->parts[s]);
        ++result.shardsAnswered;
    }
    result.shardMask = fl->answeredMask;
    result.complete = result.shardsAnswered == fetchers.size();

    const bool merge =
        result.complete
        || (cfg.allowPartial && result.shardsAnswered > 0);
    if (merge) {
        core::mergeStreamPartials(parts.data(), parts.size(), fl->nq,
                                  fl->ed, cfg.onlineNormalize, fl->o);
    } else {
        result.shardsAnswered = 0; // failed closed; o untouched
        result.shardMask = 0;
    }

    const double seconds =
        std::chrono::duration<double>(NetClock::now() - fl->submitted)
            .count();
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (merge) {
            recorder.recordBatch(fl->nq);
            recorder.recordRequest(0.0, seconds, seconds);
            if (!result.complete)
                recorder.recordPartialAnswers(fl->nq);
        } else {
            // Fail-closed batches get their own counter; their
            // deadline-capped timings stay out of the success
            // histograms (they would pin the quantiles at the
            // deadline exactly when the tail matters).
            recorder.recordFailedBatch();
        }
    }
    return result;
}

BatchResult
ClusterFrontEnd::inferBatch(const float *u, size_t nq, size_t ed,
                            float *o)
{
    return waitBatch(submitBatch(u, nq, ed, o));
}

serve::LatencySnapshot
ClusterFrontEnd::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex);
    serve::LatencyRecorder acc(histogramMaxSeconds, kRecorderBins);
    recorder.mergeInto(acc);
    // Every shard gets a slot even before its first RPC.
    acc.rpcShard(fetchers.size() - 1);
    return acc.snapshot();
}

void
ClusterFrontEnd::countersInto(serve::LatencyRecorder &acc) const
{
    std::lock_guard<std::mutex> lock(mutex);
    recorder.mergeCountersInto(acc);
    acc.rpcShard(fetchers.size() - 1);
}

double
ClusterFrontEnd::shardRpcLatencyQuantile(size_t s, double q) const
{
    mnn_assert(s < fetchers.size(), "shard index out of range");
    return fetchers[s]->rpcLatency.quantile(q);
}

void
ClusterFrontEnd::shutdownNodes(double timeoutSeconds)
{
    // One probe thread per replica endpoint: a dark replica burns its
    // connect budget concurrently with the others, so teardown wall
    // time stays ~one budget instead of one per replica.
    const Frame bye{FrameType::Shutdown, {}};
    std::vector<std::thread> probes;
    for (const auto &f : fetchers)
        for (const std::string &ep : f->replicas)
            probes.emplace_back([this, &bye, ep, timeoutSeconds] {
                std::unique_ptr<Channel> ch = transport.connect(
                    ep, deadlineIn(timeoutSeconds));
                if (ch)
                    ch->send(bye);
            });
    for (std::thread &t : probes)
        t.join();
}

} // namespace mnnfast::net
