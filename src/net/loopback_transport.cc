#include "net/loopback_transport.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace mnnfast::net {

namespace detail {

/** One queued message: encoded frame bytes plus its delivery time. */
struct LoopbackMessage
{
    NetClock::time_point deliverAt;
    uint64_t seq = 0;
    std::vector<uint8_t> bytes;

    bool
    operator<(const LoopbackMessage &o) const
    {
        if (deliverAt != o.deliverAt)
            return deliverAt < o.deliverAt;
        return seq < o.seq;
    }
};

/**
 * One direction of a connection. The sender draws faults and inserts
 * delivery-ordered messages; the receiver pops the earliest message
 * whose delivery time has arrived. `peer` (the opposite direction) is
 * needed to break the whole connection on an injected disconnect.
 */
struct LoopbackPipe
{
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::multiset<LoopbackMessage> messages;
    bool closed = false;

    FaultSpec faults;
    XorShiftRng rng{1};
    uint64_t sendSeq = 0;
    std::vector<FaultEvent> log;

    std::weak_ptr<LoopbackPipe> peer;

    void
    closeLocked(std::unique_lock<std::mutex> &lock)
    {
        closed = true;
        // A broken connection loses its in-flight messages — that is
        // what distinguishes a disconnect from slow delivery, and it
        // is what the failover path must survive.
        messages.clear();
        lock.unlock();
        cv.notify_all();
    }

    void
    close()
    {
        std::unique_lock<std::mutex> lock(mutex);
        if (!closed)
            closeLocked(lock);
    }
};

struct LoopbackConnection
{
    std::shared_ptr<LoopbackPipe> clientToServer;
    std::shared_ptr<LoopbackPipe> serverToClient;
};

struct LoopbackEndpoint
{
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<LoopbackConnection> pending;
    bool closed = false;
};

struct LoopbackNetworkState
{
    std::mutex mutex;
    std::map<std::string, std::shared_ptr<LoopbackEndpoint>> endpoints;
};

namespace {

/** Deterministic seed mix for one (connection, direction) stream. */
uint64_t
mixSeed(uint64_t seed, uint64_t conn, uint64_t dir)
{
    uint64_t h = seed ^ (conn * 0x9E3779B97F4A7C15ull)
                 ^ (dir * 0xBF58476D1CE4E5B9ull);
    h ^= h >> 31;
    h *= 0x94D049BB133111EBull;
    h ^= h >> 29;
    return h ? h : 1;
}

} // namespace

/** Accept-side listener over one registered endpoint. */
class LoopbackListener : public Listener
{
  public:
    LoopbackListener(std::shared_ptr<LoopbackNetworkState> net,
                     std::string name,
                     std::shared_ptr<LoopbackEndpoint> ep)
        : net(std::move(net)), name(std::move(name)), ep(std::move(ep))
    {
    }

    ~LoopbackListener() override { close(); }

    std::unique_ptr<Channel>
    accept(NetClock::time_point deadline) override
    {
        std::unique_lock<std::mutex> lock(ep->mutex);
        while (ep->pending.empty()) {
            if (ep->closed)
                return nullptr;
            if (ep->cv.wait_until(lock, deadline)
                == std::cv_status::timeout)
                if (ep->pending.empty())
                    return nullptr;
        }
        LoopbackConnection conn = std::move(ep->pending.front());
        ep->pending.pop_front();
        // The server sends into serverToClient and reads clientToServer.
        return std::make_unique<LoopbackChannel>(conn.serverToClient,
                                                 conn.clientToServer);
    }

    void
    close() override
    {
        {
            std::lock_guard<std::mutex> nlock(net->mutex);
            auto it = net->endpoints.find(name);
            if (it != net->endpoints.end() && it->second == ep)
                net->endpoints.erase(it);
        }
        {
            std::lock_guard<std::mutex> lock(ep->mutex);
            ep->closed = true;
        }
        ep->cv.notify_all();
    }

  private:
    std::shared_ptr<LoopbackNetworkState> net;
    std::string name;
    std::shared_ptr<LoopbackEndpoint> ep;
};

} // namespace detail

LoopbackNetwork::LoopbackNetwork()
    : state(std::make_shared<detail::LoopbackNetworkState>())
{
}

LoopbackNetwork::~LoopbackNetwork() = default;

LoopbackChannel::LoopbackChannel(
    std::shared_ptr<detail::LoopbackPipe> send_pipe,
    std::shared_ptr<detail::LoopbackPipe> recv_pipe)
    : sendPipe(std::move(send_pipe)), recvPipe(std::move(recv_pipe))
{
}

LoopbackChannel::~LoopbackChannel()
{
    close();
}

bool
LoopbackChannel::send(const Frame &frame)
{
    std::vector<uint8_t> bytes = encodeFrame(frame);

    std::shared_ptr<detail::LoopbackPipe> peerToClose;
    {
        std::unique_lock<std::mutex> lock(sendPipe->mutex);
        if (sendPipe->closed)
            return false;

        // Fixed draw order — loss, disconnect, straggler, jitter —
        // independent of the outcomes, so the consumed random stream
        // (and with it the whole schedule) depends only on the seed
        // and the send count. See the file header.
        detail::LoopbackPipe &p = *sendPipe;
        FaultEvent ev;
        ev.seq = p.sendSeq++;
        const bool lost = p.rng.chance(p.faults.lossProb);
        const bool broke = p.rng.chance(p.faults.disconnectProb);
        double delay = p.faults.baseLatencySeconds;
        if (p.rng.chance(p.faults.stragglerProb))
            delay += p.faults.stragglerLatencySeconds;
        delay += p.rng.uniform() * p.faults.jitterSeconds;
        ev.delaySeconds = delay;
        ev.dropped = lost || broke;
        ev.disconnected = broke;
        p.log.push_back(ev);

        if (broke) {
            peerToClose = p.peer.lock();
            p.closeLocked(lock);
            // Fall through to close the other direction below.
        } else if (!lost) {
            detail::LoopbackMessage msg;
            msg.deliverAt =
                NetClock::now()
                + std::chrono::duration_cast<NetClock::duration>(
                    std::chrono::duration<double>(delay));
            msg.seq = ev.seq;
            msg.bytes = std::move(bytes);
            p.messages.insert(std::move(msg));
            lock.unlock();
            p.cv.notify_all();
            return true;
        }
    }
    if (peerToClose)
        peerToClose->close();
    // A lost message is a successful send from the caller's view (the
    // bytes left the host); a disconnect is not.
    return !peerToClose;
}

RecvStatus
LoopbackChannel::recv(Frame &out, NetClock::time_point deadline)
{
    std::unique_lock<std::mutex> lock(recvPipe->mutex);
    for (;;) {
        const auto now = NetClock::now();
        if (!recvPipe->messages.empty()) {
            const detail::LoopbackMessage &head =
                *recvPipe->messages.begin();
            if (head.deliverAt <= now) {
                std::vector<uint8_t> bytes = head.bytes;
                recvPipe->messages.erase(recvPipe->messages.begin());
                lock.unlock();
                const WireStatus ws =
                    decodeFrame(bytes.data(), bytes.size(), out);
                return ws == WireStatus::Ok ? RecvStatus::Ok
                                            : RecvStatus::Corrupt;
            }
            if (now >= deadline)
                return RecvStatus::Timeout;
            // Copy the wake time before waiting: wait_until keeps a
            // *reference* to its time_point across the unlocked wait,
            // and std::min would hand it one inside the multiset node
            // — which a concurrent close() (it clears the queue) can
            // free mid-wait.
            const NetClock::time_point wake =
                std::min(head.deliverAt, deadline);
            recvPipe->cv.wait_until(lock, wake);
            continue;
        }
        if (recvPipe->closed)
            return RecvStatus::Closed;
        if (now >= deadline)
            return RecvStatus::Timeout;
        recvPipe->cv.wait_until(lock, deadline);
    }
}

void
LoopbackChannel::close()
{
    // Closing one side breaks the connection both ways, like a socket
    // close: the peer's next recv (after its buffer drains — which a
    // loopback close empties) reports Closed.
    if (sendPipe)
        sendPipe->close();
    if (recvPipe)
        recvPipe->close();
}

std::vector<FaultEvent>
LoopbackChannel::faultLog() const
{
    std::lock_guard<std::mutex> lock(sendPipe->mutex);
    return sendPipe->log;
}

LoopbackTransport::LoopbackTransport(LoopbackNetwork &network,
                                     const FaultSpec &faults,
                                     uint64_t seed)
    : net(network.state), defaultFaults(faults), seed(seed)
{
}

void
LoopbackTransport::setEndpointFaults(const std::string &endpoint,
                                     const FaultSpec &faults)
{
    std::lock_guard<std::mutex> lock(mutex);
    overrides[endpoint] = faults;
}

std::unique_ptr<Channel>
LoopbackTransport::connect(const std::string &endpoint,
                           NetClock::time_point /*deadline*/)
{
    // Loopback connects resolve instantly: either the endpoint is
    // registered or it is not (the deadline only matters for TCP).
    std::shared_ptr<detail::LoopbackEndpoint> ep;
    {
        std::lock_guard<std::mutex> nlock(net->mutex);
        auto it = net->endpoints.find(endpoint);
        if (it == net->endpoints.end())
            return nullptr;
        ep = it->second;
    }

    FaultSpec spec;
    uint64_t conn;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = overrides.find(endpoint);
        spec = it != overrides.end() ? it->second : defaultFaults;
        conn = connections++;
    }

    detail::LoopbackConnection c;
    c.clientToServer = std::make_shared<detail::LoopbackPipe>();
    c.serverToClient = std::make_shared<detail::LoopbackPipe>();
    c.clientToServer->faults = spec;
    c.serverToClient->faults = spec;
    c.clientToServer->rng = XorShiftRng(detail::mixSeed(seed, conn, 0));
    c.serverToClient->rng = XorShiftRng(detail::mixSeed(seed, conn, 1));
    c.clientToServer->peer = c.serverToClient;
    c.serverToClient->peer = c.clientToServer;

    auto channel = std::make_unique<LoopbackChannel>(c.clientToServer,
                                                     c.serverToClient);
    {
        std::lock_guard<std::mutex> lock(ep->mutex);
        if (ep->closed)
            return nullptr;
        ep->pending.push_back(std::move(c));
    }
    ep->cv.notify_all();
    return channel;
}

std::unique_ptr<Listener>
LoopbackTransport::listen(const std::string &endpoint)
{
    auto ep = std::make_shared<detail::LoopbackEndpoint>();
    {
        std::lock_guard<std::mutex> nlock(net->mutex);
        if (net->endpoints.count(endpoint))
            return nullptr; // name taken
        net->endpoints.emplace(endpoint, ep);
    }
    return std::make_unique<detail::LoopbackListener>(net, endpoint, ep);
}

} // namespace mnnfast::net
