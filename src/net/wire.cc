#include "net/wire.hh"

#include <cstring>

#include "util/logging.hh"

namespace mnnfast::net {

namespace {

// ---- little-endian scalar packing -------------------------------------

void
put16(std::vector<uint8_t> &b, uint16_t v)
{
    b.push_back(uint8_t(v & 0xff));
    b.push_back(uint8_t(v >> 8));
}

void
put32(std::vector<uint8_t> &b, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b.push_back(uint8_t((v >> (8 * i)) & 0xff));
}

void
put64(std::vector<uint8_t> &b, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b.push_back(uint8_t((v >> (8 * i)) & 0xff));
}

void
putF32(std::vector<uint8_t> &b, float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put32(b, bits);
}

void
putF64(std::vector<uint8_t> &b, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put64(b, bits);
}

uint16_t
get16(const uint8_t *p)
{
    return uint16_t(p[0]) | uint16_t(p[1]) << 8;
}

uint32_t
get32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

uint64_t
get64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

float
getF32(const uint8_t *p)
{
    const uint32_t bits = get32(p);
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

double
getF64(const uint8_t *p)
{
    const uint64_t bits = get64(p);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

bool
knownType(uint16_t t)
{
    switch (static_cast<FrameType>(t)) {
    case FrameType::ScatterRequest:
    case FrameType::PartialResponse:
    case FrameType::Shutdown:
        return true;
    }
    return false;
}

/** Bounds-checked sequential payload reader. */
class Reader
{
  public:
    Reader(const uint8_t *data, size_t n) : p(data), left(n) {}

    bool u32(uint32_t &v) { return scalar(4, [&] { v = get32(p); }); }
    bool u64(uint64_t &v) { return scalar(8, [&] { v = get64(p); }); }

    bool
    f32Array(float *out, size_t count)
    {
        if (left < 4 * count)
            return false;
        for (size_t i = 0; i < count; ++i)
            out[i] = getF32(p + 4 * i);
        p += 4 * count;
        left -= 4 * count;
        return true;
    }

    bool
    f64Array(double *out, size_t count)
    {
        if (left < 8 * count)
            return false;
        for (size_t i = 0; i < count; ++i)
            out[i] = getF64(p + 8 * i);
        p += 8 * count;
        left -= 8 * count;
        return true;
    }

    bool done() const { return left == 0; }

  private:
    template <typename Fn>
    bool
    scalar(size_t bytes, Fn &&read)
    {
        if (left < bytes)
            return false;
        read();
        p += bytes;
        left -= bytes;
        return true;
    }

    const uint8_t *p;
    size_t left;
};

} // namespace

const char *
wireStatusName(WireStatus s)
{
    switch (s) {
    case WireStatus::Ok: return "ok";
    case WireStatus::BadMagic: return "bad-magic";
    case WireStatus::BadVersion: return "bad-version";
    case WireStatus::BadType: return "bad-type";
    case WireStatus::BadLength: return "bad-length";
    case WireStatus::Truncated: return "truncated";
    case WireStatus::BadCrc: return "bad-crc";
    case WireStatus::Malformed: return "malformed";
    }
    return "unknown";
}

uint32_t
crc32(const uint8_t *data, size_t n)
{
    // Table-driven reflected CRC-32 (polynomial 0xEDB88320), the
    // IEEE 802.3 checksum. Built once, thread-safely, on first use.
    static const uint32_t *table = [] {
        static uint32_t t[256];
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    uint32_t crc = 0xFFFFFFFFu;
    for (size_t i = 0; i < n; ++i)
        crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

std::vector<uint8_t>
encodeFrame(const Frame &frame)
{
    mnn_assert(frame.payload.size() <= kMaxPayloadBytes,
               "frame payload exceeds the wire-format bound");
    std::vector<uint8_t> out;
    out.reserve(kHeaderBytes + frame.payload.size());
    put32(out, kWireMagic);
    put16(out, kWireVersion);
    put16(out, static_cast<uint16_t>(frame.type));
    put32(out, static_cast<uint32_t>(frame.payload.size()));
    put32(out, crc32(frame.payload.data(), frame.payload.size()));
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
    return out;
}

WireStatus
decodeHeader(const uint8_t *data, size_t n, FrameHeader &out)
{
    if (n < kHeaderBytes)
        return WireStatus::Truncated;
    if (get32(data) != kWireMagic)
        return WireStatus::BadMagic;
    if (get16(data + 4) != kWireVersion)
        return WireStatus::BadVersion;
    const uint16_t type = get16(data + 6);
    if (!knownType(type))
        return WireStatus::BadType;
    const uint32_t len = get32(data + 8);
    if (size_t{len} > kMaxPayloadBytes)
        return WireStatus::BadLength;
    out.type = static_cast<FrameType>(type);
    out.payloadLen = len;
    out.payloadCrc = get32(data + 12);
    return WireStatus::Ok;
}

WireStatus
decodePayload(const FrameHeader &header, std::vector<uint8_t> &&payload,
              Frame &out)
{
    if (payload.size() != header.payloadLen)
        return WireStatus::BadLength;
    if (crc32(payload.data(), payload.size()) != header.payloadCrc)
        return WireStatus::BadCrc;
    out.type = header.type;
    out.payload = std::move(payload);
    return WireStatus::Ok;
}

WireStatus
decodeFrame(const uint8_t *data, size_t n, Frame &out)
{
    FrameHeader header;
    const WireStatus hs = decodeHeader(data, n, header);
    if (hs != WireStatus::Ok)
        return hs;
    if (n < kHeaderBytes + size_t{header.payloadLen})
        return WireStatus::Truncated;
    if (n > kHeaderBytes + size_t{header.payloadLen})
        return WireStatus::BadLength;
    std::vector<uint8_t> payload(data + kHeaderBytes, data + n);
    return decodePayload(header, std::move(payload), out);
}

Frame
encodeScatterRequest(const ScatterRequest &req)
{
    mnn_assert(req.u.size() == size_t{req.nq} * req.ed,
               "scatter request question buffer size mismatch");
    Frame f;
    f.type = FrameType::ScatterRequest;
    f.payload.reserve(8 + 4 * 3 + 4 * req.u.size());
    put64(f.payload, req.requestId);
    put32(f.payload, req.shard);
    put32(f.payload, req.nq);
    put32(f.payload, req.ed);
    for (float x : req.u)
        putF32(f.payload, x);
    return f;
}

WireStatus
decodeScatterRequest(const Frame &frame, ScatterRequest &out)
{
    if (frame.type != FrameType::ScatterRequest)
        return WireStatus::BadType;
    Reader r(frame.payload.data(), frame.payload.size());
    ScatterRequest req;
    if (!r.u64(req.requestId) || !r.u32(req.shard) || !r.u32(req.nq)
        || !r.u32(req.ed))
        return WireStatus::Malformed;
    if (req.nq == 0 || req.ed == 0)
        return WireStatus::Malformed;
    const size_t count = size_t{req.nq} * req.ed;
    if (frame.payload.size() != 8 + 4 * 3 + 4 * count)
        return WireStatus::Malformed;
    req.u.resize(count);
    if (!r.f32Array(req.u.data(), count) || !r.done())
        return WireStatus::Malformed;
    out = std::move(req);
    return WireStatus::Ok;
}

Frame
encodePartialResponse(const PartialResponse &resp)
{
    const size_t nq = resp.nq;
    const size_t oCount = nq * resp.ed;
    mnn_assert(resp.partial.runMax.size() == nq
                   && resp.partial.expSum.size() == nq
                   && resp.partial.o.size() == oCount,
               "partial response buffers disagree with nq x ed");
    Frame f;
    f.type = FrameType::PartialResponse;
    f.payload.reserve(8 + 4 * 3 + 4 * nq + 8 * nq + 4 * oCount);
    put64(f.payload, resp.requestId);
    put32(f.payload, resp.shard);
    put32(f.payload, resp.nq);
    put32(f.payload, resp.ed);
    for (float x : resp.partial.runMax)
        putF32(f.payload, x);
    for (double x : resp.partial.expSum)
        putF64(f.payload, x);
    for (float x : resp.partial.o)
        putF32(f.payload, x);
    return f;
}

WireStatus
decodePartialResponse(const Frame &frame, PartialResponse &out)
{
    if (frame.type != FrameType::PartialResponse)
        return WireStatus::BadType;
    Reader r(frame.payload.data(), frame.payload.size());
    PartialResponse resp;
    if (!r.u64(resp.requestId) || !r.u32(resp.shard) || !r.u32(resp.nq)
        || !r.u32(resp.ed))
        return WireStatus::Malformed;
    if (resp.nq == 0 || resp.ed == 0)
        return WireStatus::Malformed;
    const size_t nq = resp.nq;
    const size_t oCount = nq * resp.ed;
    if (frame.payload.size() != 8 + 4 * 3 + 4 * nq + 8 * nq + 4 * oCount)
        return WireStatus::Malformed;
    resp.partial.nq = nq;
    resp.partial.runMax.resize(nq);
    resp.partial.expSum.resize(nq);
    resp.partial.o.resize(oCount);
    if (!r.f32Array(resp.partial.runMax.data(), nq)
        || !r.f64Array(resp.partial.expSum.data(), nq)
        || !r.f32Array(resp.partial.o.data(), oCount) || !r.done())
        return WireStatus::Malformed;
    out = std::move(resp);
    return WireStatus::Ok;
}

} // namespace mnnfast::net
