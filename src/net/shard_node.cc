#include "net/shard_node.hh"

#include <utility>

#include "util/logging.hh"

namespace mnnfast::net {

namespace {

/** Node engines always run single-group: the partial must be the
 *  shard's exact accumulator state (see sharded_engine.hh, leg 2). */
core::EngineConfig
nodeConfig(core::EngineConfig cfg)
{
    cfg.scheduleGroups = 1;
    return cfg;
}

/** Accept/recv slice so stop requests are noticed promptly. */
constexpr double kPollSliceSeconds = 0.05;

} // namespace

ShardNode::ShardNode(const core::KnowledgeBase &kb,
                     const core::EngineConfig &cfg, uint32_t shard_)
    : engine(kb, nodeConfig(cfg)), shard(shard_), dim(kb.dim())
{
}

ShardNode::~ShardNode() = default;

void
ShardNode::serve(Listener &listener)
{
    std::vector<std::thread> handlers;
    while (!stopFlag.load()) {
        std::unique_ptr<Channel> channel =
            listener.accept(deadlineIn(kPollSliceSeconds));
        if (!channel)
            continue;
        handlers.emplace_back(
            [this, ch = std::move(channel)]() mutable {
                serveChannel(std::move(ch));
            });
    }
    listener.close();
    for (std::thread &t : handlers)
        t.join();
}

void
ShardNode::serveChannel(std::unique_ptr<Channel> channel)
{
    Frame frame;
    while (!stopFlag.load()) {
        const RecvStatus st =
            channel->recv(frame, deadlineIn(kPollSliceSeconds));
        if (st == RecvStatus::Timeout)
            continue;
        if (st != RecvStatus::Ok)
            return; // disconnected or corrupt stream: drop connection
        if (frame.type == FrameType::Shutdown) {
            stopFlag.store(true);
            return;
        }

        ScatterRequest req;
        if (decodeScatterRequest(frame, req) != WireStatus::Ok)
            return; // framed but malformed: refuse the connection
        if (req.shard != shard || req.ed != dim)
            return; // miswired endpoint: fail loudly (see header)

        PartialResponse resp;
        resp.requestId = req.requestId;
        resp.shard = shard;
        resp.nq = req.nq;
        resp.ed = req.ed;
        {
            std::lock_guard<std::mutex> lock(engineMutex);
            engine.inferPartial(req.u.data(), req.nq, resp.partial);
        }
        served.fetch_add(1);
        if (!channel->send(encodePartialResponse(resp)))
            return;
    }
}

} // namespace mnnfast::net
