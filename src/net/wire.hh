/**
 * @file
 * The cluster wire format: versioned, endianness-pinned framed
 * messages carrying scatter requests and StreamPartial responses
 * between a ClusterFrontEnd and its ShardNodes (DESIGN.md §12).
 *
 * A frame is a 16-byte header followed by the payload:
 *
 *   offset  size  field
 *        0     4  magic      0x4D4E4E46 ("FNNM" on the wire, LE)
 *        4     2  version    kWireVersion
 *        6     2  type       FrameType
 *        8     4  payload length (bytes)
 *       12     4  CRC-32 (IEEE, reflected) of the payload bytes
 *
 * Every multi-byte field — header fields and payload scalars alike —
 * is serialized explicitly little-endian, byte by byte, so two nodes
 * of different endianness (or the same node across rebuilds) always
 * agree on the bytes. Floating-point values travel as their IEEE-754
 * bit patterns (f32 as u32, f64 as u64), which makes encode/decode
 * round trips *bit-exact*, including negative zero, denormals, NaN
 * payloads and the -inf running maxima the plain (onlineNormalize
 * off) engines produce. That exactness is one leg of the cluster
 * bit-identity guarantee: a partial that crosses the wire is the same
 * partial, so the gather-side merge reproduces the in-process
 * ShardedEngine result bit for bit (see cluster_frontend.hh).
 *
 * Decoding is defensive, mirroring the kernel tuner's cache-import
 * hardening: bad magic, unknown version, unknown type, a length that
 * disagrees with the buffer, truncation anywhere, or a CRC mismatch
 * all produce a typed WireStatus (never a crash, never a partially
 * applied message), and message decoders re-validate their interior
 * counts against the payload size before touching any array.
 */

#ifndef MNNFAST_NET_WIRE_HH
#define MNNFAST_NET_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/column_engine.hh"

namespace mnnfast::net {

/** Wire protocol version; bump on any layout change. */
inline constexpr uint16_t kWireVersion = 1;

/** Frame magic ("MNNF" as a little-endian u32). */
inline constexpr uint32_t kWireMagic = 0x4D4E4E46u;

/** Serialized header size in bytes. */
inline constexpr size_t kHeaderBytes = 16;

/** Refuse payloads beyond this (a corrupt length field must not
 *  trigger a multi-gigabyte allocation). */
inline constexpr size_t kMaxPayloadBytes = size_t{1} << 30;

/** What a frame carries. */
enum class FrameType : uint16_t {
    /** Front end -> node: one batch of questions to stream. */
    ScatterRequest = 1,
    /** Node -> front end: the shard's StreamPartial for one request. */
    PartialResponse = 2,
    /** Front end -> node: exit the serve loop (clean teardown). */
    Shutdown = 3,
};

/** Decode outcome; everything but Ok leaves outputs untouched. */
enum class WireStatus {
    Ok,
    BadMagic,       ///< first four bytes are not kWireMagic
    BadVersion,     ///< version field != kWireVersion
    BadType,        ///< type field is no known FrameType
    BadLength,      ///< length field exceeds bounds / disagrees
    Truncated,      ///< buffer ends before header or payload does
    BadCrc,         ///< payload checksum mismatch
    Malformed,      ///< payload interior inconsistent with its type
};

/** Human-readable WireStatus name. */
const char *wireStatusName(WireStatus s);

/** A typed message: header-on-the-wire type plus raw payload bytes. */
struct Frame
{
    FrameType type = FrameType::Shutdown;
    std::vector<uint8_t> payload;
};

/** CRC-32 (IEEE 802.3, reflected) of `n` bytes. */
uint32_t crc32(const uint8_t *data, size_t n);

/** Serialize `frame` (header + payload) into a fresh byte vector. */
std::vector<uint8_t> encodeFrame(const Frame &frame);

/**
 * Parsed frame header. decodeHeader validates magic/version/type and
 * bounds the payload length; the payload CRC is checked later, by
 * decodePayload, once the payload bytes are available.
 */
struct FrameHeader
{
    FrameType type = FrameType::Shutdown;
    uint32_t payloadLen = 0;
    uint32_t payloadCrc = 0;
};

/** Validate the 16 header bytes at `data` (size `n` >= header). */
WireStatus decodeHeader(const uint8_t *data, size_t n,
                        FrameHeader &out);

/** Check `payload` against the header's length+CRC and move it into
 *  `out` (type from the header). */
WireStatus decodePayload(const FrameHeader &header,
                         std::vector<uint8_t> &&payload, Frame &out);

/** One-shot decode of a fully buffered frame (header + payload). */
WireStatus decodeFrame(const uint8_t *data, size_t n, Frame &out);

/**
 * ScatterRequest payload: one batch of question vectors for one
 * shard. `shard` is carried for cross-checking — a node answers only
 * its own shard index, so a miswired endpoint fails loudly instead of
 * merging the wrong partition's partial.
 */
struct ScatterRequest
{
    uint64_t requestId = 0; ///< echoed in the response (hedge dedup)
    uint32_t shard = 0;     ///< shard index this node must own
    uint32_t nq = 0;        ///< questions in the batch
    uint32_t ed = 0;        ///< embedding dimension
    std::vector<float> u;   ///< nq x ed question vectors
};

/** PartialResponse payload: the shard's merged online-softmax state
 *  (see core::StreamPartial) for one request, bit-exact. */
struct PartialResponse
{
    uint64_t requestId = 0;
    uint32_t shard = 0;
    uint32_t nq = 0;
    uint32_t ed = 0;
    core::StreamPartial partial;
};

/** Encode `req` as a ScatterRequest frame. */
Frame encodeScatterRequest(const ScatterRequest &req);

/** Decode a ScatterRequest frame's payload (type must match). */
WireStatus decodeScatterRequest(const Frame &frame, ScatterRequest &out);

/** Encode `resp` as a PartialResponse frame; resp.partial must hold
 *  nq runMax/expSum entries and nq x ed accumulator floats. */
Frame encodePartialResponse(const PartialResponse &resp);

/** Decode a PartialResponse frame's payload (type must match). */
WireStatus decodePartialResponse(const Frame &frame,
                                 PartialResponse &out);

} // namespace mnnfast::net

#endif // MNNFAST_NET_WIRE_HH
