/**
 * @file
 * Cluster front end: scatters a question batch to one ShardNode per
 * shard over a Transport, gathers the StreamPartials, and merges them
 * with core::mergeStreamPartials — the same canonical-shard-order
 * online-softmax merge ShardedEngine runs in process (DESIGN.md §12).
 *
 * Bit-identity. Over a lossless transport with every shard answering,
 * inferBatch is bit-identical to ShardedEngine::inferBatch over the
 * same partition and config: the nodes' single-group engines produce
 * the exact shard accumulators, the wire carries their IEEE-754 bit
 * patterns unchanged, and the merge is literally the same function in
 * the same order. Tests and the cluster bench enforce this across
 * shard counts and KB precisions.
 *
 * Failure handling (production-honest, per shard):
 *
 *  - Replica sets. Each shard lists one or more replica endpoints.
 *    A fetch holds a connection to its current replica; on a
 *    disconnect, a corrupt stream, or an exhausted attempt window it
 *    *fails over* — closes the channel, advances to the next replica
 *    (round robin), reconnects, and resends the same request.
 *    Requests are idempotent pure compute, so resends need no
 *    coordination; responses are deduplicated by requestId, and a
 *    stale response (an earlier batch's id) is discarded, never
 *    merged.
 *
 *  - Hedged requests. When a shard's response has not arrived by the
 *    hedge delay — a configured quantile of that shard's observed RPC
 *    latencies (a floor until enough samples exist) — the fetch sends
 *    a backup request with the same id to the *next* replica and then
 *    races the two connections, alternating short recv slices. The
 *    first valid response wins; a hedge win promotes the backup
 *    replica to current. At most two requests are ever outstanding
 *    per shard.
 *
 *  - Partial answers. A shard that misses the batch deadline on every
 *    path is recorded as missing. Policy is explicit: with
 *    allowPartial the gather merges the shards that did answer (still
 *    in canonical order) and flags the batch partial, with the
 *    contributing set in BatchResult::shardMask; without it the batch
 *    fails closed (complete = false, output untouched). Either way
 *    nothing silently pretends the full KB was consulted.
 *
 * Observability: every fetch counts rpcs, hedges fired, hedge wins,
 * failovers, and deadline misses into per-shard RpcShardCounters
 * (serve::LatencyRecorder), and the front end records per-batch
 * latency; snapshot() merges it all into one LatencySnapshot whose
 * JSON feeds BENCH_cluster.json. snapshot() must not race inferBatch
 * — call it between batches (the serving layer above owns pacing).
 */

#ifndef MNNFAST_NET_CLUSTER_FRONTEND_HH
#define MNNFAST_NET_CLUSTER_FRONTEND_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_engine.hh"
#include "net/transport.hh"
#include "serve/latency_recorder.hh"
#include "stats/histogram.hh"

namespace mnnfast::net {

/** Front-end tunables; replicas[s] lists shard s's endpoints. */
struct ClusterConfig
{
    /** Replica endpoints per shard, in failover order; every shard
     *  needs at least one. At most 32 shards (BatchResult::shardMask
     *  is one bit per shard). */
    std::vector<std::vector<std::string>> replicas;

    /** Batch deadline: a shard silent past this is a deadline miss. */
    double requestTimeoutSeconds = 1.0;
    /** Per-attempt connect budget (also capped by the deadline). */
    double connectTimeoutSeconds = 0.25;

    /** Enable hedged backup requests (needs >= 2 replicas). */
    bool hedging = true;
    /** Hedge when the RPC is slower than this quantile of the shard's
     *  observed latencies. */
    double hedgeQuantile = 0.95;
    /** Hedge delay floor, and the delay until enough samples exist. */
    double hedgeMinSeconds = 1e-3;

    /** Merge a strict subset of shards after the deadline instead of
     *  failing the batch. See the partial-answer policy above. */
    bool allowPartial = false;

    /** Must match the node engines' EngineConfig::onlineNormalize —
     *  it selects the merge algebra. */
    bool onlineNormalize = false;
};

/** Outcome of one scattered batch. */
struct BatchResult
{
    /** Every shard contributed (bit-identity holds iff true). */
    bool complete = false;
    /** Shards merged into the answer; 0 means the batch failed and
     *  the output buffer was not written. */
    uint32_t shardsAnswered = 0;
    /** Bit s set = shard s contributed. */
    uint32_t shardMask = 0;
};

namespace detail {
struct ShardFetcher;
}

/** Scatter/gather client over N shard nodes. See file header. */
class ClusterFrontEnd
{
  public:
    /**
     * Starts one fetch thread per shard. `transport` must outlive
     * the front end. Fatal on an empty or oversized replica table.
     */
    ClusterFrontEnd(Transport &transport, const ClusterConfig &cfg);
    ~ClusterFrontEnd();

    ClusterFrontEnd(const ClusterFrontEnd &) = delete;
    ClusterFrontEnd &operator=(const ClusterFrontEnd &) = delete;

    /**
     * Scatter `u` (nq x ed questions) to every shard, gather, merge
     * into `o` (nq x ed). Blocks until every shard answered or the
     * batch deadline passed. Not thread-safe (one batch at a time).
     */
    BatchResult inferBatch(const float *u, size_t nq, size_t ed,
                           float *o);

    /** Shard count (== cfg.replicas.size()). */
    size_t shardCount() const;

    /** Merged latency + per-shard RPC counter snapshot. Must not
     *  race inferBatch (call between batches). */
    serve::LatencySnapshot snapshot() const;

    /**
     * Best-effort Shutdown frame to every replica of every shard
     * (fresh connections, short deadline) — how a driver stops the
     * node processes it spawned.
     */
    void shutdownNodes(double timeoutSeconds = 1.0);

  private:
    Transport &transport;
    ClusterConfig cfg;

    // Batch hand-off: the front end publishes a job and bumps
    // `generation`; each fetch thread runs it and reports done.
    struct BatchJob
    {
        const float *u = nullptr;
        size_t nq = 0;
        size_t ed = 0;
        uint64_t requestId = 0;
        NetClock::time_point deadline;
    };
    mutable std::mutex mutex;
    std::condition_variable workCv;
    std::condition_variable doneCv;
    BatchJob job;
    uint64_t generation = 0;
    size_t pendingShards = 0;
    bool stopping = false;

    uint64_t nextRequestId = 1;

    std::vector<std::unique_ptr<detail::ShardFetcher>> fetchers;
    std::vector<std::thread> threads;

    serve::LatencyRecorder recorder; ///< per-batch latency + partials

    void fetchLoop(size_t s);
};

} // namespace mnnfast::net

#endif // MNNFAST_NET_CLUSTER_FRONTEND_HH
