/**
 * @file
 * Cluster front end: scatters question batches to one ShardNode per
 * shard over a Transport, gathers the StreamPartials, and merges them
 * with core::mergeStreamPartials — the same canonical-shard-order
 * online-softmax merge ShardedEngine runs in process (DESIGN.md §12).
 *
 * Bit-identity. Over a lossless transport with every shard answering,
 * the gather is bit-identical to ShardedEngine::inferBatch over the
 * same partition and config: the nodes' single-group engines produce
 * the exact shard accumulators, the wire carries their IEEE-754 bit
 * patterns unchanged, and the merge is literally the same function in
 * the same order. Tests and the cluster bench enforce this across
 * shard counts and KB precisions — pipelined and serial alike.
 *
 * Pipelining. The front end admits a window of up to
 * ClusterConfig::pipelineDepth in-flight batches:
 *
 *   submitBatch() appends an in-flight slot to the window (blocking
 *   while the window is full) and enqueues one job per shard on that
 *   shard's fetch thread; waitBatch() retires the window head once
 *   all of its shards settled. Each fetch thread *sends ahead*: the
 *   active job and every job queued behind it go on the wire
 *   immediately (once per connection, oldest first), so the node
 *   computes batch k+1 while the gather of batch k is still in
 *   flight — the network round trip and the remote compute both come
 *   off the pipeline's critical path. Responses are matched by
 *   requestId: an answer for a still-queued job is stashed until that
 *   job becomes active (its latency sampled at arrival), stale ids
 *   are discarded, never merged, and unanswered send-aheads die with
 *   their connection and are simply re-sent on the next one — so
 *   batches cannot cross-contaminate and failover semantics are
 *   unchanged. Completions are delivered strictly in submission order
 *   regardless of the order shards answer in. A shard job's deadline
 *   is stamped when its fetch *starts*, not at submit, so one slow
 *   batch cannot pre-expire the batches queued behind it.
 *
 *   inferBatch() is submitBatch() + waitBatch() back to back — the
 *   serial special case, unchanged behavior at pipelineDepth 1.
 *
 * Failure handling (production-honest, per shard):
 *
 *  - Replica sets. Each shard lists one or more replica endpoints.
 *    A fetch holds a connection to its current replica; on a
 *    disconnect, a corrupt stream, or an exhausted attempt window it
 *    *fails over* — closes the channel, advances to the next replica
 *    (round robin), and reconnects. The request is sent exactly once
 *    per connection: a resend happens only on a connection that has
 *    not carried this request yet, and when the primary dies while a
 *    hedge is outstanding the hedge is *promoted* to primary instead
 *    of opening a third connection (the request is still outstanding
 *    on it — a resend would only duplicate shard work). Requests are
 *    idempotent pure compute, so resends need no coordination;
 *    responses are deduplicated by requestId.
 *
 *  - Hedged requests. When a shard's response has not arrived by the
 *    hedge delay — a configured quantile of that shard's observed RPC
 *    latencies (a floor until enough samples exist) — the fetch sends
 *    a backup request with the same id to the *next* replica and then
 *    races the two connections, alternating short recv slices. The
 *    first valid response wins; a hedge win promotes the backup
 *    replica to current. At most two requests are ever outstanding
 *    per shard. Each attempt is timed from its *own* send, so a
 *    failover's reconnect cost never inflates the latency quantile
 *    that schedules future hedges.
 *
 *  - Partial answers. A shard that misses the batch deadline on every
 *    path is recorded as missing. Policy is explicit: with
 *    allowPartial the gather merges the shards that did answer (still
 *    in canonical order) and flags the batch partial, with the
 *    contributing set in BatchResult::shardMask; without it the batch
 *    fails closed (complete = false, output untouched) and is counted
 *    in failedBatches — its timing stays out of the success latency
 *    histograms. Either way nothing silently pretends the full KB was
 *    consulted.
 *
 * Observability: every fetch counts rpcs, hedges fired, hedge wins,
 * failovers, and deadline misses into per-shard RpcShardCounters, and
 * the front end records per-batch submit-to-retire latency in
 * histograms whose range is derived from the request timeout and the
 * window depth (a 1 s default would saturate exactly when the tail
 * matters). snapshot() returns one LatencySnapshot and is safe to
 * call while batches are in flight; countersInto() threads the RPC
 * counters into a serving layer's own recorder (serve::BatchBackend).
 */

#ifndef MNNFAST_NET_CLUSTER_FRONTEND_HH
#define MNNFAST_NET_CLUSTER_FRONTEND_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_engine.hh"
#include "net/transport.hh"
#include "serve/batch_backend.hh"
#include "serve/latency_recorder.hh"
#include "stats/histogram.hh"

namespace mnnfast::net {

/** Front-end tunables; replicas[s] lists shard s's endpoints. */
struct ClusterConfig
{
    /** Replica endpoints per shard, in failover order; every shard
     *  needs at least one. At most 32 shards (BatchResult::shardMask
     *  is one bit per shard). */
    std::vector<std::vector<std::string>> replicas;

    /** Per-shard fetch deadline, stamped when the fetch starts: a
     *  shard silent past this is a deadline miss. */
    double requestTimeoutSeconds = 1.0;
    /** Per-attempt connect budget (also capped by the deadline). */
    double connectTimeoutSeconds = 0.25;

    /** Enable hedged backup requests (needs >= 2 replicas). */
    bool hedging = true;
    /** Hedge when the RPC is slower than this quantile of the shard's
     *  observed latencies. */
    double hedgeQuantile = 0.95;
    /** Hedge delay floor, and the delay until enough samples exist. */
    double hedgeMinSeconds = 1e-3;

    /** Merge a strict subset of shards after the deadline instead of
     *  failing the batch. See the partial-answer policy above. */
    bool allowPartial = false;

    /** Must match the node engines' EngineConfig::onlineNormalize —
     *  it selects the merge algebra. */
    bool onlineNormalize = false;

    /** In-flight batch window W: submitBatch admits up to this many
     *  unretired batches, overlapping scatter of batch k+1 with
     *  gather of batch k. 1 (or 0, clamped) = serial. */
    size_t pipelineDepth = 1;
};

/** Outcome of one scattered batch (shared with the serving layer). */
using BatchResult = serve::BatchResult;

namespace detail {
struct ShardFetcher;
}

/** Pipelined scatter/gather client over N shard nodes. See file
 *  header. Implements serve::BatchBackend so serve::LiveServer can
 *  dispatch through it. */
class ClusterFrontEnd : public serve::BatchBackend
{
  public:
    /**
     * Starts one fetch thread per shard. `transport` must outlive
     * the front end. Fatal on an empty or oversized replica table.
     */
    ClusterFrontEnd(Transport &transport, const ClusterConfig &cfg);

    /** Every submitted batch must have been waited (the window must
     *  be empty) before destruction. */
    ~ClusterFrontEnd() override;

    ClusterFrontEnd(const ClusterFrontEnd &) = delete;
    ClusterFrontEnd &operator=(const ClusterFrontEnd &) = delete;

    /**
     * Admit one batch into the window: scatter `u` (nq x ed
     * questions) to every shard, answering into `o` (nq x ed) when
     * retired. Blocks while pipelineDepth batches are in flight.
     * Both buffers must stay valid until waitBatch returns for the
     * ticket. One submitter thread at a time.
     */
    uint64_t submitBatch(const float *u, size_t nq, size_t ed,
                         float *o) override;

    /**
     * Block until `ticket`'s batch settled on every shard, merge, and
     * retire it. Tickets must be waited in submission order (the
     * window head); one waiter thread at a time — which may be a
     * different thread than the submitter.
     */
    BatchResult waitBatch(uint64_t ticket) override;

    /** submitBatch + waitBatch back to back (the serial path). */
    BatchResult inferBatch(const float *u, size_t nq, size_t ed,
                           float *o);

    /** Shard count (== cfg.replicas.size()). */
    size_t shardCount() const;

    /** The configured in-flight window (clamped to >= 1). */
    size_t pipelineDepth() const override;

    /** Merged latency + per-shard RPC counter snapshot; safe to call
     *  while batches are in flight. */
    serve::LatencySnapshot snapshot() const;

    /** Counters-only merge for serving-layer snapshot composition
     *  (see serve::BatchBackend). */
    void countersInto(serve::LatencyRecorder &acc) const override;

    /**
     * Shard s's observed RPC latency quantile — the statistic that
     * schedules hedges. Test/diagnostic accessor: the underlying
     * histogram is single-writer (the shard's fetch thread), so call
     * only between batches.
     */
    double shardRpcLatencyQuantile(size_t s, double q) const;

    /**
     * Best-effort Shutdown frame to every replica of every shard
     * (fresh connections, short deadline) — how a driver stops the
     * node processes it spawned. Replicas are probed concurrently,
     * so a dark replica set costs ~one connect budget, not one per
     * replica.
     */
    void shutdownNodes(double timeoutSeconds = 1.0);

  private:
    Transport &transport;
    ClusterConfig cfg;
    double histogramMaxSeconds; ///< derived from timeout x window

    /**
     * One in-flight batch: the window slot every shard writes its
     * partial into. parts[s] is written only by shard s's fetch
     * thread; answeredMask/remainingShards are guarded by `mutex`,
     * and waitBatch reads parts only after remainingShards hit zero
     * (the mutex hand-off orders those writes).
     */
    struct InFlight
    {
        uint64_t requestId = 0;
        const float *u = nullptr;
        size_t nq = 0;
        size_t ed = 0;
        float *o = nullptr;
        std::vector<core::StreamPartial> parts;
        uint32_t answeredMask = 0;
        size_t remainingShards = 0;
        NetClock::time_point submitted;
    };

    mutable std::mutex mutex; ///< window, job queues, recorder, stop
    std::condition_variable workCv;   ///< fetch threads: jobs / stop
    std::condition_variable doneCv;   ///< waitBatch: shard completions
    std::condition_variable windowCv; ///< submitBatch: slot freed
    std::deque<std::unique_ptr<InFlight>> window;
    bool stopping = false;

    uint64_t nextRequestId = 1;

    std::vector<std::unique_ptr<detail::ShardFetcher>> fetchers;
    std::vector<std::thread> threads;

    /** Batch latency + partials + failures + all per-shard RPC
     *  counters (fetch threads publish after each job); guarded by
     *  `mutex`. */
    serve::LatencyRecorder recorder;

    void fetchLoop(size_t s);
};

} // namespace mnnfast::net

#endif // MNNFAST_NET_CLUSTER_FRONTEND_HH
