/**
 * @file
 * One cluster node: owns a single shard's ColumnEngine and serves
 * ScatterRequest frames over a transport Listener (DESIGN.md §12).
 *
 * The node is the server half of the PR-5 scatter/gather pipeline
 * taken across a process boundary. Its engine runs with
 * scheduleGroups = 1 — exactly like ShardedEngine's per-shard engines
 * — so the StreamPartial it returns is the shard's single-group
 * accumulator bit-for-bit, and a lossless ClusterFrontEnd gather
 * reproduces the in-process ShardedEngine result exactly.
 *
 * Serving model: serve() accepts connections until stopped and hands
 * each to its own handler thread, so a front end that fails over or
 * hedges onto a fresh connection is never blocked behind a stale one.
 * Requests are idempotent pure compute, so a node re-executes
 * duplicates (hedges, post-failover resends) without coordination —
 * deduplication is the front end's job, keyed on requestId.
 *
 * A request whose shard index or embedding dimension does not match
 * this node closes the connection instead of answering: a miswired
 * endpoint must fail loudly, never merge the wrong partition's
 * partial. A Shutdown frame stops the whole node (serve() returns);
 * requestStop() does the same from another thread.
 */

#ifndef MNNFAST_NET_SHARD_NODE_HH
#define MNNFAST_NET_SHARD_NODE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/column_engine.hh"
#include "net/transport.hh"

namespace mnnfast::net {

/** Serve loop for one shard's engine. See file header. */
class ShardNode
{
  public:
    /**
     * @param kb    This node's shard of the knowledge base (e.g.
     *              ShardedKnowledgeBase::shard(s)); must outlive the
     *              node.
     * @param cfg   Engine tunables. scheduleGroups is forced to 1 for
     *              the exact-partial property; threads and the rest
     *              pass through.
     * @param shard The shard index this node owns; requests carrying
     *              any other index are refused.
     */
    ShardNode(const core::KnowledgeBase &kb,
              const core::EngineConfig &cfg, uint32_t shard);
    ~ShardNode();

    ShardNode(const ShardNode &) = delete;
    ShardNode &operator=(const ShardNode &) = delete;

    /**
     * Accept and serve connections on `listener` until a Shutdown
     * frame arrives or requestStop() is called. Blocking; joins all
     * connection handlers before returning.
     */
    void serve(Listener &listener);

    /** Ask a running serve() to return (thread-safe, idempotent). */
    void requestStop() { stopFlag.store(true); }

    /** ScatterRequests answered so far (monotone; thread-safe). */
    uint64_t requestsServed() const { return served.load(); }

  private:
    void serveChannel(std::unique_ptr<Channel> channel);

    core::ColumnEngine engine;
    const uint32_t shard;
    const size_t dim;

    std::atomic<bool> stopFlag{false};
    std::atomic<uint64_t> served{0};
    /** The engine's scratch arena has one owner; connections share. */
    std::mutex engineMutex;
};

} // namespace mnnfast::net

#endif // MNNFAST_NET_SHARD_NODE_HH
