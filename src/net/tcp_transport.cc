#include "net/tcp_transport.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.hh"

namespace mnnfast::net {

namespace {

/** Remaining milliseconds to `deadline`, clamped to [0, 100] so fd
 *  closes from other threads are noticed within a slice. */
int
pollTimeoutMs(NetClock::time_point deadline)
{
    const auto now = NetClock::now();
    if (now >= deadline)
        return 0;
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - now)
                        .count();
    return static_cast<int>(std::min<long long>(ms + 1, 100));
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/** Parse "a.b.c.d:port"; false on anything else. */
bool
parseEndpoint(const std::string &endpoint, sockaddr_in &addr)
{
    const size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0)
        return false;
    const std::string host = endpoint.substr(0, colon);
    const char *portStr = endpoint.c_str() + colon + 1;
    char *end = nullptr;
    const unsigned long port = std::strtoul(portStr, &end, 10);
    if (end == portStr || *end != '\0' || port > 65535)
        return false;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    return ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

} // namespace

// ---- TcpChannel -------------------------------------------------------

TcpChannel::TcpChannel(int fd_) : fd(fd_)
{
    setNoDelay(fd_);
}

TcpChannel::~TcpChannel()
{
    close();
}

void
TcpChannel::close()
{
    const int f = fd.exchange(-1);
    if (f >= 0) {
        ::shutdown(f, SHUT_RDWR);
        ::close(f);
    }
}

bool
TcpChannel::send(const Frame &frame)
{
    const int f = fd.load();
    if (f < 0)
        return false;
    const std::vector<uint8_t> bytes = encodeFrame(frame);
    size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(f, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd{f, POLLOUT, 0};
            ::poll(&pfd, 1, 100);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false; // EPIPE / ECONNRESET / local close
    }
    return true;
}

RecvStatus
TcpChannel::fill(NetClock::time_point deadline)
{
    const int f = fd.load();
    if (f < 0)
        return RecvStatus::Closed;

    uint8_t *dst;
    size_t want;
    if (!headerDone) {
        dst = headerBuf + headerFill;
        want = sizeof headerBuf - headerFill;
    } else {
        dst = payloadBuf.data() + payloadFill;
        want = payloadBuf.size() - payloadFill;
    }

    for (;;) {
        const ssize_t n = ::recv(f, dst, want, 0);
        if (n > 0) {
            if (!headerDone)
                headerFill += static_cast<size_t>(n);
            else
                payloadFill += static_cast<size_t>(n);
            return RecvStatus::Ok;
        }
        if (n == 0)
            return RecvStatus::Closed;
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            return RecvStatus::Closed;
        if (NetClock::now() >= deadline)
            return RecvStatus::Timeout;
        pollfd pfd{f, POLLIN, 0};
        ::poll(&pfd, 1, pollTimeoutMs(deadline));
        if (NetClock::now() >= deadline && !(pfd.revents & POLLIN))
            return RecvStatus::Timeout;
    }
}

RecvStatus
TcpChannel::recv(Frame &out, NetClock::time_point deadline)
{
    for (;;) {
        if (!headerDone && headerFill == sizeof headerBuf) {
            const WireStatus ws =
                decodeHeader(headerBuf, sizeof headerBuf, header);
            if (ws != WireStatus::Ok)
                return RecvStatus::Corrupt;
            payloadBuf.assign(header.payloadLen, 0);
            payloadFill = 0;
            headerDone = true;
        }
        if (headerDone && payloadFill == payloadBuf.size()) {
            // Frame complete: reset reassembly state before the CRC
            // verdict so a corrupt frame cannot be re-delivered.
            headerDone = false;
            headerFill = 0;
            const WireStatus ws = decodePayload(
                header, std::move(payloadBuf), out);
            payloadBuf.clear();
            payloadFill = 0;
            return ws == WireStatus::Ok ? RecvStatus::Ok
                                        : RecvStatus::Corrupt;
        }
        const RecvStatus st = fill(deadline);
        if (st != RecvStatus::Ok)
            return st;
    }
}

// ---- TcpListener ------------------------------------------------------

TcpListener::TcpListener(int fd_, uint16_t port_) : fd(fd_), port(port_)
{
}

TcpListener::~TcpListener()
{
    close();
}

void
TcpListener::close()
{
    const int f = fd.exchange(-1);
    if (f >= 0)
        ::close(f);
}

std::unique_ptr<Channel>
TcpListener::accept(NetClock::time_point deadline)
{
    for (;;) {
        const int f = fd.load();
        if (f < 0)
            return nullptr;
        const int conn = ::accept(f, nullptr, nullptr);
        if (conn >= 0) {
            if (!setNonBlocking(conn)) {
                ::close(conn);
                return nullptr;
            }
            return std::make_unique<TcpChannel>(conn);
        }
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            return nullptr;
        if (NetClock::now() >= deadline)
            return nullptr;
        pollfd pfd{f, POLLIN, 0};
        ::poll(&pfd, 1, pollTimeoutMs(deadline));
    }
}

// ---- TcpTransport -----------------------------------------------------

std::unique_ptr<Channel>
TcpTransport::connect(const std::string &endpoint,
                      NetClock::time_point deadline)
{
    sockaddr_in addr;
    if (!parseEndpoint(endpoint, addr))
        return nullptr;
    const int f = ::socket(AF_INET, SOCK_STREAM, 0);
    if (f < 0)
        return nullptr;
    if (!setNonBlocking(f)) {
        ::close(f);
        return nullptr;
    }
    if (::connect(f, reinterpret_cast<sockaddr *>(&addr), sizeof addr)
        != 0) {
        if (errno != EINPROGRESS) {
            ::close(f);
            return nullptr;
        }
        // Wait for the non-blocking connect to resolve.
        for (;;) {
            pollfd pfd{f, POLLOUT, 0};
            const int pr = ::poll(&pfd, 1, pollTimeoutMs(deadline));
            if (pr > 0)
                break;
            if (NetClock::now() >= deadline) {
                ::close(f);
                return nullptr;
            }
        }
        int err = 0;
        socklen_t len = sizeof err;
        if (::getsockopt(f, SOL_SOCKET, SO_ERROR, &err, &len) != 0
            || err != 0) {
            ::close(f);
            return nullptr;
        }
    }
    return std::make_unique<TcpChannel>(f);
}

std::unique_ptr<Listener>
TcpTransport::listen(const std::string &endpoint)
{
    sockaddr_in addr;
    if (!parseEndpoint(endpoint, addr))
        return nullptr;
    const int f = ::socket(AF_INET, SOCK_STREAM, 0);
    if (f < 0)
        return nullptr;
    int one = 1;
    ::setsockopt(f, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(f, reinterpret_cast<sockaddr *>(&addr), sizeof addr) != 0
        || ::listen(f, 64) != 0 || !setNonBlocking(f)) {
        ::close(f);
        return nullptr;
    }
    sockaddr_in bound;
    socklen_t len = sizeof bound;
    if (::getsockname(f, reinterpret_cast<sockaddr *>(&bound), &len)
        != 0) {
        ::close(f);
        return nullptr;
    }
    return std::make_unique<TcpListener>(f, ntohs(bound.sin_port));
}

} // namespace mnnfast::net
