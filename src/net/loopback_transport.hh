/**
 * @file
 * In-process loopback transport with seeded, deterministic fault
 * injection — the test/bench double of the TCP transport
 * (DESIGN.md §12).
 *
 * A LoopbackNetwork is a process-local namespace of endpoints. A
 * LoopbackTransport connects/listens against one network; every
 * connection is a pair of directed in-memory pipes carrying the
 * *encoded* wire bytes (send runs the real frame encoder, recv the
 * real decoder), so loopback traffic exercises exactly the byte path
 * sockets do — CRC validation included.
 *
 * Fault injection. Each direction of a connection owns a FaultSpec
 * and an XorShiftRng seeded from (transport seed, connection index,
 * direction). On every send the injector draws, in a fixed order —
 * loss, disconnect, straggler, jitter — regardless of which faults
 * are enabled, so the random stream consumed per message is constant
 * and the whole delivery schedule is a pure function of (seed, spec,
 * send sequence). The draws yield per message:
 *
 *   - dropped: the message silently vanishes (packet loss);
 *   - disconnected: the connection breaks — both directions close and
 *     all in-flight messages are discarded (a crashed peer);
 *   - delay: base latency + optional straggler latency + uniform
 *     jitter; the message is delivered `delay` after the send.
 *
 * Delivery order is by (delivery time, send sequence), so jittered or
 * straggler-hit messages *reorder* naturally — a later send with a
 * smaller delay overtakes. Every draw is appended to the direction's
 * FaultEvent log, which tests read to (a) assert that the same seed
 * reproduces the same schedule bit-for-bit and (b) predict the exact
 * delivery order the receiver must observe.
 *
 * Per-endpoint FaultSpec overrides (setEndpointFaults) let a scenario
 * degrade a single replica — e.g. a straggling primary with a clean
 * hedge target — while the rest of the cluster stays lossless.
 */

#ifndef MNNFAST_NET_LOOPBACK_TRANSPORT_HH
#define MNNFAST_NET_LOOPBACK_TRANSPORT_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "net/transport.hh"
#include "util/rng.hh"

namespace mnnfast::net {

/** Per-direction fault model; all-zero (the default) is a lossless,
 *  zero-latency wire. Probabilities are per message. */
struct FaultSpec
{
    double baseLatencySeconds = 0.0; ///< every message waits this long
    double jitterSeconds = 0.0;      ///< + uniform [0, jitter)
    double stragglerProb = 0.0;      ///< chance of a straggler message
    double stragglerLatencySeconds = 0.0; ///< + this when it fires
    double lossProb = 0.0;           ///< chance the message vanishes
    double disconnectProb = 0.0;     ///< chance the connection breaks
};

/** One send's injected fate (the delivery schedule, see header). */
struct FaultEvent
{
    uint64_t seq = 0;       ///< send sequence number (per direction)
    double delaySeconds = 0.0;
    bool dropped = false;
    bool disconnected = false;
};

namespace detail {
struct LoopbackPipe;
struct LoopbackConnection;
struct LoopbackEndpoint;
struct LoopbackNetworkState;
} // namespace detail

/** Process-local endpoint namespace; transports share one by ref. */
class LoopbackNetwork
{
  public:
    LoopbackNetwork();
    ~LoopbackNetwork();

    LoopbackNetwork(const LoopbackNetwork &) = delete;
    LoopbackNetwork &operator=(const LoopbackNetwork &) = delete;

  private:
    friend class LoopbackTransport;
    std::shared_ptr<detail::LoopbackNetworkState> state;
};

/** Channel over a loopback connection; exposes the fault log of its
 *  outbound direction for schedule-determinism tests. */
class LoopbackChannel : public Channel
{
  public:
    LoopbackChannel(std::shared_ptr<detail::LoopbackPipe> send_pipe,
                    std::shared_ptr<detail::LoopbackPipe> recv_pipe);
    ~LoopbackChannel() override;

    bool send(const Frame &frame) override;
    RecvStatus recv(Frame &out, NetClock::time_point deadline) override;
    void close() override;

    /** Copy of this side's send-direction fault log. */
    std::vector<FaultEvent> faultLog() const;

  private:
    std::shared_ptr<detail::LoopbackPipe> sendPipe;
    std::shared_ptr<detail::LoopbackPipe> recvPipe;
};

/**
 * Loopback transport: connect/listen on a LoopbackNetwork with this
 * transport's fault model. The faults of both directions of a
 * connection come from the *connecting* transport (the accept side
 * inherits them), so a front end's transport decides how each node
 * link misbehaves.
 */
class LoopbackTransport : public Transport
{
  public:
    /**
     * @param network Endpoint namespace (must outlive the transport).
     * @param faults  Default per-direction fault model.
     * @param seed    Base seed; connection i's directions draw from
     *                seeds mixed from (seed, i, direction), so a
     *                transport replays identically given the same
     *                connect order and per-connection send sequences.
     */
    explicit LoopbackTransport(LoopbackNetwork &network,
                               const FaultSpec &faults = {},
                               uint64_t seed = 1);

    /** Override the fault model for connections to one endpoint. */
    void setEndpointFaults(const std::string &endpoint,
                           const FaultSpec &faults);

    std::unique_ptr<Channel> connect(const std::string &endpoint,
                                     NetClock::time_point deadline) override;
    std::unique_ptr<Listener> listen(const std::string &endpoint) override;

  private:
    std::shared_ptr<detail::LoopbackNetworkState> net;
    FaultSpec defaultFaults;
    uint64_t seed;
    std::mutex mutex; ///< guards overrides + connection counter
    std::map<std::string, FaultSpec> overrides;
    uint64_t connections = 0;
};

} // namespace mnnfast::net

#endif // MNNFAST_NET_LOOPBACK_TRANSPORT_HH
