/**
 * @file
 * Real TCP socket transport for cross-process shard nodes
 * (DESIGN.md §12): blocking-style connect/send/recv with absolute
 * deadlines, implemented over non-blocking sockets and poll(2).
 *
 * Framing follows net/wire.hh exactly: a send writes header + payload
 * bytes; a recv reassembles them from the stream — the 16 header
 * bytes first, validated (magic/version/type/length) before the
 * payload length is trusted, then the payload, CRC-checked before the
 * frame is surfaced. A recv that hits its deadline mid-frame keeps
 * the partial bytes buffered in the channel and resumes on the next
 * call, so timeouts never desynchronize the stream. Validation
 * failures surface as RecvStatus::Corrupt; on a byte stream there is
 * no trustworthy resynchronization point after a corrupt header, so
 * callers should close the channel (ClusterFrontEnd treats Corrupt
 * like a disconnect and fails over).
 *
 * TCP_NODELAY is set on every connection: frames are small (a few KiB)
 * and latency-critical — Nagle coalescing would serialize the
 * scatter/gather round trip behind delayed ACKs.
 *
 * Endpoints are "host:port" with numeric IPv4 hosts ("127.0.0.1:0");
 * listen on port 0 binds an ephemeral port, reported by
 * TcpListener::boundPort() so a parent process can spawn nodes
 * without port coordination.
 */

#ifndef MNNFAST_NET_TCP_TRANSPORT_HH
#define MNNFAST_NET_TCP_TRANSPORT_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/transport.hh"

namespace mnnfast::net {

/** Channel over one connected TCP socket. See file header. */
class TcpChannel : public Channel
{
  public:
    /** Takes ownership of connected socket `fd` (non-blocking). */
    explicit TcpChannel(int fd);
    ~TcpChannel() override;

    bool send(const Frame &frame) override;
    RecvStatus recv(Frame &out, NetClock::time_point deadline) override;
    void close() override;

  private:
    /** Read once into the reassembly buffers; false on EOF/error. */
    RecvStatus fill(NetClock::time_point deadline);

    std::atomic<int> fd;

    // Frame reassembly state (survives recv timeouts).
    uint8_t headerBuf[16];
    size_t headerFill = 0;
    bool headerDone = false;
    FrameHeader header;
    std::vector<uint8_t> payloadBuf;
    size_t payloadFill = 0;
};

/** Accepting socket bound to one local port. */
class TcpListener : public Listener
{
  public:
    explicit TcpListener(int fd, uint16_t port);
    ~TcpListener() override;

    std::unique_ptr<Channel> accept(NetClock::time_point deadline) override;
    void close() override;

    /** The bound local port (resolves listen-on-port-0). */
    uint16_t boundPort() const { return port; }

  private:
    std::atomic<int> fd;
    uint16_t port;
};

/** TCP transport over numeric-IPv4 "host:port" endpoints. */
class TcpTransport : public Transport
{
  public:
    std::unique_ptr<Channel> connect(const std::string &endpoint,
                                     NetClock::time_point deadline) override;
    std::unique_ptr<Listener> listen(const std::string &endpoint) override;
};

} // namespace mnnfast::net

#endif // MNNFAST_NET_TCP_TRANSPORT_HH
