# Empty compiler generated dependencies file for mnn_core.
# This may be replaced when dependencies are built.
