file(REMOVE_RECURSE
  "CMakeFiles/mnn_core.dir/core/baseline_engine.cc.o"
  "CMakeFiles/mnn_core.dir/core/baseline_engine.cc.o.d"
  "CMakeFiles/mnn_core.dir/core/column_engine.cc.o"
  "CMakeFiles/mnn_core.dir/core/column_engine.cc.o.d"
  "CMakeFiles/mnn_core.dir/core/embedder.cc.o"
  "CMakeFiles/mnn_core.dir/core/embedder.cc.o.d"
  "CMakeFiles/mnn_core.dir/core/embedding_table.cc.o"
  "CMakeFiles/mnn_core.dir/core/embedding_table.cc.o.d"
  "CMakeFiles/mnn_core.dir/core/knowledge_base.cc.o"
  "CMakeFiles/mnn_core.dir/core/knowledge_base.cc.o.d"
  "CMakeFiles/mnn_core.dir/core/mnnfast.cc.o"
  "CMakeFiles/mnn_core.dir/core/mnnfast.cc.o.d"
  "libmnn_core.a"
  "libmnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
