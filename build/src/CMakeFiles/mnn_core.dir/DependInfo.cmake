
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_engine.cc" "src/CMakeFiles/mnn_core.dir/core/baseline_engine.cc.o" "gcc" "src/CMakeFiles/mnn_core.dir/core/baseline_engine.cc.o.d"
  "/root/repo/src/core/column_engine.cc" "src/CMakeFiles/mnn_core.dir/core/column_engine.cc.o" "gcc" "src/CMakeFiles/mnn_core.dir/core/column_engine.cc.o.d"
  "/root/repo/src/core/embedder.cc" "src/CMakeFiles/mnn_core.dir/core/embedder.cc.o" "gcc" "src/CMakeFiles/mnn_core.dir/core/embedder.cc.o.d"
  "/root/repo/src/core/embedding_table.cc" "src/CMakeFiles/mnn_core.dir/core/embedding_table.cc.o" "gcc" "src/CMakeFiles/mnn_core.dir/core/embedding_table.cc.o.d"
  "/root/repo/src/core/knowledge_base.cc" "src/CMakeFiles/mnn_core.dir/core/knowledge_base.cc.o" "gcc" "src/CMakeFiles/mnn_core.dir/core/knowledge_base.cc.o.d"
  "/root/repo/src/core/mnnfast.cc" "src/CMakeFiles/mnn_core.dir/core/mnnfast.cc.o" "gcc" "src/CMakeFiles/mnn_core.dir/core/mnnfast.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mnn_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_train.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
