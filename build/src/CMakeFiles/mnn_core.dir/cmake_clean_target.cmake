file(REMOVE_RECURSE
  "libmnn_core.a"
)
