# Empty dependencies file for mnn_sim.
# This may be replaced when dependencies are built.
