
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_model.cc" "src/CMakeFiles/mnn_sim.dir/sim/cache_model.cc.o" "gcc" "src/CMakeFiles/mnn_sim.dir/sim/cache_model.cc.o.d"
  "/root/repo/src/sim/contention.cc" "src/CMakeFiles/mnn_sim.dir/sim/contention.cc.o" "gcc" "src/CMakeFiles/mnn_sim.dir/sim/contention.cc.o.d"
  "/root/repo/src/sim/cpu_system.cc" "src/CMakeFiles/mnn_sim.dir/sim/cpu_system.cc.o" "gcc" "src/CMakeFiles/mnn_sim.dir/sim/cpu_system.cc.o.d"
  "/root/repo/src/sim/dram_bank_model.cc" "src/CMakeFiles/mnn_sim.dir/sim/dram_bank_model.cc.o" "gcc" "src/CMakeFiles/mnn_sim.dir/sim/dram_bank_model.cc.o.d"
  "/root/repo/src/sim/dram_model.cc" "src/CMakeFiles/mnn_sim.dir/sim/dram_model.cc.o" "gcc" "src/CMakeFiles/mnn_sim.dir/sim/dram_model.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/mnn_sim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/mnn_sim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/traffic.cc" "src/CMakeFiles/mnn_sim.dir/sim/traffic.cc.o" "gcc" "src/CMakeFiles/mnn_sim.dir/sim/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mnn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
