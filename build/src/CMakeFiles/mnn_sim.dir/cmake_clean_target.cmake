file(REMOVE_RECURSE
  "libmnn_sim.a"
)
