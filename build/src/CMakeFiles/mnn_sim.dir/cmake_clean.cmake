file(REMOVE_RECURSE
  "CMakeFiles/mnn_sim.dir/sim/cache_model.cc.o"
  "CMakeFiles/mnn_sim.dir/sim/cache_model.cc.o.d"
  "CMakeFiles/mnn_sim.dir/sim/contention.cc.o"
  "CMakeFiles/mnn_sim.dir/sim/contention.cc.o.d"
  "CMakeFiles/mnn_sim.dir/sim/cpu_system.cc.o"
  "CMakeFiles/mnn_sim.dir/sim/cpu_system.cc.o.d"
  "CMakeFiles/mnn_sim.dir/sim/dram_bank_model.cc.o"
  "CMakeFiles/mnn_sim.dir/sim/dram_bank_model.cc.o.d"
  "CMakeFiles/mnn_sim.dir/sim/dram_model.cc.o"
  "CMakeFiles/mnn_sim.dir/sim/dram_model.cc.o.d"
  "CMakeFiles/mnn_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/mnn_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/mnn_sim.dir/sim/traffic.cc.o"
  "CMakeFiles/mnn_sim.dir/sim/traffic.cc.o.d"
  "libmnn_sim.a"
  "libmnn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
