file(REMOVE_RECURSE
  "CMakeFiles/mnn_stats.dir/stats/csv.cc.o"
  "CMakeFiles/mnn_stats.dir/stats/csv.cc.o.d"
  "CMakeFiles/mnn_stats.dir/stats/histogram.cc.o"
  "CMakeFiles/mnn_stats.dir/stats/histogram.cc.o.d"
  "CMakeFiles/mnn_stats.dir/stats/table.cc.o"
  "CMakeFiles/mnn_stats.dir/stats/table.cc.o.d"
  "libmnn_stats.a"
  "libmnn_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnn_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
