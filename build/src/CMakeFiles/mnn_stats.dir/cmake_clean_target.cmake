file(REMOVE_RECURSE
  "libmnn_stats.a"
)
