# Empty dependencies file for mnn_stats.
# This may be replaced when dependencies are built.
