file(REMOVE_RECURSE
  "libmnn_util.a"
)
