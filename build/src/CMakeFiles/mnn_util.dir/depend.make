# Empty dependencies file for mnn_util.
# This may be replaced when dependencies are built.
