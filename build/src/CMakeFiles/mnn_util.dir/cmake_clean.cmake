file(REMOVE_RECURSE
  "CMakeFiles/mnn_util.dir/util/logging.cc.o"
  "CMakeFiles/mnn_util.dir/util/logging.cc.o.d"
  "CMakeFiles/mnn_util.dir/util/timer.cc.o"
  "CMakeFiles/mnn_util.dir/util/timer.cc.o.d"
  "libmnn_util.a"
  "libmnn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
