src/CMakeFiles/mnn_fpga.dir/fpga/energy_model.cc.o: \
 /root/repo/src/fpga/energy_model.cc /usr/include/stdc-predef.h \
 /root/repo/src/fpga/energy_model.hh
