# Empty compiler generated dependencies file for mnn_fpga.
# This may be replaced when dependencies are built.
