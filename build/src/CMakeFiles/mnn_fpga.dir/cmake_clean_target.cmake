file(REMOVE_RECURSE
  "libmnn_fpga.a"
)
