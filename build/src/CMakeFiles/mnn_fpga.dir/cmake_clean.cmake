file(REMOVE_RECURSE
  "CMakeFiles/mnn_fpga.dir/fpga/accelerator.cc.o"
  "CMakeFiles/mnn_fpga.dir/fpga/accelerator.cc.o.d"
  "CMakeFiles/mnn_fpga.dir/fpga/ddr3_model.cc.o"
  "CMakeFiles/mnn_fpga.dir/fpga/ddr3_model.cc.o.d"
  "CMakeFiles/mnn_fpga.dir/fpga/embedding_cache.cc.o"
  "CMakeFiles/mnn_fpga.dir/fpga/embedding_cache.cc.o.d"
  "CMakeFiles/mnn_fpga.dir/fpga/energy_model.cc.o"
  "CMakeFiles/mnn_fpga.dir/fpga/energy_model.cc.o.d"
  "libmnn_fpga.a"
  "libmnn_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnn_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
