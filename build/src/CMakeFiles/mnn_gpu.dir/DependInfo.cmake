
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/device_model.cc" "src/CMakeFiles/mnn_gpu.dir/gpu/device_model.cc.o" "gcc" "src/CMakeFiles/mnn_gpu.dir/gpu/device_model.cc.o.d"
  "/root/repo/src/gpu/pcie_bus.cc" "src/CMakeFiles/mnn_gpu.dir/gpu/pcie_bus.cc.o" "gcc" "src/CMakeFiles/mnn_gpu.dir/gpu/pcie_bus.cc.o.d"
  "/root/repo/src/gpu/stream_sim.cc" "src/CMakeFiles/mnn_gpu.dir/gpu/stream_sim.cc.o" "gcc" "src/CMakeFiles/mnn_gpu.dir/gpu/stream_sim.cc.o.d"
  "/root/repo/src/gpu/zskip_model.cc" "src/CMakeFiles/mnn_gpu.dir/gpu/zskip_model.cc.o" "gcc" "src/CMakeFiles/mnn_gpu.dir/gpu/zskip_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mnn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
