# Empty dependencies file for mnn_gpu.
# This may be replaced when dependencies are built.
