file(REMOVE_RECURSE
  "CMakeFiles/mnn_gpu.dir/gpu/device_model.cc.o"
  "CMakeFiles/mnn_gpu.dir/gpu/device_model.cc.o.d"
  "CMakeFiles/mnn_gpu.dir/gpu/pcie_bus.cc.o"
  "CMakeFiles/mnn_gpu.dir/gpu/pcie_bus.cc.o.d"
  "CMakeFiles/mnn_gpu.dir/gpu/stream_sim.cc.o"
  "CMakeFiles/mnn_gpu.dir/gpu/stream_sim.cc.o.d"
  "CMakeFiles/mnn_gpu.dir/gpu/zskip_model.cc.o"
  "CMakeFiles/mnn_gpu.dir/gpu/zskip_model.cc.o.d"
  "libmnn_gpu.a"
  "libmnn_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnn_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
