file(REMOVE_RECURSE
  "libmnn_gpu.a"
)
