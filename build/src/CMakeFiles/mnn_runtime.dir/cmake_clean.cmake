file(REMOVE_RECURSE
  "CMakeFiles/mnn_runtime.dir/runtime/parallel_for.cc.o"
  "CMakeFiles/mnn_runtime.dir/runtime/parallel_for.cc.o.d"
  "CMakeFiles/mnn_runtime.dir/runtime/thread_pool.cc.o"
  "CMakeFiles/mnn_runtime.dir/runtime/thread_pool.cc.o.d"
  "libmnn_runtime.a"
  "libmnn_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnn_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
