file(REMOVE_RECURSE
  "libmnn_runtime.a"
)
