# Empty dependencies file for mnn_runtime.
# This may be replaced when dependencies are built.
