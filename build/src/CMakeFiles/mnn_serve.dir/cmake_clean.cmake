file(REMOVE_RECURSE
  "CMakeFiles/mnn_serve.dir/serve/qa_server.cc.o"
  "CMakeFiles/mnn_serve.dir/serve/qa_server.cc.o.d"
  "libmnn_serve.a"
  "libmnn_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnn_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
