# Empty compiler generated dependencies file for mnn_serve.
# This may be replaced when dependencies are built.
