file(REMOVE_RECURSE
  "libmnn_serve.a"
)
