file(REMOVE_RECURSE
  "CMakeFiles/mnn_data.dir/data/babi.cc.o"
  "CMakeFiles/mnn_data.dir/data/babi.cc.o.d"
  "CMakeFiles/mnn_data.dir/data/babi_text.cc.o"
  "CMakeFiles/mnn_data.dir/data/babi_text.cc.o.d"
  "CMakeFiles/mnn_data.dir/data/bow.cc.o"
  "CMakeFiles/mnn_data.dir/data/bow.cc.o.d"
  "CMakeFiles/mnn_data.dir/data/vocabulary.cc.o"
  "CMakeFiles/mnn_data.dir/data/vocabulary.cc.o.d"
  "CMakeFiles/mnn_data.dir/data/zipf.cc.o"
  "CMakeFiles/mnn_data.dir/data/zipf.cc.o.d"
  "libmnn_data.a"
  "libmnn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
