file(REMOVE_RECURSE
  "libmnn_data.a"
)
