
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/babi.cc" "src/CMakeFiles/mnn_data.dir/data/babi.cc.o" "gcc" "src/CMakeFiles/mnn_data.dir/data/babi.cc.o.d"
  "/root/repo/src/data/babi_text.cc" "src/CMakeFiles/mnn_data.dir/data/babi_text.cc.o" "gcc" "src/CMakeFiles/mnn_data.dir/data/babi_text.cc.o.d"
  "/root/repo/src/data/bow.cc" "src/CMakeFiles/mnn_data.dir/data/bow.cc.o" "gcc" "src/CMakeFiles/mnn_data.dir/data/bow.cc.o.d"
  "/root/repo/src/data/vocabulary.cc" "src/CMakeFiles/mnn_data.dir/data/vocabulary.cc.o" "gcc" "src/CMakeFiles/mnn_data.dir/data/vocabulary.cc.o.d"
  "/root/repo/src/data/zipf.cc" "src/CMakeFiles/mnn_data.dir/data/zipf.cc.o" "gcc" "src/CMakeFiles/mnn_data.dir/data/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
