# Empty dependencies file for mnn_data.
# This may be replaced when dependencies are built.
