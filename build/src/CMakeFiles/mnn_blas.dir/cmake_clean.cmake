file(REMOVE_RECURSE
  "CMakeFiles/mnn_blas.dir/blas/kernels.cc.o"
  "CMakeFiles/mnn_blas.dir/blas/kernels.cc.o.d"
  "libmnn_blas.a"
  "libmnn_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnn_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
