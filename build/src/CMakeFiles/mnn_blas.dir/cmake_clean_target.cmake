file(REMOVE_RECURSE
  "libmnn_blas.a"
)
