# Empty compiler generated dependencies file for mnn_blas.
# This may be replaced when dependencies are built.
