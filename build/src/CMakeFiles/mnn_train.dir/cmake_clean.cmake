file(REMOVE_RECURSE
  "CMakeFiles/mnn_train.dir/train/gradcheck.cc.o"
  "CMakeFiles/mnn_train.dir/train/gradcheck.cc.o.d"
  "CMakeFiles/mnn_train.dir/train/model.cc.o"
  "CMakeFiles/mnn_train.dir/train/model.cc.o.d"
  "CMakeFiles/mnn_train.dir/train/serialize.cc.o"
  "CMakeFiles/mnn_train.dir/train/serialize.cc.o.d"
  "CMakeFiles/mnn_train.dir/train/trainer.cc.o"
  "CMakeFiles/mnn_train.dir/train/trainer.cc.o.d"
  "libmnn_train.a"
  "libmnn_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnn_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
