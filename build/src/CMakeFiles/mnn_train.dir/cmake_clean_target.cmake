file(REMOVE_RECURSE
  "libmnn_train.a"
)
