# Empty compiler generated dependencies file for mnn_train.
# This may be replaced when dependencies are built.
