
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/gradcheck.cc" "src/CMakeFiles/mnn_train.dir/train/gradcheck.cc.o" "gcc" "src/CMakeFiles/mnn_train.dir/train/gradcheck.cc.o.d"
  "/root/repo/src/train/model.cc" "src/CMakeFiles/mnn_train.dir/train/model.cc.o" "gcc" "src/CMakeFiles/mnn_train.dir/train/model.cc.o.d"
  "/root/repo/src/train/serialize.cc" "src/CMakeFiles/mnn_train.dir/train/serialize.cc.o" "gcc" "src/CMakeFiles/mnn_train.dir/train/serialize.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/mnn_train.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/mnn_train.dir/train/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mnn_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
