# Empty compiler generated dependencies file for mnn_tests.
# This may be replaced when dependencies are built.
