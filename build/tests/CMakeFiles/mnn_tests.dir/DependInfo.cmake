
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/babi_text_test.cc" "tests/CMakeFiles/mnn_tests.dir/babi_text_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/babi_text_test.cc.o.d"
  "/root/repo/tests/blas_test.cc" "tests/CMakeFiles/mnn_tests.dir/blas_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/blas_test.cc.o.d"
  "/root/repo/tests/core_engine_test.cc" "tests/CMakeFiles/mnn_tests.dir/core_engine_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/core_engine_test.cc.o.d"
  "/root/repo/tests/core_system_test.cc" "tests/CMakeFiles/mnn_tests.dir/core_system_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/core_system_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/mnn_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/mnn_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/fpga_test.cc" "tests/CMakeFiles/mnn_tests.dir/fpga_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/fpga_test.cc.o.d"
  "/root/repo/tests/gpu_test.cc" "tests/CMakeFiles/mnn_tests.dir/gpu_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/gpu_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/mnn_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/mnn_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/runtime_test.cc" "tests/CMakeFiles/mnn_tests.dir/runtime_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/runtime_test.cc.o.d"
  "/root/repo/tests/serve_test.cc" "tests/CMakeFiles/mnn_tests.dir/serve_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/serve_test.cc.o.d"
  "/root/repo/tests/sim_cache_test.cc" "tests/CMakeFiles/mnn_tests.dir/sim_cache_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/sim_cache_test.cc.o.d"
  "/root/repo/tests/sim_event_dram_test.cc" "tests/CMakeFiles/mnn_tests.dir/sim_event_dram_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/sim_event_dram_test.cc.o.d"
  "/root/repo/tests/sim_traffic_test.cc" "tests/CMakeFiles/mnn_tests.dir/sim_traffic_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/sim_traffic_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/mnn_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/train_test.cc" "tests/CMakeFiles/mnn_tests.dir/train_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/train_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/mnn_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/mnn_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mnn_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_train.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
