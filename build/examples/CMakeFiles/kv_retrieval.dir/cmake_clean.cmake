file(REMOVE_RECURSE
  "CMakeFiles/kv_retrieval.dir/kv_retrieval.cpp.o"
  "CMakeFiles/kv_retrieval.dir/kv_retrieval.cpp.o.d"
  "kv_retrieval"
  "kv_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
