# Empty dependencies file for kv_retrieval.
# This may be replaced when dependencies are built.
