file(REMOVE_RECURSE
  "CMakeFiles/mnnfast_cli.dir/mnnfast_cli.cpp.o"
  "CMakeFiles/mnnfast_cli.dir/mnnfast_cli.cpp.o.d"
  "mnnfast_cli"
  "mnnfast_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnnfast_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
