# Empty dependencies file for mnnfast_cli.
# This may be replaced when dependencies are built.
