# Empty compiler generated dependencies file for qa_server_study.
# This may be replaced when dependencies are built.
