file(REMOVE_RECURSE
  "CMakeFiles/qa_server_study.dir/qa_server_study.cpp.o"
  "CMakeFiles/qa_server_study.dir/qa_server_study.cpp.o.d"
  "qa_server_study"
  "qa_server_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_server_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
