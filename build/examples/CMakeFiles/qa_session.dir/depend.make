# Empty dependencies file for qa_session.
# This may be replaced when dependencies are built.
