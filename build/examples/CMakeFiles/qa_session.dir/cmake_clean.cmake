file(REMOVE_RECURSE
  "CMakeFiles/qa_session.dir/qa_session.cpp.o"
  "CMakeFiles/qa_session.dir/qa_session.cpp.o.d"
  "qa_session"
  "qa_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
