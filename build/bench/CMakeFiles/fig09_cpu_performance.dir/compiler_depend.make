# Empty compiler generated dependencies file for fig09_cpu_performance.
# This may be replaced when dependencies are built.
