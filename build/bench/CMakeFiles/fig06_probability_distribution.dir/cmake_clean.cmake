file(REMOVE_RECURSE
  "CMakeFiles/fig06_probability_distribution.dir/fig06_probability_distribution.cc.o"
  "CMakeFiles/fig06_probability_distribution.dir/fig06_probability_distribution.cc.o.d"
  "fig06_probability_distribution"
  "fig06_probability_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_probability_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
