# Empty compiler generated dependencies file for fig06_probability_distribution.
# This may be replaced when dependencies are built.
