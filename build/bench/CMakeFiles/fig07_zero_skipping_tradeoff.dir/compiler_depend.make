# Empty compiler generated dependencies file for fig07_zero_skipping_tradeoff.
# This may be replaced when dependencies are built.
