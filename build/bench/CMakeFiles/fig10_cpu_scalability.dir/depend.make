# Empty dependencies file for fig10_cpu_scalability.
# This may be replaced when dependencies are built.
