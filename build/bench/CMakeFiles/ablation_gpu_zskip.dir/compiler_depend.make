# Empty compiler generated dependencies file for ablation_gpu_zskip.
# This may be replaced when dependencies are built.
