file(REMOVE_RECURSE
  "CMakeFiles/ablation_gpu_zskip.dir/ablation_gpu_zskip.cc.o"
  "CMakeFiles/ablation_gpu_zskip.dir/ablation_gpu_zskip.cc.o.d"
  "ablation_gpu_zskip"
  "ablation_gpu_zskip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gpu_zskip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
