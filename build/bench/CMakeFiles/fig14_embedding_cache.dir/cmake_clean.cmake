file(REMOVE_RECURSE
  "CMakeFiles/fig14_embedding_cache.dir/fig14_embedding_cache.cc.o"
  "CMakeFiles/fig14_embedding_cache.dir/fig14_embedding_cache.cc.o.d"
  "fig14_embedding_cache"
  "fig14_embedding_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_embedding_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
