# Empty dependencies file for fig04_cache_contention.
# This may be replaced when dependencies are built.
