file(REMOVE_RECURSE
  "CMakeFiles/fig04_cache_contention.dir/fig04_cache_contention.cc.o"
  "CMakeFiles/fig04_cache_contention.dir/fig04_cache_contention.cc.o.d"
  "fig04_cache_contention"
  "fig04_cache_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cache_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
