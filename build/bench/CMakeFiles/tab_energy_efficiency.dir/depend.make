# Empty dependencies file for tab_energy_efficiency.
# This may be replaced when dependencies are built.
