file(REMOVE_RECURSE
  "CMakeFiles/tab_energy_efficiency.dir/tab_energy_efficiency.cc.o"
  "CMakeFiles/tab_energy_efficiency.dir/tab_energy_efficiency.cc.o.d"
  "tab_energy_efficiency"
  "tab_energy_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_energy_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
