# Empty compiler generated dependencies file for fig11_offchip_accesses.
# This may be replaced when dependencies are built.
