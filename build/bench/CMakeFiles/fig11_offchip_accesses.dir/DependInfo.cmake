
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_offchip_accesses.cc" "bench/CMakeFiles/fig11_offchip_accesses.dir/fig11_offchip_accesses.cc.o" "gcc" "bench/CMakeFiles/fig11_offchip_accesses.dir/fig11_offchip_accesses.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mnn_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_train.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
