file(REMOVE_RECURSE
  "CMakeFiles/fig11_offchip_accesses.dir/fig11_offchip_accesses.cc.o"
  "CMakeFiles/fig11_offchip_accesses.dir/fig11_offchip_accesses.cc.o.d"
  "fig11_offchip_accesses"
  "fig11_offchip_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_offchip_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
