# Empty compiler generated dependencies file for ablation_dram_detail.
# This may be replaced when dependencies are built.
