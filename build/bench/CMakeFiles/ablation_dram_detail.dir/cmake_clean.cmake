file(REMOVE_RECURSE
  "CMakeFiles/ablation_dram_detail.dir/ablation_dram_detail.cc.o"
  "CMakeFiles/ablation_dram_detail.dir/ablation_dram_detail.cc.o.d"
  "ablation_dram_detail"
  "ablation_dram_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dram_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
