file(REMOVE_RECURSE
  "CMakeFiles/fig03_membw_scalability.dir/fig03_membw_scalability.cc.o"
  "CMakeFiles/fig03_membw_scalability.dir/fig03_membw_scalability.cc.o.d"
  "fig03_membw_scalability"
  "fig03_membw_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_membw_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
