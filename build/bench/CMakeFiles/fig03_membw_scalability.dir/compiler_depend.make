# Empty compiler generated dependencies file for fig03_membw_scalability.
# This may be replaced when dependencies are built.
