file(REMOVE_RECURSE
  "CMakeFiles/ablation_llc_isolation.dir/ablation_llc_isolation.cc.o"
  "CMakeFiles/ablation_llc_isolation.dir/ablation_llc_isolation.cc.o.d"
  "ablation_llc_isolation"
  "ablation_llc_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_llc_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
