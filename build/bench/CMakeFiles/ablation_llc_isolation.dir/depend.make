# Empty dependencies file for ablation_llc_isolation.
# This may be replaced when dependencies are built.
