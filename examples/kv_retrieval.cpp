/**
 * @file
 * Key-value fact retrieval on the MnnFast engines.
 *
 * The paper's motivating applications include large-scale QA over
 * knowledge sources (it cites Key-Value Memory Networks as the
 * reading-documents variant). The MnnFast engines support this
 * directly: M_IN holds *key* embeddings (subject + relation) and
 * M_OUT holds *value* embeddings (the object entity), so attention
 * retrieves the value whose key matches the query.
 *
 * This demo stores 50,000 synthetic (subject, relation, object)
 * facts with random (hence near-orthogonal) entity embeddings; no
 * training is needed for sharp retrieval, which also makes it a
 * clean showcase for zero-skipping: attention is genuinely 1-hot.
 *
 * Build & run:  ./build/examples/kv_retrieval
 */

#include <cstdio>
#include <vector>

#include "blas/kernels.hh"
#include "core/column_engine.hh"
#include "core/embedding_table.hh"
#include "core/knowledge_base.hh"
#include "util/rng.hh"
#include "util/timer.hh"

using namespace mnnfast;

int
main()
{
    const size_t n_entities = 5000;
    const size_t n_relations = 50;
    const size_t n_facts = 50'000;
    const size_t ed = 64;

    std::printf("KV fact retrieval: %zu facts over %zu entities x %zu "
                "relations, ed=%zu\n\n",
                n_facts, n_entities, n_relations, ed);

    // Random entity/relation embeddings: high-dimensional random
    // vectors are nearly orthogonal, so key matching is sharp.
    core::EmbeddingTable entities(n_entities, ed);
    core::EmbeddingTable relations(n_relations, ed);
    entities.randomInit(1, 1.0f);
    relations.randomInit(2, 1.0f);

    // Store facts: key = subject + relation, value = object.
    XorShiftRng rng(3);
    struct Fact
    {
        data::WordId subject, relation, object;
    };
    std::vector<Fact> facts(n_facts);
    core::KnowledgeBase kb(ed);
    kb.reserve(n_facts);
    {
        std::vector<float> key(ed), value(ed);
        for (Fact &f : facts) {
            f.subject = data::WordId(rng.below(n_entities));
            f.relation = data::WordId(rng.below(n_relations));
            f.object = data::WordId(rng.below(n_entities));
            for (size_t e = 0; e < ed; ++e) {
                key[e] = entities.row(f.subject)[e]
                       + relations.row(f.relation)[e];
                value[e] = entities.row(f.object)[e];
            }
            kb.addSentence(key.data(), value.data());
        }
    }

    // Query with the full MnnFast engine (zero-skipping pays off:
    // only the matching facts carry attention mass).
    core::EngineConfig cfg;
    cfg.chunkSize = 1000;
    cfg.streaming = true;
    cfg.skipThreshold = 0.05f;
    cfg.onlineNormalize = true; // raw key dots can be large
    core::ColumnEngine engine(kb, cfg);

    const size_t n_queries = 200;
    size_t correct = 0;
    std::vector<float> query(ed), response(ed);
    Timer timer;
    for (size_t i = 0; i < n_queries; ++i) {
        const Fact &f = facts[rng.below(facts.size())];
        for (size_t e = 0; e < ed; ++e) {
            query[e] = entities.row(f.subject)[e]
                     + relations.row(f.relation)[e];
        }
        engine.infer(query.data(), response.data());

        // Decode: nearest entity embedding to the response vector.
        size_t best = 0;
        float best_dot = -1e30f;
        for (size_t v = 0; v < n_entities; ++v) {
            const float d =
                blas::dot(entities.row(data::WordId(v)),
                          response.data(), ed);
            if (d > best_dot) {
                best_dot = d;
                best = v;
            }
        }
        correct += best == f.object;
    }
    const double ms = timer.millis();

    const auto &counters = engine.counters();
    const double kept = double(counters.value("rows_kept"));
    const double skipped = double(counters.value("rows_skipped"));
    std::printf("retrieval accuracy: %.1f%% over %zu queries\n",
                100.0 * correct / n_queries, n_queries);
    std::printf("zero-skipping:      %.2f%% of weighted-sum rows "
                "skipped\n", 100.0 * skipped / (kept + skipped));
    std::printf("throughput:         %.0f queries/s (engine '%s', "
                "single thread)\n", n_queries / (ms / 1e3),
                engine.name());

    std::printf("\nNote: duplicate (subject, relation) pairs may map "
                "to several objects; attention then returns the "
                "mixture, so accuracy below 100%% is expected.\n");
    return 0;
}
