/**
 * @file
 * A multi-task question-answering session — the workload the paper's
 * introduction motivates (context-aware QA over stored stories).
 *
 * Trains one memory network per task family, then simulates a QA
 * service session: stories arrive, questions are answered by the full
 * MnnFast engine, and per-task accuracy plus engine statistics
 * (zero-skipping rates, operator breakdown) are reported.
 *
 * Build & run:  ./build/examples/qa_session
 */

#include <cstdio>
#include <vector>

#include "core/mnnfast.hh"
#include "data/babi.hh"
#include "stats/table.hh"
#include "train/model.hh"
#include "train/trainer.hh"

using namespace mnnfast;

namespace {

struct TaskService
{
    data::TaskType type;
    std::unique_ptr<data::Vocabulary> vocab;
    std::unique_ptr<data::BabiGenerator> gen;
    std::unique_ptr<train::MemNnModel> model;
};

TaskService
buildService(data::TaskType type)
{
    TaskService s;
    s.type = type;
    s.vocab = std::make_unique<data::Vocabulary>();
    s.gen = std::make_unique<data::BabiGenerator>(type, *s.vocab,
                                                  7 + uint64_t(type));
    const data::Dataset train_set = s.gen->generateSet(800, 10);

    train::ModelConfig mc;
    mc.vocabSize = s.vocab->size();
    mc.embeddingDim = 28;
    mc.hops = type == data::TaskType::TwoSupportingFacts ? 3 : 2;
    mc.maxStory = 16;
    s.model =
        std::make_unique<train::MemNnModel>(mc, 11 + uint64_t(type));

    train::TrainConfig tc;
    tc.epochs = 25;
    tc.learningRate = 0.04f;
    train::trainModel(*s.model, train_set, tc);
    return s;
}

} // namespace

int
main()
{
    std::printf("MnnFast QA session: training one model per task "
                "family...\n\n");

    stats::Table table({"task", "questions", "accuracy (%)",
                        "rows skipped (%)", "engine"});

    for (data::TaskType type : data::allTasks()) {
        TaskService service = buildService(type);

        core::EngineConfig ecfg;
        ecfg.chunkSize = 8;
        ecfg.skipThreshold = 0.02f;
        auto system = core::MnnFastSystem::fromTrained(
            *service.model, core::EngineKind::MnnFast, ecfg);

        const size_t n_questions = 100;
        size_t correct = 0;
        for (size_t i = 0; i < n_questions; ++i) {
            const data::Example ex = service.gen->generate(10);
            system.clearStory();
            for (const auto &sent : ex.story)
                system.addStorySentence(sent);
            correct += system.ask(ex.question) == ex.answer;
        }

        const auto &counters = system.engine(0).counters();
        const double kept = double(counters.value("rows_kept"));
        const double skipped = double(counters.value("rows_skipped"));
        table.addRow(
            {data::taskName(type), std::to_string(n_questions),
             stats::Table::num(100.0 * correct / n_questions, 1),
             stats::Table::num(100.0 * skipped / (kept + skipped), 1),
             system.engine(0).name()});
    }

    table.print();
    std::printf("\nNotes: yes-no hovers near chance because answering "
                "it requires comparing two location embeddings for "
                "equality, which the final linear layer of a BoW "
                "memory network cannot express (bAbI task 6 is weak "
                "for BoW models in the original MemNN paper too); "
                "two-supporting-facts needs the 3-hop model.\n");
    return 0;
}
