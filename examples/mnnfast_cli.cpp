/**
 * @file
 * mnnfast_cli — a small command-line workflow around the library:
 *
 *   generate  write a synthetic task dataset in bAbI text format
 *   train     train a memory network on a bAbI-format file and save
 *             the model (plus a sidecar .vocab file)
 *   eval      load a model and answer a bAbI-format test file with a
 *             chosen engine
 *
 * Example session:
 *   mnnfast_cli generate --task single-supporting-fact \
 *       --count 600 --story-len 8 --out /tmp/task1.babi
 *   mnnfast_cli train --data /tmp/task1.babi --out /tmp/task1.mnnf \
 *       --ed 24 --hops 2 --epochs 25
 *   mnnfast_cli eval --model /tmp/task1.mnnf --data /tmp/task1.babi \
 *       --engine mnnfast --skip 0.05
 *
 * Run with no arguments for usage. When invoked with `demo` (or no
 * args at all), it runs the full generate/train/eval pipeline in a
 * temporary directory — so the binary is self-exercising in CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/mnnfast.hh"
#include "data/babi.hh"
#include "data/babi_text.hh"
#include "train/serialize.hh"
#include "train/trainer.hh"
#include "util/logging.hh"

using namespace mnnfast;

namespace {

/** Parse "--key value" pairs after the subcommand. */
std::map<std::string, std::string>
parseFlags(int argc, char **argv, int first)
{
    std::map<std::string, std::string> flags;
    for (int i = first; i + 1 < argc; i += 2) {
        if (std::strncmp(argv[i], "--", 2) != 0)
            fatal("expected a --flag, got '%s'", argv[i]);
        flags[argv[i] + 2] = argv[i + 1];
    }
    return flags;
}

std::string
flagOr(const std::map<std::string, std::string> &flags,
       const std::string &key, const std::string &fallback)
{
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
}

data::TaskType
taskByName(const std::string &name)
{
    for (data::TaskType t : data::allTasks())
        if (name == data::taskName(t))
            return t;
    fatal("unknown task '%s' (try single-supporting-fact, "
          "two-supporting-facts, counting, yes-no, list-objects)",
          name.c_str());
}

core::EngineKind
engineByName(const std::string &name)
{
    if (name == "baseline")
        return core::EngineKind::Baseline;
    if (name == "column")
        return core::EngineKind::Column;
    if (name == "column+streaming")
        return core::EngineKind::ColumnStreaming;
    if (name == "mnnfast")
        return core::EngineKind::MnnFast;
    fatal("unknown engine '%s'", name.c_str());
}

void
saveVocab(const data::Vocabulary &vocab, const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("cannot write vocabulary file '%s'", path.c_str());
    for (data::WordId id = 0; id < vocab.size(); ++id)
        out << vocab.wordOf(id) << '\n';
}

data::Vocabulary
loadVocab(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open vocabulary file '%s'", path.c_str());
    data::Vocabulary vocab;
    std::string word;
    while (std::getline(in, word))
        if (!word.empty())
            vocab.add(word);
    return vocab;
}

int
cmdGenerate(const std::map<std::string, std::string> &flags)
{
    const auto task = taskByName(
        flagOr(flags, "task", "single-supporting-fact"));
    const size_t count = std::stoul(flagOr(flags, "count", "600"));
    const size_t story = std::stoul(flagOr(flags, "story-len", "8"));
    const uint64_t seed = std::stoull(flagOr(flags, "seed", "42"));
    const std::string out = flagOr(flags, "out", "");
    if (out.empty())
        fatal("generate requires --out <file>");

    data::Vocabulary vocab;
    data::BabiGenerator gen(task, vocab, seed);
    const data::Dataset set = gen.generateSet(count, story);
    data::writeBabiFile(out, set, vocab);
    std::printf("wrote %zu examples (%s, story length %zu) to %s\n",
                set.size(), data::taskName(task), story, out.c_str());
    return 0;
}

int
cmdTrain(const std::map<std::string, std::string> &flags)
{
    const std::string data_path = flagOr(flags, "data", "");
    const std::string out = flagOr(flags, "out", "");
    if (data_path.empty() || out.empty())
        fatal("train requires --data <file> and --out <file>");

    data::Vocabulary vocab;
    const data::Dataset set = data::parseBabiFile(data_path, vocab);
    if (set.size() == 0)
        fatal("no examples in '%s'", data_path.c_str());

    size_t max_story = 0;
    for (const auto &ex : set.examples)
        max_story = std::max(max_story, ex.story.size());

    train::ModelConfig mc;
    mc.vocabSize = vocab.size();
    mc.embeddingDim = std::stoul(flagOr(flags, "ed", "24"));
    mc.hops = std::stoul(flagOr(flags, "hops", "2"));
    mc.maxStory = max_story + 1;
    mc.positionEncoding = flagOr(flags, "pe", "off") == "on";
    train::MemNnModel model(mc, std::stoull(flagOr(flags, "seed",
                                                   "1")));

    train::TrainConfig tc;
    tc.epochs = std::stoul(flagOr(flags, "epochs", "25"));
    tc.learningRate = std::stof(flagOr(flags, "lr", "0.03"));
    tc.verbose = flagOr(flags, "verbose", "off") == "on";
    const auto result = train::trainModel(model, set, tc);

    train::saveModel(model, out);
    saveVocab(vocab, out + ".vocab");
    std::printf("trained on %zu examples: loss %.4f, accuracy %.1f%%\n"
                "model -> %s\nvocab -> %s.vocab\n",
                set.size(), result.finalLoss,
                100.0 * result.trainAccuracy, out.c_str(), out.c_str());
    return 0;
}

int
cmdEval(const std::map<std::string, std::string> &flags)
{
    const std::string model_path = flagOr(flags, "model", "");
    const std::string data_path = flagOr(flags, "data", "");
    if (model_path.empty() || data_path.empty())
        fatal("eval requires --model <file> and --data <file>");

    train::MemNnModel model = train::loadModel(model_path);
    data::Vocabulary vocab = loadVocab(model_path + ".vocab");

    // Parse with the model's vocabulary so word ids line up; new
    // words extend it (their embeddings are untrained).
    const data::Dataset set = data::parseBabiFile(data_path, vocab);
    if (vocab.size() > model.config().vocabSize) {
        warn("test data adds %zu unseen words; they are ignored by "
             "the trained embeddings",
             vocab.size() - model.config().vocabSize);
    }

    core::EngineConfig ecfg;
    ecfg.chunkSize = std::stoul(flagOr(flags, "chunk", "1000"));
    ecfg.skipThreshold = std::stof(flagOr(flags, "skip", "0"));
    auto system = core::MnnFastSystem::fromTrained(
        model, engineByName(flagOr(flags, "engine", "mnnfast")), ecfg);

    size_t correct = 0, answered = 0;
    for (const auto &ex : set.examples) {
        bool in_vocab = ex.answer < model.config().vocabSize;
        for (const auto &s : ex.story)
            for (data::WordId w : s)
                in_vocab = in_vocab && w < model.config().vocabSize;
        if (!in_vocab)
            continue;
        system.clearStory();
        for (const auto &s : ex.story)
            system.addStorySentence(s);
        correct += system.ask(ex.question) == ex.answer;
        ++answered;
    }
    std::printf("engine %s: %zu/%zu correct (%.1f%%)\n",
                system.engine(0).name(), correct, answered,
                answered ? 100.0 * correct / answered : 0.0);
    return 0;
}

int
cmdDemo()
{
    const std::string dir = "/tmp";
    const std::string babi = dir + "/mnnfast_demo.babi";
    const std::string model = dir + "/mnnfast_demo.mnnf";

    std::map<std::string, std::string> gen_flags{
        {"task", "single-supporting-fact"}, {"count", "600"},
        {"story-len", "8"}, {"out", babi}};
    cmdGenerate(gen_flags);

    std::map<std::string, std::string> train_flags{
        {"data", babi}, {"out", model}, {"epochs", "20"}};
    cmdTrain(train_flags);

    std::map<std::string, std::string> eval_flags{
        {"model", model}, {"data", babi}, {"engine", "mnnfast"},
        {"skip", "0.05"}};
    return cmdEval(eval_flags);
}

void
usage()
{
    std::printf(
        "usage: mnnfast_cli <command> [--flag value ...]\n\n"
        "commands:\n"
        "  generate --task T --count N --story-len L --out F [--seed S]\n"
        "  train    --data F --out F [--ed N --hops N --epochs N\n"
        "           --lr X --pe on|off --verbose on|off]\n"
        "  eval     --model F --data F [--engine baseline|column|\n"
        "           column+streaming|mnnfast --skip X --chunk N]\n"
        "  demo     run the full pipeline on a generated task\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return cmdDemo();

    const std::string cmd = argv[1];
    const auto flags = parseFlags(argc, argv, 2);
    if (cmd == "generate")
        return cmdGenerate(flags);
    if (cmd == "train")
        return cmdTrain(flags);
    if (cmd == "eval")
        return cmdEval(flags);
    if (cmd == "demo")
        return cmdDemo();
    usage();
    return cmd == "help" || cmd == "--help" ? 0 : 1;
}
