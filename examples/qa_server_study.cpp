/**
 * @file
 * Capacity planning for a MnnFast QA service: sweep the arrival rate
 * against batching policies and read off the latency/throughput
 * tradeoff. The column algorithm's batch-amortized knowledge-base
 * streaming (one M_IN/M_OUT pass per *batch*) is what makes large
 * batches pay.
 *
 * Build & run:  ./build/examples/qa_server_study
 *
 * With --live, the same policy sweep also runs against the *live*
 * multi-threaded runtime (serve::LiveServer) on a small knowledge
 * base: the service model is calibrated from the real engine, the
 * simulator is driven with the fitted coefficients, and simulated
 * and measured numbers print side by side — the simulator as a
 * design tool, the live runtime as its ground truth.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/column_engine.hh"
#include "core/knowledge_base.hh"
#include "serve/calibrate.hh"
#include "serve/live_server.hh"
#include "serve/qa_server.hh"
#include "stats/table.hh"
#include "util/rng.hh"

using namespace mnnfast;

namespace {

void
simulatorStudy()
{
    std::printf("MnnFast QA-server capacity study\n"
                "service model: t(batch) = 1 ms KB stream + 40 us per "
                "question, 1 executor\n\n");

    // ---- 1. Load sweep at the default policy ----
    std::printf("1) load sweep (batch cap 32, 2 ms batching "
                "timeout):\n\n");
    stats::Table load_table({"arrival (q/s)", "throughput (q/s)",
                             "mean batch", "p50 (ms)", "p99 (ms)",
                             "utilization"});
    for (double rate : {500.0, 2000.0, 8000.0, 16000.0, 24000.0}) {
        serve::ServerConfig cfg;
        cfg.arrivalRate = rate;
        cfg.simSeconds = 3.0;
        const auto s = serve::simulateServer(cfg);
        load_table.addRow(
            {stats::Table::num(rate, 0),
             stats::Table::num(s.throughputQps, 0),
             stats::Table::num(s.meanBatchSize, 1),
             stats::Table::num(s.p50Latency * 1e3, 2),
             stats::Table::num(s.p99Latency * 1e3, 2),
             stats::Table::num(s.utilization, 2)});
    }
    load_table.print();

    // ---- 2. Batching policy at a fixed heavy load ----
    std::printf("\n2) batching policy at 16k q/s:\n\n");
    stats::Table policy_table({"batch cap", "timeout (ms)",
                               "throughput (q/s)", "p50 (ms)",
                               "p99 (ms)"});
    for (size_t cap : {1ul, 8ul, 32ul, 128ul}) {
        for (double timeout_ms : {0.5, 2.0}) {
            serve::ServerConfig cfg;
            cfg.arrivalRate = 16000.0;
            cfg.maxBatch = cap;
            cfg.batchTimeout = timeout_ms * 1e-3;
            cfg.simSeconds = 3.0;
            const auto s = serve::simulateServer(cfg);
            policy_table.addRow(
                {std::to_string(cap),
                 stats::Table::num(timeout_ms, 1),
                 stats::Table::num(s.throughputQps, 0),
                 stats::Table::num(s.p50Latency * 1e3, 2),
                 stats::Table::num(s.p99Latency * 1e3, 2)});
        }
    }
    policy_table.print();

    std::printf("\nreading: a 1-question \"batch\" spends the whole "
                "KB stream on each question and collapses under load; "
                "raising the cap multiplies capacity (capacity = "
                "cap / (base + cap x per)), and once capacity exceeds "
                "the load the queueing delay collapses -- here cap "
                "128 is the first stable policy at 16k q/s\n");
}

/** Drive one live policy point with open-loop Poisson arrivals. */
struct LivePoint
{
    serve::LatencySnapshot snap;
    double throughput = 0.0;
};

LivePoint
runLivePoint(const core::KnowledgeBase &kb,
             const core::EngineConfig &ecfg, size_t cap,
             double timeout_s, double rate, double duration)
{
    serve::LiveServerConfig lcfg;
    lcfg.maxBatch = cap;
    lcfg.batchTimeout = timeout_s;
    lcfg.queueCapacity = 2048;
    lcfg.engine = ecfg;
    serve::LiveServer server(kb, lcfg);

    XorShiftRng rng(99);
    std::vector<float> q(kb.dim());
    for (float &x : q)
        x = rng.uniformRange(-1.f, 1.f);

    using Clock = std::chrono::steady_clock;
    std::vector<std::future<serve::Answer>> futures;
    const auto t0 = Clock::now();
    auto next = t0;
    const auto window_end =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(duration));
    for (;;) {
        double u = 0.0;
        while (u == 0.0)
            u = rng.uniform();
        next += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(-std::log(u) / rate));
        if (next > window_end)
            break;
        std::this_thread::sleep_until(next);
        auto ticket = server.submit(q.data());
        if (ticket.accepted())
            futures.push_back(std::move(ticket.answer));
    }
    server.shutdown();
    for (auto &f : futures)
        f.get();

    LivePoint p;
    p.snap = server.snapshot();
    const double makespan =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (makespan > 0.0)
        p.throughput = static_cast<double>(p.snap.completed) / makespan;
    return p;
}

void
liveStudy()
{
    std::printf("\n3) live runtime vs simulator (--live):\n\n");

    // A small KB keeps each policy point sub-second while the service
    // time is still dominated by the real KB stream.
    const size_t ns = 4096, ed = 64;
    core::KnowledgeBase kb(ed);
    kb.reserve(ns);
    XorShiftRng rng(3);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-0.5f, 0.5f);
            b[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(a.data(), b.data());
    }

    core::EngineConfig ecfg;
    ecfg.chunkSize = 512;
    ecfg.streaming = true;

    core::ColumnEngine calib(kb, ecfg);
    const serve::ServiceTimeFit fit =
        serve::calibrateServiceTimes(calib, ed, 1, 16, 5);
    std::printf("calibrated on this machine: base %.1f us + %.2f us "
                "per question\n\n",
                fit.batchBaseSeconds * 1e6,
                fit.perQuestionSeconds * 1e6);

    // Drive each policy at ~70%% of the *serial* capacity, where the
    // policies separate: cap 1 is already near collapse, batching is
    // comfortable.
    const double cap1 =
        1.0
        / std::max(fit.batchBaseSeconds + fit.perQuestionSeconds, 1e-7);
    const double rate = 0.7 * cap1;
    const double duration = 0.5;

    stats::Table table({"batch cap", "timeout (ms)", "sim q/s",
                        "live q/s", "sim p99 (ms)", "live p99 (ms)",
                        "mean batch (live)"});
    for (size_t cap : {1ul, 8ul, 32ul}) {
        for (double timeout_ms : {0.5, 2.0}) {
            serve::ServerConfig scfg;
            scfg.arrivalRate = rate;
            scfg.maxBatch = cap;
            scfg.batchTimeout = timeout_ms * 1e-3;
            scfg.simSeconds = duration;
            fit.apply(scfg);
            const auto sim = serve::simulateServer(scfg);

            const LivePoint live = runLivePoint(
                kb, ecfg, cap, timeout_ms * 1e-3, rate, duration);

            table.addRow(
                {std::to_string(cap), stats::Table::num(timeout_ms, 1),
                 stats::Table::num(sim.throughputQps, 0),
                 stats::Table::num(live.throughput, 0),
                 stats::Table::num(sim.p99Latency * 1e3, 2),
                 stats::Table::num(live.snap.endToEnd.p99 * 1e3, 2),
                 stats::Table::num(live.snap.meanBatchSize, 2)});
        }
    }
    table.print();

    std::printf("\nreading: every number on the left is a prediction "
                "from the calibrated affine model, every number on "
                "the right is wall-clock measurement of real requests "
                "through real engines under the same batching policy "
                "-- where they agree the simulator is a trustworthy "
                "capacity-planning tool, where they diverge the "
                "divergence itself is the finding (scheduler noise, "
                "timer resolution, core contention)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool live = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--live") == 0) {
            live = true;
        } else {
            std::fprintf(stderr, "usage: %s [--live]\n", argv[0]);
            return 2;
        }
    }

    simulatorStudy();
    if (live)
        liveStudy();
    return 0;
}
