/**
 * @file
 * Capacity planning for a MnnFast QA service: sweep the arrival rate
 * against batching policies and read off the latency/throughput
 * tradeoff. The column algorithm's batch-amortized knowledge-base
 * streaming (one M_IN/M_OUT pass per *batch*) is what makes large
 * batches pay.
 *
 * Build & run:  ./build/examples/qa_server_study
 */

#include <cstdio>

#include "serve/qa_server.hh"
#include "stats/table.hh"

using namespace mnnfast;

int
main()
{
    std::printf("MnnFast QA-server capacity study\n"
                "service model: t(batch) = 1 ms KB stream + 40 us per "
                "question, 1 executor\n\n");

    // ---- 1. Load sweep at the default policy ----
    std::printf("1) load sweep (batch cap 32, 2 ms batching "
                "timeout):\n\n");
    stats::Table load_table({"arrival (q/s)", "throughput (q/s)",
                             "mean batch", "p50 (ms)", "p99 (ms)",
                             "utilization"});
    for (double rate : {500.0, 2000.0, 8000.0, 16000.0, 24000.0}) {
        serve::ServerConfig cfg;
        cfg.arrivalRate = rate;
        cfg.simSeconds = 3.0;
        const auto s = serve::simulateServer(cfg);
        load_table.addRow(
            {stats::Table::num(rate, 0),
             stats::Table::num(s.throughputQps, 0),
             stats::Table::num(s.meanBatchSize, 1),
             stats::Table::num(s.p50Latency * 1e3, 2),
             stats::Table::num(s.p99Latency * 1e3, 2),
             stats::Table::num(s.utilization, 2)});
    }
    load_table.print();

    // ---- 2. Batching policy at a fixed heavy load ----
    std::printf("\n2) batching policy at 16k q/s:\n\n");
    stats::Table policy_table({"batch cap", "timeout (ms)",
                               "throughput (q/s)", "p50 (ms)",
                               "p99 (ms)"});
    for (size_t cap : {1ul, 8ul, 32ul, 128ul}) {
        for (double timeout_ms : {0.5, 2.0}) {
            serve::ServerConfig cfg;
            cfg.arrivalRate = 16000.0;
            cfg.maxBatch = cap;
            cfg.batchTimeout = timeout_ms * 1e-3;
            cfg.simSeconds = 3.0;
            const auto s = serve::simulateServer(cfg);
            policy_table.addRow(
                {std::to_string(cap),
                 stats::Table::num(timeout_ms, 1),
                 stats::Table::num(s.throughputQps, 0),
                 stats::Table::num(s.p50Latency * 1e3, 2),
                 stats::Table::num(s.p99Latency * 1e3, 2)});
        }
    }
    policy_table.print();

    std::printf("\nreading: a 1-question \"batch\" spends the whole "
                "KB stream on each question and collapses under load; "
                "raising the cap multiplies capacity (capacity = "
                "cap / (base + cap x per)), and once capacity exceeds "
                "the load the queueing delay collapses -- here cap "
                "128 is the first stable policy at 16k q/s\n");
    return 0;
}
