/**
 * @file
 * Quickstart: the smallest end-to-end use of the MnnFast library.
 *
 * 1. Generate a synthetic bAbI-style task and train a memory network.
 * 2. Deploy the trained weights into a MnnFastSystem with the full
 *    MnnFast engine (column-based + streaming + zero-skipping).
 * 3. Feed it a story and ask a question.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/mnnfast.hh"
#include "data/babi.hh"
#include "train/model.hh"
#include "train/trainer.hh"

using namespace mnnfast;

int
main()
{
    // --- 1. Data and training -------------------------------------
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            /*seed=*/42);
    const data::Dataset train_set = gen.generateSet(/*count=*/600,
                                                    /*story_len=*/8);

    train::ModelConfig mc;
    mc.vocabSize = vocab.size();
    mc.embeddingDim = 24;
    mc.hops = 2;
    mc.maxStory = 16;
    train::MemNnModel model(mc, /*seed=*/1);

    train::TrainConfig tc;
    tc.epochs = 25;
    tc.learningRate = 0.03f;
    const auto result = train::trainModel(model, train_set, tc);
    std::printf("trained: loss %.3f, train accuracy %.1f%%\n",
                result.finalLoss, 100.0 * result.trainAccuracy);

    // --- 2. Deploy into the inference system ----------------------
    core::EngineConfig ecfg;
    ecfg.chunkSize = 8;       // chunked column processing
    ecfg.skipThreshold = 0.05f; // zero-skipping
    auto system = core::MnnFastSystem::fromTrained(
        model, core::EngineKind::MnnFast, ecfg);

    // --- 3. Ask a question over a fresh story ---------------------
    const data::Example ex = gen.generate(8);
    std::printf("\nstory:\n");
    for (const data::Sentence &s : ex.story) {
        std::printf("  ");
        for (data::WordId w : s)
            std::printf("%s ", vocab.wordOf(w).c_str());
        std::printf("\n");
    }
    std::printf("question: ");
    for (data::WordId w : ex.question)
        std::printf("%s ", vocab.wordOf(w).c_str());

    for (const data::Sentence &s : ex.story)
        system.addStorySentence(s);
    const data::WordId answer = system.ask(ex.question);

    std::printf("\nanswer:   %s (expected: %s)\n",
                vocab.wordOf(answer).c_str(),
                vocab.wordOf(ex.answer).c_str());
    return 0;
}
