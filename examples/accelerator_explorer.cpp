/**
 * @file
 * FPGA design-space exploration with the accelerator cycle model:
 * what a hardware architect would run before synthesis.
 *
 * Sweeps MAC lanes, chunk size, and embedding-cache capacity, and
 * reports per-question latency, the compute/memory balance point, and
 * the marginal value of each resource.
 *
 * Build & run:  ./build/examples/accelerator_explorer
 */

#include <cstdio>
#include <vector>

#include "core/knowledge_base.hh"
#include "data/zipf.hh"
#include "fpga/accelerator.hh"
#include "fpga/embedding_cache.hh"
#include "stats/table.hh"
#include "util/rng.hh"

using namespace mnnfast;

namespace {

core::KnowledgeBase
makeKb(size_t ns, size_t ed)
{
    core::KnowledgeBase kb(ed);
    XorShiftRng rng(3);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-0.5f, 0.5f);
            b[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(a.data(), b.data());
    }
    return kb;
}

} // namespace

int
main()
{
    std::printf("MnnFast FPGA design-space explorer (ZedBoard-class "
                "cycle model)\n\n");

    const size_t ns = 1000, ed = 25;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    XorShiftRng rng(4);
    std::vector<float> u(ed), o(ed);
    for (float &x : u)
        x = rng.uniformRange(-0.4f, 0.4f);

    // ---- 1. MAC lanes ----
    std::printf("1) MAC lanes (column + streaming, chunk 25):\n\n");
    stats::Table lanes_table({"lanes", "cycles/question",
                              "compute-bound?",
                              "us @100MHz"});
    for (size_t lanes : {1, 2, 4, 8, 16, 32}) {
        fpga::FpgaConfig cfg;
        cfg.macLanes = lanes;
        cfg.streaming = true;
        fpga::FpgaAccelerator accel(cfg);
        const auto s = accel.runInference(u.data(), 1, kb, o.data());
        lanes_table.addRow(
            {std::to_string(lanes),
             stats::Table::num(s.totalCycles),
             s.memoryCycles == 0 ? "yes" : "no (DDR-bound)",
             stats::Table::num(double(s.totalCycles) / 100.0, 1)});
    }
    lanes_table.print();
    std::printf("\n(once the pipeline is DDR-bound, more lanes are "
                "wasted silicon)\n");

    // ---- 2. Chunk size ----
    std::printf("\n2) chunk size (4 lanes, streaming):\n\n");
    stats::Table chunk_table({"chunk", "cycles/question",
                              "BRAM for T_IN (bytes)"});
    for (size_t chunk : {5ul, 25ul, 100ul, 250ul, 1000ul}) {
        fpga::FpgaConfig cfg;
        cfg.chunkSize = chunk;
        cfg.streaming = true;
        fpga::FpgaAccelerator accel(cfg);
        const auto s = accel.runInference(u.data(), 1, kb, o.data());
        chunk_table.addRow({std::to_string(chunk),
                            stats::Table::num(s.totalCycles),
                            stats::Table::num(uint64_t(chunk * 4))});
    }
    chunk_table.print();
    std::printf("\n(bigger chunks amortize DDR burst latency at the "
                "cost of BRAM)\n");

    // ---- 3. Embedding-cache capacity ----
    std::printf("\n3) embedding cache (ed=256, Zipf word stream):\n\n");
    fpga::FpgaConfig ecfg;
    ecfg.embeddingDim = 256;
    fpga::FpgaAccelerator embed_accel(ecfg);

    data::ZipfGenerator zipf(10000, 1.15, 5);
    std::vector<data::Sentence> sentences(2000);
    for (auto &s : sentences) {
        s.resize(8);
        for (auto &w : s)
            w = static_cast<data::WordId>(zipf.sample());
    }
    const auto no_cache = embed_accel.runEmbedding(sentences, nullptr);

    stats::Table cache_table({"capacity", "hit rate",
                              "embed cycles", "vs no-cache"});
    cache_table.addRow({"none", "-",
                        stats::Table::num(no_cache.cycles), "1.000"});
    for (size_t kb_sz : {16ul, 32ul, 64ul, 128ul, 256ul, 512ul}) {
        fpga::EmbeddingCacheConfig ccfg;
        ccfg.sizeBytes = kb_sz << 10;
        ccfg.embeddingDim = 256;
        fpga::EmbeddingCache cache(ccfg);
        const auto r = embed_accel.runEmbedding(sentences, &cache);
        cache_table.addRow(
            {std::to_string(kb_sz) + "KB",
             stats::Table::num(cache.hitRate(), 3),
             stats::Table::num(r.cycles),
             stats::Table::num(double(r.cycles)
                               / double(no_cache.cycles), 3)});
    }
    cache_table.print();
    return 0;
}
