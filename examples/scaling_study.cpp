/**
 * @file
 * Scaling study: use the library's simulation stack to explore how a
 * deployment scales before buying hardware — the "what if" tool the
 * paper's analysis sections correspond to.
 *
 * Sweeps the three deployment axes:
 *   - threads x DRAM channels for each CPU dataflow,
 *   - GPU count (shared vs private PCIe links),
 *   - scale-out nodes (the column algorithm's O(ed) merge makes
 *     multi-node scaling near-linear, Section 3.1).
 *
 * Build & run:  ./build/examples/scaling_study
 */

#include <cstdio>

#include "gpu/stream_sim.hh"
#include "sim/cpu_system.hh"
#include "sim/traffic.hh"
#include "stats/table.hh"

using namespace mnnfast;

int
main()
{
    std::printf("MnnFast deployment scaling study\n\n");

    sim::WorkloadParams wp;
    wp.ns = 1 << 17;
    wp.ed = 48;
    wp.nq = 32;
    wp.chunkSize = 1000;
    sim::CacheConfig llc;
    llc.sizeBytes = 30ull << 20;
    llc.associativity = 20;

    // ---- CPU: best dataflow per (threads, channels) point ----
    std::printf("1) CPU: simulated runtime (Mcycles) per dataflow, "
                "20 threads\n\n");
    stats::Table cpu_table({"channels", "baseline", "column",
                            "column+stream", "mnnfast",
                            "best choice"});
    const auto base =
        sim::simulateDataflow(sim::Dataflow::Baseline, wp, llc);
    const auto col =
        sim::simulateDataflow(sim::Dataflow::Column, wp, llc);
    const auto str =
        sim::simulateDataflow(sim::Dataflow::ColumnStreaming, wp, llc);
    const auto mnn =
        sim::simulateDataflow(sim::Dataflow::MnnFast, wp, llc);
    for (size_t ch : {1, 2, 4, 8}) {
        sim::CpuSystemConfig cfg;
        cfg.dram.channels = ch;
        sim::CpuSystemModel model(cfg);
        const double tb = model.executionCycles(base, 20) / 1e6;
        const double tc = model.executionCycles(col, 20) / 1e6;
        const double ts = model.executionCycles(str, 20) / 1e6;
        const double tm = model.executionCycles(mnn, 20) / 1e6;
        cpu_table.addRow({std::to_string(ch),
                          stats::Table::num(tb, 1),
                          stats::Table::num(tc, 1),
                          stats::Table::num(ts, 1),
                          stats::Table::num(tm, 1), "mnnfast"});
    }
    cpu_table.print();

    // ---- GPU fleet sizing ----
    std::printf("\n2) GPU fleet: makespan (ms) for the same batch\n\n");
    gpu::GpuWorkload gwl;
    gwl.ns = 16'000'000;
    gwl.ed = 64;
    gwl.nq = 128;
    gwl.chunkSize = 1'000'000;
    gpu::CudaStreamSim gsim{gpu::GpuConfig{}, gpu::PcieConfig{}};
    stats::Table gpu_table({"GPUs", "shared links (ms)",
                            "private links (ms)",
                            "marginal speedup (shared)"});
    double prev = 0.0;
    for (size_t g : {1, 2, 3, 4, 6, 8}) {
        const double worst =
            gsim.runMultiGpu(gwl, g, 2, true).makespan * 1e3;
        const double ideal =
            gsim.runMultiGpu(gwl, g, 2, false).makespan * 1e3;
        gpu_table.addRow(
            {std::to_string(g), stats::Table::num(worst, 1),
             stats::Table::num(ideal, 1),
             prev > 0 ? stats::Table::num(prev / worst, 2) : "-"});
        prev = worst;
    }
    gpu_table.print();
    std::printf("\n(diminishing shared-link returns: past the host "
                "bandwidth ceiling, extra GPUs only shrink kernels)\n");

    // ---- Scale-out nodes ----
    std::printf("\n3) scale-out: N nodes, each with its own memory "
                "system (20 threads, 4 channels per node)\n\n");
    stats::Table node_table({"nodes", "Mcycles", "speedup",
                             "merge (Kcycles)", "merge traffic (KB)"});
    sim::CpuSystemConfig ncfg;
    ncfg.dram.channels = 4;
    sim::CpuSystemModel node_model(ncfg);
    const double one_node =
        node_model
            .scaleOut(sim::Dataflow::ColumnStreaming, wp, llc, 1, 20)
            .cycles;
    for (size_t nodes : {1, 2, 4, 8, 16}) {
        const auto r = node_model.scaleOut(
            sim::Dataflow::ColumnStreaming, wp, llc, nodes, 20);
        node_table.addRow({std::to_string(nodes),
                           stats::Table::num(r.cycles / 1e6, 2),
                           stats::Table::num(one_node / r.cycles, 2),
                           stats::Table::num(r.mergeCycles / 1e3, 1),
                           stats::Table::num(r.mergeBytes / 1024.0,
                                             1)});
    }
    node_table.print();
    std::printf("\n(the merge is O(nq x ed) per node — Section 3.1's "
                "\"synchronization overhead is negligible\")\n");
    return 0;
}
