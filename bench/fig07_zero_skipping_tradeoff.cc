/**
 * @file
 * Reproduces paper Figure 7: "Tradeoffs between accuracy loss and
 * computation reduction according to the skip threshold."
 *
 * One MemNN is trained per synthetic bAbI task family; the skip
 * threshold is swept and, averaged across the tasks, both the
 * relative accuracy loss and the weighted-sum computation reduction
 * are reported. Paper reference points: ~81% reduction with no
 * accuracy loss at threshold 0.01; ~97% reduction with 0.87% loss at
 * threshold 0.1.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace mnnfast;

int
main()
{
    bench::banner("Figure 7: zero-skipping accuracy/computation "
                  "tradeoff",
                  "Trained models on all five synthetic bAbI task "
                  "families; averages across tasks.");

    const size_t story_len = 20;
    struct Trained
    {
        bench::TrainedTask task;
        data::Dataset test;
        double baseAcc;
    };
    std::vector<Trained> models;

    for (data::TaskType type : data::allTasks()) {
        // Multi-hop tasks need multi-hop models (exactly as in the
        // original end-to-end MemNN paper, where BoW models also do
        // worst on the two-supporting-facts family).
        const size_t hops =
            type == data::TaskType::TwoSupportingFacts ? 3
            : type == data::TaskType::YesNo            ? 2
                                                       : 1;
        Trained t;
        t.task = bench::trainTask(type, /*ed=*/32, hops, story_len,
                                  /*examples=*/1000,
                                  /*epochs=*/30,
                                  /*seed=*/11 + uint64_t(type));
        t.test = t.task.gen->generateSet(150, story_len);
        t.baseAcc =
            train::evaluateAccuracy(*t.task.model, t.test);
        std::printf("  trained %-22s base accuracy %.3f\n",
                    data::taskName(type), t.baseAcc);
        models.push_back(std::move(t));
    }
    std::printf("\n");

    const float thresholds[] = {1e-5f, 1e-4f, 1e-3f, 0.01f,
                                0.05f, 0.1f,  0.2f,  0.3f, 0.5f};

    stats::Table table({"threshold", "accuracy loss (%)",
                        "computation reduction (%)"});
    auto csv = bench::maybeCsv("fig07");
    if (csv)
        csv->writeRow({"threshold", "accuracy_loss_pct",
                       "reduction_pct"});
    for (float th : thresholds) {
        double loss_sum = 0.0, reduction_sum = 0.0;
        for (const Trained &t : models) {
            uint64_t kept = 0, total = 0;
            const double acc = train::evaluateAccuracySkip(
                *t.task.model, t.test, th, kept, total);
            // Relative loss in accuracy, as the paper defines it.
            const double rel_loss =
                t.baseAcc > 0
                    ? std::max(0.0, (t.baseAcc - acc) / t.baseAcc)
                    : 0.0;
            loss_sum += rel_loss;
            reduction_sum += 1.0 - double(kept) / double(total);
        }
        std::vector<std::string> row{
            stats::Table::num(double(th), 5),
            stats::Table::num(100.0 * loss_sum / models.size(), 2),
            stats::Table::num(100.0 * reduction_sum / models.size(),
                              1)};
        if (csv)
            csv->writeRow(row);
        table.addRow(std::move(row));
    }
    table.print();

    std::printf("\npaper reference: ~81%% reduction / 0%% loss at "
                "th=0.01; ~97%% reduction / 0.87%% loss at th=0.1\n");
    return 0;
}
