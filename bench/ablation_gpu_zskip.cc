/**
 * @file
 * Ablation: zero-skipping on GPUs (paper Section 4.1.2).
 *
 * Quantifies the paper's two reasons for omitting zero-skipping from
 * the GPU implementation:
 *  1. warp-divergence skipping saves nothing — a warp retires early
 *     only when all 32 lanes are skipped;
 *  2. matrix compaction costs about as much as the weighted sum it is
 *     trying to shrink, and its gathers slow the remaining work.
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/zskip_model.hh"
#include "stats/table.hh"

using namespace mnnfast;

int
main()
{
    bench::banner("Ablation (Section 4.1.2): zero-skipping on GPUs",
                  "Weighted-sum time relative to the dense kernel; "
                  "<1 is a win, >1 is harmful.");

    gpu::GpuWorkload wl;
    wl.ns = 16'000'000;
    wl.ed = 64;
    wl.nq = 128;
    wl.chunkSize = 1'000'000;

    gpu::GpuZskipModel model{gpu::GpuConfig{}, gpu::ZskipParams{}};
    std::printf("dense weighted sum: %.2f ms\n\n",
                model.denseWsumSeconds(wl) * 1e3);

    stats::Table table({"keep fraction", "warp-skip (rel)",
                        "compaction transform (ms)",
                        "compaction wsum (ms)", "compaction (rel)"});
    for (double keep : {0.5, 0.2, 0.1, 0.05, 0.01}) {
        const auto warp = model.warpSkip(wl, keep);
        const auto comp = model.compaction(wl, keep);
        table.addRow({stats::Table::num(keep, 2),
                      stats::Table::num(warp.relativeToDense, 3),
                      stats::Table::num(comp.transformSeconds * 1e3, 2),
                      stats::Table::num(comp.wsumSeconds * 1e3, 2),
                      stats::Table::num(comp.relativeToDense, 3)});
    }
    table.print();

    std::printf("\npaper's conclusions, reproduced:\n"
                "  - warp-skipping is ineffective at realistic keep "
                "fractions (a warp needs all 32 lanes skipped);\n"
                "  - the compaction transform alone is comparable to "
                "the weighted sum (paper: \"the transformation latency "
                "is comparable to weighted sum's latency\"), so "
                "compaction only pays off at extreme sparsity.\n");
    return 0;
}
