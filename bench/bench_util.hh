/**
 * @file
 * Shared helpers for the figure-reproduction bench harnesses.
 */

#ifndef MNNFAST_BENCH_BENCH_UTIL_HH
#define MNNFAST_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/knowledge_base.hh"
#include "data/babi.hh"
#include "stats/csv.hh"
#include "train/model.hh"
#include "train/trainer.hh"
#include "util/rng.hh"

namespace mnnfast::bench {

/** Print a uniform harness banner. */
inline void
banner(const char *figure, const char *description)
{
    std::printf("==============================================================\n");
    std::printf("%s\n%s\n", figure, description);
    std::printf("==============================================================\n");
}

/**
 * Optional CSV export: when the MNNFAST_CSV_DIR environment variable
 * is set, harnesses write their data series to <dir>/<name>.csv for
 * external plotting. Returns nullptr (no export) otherwise.
 */
inline std::unique_ptr<stats::CsvWriter>
maybeCsv(const char *name)
{
    const char *dir = std::getenv("MNNFAST_CSV_DIR");
    if (!dir)
        return nullptr;
    return std::make_unique<stats::CsvWriter>(
        std::string(dir) + "/" + name + ".csv");
}

/** A trained model together with its task context. */
struct TrainedTask
{
    std::unique_ptr<data::Vocabulary> vocab;
    std::unique_ptr<data::BabiGenerator> gen;
    std::unique_ptr<train::MemNnModel> model;
    double trainAccuracy = 0.0;
};

/**
 * Train a MemNN on one synthetic bAbI task. Sizes are chosen so a
 * single harness trains in a few seconds while still producing the
 * sparse attention the paper's Figs. 6-7 rely on.
 */
inline TrainedTask
trainTask(data::TaskType task, size_t ed, size_t hops, size_t story_len,
          size_t examples, size_t epochs, uint64_t seed,
          float learning_rate = 0.05f)
{
    TrainedTask t;
    t.vocab = std::make_unique<data::Vocabulary>();
    t.gen = std::make_unique<data::BabiGenerator>(task, *t.vocab, seed);
    const data::Dataset train_set =
        t.gen->generateSet(examples, story_len);

    train::ModelConfig mc;
    mc.vocabSize = t.vocab->size();
    mc.embeddingDim = ed;
    mc.hops = hops;
    mc.maxStory = story_len + 2;
    t.model = std::make_unique<train::MemNnModel>(mc, seed + 1);

    train::TrainConfig tc;
    tc.epochs = epochs;
    tc.learningRate = learning_rate;
    const auto result = train::trainModel(*t.model, train_set, tc);
    t.trainAccuracy = result.trainAccuracy;
    return t;
}

/**
 * Build a knowledge base whose attention profile mimics a trained
 * memory network: `hot_fraction` of the rows correlate strongly with
 * the probe question (dot ~ hot_dot) and the rest are background
 * (dot ~ cold_dot). Used by the FPGA/energy harnesses, which need
 * paper-scale databases (ns = 1000) that exceed the trainer's story
 * length.
 */
inline core::KnowledgeBase
makeAttentionKb(size_t ns, size_t ed, const float *u,
                double hot_fraction, float hot_dot, float cold_dot,
                uint64_t seed)
{
    core::KnowledgeBase kb(ed);
    kb.reserve(ns);
    XorShiftRng rng(seed);

    // Normalize u once; rows are target_dot * u / |u|^2 + orthogonal
    // noise, so u . row ~ target_dot.
    double norm2 = 0.0;
    for (size_t e = 0; e < ed; ++e)
        norm2 += double(u[e]) * u[e];
    if (norm2 == 0.0)
        norm2 = 1.0;

    std::vector<float> min_row(ed), mout_row(ed);
    for (size_t i = 0; i < ns; ++i) {
        const bool hot = rng.uniform() < hot_fraction;
        const float target = hot ? hot_dot : cold_dot;
        for (size_t e = 0; e < ed; ++e) {
            const float noise = rng.uniformRange(-0.05f, 0.05f);
            min_row[e] =
                static_cast<float>(target * u[e] / norm2) + noise;
            mout_row[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(min_row.data(), mout_row.data());
    }
    return kb;
}

} // namespace mnnfast::bench

#endif // MNNFAST_BENCH_BENCH_UTIL_HH
