/**
 * @file
 * Sharded vs replicated serving ablation (DESIGN.md §9).
 *
 * Both LiveServer modes stream the whole knowledge base once per
 * dispatched batch; what sharding changes is *where a batch's pass
 * runs*. Replicated mode serves W concurrent batches on W full-KB
 * engines — under load the passes timeslice the cores, so every batch
 * takes ~W passes of wall-clock. Sharded mode serves one batch at a
 * time across all W workers (one shard each), so a batch takes ~one
 * pass. Same total work, same saturated throughput, lower
 * per-question latency — the paper's §6 scalability argument made
 * measurable on the serving path.
 *
 * For each mode (replicated at fixed workers; sharded at S = 2, 4, 8
 * with the same workers) this harness measures:
 *  1. burst rounds: 2 x maxBatch questions submitted back to back,
 *     all futures awaited — per-question end-to-end latency
 *     distribution straight from the answers' own timings;
 *  2. open-loop throughput at ~0.9x the single-pass capacity;
 *  3. engine-level sanity: median direct ShardedEngine::inferBatch
 *     wall time and the max |difference| against a single reference
 *     ColumnEngine (0 when shard boundaries are chunk-aligned — the
 *     bit-identity guarantee).
 *
 * Emits BENCH_sharding.json (path overridable via MNNFAST_BENCH_JSON).
 *
 * Flags:
 *   --smoke      tiny KB, short rounds (CI leak check)
 *   --workers N  fixed worker count (default 2)
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "bench_util.hh"
#include "core/column_engine.hh"
#include "core/sharded_engine.hh"
#include "core/sharded_knowledge_base.hh"
#include "serve/live_server.hh"
#include "stats/table.hh"
#include "util/rng.hh"
#include "util/timer.hh"

using namespace mnnfast;

namespace {

struct LatencyStats
{
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
};

LatencyStats
summarize(std::vector<double> &xs)
{
    LatencyStats s;
    if (xs.empty())
        return s;
    std::sort(xs.begin(), xs.end());
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    s.mean = sum / double(xs.size());
    s.p50 = xs[xs.size() / 2];
    s.p95 = xs[std::min(xs.size() - 1,
                        static_cast<size_t>(0.95 * double(xs.size())))];
    return s;
}

struct ModeResult
{
    std::string label;
    size_t shards = 0; ///< 0 = replicated
    LatencyStats burstE2e;
    LatencyStats burstService;
    double throughputQps = 0.0;
    uint64_t completed = 0;
    uint64_t rejectedFull = 0;
    double directBatchSeconds = 0.0; ///< engine-level median
    double maxAbsDiff = 0.0;         ///< vs single-engine reference
};

core::KnowledgeBase
buildKb(size_t ns, size_t ed)
{
    core::KnowledgeBase kb(ed);
    kb.reserve(ns);
    XorShiftRng rng(17);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-0.5f, 0.5f);
            b[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(a.data(), b.data());
    }
    return kb;
}

std::vector<std::vector<float>>
makeQuestions(size_t count, size_t ed, uint64_t seed)
{
    XorShiftRng rng(seed);
    std::vector<std::vector<float>> qs(count);
    for (auto &q : qs) {
        q.resize(ed);
        for (float &x : q)
            x = rng.uniformRange(-1.f, 1.f);
    }
    return qs;
}

/** Burst rounds: per-question latencies from the answers themselves. */
void
runBursts(serve::LiveServer &server, size_t rounds, size_t burst,
          const std::vector<std::vector<float>> &questions,
          ModeResult &out)
{
    std::vector<double> e2e, service;
    e2e.reserve(rounds * burst);
    service.reserve(rounds * burst);
    std::vector<std::future<serve::Answer>> futures;
    size_t qi = 0;
    for (size_t r = 0; r < rounds; ++r) {
        futures.clear();
        for (size_t i = 0; i < burst; ++i) {
            serve::Ticket t = server.submit(
                questions[qi++ % questions.size()].data());
            if (t.accepted())
                futures.push_back(std::move(t.answer));
        }
        for (auto &f : futures) {
            serve::Answer a = f.get();
            e2e.push_back(a.queueWaitSeconds + a.serviceSeconds);
            service.push_back(a.serviceSeconds);
        }
    }
    out.burstE2e = summarize(e2e);
    out.burstService = summarize(service);
}

/** Open-loop Poisson load; returns completed/makespan throughput. */
void
runThroughput(serve::LiveServer &server, double rate, double duration,
              const std::vector<std::vector<float>> &questions,
              ModeResult &out)
{
    using Clock = std::chrono::steady_clock;
    XorShiftRng rng(4321);
    std::vector<std::future<serve::Answer>> futures;
    futures.reserve(static_cast<size_t>(rate * duration * 1.2) + 16);

    const auto t0 = Clock::now();
    const auto window_end =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(duration));
    auto next = t0;
    size_t qi = 0;
    for (;;) {
        double u = 0.0;
        while (u == 0.0)
            u = rng.uniform();
        next += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(-std::log(u) / rate));
        if (next > window_end)
            break;
        std::this_thread::sleep_until(next);
        serve::Ticket t =
            server.submit(questions[qi++ % questions.size()].data());
        if (t.accepted())
            futures.push_back(std::move(t.answer));
    }
    server.shutdown();
    for (auto &f : futures)
        f.get();
    const double makespan =
        std::chrono::duration<double>(Clock::now() - t0).count();

    const serve::LatencySnapshot s = server.snapshot();
    out.completed = s.completed;
    out.rejectedFull = s.rejectedFull;
    if (makespan > 0.0)
        out.throughputQps = double(s.completed) / makespan;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool smoke = args.flag("smoke");
    const size_t workers = args.sizeOpt("workers", 2);
    args.finish();

    bench::banner("Sharded vs replicated serving",
                  "Scatter/gather over a sharded KB against "
                  "per-worker full-KB replication at fixed cores.");

    const size_t ns = smoke ? 1024 : 8192;
    const size_t ed = smoke ? 32 : 64;
    const size_t burst_rounds = smoke ? 4 : 24;
    const double window = smoke ? 0.2 : 1.0;
    const size_t max_batch = 8;

    const core::KnowledgeBase kb = buildKb(ns, ed);
    const std::vector<std::vector<float>> questions =
        makeQuestions(64, ed, 7);

    core::EngineConfig ecfg;
    ecfg.chunkSize = std::min<size_t>(512, ns);
    ecfg.threads = 0;
    ecfg.streaming = true;

    // Single-pass capacity, for scaling the open-loop rate.
    std::vector<float> uflat(max_batch * ed), oflat(max_batch * ed);
    for (size_t i = 0; i < max_batch; ++i)
        std::memcpy(uflat.data() + i * ed, questions[i].data(),
                    ed * sizeof(float));
    double pass_seconds;
    {
        core::ColumnEngine ref(kb, ecfg);
        ref.inferBatch(uflat.data(), max_batch, oflat.data());
        std::vector<double> t(smoke ? 3 : 7);
        Timer timer;
        for (double &s : t) {
            timer.reset();
            ref.inferBatch(uflat.data(), max_batch, oflat.data());
            s = timer.seconds();
        }
        std::sort(t.begin(), t.end());
        pass_seconds = t[t.size() / 2];
    }
    const double rate = 0.9 * double(max_batch) / pass_seconds;

    std::vector<size_t> shard_counts =
        smoke ? std::vector<size_t>{2} : std::vector<size_t>{2, 4, 8};

    std::vector<ModeResult> modes;
    modes.push_back({"replicated", 0, {}, {}, 0.0, 0, 0, 0.0, 0.0});
    for (size_t s : shard_counts)
        modes.push_back({"sharded[" + std::to_string(s) + "]", s, {},
                         {}, 0.0, 0, 0, 0.0, 0.0});

    // Engine-level reference outputs for the equivalence column: one
    // full-KB engine whose group decomposition matches each shard
    // count (see sharded_engine.hh).
    for (ModeResult &m : modes) {
        serve::LiveServerConfig lcfg;
        lcfg.maxBatch = max_batch;
        lcfg.batchTimeout = 0.5e-3;
        lcfg.workers = workers;
        lcfg.shards = m.shards;
        lcfg.queueCapacity = 4096;
        lcfg.engine = ecfg;
        lcfg.histogramMaxSeconds = 4.0;

        if (m.shards > 0) {
            core::ShardedKnowledgeBase skb(kb, ecfg.chunkSize,
                                           m.shards);
            core::EngineConfig scfg = ecfg;
            scfg.threads = workers;
            core::ShardedEngine eng(skb, scfg);
            core::EngineConfig rcfg = ecfg;
            rcfg.scheduleGroups = skb.shardCount();
            core::ColumnEngine ref(kb, rcfg);
            std::vector<float> o_sharded(max_batch * ed);
            std::vector<float> o_ref(max_batch * ed);
            eng.inferBatch(uflat.data(), max_batch, o_sharded.data());
            ref.inferBatch(uflat.data(), max_batch, o_ref.data());
            for (size_t i = 0; i < o_ref.size(); ++i)
                m.maxAbsDiff = std::max(
                    m.maxAbsDiff,
                    double(std::fabs(o_sharded[i] - o_ref[i])));
            std::vector<double> t(smoke ? 3 : 7);
            Timer timer;
            for (double &s : t) {
                timer.reset();
                eng.inferBatch(uflat.data(), max_batch,
                               o_sharded.data());
                s = timer.seconds();
            }
            std::sort(t.begin(), t.end());
            m.directBatchSeconds = t[t.size() / 2];
        } else {
            m.directBatchSeconds = pass_seconds;
        }

        {
            serve::LiveServer server(kb, lcfg);
            runBursts(server, burst_rounds, 2 * max_batch, questions,
                      m);
        }
        {
            serve::LiveServer server(kb, lcfg);
            runThroughput(server, rate, window, questions, m);
        }
    }

    stats::Table table({"mode", "burst e2e p50 (ms)",
                        "burst e2e mean (ms)", "burst svc p50 (ms)",
                        "open-loop q/s", "direct batch (ms)",
                        "max|diff|"});
    for (const ModeResult &m : modes) {
        table.addRow({m.label, stats::Table::num(m.burstE2e.p50 * 1e3, 3),
                      stats::Table::num(m.burstE2e.mean * 1e3, 3),
                      stats::Table::num(m.burstService.p50 * 1e3, 3),
                      stats::Table::num(m.throughputQps, 0),
                      stats::Table::num(m.directBatchSeconds * 1e3, 3),
                      stats::Table::num(m.maxAbsDiff, 10)});
    }
    table.print();

    bench::JsonWriter json(
        bench::benchJsonPath("BENCH_sharding.json"));
    json.beginObject();
    json.key("kb");
    json.beginObject();
    json.field("ns", ns);
    json.field("ed", ed);
    json.endObject();
    json.field("workers", workers);
    json.field("max_batch", max_batch);
    json.field("burst_rounds", burst_rounds);
    json.field("open_loop_rate_qps", rate);
    json.field("single_pass_seconds", pass_seconds);
    json.key("modes");
    json.beginArray();
    for (const ModeResult &m : modes) {
        json.beginObject();
        json.field("mode", m.label.c_str());
        json.field("shards", m.shards);
        json.key("burst_end_to_end_seconds");
        json.beginObject();
        json.field("mean", m.burstE2e.mean);
        json.field("p50", m.burstE2e.p50);
        json.field("p95", m.burstE2e.p95);
        json.endObject();
        json.key("burst_service_seconds");
        json.beginObject();
        json.field("mean", m.burstService.mean);
        json.field("p50", m.burstService.p50);
        json.field("p95", m.burstService.p95);
        json.endObject();
        json.key("open_loop");
        json.beginObject();
        json.field("throughput_qps", m.throughputQps);
        json.field("completed", size_t(m.completed));
        json.field("rejected_full", size_t(m.rejectedFull));
        json.endObject();
        json.field("direct_batch_seconds", m.directBatchSeconds);
        json.field("max_abs_diff_vs_reference", m.maxAbsDiff);
        json.endObject();
    }
    json.endArray();
    json.endObject();

    std::printf("\nwrote %s (%zu modes)\n", json.path().c_str(),
                modes.size());
    std::printf("reading: both modes stream the full KB once per "
                "batch, so saturated throughput matches; sharded "
                "scatter/gather serves one batch across all workers "
                "instead of timeslicing concurrent batches, which is "
                "the per-question latency win. max|diff| is 0 by the "
                "chunk-aligned merge-exactness guarantee.\n");
    return 0;
}
