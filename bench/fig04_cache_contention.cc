/**
 * @file
 * Reproduces paper Figure 4: "Performance degradation of inference
 * threads due to co-executed embedding threads."
 *
 * Inference and embedding access streams are interleaved into one
 * shared LLC; the inference slowdown is reported relative to the
 * 1-embedding-thread case for several MemNN scales, plus the two
 * isolation remedies (cache bypassing, dedicated embedding cache).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "sim/contention.hh"
#include "stats/table.hh"

using namespace mnnfast;

namespace {

sim::ContentionParams
baseParams(size_t working_set)
{
    sim::ContentionParams p;
    p.llc.sizeBytes = 8ull << 20;
    p.llc.associativity = 16;
    p.inferenceWorkingSet = working_set;
    p.embeddingTableBytes = 512ull << 20;
    p.embeddingRowBytes = 48 * 4;
    p.embeddingRate = 0.08;
    p.rounds = 8;
    return p;
}

} // namespace

int
main()
{
    bench::banner("Figure 4: inference slowdown under co-running "
                  "embedding threads",
                  "Values are relative performance vs. the 1-embedding-"
                  "thread case (1.00 = no extra degradation). Larger "
                  "MemNN scales keep a bigger working set and suffer "
                  "more.");

    struct Scale
    {
        const char *name;
        size_t workingSet;
    };
    const Scale scales[] = {
        {"small (ed=32, ws=2MB)", 2ull << 20},
        {"medium (ed=64, ws=4MB)", 4ull << 20},
        {"large (ed=128, ws=6MB)", 6ull << 20},
    };
    const size_t thread_counts[] = {1, 2, 4, 8};

    stats::Table table({"MemNN scale", "1 thr", "2 thr", "4 thr",
                        "8 thr", "hit-rate @8"});
    for (const Scale &s : scales) {
        std::vector<std::string> row{s.name};
        double ref = 0.0;
        double hit8 = 0.0;
        for (size_t t : thread_counts) {
            auto p = baseParams(s.workingSet);
            p.embeddingThreads = t;
            const auto r = sim::simulateContention(p);
            if (t == 1)
                ref = r.inferenceCyclesPerRound;
            row.push_back(
                stats::Table::num(ref / r.inferenceCyclesPerRound, 3));
            if (t == 8)
                hit8 = r.inferenceHitRate;
        }
        row.push_back(stats::Table::num(hit8, 3));
        table.addRow(std::move(row));
    }
    table.print();

    // Remedies at the worst point (large scale, 8 embedding threads).
    std::printf("\nisolation remedies (large scale, 8 embedding "
                "threads; slowdown vs. running alone):\n");
    for (auto policy : {sim::EmbeddingPolicy::Shared,
                        sim::EmbeddingPolicy::Bypass,
                        sim::EmbeddingPolicy::Dedicated}) {
        auto p = baseParams(6ull << 20);
        p.embeddingThreads = 8;
        p.policy = policy;
        const auto r = sim::simulateContention(p);
        const char *name =
            policy == sim::EmbeddingPolicy::Shared ? "shared LLC"
            : policy == sim::EmbeddingPolicy::Bypass
                ? "cache bypassing"
                : "embedding cache";
        std::printf("  %-16s %.3fx slowdown (inference hit rate %.3f)\n",
                    name, r.slowdown, r.inferenceHitRate);
    }
    return 0;
}
