/**
 * @file
 * Reproduces paper Figure 10: "Scalability of column-based algorithm
 * on CPU."
 *
 *  (a) the column-based algorithm without streaming still saturates
 *      (later than the baseline) as channels shrink;
 *  (b)/(c) with data streaming the speedup tracks the ideal line —
 *      streamed prefetches hide the demand-miss stalls and run at
 *      full DRAM bandwidth.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/cpu_system.hh"
#include "sim/traffic.hh"
#include "stats/table.hh"

using namespace mnnfast;

namespace {

void
printScaling(const char *title, const sim::TrafficResult &traffic)
{
    std::printf("%s\n", title);
    stats::Table table({"threads", "1-channel", "2-channel",
                        "4-channel", "ideal"});
    for (size_t t : {1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20}) {
        std::vector<std::string> row{std::to_string(t)};
        for (size_t ch : {1, 2, 4}) {
            sim::CpuSystemConfig cfg;
            cfg.dram.channels = ch;
            sim::CpuSystemModel model(cfg);
            row.push_back(
                stats::Table::num(model.speedup(traffic, t), 2));
        }
        row.push_back(stats::Table::num(double(t), 2));
        table.addRow(std::move(row));
    }
    table.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Figure 10: scalability of the column-based "
                  "algorithm on CPU",
                  "Speedup vs. threads (normalized to 1 thread of the "
                  "same configuration) for 1/2/4 DRAM channels.");

    sim::WorkloadParams wp;
    wp.ns = 1 << 17;
    wp.ed = 48;
    wp.nq = 32;
    wp.chunkSize = 1000;
    sim::CacheConfig llc;
    llc.sizeBytes = 30ull << 20;
    llc.associativity = 20;

    const auto base =
        sim::simulateDataflow(sim::Dataflow::Baseline, wp, llc);
    const auto col =
        sim::simulateDataflow(sim::Dataflow::Column, wp, llc);
    const auto str =
        sim::simulateDataflow(sim::Dataflow::ColumnStreaming, wp, llc);

    printScaling("(reference) baseline dataflow:", base);
    printScaling("(a) column-based, no streaming:", col);
    printScaling("(b/c) column-based with data streaming:", str);

    // Headline: streaming reaches (near-)ideal scaling on 4 channels.
    sim::CpuSystemConfig cfg4;
    cfg4.dram.channels = 4;
    sim::CpuSystemModel m4(cfg4);
    std::printf("at 20 threads / 4 channels: baseline %.2fx, column "
                "%.2fx, column+streaming %.2fx (ideal 20x)\n",
                m4.speedup(base, 20), m4.speedup(col, 20),
                m4.speedup(str, 20));
    return 0;
}
