/**
 * @file
 * Live-vs-simulated serving cross-validation (DESIGN.md §8).
 *
 * The QA-server simulator predicts throughput/latency from the affine
 * service model t(n) = base + n * slope; the live runtime serves real
 * requests through real ColumnEngines. This harness closes the loop:
 *
 *  1. build a knowledge base and calibrate the affine model on the
 *     exact engine configuration the live workers use
 *     (serve::calibrateServiceTimes);
 *  2. for each arrival rate x batching policy, drive the live server
 *     with a deterministic open-loop Poisson workload (seeded
 *     exponential gaps, submissions never wait for completions);
 *  3. replay the same (rate, policy, workers, window) through the
 *     discrete-event simulator with the calibrated coefficients;
 *  4. report live and simulated throughput/latency side by side with
 *     the live/sim throughput ratio — the headline artifact.
 *
 * Emits BENCH_serving.json (path overridable via MNNFAST_BENCH_JSON).
 *
 * Flags:
 *   --smoke        tiny KB, short window, 2 points (CI leak check)
 *   --duration S   arrival window per point (default 1.0)
 *   --workers N    live + simulated worker count (default 1)
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "bench_util.hh"
#include "core/column_engine.hh"
#include "serve/calibrate.hh"
#include "serve/live_server.hh"
#include "serve/qa_server.hh"
#include "stats/table.hh"
#include "util/rng.hh"

using namespace mnnfast;

namespace {

struct Policy
{
    const char *label;
    size_t maxBatch;
    double batchTimeout; ///< seconds
};

struct PointResult
{
    double arrivalRate = 0.0;
    Policy policy{};
    serve::LatencySnapshot live;
    double liveThroughput = 0.0;
    double liveMakespan = 0.0;
    serve::ServerStats sim;
    double throughputRatio = 0.0; ///< live / sim
};

core::KnowledgeBase
buildKb(size_t ns, size_t ed)
{
    core::KnowledgeBase kb(ed);
    kb.reserve(ns);
    XorShiftRng rng(11);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-0.5f, 0.5f);
            b[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(a.data(), b.data());
    }
    return kb;
}

/** Pre-generated question pool; submissions cycle through it. */
std::vector<std::vector<float>>
makeQuestions(size_t count, size_t ed, uint64_t seed)
{
    XorShiftRng rng(seed);
    std::vector<std::vector<float>> qs(count);
    for (auto &q : qs) {
        q.resize(ed);
        for (float &x : q)
            x = rng.uniformRange(-1.f, 1.f);
    }
    return qs;
}

/**
 * Open-loop load: submit at seeded exponential inter-arrival gaps for
 * `duration` seconds, never waiting on completions, then drain via
 * shutdown(). Returns the makespan (window start -> full drain).
 */
double
runOpenLoopLoad(serve::LiveServer &server, double rate, double duration,
                const std::vector<std::vector<float>> &questions,
                uint64_t seed)
{
    using Clock = std::chrono::steady_clock;
    XorShiftRng rng(seed);
    std::vector<std::future<serve::Answer>> futures;
    futures.reserve(static_cast<size_t>(rate * duration * 1.2) + 16);

    const auto t0 = Clock::now();
    const auto window_end =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(duration));
    auto next = t0;
    size_t qi = 0;
    for (;;) {
        double u = 0.0;
        while (u == 0.0)
            u = rng.uniform();
        const double gap = -std::log(u) / rate;
        next += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(gap));
        if (next > window_end)
            break;
        std::this_thread::sleep_until(next);
        serve::Ticket t =
            server.submit(questions[qi++ % questions.size()].data());
        if (t.accepted())
            futures.push_back(std::move(t.answer));
    }
    server.shutdown();

    // shutdown() guarantees readiness; get() additionally validates
    // that no future was left unset or set twice.
    for (auto &f : futures)
        f.get();
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

void
quantilesJson(bench::JsonWriter &json, const char *name,
              const serve::LatencyQuantiles &q)
{
    json.key(name);
    json.beginObject();
    json.field("p50", q.p50);
    json.field("p95", q.p95);
    json.field("p99", q.p99);
    json.field("mean", q.mean);
    json.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool smoke = args.flag("smoke");
    double duration = args.floatOpt("duration", 1.0);
    const size_t workers = args.sizeOpt("workers", 1);
    args.finish();

    bench::banner("Live serving cross-validation",
                  "Open-loop load against the live runtime vs the "
                  "calibrated discrete-event simulator.");

    const size_t ns = smoke ? 512 : 8192;
    const size_t ed = smoke ? 32 : 64;
    if (smoke)
        duration = std::min(duration, 0.25);

    const core::KnowledgeBase kb = buildKb(ns, ed);

    core::EngineConfig ecfg;
    ecfg.chunkSize = std::min<size_t>(512, ns);
    ecfg.threads = 0; // workers are the parallelism axis
    ecfg.streaming = true;

    // Calibrate the affine service model on the exact engine the live
    // workers will run.
    core::ColumnEngine calib_engine(kb, ecfg);
    const serve::ServiceTimeFit fit = serve::calibrateServiceTimes(
        calib_engine, ed, /*smallBatch=*/1, /*largeBatch=*/16,
        /*repeats=*/smoke ? 3 : 7);
    std::printf("calibration: base %.1f us + %.2f us/question "
                "(t(1)=%.1f us, t(16)=%.1f us)\n\n",
                fit.batchBaseSeconds * 1e6,
                fit.perQuestionSeconds * 1e6, fit.smallSeconds * 1e6,
                fit.largeSeconds * 1e6);

    // Arrival rates bracket the serial capacity and approach the
    // batched capacity, so the sweep shows underload, the regime where
    // only batching survives, and near-saturation.
    const double t1 = fit.batchBaseSeconds + fit.perQuestionSeconds;
    const double cap1 = 1.0 / std::max(t1, 1e-7);
    const double t16 =
        fit.batchBaseSeconds + 16.0 * fit.perQuestionSeconds;
    const double cap16 = 16.0 / std::max(t16, 1e-7);
    std::vector<double> rates;
    if (smoke) {
        // Low-rate: the CI smoke exercises admission, batching,
        // drain and shutdown, not saturation.
        rates = {std::min(2000.0, std::max(50.0, 0.3 * cap1))};
    } else {
        rates = {std::max(50.0, 0.4 * cap1),
                 std::max(100.0, 1.2 * cap1),
                 std::max(200.0, 0.8 * cap16)};
    }

    const Policy policies[] = {
        {"serial", 1, 0.0},
        {"batch16", 16, 1.0e-3},
    };

    const std::vector<std::vector<float>> questions =
        makeQuestions(32, ed, 21);

    std::vector<PointResult> points;
    for (const Policy &pol : policies) {
        for (double rate : rates) {
            serve::LiveServerConfig lcfg;
            lcfg.maxBatch = pol.maxBatch;
            lcfg.batchTimeout = pol.batchTimeout;
            lcfg.workers = workers;
            lcfg.queueCapacity = 4096;
            lcfg.engine = ecfg;
            // Deep-overload latencies reach seconds (the full queue
            // drains at capacity); widen the histograms so the tail
            // quantiles are measured, not clamped.
            lcfg.histogramMaxSeconds = 4.0;
            serve::LiveServer server(kb, lcfg);

            PointResult pr;
            pr.arrivalRate = rate;
            pr.policy = pol;
            pr.liveMakespan = runOpenLoopLoad(server, rate, duration,
                                              questions, 1234);
            pr.live = server.snapshot();
            if (pr.liveMakespan > 0.0)
                pr.liveThroughput =
                    static_cast<double>(pr.live.completed)
                    / pr.liveMakespan;

            if (pr.live.completed + pr.live.rejected
                != pr.live.arrived) {
                std::fprintf(stderr,
                             "conservation violated: %llu arrived, "
                             "%llu completed, %llu rejected\n",
                             (unsigned long long)pr.live.arrived,
                             (unsigned long long)pr.live.completed,
                             (unsigned long long)pr.live.rejected);
                return 1;
            }

            serve::ServerConfig scfg;
            scfg.arrivalRate = rate;
            scfg.maxBatch = pol.maxBatch;
            // The event-driven simulator dispatches on the timeout
            // *event*; a zero timeout models the live runtime's
            // immediate dispatch.
            scfg.batchTimeout = pol.batchTimeout;
            scfg.workers = workers;
            scfg.simSeconds = duration;
            scfg.seed = 1234;
            fit.apply(scfg);
            pr.sim = serve::simulateServer(scfg);
            if (pr.sim.throughputQps > 0.0)
                pr.throughputRatio =
                    pr.liveThroughput / pr.sim.throughputQps;
            points.push_back(std::move(pr));
        }
    }

    stats::Table table({"policy", "rate (q/s)", "live q/s", "sim q/s",
                        "ratio", "live p50 (ms)", "sim p50 (ms)",
                        "live p99 (ms)", "sim p99 (ms)", "mean batch",
                        "rejected"});
    for (const PointResult &p : points) {
        table.addRow({p.policy.label,
                      stats::Table::num(p.arrivalRate, 0),
                      stats::Table::num(p.liveThroughput, 0),
                      stats::Table::num(p.sim.throughputQps, 0),
                      stats::Table::num(p.throughputRatio, 3),
                      stats::Table::num(p.live.endToEnd.p50 * 1e3, 3),
                      stats::Table::num(p.sim.p50Latency * 1e3, 3),
                      stats::Table::num(p.live.endToEnd.p99 * 1e3, 3),
                      stats::Table::num(p.sim.p99Latency * 1e3, 3),
                      stats::Table::num(p.live.meanBatchSize, 2),
                      std::to_string(p.live.rejected)});
    }
    table.print();

    bench::JsonWriter json(
        bench::benchJsonPath("BENCH_serving.json"));
    json.beginObject();
    json.key("kb");
    json.beginObject();
    json.field("ns", ns);
    json.field("ed", ed);
    json.endObject();
    json.field("workers", workers);
    json.field("duration_seconds", duration);
    json.key("calibration");
    json.beginObject();
    json.field("batch_base_seconds", fit.batchBaseSeconds);
    json.field("per_question_seconds", fit.perQuestionSeconds);
    json.field("t_small_seconds", fit.smallSeconds);
    json.field("t_large_seconds", fit.largeSeconds);
    json.endObject();
    json.key("points");
    json.beginArray();
    for (const PointResult &p : points) {
        json.beginObject();
        json.field("policy", p.policy.label);
        json.field("max_batch", p.policy.maxBatch);
        json.field("batch_timeout_seconds", p.policy.batchTimeout);
        json.field("arrival_rate", p.arrivalRate);
        json.key("live");
        json.beginObject();
        json.field("throughput_qps", p.liveThroughput);
        json.field("makespan_seconds", p.liveMakespan);
        json.field("arrived", size_t(p.live.arrived));
        json.field("completed", size_t(p.live.completed));
        json.field("rejected", size_t(p.live.rejected));
        json.field("batches", size_t(p.live.batches));
        json.field("mean_batch_size", p.live.meanBatchSize);
        quantilesJson(json, "queue_wait_seconds", p.live.queueWait);
        quantilesJson(json, "service_seconds", p.live.service);
        quantilesJson(json, "end_to_end_seconds", p.live.endToEnd);
        json.endObject();
        json.key("sim");
        json.beginObject();
        json.field("throughput_qps", p.sim.throughputQps);
        json.field("p50_seconds", p.sim.p50Latency);
        json.field("p95_seconds", p.sim.p95Latency);
        json.field("p99_seconds", p.sim.p99Latency);
        json.field("mean_batch_size", p.sim.meanBatchSize);
        json.field("utilization", p.sim.utilization);
        json.endObject();
        json.field("throughput_ratio_live_over_sim",
                   p.throughputRatio);
        json.endObject();
    }
    json.endArray();
    json.endObject();

    std::printf("\nwrote %s (%zu points)\n", json.path().c_str(),
                points.size());
    std::printf("reading: the live/sim throughput ratio validates the "
                "affine service model against wall-clock reality; "
                "underloaded points track the arrival rate in both "
                "worlds, overloaded points expose where real "
                "scheduling, queue backpressure and timer overheads "
                "depart from the model\n");
    return 0;
}
