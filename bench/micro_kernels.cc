/**
 * @file
 * Supporting microbenchmarks (google-benchmark): the BLAS kernels the
 * engines are built on, and the engines themselves at small scale.
 * Not a paper figure — these guard against kernel-level regressions
 * that would invalidate the Fig. 9 measurements.
 *
 * Each dispatched kernel is benchmarked next to its scalar reference
 * (the `*Scalar` variants call blas::scalar:: directly, which is the
 * seed implementation verbatim), so one run quantifies the SIMD
 * speedup per kernel. Results default to machine-readable JSON in
 * ./BENCH_kernels.json; pass --benchmark_out=... to override.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "blas/kernels.hh"
#include "core/baseline_engine.hh"
#include "core/column_engine.hh"
#include "core/knowledge_base.hh"
#include "runtime/kernel_tuner.hh"
#include "util/bf16.hh"
#include "util/rng.hh"

using namespace mnnfast;

namespace {

std::vector<float>
randomVec(size_t n, uint64_t seed)
{
    XorShiftRng rng(seed);
    std::vector<float> v(n);
    for (float &x : v)
        x = rng.uniformRange(-1.f, 1.f);
    return v;
}

void
BM_Dot(benchmark::State &state)
{
    const size_t n = state.range(0);
    const auto x = randomVec(n, 1), y = randomVec(n, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(blas::dot(x.data(), y.data(), n));
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dot)->Arg(48)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_DotScalar(benchmark::State &state)
{
    const size_t n = state.range(0);
    const auto x = randomVec(n, 1), y = randomVec(n, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            blas::scalar::dot(x.data(), y.data(), n));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DotScalar)->Arg(48)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_DotBatch(benchmark::State &state)
{
    const size_t rows = state.range(0), d = 1024;
    const auto x = randomVec(d, 1);
    const auto m = randomVec(rows * d, 2);
    std::vector<float> out(rows);
    for (auto _ : state) {
        blas::dotBatch(x.data(), m.data(), rows, d, d, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * rows * d);
}
BENCHMARK(BM_DotBatch)->Arg(64)->Arg(1000);

void
BM_DotBatchMulti(benchmark::State &state)
{
    // Query-blocked inner products: rows x queries at d=256 (the
    // engine's hot shape). Items processed counts every (q, r) dot so
    // throughput is directly comparable to BM_DotBatch per query.
    const size_t rows = state.range(0), nq = state.range(1), d = 256;
    const auto x = randomVec(nq * d, 1);
    const auto m = randomVec(rows * d, 2);
    std::vector<float> out(nq * rows);
    for (auto _ : state) {
        blas::dotBatchMulti(x.data(), nq, d, m.data(), rows, d, d,
                            out.data(), rows);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * nq * rows * d);
}
BENCHMARK(BM_DotBatchMulti)
    ->Args({512, 1})
    ->Args({512, 4})
    ->Args({512, 16});

void
BM_WeightedSumSkipMulti(benchmark::State &state)
{
    // Query-blocked weighted sum: each kept row is loaded once and
    // accumulated into every query's output.
    const size_t rows = state.range(0), nq = state.range(1), d = 256;
    const float threshold = state.range(2) != 0 ? 0.1f : 0.f;
    auto e = randomVec(nq * rows, 3);
    for (float &v : e)
        v = v * 0.5f + 0.5f; // positive exp-like weights
    const auto m = randomVec(rows * d, 4);
    std::vector<float> acc(nq * d, 0.f);
    std::vector<double> s(nq);
    for (auto _ : state) {
        std::fill(s.begin(), s.end(), 0.0);
        uint64_t kept = 0, skipped = 0;
        blas::weightedSumSkipMulti(e.data(), nq, rows, m.data(), rows,
                                   d, d, threshold, s.data(), acc.data(),
                                   d, kept, skipped);
        benchmark::DoNotOptimize(acc.data());
        benchmark::DoNotOptimize(s.data());
    }
    state.SetItemsProcessed(state.iterations() * nq * rows * d);
}
BENCHMARK(BM_WeightedSumSkipMulti)
    ->Args({512, 1, 0})
    ->Args({512, 16, 0})
    ->Args({512, 16, 1});

std::vector<uint16_t>
randomVecBf16(size_t n, uint64_t seed)
{
    const auto f = randomVec(n, seed);
    std::vector<uint16_t> v(n);
    for (size_t i = 0; i < n; ++i)
        v[i] = bf16FromFloat(f[i]);
    return v;
}

void
BM_DotBatchMultiBf16(benchmark::State &state)
{
    // bf16-storage counterpart of BM_DotBatchMulti at the same shape:
    // the rows stream at half the bytes and widen in-register.
    const size_t rows = state.range(0), nq = state.range(1), d = 256;
    const auto x = randomVec(nq * d, 1);
    const auto m = randomVecBf16(rows * d, 2);
    std::vector<float> out(nq * rows);
    for (auto _ : state) {
        blas::dotBatchMultiBf16(x.data(), nq, d, m.data(), rows, d, d,
                                out.data(), rows);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * nq * rows * d);
}
BENCHMARK(BM_DotBatchMultiBf16)
    ->Args({512, 1})
    ->Args({512, 4})
    ->Args({512, 16});

void
BM_WeightedSumSkipMultiBf16(benchmark::State &state)
{
    const size_t rows = state.range(0), nq = state.range(1), d = 256;
    const float threshold = state.range(2) != 0 ? 0.1f : 0.f;
    auto e = randomVec(nq * rows, 3);
    for (float &v : e)
        v = v * 0.5f + 0.5f; // positive exp-like weights
    const auto m = randomVecBf16(rows * d, 4);
    std::vector<float> acc(nq * d, 0.f);
    std::vector<double> s(nq);
    for (auto _ : state) {
        std::fill(s.begin(), s.end(), 0.0);
        uint64_t kept = 0, skipped = 0;
        blas::weightedSumSkipMultiBf16(e.data(), nq, rows, m.data(),
                                       rows, d, d, threshold, s.data(),
                                       acc.data(), d, kept, skipped);
        benchmark::DoNotOptimize(acc.data());
        benchmark::DoNotOptimize(s.data());
    }
    state.SetItemsProcessed(state.iterations() * nq * rows * d);
}
BENCHMARK(BM_WeightedSumSkipMultiBf16)
    ->Args({512, 1, 0})
    ->Args({512, 16, 0})
    ->Args({512, 16, 1});

std::vector<int8_t>
randomVecI8(size_t n, uint64_t seed)
{
    XorShiftRng rng(seed);
    std::vector<int8_t> v(n);
    for (int8_t &x : v)
        x = static_cast<int8_t>(static_cast<int>(rng.below(256)) - 128);
    return v;
}

void
BM_DotBatchMultiI8(benchmark::State &state)
{
    // int8-storage counterpart of BM_DotBatchMulti at the same shape:
    // the rows stream at a quarter of the fp32 bytes and dequantize
    // in-register via the factored affine form (DESIGN.md §10).
    const size_t rows = state.range(0), nq = state.range(1), d = 256;
    const auto x = randomVec(nq * d, 1);
    const auto m = randomVecI8(rows * d, 2);
    std::vector<float> out(nq * rows);
    for (auto _ : state) {
        blas::dotBatchMultiI8(x.data(), nq, d, m.data(), rows, d, d,
                              0.0123f, -0.456f, out.data(), rows);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * nq * rows * d);
}
BENCHMARK(BM_DotBatchMultiI8)
    ->Args({512, 1})
    ->Args({512, 4})
    ->Args({512, 16});

void
BM_WeightedSumSkipMultiI8(benchmark::State &state)
{
    const size_t rows = state.range(0), nq = state.range(1), d = 256;
    const float threshold = state.range(2) != 0 ? 0.1f : 0.f;
    auto e = randomVec(nq * rows, 3);
    for (float &v : e)
        v = v * 0.5f + 0.5f; // positive exp-like weights
    const auto m = randomVecI8(rows * d, 4);
    std::vector<float> acc(nq * d, 0.f);
    std::vector<double> s(nq);
    for (auto _ : state) {
        std::fill(s.begin(), s.end(), 0.0);
        uint64_t kept = 0, skipped = 0;
        blas::weightedSumSkipMultiI8(e.data(), nq, rows, m.data(),
                                     rows, d, d, 0.0123f, -0.456f,
                                     threshold, s.data(), acc.data(),
                                     d, kept, skipped);
        benchmark::DoNotOptimize(acc.data());
        benchmark::DoNotOptimize(s.data());
    }
    state.SetItemsProcessed(state.iterations() * nq * rows * d);
}
BENCHMARK(BM_WeightedSumSkipMultiI8)
    ->Args({512, 1, 0})
    ->Args({512, 16, 0})
    ->Args({512, 16, 1});

void
BM_WeightedSumSkip(benchmark::State &state)
{
    // threshold chosen against uniform exp values so roughly the
    // paper's skip regime (most rows dropped) is exercised.
    const size_t rows = state.range(0), d = 1024;
    const float threshold = state.range(1) != 0 ? 0.1f : 0.f;
    auto e = randomVec(rows, 3);
    for (float &v : e)
        v = v * 0.5f + 0.5f; // positive exp-like weights
    const auto m = randomVec(rows * d, 4);
    std::vector<float> acc(d, 0.f);
    for (auto _ : state) {
        double s = 0.0;
        uint64_t kept = 0, skipped = 0;
        blas::weightedSumSkip(e.data(), m.data(), rows, d, d, threshold,
                              s, acc.data(), kept, skipped);
        benchmark::DoNotOptimize(acc.data());
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(state.iterations() * rows * d);
}
BENCHMARK(BM_WeightedSumSkip)->Args({1000, 0})->Args({1000, 1});

void
BM_ExpInplace(benchmark::State &state)
{
    const size_t n = state.range(0);
    const auto x = randomVec(n, 5);
    std::vector<float> work(n);
    for (auto _ : state) {
        blas::copy(x.data(), work.data(), n);
        blas::expInplace(work.data(), n);
        benchmark::DoNotOptimize(work.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExpInplace)->Arg(1000)->Arg(100000);

void
BM_Axpy(benchmark::State &state)
{
    const size_t n = state.range(0);
    const auto x = randomVec(n, 3);
    auto y = randomVec(n, 4);
    for (auto _ : state) {
        blas::axpy(1.1f, x.data(), y.data(), n);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Axpy)->Arg(48)->Arg(4096);

void
BM_Gemv(benchmark::State &state)
{
    const size_t rows = state.range(0), cols = 48;
    const auto a = randomVec(rows * cols, 5);
    const auto x = randomVec(cols, 6);
    std::vector<float> y(rows);
    for (auto _ : state) {
        blas::gemv(a.data(), rows, cols, x.data(), y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_Gemv)->Arg(1000)->Arg(10000);

void
BM_Gemm(benchmark::State &state)
{
    const size_t m = state.range(0), k = 48, n = 48;
    const auto a = randomVec(m * k, 7);
    const auto b = randomVec(k * n, 8);
    std::vector<float> c(m * n);
    for (auto _ : state) {
        blas::gemm(a.data(), b.data(), c.data(), m, k, n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(512);

// gemm with the embedding-sized inner dimension (d=1024): the shape
// the trainer's projection layers stress.
void
BM_Gemm1024(benchmark::State &state)
{
    const size_t m = 64, k = 1024, n = 64;
    const auto a = randomVec(m * k, 7);
    const auto b = randomVec(k * n, 8);
    std::vector<float> c(m * n);
    for (auto _ : state) {
        blas::gemm(a.data(), b.data(), c.data(), m, k, n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
BENCHMARK(BM_Gemm1024);

void
BM_Gemm1024Scalar(benchmark::State &state)
{
    const size_t m = 64, k = 1024, n = 64;
    const auto a = randomVec(m * k, 7);
    const auto b = randomVec(k * n, 8);
    std::vector<float> c(m * n);
    for (auto _ : state) {
        blas::scalar::gemm(a.data(), b.data(), c.data(), m, k, n,
                           false);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
BENCHMARK(BM_Gemm1024Scalar);

void
BM_Softmax(benchmark::State &state)
{
    const size_t n = state.range(0);
    const auto x = randomVec(n, 9);
    std::vector<float> work(n);
    for (auto _ : state) {
        blas::copy(x.data(), work.data(), n);
        blas::softmax(work.data(), n);
        benchmark::DoNotOptimize(work.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Softmax)->Arg(1000)->Arg(100000);

core::KnowledgeBase &
sharedKb()
{
    static core::KnowledgeBase kb = [] {
        core::KnowledgeBase k(48);
        XorShiftRng rng(10);
        std::vector<float> a(48), b(48);
        for (size_t i = 0; i < 65536; ++i) {
            for (size_t e = 0; e < 48; ++e) {
                a[e] = rng.uniformRange(-0.3f, 0.3f);
                b[e] = rng.uniformRange(-0.3f, 0.3f);
            }
            k.addSentence(a.data(), b.data());
        }
        return k;
    }();
    return kb;
}

void
BM_BaselineEngine(benchmark::State &state)
{
    core::EngineConfig cfg;
    core::BaselineEngine engine(sharedKb(), cfg);
    const auto u = randomVec(48, 11);
    std::vector<float> o(48);
    for (auto _ : state) {
        engine.infer(u.data(), o.data());
        benchmark::DoNotOptimize(o.data());
    }
    state.SetItemsProcessed(state.iterations() * sharedKb().size());
}
BENCHMARK(BM_BaselineEngine);

void
BM_ColumnEngine(benchmark::State &state)
{
    core::EngineConfig cfg;
    cfg.chunkSize = state.range(0);
    cfg.streaming = state.range(1) != 0;
    core::ColumnEngine engine(sharedKb(), cfg);
    const auto u = randomVec(48, 12);
    std::vector<float> o(48);
    for (auto _ : state) {
        engine.infer(u.data(), o.data());
        benchmark::DoNotOptimize(o.data());
    }
    state.SetItemsProcessed(state.iterations() * sharedKb().size());
}
BENCHMARK(BM_ColumnEngine)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({100, 1})
    ->Args({10000, 1});

void
BM_MnnFastEngine(benchmark::State &state)
{
    core::EngineConfig cfg;
    cfg.chunkSize = 1000;
    cfg.streaming = true;
    cfg.skipThreshold = 0.1f;
    core::ColumnEngine engine(sharedKb(), cfg);
    const auto u = randomVec(48, 13);
    std::vector<float> o(48);
    for (auto _ : state) {
        engine.infer(u.data(), o.data());
        benchmark::DoNotOptimize(o.data());
    }
    state.SetItemsProcessed(state.iterations() * sharedKb().size());
}
BENCHMARK(BM_MnnFastEngine);

} // namespace

namespace {

/**
 * Splice the process-wide kernel-tuner table into the benchmark JSON
 * artifact as a top-level "kernel_tuner" key, keeping the file valid
 * JSON. First measures plans for the engine-relevant buckets (every
 * precision at the ed/nq points the serving engines warm) so the
 * exported table is populated even though the micro loops above call
 * the kernels directly. No-op under MNNFAST_NO_TUNER=1.
 */
void
appendTunerTable(const std::string &path)
{
    if (const char *env = std::getenv("MNNFAST_NO_TUNER"))
        if (env[0] && env[0] != '0')
            return;
    auto &tuner = runtime::KernelTuner::instance();
    for (const char *prec : {"f32", "bf16", "i8"})
        for (size_t ed : {size_t{64}, size_t{128}, size_t{256}})
            for (size_t nq : {size_t{1}, size_t{4}, size_t{16}})
                tuner.plan(prec, ed, nq);

    std::ifstream in(path);
    if (!in)
        return;
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    in.close();
    const size_t close = text.find_last_of('}');
    if (close == std::string::npos)
        return;
    std::string spliced = text.substr(0, close);
    // Trim trailing whitespace back to the last value before the brace.
    while (!spliced.empty() &&
           (spliced.back() == '\n' || spliced.back() == ' ' ||
            spliced.back() == '\t' || spliced.back() == '\r'))
        spliced.pop_back();
    spliced += ",\n  \"kernel_tuner\": ";
    spliced += tuner.exportJson();
    spliced += "\n}\n";
    std::ofstream out(path, std::ios::trunc);
    out << spliced;
}

} // namespace

/**
 * Like BENCHMARK_MAIN(), but defaults --benchmark_out to
 * ./BENCH_kernels.json (JSON format) so every run leaves a
 * machine-readable record (with the kernel-tuner table spliced in);
 * explicit --benchmark_out wins and is left untouched.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--benchmark_out", 15) == 0)
            has_out = true;
    std::string out_flag = "--benchmark_out=BENCH_kernels.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!has_out)
        appendTunerTable("BENCH_kernels.json");
    return 0;
}
