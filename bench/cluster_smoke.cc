/**
 * @file
 * Cross-process cluster smoke: fork one real ShardNode process per
 * shard, serve over TCP on 127.0.0.1 ephemeral ports, gather through
 * ClusterFrontEnd, and require the result to be bit-identical to the
 * in-process ShardedEngine over the same partition (DESIGN.md §12).
 *
 * This is the leg the loopback tests cannot cover: real sockets, real
 * process isolation, real byte order on the wire. It runs in CI
 * (tests/run_checks.sh) and exits nonzero on any divergence.
 *
 * Process model: fork() happens before any thread is spawned in the
 * parent (fork + threads do not mix); each child builds its shard KB
 * deterministically from the shared seed (no state is inherited
 * through the fork beyond the port-report pipe), listens on port 0,
 * writes the bound port up a pipe, then serves until a Shutdown frame.
 * The parent connects a ClusterFrontEnd over TcpTransport, compares,
 * shuts the nodes down, and reaps them.
 *
 * Two legs per run:
 *  - raw gather: one inferBatch through the front end, per precision;
 *  - served: the full serving stack — LiveServer admission queue and
 *    dynamic batcher dispatching through a pipelined (W=4)
 *    ClusterFrontEnd to the forked nodes — with every answer
 *    bit-compared against a per-question ShardedEngine reference and
 *    the admission ledger checked (arrived == completed + rejected,
 *    nothing failed).
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/column_engine.hh"
#include "core/knowledge_base.hh"
#include "core/sharded_engine.hh"
#include "core/sharded_knowledge_base.hh"
#include "net/cluster_frontend.hh"
#include "net/tcp_transport.hh"
#include "net/shard_node.hh"
#include "serve/live_server.hh"
#include "util/rng.hh"

using namespace mnnfast;

namespace {

constexpr size_t kSentences = 4096;
constexpr size_t kDim = 48;
constexpr size_t kQuestions = 6;
constexpr size_t kChunk = 256;
constexpr size_t kShards = 3;

core::KnowledgeBase
buildKb(core::Precision prec)
{
    core::KnowledgeBase kb(kDim, prec);
    kb.reserve(kSentences);
    XorShiftRng rng(23);
    std::vector<float> a(kDim), b(kDim);
    for (size_t i = 0; i < kSentences; ++i) {
        for (size_t e = 0; e < kDim; ++e) {
            a[e] = rng.uniformRange(-0.5f, 0.5f);
            b[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(a.data(), b.data());
    }
    return kb;
}

uint32_t
f32Bits(float v)
{
    uint32_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

/** Child body: serve shard `s` on an ephemeral port, report the port
 *  on `port_fd`, run until Shutdown. Never returns. */
[[noreturn]] void
childServe(size_t s, core::Precision prec, int port_fd)
{
    const core::KnowledgeBase kb = buildKb(prec);
    const core::ShardedKnowledgeBase skb(kb, kChunk, kShards);
    core::EngineConfig ecfg;
    ecfg.chunkSize = kChunk;

    net::TcpTransport transport;
    auto listener = transport.listen("127.0.0.1:0");
    if (!listener) {
        std::fprintf(stderr, "child %zu: listen failed\n", s);
        _exit(2);
    }
    auto *tcp = static_cast<net::TcpListener *>(listener.get());
    const uint16_t port = tcp->boundPort();
    if (write(port_fd, &port, sizeof port)
        != static_cast<ssize_t>(sizeof port)) {
        std::fprintf(stderr, "child %zu: port report failed\n", s);
        _exit(2);
    }
    ::close(port_fd);

    net::ShardNode node(skb.shard(s), ecfg,
                        static_cast<uint32_t>(s));
    node.serve(*listener);
    _exit(0);
}

/** Fork one ShardNode process per shard — before the parent spawns
 *  any thread — and fill `ccfg.replicas` from their reported ports. */
std::vector<pid_t>
forkNodes(core::Precision prec, net::ClusterConfig &ccfg)
{
    std::vector<pid_t> pids;
    std::vector<int> portFds;
    for (size_t s = 0; s < kShards; ++s) {
        int fds[2];
        if (pipe(fds) != 0)
            fatal("pipe failed");
        const pid_t pid = fork();
        if (pid < 0)
            fatal("fork failed");
        if (pid == 0) {
            ::close(fds[0]);
            childServe(s, prec, fds[1]);
        }
        ::close(fds[1]);
        pids.push_back(pid);
        portFds.push_back(fds[0]);
    }

    ccfg.requestTimeoutSeconds = 30.0;
    ccfg.connectTimeoutSeconds = 5.0;
    for (size_t s = 0; s < kShards; ++s) {
        uint16_t port = 0;
        if (read(portFds[s], &port, sizeof port)
            != static_cast<ssize_t>(sizeof port))
            fatal("child %zu never reported a port", s);
        ::close(portFds[s]);
        ccfg.replicas.push_back(
            {"127.0.0.1:" + std::to_string(port)});
    }
    return pids;
}

/** Reap the forked nodes; returns the abnormal-exit count. */
size_t
reapNodes(const std::vector<pid_t> &pids, const char *name)
{
    size_t abnormal = 0;
    for (pid_t pid : pids) {
        int status = 0;
        if (waitpid(pid, &status, 0) != pid)
            fatal("waitpid failed");
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr,
                         "%s: node process exited abnormally\n",
                         name);
            ++abnormal;
        }
    }
    return abnormal;
}

/** One precision's round trip; returns mismatched value count. */
size_t
runOnePrecision(core::Precision prec, const char *name)
{
    net::ClusterConfig ccfg;
    const std::vector<pid_t> pids = forkNodes(prec, ccfg);

    // Reference answer, fully in process.
    const core::KnowledgeBase kb = buildKb(prec);
    const core::ShardedKnowledgeBase skb(kb, kChunk, kShards);
    core::EngineConfig ecfg;
    ecfg.chunkSize = kChunk;
    core::ShardedEngine reference(skb, ecfg);

    XorShiftRng rng(31);
    std::vector<float> u(kQuestions * kDim);
    for (float &x : u)
        x = rng.uniformRange(-1.f, 1.f);
    std::vector<float> expect(kQuestions * kDim);
    std::vector<float> got(kQuestions * kDim);
    reference.inferBatch(u.data(), kQuestions, expect.data());

    size_t mismatches = 0;
    {
        net::TcpTransport transport;
        net::ClusterFrontEnd fe(transport, ccfg);
        const net::BatchResult r =
            fe.inferBatch(u.data(), kQuestions, kDim, got.data());
        if (!r.complete) {
            std::fprintf(stderr,
                         "%s: cluster batch incomplete (%u/%zu "
                         "shards)\n",
                         name, r.shardsAnswered, kShards);
            mismatches = expect.size();
        } else {
            for (size_t i = 0; i < got.size(); ++i)
                if (f32Bits(got[i]) != f32Bits(expect[i]))
                    ++mismatches;
        }
        fe.shutdownNodes(2.0);
    }

    mismatches += reapNodes(pids, name);

    std::printf("%-5s: %zu shard processes over TCP, %zu values, "
                "%zu mismatches\n",
                name, kShards, expect.size(), mismatches);
    return mismatches;
}

/**
 * The full serving stack over real processes: LiveServer (bounded
 * queue + dynamic batcher) dispatching through a pipelined (W=4)
 * ClusterFrontEnd to the forked TCP nodes. Every answer is
 * bit-compared against a per-question in-process ShardedEngine
 * reference — the dynamic batcher composes batches by arrival timing,
 * so this also proves the gather is batch-composition-independent —
 * and the admission ledger must balance. Returns the defect count.
 */
size_t
runServedLeg(core::Precision prec, const char *name)
{
    constexpr size_t kServedQuestions = 64;

    net::ClusterConfig ccfg;
    ccfg.pipelineDepth = 4;
    const std::vector<pid_t> pids = forkNodes(prec, ccfg);

    const core::KnowledgeBase kb = buildKb(prec);
    const core::ShardedKnowledgeBase skb(kb, kChunk, kShards);
    core::EngineConfig ecfg;
    ecfg.chunkSize = kChunk;
    core::ShardedEngine reference(skb, ecfg);

    XorShiftRng rng(47);
    std::vector<float> u(kServedQuestions * kDim);
    for (float &x : u)
        x = rng.uniformRange(-1.f, 1.f);
    std::vector<float> expect(kServedQuestions * kDim);
    for (size_t q = 0; q < kServedQuestions; ++q)
        reference.inferBatch(u.data() + q * kDim, 1,
                            expect.data() + q * kDim);

    size_t defects = 0;
    {
        net::TcpTransport transport;
        net::ClusterFrontEnd fe(transport, ccfg);

        serve::LiveServerConfig lcfg;
        lcfg.maxBatch = 4;
        lcfg.batchTimeout = 1e-3;
        lcfg.queueCapacity = 128;
        serve::LiveServer server(fe, kDim, lcfg);

        std::vector<serve::Ticket> tickets;
        tickets.reserve(kServedQuestions);
        for (size_t q = 0; q < kServedQuestions; ++q)
            tickets.push_back(server.submit(u.data() + q * kDim));

        size_t mismatches = 0;
        for (size_t q = 0; q < kServedQuestions; ++q) {
            if (tickets[q].status != serve::SubmitStatus::Accepted) {
                ++defects;
                continue;
            }
            serve::Answer a = tickets[q].answer.get();
            if (a.failed || a.o.size() != kDim) {
                ++defects;
                continue;
            }
            for (size_t e = 0; e < kDim; ++e)
                if (f32Bits(a.o[e]) != f32Bits(expect[q * kDim + e]))
                    ++mismatches;
        }
        defects += mismatches;

        server.shutdown();
        const serve::LatencySnapshot snap = server.snapshot();
        if (snap.arrived != kServedQuestions
            || snap.completed + snap.rejected != snap.arrived
            || snap.failedBatches != 0
            || snap.rpcShards.size() != kShards) {
            std::fprintf(stderr,
                         "%s served: ledger broken (arrived %llu, "
                         "completed %llu, rejected %llu, failed "
                         "batches %llu)\n",
                         name,
                         static_cast<unsigned long long>(snap.arrived),
                         static_cast<unsigned long long>(
                             snap.completed),
                         static_cast<unsigned long long>(
                             snap.rejected),
                         static_cast<unsigned long long>(
                             snap.failedBatches));
            ++defects;
        }

        std::printf("%-5s served: %zu questions through LiveServer -> "
                    "pipelined front end (W=%zu), %zu batches, "
                    "%zu mismatches\n",
                    name, kServedQuestions, fe.pipelineDepth(),
                    static_cast<size_t>(snap.batches), mismatches);

        fe.shutdownNodes(2.0);
    }

    defects += reapNodes(pids, name);
    return defects;
}

} // namespace

int
main()
{
    std::printf("cluster smoke: %zu-shard scatter/gather across "
                "processes on 127.0.0.1\n",
                kShards);
    size_t mismatches = 0;
    mismatches += runOnePrecision(core::Precision::F32, "f32");
    mismatches += runOnePrecision(core::Precision::BF16, "bf16");
    mismatches += runOnePrecision(core::Precision::I8, "i8");
    mismatches += runServedLeg(core::Precision::F32, "f32");
    mismatches += runServedLeg(core::Precision::I8, "i8");
    if (mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: cross-process gather diverged from the "
                     "in-process ShardedEngine\n");
        return 1;
    }
    std::printf("OK: cross-process gather bit-identical to "
                "ShardedEngine for every precision, raw and served\n");
    return 0;
}
