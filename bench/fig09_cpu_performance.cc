/**
 * @file
 * Reproduces paper Figure 9: "Performance of column-based algorithm
 * on CPU."
 *
 *  (a) Per-operator latency breakdown (inner product / softmax /
 *      weighted sum / other) of the four real engines, measured on
 *      this machine (single thread — the host has one core; see
 *      EXPERIMENTS.md).
 *  (b) Speedup over the baseline vs. thread count, projected with the
 *      traffic + CPU timing model at 4 DRAM channels (paper: MnnFast
 *      reaches 5.38x at 20 threads, 4.02x on average).
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "core/baseline_engine.hh"
#include "core/column_engine.hh"
#include "sim/cpu_system.hh"
#include "sim/traffic.hh"
#include "stats/table.hh"
#include "util/rng.hh"
#include "util/timer.hh"

using namespace mnnfast;

int
main()
{
    bench::banner("Figure 9: column-based algorithm on CPU",
                  "(a) measured per-operator latency breakdown; "
                  "(b) projected thread scaling at 4 DRAM channels.");

    // ---- (a) Real engines, measured. ----
    const size_t ns = 1 << 18; // 262144 sentences
    const size_t ed = 48;      // Table 1 CPU column
    const size_t nq = 8;
    const size_t reps = 5;

    std::printf("\n(a) measured per-operator latency, ns=%zu ed=%zu "
                "nq=%zu, single thread, %zu reps\n\n",
                ns, ed, nq, reps);

    // Attention-realistic knowledge base: ~2% of the rows correlate
    // with the question batch (the sparsity a trained network shows,
    // Fig. 6), so zero-skipping keeps a realistic fraction of rows.
    XorShiftRng rng(4);
    std::vector<float> u(nq * ed), o(nq * ed);
    for (size_t e = 0; e < ed; ++e)
        u[e] = rng.uniformRange(-0.3f, 0.3f);
    for (size_t q = 1; q < nq; ++q)
        for (size_t e = 0; e < ed; ++e)
            u[q * ed + e] = u[e] + rng.uniformRange(-0.02f, 0.02f);
    const core::KnowledgeBase kb = bench::makeAttentionKb(
        ns, ed, u.data(), /*hot_fraction=*/0.02, /*hot_dot=*/4.0f,
        /*cold_dot=*/-2.0f, /*seed=*/3);

    struct Variant
    {
        const char *name;
        std::unique_ptr<core::InferenceEngine> engine;
    };
    std::vector<Variant> variants;
    {
        core::EngineConfig cfg;
        cfg.chunkSize = 1000; // paper: 1000-sentence chunks
        variants.push_back(
            {"baseline",
             std::make_unique<core::BaselineEngine>(kb, cfg)});
        variants.push_back(
            {"column", std::make_unique<core::ColumnEngine>(kb, cfg)});
        core::EngineConfig scfg = cfg;
        scfg.streaming = true;
        variants.push_back(
            {"column+stream",
             std::make_unique<core::ColumnEngine>(kb, scfg)});
        core::EngineConfig mcfg = scfg;
        mcfg.skipThreshold = 0.1f;
        variants.push_back(
            {"mnnfast",
             std::make_unique<core::ColumnEngine>(kb, mcfg)});
    }

    // Warm every engine once, then interleave the measured reps
    // round-robin so slow drift on a shared host hits all variants
    // equally.
    std::vector<double> totals(variants.size(), 0.0);
    for (auto &v : variants) {
        v.engine->inferBatch(u.data(), nq, o.data());
        v.engine->clearBreakdown();
    }
    for (size_t r = 0; r < reps; ++r) {
        for (size_t i = 0; i < variants.size(); ++i) {
            Timer t;
            variants[i].engine->inferBatch(u.data(), nq, o.data());
            totals[i] += t.seconds();
        }
    }

    stats::Table breakdown({"engine", "inner (ms)", "softmax (ms)",
                            "wsum (ms)", "other (ms)", "total (ms)",
                            "speedup"});
    const double baseline_total = totals[0];
    for (size_t i = 0; i < variants.size(); ++i) {
        const auto &bd = variants[i].engine->breakdown();
        const double scale = 1e3 / reps;
        breakdown.addRow(
            {variants[i].name,
             stats::Table::num(bd.innerProduct * scale, 2),
             stats::Table::num(bd.softmax * scale, 2),
             stats::Table::num(bd.weightedSum * scale, 2),
             stats::Table::num(bd.other * scale, 2),
             stats::Table::num(totals[i] * 1e3 / reps, 2),
             stats::Table::num(baseline_total / totals[i], 2)});
    }
    breakdown.print();

    const auto &mnn = *variants.back().engine;
    const uint64_t kept = mnn.counters().value("rows_kept");
    const uint64_t skipped = mnn.counters().value("rows_skipped");
    std::printf("\nmnnfast zero-skipping: %.2f%% of weighted-sum rows "
                "skipped (%llu kept of %llu; at ns=%zu only a handful "
                "of rows can carry p >= 0.1)\n",
                100.0 * double(skipped) / double(kept + skipped),
                static_cast<unsigned long long>(kept),
                static_cast<unsigned long long>(kept + skipped), ns);

    // ---- (b) Thread-scaling projection. ----
    std::printf("\n(b) projected speedup over baseline (same thread "
                "count), 4 DRAM channels\n\n");

    sim::WorkloadParams wp;
    wp.ns = 1 << 17;
    wp.ed = 48;
    wp.nq = 32;
    wp.chunkSize = 1000;
    sim::CacheConfig llc;
    llc.sizeBytes = 30ull << 20;
    llc.associativity = 20;

    const auto t_base =
        sim::simulateDataflow(sim::Dataflow::Baseline, wp, llc);
    const auto t_col =
        sim::simulateDataflow(sim::Dataflow::Column, wp, llc);
    const auto t_str =
        sim::simulateDataflow(sim::Dataflow::ColumnStreaming, wp, llc);
    auto wp_skip = wp;
    wp_skip.zskipKeepFraction = 0.1;
    const auto t_mnn =
        sim::simulateDataflow(sim::Dataflow::MnnFast, wp_skip, llc);

    sim::CpuSystemConfig scfg;
    scfg.dram.channels = 4;
    sim::CpuSystemModel cpu(scfg);

    stats::Table scaling({"threads", "column", "column+stream",
                          "mnnfast"});
    double speedup_sum = 0.0;
    size_t speedup_count = 0;
    double speedup_max = 0.0;
    for (size_t t : {1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20}) {
        const double base_cycles = cpu.executionCycles(t_base, t);
        const double s_col = base_cycles / cpu.executionCycles(t_col, t);
        const double s_str = base_cycles / cpu.executionCycles(t_str, t);
        const double s_mnn = base_cycles / cpu.executionCycles(t_mnn, t);
        scaling.addRow({std::to_string(t), stats::Table::num(s_col, 2),
                        stats::Table::num(s_str, 2),
                        stats::Table::num(s_mnn, 2)});
        speedup_sum += s_mnn;
        speedup_max = std::max(speedup_max, s_mnn);
        ++speedup_count;
    }
    scaling.print();
    std::printf("\nmnnfast vs baseline: max %.2fx, mean %.2fx "
                "(paper: up to 5.38x, mean 4.02x)\n",
                speedup_max, speedup_sum / speedup_count);
    return 0;
}
