/**
 * @file
 * Shared harness plumbing for the bench binaries: command-line
 * parsing, best-of-N timing, and structured JSON emission. bench_util.hh
 * keeps the *domain* helpers (trained tasks, synthetic KBs); this file
 * keeps the *mechanics* every harness otherwise re-implements, so
 * smoke flags and JSON layout stay uniform across benches.
 *
 * Conventions baked in:
 *  - Options are `--name value` or `--name=value`; bare `--name` is a
 *    flag. Unrecognized arguments are fatal at Args::finish(), so a
 *    typo'd sweep never silently measures the defaults.
 *  - Timing is min-of-N after warmup (see minSeconds): the engines are
 *    deterministic, so the fastest repetition is the one least
 *    disturbed by preemption and co-tenant cache traffic, and a fixed
 *    noise quantum biases ratios against short runs — the estimator
 *    the precision ablation documents, now shared.
 *  - JSON goes to the harness's default path unless MNNFAST_BENCH_JSON
 *    overrides it (benchJsonPath), matching every existing bench.
 */

#ifndef MNNFAST_BENCH_BENCH_COMMON_HH
#define MNNFAST_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/timer.hh"

namespace mnnfast::bench {

/**
 * Minimal command-line parser for bench harnesses. Construct over
 * argv, pull typed options, then call finish() — any argument no call
 * consumed is a user error (fatal), so misspelled options fail loudly
 * instead of running the default configuration.
 */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i)
            tokens.emplace_back(argv[i]);
        consumed.assign(tokens.size(), false);
    }

    /** True when bare `--name` appears. */
    bool flag(const char *name)
    {
        const std::string want = std::string("--") + name;
        for (size_t i = 0; i < tokens.size(); ++i) {
            if (tokens[i] == want) {
                consumed[i] = true;
                return true;
            }
        }
        return false;
    }

    /** `--name N` / `--name=N` as size_t, else `def`. */
    size_t sizeOpt(const char *name, size_t def)
    {
        const char *v = rawOpt(name);
        if (!v)
            return def;
        char *end = nullptr;
        const unsigned long long n = std::strtoull(v, &end, 10);
        if (end == v || *end != '\0')
            fatal("--%s expects an unsigned integer, got '%s'", name, v);
        return static_cast<size_t>(n);
    }

    /** `--name X` / `--name=X` as double, else `def`. */
    double floatOpt(const char *name, double def)
    {
        const char *v = rawOpt(name);
        if (!v)
            return def;
        char *end = nullptr;
        const double x = std::strtod(v, &end);
        if (end == v || *end != '\0')
            fatal("--%s expects a number, got '%s'", name, v);
        return x;
    }

    /** `--name S` / `--name=S`, else `def`. */
    const char *strOpt(const char *name, const char *def)
    {
        const char *v = rawOpt(name);
        return v ? v : def;
    }

    /** Fatal if any argument was never consumed by an accessor. */
    void finish() const
    {
        for (size_t i = 0; i < tokens.size(); ++i)
            if (!consumed[i])
                fatal("unrecognized argument '%s'", tokens[i].c_str());
    }

  private:
    /** Locate the value of `--name`, marking its tokens consumed. */
    const char *rawOpt(const char *name)
    {
        const std::string want = std::string("--") + name;
        const std::string pre = want + "=";
        for (size_t i = 0; i < tokens.size(); ++i) {
            if (tokens[i] == want && i + 1 < tokens.size()) {
                consumed[i] = consumed[i + 1] = true;
                return tokens[i + 1].c_str();
            }
            if (tokens[i].compare(0, pre.size(), pre) == 0) {
                consumed[i] = true;
                return tokens[i].c_str() + pre.size();
            }
        }
        return nullptr;
    }

    std::vector<std::string> tokens;
    std::vector<bool> consumed;
};

/**
 * Minimum seconds of `reps` calls to `fn`, after `warmups` untimed
 * calls (page in buffers, grow arenas, settle the LLC set). See the
 * file header for why min-of-N and not the median.
 */
template <typename Fn>
double
minSeconds(size_t reps, Fn &&fn, size_t warmups = 2)
{
    for (size_t w = 0; w < warmups; ++w)
        fn();
    double best = 0.0;
    Timer t;
    for (size_t rep = 0; rep < reps; ++rep) {
        t.reset();
        fn();
        const double s = t.seconds();
        if (rep == 0 || s < best)
            best = s;
    }
    return best;
}

/** The harness's JSON output path: MNNFAST_BENCH_JSON or `def`. */
inline const char *
benchJsonPath(const char *def)
{
    const char *env = std::getenv("MNNFAST_BENCH_JSON");
    return env ? env : def;
}

/**
 * Structured JSON emitter: nesting-aware comma/indent tracking so
 * harness code never hand-manages `first_point` booleans. Values are
 * written eagerly (no buffering); numbers use enough digits to
 * round-trip. The writer does not validate completeness — close what
 * you open — but unbalanced nesting trips an assert in endObject /
 * endArray.
 */
class JsonWriter
{
  public:
    /** Opens `path` for writing; failure is fatal (a bench with no
     *  output is a silently wasted run). */
    explicit JsonWriter(const std::string &path) : path_(path)
    {
        f = std::fopen(path.c_str(), "w");
        if (!f)
            fatal("cannot open %s for writing", path.c_str());
    }

    ~JsonWriter()
    {
        if (f)
            std::fclose(f);
    }

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject() { open('{'); }
    void endObject() { close('}'); }
    void beginArray() { open('['); }
    void endArray() { close(']'); }

    /** Key introducing a nested object/array: key("x"); beginArray(). */
    void key(const char *k)
    {
        separate();
        std::fprintf(f, "\"%s\": ", k);
        pendingKey = true;
    }

    void field(const char *k, size_t v)
    {
        key(k);
        std::fprintf(f, "%zu", v);
        pendingKey = false;
    }

    void field(const char *k, double v)
    {
        key(k);
        std::fprintf(f, "%.9g", v);
        pendingKey = false;
    }

    void field(const char *k, const char *v)
    {
        key(k);
        std::fprintf(f, "\"%s\"", v);
        pendingKey = false;
    }

    void field(const char *k, bool v)
    {
        key(k);
        std::fprintf(f, v ? "true" : "false");
        pendingKey = false;
    }

    /** Bare array element. */
    void value(double v)
    {
        separate();
        std::fprintf(f, "%.9g", v);
    }

    const std::string &path() const { return path_; }

  private:
    void open(char c)
    {
        separate();
        pendingKey = false;
        std::fprintf(f, "%c", c);
        needComma.push_back(false);
    }

    void close(char c)
    {
        mnn_assert(!needComma.empty(), "JsonWriter close without open");
        needComma.pop_back();
        std::fprintf(f, "\n%*s%c", int(2 * needComma.size()), "", c);
        if (needComma.empty())
            std::fprintf(f, "\n");
    }

    /** Comma + newline + indent before a sibling; nothing after a
     *  key (the value belongs on the key's line). */
    void separate()
    {
        if (pendingKey) {
            pendingKey = false;
            return;
        }
        if (needComma.empty())
            return;
        if (needComma.back())
            std::fprintf(f, ",");
        needComma.back() = true;
        std::fprintf(f, "\n%*s", int(2 * needComma.size()), "");
    }

    FILE *f = nullptr;
    std::string path_;
    std::vector<bool> needComma;
    bool pendingKey = false;
};

} // namespace mnnfast::bench

#endif // MNNFAST_BENCH_BENCH_COMMON_HH
