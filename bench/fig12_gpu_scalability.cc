/**
 * @file
 * Reproduces paper Figure 12: "Scalability of column-based algorithm
 * on GPU."
 *
 *  (a) multiple CUDA streams on a single GPU: kernel/copy overlap
 *      gives ~1.33x, then plateaus because H2D memcpy is the
 *      critical path;
 *  (b) multiple GPUs: better scaling (copies overlap across private
 *      links), but shared host bandwidth makes the worst-case H2D
 *      latency grow with GPU count vs. the ideal case B.
 */

#include <cstdio>

#include "bench_util.hh"
#include "gpu/stream_sim.hh"
#include "stats/table.hh"

using namespace mnnfast;

int
main()
{
    bench::banner("Figure 12: column-based algorithm on GPU",
                  "Analytic TITAN Xp + PCIe model (see DESIGN.md "
                  "substitutions). Latencies in milliseconds.");

    gpu::GpuWorkload wl;
    wl.ns = 16'000'000; // scaled from the paper's 100M
    wl.ed = 64;         // Table 1 GPU column
    wl.nq = 128;
    wl.chunkSize = 1'000'000;

    gpu::CudaStreamSim sim{gpu::GpuConfig{}, gpu::PcieConfig{}};

    // ---- (a) CUDA streams on one GPU ----
    std::printf("\n(a) multiple CUDA streams, one GPU\n\n");
    stats::Table streams({"streams", "H2D (ms)", "kernels (ms)",
                          "makespan (ms)", "speedup vs 1 stream"});
    double one_stream = 0.0;
    for (size_t s : {1, 2, 3, 4, 8}) {
        const auto r = sim.runSingleGpu(wl, s);
        const auto &g = r.perGpu[0];
        if (s == 1)
            one_stream = r.makespan;
        streams.addRow({std::to_string(s),
                        stats::Table::num(g.h2dSeconds * 1e3, 2),
                        stats::Table::num(g.kernelSeconds * 1e3, 2),
                        stats::Table::num(r.makespan * 1e3, 2),
                        stats::Table::num(one_stream / r.makespan,
                                          2)});
    }
    streams.print();
    std::printf("\npaper reference: 1.33x from stream overlap; more "
                "streams do not help (memcpy is the critical path)\n");

    // ---- (b) multiple GPUs ----
    std::printf("\n(b) multiple GPUs (2 streams each)\n\n");
    stats::Table multi({"GPUs", "case", "max H2D (ms)",
                        "max kernel (ms)", "makespan (ms)",
                        "speedup vs 1-GPU serial"});
    for (size_t g : {1, 2, 3, 4}) {
        for (bool shared : {true, false}) {
            const auto r = sim.runMultiGpu(wl, g, 2, shared);
            double h2d = 0.0, kern = 0.0;
            for (const auto &lat : r.perGpu) {
                h2d = std::max(h2d, lat.h2dSeconds);
                kern = std::max(kern, lat.kernelSeconds);
            }
            multi.addRow(
                {std::to_string(g), shared ? "worst (shared)"
                                           : "ideal (B)",
                 stats::Table::num(h2d * 1e3, 2),
                 stats::Table::num(kern * 1e3, 2),
                 stats::Table::num(r.makespan * 1e3, 2),
                 stats::Table::num(one_stream / r.makespan, 2)});
        }
    }
    multi.print();

    const auto four = sim.runMultiGpu(wl, 4, 2, true);
    std::printf("\n4-GPU speedup over the 1-stream single-GPU "
                "baseline: %.2fx (paper: 4.34x)\n",
                one_stream / four.makespan);
    return 0;
}
