/**
 * @file
 * Reproduces the paper's Section 5.5 comparison: energy efficiency of
 * FPGA-based MnnFast vs. CPU-based MnnFast (paper: up to 6.54x in the
 * FPGA's favor).
 *
 * Setting (matching the paper's latency-oriented FPGA design): an
 * interactive question-answering service over the network both
 * platforms can run (Table 1 FPGA column: ns=1000, ed=25), answering
 * one question at a time.
 *
 *  - FPGA: the full MnnFast accelerator (column + streaming +
 *    zero-skipping), per-question cycles from the cycle model at
 *    100 MHz, 2.6 W platform power.
 *  - CPU: per-question time is the larger of the modeled
 *    compute/bandwidth time (20 threads, 4 channels, 2.4 GHz) and the
 *    lock-step parallelization floor — the paper's implementation
 *    forks/joins the thread pool for each of the three operator
 *    layers, and waking 20 threads costs ~3.8 us per layer, which
 *    dominates at this network size. Platform power 170 W.
 *
 * The constants are recorded in EXPERIMENTS.md; the reproduced
 * quantity is the ratio and its direction.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "fpga/accelerator.hh"
#include "fpga/energy_model.hh"
#include "sim/cpu_system.hh"
#include "sim/traffic.hh"
#include "stats/table.hh"
#include "util/rng.hh"

using namespace mnnfast;

int
main()
{
    bench::banner("Section 5.5: CPU vs FPGA energy efficiency",
                  "Interactive QA service, one question at a time, on "
                  "the common ns=1000 / ed=25 network.");

    const size_t ns = 1000, ed = 25;
    const size_t questions = 100;

    // ---- FPGA: full MnnFast configuration (as in Fig. 13). ----
    XorShiftRng rng(9);
    std::vector<float> u(questions * ed), o(questions * ed);
    for (size_t e = 0; e < ed; ++e)
        u[e] = rng.uniformRange(-0.4f, 0.4f);
    for (size_t q = 1; q < questions; ++q)
        for (size_t e = 0; e < ed; ++e)
            u[q * ed + e] = u[e] + rng.uniformRange(-0.02f, 0.02f);
    const core::KnowledgeBase kb = bench::makeAttentionKb(
        ns, ed, u.data(), /*hot_fraction=*/0.02, /*hot_dot=*/3.0f,
        /*cold_dot=*/-2.0f, /*seed=*/10);

    fpga::FpgaConfig fcfg; // ed=25, chunk=25, 4 MAC lanes
    fcfg.streaming = true;
    fcfg.skipThreshold = 0.5f;
    fpga::FpgaAccelerator accel(fcfg);
    const auto fstats =
        accel.runInference(u.data(), questions, kb, o.data());
    const double fpga_per_q =
        fstats.seconds(fcfg.clockHz) / questions;

    // ---- CPU: modeled MnnFast dataflow + lock-step fork/join floor.
    sim::WorkloadParams wp;
    wp.ns = ns;
    wp.ed = ed;
    wp.nq = 1;
    wp.chunkSize = 1000;
    wp.zskipKeepFraction = 0.05;
    sim::CacheConfig llc;
    llc.sizeBytes = 30ull << 20;
    llc.associativity = 20;
    const auto traffic =
        sim::simulateDataflow(sim::Dataflow::MnnFast, wp, llc);

    sim::CpuSystemConfig scfg;
    scfg.dram.channels = 4;
    sim::CpuSystemModel cpu(scfg);
    const double cpu_model_s = cpu.executionCycles(traffic, 20) / 2.4e9;

    // Lock-step parallelization: one fork/join per operator layer
    // (inner product, softmax, weighted sum) at ~3.8 us to wake and
    // join 20 pthreads.
    const double fork_join_floor = 3 * 3.8e-6;
    const double cpu_per_q = std::max(cpu_model_s, fork_join_floor);

    // ---- Energy. ----
    fpga::EnergyModel energy{fpga::EnergyConfig{}};
    const double cpu_j = energy.cpuJoules(cpu_per_q);
    const double fpga_j = energy.fpgaJoules(fpga_per_q);

    stats::Table table({"platform", "latency/question (us)",
                        "power (W)", "energy/question (uJ)"});
    table.addRow({"CPU MnnFast (20T)",
                  stats::Table::num(cpu_per_q * 1e6, 1),
                  stats::Table::num(energy.config().cpuWatts, 1),
                  stats::Table::num(cpu_j * 1e6, 1)});
    table.addRow({"FPGA MnnFast",
                  stats::Table::num(fpga_per_q * 1e6, 1),
                  stats::Table::num(energy.config().fpgaWatts, 1),
                  stats::Table::num(fpga_j * 1e6, 1)});
    table.print();

    std::printf("\nFPGA is %.1fx slower per question but "
                "%.2fx more energy-efficient (paper: up to 6.54x)\n",
                fpga_per_q / cpu_per_q,
                energy.efficiencyGain(cpu_per_q, fpga_per_q));
    return 0;
}
