/**
 * @file
 * Reproduces paper Figure 13: "Latency reduction of FPGA-based
 * MnnFast" — baseline, column, column+streaming, and full MnnFast on
 * the ZedBoard-class accelerator model (Table 1 FPGA column: ed=25,
 * ns=1000, chunk=25).
 *
 * Paper reference points: column -27.6%, column+streaming -38.2%,
 * MnnFast up to 2.01x overall.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "fpga/accelerator.hh"
#include "stats/table.hh"
#include "util/rng.hh"

using namespace mnnfast;

int
main()
{
    bench::banner("Figure 13: FPGA-based MnnFast latency",
                  "Cycle-approximate ZedBoard model; each latency "
                  "normalized to the baseline implementation.");

    const size_t ns = 1000, ed = 25, nq = 16;

    // Question state and an attention-realistic knowledge base: ~2%
    // of sentences correlate with the question (hot), matching the
    // trained-attention sparsity of Fig. 6.
    XorShiftRng rng(5);
    std::vector<float> u(nq * ed);
    for (size_t e = 0; e < ed; ++e)
        u[e] = rng.uniformRange(-0.4f, 0.4f);
    for (size_t q = 1; q < nq; ++q)
        for (size_t e = 0; e < ed; ++e)
            u[q * ed + e] = u[e] + rng.uniformRange(-0.02f, 0.02f);
    const core::KnowledgeBase kb = bench::makeAttentionKb(
        ns, ed, u.data(), /*hot_fraction=*/0.02, /*hot_dot=*/3.0f,
        /*cold_dot=*/-2.0f, /*seed=*/6);

    struct Variant
    {
        const char *name;
        fpga::FpgaConfig cfg;
    };
    std::vector<Variant> variants;
    {
        fpga::FpgaConfig cfg; // ed=25, chunk=25 defaults
        cfg.columnMode = false;
        variants.push_back({"baseline", cfg});
        cfg.columnMode = true;
        variants.push_back({"column", cfg});
        cfg.streaming = true;
        variants.push_back({"column+streaming", cfg});
        cfg.skipThreshold = 0.5f; // exp-domain threshold (Section 4.2)
        variants.push_back({"mnnfast", cfg});
    }

    stats::Table table({"variant", "cycles/question", "compute",
                        "exposed mem", "normalized", "speedup"});
    double base_cycles = 0.0;
    std::vector<float> o(nq * ed);
    for (const Variant &v : variants) {
        fpga::FpgaAccelerator accel(v.cfg);
        const auto stats = accel.runInference(u.data(), nq, kb,
                                              o.data());
        const double cyc = double(stats.totalCycles) / nq;
        if (base_cycles == 0.0)
            base_cycles = cyc;
        table.addRow(
            {v.name, stats::Table::num(cyc, 0),
             stats::Table::num(double(stats.computeCycles) / nq, 0),
             stats::Table::num(double(stats.memoryCycles) / nq, 0),
             stats::Table::num(cyc / base_cycles, 3),
             stats::Table::num(base_cycles / cyc, 2)});
        if (v.cfg.skipThreshold > 0.f) {
            std::printf("  (mnnfast skipped %.1f%% of weighted-sum "
                        "rows)\n",
                        100.0 * double(stats.wsumRowsSkipped)
                            / double(stats.wsumRowsKept
                                     + stats.wsumRowsSkipped));
        }
    }
    table.print();

    std::printf("\npaper reference: column -27.6%%, column+streaming "
                "-38.2%%, MnnFast up to 2.01x\n");
    return 0;
}
