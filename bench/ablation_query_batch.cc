/**
 * @file
 * Ablation: query-blocked batching (DESIGN.md, query-blocked GEMM
 * dataflow). Measures time per question as the batch size grows, for
 * the column engine with and without zero-skipping and for the full
 * mnnfast configuration.
 *
 * The column dataflow streams every chunk of M_IN/M_OUT once per
 * *batch*: the strip sweep drives each loaded strip through all
 * concurrent questions before advancing, so per-question cost should
 * fall steeply with nq until the arithmetic (not the stream)
 * dominates. The headline ratio t(nq=16)/t(nq=1) per question is the
 * amortization the serving simulator's affine service model assumes.
 *
 * Emits BENCH_query_batch.json (path overridable via the
 * MNNFAST_BENCH_JSON environment variable) for tracking.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "bench_util.hh"
#include "core/column_engine.hh"
#include "stats/table.hh"
#include "util/rng.hh"

using namespace mnnfast;

namespace {

struct EngineSpec
{
    const char *label;
    bool streaming;
    float skipThreshold;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const size_t ns = args.sizeOpt("ns", 16384);
    const size_t ed = args.sizeOpt("ed", 256);
    const size_t chunk = args.sizeOpt("chunk", 512);
    const size_t reps = args.sizeOpt("reps", 5);
    args.finish();

    bench::banner("Ablation: query-blocked batch amortization",
                  "Per-question latency vs batch size; the KB stream "
                  "is paid once per batch.");

    const size_t batches[] = {1, 2, 4, 8, 16, 32};
    const size_t max_nq = 32;

    core::KnowledgeBase kb(ed);
    kb.reserve(ns);
    {
        XorShiftRng rng(1);
        std::vector<float> a(ed), b(ed);
        for (size_t i = 0; i < ns; ++i) {
            for (size_t e = 0; e < ed; ++e) {
                a[e] = rng.uniformRange(-0.3f, 0.3f);
                b[e] = rng.uniformRange(-0.3f, 0.3f);
            }
            kb.addSentence(a.data(), b.data());
        }
    }
    XorShiftRng rng(2);
    std::vector<float> u(max_nq * ed), o(max_nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-0.3f, 0.3f);

    const EngineSpec specs[] = {
        {"column", false, 0.f},
        {"column+zskip", false, 1e-4f},
        {"mnnfast", true, 1e-4f},
    };

    bench::JsonWriter json(
        bench::benchJsonPath("BENCH_query_batch.json"));
    json.beginObject();
    json.field("ns", ns);
    json.field("ed", ed);
    json.field("chunk", chunk);
    json.field("threads", size_t{0});
    json.key("engines");
    json.beginArray();

    stats::Table table({"engine", "nq", "batch ms", "us/question",
                        "vs nq=1"});
    auto csv = bench::maybeCsv("ablation_query_batch");
    if (csv)
        csv->writeRow({"engine", "nq", "batch_seconds",
                       "per_question_seconds"});

    for (const EngineSpec &spec : specs) {
        core::EngineConfig cfg;
        cfg.chunkSize = chunk;
        cfg.threads = 0; // inline: isolate the dataflow, not the pool
        cfg.streaming = spec.streaming;
        cfg.skipThreshold = spec.skipThreshold;
        core::ColumnEngine engine(kb, cfg);

        json.beginObject();
        json.field("name", spec.label);
        json.key("points");
        json.beginArray();

        double per_q1 = 0.0, per_q16 = 0.0;
        for (size_t nq : batches) {
            const double secs = bench::minSeconds(
                reps, [&] { engine.inferBatch(u.data(), nq, o.data()); },
                /*warmups=*/1);
            const double per_q = secs / double(nq);
            if (nq == 1)
                per_q1 = per_q;
            if (nq == 16)
                per_q16 = per_q;

            table.addRow({spec.label, std::to_string(nq),
                          stats::Table::num(secs * 1e3, 3),
                          stats::Table::num(per_q * 1e6, 2),
                          stats::Table::num(per_q / per_q1, 3)});
            if (csv)
                csv->writeRow({std::string(spec.label),
                               std::to_string(nq), std::to_string(secs),
                               std::to_string(per_q)});
            json.beginObject();
            json.field("nq", nq);
            json.field("batch_seconds", secs);
            json.field("per_question_seconds", per_q);
            json.endObject();
        }
        json.endArray();
        json.field("t16_over_t1_per_query", per_q16 / per_q1);
        json.endObject();
    }
    json.endArray();
    json.endObject();

    table.print();
    std::printf("\nwrote %s; t(16)/t(1) per question <= 0.6 means the "
                "KB stream amortizes across the batch\n",
                json.path().c_str());
    return 0;
}
