/**
 * @file
 * Reproduces paper Figure 3: "Limited scalability due to memory
 * bandwidth bottleneck."
 *
 * The baseline MemNN's access stream is replayed through the shared-
 * LLC cache model; the resulting per-phase traffic is fed to the CPU
 * timing model for DRAM configurations of 1, 2, and 4 channels.
 * Expected shape: speedup saturates early with few channels and later
 * with more — memory bandwidth, not compute, caps the baseline.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/cpu_system.hh"
#include "sim/traffic.hh"
#include "stats/table.hh"

using namespace mnnfast;

int
main()
{
    bench::banner("Figure 3: baseline MemNN speedup vs. threads, by "
                  "DRAM channel count",
                  "Simulated Xeon-class system; speedups normalized to "
                  "the 1-thread result of each channel configuration.");

    sim::WorkloadParams wp;
    wp.ns = 1 << 17; // 131072 sentences (scaled from the paper's 100M)
    wp.ed = 48;      // Table 1, CPU column
    wp.nq = 32;
    wp.chunkSize = 1000;

    sim::CacheConfig llc;
    llc.sizeBytes = 30ull << 20; // E5-2650 v4: 30 MB L3
    llc.associativity = 20;

    std::printf("workload: ns=%zu ed=%zu nq=%zu (scaled; see "
                "EXPERIMENTS.md)\n\n",
                wp.ns, wp.ed, wp.nq);

    const auto traffic =
        sim::simulateDataflow(sim::Dataflow::Baseline, wp, llc);

    const size_t channel_configs[] = {1, 2, 4};
    stats::Table table({"threads", "1-channel", "2-channel",
                        "4-channel", "ideal"});
    auto csv = bench::maybeCsv("fig03");
    if (csv)
        csv->writeRow({"threads", "ch1", "ch2", "ch4", "ideal"});

    for (size_t threads : {1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20}) {
        std::vector<std::string> row{std::to_string(threads)};
        for (size_t ch : channel_configs) {
            sim::CpuSystemConfig cfg;
            cfg.dram.channels = ch;
            sim::CpuSystemModel model(cfg);
            row.push_back(
                stats::Table::num(model.speedup(traffic, threads), 2));
        }
        row.push_back(stats::Table::num(double(threads), 2));
        if (csv)
            csv->writeRow(row);
        table.addRow(std::move(row));
    }
    table.print();

    // Saturation summary (the paper's headline observation).
    std::printf("\nsaturation speedup at 20 threads:\n");
    for (size_t ch : channel_configs) {
        sim::CpuSystemConfig cfg;
        cfg.dram.channels = ch;
        sim::CpuSystemModel model(cfg);
        std::printf("  %zu channel(s): %.2fx\n", ch,
                    model.speedup(traffic, 20));
    }
    return 0;
}
