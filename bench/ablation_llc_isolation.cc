/**
 * @file
 * Ablation: could a bigger shared LLC substitute for the embedding
 * cache? (paper Section 3.3's design question)
 *
 * Sweeps the shared LLC size under the Fig. 4 contention workload and
 * compares three designs at each size: shared LLC (the problem),
 * cache bypassing (the paper's rejected alternative), and the
 * dedicated embedding cache (MnnFast's answer). Inference tenants
 * size their chunk working sets to the cache they run on (that is
 * the point of the column algorithm), so the working set scales with
 * the LLC: growing the LLC never escapes the contention, while a
 * tiny dedicated cache removes it at any scale.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/contention.hh"
#include "stats/table.hh"

using namespace mnnfast;

int
main()
{
    bench::banner("Ablation (Section 3.3): LLC size vs. dedicated "
                  "embedding cache",
                  "Inference slowdown under 8 co-running embedding "
                  "threads; the inference working set scales with the "
                  "LLC (3/4 of capacity), as a cache-sized tenant "
                  "would.");

    stats::Table table({"shared LLC", "working set",
                        "shared (slowdown)", "bypass (slowdown)",
                        "embed-cache (slowdown)",
                        "inference hit rate (shared)"});

    for (size_t mb : {8ul, 16ul, 32ul, 64ul}) {
        sim::ContentionParams p;
        p.llc.sizeBytes = mb << 20;
        p.llc.associativity = 16;
        p.inferenceWorkingSet = (p.llc.sizeBytes / 4) * 3;
        p.embeddingTableBytes = 512ull << 20;
        p.embeddingRowBytes = 48 * 4;
        p.embeddingRate = 0.08;
        p.embeddingThreads = 8;
        p.rounds = 8;

        std::vector<std::string> row{
            std::to_string(mb) + "MB",
            std::to_string(mb * 3 / 4) + "MB"};
        double shared_hit = 0.0;
        for (auto policy : {sim::EmbeddingPolicy::Shared,
                            sim::EmbeddingPolicy::Bypass,
                            sim::EmbeddingPolicy::Dedicated}) {
            p.policy = policy;
            const auto r = sim::simulateContention(p);
            row.push_back(stats::Table::num(r.slowdown, 3));
            if (policy == sim::EmbeddingPolicy::Shared)
                shared_hit = r.inferenceHitRate;
        }
        row.push_back(stats::Table::num(shared_hit, 3));
        table.addRow(std::move(row));
    }
    table.print();

    std::printf("\nscaling the LLC does not escape the contention "
                "when tenants scale with it; isolation (bypass or the "
                "embedding cache) removes it outright, and only the "
                "embedding cache also accelerates the embedding "
                "stream itself (Fig. 14)\n");
    return 0;
}
