/**
 * @file
 * Ablation: coarse-then-fine candidate routing (DESIGN.md §11). Three
 * legs:
 *
 *  1. Latency sweep — per storage precision, a streaming column
 *     engine under RoutePolicy::TopK is swept over k (chunks streamed
 *     per question) and compared against the exact full-stream
 *     engine: batch latency, speedup, and the max answer-score
 *     deviation the dropped chunks cost. k = all chunks must be
 *     BIT-IDENTICAL to the unrouted engine (asserted; nonzero exit on
 *     violation) — that is the guarantee that makes routing a pure
 *     perf knob at the exact operating point.
 *  2. Sharded composition — a routed ShardedEngine (shards >= 2) must
 *     answer bit-identically to a routed single engine with
 *     scheduleGroups = shards (asserted), the property that lets
 *     scatter/gather serving route per shard.
 *  3. Accuracy (skipped under --smoke) — trained bAbI models swept
 *     over k with forwardTopK, charting relative accuracy loss
 *     against the streamed-row fraction: the routed analogue of the
 *     paper's Fig. 7 threshold sweep.
 *
 * Emits BENCH_topk.json (path overridable via MNNFAST_BENCH_JSON).
 *
 * `--smoke` shrinks the geometry (ns=4096, ed=64) and skips training
 * so CI can run the bit-identity assertions in seconds.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hh"
#include "bench_util.hh"
#include "core/column_engine.hh"
#include "core/sharded_engine.hh"
#include "core/sharded_knowledge_base.hh"
#include "stats/table.hh"
#include "util/rng.hh"

using namespace mnnfast;

namespace {

core::KnowledgeBase
buildKb(size_t ns, size_t ed, core::Precision prec)
{
    core::KnowledgeBase kb(ed, prec);
    kb.reserve(ns);
    XorShiftRng rng(1);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-0.3f, 0.3f);
            b[e] = rng.uniformRange(-0.3f, 0.3f);
        }
        kb.addSentence(a.data(), b.data());
    }
    return kb;
}

double
maxDeviation(const std::vector<float> &ref, const std::vector<float> &o)
{
    double dev = 0.0;
    for (size_t i = 0; i < ref.size(); ++i)
        dev = std::max(dev, std::abs(double(ref[i]) - o[i]));
    return dev;
}

bool
bitIdentical(const std::vector<float> &a, const std::vector<float> &b)
{
    return std::memcmp(a.data(), b.data(), a.size() * sizeof(float))
        == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool smoke = args.flag("smoke");
    const size_t ns = args.sizeOpt("ns", smoke ? 4096 : 65536);
    const size_t ed = args.sizeOpt("ed", smoke ? 64 : 128);
    const size_t chunk = args.sizeOpt("chunk", smoke ? 256 : 1024);
    const size_t nq = args.sizeOpt("nq", 16);
    const size_t reps = args.sizeOpt("reps", smoke ? 3 : 7);
    args.finish();

    bench::banner("Ablation: top-k chunk routing",
                  "Coarse bound-scored candidate selection vs exact "
                  "full-KB streaming; k = all must be bit-identical.");

    const size_t n_chunks = (ns + chunk - 1) / chunk;
    std::printf("ns=%zu ed=%zu chunk=%zu (%zu chunks) nq=%zu%s\n\n", ns,
                ed, chunk, n_chunks, nq, smoke ? " [smoke]" : "");

    XorShiftRng rng(2);
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-0.3f, 0.3f);
    std::vector<float> ref(nq * ed), out(nq * ed);

    // k sweep: all chunks (the exactness anchor) down to a small
    // candidate set. The full geometry (64 chunks) sweeps k=2..64.
    std::vector<size_t> ks{n_chunks};
    for (size_t k = n_chunks / 4; k >= 2; k /= 2)
        ks.push_back(k);

    bench::JsonWriter json(bench::benchJsonPath("BENCH_topk.json"));
    json.beginObject();
    json.field("ns", ns);
    json.field("ed", ed);
    json.field("chunk", chunk);
    json.field("n_chunks", n_chunks);
    json.field("nq", nq);
    json.field("threads", size_t{0});
    json.field("smoke", smoke);

    bool failed = false;

    // ---- Leg 1: latency sweep per precision --------------------------
    stats::Table table({"precision", "k", "batch ms", "speedup",
                        "max |diff|"});
    json.key("precisions");
    json.beginArray();
    constexpr core::Precision precs[] = {core::Precision::F32,
                                         core::Precision::BF16,
                                         core::Precision::I8};
    for (core::Precision prec : precs) {
        const core::KnowledgeBase kb = buildKb(ns, ed, prec);

        core::EngineConfig base;
        base.chunkSize = chunk;
        base.streaming = true;
        base.threads = 0; // isolate the dataflow, not the pool
        core::ColumnEngine exact(kb, base);
        const double t_full = bench::minSeconds(reps, [&] {
            exact.inferBatch(u.data(), nq, ref.data());
        });
        table.addRow({core::precisionName(prec), "all(full)",
                      stats::Table::num(t_full * 1e3, 3), "1.000", "0"});

        json.beginObject();
        json.field("precision", core::precisionName(prec));
        json.field("full_seconds", t_full);
        json.key("points");
        json.beginArray();
        for (size_t k : ks) {
            core::EngineConfig cfg = base;
            cfg.routePolicy = core::RoutePolicy::TopK;
            cfg.routeTopK = k;
            core::ColumnEngine routed(kb, cfg);
            const double t = bench::minSeconds(reps, [&] {
                routed.inferBatch(u.data(), nq, out.data());
            });
            const double dev = maxDeviation(ref, out);
            if (k >= n_chunks && !bitIdentical(ref, out)) {
                std::fprintf(stderr,
                             "FAIL: k=all not bit-identical (%s, "
                             "max |diff| %.3g)\n",
                             core::precisionName(prec), dev);
                failed = true;
            }
            table.addRow({core::precisionName(prec),
                          std::to_string(k),
                          stats::Table::num(t * 1e3, 3),
                          stats::Table::num(t_full / t, 3),
                          stats::Table::num(dev, 6)});
            json.beginObject();
            json.field("k", k);
            json.field("seconds", t);
            json.field("speedup", t_full / t);
            json.field("max_abs_diff", dev);
            json.field("bit_identical", bitIdentical(ref, out));
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    table.print();

    // ---- Leg 2: routed sharded composition ---------------------------
    // A routed ShardedEngine must reproduce the routed single engine
    // with scheduleGroups = shards bit-for-bit (sharded_engine.hh).
    {
        const size_t shards = 4;
        const size_t k = std::max<size_t>(2, n_chunks / shards / 4);
        const core::KnowledgeBase kb =
            buildKb(ns, ed, core::Precision::F32);

        core::EngineConfig cfg;
        cfg.chunkSize = chunk;
        cfg.streaming = true;
        cfg.routePolicy = core::RoutePolicy::TopK;
        cfg.routeTopK = k;

        core::EngineConfig single = cfg;
        single.scheduleGroups = shards;
        core::ColumnEngine mono(kb, single);
        mono.inferBatch(u.data(), nq, ref.data());

        core::ShardedKnowledgeBase skb(kb, chunk, shards);
        core::EngineConfig scatter = cfg;
        scatter.threads = 2;
        core::ShardedEngine shard_engine(skb, scatter);
        shard_engine.inferBatch(u.data(), nq, out.data());

        const bool same = bitIdentical(ref, out);
        std::printf("\nrouted sharding: %zu shards, k=%zu per shard -> "
                    "%s\n",
                    skb.shardCount(), k,
                    same ? "bit-identical" : "MISMATCH");
        if (!same)
            failed = true;
        json.key("sharded");
        json.beginObject();
        json.field("shards", skb.shardCount());
        json.field("k", k);
        json.field("bit_identical", same);
        json.endObject();
    }

    // ---- Leg 3: accuracy vs computation (full mode only) -------------
    if (!smoke) {
        std::printf("\ntraining bAbI models for the accuracy sweep...\n");
        const size_t story_len = 20;
        // Fine-grained chunks: tighter envelopes and finer-grained
        // selection than the engine-scale chunk=1024 above — the
        // accuracy sweep probes the routing *policy*, not kernel
        // throughput, so small chunks are the interesting regime.
        const size_t chunk_rows = 2;
        struct Trained
        {
            bench::TrainedTask task;
            data::Dataset test;
            double baseAcc;
        };
        std::vector<Trained> models;
        for (data::TaskType type : data::allTasks()) {
            const size_t hops =
                type == data::TaskType::TwoSupportingFacts ? 3
                : type == data::TaskType::YesNo            ? 2
                                                           : 1;
            Trained t;
            t.task = bench::trainTask(type, /*ed=*/32, hops, story_len,
                                      /*examples=*/1000, /*epochs=*/30,
                                      /*seed=*/11 + uint64_t(type));
            t.test = t.task.gen->generateSet(150, story_len);
            t.baseAcc = train::evaluateAccuracy(*t.task.model, t.test);
            models.push_back(std::move(t));
        }

        stats::Table acc({"k chunks", "accuracy loss (%)",
                          "computation reduction (%)"});
        json.key("accuracy");
        json.beginObject();
        json.field("chunk_rows", chunk_rows);
        json.key("points");
        json.beginArray();
        const size_t max_chunks =
            (story_len + chunk_rows - 1) / chunk_rows;
        // The bAbI grid is tiny (5 chunks at story_len=20, chunk_rows=4),
        // so enumerate every k rather than halving — the interesting
        // operating points (small loss, nonzero reduction) sit at
        // k = max-1 .. max-2 and a halving sweep skips them.
        for (size_t k = max_chunks; k >= 1; --k) {
            double loss_sum = 0.0, reduction_sum = 0.0;
            for (const Trained &t : models) {
                uint64_t kept = 0, total = 0;
                const double a = train::evaluateAccuracyRouted(
                    *t.task.model, t.test, chunk_rows, k, kept, total);
                loss_sum +=
                    t.baseAcc > 0
                        ? std::max(0.0, (t.baseAcc - a) / t.baseAcc)
                        : 0.0;
                reduction_sum += 1.0 - double(kept) / double(total);
            }
            const double loss_pct = 100.0 * loss_sum / models.size();
            const double red_pct =
                100.0 * reduction_sum / models.size();
            acc.addRow({std::to_string(k),
                        stats::Table::num(loss_pct, 2),
                        stats::Table::num(red_pct, 1)});
            json.beginObject();
            json.field("k", k);
            json.field("accuracy_loss_pct", loss_pct);
            json.field("reduction_pct", red_pct);
            json.endObject();
        }
        json.endArray();
        json.endObject();
        std::printf("\n");
        acc.print();
    }

    json.field("pass", !failed);
    json.endObject();

    std::printf("\nwrote %s\n", json.path().c_str());
    if (failed) {
        std::fprintf(stderr, "\nBIT-IDENTITY FAILURE\n");
        return 1;
    }
    return 0;
}
