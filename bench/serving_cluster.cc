/**
 * @file
 * Cluster serving bench (DESIGN.md §12): open-loop Poisson load
 * through the loopback transport's deterministic fault injector,
 * across failure scenarios x hedging, plus the bit-identity and
 * failover acceptance legs.
 *
 * Legs:
 *
 *  1. Bit-identity (hard gate, nonzero exit on failure): for shard
 *     counts {2, 4} x KB precisions {f32, bf16, i8}, a lossless
 *     ClusterFrontEnd gather must be bit-identical to the in-process
 *     ShardedEngine over the same partition.
 *  2. Scenario grid: {clean, jitter, straggler, loss, disconnect} x
 *     hedging {on, off}. Each scenario degrades only the *primary*
 *     replica endpoints (the backups stay clean), runs a seeded
 *     open-loop Poisson request schedule, and reports end-to-end
 *     latency quantiles (measured against the scheduled arrival, so
 *     backlog counts), completion/partial-answer rates, and the RPC
 *     counters (hedges fired/won, failovers, deadline misses).
 *     The headline artifact: hedging cutting the straggler scenario's
 *     tail against the unhedged run.
 *  3. Failover recovery (hard gate): under injected disconnects with
 *     partial answers disabled, every submitted request must still
 *     complete with all shards — replica failover may not lose an
 *     accepted request.
 *  4. Pipelined vs serial (hard gate on clean + jitter): the same
 *     window-saturated batch stream through a pipelineDepth-W front
 *     end vs a serial (W = 1) one, over clean (constant small
 *     latency, no faults), jittering, and straggling links. With
 *     W >= 2 send-ahead puts batch k+1 on the wire while batch k
 *     gathers, so neither the round trip nor the node compute
 *     serializes the stream; the gate requires the pipelined run to
 *     beat the serial run's throughput on the clean and jitter legs
 *     (the straggler leg is reported but ungated — its tail is
 *     fault-schedule noise).
 *
 * Emits BENCH_cluster.json (path overridable via MNNFAST_BENCH_JSON).
 *
 * Flags:
 *   --smoke       small KB, short schedule (CI)
 *   --shards N    shard count for the scenario grid (default 2)
 *   --requests N  requests per scenario point (default 400)
 *   --rate QPS    Poisson arrival rate (default 300)
 *   --seed S      workload + fault seed (default 1234)
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "core/column_engine.hh"
#include "core/knowledge_base.hh"
#include "core/sharded_engine.hh"
#include "core/sharded_knowledge_base.hh"
#include "net/cluster_frontend.hh"
#include "net/loopback_transport.hh"
#include "net/shard_node.hh"
#include "serve/latency_recorder.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"
#include "util/rng.hh"

using namespace mnnfast;

namespace {

core::KnowledgeBase
buildKb(size_t ns, size_t ed,
        core::Precision prec = core::Precision::F32)
{
    core::KnowledgeBase kb(ed, prec);
    kb.reserve(ns);
    XorShiftRng rng(11);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-0.5f, 0.5f);
            b[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(a.data(), b.data());
    }
    return kb;
}

std::vector<float>
makeQuestions(size_t nq, size_t ed, uint64_t seed)
{
    XorShiftRng rng(seed);
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-1.f, 1.f);
    return u;
}

uint32_t
f32Bits(float v)
{
    uint32_t b;
    static_assert(sizeof b == sizeof v, "ieee f32");
    std::memcpy(&b, &v, sizeof b);
    return b;
}

/** Shard nodes serving on loopback endpoints, one thread each. */
struct NodeSet
{
    std::vector<std::unique_ptr<net::ShardNode>> nodes;
    std::vector<std::thread> threads;

    void
    add(const core::KnowledgeBase &shard_kb,
        const core::EngineConfig &cfg, uint32_t shard,
        net::Transport &transport, const std::string &endpoint)
    {
        auto listener = transport.listen(endpoint);
        if (!listener)
            fatal("cannot listen on loopback endpoint %s",
                  endpoint.c_str());
        nodes.push_back(
            std::make_unique<net::ShardNode>(shard_kb, cfg, shard));
        net::ShardNode *node = nodes.back().get();
        threads.emplace_back(
            [node, l = std::move(listener)]() mutable {
                node->serve(*l);
            });
    }

    void
    stop()
    {
        for (auto &n : nodes)
            n->requestStop();
        for (auto &t : threads)
            t.join();
        threads.clear();
        nodes.clear();
    }

    ~NodeSet() { stop(); }
};

struct Scenario
{
    const char *name;
    net::FaultSpec primaryFault; ///< applied to primary replicas only
    bool allowPartial;
    bool assertAllComplete; ///< hard gate: no request may be lost
};

struct ScenarioResult
{
    const Scenario *scenario = nullptr;
    bool hedging = false;
    size_t submitted = 0;
    size_t completedFull = 0;
    size_t completedPartial = 0;
    size_t failed = 0;
    double meanSeconds = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0, maxSeconds = 0.0;
    serve::RpcShardCounters rpc;
    uint64_t partialQuestions = 0;
};

/**
 * One scenario point: S shards x 2 replicas on a fresh loopback
 * network, primaries degraded per the scenario, driven by a seeded
 * open-loop Poisson schedule. Latency is measured from the request's
 * *scheduled* arrival to completion, so a backlogged front end pays
 * for its queueing like a real client would.
 */
ScenarioResult
runScenario(const Scenario &sc, bool hedging,
            const core::ShardedKnowledgeBase &skb,
            const core::EngineConfig &ecfg, size_t requests,
            double rate, size_t nq, uint64_t seed,
            double timeoutSeconds)
{
    const size_t ed = skb.parent().dim();
    net::LoopbackNetwork netns;
    net::LoopbackTransport transport(netns, {}, seed);

    NodeSet nodeSet;
    net::ClusterConfig ccfg;
    ccfg.onlineNormalize = ecfg.onlineNormalize;
    ccfg.requestTimeoutSeconds = timeoutSeconds;
    ccfg.hedging = hedging;
    ccfg.hedgeMinSeconds = 2e-3;
    ccfg.allowPartial = sc.allowPartial;
    for (size_t s = 0; s < skb.shardCount(); ++s) {
        std::string primary = "s";
        primary += std::to_string(s);
        std::string backup = primary;
        primary += "-a";
        backup += "-b";
        nodeSet.add(skb.shard(s), ecfg, static_cast<uint32_t>(s),
                    transport, primary);
        nodeSet.add(skb.shard(s), ecfg, static_cast<uint32_t>(s),
                    transport, backup);
        transport.setEndpointFaults(primary, sc.primaryFault);
        ccfg.replicas.push_back({primary, backup});
    }

    net::ClusterFrontEnd fe(transport, ccfg);

    // Seeded Poisson schedule, fixed before the run (open loop: the
    // schedule never adapts to completions).
    XorShiftRng rng(seed * 7919 + 17);
    std::vector<double> arrivals(requests);
    double at = 0.0;
    for (size_t i = 0; i < requests; ++i) {
        double u = 0.0;
        while (u == 0.0)
            u = rng.uniform();
        at += -std::log(u) / rate;
        arrivals[i] = at;
    }
    const std::vector<float> u = makeQuestions(nq, ed, seed + 3);
    std::vector<float> o(nq * ed);

    ScenarioResult res;
    res.scenario = &sc;
    res.hedging = hedging;
    res.submitted = requests;
    stats::Histogram lat(0.0, 2.0 * timeoutSeconds, 2048);
    double latMax = 0.0, latSum = 0.0;

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    for (size_t i = 0; i < requests; ++i) {
        const auto scheduled =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(arrivals[i]));
        std::this_thread::sleep_until(scheduled);
        const net::BatchResult r =
            fe.inferBatch(u.data(), nq, ed, o.data());
        const double seconds =
            std::chrono::duration<double>(Clock::now() - scheduled)
                .count();
        lat.add(seconds);
        latSum += seconds;
        latMax = std::max(latMax, seconds);
        if (r.complete)
            ++res.completedFull;
        else if (r.shardsAnswered > 0)
            ++res.completedPartial;
        else
            ++res.failed;
    }

    res.meanSeconds = latSum / static_cast<double>(requests);
    res.p50 = lat.quantile(0.50);
    res.p95 = lat.quantile(0.95);
    res.p99 = lat.quantile(0.99);
    res.maxSeconds = latMax;

    const serve::LatencySnapshot snap = fe.snapshot();
    res.rpc = snap.rpcTotals();
    res.partialQuestions = snap.partialAnswers;
    return res;
}

struct PipelineLeg
{
    const char *name;
    net::FaultSpec fault; ///< applied to every shard endpoint
    bool gated;           ///< pipelined must beat serial here
};

struct PipelineLegResult
{
    const PipelineLeg *leg = nullptr;
    size_t batches = 0;
    double serialSeconds = 0.0;
    double pipelinedSeconds = 0.0;
    double serialQps = 0.0;
    double pipelinedQps = 0.0;
    double speedup = 0.0;
    bool allComplete = true;
};

/**
 * One window-saturated pass: `batches` identical batches pushed as
 * fast as the in-flight window admits them, retired in submission
 * order. Returns the makespan (first submit to last retire). The
 * deadline is deliberately generous — this leg measures pipelining,
 * not deadline policy, and a sanitizer-slowed run must not turn a
 * throughput comparison into a partial-answer scramble.
 */
double
runPipelinePass(const net::FaultSpec &fault, size_t depth,
                const core::ShardedKnowledgeBase &skb,
                const core::EngineConfig &ecfg, size_t batches,
                size_t nq, uint64_t seed, bool &allComplete)
{
    const size_t ed = skb.parent().dim();
    net::LoopbackNetwork netns;
    net::LoopbackTransport transport(netns, fault, seed);

    NodeSet nodeSet;
    net::ClusterConfig ccfg;
    ccfg.onlineNormalize = ecfg.onlineNormalize;
    ccfg.requestTimeoutSeconds = 30.0;
    ccfg.hedging = false; // isolate pipelining from hedging
    ccfg.pipelineDepth = depth;
    for (size_t s = 0; s < skb.shardCount(); ++s) {
        const std::string ep = "p" + std::to_string(s);
        nodeSet.add(skb.shard(s), ecfg, static_cast<uint32_t>(s),
                    transport, ep);
        ccfg.replicas.push_back({ep});
    }
    net::ClusterFrontEnd fe(transport, ccfg);

    const std::vector<float> u = makeQuestions(nq, ed, seed + 5);
    std::vector<std::vector<float>> o(depth,
                                      std::vector<float>(nq * ed));
    std::vector<uint64_t> tickets(batches);

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    const size_t prime = std::min(depth, batches);
    for (size_t k = 0; k < prime; ++k)
        tickets[k] = fe.submitBatch(u.data(), nq, ed,
                                    o[k % depth].data());
    for (size_t k = 0; k < batches; ++k) {
        const net::BatchResult r = fe.waitBatch(tickets[k]);
        if (!r.complete)
            allComplete = false;
        if (k + depth < batches)
            tickets[k + depth] = fe.submitBatch(
                u.data(), nq, ed, o[(k + depth) % depth].data());
    }
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

PipelineLegResult
runPipelineLeg(const PipelineLeg &leg, size_t depth,
               const core::ShardedKnowledgeBase &skb,
               const core::EngineConfig &ecfg, size_t batches,
               size_t nq, uint64_t seed)
{
    PipelineLegResult res;
    res.leg = &leg;
    res.batches = batches;
    res.serialSeconds = runPipelinePass(leg.fault, 1, skb, ecfg,
                                        batches, nq, seed,
                                        res.allComplete);
    res.pipelinedSeconds = runPipelinePass(leg.fault, depth, skb,
                                           ecfg, batches, nq, seed,
                                           res.allComplete);
    res.serialQps =
        static_cast<double>(batches * nq) / res.serialSeconds;
    res.pipelinedQps =
        static_cast<double>(batches * nq) / res.pipelinedSeconds;
    res.speedup = res.serialSeconds / res.pipelinedSeconds;
    return res;
}

/** Lossless cluster vs in-process ShardedEngine, bitwise. */
size_t
bitIdentityMismatches(size_t shards, core::Precision prec, size_t ns,
                      size_t ed, size_t nq, size_t chunk)
{
    const core::KnowledgeBase kb = buildKb(ns, ed, prec);
    const core::ShardedKnowledgeBase skb(kb, chunk, shards);
    core::EngineConfig ecfg;
    ecfg.chunkSize = chunk;

    core::ShardedEngine reference(skb, ecfg);
    const std::vector<float> u = makeQuestions(nq, ed, 29);
    std::vector<float> expect(nq * ed), got(nq * ed);
    reference.inferBatch(u.data(), nq, expect.data());

    net::LoopbackNetwork netns;
    net::LoopbackTransport transport(netns);
    NodeSet nodeSet;
    net::ClusterConfig ccfg;
    ccfg.requestTimeoutSeconds = 60.0;
    for (size_t s = 0; s < skb.shardCount(); ++s) {
        const std::string ep = "shard" + std::to_string(s);
        nodeSet.add(skb.shard(s), ecfg, static_cast<uint32_t>(s),
                    transport, ep);
        ccfg.replicas.push_back({ep});
    }
    net::ClusterFrontEnd fe(transport, ccfg);
    const net::BatchResult r = fe.inferBatch(u.data(), nq, ed,
                                             got.data());
    if (!r.complete)
        return nq * ed; // a missing shard is a total mismatch

    size_t mismatches = 0;
    for (size_t i = 0; i < got.size(); ++i)
        if (f32Bits(got[i]) != f32Bits(expect[i]))
            ++mismatches;
    return mismatches;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool smoke = args.flag("smoke");
    const size_t shards = args.sizeOpt("shards", 2);
    const size_t requests =
        args.sizeOpt("requests", smoke ? 40 : 400);
    // The default rates keep the clean scenario comfortably
    // underloaded on a shared VM: open-loop latency is measured from
    // the scheduled arrival, so an oversaturated operating point
    // reports backlog growth instead of the injected fault effects.
    const double rate = args.floatOpt("rate", smoke ? 250.0 : 150.0);
    const uint64_t seed = args.sizeOpt("seed", 1234);
    args.finish();

    const size_t ns = smoke ? 4096 : 16384;
    const size_t ed = smoke ? 32 : 64;
    const size_t nq = 4;
    const size_t chunk = 256;
    const double timeoutSeconds = smoke ? 0.15 : 0.3;

    std::printf("cluster serving bench: %zu shards x 2 replicas, "
                "%zu requests/scenario @ %.0f q/s, KB %zux%zu\n\n",
                shards, requests, rate, ns, ed);

    // ---- Leg 1: bit-identity gate ---------------------------------
    size_t bitCases = 0, bitMismatches = 0;
    for (size_t sc : {size_t(2), size_t(4)}) {
        for (core::Precision prec :
             {core::Precision::F32, core::Precision::BF16,
              core::Precision::I8}) {
            ++bitCases;
            bitMismatches += bitIdentityMismatches(
                sc, prec, smoke ? 2048 : 8192, ed, nq, chunk);
        }
    }
    std::printf("bit-identity: %zu cases, %zu mismatched values\n",
                bitCases, bitMismatches);
    if (bitMismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: cluster gather diverged from the "
                     "in-process ShardedEngine\n");
        return 1;
    }

    // ---- Leg 2: scenario grid -------------------------------------
    // Fault magnitudes are scaled to the timeout so the smoke run
    // keeps the same structure at a fraction of the wall-clock.
    const double straggle = timeoutSeconds * 0.4;
    const Scenario scenarios[] = {
        {"clean", {}, false, true},
        {"jitter",
         {/*base*/ 2e-4, /*jitter*/ 1e-3, 0.0, 0.0, 0.0, 0.0},
         false, true},
        {"straggler",
         {1e-4, 0.0, /*stragglerProb*/ 0.08, straggle, 0.0, 0.0},
         false, true},
        {"loss", {1e-4, 0.0, 0.0, 0.0, /*lossProb*/ 0.02, 0.0},
         true, false},
        {"disconnect",
         {1e-4, 0.0, 0.0, 0.0, 0.0, /*disconnectProb*/ 0.05},
         false, true},
    };

    const core::KnowledgeBase kb = buildKb(ns, ed);
    const core::ShardedKnowledgeBase skb(kb, chunk, shards);
    core::EngineConfig ecfg;
    ecfg.chunkSize = chunk;

    std::vector<ScenarioResult> results;
    bool failoverGateOk = true;
    for (const Scenario &sc : scenarios) {
        for (bool hedging : {true, false}) {
            ScenarioResult r =
                runScenario(sc, hedging, skb, ecfg, requests, rate,
                            nq, seed, timeoutSeconds);
            // Leg 3: under recoverable faults with partial answers
            // disabled, failover must not lose any accepted request
            // when hedging is on (an unhedged run can only wait out
            // the deadline on a lost message, which is the point of
            // the comparison, so the hard gate applies to hedged
            // runs).
            if (sc.assertAllComplete && hedging
                && r.completedFull != r.submitted) {
                std::fprintf(
                    stderr,
                    "FAIL: scenario %s (hedging) lost requests: "
                    "%zu submitted, %zu completed\n",
                    sc.name, r.submitted, r.completedFull);
                failoverGateOk = false;
            }
            results.push_back(r);
        }
    }

    stats::Table table({"scenario", "hedge", "done", "partial",
                        "failed", "p50 (ms)", "p99 (ms)", "max (ms)",
                        "hedges", "wins", "failovers", "misses"});
    for (const ScenarioResult &r : results) {
        table.addRow({r.scenario->name, r.hedging ? "on" : "off",
                      std::to_string(r.completedFull),
                      std::to_string(r.completedPartial),
                      std::to_string(r.failed),
                      stats::Table::num(r.p50 * 1e3, 2),
                      stats::Table::num(r.p99 * 1e3, 2),
                      stats::Table::num(r.maxSeconds * 1e3, 2),
                      std::to_string(r.rpc.hedgesFired),
                      std::to_string(r.rpc.hedgeWins),
                      std::to_string(r.rpc.failovers),
                      std::to_string(r.rpc.deadlineMisses)});
    }
    table.print();

    // The headline pair: straggler-tail with and without hedging.
    double stragglerP99Hedged = 0.0, stragglerP99Unhedged = 0.0;
    for (const ScenarioResult &r : results) {
        if (std::string(r.scenario->name) != "straggler")
            continue;
        (r.hedging ? stragglerP99Hedged : stragglerP99Unhedged) =
            r.p99;
    }
    std::printf("\nstraggler p99: %.2f ms hedged vs %.2f ms unhedged "
                "(%.1fx)\n",
                stragglerP99Hedged * 1e3, stragglerP99Unhedged * 1e3,
                stragglerP99Hedged > 0.0
                    ? stragglerP99Unhedged / stragglerP99Hedged
                    : 0.0);

    // ---- Leg 4: pipelined vs serial -------------------------------
    const size_t pipelineDepth = 4;
    const size_t pipelineBatches = smoke ? 64 : 256;
    // "clean" is a clean *network*, not a zero-cost one: a constant
    // per-message latency and nothing else. On a zero-latency wire
    // the window has no round trip to hide and the comparison just
    // measures scheduler noise; with a real (if small) RTT the serial
    // front end must pay it per batch while send-ahead overlaps it
    // with node compute — the deterministic speedup this leg gates.
    const PipelineLeg pipelineLegs[] = {
        {"clean",
         {/*base*/ 1e-3, 0.0, 0.0, 0.0, 0.0, 0.0}, true},
        {"jitter",
         {/*base*/ 5e-4, /*jitter*/ 1e-3, 0.0, 0.0, 0.0, 0.0}, true},
        {"straggler",
         {1e-4, 0.0, /*stragglerProb*/ 0.08, straggle, 0.0, 0.0},
         false},
    };
    std::vector<PipelineLegResult> pipelineResults;
    bool pipelineGateOk = true;
    for (const PipelineLeg &leg : pipelineLegs) {
        PipelineLegResult r =
            runPipelineLeg(leg, pipelineDepth, skb, ecfg,
                           pipelineBatches, nq, seed);
        if (!r.allComplete) {
            std::fprintf(stderr,
                         "FAIL: pipeline leg %s lost batches\n",
                         leg.name);
            pipelineGateOk = false;
        }
        if (leg.gated && r.speedup <= 1.0) {
            std::fprintf(stderr,
                         "FAIL: pipelined (W=%zu) did not beat serial "
                         "on %s: %.1f q/s vs %.1f q/s\n",
                         pipelineDepth, leg.name, r.pipelinedQps,
                         r.serialQps);
            pipelineGateOk = false;
        }
        pipelineResults.push_back(r);
    }

    std::printf("\npipelined vs serial (W=%zu, %zu batches x %zu "
                "questions):\n",
                pipelineDepth, pipelineBatches, nq);
    stats::Table ptable({"leg", "serial q/s", "pipelined q/s",
                         "speedup", "gate"});
    for (const PipelineLegResult &r : pipelineResults)
        ptable.addRow({r.leg->name,
                       stats::Table::num(r.serialQps, 1),
                       stats::Table::num(r.pipelinedQps, 1),
                       stats::Table::num(r.speedup, 2),
                       r.leg->gated ? (r.speedup > 1.0 ? "ok" : "FAIL")
                                    : "-"});
    ptable.print();

    // ---- JSON -----------------------------------------------------
    bench::JsonWriter json(
        bench::benchJsonPath("BENCH_cluster.json"));
    json.beginObject();
    json.field("bench", "serving_cluster");
    json.key("config");
    json.beginObject();
    json.field("shards", shards);
    json.field("replicas_per_shard", size_t(2));
    json.field("requests_per_scenario", requests);
    json.field("arrival_rate_qps", rate);
    json.field("batch_questions", nq);
    json.field("kb_sentences", ns);
    json.field("embedding_dim", ed);
    json.field("request_timeout_seconds", timeoutSeconds);
    json.field("seed", size_t(seed));
    json.field("smoke", smoke);
    json.endObject();
    json.key("bit_identity");
    json.beginObject();
    json.field("cases", bitCases);
    json.field("mismatched_values", bitMismatches);
    json.endObject();
    json.key("scenarios");
    json.beginArray();
    for (const ScenarioResult &r : results) {
        json.beginObject();
        json.field("name", r.scenario->name);
        json.field("hedging", r.hedging);
        json.field("submitted", r.submitted);
        json.field("completed_full", r.completedFull);
        json.field("completed_partial", r.completedPartial);
        json.field("failed", r.failed);
        json.field("partial_questions", size_t(r.partialQuestions));
        json.key("latency_seconds");
        json.beginObject();
        json.field("mean", r.meanSeconds);
        json.field("p50", r.p50);
        json.field("p95", r.p95);
        json.field("p99", r.p99);
        json.field("max", r.maxSeconds);
        json.endObject();
        json.key("rpc");
        json.beginObject();
        json.field("rpcs", size_t(r.rpc.rpcs));
        json.field("hedges_fired", size_t(r.rpc.hedgesFired));
        json.field("hedge_wins", size_t(r.rpc.hedgeWins));
        json.field("failovers", size_t(r.rpc.failovers));
        json.field("deadline_misses", size_t(r.rpc.deadlineMisses));
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.field("straggler_p99_hedged_seconds", stragglerP99Hedged);
    json.field("straggler_p99_unhedged_seconds",
               stragglerP99Unhedged);
    json.field("failover_gate_ok", failoverGateOk);
    json.key("pipeline");
    json.beginObject();
    json.field("depth", pipelineDepth);
    json.field("batches", pipelineBatches);
    json.key("legs");
    json.beginArray();
    for (const PipelineLegResult &r : pipelineResults) {
        json.beginObject();
        json.field("name", r.leg->name);
        json.field("gated", r.leg->gated);
        json.field("serial_seconds", r.serialSeconds);
        json.field("pipelined_seconds", r.pipelinedSeconds);
        json.field("serial_qps", r.serialQps);
        json.field("pipelined_qps", r.pipelinedQps);
        json.field("speedup", r.speedup);
        json.field("all_complete", r.allComplete);
        json.endObject();
    }
    json.endArray();
    json.field("gate_ok", pipelineGateOk);
    json.endObject();
    json.endObject();

    std::printf("\nwrote %s (%zu scenario points)\n",
                json.path().c_str(), results.size());
    std::printf("reading: hedged runs should hold p99 near the clean "
                "scenario while unhedged straggler/loss runs pay the "
                "injected tail or the full deadline; the disconnect "
                "scenario shows failover recovering every request "
                "without partial answers; the pipeline legs show a "
                "W-deep window overlapping scatter and gather to beat "
                "the serial front end's throughput\n");

    if (!failoverGateOk || !pipelineGateOk)
        return 1;
    return 0;
}
