/**
 * @file
 * Reproduces paper Figure 6: "Probability value distribution" — the
 * observation that a trained memory network's attention vector is
 * extremely sparse (only a few story sentences correlate with a
 * question).
 *
 * A real end-to-end MemNN is trained on the synthetic bAbI task with
 * 50-sentence stories (as in the paper's bAbI setup); the p-vectors
 * of 100 test questions are then summarized: per-question activation
 * counts and the global probability-mass histogram.
 */

#include <cstdio>

#include "bench_util.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

using namespace mnnfast;

int
main()
{
    bench::banner("Figure 6: probability (attention) value distribution",
                  "Trained MemNN, 50-sentence stories, 100 questions. "
                  "The paper's claim: only a few values are activated; "
                  "the rest are close to zero.");

    const size_t story_len = 50;
    auto task =
        bench::trainTask(data::TaskType::SingleSupportingFact,
                         /*ed=*/32, /*hops=*/1, story_len,
                         /*examples=*/1000, /*epochs=*/40, /*seed=*/7);
    std::printf("trained model accuracy (train set): %.3f\n\n",
                task.trainAccuracy);

    stats::Histogram hist(0.0, 1.0, 20);
    train::ForwardState state;

    size_t total_ge_01 = 0, total_ge_001 = 0, total = 0;
    double max_p_sum = 0.0;
    const size_t questions = 100;

    stats::Table sample({"question", "max p", "#p>=0.1", "#p>=0.01",
                         "#p<0.01"});
    for (size_t q = 0; q < questions; ++q) {
        const data::Example ex = task.gen->generate(story_len);
        task.model->forward(ex, state);
        const auto &p = state.p[0];

        double maxp = 0.0;
        size_t ge_01 = 0, ge_001 = 0;
        for (float v : p) {
            hist.add(v);
            maxp = std::max(maxp, double(v));
            ge_01 += v >= 0.1f;
            ge_001 += v >= 0.01f;
        }
        total_ge_01 += ge_01;
        total_ge_001 += ge_001;
        total += p.size();
        max_p_sum += maxp;

        if (q < 8) {
            sample.addRow({std::to_string(q),
                           stats::Table::num(maxp, 3),
                           stats::Table::num(uint64_t(ge_01)),
                           stats::Table::num(uint64_t(ge_001)),
                           stats::Table::num(
                               uint64_t(p.size() - ge_001))});
        }
    }

    std::printf("sample of per-question activation counts:\n");
    sample.print();

    std::printf("\naggregate over %zu questions x %zu sentences:\n",
                questions, story_len);
    std::printf("  mean max probability:        %.3f\n",
                max_p_sum / questions);
    std::printf("  mean #values >= 0.1:         %.2f  (of %zu)\n",
                double(total_ge_01) / questions, story_len);
    std::printf("  mean #values >= 0.01:        %.2f\n",
                double(total_ge_001) / questions);
    std::printf("  fraction of values < 0.01:   %.1f%%\n",
                100.0 * (1.0 - double(total_ge_001) / total));

    std::printf("\nprobability-mass histogram (all values):\n%s",
                hist.toString(40).c_str());
    return 0;
}
