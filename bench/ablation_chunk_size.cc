/**
 * @file
 * Ablation: the column-based algorithm's chunk size (DESIGN.md design
 * decision 2). Two views:
 *  - measured single-thread latency of the real ColumnEngine across
 *    chunk sizes (too small: per-chunk overhead; too large: chunk
 *    temporaries spill out of cache);
 *  - simulated off-chip demand misses across chunk sizes on the
 *    paper-scale LLC, showing the working-set cliff.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/column_engine.hh"
#include "sim/traffic.hh"
#include "stats/table.hh"
#include "util/rng.hh"
#include "util/timer.hh"

using namespace mnnfast;

int
main()
{
    bench::banner("Ablation: column-algorithm chunk size",
                  "Left: measured engine latency (this host). Right: "
                  "simulated demand misses (30MB LLC).");

    const size_t ns = 1 << 18, ed = 48, nq = 8;
    core::KnowledgeBase kb(ed);
    kb.reserve(ns);
    {
        XorShiftRng rng(1);
        std::vector<float> a(ed), b(ed);
        for (size_t i = 0; i < ns; ++i) {
            for (size_t e = 0; e < ed; ++e) {
                a[e] = rng.uniformRange(-0.3f, 0.3f);
                b[e] = rng.uniformRange(-0.3f, 0.3f);
            }
            kb.addSentence(a.data(), b.data());
        }
    }
    XorShiftRng rng(2);
    std::vector<float> u(nq * ed), o(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-0.3f, 0.3f);

    sim::CacheConfig llc;
    llc.sizeBytes = 30ull << 20;
    llc.associativity = 20;

    stats::Table table({"chunk size", "measured ms", "sim demand "
                        "misses", "sim intermediate KB"});
    for (size_t chunk :
         {64ul, 256ul, 1000ul, 4096ul, 16384ul, 65536ul, 262144ul}) {
        core::EngineConfig cfg;
        cfg.chunkSize = chunk;
        cfg.streaming = true;
        core::ColumnEngine engine(kb, cfg);
        engine.inferBatch(u.data(), nq, o.data()); // warmup
        Timer t;
        for (int rep = 0; rep < 3; ++rep)
            engine.inferBatch(u.data(), nq, o.data());
        const double ms = t.millis() / 3;

        sim::WorkloadParams wp;
        wp.ns = 1 << 17;
        wp.ed = ed;
        wp.nq = 32;
        wp.chunkSize = chunk;
        const auto traffic =
            sim::simulateDataflow(sim::Dataflow::Column, wp, llc);

        table.addRow(
            {std::to_string(chunk), stats::Table::num(ms, 2),
             stats::Table::num(traffic.demandMisses()),
             stats::Table::num(uint64_t(wp.nq * chunk * 4 / 1024))});
    }
    table.print();

    std::printf("\nthe paper's choice (1000 sentences/chunk) sits on "
                "the flat part of both curves\n");
    return 0;
}
