/**
 * @file
 * Ablation: knowledge-base storage precision (DESIGN.md §7, §10). The
 * column-dataflow engines are memory-bound on the M_IN/M_OUT stream
 * at small batch sizes, so storing the knowledge base in bfloat16
 * halves — and in int8 quarters — the streamed bytes, which should
 * translate into wall-clock speedup wherever the stream (not the
 * arithmetic) is the bottleneck.
 *
 * For each (ns, ed) geometry and engine configuration the same random
 * knowledge base is built in fp32, bf16 and int8 and timed end to
 * end; the per-chunk effective bandwidth (KB bytes / batch seconds)
 * and the speedups relative to fp32 are reported, together with the
 * maximum deviation of the answer scores from the fp32 result per
 * reduced precision — the accuracy cost of the compressed storage,
 * which DESIGN.md §7 (bf16) and §10 (int8) bound analytically.
 *
 * Emits BENCH_precision.json (path overridable via the
 * MNNFAST_BENCH_JSON environment variable) for tracking.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/column_engine.hh"
#include "stats/table.hh"
#include "util/rng.hh"
#include "util/timer.hh"

using namespace mnnfast;

namespace {

struct EngineSpec
{
    const char *label;
    bool streaming;
    float skipThreshold;
};

struct Geometry
{
    size_t ns;
    size_t ed;
};

constexpr float kScale = 0.3f;

core::KnowledgeBase
buildKb(size_t ns, size_t ed, core::Precision prec)
{
    core::KnowledgeBase kb(ed, prec);
    kb.reserve(ns);
    XorShiftRng rng(1);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-kScale, kScale);
            b[e] = rng.uniformRange(-kScale, kScale);
        }
        kb.addSentence(a.data(), b.data());
    }
    return kb;
}

/**
 * Minimum seconds of one inferBatch call over `reps` repetitions.
 * The minimum, not the median: the engines are single-threaded and
 * deterministic, so the fastest repetition is the one least disturbed
 * by scheduler preemption and co-tenant cache traffic — the median
 * would fold that external noise into the reported number, and it
 * biases the RATIOS too, because a fixed preemption quantum costs a
 * short (compressed-KB) run proportionally more than a long one. The
 * same estimator is applied to every precision and engine.
 */
double
measure(core::ColumnEngine &engine, const float *u, size_t nq, float *o,
        size_t reps)
{
    engine.inferBatch(u, nq, o); // warmup: page in KB, grow arenas
    engine.inferBatch(u, nq, o); // second pass settles the LLC set
    double best = 0.0;
    Timer t;
    for (size_t rep = 0; rep < reps; ++rep) {
        t.reset();
        engine.inferBatch(u, nq, o);
        const double s = t.seconds();
        if (rep == 0 || s < best)
            best = s;
    }
    return best;
}

double
maxDeviation(const std::vector<float> &ref, const std::vector<float> &o)
{
    double dev = 0.0;
    for (size_t i = 0; i < ref.size(); ++i)
        dev = std::max(dev, std::abs(double(ref[i]) - o[i]));
    return dev;
}

} // namespace

int
main()
{
    bench::banner("Ablation: knowledge-base storage precision",
                  "fp32 vs bf16 (half the bytes) vs int8 (a quarter), "
                  "per engine and geometry, with the answer-score "
                  "deviation cost of each compressed format.");

    // The largest geometry (64 MiB fp32 KB at ns=65536, ed=128) far
    // exceeds any LLC, so the engines run from the DRAM stream there:
    // that point is where the bandwidth scaling must show end to end.
    const Geometry geoms[] = {{16384, 64}, {16384, 256}, {65536, 128}};
    const size_t nq = 1; // most bandwidth-bound point: no batch reuse
    const size_t reps = 9;

    const EngineSpec specs[] = {
        {"column", false, 0.f},
        {"column+zskip", false, 1e-4f},
        {"mnnfast", true, 1e-4f},
    };

    const char *json_path = std::getenv("MNNFAST_BENCH_JSON");
    if (!json_path)
        json_path = "BENCH_precision.json";
    FILE *json = std::fopen(json_path, "w");
    if (!json) {
        std::fprintf(stderr, "cannot open %s for writing\n", json_path);
        return 1;
    }
    std::fprintf(json, "{\n  \"nq\": %zu,\n  \"threads\": 0,\n"
                       "  \"configs\": [",
                 nq);

    stats::Table table({"ns", "ed", "engine", "f32 ms", "bf16 ms",
                        "i8 ms", "bf16 x", "i8 x", "i8/bf16",
                        "dev bf16", "dev i8"});
    auto csv = bench::maybeCsv("ablation_precision");
    if (csv)
        csv->writeRow({"ns", "ed", "engine", "f32_seconds",
                       "bf16_seconds", "i8_seconds", "speedup_bf16",
                       "speedup_i8", "max_deviation_bf16",
                       "max_deviation_i8"});

    // Acceptance tracking at the DRAM-bound geometry (mnnfast engine):
    // int8 must beat bf16 by >= 1.4x and fp32 by >= 2.5x there.
    double mnnfast_i8_vs_f32_large = 0.0;
    double mnnfast_i8_vs_bf16_large = 0.0;
    double bf16_speedup_large = 0.0;
    double max_dev_bf16 = 0.0;
    double max_dev_i8 = 0.0;
    bool first_cfg = true;
    for (const Geometry &g : geoms) {
        const size_t chunk = std::min<size_t>(512, g.ns);
        constexpr size_t kNSpecs = 3;
        constexpr core::Precision precs[] = {core::Precision::F32,
                                             core::Precision::BF16,
                                             core::Precision::I8};

        XorShiftRng rng(2);
        std::vector<float> u(nq * g.ed);
        for (float &x : u)
            x = rng.uniformRange(-kScale, kScale);

        // Precision-major measurement with the knowledge base scoped
        // to its own precision's runs: a serving process hosts ONE
        // knowledge base, so timing each format with the other two
        // formats' copies resident would pollute the cache hierarchy
        // with up to 7x extra bytes and distort exactly the
        // bandwidth-bound regime this ablation exists to measure.
        double secs[kNSpecs][3] = {};
        double devs[kNSpecs][3] = {};
        size_t kb_bytes[3] = {};
        std::vector<float> ref[kNSpecs];
        std::vector<float> o(nq * g.ed);
        for (size_t pi = 0; pi < 3; ++pi) {
            const core::KnowledgeBase kb =
                buildKb(g.ns, g.ed, precs[pi]);
            kb_bytes[pi] = kb.bytes();
            for (size_t si = 0; si < kNSpecs; ++si) {
                core::EngineConfig cfg;
                cfg.chunkSize = chunk;
                cfg.threads = 0; // inline: isolate the stream
                cfg.streaming = specs[si].streaming;
                cfg.skipThreshold = specs[si].skipThreshold;
                core::ColumnEngine eng(kb, cfg);
                secs[si][pi] =
                    measure(eng, u.data(), nq, o.data(), reps);
                if (pi == 0)
                    ref[si] = o;
                else
                    devs[si][pi] = maxDeviation(ref[si], o);
            }
        }

        std::fprintf(json,
                     "%s\n    {\n      \"ns\": %zu,\n      \"ed\": %zu,"
                     "\n      \"chunk\": %zu,\n"
                     "      \"kb_bytes_f32\": %zu,\n"
                     "      \"kb_bytes_bf16\": %zu,\n"
                     "      \"kb_bytes_i8\": %zu,\n"
                     "      \"engines\": [",
                     first_cfg ? "" : ",", g.ns, g.ed, chunk,
                     kb_bytes[0], kb_bytes[1], kb_bytes[2]);
        first_cfg = false;

        bool first_engine = true;
        for (size_t si = 0; si < kNSpecs; ++si) {
            const EngineSpec &spec = specs[si];
            const double t32 = secs[si][0];
            const double t16 = secs[si][1];
            const double t8 = secs[si][2];
            // Effective per-chunk stream bandwidth: every chunk's
            // M_IN/M_OUT bytes are read once per batch (an upper
            // bound under zero-skipping, which reads less).
            const double gbps32 = double(kb_bytes[0]) / t32 / 1e9;
            const double gbps16 = double(kb_bytes[1]) / t16 / 1e9;
            const double gbps8 = double(kb_bytes[2]) / t8 / 1e9;
            const double speedup16 = t32 / t16;
            const double speedup8 = t32 / t8;
            const double i8_over_bf16 = t16 / t8;

            const double dev16 = devs[si][1];
            const double dev8 = devs[si][2];
            max_dev_bf16 = std::max(max_dev_bf16, dev16);
            max_dev_i8 = std::max(max_dev_i8, dev8);
            if (g.ns * g.ed >= 65536 * 128) {
                bf16_speedup_large =
                    std::max(bf16_speedup_large, speedup16);
                if (std::string(spec.label) == "mnnfast") {
                    mnnfast_i8_vs_f32_large = speedup8;
                    mnnfast_i8_vs_bf16_large = i8_over_bf16;
                }
            }

            table.addRow({std::to_string(g.ns), std::to_string(g.ed),
                          spec.label, stats::Table::num(t32 * 1e3, 3),
                          stats::Table::num(t16 * 1e3, 3),
                          stats::Table::num(t8 * 1e3, 3),
                          stats::Table::num(speedup16, 3),
                          stats::Table::num(speedup8, 3),
                          stats::Table::num(i8_over_bf16, 3),
                          stats::Table::num(dev16, 6),
                          stats::Table::num(dev8, 6)});
            if (csv)
                csv->writeRow({std::to_string(g.ns),
                               std::to_string(g.ed),
                               std::string(spec.label),
                               std::to_string(t32), std::to_string(t16),
                               std::to_string(t8),
                               std::to_string(speedup16),
                               std::to_string(speedup8),
                               std::to_string(dev16),
                               std::to_string(dev8)});
            std::fprintf(json,
                         "%s\n        {\"name\": \"%s\", "
                         "\"f32_seconds\": %.9f, "
                         "\"bf16_seconds\": %.9f, "
                         "\"i8_seconds\": %.9f, "
                         "\"f32_gbps\": %.4f, \"bf16_gbps\": %.4f, "
                         "\"i8_gbps\": %.4f, "
                         "\"speedup_bf16\": %.4f, "
                         "\"speedup_i8\": %.4f, "
                         "\"i8_over_bf16\": %.4f, "
                         "\"max_abs_deviation_bf16\": %.9f, "
                         "\"max_abs_deviation_i8\": %.9f}",
                         first_engine ? "" : ",", spec.label, t32, t16,
                         t8, gbps32, gbps16, gbps8, speedup16, speedup8,
                         i8_over_bf16, dev16, dev8);
            first_engine = false;
        }
        std::fprintf(json, "\n      ]\n    }");
    }

    // Analytic deviation bounds for the measured geometry family
    // (DESIGN.md §7 and §10). bf16 rounding is <= 2^-8 relative per
    // stored element; the int8 per-chunk affine code over data in
    // [-kScale, kScale] has step <= 2*kScale/255, so its half-step
    // error is also <= kScale * 2^-8 per element. Either way every
    // inner product shifts by at most ed * kScale^2 * 2^-8 and every
    // output element by the direct M_OUT rounding plus the softmax
    // reweighting of the dot shifts — the same bound covers both
    // reduced precisions.
    const double max_ed = 256.0;
    const double dot_shift =
        max_ed * double(kScale) * double(kScale) * 0x1p-8;
    const double dev_bound =
        0.1 * double(kScale) + 2.0 * dot_shift + 1e-3;
    std::fprintf(json,
                 "\n  ],\n  \"max_deviation_bf16\": %.9f,\n"
                 "  \"max_deviation_i8\": %.9f,\n"
                 "  \"deviation_bound\": %.9f,\n"
                 "  \"speedup_large_kb\": %.4f,\n"
                 "  \"mnnfast_i8_vs_f32_large\": %.4f,\n"
                 "  \"mnnfast_i8_vs_bf16_large\": %.4f\n}\n",
                 max_dev_bf16, max_dev_i8, dev_bound,
                 bf16_speedup_large, mnnfast_i8_vs_f32_large,
                 mnnfast_i8_vs_bf16_large);
    std::fclose(json);

    table.print();
    std::printf("\nwrote %s; at the large geometry the mnnfast engine "
                "ran int8 %.2fx over fp32 and %.2fx over bf16 "
                "(bf16 %.2fx over fp32); max answer-score deviation "
                "bf16 %.2e, i8 %.2e (bound %.2e)\n",
                json_path, mnnfast_i8_vs_f32_large,
                mnnfast_i8_vs_bf16_large, bf16_speedup_large,
                max_dev_bf16, max_dev_i8, dev_bound);
    return (max_dev_bf16 <= dev_bound && max_dev_i8 <= dev_bound) ? 0
                                                                  : 1;
}
