/**
 * @file
 * Ablation: knowledge-base storage precision (DESIGN.md §7). The
 * column-dataflow engines are memory-bound on the M_IN/M_OUT stream
 * at small batch sizes, so storing the knowledge base in bfloat16
 * halves the streamed bytes and should translate into wall-clock
 * speedup wherever the stream (not the arithmetic) is the bottleneck.
 *
 * For each (ns, ed) geometry and engine configuration the same random
 * knowledge base is built in fp32 and bf16 and timed end to end; the
 * per-chunk effective bandwidth (KB bytes / batch seconds) and the
 * fp32/bf16 speedup are reported, together with the maximum deviation
 * of the answer scores between the two precisions — the accuracy cost
 * of the halved storage, which DESIGN.md §7 bounds analytically.
 *
 * Emits BENCH_precision.json (path overridable via the
 * MNNFAST_BENCH_JSON environment variable) for tracking.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/column_engine.hh"
#include "stats/table.hh"
#include "util/rng.hh"
#include "util/timer.hh"

using namespace mnnfast;

namespace {

struct EngineSpec
{
    const char *label;
    bool streaming;
    float skipThreshold;
};

struct Geometry
{
    size_t ns;
    size_t ed;
};

constexpr float kScale = 0.3f;

core::KnowledgeBase
buildKb(size_t ns, size_t ed, core::Precision prec)
{
    core::KnowledgeBase kb(ed, prec);
    kb.reserve(ns);
    XorShiftRng rng(1);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-kScale, kScale);
            b[e] = rng.uniformRange(-kScale, kScale);
        }
        kb.addSentence(a.data(), b.data());
    }
    return kb;
}

/** Median seconds of one inferBatch call. */
double
measure(core::ColumnEngine &engine, const float *u, size_t nq, float *o,
        size_t reps)
{
    engine.inferBatch(u, nq, o); // warmup: page in KB, grow arenas
    std::vector<double> samples(reps);
    Timer t;
    for (double &s : samples) {
        t.reset();
        engine.inferBatch(u, nq, o);
        s = t.seconds();
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // namespace

int
main()
{
    bench::banner("Ablation: bf16 knowledge-base storage",
                  "Halved KB stream bytes vs fp32, per engine and "
                  "geometry, with the answer-score deviation cost.");

    // The largest geometry (64 MiB fp32 KB at ns=65536, ed=128) far
    // exceeds any LLC, so the engines run from the DRAM stream there:
    // that point is where the bandwidth halving must show end to end.
    const Geometry geoms[] = {{16384, 64}, {16384, 256}, {65536, 128}};
    const size_t nq = 1; // most bandwidth-bound point: no batch reuse
    const size_t reps = 5;

    const EngineSpec specs[] = {
        {"column", false, 0.f},
        {"column+zskip", false, 1e-4f},
        {"mnnfast", true, 1e-4f},
    };

    const char *json_path = std::getenv("MNNFAST_BENCH_JSON");
    if (!json_path)
        json_path = "BENCH_precision.json";
    FILE *json = std::fopen(json_path, "w");
    if (!json) {
        std::fprintf(stderr, "cannot open %s for writing\n", json_path);
        return 1;
    }
    std::fprintf(json, "{\n  \"nq\": %zu,\n  \"threads\": 0,\n"
                       "  \"configs\": [",
                 nq);

    stats::Table table({"ns", "ed", "engine", "f32 ms", "bf16 ms",
                        "f32 GB/s", "bf16 GB/s", "speedup", "max dev"});
    auto csv = bench::maybeCsv("ablation_precision");
    if (csv)
        csv->writeRow({"ns", "ed", "engine", "f32_seconds",
                       "bf16_seconds", "speedup", "max_deviation"});

    double best_speedup_large = 0.0;
    double max_dev_overall = 0.0;
    bool first_cfg = true;
    for (const Geometry &g : geoms) {
        const core::KnowledgeBase kb32 =
            buildKb(g.ns, g.ed, core::Precision::F32);
        const core::KnowledgeBase kb16 =
            buildKb(g.ns, g.ed, core::Precision::BF16);
        const size_t chunk = std::min<size_t>(512, g.ns);

        XorShiftRng rng(2);
        std::vector<float> u(nq * g.ed);
        std::vector<float> o32(nq * g.ed), o16(nq * g.ed);
        for (float &x : u)
            x = rng.uniformRange(-kScale, kScale);

        std::fprintf(json,
                     "%s\n    {\n      \"ns\": %zu,\n      \"ed\": %zu,"
                     "\n      \"chunk\": %zu,\n"
                     "      \"kb_bytes_f32\": %zu,\n"
                     "      \"kb_bytes_bf16\": %zu,\n"
                     "      \"engines\": [",
                     first_cfg ? "" : ",", g.ns, g.ed, chunk,
                     kb32.bytes(), kb16.bytes());
        first_cfg = false;

        bool first_engine = true;
        for (const EngineSpec &spec : specs) {
            core::EngineConfig cfg;
            cfg.chunkSize = chunk;
            cfg.threads = 0; // inline: isolate the stream, not the pool
            cfg.streaming = spec.streaming;
            cfg.skipThreshold = spec.skipThreshold;
            core::ColumnEngine e32(kb32, cfg);
            core::ColumnEngine e16(kb16, cfg);

            const double t32 =
                measure(e32, u.data(), nq, o32.data(), reps);
            const double t16 =
                measure(e16, u.data(), nq, o16.data(), reps);
            // Effective per-chunk stream bandwidth: every chunk's
            // M_IN/M_OUT bytes are read once per batch (an upper
            // bound under zero-skipping, which reads less).
            const double gbps32 = double(kb32.bytes()) / t32 / 1e9;
            const double gbps16 = double(kb16.bytes()) / t16 / 1e9;
            const double speedup = t32 / t16;

            double dev = 0.0;
            for (size_t i = 0; i < o32.size(); ++i)
                dev = std::max(dev,
                               std::abs(double(o32[i]) - o16[i]));
            max_dev_overall = std::max(max_dev_overall, dev);
            if (g.ns * g.ed >= 65536 * 128)
                best_speedup_large = std::max(best_speedup_large,
                                              speedup);

            table.addRow({std::to_string(g.ns), std::to_string(g.ed),
                          spec.label, stats::Table::num(t32 * 1e3, 3),
                          stats::Table::num(t16 * 1e3, 3),
                          stats::Table::num(gbps32, 2),
                          stats::Table::num(gbps16, 2),
                          stats::Table::num(speedup, 3),
                          stats::Table::num(dev, 6)});
            if (csv)
                csv->writeRow({std::to_string(g.ns),
                               std::to_string(g.ed),
                               std::string(spec.label),
                               std::to_string(t32), std::to_string(t16),
                               std::to_string(speedup),
                               std::to_string(dev)});
            std::fprintf(json,
                         "%s\n        {\"name\": \"%s\", "
                         "\"f32_seconds\": %.9f, "
                         "\"bf16_seconds\": %.9f, "
                         "\"f32_gbps\": %.4f, \"bf16_gbps\": %.4f, "
                         "\"speedup\": %.4f, "
                         "\"max_abs_deviation\": %.9f}",
                         first_engine ? "" : ",", spec.label, t32, t16,
                         gbps32, gbps16, speedup, dev);
            first_engine = false;
        }
        std::fprintf(json, "\n      ]\n    }");
    }

    // The analytic deviation bound of DESIGN.md §7 for the measured
    // geometry family: each stored element carries <= 2^-8 relative
    // rounding, shifting every inner product by at most
    // ed * scale^2 * 2^-8 and every output element by the direct
    // M_OUT rounding plus the softmax reweighting of the dot shifts.
    const double max_ed = 256.0;
    const double dot_shift =
        max_ed * double(kScale) * double(kScale) * 0x1p-8;
    const double dev_bound =
        0.1 * double(kScale) + 2.0 * dot_shift + 1e-3;
    std::fprintf(json,
                 "\n  ],\n  \"max_deviation_overall\": %.9f,\n"
                 "  \"deviation_bound\": %.9f,\n"
                 "  \"speedup_large_kb\": %.4f\n}\n",
                 max_dev_overall, dev_bound, best_speedup_large);
    std::fclose(json);

    table.print();
    std::printf("\nwrote %s; bf16 speedup at the large geometry: "
                "%.2fx (>= 1.5x expected when DRAM-bound), max "
                "answer-score deviation %.2e (bound %.2e)\n",
                json_path, best_speedup_large, max_dev_overall,
                dev_bound);
    return max_dev_overall <= dev_bound ? 0 : 1;
}
