/**
 * @file
 * Reproduces paper Figure 11: "The number of off-chip memory accesses
 * on CPU", normalized to the baseline.
 *
 * Paper's claims: the column-based algorithm turns the baseline's
 * intermediate-spill DRAM traffic into LLC hits; adding streaming
 * removes more than 60% of the off-chip (demand) accesses.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/traffic.hh"
#include "stats/table.hh"

using namespace mnnfast;

int
main()
{
    bench::banner("Figure 11: off-chip memory accesses (normalized to "
                  "baseline)",
                  "Demand misses stall the pipeline; streamed "
                  "prefetches consume bandwidth but are overlapped.");

    sim::WorkloadParams wp;
    wp.ns = 1 << 17;
    wp.ed = 48;
    wp.nq = 32;
    wp.chunkSize = 1000;
    wp.zskipKeepFraction = 0.1;
    sim::CacheConfig llc;
    llc.sizeBytes = 30ull << 20;
    llc.associativity = 20;

    const sim::Dataflow flows[] = {
        sim::Dataflow::Baseline, sim::Dataflow::Column,
        sim::Dataflow::ColumnStreaming, sim::Dataflow::MnnFast};

    double base_total = 0.0;
    double base_demand = 0.0;
    stats::Table table({"dataflow", "off-chip lines (total)",
                        "normalized total", "demand misses",
                        "normalized demand", "LLC hit rate"});
    for (sim::Dataflow df : flows) {
        const auto r = sim::simulateDataflow(df, wp, llc);
        if (df == sim::Dataflow::Baseline) {
            base_total = double(r.dramLines());
            base_demand = double(r.demandMisses());
        }
        uint64_t hits = 0;
        for (const auto &p : r.phases)
            hits += p.hits;
        table.addRow(
            {sim::dataflowName(df), stats::Table::num(r.dramLines()),
             stats::Table::num(double(r.dramLines()) / base_total, 3),
             stats::Table::num(r.demandMisses()),
             stats::Table::num(double(r.demandMisses()) / base_demand,
                               3),
             stats::Table::num(double(hits) / double(r.accesses()),
                               3)});
    }
    table.print();
    std::printf("\n'total' counts every off-chip line (the paper's "
                "Fig. 11 metric: column+streaming removes >60%%); "
                "'demand' excludes prefetched lines, which are "
                "overlapped and do not stall\n");

    // Per-phase view for the baseline vs column comparison.
    std::printf("\nper-phase demand misses:\n");
    stats::Table phases({"dataflow", "inner_product", "softmax",
                         "weighted_sum"});
    for (sim::Dataflow df : flows) {
        const auto r = sim::simulateDataflow(df, wp, llc);
        phases.addRow({sim::dataflowName(df),
                       stats::Table::num(r.phases[0].demandMisses),
                       stats::Table::num(r.phases[1].demandMisses),
                       stats::Table::num(r.phases[2].demandMisses)});
    }
    phases.print();

    std::printf("\npaper reference: column makes baseline's DRAM "
                "accesses hit in the LLC; column+streaming removes "
                ">60%% of off-chip accesses\n");
    return 0;
}
