/**
 * @file
 * Ablation: where the CPU timing model's bandwidth asymmetry comes
 * from. The analytic model charges demand misses only ~50% of peak
 * DRAM bandwidth while streamed prefetches get ~100%; this harness
 * replays the actual access patterns of each MemNN phase through the
 * bank/row-buffer DRAM model and reports the achieved efficiencies.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "sim/dram_bank_model.hh"
#include "stats/table.hh"
#include "util/rng.hh"

using namespace mnnfast;

namespace {

/** Sequential line stream, as streamed M_IN/M_OUT chunk loads. */
std::vector<uint64_t>
sequentialStream(size_t lines)
{
    std::vector<uint64_t> addrs(lines);
    for (size_t i = 0; i < lines; ++i)
        addrs[i] = uint64_t(i) * 64;
    return addrs;
}

/**
 * Heavily interleaved demand mix: more concurrent sequential streams
 * than the DRAM has row buffers (20 threads each walking their own
 * M_IN partition plus intermediates), so streams keep closing each
 * other's rows.
 */
std::vector<uint64_t>
interleavedStream(size_t lines, size_t n_streams)
{
    std::vector<uint64_t> addrs;
    addrs.reserve(lines);
    for (size_t i = 0; i < lines; ++i) {
        const uint64_t stream = i % n_streams;
        addrs.push_back((stream << 32)
                        + uint64_t(i / n_streams) * 64);
    }
    return addrs;
}

/**
 * Large-stride writes: the baseline's T_IN fills one column per
 * question (stride = ns floats), touching a new DRAM row every
 * access.
 */
std::vector<uint64_t>
stridedStream(size_t lines, uint64_t stride)
{
    std::vector<uint64_t> addrs(lines);
    for (size_t i = 0; i < lines; ++i)
        addrs[i] = uint64_t(i) * stride;
    return addrs;
}

/** Random lines over a large footprint (embedding lookups). */
std::vector<uint64_t>
randomStream(size_t lines, uint64_t footprint)
{
    XorShiftRng rng(7);
    std::vector<uint64_t> addrs(lines);
    for (auto &a : addrs)
        a = rng.below(footprint / 64) * 64;
    return addrs;
}

} // namespace

int
main()
{
    bench::banner("Ablation: DRAM row-buffer behaviour per access "
                  "pattern",
                  "Bank-level replay of the access patterns behind "
                  "the timing model's bandwidth efficiencies.");

    sim::DramConfig dram;
    dram.channels = 4;
    sim::DramBankModel model(dram, sim::DramBankConfig{});

    const size_t lines = 200000;
    struct Pattern
    {
        const char *name;
        std::vector<uint64_t> addrs;
    };
    std::vector<Pattern> patterns;
    patterns.push_back({"sequential (streamed chunk)",
                        sequentialStream(lines)});
    patterns.push_back({"8-stream interleaved",
                        interleavedStream(lines, 8)});
    patterns.push_back({"80-stream interleaved (20T demand mix)",
                        interleavedStream(lines, 80)});
    patterns.push_back({"large-stride (T_IN column writes)",
                        stridedStream(lines, 1 << 20)});
    patterns.push_back({"random (embedding lookups)",
                        randomStream(lines, 1ull << 30)});

    stats::Table table({"pattern", "row hits (%)", "conflicts (%)",
                        "bytes/cycle", "efficiency"});
    for (const Pattern &p : patterns) {
        const auto s = model.replay(p.addrs);
        table.addRow(
            {p.name,
             stats::Table::num(100.0 * double(s.rowHits)
                               / double(s.lines), 1),
             stats::Table::num(100.0 * double(s.rowConflicts)
                               / double(s.lines), 1),
             stats::Table::num(s.bytesPerCycle, 2),
             stats::Table::num(s.efficiency, 3)});
    }
    table.print();

    std::printf("\nthe analytic CPU model's calibration "
                "(demandBandwidthEff=0.5, prefetch at peak) sits "
                "between the interleaved-demand and sequential rows "
                "above\n");
    return 0;
}
