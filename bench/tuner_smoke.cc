/**
 * @file
 * Autotuner smoke check (DESIGN.md §10): a deterministic inference
 * whose output bits are printed in hex, so a driver script can assert
 * that the engine's answers are bit-identical no matter how the
 * kernel plans were obtained — measured by the tuner, disabled via
 * MNNFAST_NO_TUNER=1 (default plans), or imported from a JSON table
 * via MNNFAST_TUNER_CACHE. Also prints the number of plans the tuner
 * measured in this process, so the script can assert that an imported
 * table short-circuits measurement entirely.
 *
 * Usage: tuner_smoke [--export FILE]
 *   --export FILE  write the process's tuning table to FILE after the
 *                  runs (the file a later MNNFAST_TUNER_CACHE run
 *                  imports).
 *
 * Output: one "score <precision> <index> <hex32>" line per output
 * element per storage precision, then "tuner_measured <n>".
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/column_engine.hh"
#include "runtime/kernel_tuner.hh"
#include "util/rng.hh"

using namespace mnnfast;

namespace {

core::KnowledgeBase
buildKb(size_t ns, size_t ed, core::Precision prec)
{
    core::KnowledgeBase kb(ed, prec);
    kb.reserve(ns);
    XorShiftRng rng(7);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-0.5f, 0.5f);
            b[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(a.data(), b.data());
    }
    return kb;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *export_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--export") == 0 && i + 1 < argc)
            export_path = argv[++i];
    }

    const size_t ns = 4096, ed = 64, nq = 3;
    XorShiftRng rng(9);
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-0.5f, 0.5f);

    for (core::Precision prec : {core::Precision::F32,
                                 core::Precision::BF16,
                                 core::Precision::I8}) {
        const core::KnowledgeBase kb = buildKb(ns, ed, prec);
        core::EngineConfig cfg;
        cfg.chunkSize = 512;
        cfg.threads = 0;
        cfg.streaming = true;
        cfg.skipThreshold = 1e-4f;
        core::ColumnEngine engine(kb, cfg);
        std::vector<float> o(nq * ed);
        engine.inferBatch(u.data(), nq, o.data());
        for (size_t i = 0; i < o.size(); ++i) {
            uint32_t bits;
            std::memcpy(&bits, &o[i], sizeof bits);
            std::printf("score %s %zu %08x\n",
                        core::precisionName(prec), i, bits);
        }
    }

    auto &tuner = runtime::KernelTuner::instance();
    std::printf("tuner_measured %zu\n", tuner.measuredCount());
    if (export_path && !tuner.exportJsonFile(export_path)) {
        std::fprintf(stderr, "export to %s failed\n", export_path);
        return 1;
    }
    return 0;
}
