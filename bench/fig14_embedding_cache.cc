/**
 * @file
 * Reproduces paper Figure 14: "Effectiveness of embedding cache in
 * FPGA-based MnnFast."
 *
 * The paper drives the embedding cache with COCA word frequencies;
 * here a Zipf(s=1.15) word stream over a 10k-word dictionary stands in
 * (corpus studies place the English word-frequency exponent at
 * ~1.1-1.2)
 * (natural-language word frequency is Zipfian — see DESIGN.md). The
 * embedding dimension is 256, matching Section 5.4.2, and cache sizes
 * sweep 32KB..256KB. Paper reference: latency reductions of 34.5%,
 * 41.7%, 47.7%, 53.1%.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "data/zipf.hh"
#include "fpga/accelerator.hh"
#include "fpga/embedding_cache.hh"
#include "stats/table.hh"

using namespace mnnfast;

int
main()
{
    bench::banner("Figure 14: embedding-cache effectiveness",
                  "Latency of the embedding operation, normalized to "
                  "the no-cache design; Zipf(1.15) word stream (COCA "
                  "stand-in), ed=256.");

    const size_t vocab = 10000;
    const size_t sentences_n = 4000;
    const size_t words_per_sentence = 8;

    data::ZipfGenerator zipf(vocab, 1.15, 21);
    std::vector<data::Sentence> sentences(sentences_n);
    for (auto &s : sentences) {
        s.resize(words_per_sentence);
        for (auto &w : s)
            w = static_cast<data::WordId>(zipf.sample());
    }

    fpga::FpgaConfig cfg;
    cfg.embeddingDim = 256;
    fpga::FpgaAccelerator accel(cfg);

    const auto no_cache = accel.runEmbedding(sentences, nullptr);
    std::printf("no-cache: %llu cycles for %llu word lookups\n\n",
                static_cast<unsigned long long>(no_cache.cycles),
                static_cast<unsigned long long>(no_cache.words));

    stats::Table table({"cache size", "entries", "hit rate",
                        "cycles", "normalized latency",
                        "latency reduction (%)"});
    for (size_t kb : {32ul, 64ul, 128ul, 256ul}) {
        fpga::EmbeddingCacheConfig ccfg;
        ccfg.sizeBytes = kb << 10;
        ccfg.embeddingDim = 256;
        fpga::EmbeddingCache cache(ccfg);
        const auto r = accel.runEmbedding(sentences, &cache);
        const double norm = double(r.cycles) / double(no_cache.cycles);
        table.addRow({std::to_string(kb) + "KB",
                      stats::Table::num(uint64_t(cache.entries())),
                      stats::Table::num(cache.hitRate(), 3),
                      stats::Table::num(uint64_t(r.cycles)),
                      stats::Table::num(norm, 3),
                      stats::Table::num(100.0 * (1.0 - norm), 1)});
    }
    table.print();

    std::printf("\npaper reference: 34.5%% / 41.7%% / 47.7%% / 53.1%% "
                "reduction for 32/64/128/256KB\n");
    return 0;
}
