/**
 * @file
 * Tests for the extension features: position encoding (paper footnote
 * 1), model serialization, and the GPU zero-skipping analysis model
 * (paper Section 4.1.2).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "blas/position.hh"
#include "core/mnnfast.hh"
#include "data/babi.hh"
#include "gpu/zskip_model.hh"
#include "train/gradcheck.hh"
#include "train/model.hh"
#include "train/serialize.hh"
#include "train/trainer.hh"

namespace mnnfast {
namespace {

// ---------------------------------------------------------------
// Position encoding
// ---------------------------------------------------------------

TEST(PositionEncoding, WeightsMatchClosedForm)
{
    // l_kj = (1 - j/J) - (k/d)(1 - 2j/J), 1-based j and k.
    const size_t J = 4, d = 8;
    for (size_t j = 0; j < J; ++j) {
        for (size_t k = 0; k < d; ++k) {
            const float jf = float(j + 1), kf = float(k + 1);
            const float expected =
                (1.f - jf / J) - (kf / d) * (1.f - 2.f * jf / J);
            EXPECT_FLOAT_EQ(blas::positionWeight(k, j, J, d), expected);
        }
    }
}

TEST(PositionEncoding, MiddleWordOfOddSentenceIsHalfWeighted)
{
    // For j at the exact middle (j+1 = J/2 with the 1-based formula
    // j/J = 0.5), l_kj = 0.5 for every k.
    const size_t J = 2, d = 4; // j=0 -> (j+1)/J = 0.5
    for (size_t k = 0; k < d; ++k)
        EXPECT_FLOAT_EQ(blas::positionWeight(k, 0, J, d), 0.5f);
}

TEST(PositionEncoding, MakesEmbeddingOrderSensitive)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            1);

    train::ModelConfig cfg;
    cfg.vocabSize = vocab.size();
    cfg.embeddingDim = 8;
    cfg.hops = 1;
    cfg.maxStory = 8;
    cfg.positionEncoding = true;
    train::MemNnModel model(cfg, 2);

    std::vector<float> fwd(8), rev(8);
    const data::Sentence s = {0, 1, 2, 3};
    const data::Sentence r = {3, 2, 1, 0};
    model.embedInto(s, model.parameters().b, fwd.data());
    model.embedInto(r, model.parameters().b, rev.data());
    bool differs = false;
    for (size_t e = 0; e < 8; ++e)
        differs = differs || fwd[e] != rev[e];
    EXPECT_TRUE(differs) << "PE embedding must depend on word order";

    // Plain BoW must not.
    cfg.positionEncoding = false;
    train::MemNnModel bow(cfg, 2);
    bow.embedInto(s, bow.parameters().b, fwd.data());
    bow.embedInto(r, bow.parameters().b, rev.data());
    for (size_t e = 0; e < 8; ++e)
        EXPECT_FLOAT_EQ(fwd[e], rev[e]);
}

TEST(PositionEncoding, GradientsStillCheckOut)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            3);
    train::ModelConfig cfg;
    cfg.vocabSize = vocab.size();
    cfg.embeddingDim = 8;
    cfg.hops = 2;
    cfg.maxStory = 16;
    cfg.positionEncoding = true;
    train::MemNnModel model(cfg, 4);
    const data::Example ex = gen.generate(5);
    const auto result = train::checkGradients(model, ex, 12, 1e-3);
    EXPECT_LT(result.maxRelativeError, 2e-2);
}

TEST(PositionEncoding, FacadeMatchesTrainerWithPe)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            5);
    train::ModelConfig cfg;
    cfg.vocabSize = vocab.size();
    cfg.embeddingDim = 16;
    cfg.hops = 2;
    cfg.maxStory = 16;
    cfg.positionEncoding = true;
    train::MemNnModel model(cfg, 6);

    core::EngineConfig ecfg;
    ecfg.chunkSize = 4;
    auto system = core::MnnFastSystem::fromTrained(
        model, core::EngineKind::Column, ecfg);
    EXPECT_TRUE(system.config().positionEncoding);

    train::ForwardState state;
    for (int trial = 0; trial < 10; ++trial) {
        const data::Example ex = gen.generate(8);
        model.forward(ex, state);
        system.clearStory();
        for (const auto &s : ex.story)
            system.addStorySentence(s);
        EXPECT_EQ(system.ask(ex.question), model.predict(state))
            << "trial " << trial;
    }
}

// ---------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------

TEST(Serialize, RoundTripPreservesEverything)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::Counting, vocab, 7);
    train::ModelConfig cfg;
    cfg.vocabSize = vocab.size();
    cfg.embeddingDim = 12;
    cfg.hops = 2;
    cfg.maxStory = 16;
    cfg.positionEncoding = true;
    train::MemNnModel model(cfg, 8);

    const std::string path = ::testing::TempDir() + "model_rt.mnnf";
    train::saveModel(model, path);
    train::MemNnModel loaded = train::loadModel(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.config().vocabSize, cfg.vocabSize);
    EXPECT_EQ(loaded.config().embeddingDim, cfg.embeddingDim);
    EXPECT_EQ(loaded.config().hops, cfg.hops);
    EXPECT_EQ(loaded.config().maxStory, cfg.maxStory);
    EXPECT_TRUE(loaded.config().positionEncoding);

    const auto &a = model.parameters();
    const auto &b = loaded.parameters();
    EXPECT_EQ(a.b, b.b);
    EXPECT_EQ(a.w, b.w);
    for (size_t h = 0; h < cfg.hops; ++h) {
        EXPECT_EQ(a.a[h], b.a[h]);
        EXPECT_EQ(a.c[h], b.c[h]);
        EXPECT_EQ(a.ta[h], b.ta[h]);
        EXPECT_EQ(a.tc[h], b.tc[h]);
    }
}

TEST(Serialize, LoadedModelPredictsIdentically)
{
    data::Vocabulary vocab;
    data::BabiGenerator gen(data::TaskType::SingleSupportingFact, vocab,
                            9);
    const data::Dataset set = gen.generateSet(150, 6);
    train::ModelConfig cfg;
    cfg.vocabSize = vocab.size();
    cfg.embeddingDim = 16;
    cfg.hops = 1;
    cfg.maxStory = 8;
    train::MemNnModel model(cfg, 10);
    train::TrainConfig tc;
    tc.epochs = 8;
    train::trainModel(model, set, tc);

    const std::string path = ::testing::TempDir() + "model_pred.mnnf";
    train::saveModel(model, path);
    train::MemNnModel loaded = train::loadModel(path);
    std::remove(path.c_str());

    train::ForwardState s1, s2;
    for (int i = 0; i < 20; ++i) {
        const data::Example ex = gen.generate(6);
        model.forward(ex, s1);
        loaded.forward(ex, s2);
        EXPECT_EQ(model.predict(s1), loaded.predict(s2));
    }
}

TEST(Serialize, MissingFileIsFatal)
{
    EXPECT_EXIT(train::loadModel("/nonexistent/nope.mnnf"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(Serialize, GarbageFileIsFatal)
{
    const std::string path = ::testing::TempDir() + "garbage.mnnf";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fputs("not a model", f);
        std::fclose(f);
    }
    EXPECT_EXIT(train::loadModel(path), ::testing::ExitedWithCode(1),
                "not a MnnFast model");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// GPU zero-skipping analysis (Section 4.1.2)
// ---------------------------------------------------------------

gpu::GpuWorkload
zskipWorkload()
{
    gpu::GpuWorkload wl;
    wl.ns = 4'000'000;
    wl.ed = 64;
    wl.nq = 64;
    return wl;
}

TEST(GpuZskip, WarpSkipIsNearUselessAtModerateSparsity)
{
    gpu::GpuZskipModel model{gpu::GpuConfig{}, gpu::ZskipParams{}};
    const auto out = model.warpSkip(zskipWorkload(), 0.1);
    // (1-0.1)^32 = 3.4% of warps retire early.
    EXPECT_GT(out.relativeToDense, 0.9);
}

TEST(GpuZskip, WarpSkipHelpsOnlyAtExtremeSparsity)
{
    gpu::GpuZskipModel model{gpu::GpuConfig{}, gpu::ZskipParams{}};
    const auto out = model.warpSkip(zskipWorkload(), 0.001);
    EXPECT_LT(out.relativeToDense, 0.2);
}

TEST(GpuZskip, CompactionTransformComparableToWsum)
{
    gpu::GpuZskipModel model{gpu::GpuConfig{}, gpu::ZskipParams{}};
    const auto wl = zskipWorkload();
    const double dense = model.denseWsumSeconds(wl);
    const auto comp = model.compaction(wl, 0.1);
    // The paper: "the transformation latency is comparable to
    // weighted sum's latency".
    EXPECT_GT(comp.transformSeconds, dense * 0.3);
    EXPECT_LT(comp.transformSeconds, dense * 3.0);
}

TEST(GpuZskip, CompactionIsHarmfulAtLowSparsity)
{
    gpu::GpuZskipModel model{gpu::GpuConfig{}, gpu::ZskipParams{}};
    const auto comp = model.compaction(zskipWorkload(), 0.5);
    EXPECT_GT(comp.relativeToDense, 1.0);
}

TEST(GpuZskip, OutcomesAreMonotoneInKeepFraction)
{
    gpu::GpuZskipModel model{gpu::GpuConfig{}, gpu::ZskipParams{}};
    const auto wl = zskipWorkload();
    double prev_warp = 2.0, prev_comp = 10.0;
    for (double keep : {0.5, 0.2, 0.1, 0.05, 0.01}) {
        const double w = model.warpSkip(wl, keep).relativeToDense;
        const double c = model.compaction(wl, keep).relativeToDense;
        EXPECT_LE(w, prev_warp + 1e-12);
        EXPECT_LE(c, prev_comp + 1e-12);
        prev_warp = w;
        prev_comp = c;
    }
}

TEST(GpuZskip, InvalidKeepFractionPanics)
{
    gpu::GpuZskipModel model{gpu::GpuConfig{}, gpu::ZskipParams{}};
    EXPECT_DEATH(model.warpSkip(zskipWorkload(), 1.5), "keep");
}

} // namespace
} // namespace mnnfast
