/**
 * @file
 * Tests for the bAbI text-format reader/writer: parsing the canonical
 * format, round-tripping generated datasets, and error handling.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "data/babi.hh"
#include "data/babi_text.hh"

namespace mnnfast::data {
namespace {

const char *const kCanonical =
    "1 Mary moved to the bathroom.\n"
    "2 John went to the hallway.\n"
    "3 Where is Mary? \tbathroom\t1\n"
    "4 Daniel went back to the hallway.\n"
    "5 Where is Daniel? \thallway\t4\n"
    "1 Sandra journeyed to the garden.\n"
    "2 Where is Sandra? \tgarden\t1\n";

TEST(BabiText, ParsesCanonicalFormat)
{
    Vocabulary vocab;
    std::istringstream in(kCanonical);
    const Dataset set = parseBabi(in, vocab);

    ASSERT_EQ(set.size(), 3u);

    // First question: story of 2 statements seen so far.
    const Example &q1 = set.examples[0];
    EXPECT_EQ(q1.story.size(), 2u);
    EXPECT_EQ(q1.answer, vocab.lookup("bathroom"));
    ASSERT_EQ(q1.supportingFacts.size(), 1u);
    EXPECT_EQ(q1.supportingFacts[0], 0u);

    // Second question: cumulative story of 3 statements (block lines
    // 1, 2 and 4 — line 3 was a question). Supporting fact "4" is a
    // block *line* number, mapping to story index 2.
    const Example &q2 = set.examples[1];
    EXPECT_EQ(q2.story.size(), 3u);
    EXPECT_EQ(q2.answer, vocab.lookup("hallway"));
    ASSERT_EQ(q2.supportingFacts.size(), 1u);
    EXPECT_EQ(q2.supportingFacts[0], 2u);

    // New block resets the story.
    const Example &q3 = set.examples[2];
    EXPECT_EQ(q3.story.size(), 1u);
    EXPECT_EQ(q3.answer, vocab.lookup("garden"));
}

TEST(BabiText, LowercasesAndStripsPunctuation)
{
    Vocabulary vocab;
    std::istringstream in("1 Mary MOVED to the bathroom.\n"
                          "2 Where is Mary? \tBathroom\t1\n");
    const Dataset set = parseBabi(in, vocab);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_TRUE(vocab.contains("mary"));
    EXPECT_TRUE(vocab.contains("moved"));
    EXPECT_FALSE(vocab.contains("Mary"));
    EXPECT_FALSE(vocab.contains("bathroom."));
    EXPECT_EQ(set.examples[0].answer, vocab.lookup("bathroom"));
}

TEST(BabiText, MultiWordAnswerUsesFirstToken)
{
    Vocabulary vocab;
    std::istringstream in("1 Daniel took the apple and football.\n"
                          "2 What is Daniel holding? \tapple,football\t1\n");
    const Dataset set = parseBabi(in, vocab);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set.examples[0].answer, vocab.lookup("apple"));
}

TEST(BabiText, GeneratedDatasetRoundTrips)
{
    Vocabulary vocab;
    BabiGenerator gen(TaskType::SingleSupportingFact, vocab, 5);
    const Dataset original = gen.generateSet(20, 6);

    std::ostringstream out;
    writeBabi(out, original, vocab);

    Vocabulary vocab2;
    std::istringstream in(out.str());
    const Dataset parsed = parseBabi(in, vocab2);

    ASSERT_EQ(parsed.size(), original.size());
    for (size_t i = 0; i < parsed.size(); ++i) {
        const Example &a = original.examples[i];
        const Example &b = parsed.examples[i];
        ASSERT_EQ(a.story.size(), b.story.size()) << "example " << i;
        // Word identity via spellings (ids differ across vocabs).
        for (size_t s = 0; s < a.story.size(); ++s) {
            ASSERT_EQ(a.story[s].size(), b.story[s].size());
            for (size_t w = 0; w < a.story[s].size(); ++w) {
                EXPECT_EQ(vocab.wordOf(a.story[s][w]),
                          vocab2.wordOf(b.story[s][w]));
            }
        }
        EXPECT_EQ(vocab.wordOf(a.answer), vocab2.wordOf(b.answer));
        EXPECT_EQ(a.supportingFacts, b.supportingFacts);
    }
}

TEST(BabiText, UnnumberedLineIsFatal)
{
    Vocabulary vocab;
    std::istringstream in("Mary moved to the bathroom.\n");
    EXPECT_EXIT(parseBabi(in, vocab), ::testing::ExitedWithCode(1),
                "line number");
}

TEST(BabiText, QuestionWithoutAnswerIsFatal)
{
    Vocabulary vocab;
    std::istringstream in("1 Where is Mary?\n");
    EXPECT_EXIT(parseBabi(in, vocab), ::testing::ExitedWithCode(1),
                "without");
}

TEST(BabiText, MissingFileIsFatal)
{
    Vocabulary vocab;
    EXPECT_EXIT(parseBabiFile("/nonexistent/babi.txt", vocab),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(BabiText, EmptyInputGivesEmptyDataset)
{
    Vocabulary vocab;
    std::istringstream in("");
    EXPECT_EQ(parseBabi(in, vocab).size(), 0u);
}

} // namespace
} // namespace mnnfast::data
