/**
 * @file
 * Tests for the dataflow traffic generator, the CPU timing model, and
 * the cache-contention simulator — the machinery behind paper Figs.
 * 3, 4, 10, and 11. Sizes are scaled down for test speed; the
 * *relationships* under test are size-independent.
 */

#include <gtest/gtest.h>

#include "core/knowledge_base.hh"
#include "sim/contention.hh"
#include "sim/cpu_system.hh"
#include "sim/traffic.hh"

namespace mnnfast::sim {
namespace {

WorkloadParams
testWorkload()
{
    WorkloadParams wp;
    wp.ns = 16384;
    wp.ed = 16;
    wp.nq = 8;
    wp.chunkSize = 256;
    return wp;
}

CacheConfig
testLlc()
{
    CacheConfig cfg;
    cfg.sizeBytes = 256 << 10; // small LLC so intermediates spill
    cfg.associativity = 16;
    return cfg;
}

TEST(Traffic, BaselineHasThreePhases)
{
    const auto r =
        simulateDataflow(Dataflow::Baseline, testWorkload(), testLlc());
    ASSERT_EQ(r.phases.size(), 3u);
    EXPECT_EQ(r.phases[0].name, "inner_product");
    EXPECT_EQ(r.phases[1].name, "softmax");
    EXPECT_EQ(r.phases[2].name, "weighted_sum");
    EXPECT_GT(r.demandMisses(), 0u);
    EXPECT_EQ(r.prefetchedLines(), 0u);
}

TEST(Traffic, ColumnSpillsFarLessThanBaseline)
{
    const auto wp = testWorkload();
    const auto llc = testLlc();
    const auto base = simulateDataflow(Dataflow::Baseline, wp, llc);
    const auto col = simulateDataflow(Dataflow::Column, wp, llc);

    // The column dataflow keeps intermediates chunk-resident: its
    // demand misses must be far below the baseline's (Fig. 11).
    EXPECT_LT(col.demandMisses() * 2, base.demandMisses());
    // And they should be close to the compulsory M_IN + M_OUT lines.
    const uint64_t compulsory = 2ull * wp.ns * wp.ed * 4 / 64;
    EXPECT_LT(col.demandMisses(),
              compulsory + compulsory / 5 + 1000);
}

TEST(Traffic, StreamingConvertsDemandToPrefetch)
{
    const auto wp = testWorkload();
    const auto llc = testLlc();
    const auto col = simulateDataflow(Dataflow::Column, wp, llc);
    const auto str =
        simulateDataflow(Dataflow::ColumnStreaming, wp, llc);

    // Same total DRAM lines, but streaming moves them off the demand
    // path.
    EXPECT_NEAR(double(str.dramLines()), double(col.dramLines()),
                double(col.dramLines()) * 0.05);
    EXPECT_LT(str.demandMisses() * 5, col.demandMisses());
    EXPECT_GT(str.prefetchedLines(), 0u);
    for (const auto &p : str.phases)
        EXPECT_TRUE(p.overlappable);
}

TEST(Traffic, ZeroSkipReducesWeightedSumTraffic)
{
    auto wp = testWorkload();
    wp.zskipKeepFraction = 0.1;
    const auto llc = testLlc();
    const auto str =
        simulateDataflow(Dataflow::ColumnStreaming, wp, llc);
    const auto mnn = simulateDataflow(Dataflow::MnnFast, wp, llc);

    // With nq questions, an M_OUT row is fetched when ANY question
    // keeps it, so the traffic reduction is 1 - (1 - keep)^nq per
    // row (~43% fewer rows at keep=0.1, nq=8); the compute reduction
    // is the full per-question keep fraction.
    const auto &str_wsum = str.phases[2];
    const auto &mnn_wsum = mnn.phases[2];
    EXPECT_LT(mnn_wsum.prefetchedLines + mnn_wsum.demandMisses,
              (str_wsum.prefetchedLines + str_wsum.demandMisses) * 3
                  / 4);
    EXPECT_LT(mnn_wsum.flops, str_wsum.flops * 0.2);
}

TEST(Traffic, Bf16StorageHalvesKbLines)
{
    // Shrinking kbElemBytes to 2 must halve the M_IN/M_OUT line
    // traffic of the streamed column dataflow while leaving scratch
    // and question traffic (all fp32) untouched.
    auto wp32 = testWorkload();
    auto wp16 = testWorkload();
    wp16.kbElemBytes = 2;
    const auto llc = testLlc();
    const auto r32 =
        simulateDataflow(Dataflow::ColumnStreaming, wp32, llc);
    const auto r16 =
        simulateDataflow(Dataflow::ColumnStreaming, wp16, llc);

    // The dominant traffic is the compulsory KB stream, so total DRAM
    // lines land close to half.
    EXPECT_LT(r16.dramLines(), r32.dramLines() * 6 / 10);
    EXPECT_GT(r16.dramLines(), r32.dramLines() * 4 / 10);
    // Identical flops: precision changes bytes, not arithmetic.
    EXPECT_DOUBLE_EQ(r16.flops(), r32.flops());
}

TEST(Traffic, Bf16AlsoHalvesBaselineKbStream)
{
    auto wp16 = testWorkload();
    wp16.kbElemBytes = 2;
    const auto llc = testLlc();
    const auto r32 =
        simulateDataflow(Dataflow::Baseline, testWorkload(), llc);
    const auto r16 = simulateDataflow(Dataflow::Baseline, wp16, llc);

    // Baseline spills nq x ns fp32 intermediates regardless of KB
    // precision, so the reduction is real but bounded away from 2x.
    EXPECT_LT(r16.dramLines(), r32.dramLines());
    const uint64_t kb_lines32 = 2ull * wp16.ns * wp16.ed * 4 / 64;
    const uint64_t kb_lines16 = 2ull * wp16.ns * wp16.ed * 2 / 64;
    EXPECT_NEAR(double(r32.dramLines() - r16.dramLines()),
                double(kb_lines32 - kb_lines16),
                0.1 * double(kb_lines32));
}

TEST(Traffic, KbLineCountsScaleAsPrecisionBytes)
{
    // kbElemBytes generalizes over every storage precision via
    // core::precisionBytes: the compulsory M_IN/M_OUT line stream of
    // the streamed column dataflow must land in an exact 4:2:1 ratio
    // across f32/bf16/i8 (rows are contiguous, so line counts are
    // pure bytes/64).
    const auto llc = testLlc();
    uint64_t lines[3] = {0, 0, 0};
    const core::Precision precs[3] = {core::Precision::F32,
                                      core::Precision::BF16,
                                      core::Precision::I8};
    for (int i = 0; i < 3; ++i) {
        auto wp = testWorkload();
        wp.kbElemBytes = core::precisionBytes(precs[i]);
        lines[i] =
            simulateDataflow(Dataflow::ColumnStreaming, wp, llc)
                .kbDramLines();
    }
    ASSERT_GT(lines[2], 0u);
    EXPECT_EQ(lines[0], 2 * lines[1]) << "f32 vs bf16";
    EXPECT_EQ(lines[1], 2 * lines[2]) << "bf16 vs i8";
}

TEST(Traffic, ZeroKbElemBytesIsFatal)
{
    auto wp = testWorkload();
    wp.kbElemBytes = 0;
    EXPECT_DEATH(
        simulateDataflow(Dataflow::Column, wp, testLlc()),
        "element size");
}

TEST(Traffic, FlopsMatchAnalyticCounts)
{
    const auto wp = testWorkload();
    const auto r =
        simulateDataflow(Dataflow::Baseline, wp, testLlc());
    const double expected_inner = 2.0 * wp.nq * wp.ns * wp.ed;
    EXPECT_DOUBLE_EQ(r.phases[0].flops, expected_inner);
    EXPECT_DOUBLE_EQ(r.phases[2].flops, expected_inner);
}

TEST(Traffic, ResultAccessorsSumPhases)
{
    const auto r =
        simulateDataflow(Dataflow::Column, testWorkload(), testLlc());
    uint64_t demand = 0, acc = 0;
    for (const auto &p : r.phases) {
        demand += p.demandMisses;
        acc += p.accesses;
    }
    EXPECT_EQ(r.demandMisses(), demand);
    EXPECT_EQ(r.accesses(), acc);
    EXPECT_EQ(r.dramLines(), r.demandMisses() + r.prefetchedLines());
}

TEST(Traffic, ShardAttributionPartitionsKbTraffic)
{
    // Sharding only relabels where each KB line's traffic is charged
    // (one serving worker streams one shard); the access stream itself
    // is untouched because shards are chunk-aligned and the column
    // dataflow already sweeps shard by shard.
    auto wp = testWorkload();
    const auto llc = testLlc();
    for (Dataflow df :
         {Dataflow::Baseline, Dataflow::Column, Dataflow::MnnFast}) {
        wp.shards = 0;
        const auto whole = simulateDataflow(df, wp, llc);
        ASSERT_EQ(whole.shardKbLines.size(), 1u) << dataflowName(df);
        EXPECT_EQ(whole.shardKbLines[0], whole.kbDramLines());
        EXPECT_GT(whole.kbDramLines(), 0u);
        EXPECT_LE(whole.kbDramLines(), whole.dramLines());

        wp.shards = 4;
        const auto sharded = simulateDataflow(df, wp, llc);
        ASSERT_EQ(sharded.shardKbLines.size(), 4u) << dataflowName(df);
        uint64_t sum = 0;
        for (uint64_t lines : sharded.shardKbLines) {
            EXPECT_GT(lines, 0u) << dataflowName(df);
            sum += lines;
        }
        EXPECT_EQ(sum, sharded.kbDramLines());
        // Attribution, not perturbation: the totals are unchanged.
        EXPECT_EQ(sharded.kbDramLines(), whole.kbDramLines())
            << dataflowName(df);
        EXPECT_EQ(sharded.dramLines(), whole.dramLines())
            << dataflowName(df);
        // 16384 rows over 4 chunk-aligned shards split evenly, so the
        // per-shard KB stream does too (zero-skipping keeps a random
        // subset per shard, hence the loose factor-of-two bound).
        const uint64_t lo = sharded.kbDramLines() / 8;
        const uint64_t hi = sharded.kbDramLines();
        for (uint64_t lines : sharded.shardKbLines) {
            EXPECT_GE(lines, lo) << dataflowName(df);
            EXPECT_LT(lines, hi) << dataflowName(df);
        }
    }
}

TEST(Traffic, ShardCountClampsToChunkCount)
{
    auto wp = testWorkload();
    wp.ns = 512;
    wp.chunkSize = 256; // 2 chunks: at most 2 shards
    wp.shards = 16;
    const auto r = simulateDataflow(Dataflow::Column, wp, testLlc());
    EXPECT_EQ(r.shardKbLines.size(), 2u);
    EXPECT_EQ(r.shardKbLines[0] + r.shardKbLines[1], r.kbDramLines());
}

// ---------------------------------------------------------------
// CPU timing model
// ---------------------------------------------------------------

CpuSystemConfig
cpuConfig(size_t channels)
{
    CpuSystemConfig cfg;
    cfg.dram.channels = channels;
    return cfg;
}

TEST(CpuModel, SpeedupIsMonotonicInThreads)
{
    const auto traffic =
        simulateDataflow(Dataflow::Baseline, testWorkload(), testLlc());
    CpuSystemModel model(cpuConfig(4));
    double prev = 0.0;
    for (size_t t = 1; t <= 20; ++t) {
        const double s = model.speedup(traffic, t);
        EXPECT_GE(s, prev - 1e-9) << "threads " << t;
        EXPECT_LE(s, double(t) + 1e-9) << "superlinear at " << t;
        prev = s;
    }
}

TEST(CpuModel, MoreChannelsSaturateLater)
{
    const auto traffic =
        simulateDataflow(Dataflow::Baseline, testWorkload(), testLlc());
    CpuSystemModel one(cpuConfig(1));
    CpuSystemModel four(cpuConfig(4));
    // At 20 threads the 4-channel system must be meaningfully more
    // scalable (paper Fig. 3).
    EXPECT_GT(four.speedup(traffic, 20),
              one.speedup(traffic, 20) * 1.5);
}

TEST(CpuModel, StreamingScalesBetterThanBlocking)
{
    const auto wp = testWorkload();
    const auto llc = testLlc();
    const auto col = simulateDataflow(Dataflow::Column, wp, llc);
    const auto str =
        simulateDataflow(Dataflow::ColumnStreaming, wp, llc);
    CpuSystemModel model(cpuConfig(4));

    // Streaming must be at least as fast at every thread count
    // (paper Fig. 10).
    for (size_t t : {1ul, 4ul, 10ul, 20ul}) {
        EXPECT_LE(model.executionCycles(str, t),
                  model.executionCycles(col, t) * 1.001)
            << "threads " << t;
    }
}

TEST(CpuModel, ExecutionTimeDecreasesWithThreads)
{
    const auto traffic =
        simulateDataflow(Dataflow::Column, testWorkload(), testLlc());
    CpuSystemModel model(cpuConfig(4));
    EXPECT_LT(model.executionCycles(traffic, 8),
              model.executionCycles(traffic, 1));
}

TEST(CpuModel, InvalidConfigIsFatal)
{
    CpuSystemConfig cfg;
    cfg.demandBandwidthEff = 0.0;
    EXPECT_EXIT(CpuSystemModel m(cfg), ::testing::ExitedWithCode(1),
                "efficiency");
}

// ---------------------------------------------------------------
// Scale-out (paper Section 3.1)
// ---------------------------------------------------------------

TEST(ScaleOut, ColumnScalesNearLinearly)
{
    const auto wp = testWorkload();
    const auto llc = testLlc();
    CpuSystemModel model(cpuConfig(4));

    const double one =
        model.scaleOut(Dataflow::ColumnStreaming, wp, llc, 1, 8)
            .cycles;
    const double four =
        model.scaleOut(Dataflow::ColumnStreaming, wp, llc, 4, 8)
            .cycles;
    const double speedup = one / four;
    EXPECT_GT(speedup, 2.5);
    EXPECT_LE(speedup, 4.0 + 1e-9);
}

TEST(ScaleOut, MergeTrafficIsEmbeddingDimensional)
{
    const auto wp = testWorkload();
    CpuSystemModel model(cpuConfig(4));
    const auto r =
        model.scaleOut(Dataflow::Column, wp, testLlc(), 4, 8);
    // 4 nodes x nq x (ed + 1) floats — independent of ns.
    EXPECT_DOUBLE_EQ(r.mergeBytes,
                     4.0 * double(wp.nq) * double(wp.ed + 1) * 4.0);
    EXPECT_GT(r.mergeCycles, 0.0);
}

TEST(ScaleOut, SingleNodeHasNoMergeCost)
{
    const auto wp = testWorkload();
    CpuSystemModel model(cpuConfig(4));
    const auto r =
        model.scaleOut(Dataflow::Column, wp, testLlc(), 1, 8);
    EXPECT_DOUBLE_EQ(r.mergeCycles, 0.0);
}

TEST(ScaleOut, BaselineCannotScaleOut)
{
    const auto wp = testWorkload();
    CpuSystemModel model(cpuConfig(4));
    EXPECT_EXIT(model.scaleOut(Dataflow::Baseline, wp, testLlc(), 2, 8),
                ::testing::ExitedWithCode(1), "cannot scale out");
}

TEST(ScaleOut, MoreNodesNeverSlower)
{
    const auto wp = testWorkload();
    const auto llc = testLlc();
    CpuSystemModel model(cpuConfig(4));
    double prev = 1e300;
    for (size_t nodes : {1ul, 2ul, 4ul, 8ul}) {
        const double c =
            model.scaleOut(Dataflow::ColumnStreaming, wp, llc, nodes, 8)
                .cycles;
        EXPECT_LE(c, prev * 1.001) << nodes << " nodes";
        prev = c;
    }
}

// ---------------------------------------------------------------
// Cache contention (Fig. 4)
// ---------------------------------------------------------------

ContentionParams
contentionBase()
{
    ContentionParams p;
    p.llc.sizeBytes = 1 << 20;
    p.llc.associativity = 16;
    p.inferenceWorkingSet = 768 << 10; // fits alone, fragile shared
    p.embeddingTableBytes = 64 << 20;
    p.rounds = 6;
    return p;
}

TEST(Contention, SlowdownIsAtLeastOne)
{
    auto p = contentionBase();
    p.embeddingThreads = 2;
    const auto r = simulateContention(p);
    EXPECT_GE(r.slowdown, 1.0);
    EXPECT_GT(r.inferenceHitRate, 0.0);
    EXPECT_LE(r.inferenceHitRate, 1.0);
}

TEST(Contention, MoreEmbeddingThreadsMoreSlowdown)
{
    auto p = contentionBase();
    p.embeddingThreads = 1;
    const double s1 = simulateContention(p).slowdown;
    p.embeddingThreads = 8;
    const double s8 = simulateContention(p).slowdown;
    EXPECT_GT(s8, s1);
}

TEST(Contention, BypassPollutesLess)
{
    auto p = contentionBase();
    p.embeddingThreads = 4;
    p.policy = EmbeddingPolicy::Shared;
    const double shared = simulateContention(p).slowdown;
    p.policy = EmbeddingPolicy::Bypass;
    const double bypass = simulateContention(p).slowdown;
    EXPECT_LT(bypass, shared);
}

TEST(Contention, DedicatedCacheFullyIsolates)
{
    auto p = contentionBase();
    p.embeddingThreads = 8;
    p.policy = EmbeddingPolicy::Dedicated;
    const auto r = simulateContention(p);
    EXPECT_NEAR(r.slowdown, 1.0, 1e-9);
}

TEST(Contention, LargerWorkingSetSuffersMore)
{
    // The paper's Fig. 4: bigger MemNN scales degrade more.
    auto small = contentionBase();
    small.inferenceWorkingSet = 256 << 10;
    small.embeddingThreads = 4;
    auto large = contentionBase();
    large.inferenceWorkingSet = 896 << 10;
    large.embeddingThreads = 4;
    EXPECT_GE(simulateContention(large).slowdown,
              simulateContention(small).slowdown * 0.95);
}

} // namespace
} // namespace mnnfast::sim
