/**
 * @file
 * Sharded knowledge base + scatter/gather engine tests: chunk-aligned
 * partition geometry, the bit-identity guarantee against a single
 * engine across shard counts x zero-skipping x precision, canonical
 * merge order under concurrent scatter, counter aggregation, and the
 * LiveServer sharded serving mode (correctness, drain, rejection
 * split).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <vector>

#include "core/column_engine.hh"
#include "core/knowledge_base.hh"
#include "core/sharded_engine.hh"
#include "core/sharded_knowledge_base.hh"
#include "serve/live_server.hh"
#include "util/rng.hh"

namespace mnnfast {
namespace {

core::KnowledgeBase
makeKb(size_t ns, size_t ed,
       core::Precision prec = core::Precision::F32, uint64_t seed = 11)
{
    core::KnowledgeBase kb(ed, prec);
    kb.reserve(ns);
    XorShiftRng rng(seed);
    std::vector<float> a(ed), b(ed);
    for (size_t i = 0; i < ns; ++i) {
        for (size_t e = 0; e < ed; ++e) {
            a[e] = rng.uniformRange(-0.5f, 0.5f);
            b[e] = rng.uniformRange(-0.5f, 0.5f);
        }
        kb.addSentence(a.data(), b.data());
    }
    return kb;
}

std::vector<float>
makeQuestions(size_t nq, size_t ed, uint64_t seed = 23)
{
    XorShiftRng rng(seed);
    std::vector<float> u(nq * ed);
    for (float &x : u)
        x = rng.uniformRange(-1.f, 1.f);
    return u;
}

// ---------------------------------------------------------------
// ShardedKnowledgeBase: partition geometry
// ---------------------------------------------------------------

TEST(ShardedKnowledgeBase, PartitionIsChunkAlignedAndCoversKb)
{
    const size_t ns = 1000, ed = 8, chunk = 64;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    const core::ShardedKnowledgeBase skb(kb, chunk, 4);

    ASSERT_GE(skb.shardCount(), 2u);
    ASSERT_LE(skb.shardCount(), 4u);
    EXPECT_EQ(skb.chunkSize(), chunk);

    size_t expected_begin = 0;
    for (size_t s = 0; s < skb.shardCount(); ++s) {
        const runtime::Range r = skb.rows(s);
        EXPECT_EQ(r.begin, expected_begin); // contiguous, ordered
        EXPECT_GT(r.end, r.begin);
        // Interior boundaries land on chunk multiples.
        EXPECT_EQ(r.begin % chunk, 0u);
        if (s + 1 < skb.shardCount())
            EXPECT_EQ(r.end % chunk, 0u);
        // The view window is the right rows of the parent.
        const core::KnowledgeBase &v = skb.shard(s);
        ASSERT_EQ(v.size(), r.end - r.begin);
        EXPECT_EQ(v.dim(), ed);
        EXPECT_EQ(v.minData(), kb.minData() + r.begin * ed);
        EXPECT_EQ(v.moutData(), kb.moutData() + r.begin * ed);
        expected_begin = r.end;
    }
    EXPECT_EQ(expected_begin, ns); // full coverage, no overlap
}

TEST(ShardedKnowledgeBase, ClampsShardCountToChunkCount)
{
    const core::KnowledgeBase kb = makeKb(100, 8);
    // 100 rows / chunk 64 -> 2 chunks: at most 2 shards exist.
    const core::ShardedKnowledgeBase skb(kb, 64, 8);
    EXPECT_EQ(skb.shardCount(), 2u);
    EXPECT_EQ(skb.rows(0).begin, 0u);
    EXPECT_EQ(skb.rows(1).end, 100u);
}

TEST(ShardedKnowledgeBase, SingleShardIsTheWholeKb)
{
    const core::KnowledgeBase kb = makeKb(200, 8);
    const core::ShardedKnowledgeBase skb(kb, 64, 1);
    ASSERT_EQ(skb.shardCount(), 1u);
    EXPECT_EQ(skb.rows(0).begin, 0u);
    EXPECT_EQ(skb.rows(0).end, 200u);
    EXPECT_EQ(skb.shard(0).size(), 200u);
}

// ---------------------------------------------------------------
// ShardedEngine: bit-identity, merge order, concurrency, counters
// ---------------------------------------------------------------

/**
 * The tentpole guarantee: sharded scatter/gather output is
 * bit-identical to one ColumnEngine with scheduleGroups = shardCount,
 * across shard counts x zero-skipping x precision x streaming.
 */
TEST(ShardedEngine, BitIdenticalToSingleEngineAcrossConfigs)
{
    const size_t ns = 700, ed = 16, nq = 5, chunk = 64;
    const std::vector<float> u = makeQuestions(nq, ed);

    for (core::Precision prec :
         {core::Precision::F32, core::Precision::BF16,
          core::Precision::I8}) {
        const core::KnowledgeBase kb = makeKb(ns, ed, prec);
        for (float zskip : {0.0f, 0.05f}) {
            for (size_t shards : {size_t(1), size_t(2), size_t(4),
                                  size_t(8)}) {
                core::EngineConfig cfg;
                cfg.chunkSize = chunk;
                cfg.streaming = true;
                cfg.skipThreshold = zskip;

                const core::ShardedKnowledgeBase skb(kb, chunk, shards);
                core::EngineConfig scfg = cfg;
                scfg.threads = 2;
                core::ShardedEngine sharded(skb, scfg);

                core::EngineConfig rcfg = cfg;
                rcfg.scheduleGroups = skb.shardCount();
                core::ColumnEngine reference(kb, rcfg);

                std::vector<float> o_sharded(nq * ed, -1.f);
                std::vector<float> o_ref(nq * ed, -2.f);
                sharded.inferBatch(u.data(), nq, o_sharded.data());
                reference.inferBatch(u.data(), nq, o_ref.data());
                for (size_t i = 0; i < o_ref.size(); ++i)
                    ASSERT_EQ(o_sharded[i], o_ref[i])
                        << "prec=" << core::precisionName(prec)
                        << " zskip=" << zskip << " shards=" << shards
                        << " elem=" << i;
            }
        }
    }
}

TEST(ShardedEngine, OnlineNormalizeMergeIsAlsoBitIdentical)
{
    const size_t ns = 500, ed = 16, nq = 4, chunk = 64;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    const std::vector<float> u = makeQuestions(nq, ed);

    core::EngineConfig cfg;
    cfg.chunkSize = chunk;
    cfg.streaming = true;
    cfg.onlineNormalize = true; // running-max rescaled merge path
    for (size_t shards : {size_t(2), size_t(4)}) {
        const core::ShardedKnowledgeBase skb(kb, chunk, shards);
        core::EngineConfig scfg = cfg;
        scfg.threads = 2;
        core::ShardedEngine sharded(skb, scfg);
        core::EngineConfig rcfg = cfg;
        rcfg.scheduleGroups = skb.shardCount();
        core::ColumnEngine reference(kb, rcfg);

        std::vector<float> o_sharded(nq * ed), o_ref(nq * ed);
        sharded.inferBatch(u.data(), nq, o_sharded.data());
        reference.inferBatch(u.data(), nq, o_ref.data());
        for (size_t i = 0; i < o_ref.size(); ++i)
            ASSERT_EQ(o_sharded[i], o_ref[i]) << "shards=" << shards;
    }
}

/**
 * Merge order is canonical (shard index), not completion order: with
 * a multi-threaded scatter pool and dynamic shard handout, shard
 * completion order varies run to run, yet every run must produce the
 * same bits as the inline (threads = 0) scatter.
 */
TEST(ShardedEngine, GatherOrderIsIndependentOfCompletionOrder)
{
    const size_t ns = 1024, ed = 16, nq = 4, chunk = 64;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    const std::vector<float> u = makeQuestions(nq, ed);
    const core::ShardedKnowledgeBase skb(kb, chunk, 8);
    ASSERT_EQ(skb.shardCount(), 8u);

    core::EngineConfig inline_cfg;
    inline_cfg.chunkSize = chunk;
    inline_cfg.threads = 0; // sequential scatter: canonical order
    core::ShardedEngine inline_engine(skb, inline_cfg);
    std::vector<float> o_inline(nq * ed);
    inline_engine.inferBatch(u.data(), nq, o_inline.data());

    core::EngineConfig pool_cfg = inline_cfg;
    pool_cfg.threads = 4;
    pool_cfg.schedule = core::Schedule::Dynamic;
    core::ShardedEngine pooled(skb, pool_cfg);
    std::vector<float> o_pooled(nq * ed);
    for (int run = 0; run < 5; ++run) {
        std::fill(o_pooled.begin(), o_pooled.end(), -1.f);
        pooled.inferBatch(u.data(), nq, o_pooled.data());
        for (size_t i = 0; i < o_inline.size(); ++i)
            ASSERT_EQ(o_pooled[i], o_inline[i])
                << "run " << run << " elem " << i;
    }
}

TEST(ShardedEngine, AggregatesCountersAcrossShards)
{
    const size_t ns = 600, ed = 16, nq = 3, chunk = 64;
    const core::KnowledgeBase kb = makeKb(ns, ed);
    const std::vector<float> u = makeQuestions(nq, ed);

    core::EngineConfig cfg;
    cfg.chunkSize = chunk;
    cfg.streaming = true;
    cfg.skipThreshold = 0.05f;

    const core::ShardedKnowledgeBase skb(kb, chunk, 4);
    core::EngineConfig scfg = cfg;
    scfg.threads = 2;
    core::ShardedEngine sharded(skb, scfg);
    core::EngineConfig rcfg = cfg;
    rcfg.scheduleGroups = skb.shardCount();
    core::ColumnEngine reference(kb, rcfg);

    std::vector<float> o(nq * ed);
    sharded.inferBatch(u.data(), nq, o.data());
    reference.inferBatch(u.data(), nq, o.data());

    // Whole-KB totals match a single engine: same chunks swept, same
    // zero-skip decisions (bit-identity), same deferred divisions.
    for (const char *name : {"chunks_processed", "rows_kept",
                             "rows_skipped", "flops_inner",
                             "flops_wsum", "div_ops"})
        EXPECT_EQ(sharded.counters().value(name),
                  reference.counters().value(name))
            << name;
    // Every weighted-sum row was either kept or skipped.
    EXPECT_EQ(sharded.counters().value("rows_kept")
                  + sharded.counters().value("rows_skipped"),
              uint64_t(ns) * nq);
}

TEST(ShardedEngine, MismatchedChunkSizeIsFatal)
{
    const core::KnowledgeBase kb = makeKb(200, 8);
    const core::ShardedKnowledgeBase skb(kb, 64, 2);
    core::EngineConfig cfg;
    cfg.chunkSize = 32; // partition was aligned to 64
    EXPECT_EXIT(core::ShardedEngine(skb, cfg),
                ::testing::ExitedWithCode(1), "chunk");
}

// ---------------------------------------------------------------
// LiveServer sharded serving mode
// ---------------------------------------------------------------

TEST(LiveServer, ShardedModeAnswersMatchReferenceEngine)
{
    const size_t ns = 300, ed = 16, n_requests = 40;
    const core::KnowledgeBase kb = makeKb(ns, ed);

    serve::LiveServerConfig cfg;
    cfg.maxBatch = 8;
    cfg.batchTimeout = 1e-3;
    cfg.workers = 2;
    cfg.shards = 2;
    cfg.queueCapacity = 256;
    cfg.engine.chunkSize = 64;
    cfg.engine.streaming = true;

    // The server's sharded engine is bit-identical to a single engine
    // whose group decomposition matches the shard partition.
    const core::ShardedKnowledgeBase skb(kb, cfg.engine.chunkSize,
                                         cfg.shards);
    core::EngineConfig rcfg = cfg.engine;
    rcfg.scheduleGroups = skb.shardCount();
    core::ColumnEngine reference(kb, rcfg);

    serve::LiveServer server(kb, cfg);
    EXPECT_TRUE(server.sharded());
    EXPECT_EQ(server.engineSlots(), 1u); // one scatter/gather slot

    XorShiftRng rng(31);
    std::vector<std::vector<float>> questions(n_requests);
    std::vector<std::future<serve::Answer>> futures;
    for (auto &q : questions) {
        q.resize(ed);
        for (float &x : q)
            x = rng.uniformRange(-1.f, 1.f);
        serve::Ticket t = server.submit(q.data());
        ASSERT_TRUE(t.accepted());
        futures.push_back(std::move(t.answer));
    }
    server.shutdown();

    std::vector<float> expected(ed);
    for (size_t i = 0; i < n_requests; ++i) {
        serve::Answer a = futures[i].get();
        ASSERT_EQ(a.o.size(), ed);
        reference.infer(questions[i].data(), expected.data());
        for (size_t e = 0; e < ed; ++e)
            EXPECT_EQ(a.o[e], expected[e])
                << "request " << i << " element " << e;
    }
    const serve::LatencySnapshot s = server.snapshot();
    EXPECT_EQ(s.completed, n_requests);
    EXPECT_EQ(s.arrived, n_requests);
    EXPECT_EQ(s.rejected, 0u);
}

TEST(LiveServer, ShardedModeDrainsAndSplitsRejections)
{
    const core::KnowledgeBase kb = makeKb(200, 8);
    serve::LiveServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.batchTimeout = 20e-3;
    cfg.workers = 2;
    cfg.shards = 2;
    cfg.queueCapacity = 8; // tiny: the flood must overflow
    cfg.engine.chunkSize = 64;
    serve::LiveServer server(kb, cfg);

    std::vector<float> q(8, 0.25f);
    std::vector<std::future<serve::Answer>> futures;
    uint64_t refused = 0;
    for (int i = 0; i < 400; ++i) {
        serve::Ticket t = server.submit(q.data());
        if (t.accepted())
            futures.push_back(std::move(t.answer));
        else
            ++refused;
    }
    server.shutdown();
    serve::Ticket late = server.submit(q.data());
    EXPECT_EQ(late.status, serve::SubmitStatus::ShuttingDown);

    for (auto &f : futures)
        EXPECT_EQ(f.get().o.size(), 8u);

    const serve::LatencySnapshot s = server.snapshot();
    EXPECT_EQ(s.arrived, 401u);
    EXPECT_EQ(s.completed, futures.size());
    EXPECT_EQ(s.rejectedFull, refused);
    EXPECT_EQ(s.rejectedShutdown, 1u);
    EXPECT_EQ(s.rejected, s.rejectedFull + s.rejectedShutdown);
    EXPECT_EQ(s.completed + s.rejected, s.arrived);
}

} // namespace
} // namespace mnnfast
