#!/usr/bin/env bash
# Build and run the full test suite under each verification preset:
# the default optimized build plus the ASan+UBSan build, so memory
# and UB bugs in the arena/kernel hot paths cannot slip through an
# optimized-only run.
#
# Usage: tests/run_checks.sh [preset...]
#   With no arguments, runs: relwithdebinfo asan-ubsan
#   Pass preset names (see CMakePresets.json) to run a subset, e.g.:
#     tests/run_checks.sh asan-ubsan
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
    presets=(relwithdebinfo asan-ubsan)
fi

jobs=$(nproc 2>/dev/null || echo 2)

for preset in "${presets[@]}"; do
    echo "==> preset: ${preset}"
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "${jobs}"
    ctest --preset "${preset}" -j "${jobs}"
    # Second pass with SIMD dispatch disabled: on AVX2 hosts the run
    # above only exercises the vector backend, so this pins the scalar
    # reference kernels (and the scalar/AVX2 bit-identity contracts
    # are still checked above, where both backends are reachable).
    echo "==> preset: ${preset} (MNNFAST_NO_SIMD=1)"
    MNNFAST_NO_SIMD=1 ctest --preset "${preset}" -j "${jobs}"
    # Live-server smoke under the leak-checking build: a short
    # low-rate open-loop run whose shutdown must drain every accepted
    # request — ASan flags any promise/thread/arena leaked on the
    # serve or teardown paths.
    if [ "${preset}" = "asan-ubsan" ]; then
        echo "==> preset: ${preset} (live-server smoke)"
        MNNFAST_BENCH_JSON=build-asan/BENCH_serving_smoke.json \
            ./build-asan/bench/serving_live --smoke
        # Sharded-serving smoke: scatter/gather across the worker pool
        # plus the engine-level equivalence column, under the same
        # leak/UB checking.
        echo "==> preset: ${preset} (sharded-serving smoke)"
        MNNFAST_BENCH_JSON=build-asan/BENCH_sharding_smoke.json \
            ./build-asan/bench/ablation_sharding --smoke
    fi
done

echo "all checks passed: ${presets[*]} (simd + scalar dispatch)"
